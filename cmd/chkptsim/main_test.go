package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

const fig2Src = `
program jacobi
const MAXITER = 3
var x, y, iter
proc {
    iter = 0
    while iter < MAXITER {
        if rank % 2 == 0 {
            chkpt
            send(rank + 1, x)
            recv(rank + 1, y)
        } else {
            recv(rank - 1, y)
            send(rank - 1, x)
            chkpt
        }
        iter = iter + 1
    }
}
`

func writeTemp(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.mpl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunUntransformedReportsInconsistency(t *testing.T) {
	path := writeTemp(t, fig2Src)
	var out, errb strings.Builder
	code := run([]string{"-n", "4", path}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (inconsistent cut)\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "INCONSISTENT") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunTransformedIsConsistent(t *testing.T) {
	path := writeTemp(t, fig2Src)
	var out, errb strings.Builder
	code := run([]string{"-n", "4", "-transform", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "recovery line") {
		t.Errorf("output = %q", out.String())
	}
	if !strings.Contains(out.String(), "restarts=0") {
		t.Errorf("unexpected restarts: %q", out.String())
	}
}

func TestRunWithFailureRecovers(t *testing.T) {
	path := writeTemp(t, fig2Src)
	var out, errb strings.Builder
	code := run([]string{"-n", "4", "-transform", "-fail", "1:8", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "restarts=1") {
		t.Errorf("output = %q", out.String())
	}
}

func TestProtocols(t *testing.T) {
	safe := strings.Replace(fig2Src,
		"recv(rank - 1, y)\n            send(rank - 1, x)\n            chkpt",
		"chkpt\n            recv(rank - 1, y)\n            send(rank - 1, x)", 1)
	path := writeTemp(t, safe)
	for _, proto := range []string{"appl", "sas", "cl", "cic", "uncoord"} {
		t.Run(proto, func(t *testing.T) {
			var out, errb strings.Builder
			// Protocol checkpoints of cl/sas/cic use their own indexes;
			// straight-cut trace verification applies to appl only.
			args := []string{"-n", "4", "-protocol", proto}
			if proto != "appl" {
				args = append(args, "-verify=false")
			}
			args = append(args, path)
			code := run(args, &out, &errb)
			if code != 0 {
				t.Fatalf("exit = %d\n%s%s", code, out.String(), errb.String())
			}
			if !strings.Contains(out.String(), "metrics:") {
				t.Errorf("output = %q", out.String())
			}
		})
	}
}

func TestStoreKinds(t *testing.T) {
	path := writeTemp(t, fig2Src)
	for _, store := range []string{"mem", "incremental", t.TempDir(), "wal:" + t.TempDir()} {
		var out, errb strings.Builder
		code := run([]string{"-n", "4", "-transform", "-store", store, "-fail", "1:8", path}, &out, &errb)
		if code != 0 {
			t.Fatalf("store %q: exit = %d\n%s%s", store, code, out.String(), errb.String())
		}
		if !strings.Contains(out.String(), "restarts=1") {
			t.Errorf("store %q: %q", store, out.String())
		}
	}
	// The incremental store reports its footprint.
	var out, errb strings.Builder
	if code := run([]string{"-n", "2", "-transform", "-store", "incremental", path}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "incremental store:") {
		t.Errorf("no store stats: %q", out.String())
	}
	// The WAL store reports group-commit activity.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-n", "2", "-transform", "-store", "wal:" + t.TempDir(), path}, &out, &errb); code != 0 {
		t.Fatalf("wal run: exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wal store:") {
		t.Errorf("no wal store stats: %q", out.String())
	}
}

func TestBadUsage(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Errorf("no args exit = %d, want 2", code)
	}
	if code := run([]string{"-protocol", "bogus", writeTemp(t, fig2Src)}, &out, &errb); code != 2 {
		t.Errorf("bad protocol exit = %d, want 2", code)
	}
	if code := run([]string{"-fail", "nonsense", writeTemp(t, fig2Src)}, &out, &errb); code != 2 {
		t.Errorf("bad failure spec exit = %d, want 2", code)
	}
}

// TestObservabilityExports is the acceptance test for the observability
// flags: the trace file must be valid Chrome trace-event JSON (traceEvents
// array whose events carry ph/ts/pid/tid), the event stream must be
// parseable JSONL with the documented kinds, and the metrics stream must
// carry run metadata plus counters.
func TestObservabilityExports(t *testing.T) {
	path := writeTemp(t, fig2Src)
	dir := t.TempDir()
	traceOut := filepath.Join(dir, "run.json")
	eventsOut := filepath.Join(dir, "run.jsonl")
	metricsOut := filepath.Join(dir, "metrics.jsonl")
	var out, errb strings.Builder
	code := run([]string{"-n", "4", "-transform", "-vtime", "-fail", "1:8",
		"-trace-out", traceOut, "-events-out", eventsOut, "-metrics-out", metricsOut,
		path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\n%s%s", code, out.String(), errb.String())
	}

	// Chrome trace: top-level traceEvents, every event has ph/ts/pid/tid.
	raw, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace-out is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	pids := map[float64]bool{}
	for i, ev := range trace.TraceEvents {
		for _, field := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("traceEvents[%d] missing %q: %v", i, field, ev)
			}
		}
		pids[ev["pid"].(float64)] = true
	}
	if len(pids) != 2 {
		t.Errorf("pids = %v, want both incarnations of the failed run", pids)
	}

	// Event stream: one JSON object per line, rollback and restart present.
	kinds := map[string]int{}
	for i, line := range nonEmptyLines(t, eventsOut) {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("events-out line %d: %v", i+1, err)
		}
		kinds[ev.Kind]++
	}
	for _, want := range []string{"send", "recv", "chkpt", "rollback", "restart"} {
		if kinds[want] == 0 {
			t.Errorf("event stream has no %q events: %v", want, kinds)
		}
	}

	// Metrics stream: typed lines with run metadata first.
	lines := nonEmptyLines(t, metricsOut)
	types := map[string]int{}
	for i, line := range lines {
		var m struct {
			Type     string `json:"type"`
			Restarts *int   `json:"restarts"`
		}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("metrics-out line %d: %v", i+1, err)
		}
		types[m.Type]++
		if i == 0 {
			if m.Type != "run" || m.Restarts == nil || *m.Restarts != 1 {
				t.Errorf("first metrics line = %s", line)
			}
		}
	}
	if types["counters"] != 1 || types["timer"] == 0 {
		t.Errorf("metrics stream types = %v", types)
	}
}

// TestProfilingFlags checks -cpuprofile/-memprofile produce non-empty files.
func TestProfilingFlags(t *testing.T) {
	path := writeTemp(t, fig2Src)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errb strings.Builder
	code := run([]string{"-n", "2", "-transform", "-cpuprofile", cpu, "-memprofile", mem, path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\n%s%s", code, out.String(), errb.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestOutputErrorPathsExitNonzero: an unwritable export target must fail the
// command even when the run itself succeeds — deferred flush/close errors
// may not be swallowed.
func TestOutputErrorPathsExitNonzero(t *testing.T) {
	path := writeTemp(t, fig2Src)
	bad := filepath.Join(t.TempDir(), "no-such-dir", "out")
	for _, flag := range []string{"-trace-out", "-events-out", "-metrics-out", "-cpuprofile", "-memprofile"} {
		t.Run(flag, func(t *testing.T) {
			var out, errb strings.Builder
			code := run([]string{"-n", "2", "-transform", flag, bad, path}, &out, &errb)
			if code == 0 {
				t.Errorf("exit = 0 with unwritable %s\nstderr: %s", flag, errb.String())
			}
			if !strings.Contains(errb.String(), "chkptsim:") {
				t.Errorf("no error reported: %q", errb.String())
			}
		})
	}
}

// TestEventsOutFlushFailureExitsNonzero: an -events-out file that opens
// fine but cannot take the final flush (ENOSPC, modelled by /dev/full)
// must fail the command, not silently drop the tail of the history. The
// run itself succeeds — only the deferred Close path sees the error.
func TestEventsOutFlushFailureExitsNonzero(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("/dev/full is Linux-specific")
	}
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full unavailable")
	}
	path := writeTemp(t, fig2Src)
	var out, errb strings.Builder
	code := run([]string{"-n", "2", "-transform", "-events-out", "/dev/full", path}, &out, &errb)
	if code == 0 {
		t.Errorf("exit = 0 with full events-out device\nstderr: %s", errb.String())
	}
	if !strings.Contains(errb.String(), "chkptsim:") {
		t.Errorf("flush failure not reported: %q", errb.String())
	}
	// The run's own output still happened: the failure is ONLY the flush.
	if !strings.Contains(out.String(), "metrics:") {
		t.Errorf("run output missing, flush failure masked the run: %q", out.String())
	}
}

// TestEventStreamSurvivesFailedRun: -events-out must hold the partial
// history even when the command exits non-zero (inconsistent cuts).
func TestEventStreamSurvivesFailedRun(t *testing.T) {
	path := writeTemp(t, fig2Src)
	eventsOut := filepath.Join(t.TempDir(), "run.jsonl")
	var out, errb strings.Builder
	code := run([]string{"-n", "4", "-events-out", eventsOut, path}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (untransformed program has inconsistent cuts)", code)
	}
	if lines := nonEmptyLines(t, eventsOut); len(lines) == 0 {
		t.Error("event stream empty after failed run")
	}
}

// TestChaosFlags: a seeded chaos run (crash schedule + storage faults) must
// converge to the clean run's final state and report its fault stats.
func TestChaosFlags(t *testing.T) {
	path := writeTemp(t, fig2Src)
	var clean, errb strings.Builder
	if code := run([]string{"-n", "4", "-transform", path}, &clean, &errb); code != 0 {
		t.Fatalf("clean run exit = %d: %s", code, errb.String())
	}
	var out strings.Builder
	errb.Reset()
	code := run([]string{"-n", "4", "-transform",
		"-chaos-seed", "3", "-chaos-crash-rate", "1.2", "-storage-fault-rate", "0.1",
		path}, &out, &errb)
	if code != 0 {
		t.Fatalf("chaos run exit = %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "chaos:") {
		t.Errorf("no chaos stats reported: %q", out.String())
	}
	// The final per-process state lines must match the clean run exactly.
	finals := func(s string) []string {
		var out []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "proc ") {
				out = append(out, strings.TrimSpace(line))
			}
		}
		return out
	}
	c, f := finals(clean.String()), finals(out.String())
	if len(c) == 0 || strings.Join(c, ";") != strings.Join(f, ";") {
		t.Errorf("chaos run diverged:\nclean: %v\nchaos: %v", c, f)
	}
	// Same seed, same outcome.
	var again strings.Builder
	errb.Reset()
	if code := run([]string{"-n", "4", "-transform",
		"-chaos-seed", "3", "-chaos-crash-rate", "1.2", "-storage-fault-rate", "0.1",
		path}, &again, &errb); code != 0 {
		t.Fatalf("repeat chaos run exit = %d: %s", code, errb.String())
	}
	if strings.Join(finals(again.String()), ";") != strings.Join(f, ";") {
		t.Error("same chaos seed produced different final state")
	}
}

// TestNetChaosFlags: a run over lossy links (drops, dups, reorders, plus a
// healing partition window) must converge to the clean run's final state
// and report network fault stats.
func TestNetChaosFlags(t *testing.T) {
	path := writeTemp(t, fig2Src)
	var clean, errb strings.Builder
	if code := run([]string{"-n", "4", "-transform", path}, &clean, &errb); code != 0 {
		t.Fatalf("clean run exit = %d: %s", code, errb.String())
	}
	var out strings.Builder
	errb.Reset()
	code := run([]string{"-n", "4", "-transform",
		"-net-chaos-seed", "7", "-net-drop-rate", "0.1", "-net-dup-rate", "0.2",
		"-net-reorder-rate", "0.2", "-net-partition", "0>1@5ms+100ms",
		path}, &out, &errb)
	if code != 0 {
		t.Fatalf("net chaos run exit = %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "net chaos:") {
		t.Errorf("no net chaos stats reported: %q", out.String())
	}
	finals := func(s string) []string {
		var out []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "proc ") {
				out = append(out, strings.TrimSpace(line))
			}
		}
		return out
	}
	c, f := finals(clean.String()), finals(out.String())
	if len(c) == 0 || strings.Join(c, ";") != strings.Join(f, ";") {
		t.Errorf("net chaos run diverged:\nclean: %v\nchaos: %v", c, f)
	}
}

func TestNetPartitionSpecRejected(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-n", "2", "-net-partition", "garbage", writeTemp(t, fig2Src)}, &out, &errb)
	if code != 2 {
		t.Errorf("bad partition spec exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "partition") {
		t.Errorf("no partition error reported: %q", errb.String())
	}
}

func nonEmptyLines(t *testing.T, path string) []string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.TrimSpace(line) != "" {
			out = append(out, line)
		}
	}
	return out
}

// TestTelemetryEndpoint runs with -telemetry-addr :0 and scrapes the live
// endpoint while the run lingers: /metrics must expose the core families,
// /snapshot.json must decode, and /healthz must answer.
func TestTelemetryEndpoint(t *testing.T) {
	path := writeTemp(t, fig2Src)
	var out strings.Builder
	var errb syncWriter
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-n", "4", "-transform",
			"-telemetry-addr", "127.0.0.1:0", "-telemetry-linger", "2s", path}, &out, &errb)
	}()

	// The server URL is announced on stderr before the run starts.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no telemetry URL announced:\n%s", errb.String())
		}
		s := errb.String()
		if _, rest, ok := strings.Cut(s, "telemetry at "); ok {
			if u, _, ok := strings.Cut(rest, "/metrics"); ok {
				base = u
			}
		}
		time.Sleep(2 * time.Millisecond)
	}

	get := func(p string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + p)
		if err != nil {
			t.Fatalf("GET %s: %v", p, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 {
		t.Errorf("/metrics = %d: %s", code, body)
	} else {
		for _, want := range []string{
			"# TYPE chkptsim_events_total counter",
			"chkptsim_healthy",
			`chkptsim_counter_total{name="checkpoints"}`,
		} {
			if !strings.Contains(body, want) {
				t.Errorf("/metrics missing %q:\n%s", want, body)
			}
		}
	}
	if code, body := get("/snapshot.json"); code != 200 {
		t.Errorf("/snapshot.json = %d", code)
	} else {
		var snap struct {
			Total int64            `json:"total_events"`
			Kinds map[string]int64 `json:"kinds"`
		}
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("snapshot decode: %v", err)
		}
		if snap.Total == 0 || snap.Kinds["chkpt"] == 0 {
			t.Errorf("snapshot empty after run: %+v", snap)
		}
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q on a clean run", code, body)
	}

	if code := <-done; code != 0 {
		t.Fatalf("exit = %d\n%s", code, errb.String())
	}
}

// TestDashFlag: -dash renders at least one dashboard frame to stderr (the
// final frame fires on shutdown even for runs shorter than the refresh).
func TestDashFlag(t *testing.T) {
	path := writeTemp(t, fig2Src)
	var out strings.Builder
	var errb syncWriter
	if code := run([]string{"-n", "4", "-transform", "-dash", path}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d\n%s", code, errb.String())
	}
	se := errb.String()
	if !strings.Contains(se, "chkpt live telemetry") {
		t.Errorf("no dashboard frame on stderr:\n%q", se)
	}
	if !strings.Contains(out.String(), "recovery line") {
		t.Errorf("run summary missing from stdout: %q", out.String())
	}
}

// syncWriter is a goroutine-safe strings.Builder: the dashboard ticker and
// telemetry server announce on stderr concurrently with run() itself.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}
