package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fig2Src = `
program jacobi
const MAXITER = 3
var x, y, iter
proc {
    iter = 0
    while iter < MAXITER {
        if rank % 2 == 0 {
            chkpt
            send(rank + 1, x)
            recv(rank + 1, y)
        } else {
            recv(rank - 1, y)
            send(rank - 1, x)
            chkpt
        }
        iter = iter + 1
    }
}
`

func writeTemp(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.mpl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunUntransformedReportsInconsistency(t *testing.T) {
	path := writeTemp(t, fig2Src)
	var out, errb strings.Builder
	code := run([]string{"-n", "4", path}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (inconsistent cut)\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "INCONSISTENT") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunTransformedIsConsistent(t *testing.T) {
	path := writeTemp(t, fig2Src)
	var out, errb strings.Builder
	code := run([]string{"-n", "4", "-transform", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "recovery line") {
		t.Errorf("output = %q", out.String())
	}
	if !strings.Contains(out.String(), "restarts=0") {
		t.Errorf("unexpected restarts: %q", out.String())
	}
}

func TestRunWithFailureRecovers(t *testing.T) {
	path := writeTemp(t, fig2Src)
	var out, errb strings.Builder
	code := run([]string{"-n", "4", "-transform", "-fail", "1:8", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "restarts=1") {
		t.Errorf("output = %q", out.String())
	}
}

func TestProtocols(t *testing.T) {
	safe := strings.Replace(fig2Src,
		"recv(rank - 1, y)\n            send(rank - 1, x)\n            chkpt",
		"chkpt\n            recv(rank - 1, y)\n            send(rank - 1, x)", 1)
	path := writeTemp(t, safe)
	for _, proto := range []string{"appl", "sas", "cl", "cic", "uncoord"} {
		t.Run(proto, func(t *testing.T) {
			var out, errb strings.Builder
			// Protocol checkpoints of cl/sas/cic use their own indexes;
			// straight-cut trace verification applies to appl only.
			args := []string{"-n", "4", "-protocol", proto}
			if proto != "appl" {
				args = append(args, "-verify=false")
			}
			args = append(args, path)
			code := run(args, &out, &errb)
			if code != 0 {
				t.Fatalf("exit = %d\n%s%s", code, out.String(), errb.String())
			}
			if !strings.Contains(out.String(), "metrics:") {
				t.Errorf("output = %q", out.String())
			}
		})
	}
}

func TestStoreKinds(t *testing.T) {
	path := writeTemp(t, fig2Src)
	for _, store := range []string{"mem", "incremental", t.TempDir()} {
		var out, errb strings.Builder
		code := run([]string{"-n", "4", "-transform", "-store", store, "-fail", "1:8", path}, &out, &errb)
		if code != 0 {
			t.Fatalf("store %q: exit = %d\n%s%s", store, code, out.String(), errb.String())
		}
		if !strings.Contains(out.String(), "restarts=1") {
			t.Errorf("store %q: %q", store, out.String())
		}
	}
	// The incremental store reports its footprint.
	var out, errb strings.Builder
	if code := run([]string{"-n", "2", "-transform", "-store", "incremental", path}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "incremental store:") {
		t.Errorf("no store stats: %q", out.String())
	}
}

func TestBadUsage(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Errorf("no args exit = %d, want 2", code)
	}
	if code := run([]string{"-protocol", "bogus", writeTemp(t, fig2Src)}, &out, &errb); code != 2 {
		t.Errorf("bad protocol exit = %d, want 2", code)
	}
	if code := run([]string{"-fail", "nonsense", writeTemp(t, fig2Src)}, &out, &errb); code != 2 {
		t.Errorf("bad failure spec exit = %d, want 2", code)
	}
}
