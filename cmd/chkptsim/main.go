// Command chkptsim executes an MPL program on the concurrent runtime under
// a chosen checkpointing protocol, optionally injecting failures, and
// reports metrics plus recovery-line verification of the recorded trace.
//
// Usage:
//
//	chkptsim -n 4 [-protocol appl|sas|cl|cic|uncoord] [-fail proc:events]
//	         [-transform] [-verify]
//	         [-chaos-seed 1] [-chaos-crash-rate 1.2] [-storage-fault-rate 0.1]
//	         [-net-chaos-seed 1] [-net-drop-rate 0.1] [-net-dup-rate 0.1]
//	         [-net-reorder-rate 0.1] [-net-partition '0>1@100ms+300ms']
//	         [-trace-out run.json] [-events-out run.jsonl]
//	         [-metrics-out metrics.jsonl]
//	         [-telemetry-addr 127.0.0.1:9464] [-telemetry-window 250ms]
//	         [-telemetry-linger 0s] [-telemetry-lag 0] [-dash]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof] program.mpl
//
// The observability flags persist the run: -trace-out writes a Chrome
// trace-event file for Perfetto/chrome://tracing, -events-out streams
// structured JSONL events as they happen (buffered with periodic flushes,
// durable even when the run fails), and -metrics-out exports counters,
// histograms, and stage timers as JSONL.
//
// The live telemetry flags observe the run WHILE it executes:
// -telemetry-addr serves /metrics (Prometheus text format 0.0.4),
// /snapshot.json, and /healthz from a streaming aggregator fed by the same
// observer fan-out as the artifacts above; -telemetry-window sets its
// aggregation window; -telemetry-linger keeps the endpoint up after the
// run ends so a scraper catches the final state; -telemetry-lag arms the
// checkpoint-lag detector at the given virtual-second threshold. -dash
// renders a live ANSI dashboard to stderr (per-process state, event rates,
// save-latency percentiles, health verdicts). Detector verdicts — stalls,
// rollback storms, checkpoint lag — are also published as stall/storm/lag
// events into -events-out and -trace-out.
//
// The chaos flags inject seeded faults: -chaos-crash-rate derives a
// multi-process, multi-incarnation crash schedule from a Poisson process
// with the given rate, and -storage-fault-rate wraps the chosen store with
// transient errors, torn writes, bit flips, and latency at the given rate.
// The same -chaos-seed reproduces the same faults.
//
// The network chaos flags run the program over lossy links: any of
// -net-drop-rate, -net-dup-rate, -net-reorder-rate, or -net-partition
// enables the hardened transport (per-channel sequencing, ack/retransmit
// with an adaptive RTO, heartbeat failure detection) and injects the
// requested faults, reproducibly from -net-chaos-seed. Partition windows
// silence a direction for a wall-clock window; the heartbeat detector
// converts the silence into an ordinary crash→recovery.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mpl"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/storage/wal"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/zigzag"
)

type failureList []sim.Failure

func (f *failureList) String() string { return fmt.Sprint(*f) }

func (f *failureList) Set(v string) error {
	parts := strings.SplitN(v, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want proc:events, got %q", v)
	}
	proc, err := strconv.Atoi(parts[0])
	if err != nil {
		return err
	}
	events, err := strconv.Atoi(parts[1])
	if err != nil {
		return err
	}
	*f = append(*f, sim.Failure{Proc: proc, AfterEvents: events})
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("chkptsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var failures failureList
	var (
		nproc      = fs.Int("n", 4, "number of processes")
		protoName  = fs.String("protocol", "appl", "checkpointing protocol: appl, sas, cl, cic, uncoord")
		transform  = fs.Bool("transform", false, "run the offline transformation (phases I-III) before executing")
		verify     = fs.Bool("verify", true, "verify that every straight cut of the trace is a recovery line")
		noPrune    = fs.Bool("no-prune", false, "persist full variable environments instead of liveness-minimized checkpoint manifests")
		interval   = fs.Int("uncoord-interval", 10, "uncoordinated mode: local events between checkpoints")
		storeKind  = fs.String("store", "mem", "stable storage: mem, incremental, wal:DIR (durable group-commit log), or a directory path for the file store")
		zz         = fs.Bool("zigzag", false, "run the Netzer-Xu Z-cycle analysis on the recorded trace and report useless checkpoints")
		traceOut   = fs.String("trace-out", "", "write the run as Chrome trace-event JSON (open in ui.perfetto.dev or chrome://tracing)")
		eventsOut  = fs.String("events-out", "", "stream structured JSONL runtime events to this file as they happen")
		metricsOut = fs.String("metrics-out", "", "write a JSONL metrics stream (counters, histograms, timers) to this file")
		cpuProfile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a pprof heap profile to this file")
		virtual    = fs.Bool("vtime", false, "price the run in virtual time with the paper's cost model (timestamps trace output deterministically)")
		chaosSeed  = fs.Int64("chaos-seed", 1, "seed for chaos fault injection (same seed, same faults)")
		crashRate  = fs.Float64("chaos-crash-rate", 0, "expected crashes per incarnation (Poisson); generates a seeded multi-process crash schedule")
		faultRate  = fs.Float64("storage-fault-rate", 0, "storage fault rate in [0,1]: transient errors, torn writes, bit flips, latency")
		netSeed    = fs.Int64("net-chaos-seed", 1, "seed for network fault injection (same seed, same fault pattern)")
		dropRate   = fs.Float64("net-drop-rate", 0, "per-frame drop probability in [0,1]; enables the hardened ack/retransmit transport")
		dupRate    = fs.Float64("net-dup-rate", 0, "per-frame duplication probability in [0,1]; enables the hardened transport")
		reorderRt  = fs.Float64("net-reorder-rate", 0, "per-frame reorder probability in [0,1]; enables the hardened transport")
		partitions = fs.String("net-partition", "", "directed partition windows as FROM>TO@START+DUR, comma-separated ('0>1@100ms+300ms'; '*' wildcards a side); enables the hardened transport")
		telAddr    = fs.String("telemetry-addr", "", "serve live telemetry on this address: /metrics (Prometheus text), /snapshot.json, /healthz (e.g. 127.0.0.1:9464, or :0 for an ephemeral port)")
		telWindow  = fs.Duration("telemetry-window", 250*time.Millisecond, "telemetry aggregation window (rates, detectors, ring retention)")
		telLinger  = fs.Duration("telemetry-linger", 0, "keep the telemetry endpoint up this long after the run ends (final-scrape window)")
		telLag     = fs.Float64("telemetry-lag", 0, "checkpoint-lag alert threshold in virtual seconds (0 disables the lag detector; the gauge is always exported)")
		dash       = fs.Bool("dash", false, "render a live telemetry dashboard to stderr while the run executes")
	)
	fs.Var(&failures, "fail", "inject a failure as proc:events (repeatable; k-th flag applies to incarnation k)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: chkptsim [flags] program.mpl (use - for stdin)")
		fs.PrintDefaults()
		return 2
	}

	// fail reports an output-file error and forces a failing exit code
	// from inside the deferred flush/close paths below.
	fail := func(err error) {
		fmt.Fprintln(stderr, "chkptsim:", err)
		if code == 0 {
			code = 1
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "chkptsim:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "chkptsim:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
	}
	if *memProfile != "" {
		// Deferred so the profile reflects the completed (or failed) run.
		defer func() {
			runtime.GC()
			if err := obs.WriteFile(*memProfile, pprof.WriteHeapProfile); err != nil {
				fail(err)
			}
		}()
	}

	reg := metrics.NewRegistry()
	parseTimer := reg.Timer("chkptsim.parse").Start()
	src, err := readSource(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "chkptsim:", err)
		return 1
	}
	prog, err := mpl.Parse(src)
	if err != nil {
		fmt.Fprintln(stderr, "chkptsim:", err)
		return 1
	}
	parseTimer.Stop()
	if *transform {
		transformTimer := reg.Timer("chkptsim.transform").Start()
		rep, err := core.Transform(prog, core.DefaultConfig)
		if err != nil {
			fmt.Fprintln(stderr, "chkptsim:", err)
			return 1
		}
		prog = rep.Program
		transformTimer.Stop()
	}

	cfg := sim.Config{
		Program:  prog,
		Nproc:    *nproc,
		Failures: failures,
		NoPrune:  *noPrune,
		Input:    func(rank, i int) int { return rank + i },
	}
	if *virtual {
		tm := sim.PaperTimeModel
		cfg.Time = &tm
	}

	// Observability taps. The event stream goes straight to disk so a
	// failed run still leaves its history; the recorder feeds the Chrome
	// trace written after the run.
	var rec *obs.Recorder
	if *traceOut != "" {
		rec = obs.NewRecorder()
	}
	var stream *obs.StreamWriter
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fmt.Fprintln(stderr, "chkptsim:", err)
			return 1
		}
		// Buffered for hot-path cheapness, auto-flushed so a kill -9 still
		// leaves a parseable JSONL prefix on disk; Close does the final
		// flush, closes the file, and surfaces errors from every stage.
		stream = obs.NewStreamWriter(bufferedFile{bufio.NewWriterSize(f, 64<<10), f})
		stream.AutoFlush(200 * time.Millisecond)
		defer func() {
			if err := stream.Close(); err != nil {
				fail(err)
			}
		}()
	}
	var observers []obs.Observer
	if rec != nil {
		observers = append(observers, rec)
	}
	if stream != nil {
		observers = append(observers, stream)
	}
	cfg.Observer = obs.Multi(observers...)

	// Live telemetry: the aggregator joins the observer fan-out (so chaos
	// layers built below publish into it too), samples the run's counters
	// every window, and pushes detector verdicts back into the recorder
	// and event stream — never into itself.
	var agg *telemetry.Aggregator
	if *telAddr != "" || *dash {
		counters := &metrics.Counters{}
		cfg.Counters = counters
		agg = telemetry.New(telemetry.Config{
			Nproc:        *nproc,
			Window:       *telWindow,
			Counters:     counters,
			Sink:         cfg.Observer,
			LagThreshold: *telLag,
		})
		cfg.Observer = obs.Multi(cfg.Observer, agg)
		stopTick := agg.Start()
		if *telAddr != "" {
			srv, err := telemetry.NewServer(*telAddr, agg)
			if err != nil {
				fmt.Fprintln(stderr, "chkptsim:", err)
				stopTick()
				return 1
			}
			fmt.Fprintf(stderr, "chkptsim: telemetry at %s/metrics\n", srv.URL())
			defer func() {
				if err := srv.Close(); err != nil {
					fail(err)
				}
			}()
		}
		var stopDash func()
		if *dash {
			stopDash = telemetry.NewDashboard(agg, stderr).RunUntil()
		}
		defer func() {
			stopTick()
			agg.Tick() // close the final partial window
			if stopDash != nil {
				stopDash()
			}
			if *telAddr != "" && *telLinger > 0 {
				time.Sleep(*telLinger)
			}
		}()
	}
	if rec != nil {
		// Written in a defer: a failing run should still leave a timeline
		// of everything up to the failure.
		defer func() {
			if err := obs.WriteFile(*traceOut, rec.WriteChromeTrace); err != nil {
				fail(err)
			}
		}()
	}
	var incStore *storage.Incremental
	var walStore *wal.Store
	switch {
	case *storeKind == "mem":
		// default in-memory store
	case *storeKind == "incremental":
		incStore = storage.NewIncremental(0)
		cfg.Store = incStore
	case strings.HasPrefix(*storeKind, "wal:"):
		ws, err := wal.Open(strings.TrimPrefix(*storeKind, "wal:"), wal.Options{})
		if err != nil {
			fmt.Fprintln(stderr, "chkptsim:", err)
			return 1
		}
		defer ws.Close()
		walStore = ws
		cfg.Store = ws
		if agg != nil {
			agg.SetWALStats(ws.Stats)
		}
	default:
		fileStore, err := storage.NewFile(*storeKind)
		if err != nil {
			fmt.Fprintln(stderr, "chkptsim:", err)
			return 1
		}
		cfg.Store = fileStore
	}
	var chaosStore *chaos.Store
	if *faultRate > 0 {
		inner := cfg.Store
		if inner == nil {
			inner = storage.NewMemory()
		}
		chaosStore = chaos.New(inner, *chaosSeed, chaos.DefaultRates(*faultRate), cfg.Observer)
		cfg.Store = chaosStore
	}
	if *crashRate > 0 {
		cfg.Crashes = chaos.CrashSchedule(*chaosSeed, chaos.ScheduleConfig{
			Nproc: *nproc, Lambda: *crashRate, MaxIncarnations: 3,
		})
	}
	var netChaos *chaos.Network
	if *dropRate > 0 || *dupRate > 0 || *reorderRt > 0 || *partitions != "" {
		parts, err := chaos.ParsePartitions(*partitions)
		if err != nil {
			fmt.Fprintln(stderr, "chkptsim:", err)
			return 2
		}
		netChaos = chaos.NewNetwork(*netSeed, chaos.NetRates{
			Drop:     *dropRate,
			Dup:      *dupRate,
			Reorder:  *reorderRt,
			Delay:    *reorderRt / 2,
			MaxDelay: 2 * time.Millisecond,
		}, parts, cfg.Observer)
		cfg.Net = &sim.NetConfig{Chaos: netChaos}
	}
	if chaosStore != nil || netChaos != nil || *crashRate > 0 {
		// Storage faults crash processes beyond the scheduled failures, and
		// partitions can trigger repeated heartbeat suspicions; leave
		// recovery generous headroom.
		cfg.MaxRestarts = len(cfg.Failures) + len(cfg.Crashes) + 25
	}
	switch *protoName {
	case "appl":
		// coordination-free: no hooks
	case "sas":
		cfg.Hooks = protocol.SaS(0)
	case "cl":
		cfg.Hooks = protocol.CL(0, protocol.NewCLCollector())
	case "cic":
		cfg.Hooks = protocol.CIC()
	case "uncoord":
		cfg.Hooks = protocol.Uncoordinated(*interval)
		cfg.Recover = recovery.LatestConsistent
	default:
		fmt.Fprintf(stderr, "chkptsim: unknown protocol %q\n", *protoName)
		return 2
	}

	runTimer := reg.Timer("chkptsim.run").Start()
	res, err := sim.Run(cfg)
	runTimer.Stop()
	if err != nil {
		fmt.Fprintln(stderr, "chkptsim:", err)
		return 1
	}

	if *metricsOut != "" {
		meta := obs.RunMeta{
			Program:    prog.Name,
			Protocol:   *protoName,
			Nproc:      *nproc,
			Restarts:   res.Restarts,
			RolledBack: res.RolledBack,
			VTime:      res.VTime,
		}
		err := obs.WriteFile(*metricsOut, func(w io.Writer) error {
			return obs.WriteMetricsJSONL(w, meta, res.Metrics, reg.Snapshot())
		})
		if err != nil {
			fmt.Fprintln(stderr, "chkptsim:", err)
			return 1
		}
	}

	fmt.Fprintf(stdout, "program %s: n=%d protocol=%s restarts=%d\n",
		prog.Name, *nproc, *protoName, res.Restarts)
	fmt.Fprintf(stdout, "metrics: %s\n", res.Metrics)
	if full := res.Metrics.Custom[sim.MetricPruneBytesFull]; full > 0 {
		saved := res.Metrics.Custom[sim.MetricPruneBytesSaved]
		fmt.Fprintf(stdout, "prune: %dB saved of %dB full (%.1f%%), %d dead variable(s) dropped\n",
			saved, full, 100*float64(saved)/float64(full), res.Metrics.Custom[sim.MetricPruneVarsDropped])
	}
	if *virtual {
		fmt.Fprintf(stdout, "virtual makespan: %.4f s\n", res.VTime)
	}
	if incStore != nil {
		st := incStore.Stats()
		fmt.Fprintf(stdout, "incremental store: %dB full + %dB delta\n", st.FullBytes, st.DeltaBytes)
	}
	if walStore != nil {
		st := walStore.Stats()
		fmt.Fprintf(stdout, "wal store: %d save(s) in %d group commit(s), %d rotation(s), %d compaction(s), %d recovered, %dB torn tail truncated\n",
			st.Saves, st.Batches, st.Rotations, st.Compactions, st.Recovered, st.TruncatedBytes)
	}
	if chaosStore != nil {
		st := chaosStore.Stats()
		fmt.Fprintf(stdout, "chaos: %d fault(s): %d write, %d read, %d torn (%d repaired), %d bit-flip\n",
			st.Total(), st.WriteErrors, st.ReadErrors, st.TornWrites, st.Repairs, st.BitFlips)
	}
	if netChaos != nil {
		st := netChaos.Stats()
		fmt.Fprintf(stdout, "net chaos: %d fault(s): %d drop (%d partition), %d dup, %d reorder, %d delay; %d heal(s)\n",
			st.Total(), st.Drops, st.PartitionDrops, st.Dups, st.Reorders, st.Delays, st.Heals)
	}
	for p, vars := range res.FinalVars {
		fmt.Fprintf(stdout, "  proc %d: %v\n", p, sortedVars(vars))
	}

	if *zz && res.Trace != nil {
		analysis, err := zigzag.FromTrace(res.Trace)
		if err != nil {
			fmt.Fprintln(stderr, "chkptsim: zigzag:", err)
			return 1
		}
		stats := analysis.Stats()
		fmt.Fprintf(stdout, "zigzag: %d checkpoint(s), %d useless\n", stats.Total, stats.Useless)
		for _, c := range analysis.Useless() {
			fmt.Fprintf(stdout, "  useless: %v (on a Z-cycle; member of no consistent snapshot)\n", c)
		}
	}

	if *verify && res.Trace != nil {
		bad := 0
		for _, idx := range res.Trace.CheckpointIndexes() {
			cut, err := res.Trace.StraightCut(idx)
			if err != nil {
				fmt.Fprintf(stdout, "R_%d: incomplete (%v)\n", idx, err)
				continue
			}
			if trace.IsRecoveryLine(cut) {
				fmt.Fprintf(stdout, "R_%d: recovery line\n", idx)
			} else {
				a, b, _ := trace.FirstViolation(cut)
				fmt.Fprintf(stdout, "R_%d: INCONSISTENT (%v happened before %v)\n", idx, a, b)
				bad++
			}
		}
		if bad > 0 {
			return 1
		}
	}
	return 0
}

// bufferedFile routes stream writes through a bufio buffer while letting
// StreamWriter.Close flush it and close the underlying file.
type bufferedFile struct {
	*bufio.Writer
	f *os.File
}

func (b bufferedFile) Close() error { return b.f.Close() }

func readSource(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func sortedVars(vars map[string]int) string {
	keys := make([]string, 0, len(vars))
	for k := range vars {
		keys = append(keys, k)
	}
	// insertion sort; variable sets are tiny
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%d", k, vars[k])
	}
	sb.WriteByte('}')
	return sb.String()
}
