// Command telemetryprobe polls a chkpt telemetry endpoint and asserts it is
// serving well-formed data — the scraper side of the smoke test, written
// against net/http so CI needs no curl/wget.
//
// Usage:
//
//	telemetryprobe -url http://127.0.0.1:9464 \
//	    [-want chkptsim_events_total,chkptsim_healthy] \
//	    [-timeout 5s] [-interval 100ms] [-min-events 1] [-quiet]
//
// The probe retries until every required metric family appears in /metrics
// (as a `# TYPE` line), /snapshot.json decodes and reports at least
// -min-events total events, and /healthz answers. Exit status: 0 on
// success, 1 on timeout or malformed payloads, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("telemetryprobe", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url       = fs.String("url", "http://127.0.0.1:9464", "telemetry base URL")
		want      = fs.String("want", "chkptsim_events_total,chkptsim_healthy", "comma-separated metric families that must be present")
		timeout   = fs.Duration("timeout", 5*time.Second, "give up after this long")
		interval  = fs.Duration("interval", 100*time.Millisecond, "poll interval")
		minEvents = fs.Int64("min-events", 1, "minimum total_events in /snapshot.json")
		quiet     = fs.Bool("quiet", false, "suppress the success summary")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	base := strings.TrimRight(*url, "/")

	var wanted []string
	for _, w := range strings.Split(*want, ",") {
		if w = strings.TrimSpace(w); w != "" {
			wanted = append(wanted, w)
		}
	}

	deadline := time.Now().Add(*timeout)
	var lastErr error
	for {
		lastErr = probe(base, wanted, *minEvents, stdout, *quiet)
		if lastErr == nil {
			return 0
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(stderr, "telemetryprobe: %v (after %s)\n", lastErr, *timeout)
			return 1
		}
		time.Sleep(*interval)
	}
}

// probe performs one full pass over the three endpoints; any failure makes
// the caller retry until its deadline.
func probe(base string, wanted []string, minEvents int64, stdout io.Writer, quiet bool) error {
	metrics, err := fetch(base + "/metrics")
	if err != nil {
		return err
	}
	families := 0
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families++
		}
	}
	for _, w := range wanted {
		if !strings.Contains(metrics, "# TYPE "+w+" ") {
			return fmt.Errorf("/metrics missing family %s", w)
		}
	}

	rawSnap, err := fetch(base + "/snapshot.json")
	if err != nil {
		return err
	}
	var snap struct {
		Total  int64            `json:"total_events"`
		Ticks  int64            `json:"ticks"`
		Kinds  map[string]int64 `json:"kinds"`
		Health struct {
			Stalls int64 `json:"stalls"`
			Storms int64 `json:"storms"`
		} `json:"health"`
	}
	if err := json.Unmarshal([]byte(rawSnap), &snap); err != nil {
		return fmt.Errorf("/snapshot.json: %w", err)
	}
	if snap.Total < minEvents {
		return fmt.Errorf("/snapshot.json total_events %d < %d", snap.Total, minEvents)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("GET /healthz: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("/healthz status %d", resp.StatusCode)
	}

	if !quiet {
		fmt.Fprintf(stdout, "telemetryprobe: ok — %d families, %d events, %d kinds, healthz=%d\n",
			families, snap.Total, len(snap.Kinds), resp.StatusCode)
	}
	return nil
}

func fetch(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("read %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body), nil
}
