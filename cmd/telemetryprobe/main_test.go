package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// probeServer starts a telemetry server over a minimally populated
// aggregator and returns its base URL.
func probeServer(t *testing.T) string {
	t.Helper()
	agg := telemetry.New(telemetry.Config{Nproc: 2, Window: time.Hour})
	agg.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0, VTime: 1})
	agg.OnEvent(obs.Event{Kind: obs.KindChkpt, Proc: 0, VTime: 1, DurNS: 1e6})
	agg.Tick()
	srv, err := telemetry.NewServer("127.0.0.1:0", agg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.URL()
}

func TestProbeSucceeds(t *testing.T) {
	url := probeServer(t)
	var out, errb strings.Builder
	code := run([]string{"-url", url, "-timeout", "3s"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "telemetryprobe: ok") {
		t.Errorf("no success summary: %q", out.String())
	}
}

func TestProbeMissingFamilyFails(t *testing.T) {
	url := probeServer(t)
	var out, errb strings.Builder
	code := run([]string{"-url", url, "-want", "no_such_family",
		"-timeout", "200ms", "-interval", "50ms"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "no_such_family") {
		t.Errorf("error does not name the missing family: %q", errb.String())
	}
}

func TestProbeUnreachableFails(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-url", "http://127.0.0.1:1",
		"-timeout", "200ms", "-interval", "50ms"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestProbeBadUsage(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestProbeMinEvents(t *testing.T) {
	url := probeServer(t)
	var out, errb strings.Builder
	code := run([]string{"-url", url, "-min-events", "1000",
		"-timeout", "200ms", "-interval", "50ms"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "total_events") {
		t.Errorf("error does not mention total_events: %q", errb.String())
	}
}
