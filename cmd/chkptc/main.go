// Command chkptc is the offline checkpoint "compiler": it runs the paper's
// three phases on an MPL program and emits the transformed program, a
// transformation report, and optionally the extended CFG in Graphviz dot
// form.
//
// Usage:
//
//	chkptc [-mode preserve|base] [-check] [-dot file] [-o file] [-report] program.mpl
//
// With -check the program is only verified against Condition 1 (exit code
// 1 when some straight cut of checkpoints is not guaranteed to be a
// recovery line); no transformation is performed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/mpl"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chkptc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mode    = fs.String("mode", "preserve", `placement mode: "preserve" keeps checkpoints in loops (§3.3 optimization), "base" is plain Algorithm 3.2`)
		check   = fs.Bool("check", false, "verify Condition 1 only; do not transform")
		dotPath = fs.String("dot", "", "write the extended CFG (Graphviz dot) to this file")
		outPath = fs.String("o", "", "write the transformed program here (default stdout)")
		report  = fs.Bool("report", false, "print the transformation report to stderr")
		skipIns = fs.Bool("no-insert", false, "skip Phase I checkpoint insertion")
		runtime = fs.Bool("verify-runtime", false, "after transforming, execute the result at several process counts and verify every straight cut on the recorded traces")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: chkptc [flags] program.mpl (use - for stdin)")
		fs.PrintDefaults()
		return 2
	}

	src, err := readSource(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "chkptc:", err)
		return 1
	}
	prog, err := mpl.Parse(src)
	if err != nil {
		fmt.Fprintln(stderr, "chkptc:", err)
		return 1
	}

	cfg := core.DefaultConfig
	cfg.SkipInsert = *skipIns
	switch *mode {
	case "preserve":
		cfg.PreserveLoops = true
	case "base":
		cfg.PreserveLoops = false
	default:
		fmt.Fprintf(stderr, "chkptc: unknown mode %q\n", *mode)
		return 2
	}

	if *check {
		violations, err := core.Verify(prog, cfg)
		if err != nil {
			fmt.Fprintln(stderr, "chkptc:", err)
			return 1
		}
		if len(violations) == 0 {
			fmt.Fprintln(stdout, "OK: every straight cut of checkpoints is a recovery line")
			return 0
		}
		for _, v := range violations {
			fmt.Fprintf(stdout, "VIOLATION: C_%d at stmt #%d can happen before C_%d at stmt #%d\n",
				v.Index, v.FromStmt, v.Index, v.ToStmt)
		}
		return 1
	}

	rep, err := core.Transform(prog, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "chkptc:", err)
		return 1
	}
	if *report {
		printReport(stderr, rep)
	}
	if *dotPath != "" {
		dot, err := core.ExtendedDOT(rep.Program, cfg)
		if err != nil {
			fmt.Fprintln(stderr, "chkptc:", err)
			return 1
		}
		if err := os.WriteFile(*dotPath, []byte(dot), 0o644); err != nil {
			fmt.Fprintln(stderr, "chkptc:", err)
			return 1
		}
	}
	if *runtime {
		if code := verifyRuntime(rep, stdout, stderr); code != 0 {
			return code
		}
	}
	out := mpl.Format(rep.Program)
	if *outPath == "" {
		fmt.Fprint(stdout, out)
		return 0
	}
	if err := os.WriteFile(*outPath, []byte(out), 0o644); err != nil {
		fmt.Fprintln(stderr, "chkptc:", err)
		return 1
	}
	return 0
}

// verifyRuntime executes the transformed program on the concurrent runtime
// at several scales and checks every straight cut of the recorded traces —
// the empirical counterpart of the -check static proof.
func verifyRuntime(rep *core.Report, stdout, stderr io.Writer) int {
	for _, n := range []int{2, 3, 5} {
		res, err := sim.Run(sim.Config{
			Program: rep.Program,
			Nproc:   n,
			Input:   func(rank, i int) int { return rank + i },
			Timeout: 30 * time.Second,
		})
		if err != nil {
			fmt.Fprintf(stderr, "chkptc: runtime verification at n=%d: %v\n", n, err)
			return 1
		}
		checked := 0
		for _, idx := range res.Trace.CheckpointIndexes() {
			cut, err := res.Trace.StraightCut(idx)
			if err != nil {
				continue
			}
			if !trace.IsRecoveryLine(cut) {
				a, b, _ := trace.FirstViolation(cut)
				fmt.Fprintf(stderr, "chkptc: n=%d: R_%d is NOT a recovery line (%v before %v)\n",
					n, idx, a, b)
				return 1
			}
			checked++
		}
		fmt.Fprintf(stderr, "runtime verification: n=%d ok (%d straight cut(s) checked)\n", n, checked)
	}
	return 0
}

func readSource(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func printReport(w io.Writer, rep *core.Report) {
	fmt.Fprintf(w, "== transformation report ==\n")
	if rep.Phase1 != nil {
		fmt.Fprintf(w, "phase I: inserted %d checkpoint(s); optimal interval %.1fs; %d iteration(s)/checkpoint recommended\n",
			len(rep.Phase1.Inserted), rep.Phase1.OptimalInterval, rep.Phase1.IterationsPerCheckpoint)
	}
	p3 := rep.Phase3
	fmt.Fprintf(w, "phase III: %d initial violation(s), %d move(s), %d equalized, %d coalesced, %d iteration(s)\n",
		len(p3.InitialViolations), len(p3.Moves), len(p3.EqualizedStmts), p3.CoalescedStmts, p3.Iterations)
	for _, m := range p3.Moves {
		fmt.Fprintf(w, "  move: %s\n", m.Reason)
	}
	for _, o := range p3.Orderings {
		fmt.Fprintf(w, "  loop-preserved: C_%d stmt #%d before stmt #%d (cross-iteration only)\n",
			o.Index, o.EarlierStmt, o.LaterStmt)
	}
	fmt.Fprintf(w, "straight-cut indexes: %d\n", rep.CheckpointCount())
}
