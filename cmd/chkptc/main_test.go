package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fig2Src = `
program jacobi
const MAXITER = 3
var x, y, iter
proc {
    iter = 0
    while iter < MAXITER {
        if rank % 2 == 0 {
            chkpt
            send(rank + 1, x)
            recv(rank + 1, y)
        } else {
            recv(rank - 1, y)
            send(rank - 1, x)
            chkpt
        }
        iter = iter + 1
    }
}
`

func writeTemp(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.mpl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckDetectsViolation(t *testing.T) {
	path := writeTemp(t, fig2Src)
	var out, errb strings.Builder
	code := run([]string{"-check", path}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "VIOLATION") {
		t.Errorf("output = %q", out.String())
	}
}

func TestCheckPassesSafeProgram(t *testing.T) {
	safe := strings.Replace(fig2Src,
		"recv(rank - 1, y)\n            send(rank - 1, x)\n            chkpt",
		"chkpt\n            recv(rank - 1, y)\n            send(rank - 1, x)", 1)
	path := writeTemp(t, safe)
	var out, errb strings.Builder
	code := run([]string{"-check", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Errorf("output = %q", out.String())
	}
}

func TestTransformOutputIsSafeAndReparses(t *testing.T) {
	path := writeTemp(t, fig2Src)
	var out, errb strings.Builder
	if code := run([]string{"-report", path}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "transformation report") {
		t.Errorf("report missing: %q", errb.String())
	}
	// The emitted program must pass -check.
	outPath := writeTemp(t, out.String())
	var out2, err2 strings.Builder
	if code := run([]string{"-check", "-no-insert", outPath}, &out2, &err2); code != 0 {
		t.Fatalf("transformed output fails check: %s%s", out2.String(), err2.String())
	}
}

func TestDotOutput(t *testing.T) {
	path := writeTemp(t, fig2Src)
	dotPath := filepath.Join(t.TempDir(), "g.dot")
	var out, errb strings.Builder
	if code := run([]string{"-dot", dotPath, path}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errb.String())
	}
	dot, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dot), "digraph") || !strings.Contains(string(dot), "msg") {
		t.Errorf("dot output missing content")
	}
}

func TestOutputFileFlag(t *testing.T) {
	path := writeTemp(t, fig2Src)
	outPath := filepath.Join(t.TempDir(), "out.mpl")
	var out, errb strings.Builder
	if code := run([]string{"-o", outPath, path}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errb.String())
	}
	if out.Len() != 0 {
		t.Error("stdout not empty with -o")
	}
	if _, err := os.Stat(outPath); err != nil {
		t.Fatal(err)
	}
}

func TestBaseMode(t *testing.T) {
	path := writeTemp(t, fig2Src)
	var out, errb strings.Builder
	if code := run([]string{"-mode", "base", path}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d (stderr: %s)", code, errb.String())
	}
	// Base mode moves the checkpoints out of the loop: the loop body must
	// contain no chkpt.
	txt := out.String()
	loopStart := strings.Index(txt, "while")
	if loopStart < 0 {
		t.Fatal("loop vanished")
	}
	if strings.Contains(txt[loopStart:], "chkpt") {
		t.Errorf("base mode left checkpoints in the loop:\n%s", txt)
	}
}

func TestVerifyRuntimeFlag(t *testing.T) {
	path := writeTemp(t, fig2Src)
	var out, errb strings.Builder
	if code := run([]string{"-verify-runtime", path}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "runtime verification: n=2 ok") ||
		!strings.Contains(errb.String(), "n=5 ok") {
		t.Errorf("verification output missing: %q", errb.String())
	}
}

func TestBadUsage(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Errorf("no args exit = %d, want 2", code)
	}
	if code := run([]string{"-mode", "bogus", writeTemp(t, fig2Src)}, &out, &errb); code != 2 {
		t.Errorf("bad mode exit = %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.mpl")}, &out, &errb); code != 1 {
		t.Errorf("missing file exit = %d, want 1", code)
	}
	if code := run([]string{writeTemp(t, "not a program")}, &out, &errb); code != 1 {
		t.Errorf("parse error exit = %d, want 1", code)
	}
}
