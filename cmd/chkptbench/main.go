// Command chkptbench regenerates the paper's evaluation artifacts:
//
//	chkptbench -figure 8            # Figure 8: overhead ratio vs n
//	chkptbench -figure 9 [-n 64]    # Figure 9: overhead ratio vs w_m
//	chkptbench -figure validate     # Monte Carlo vs analytic (extra)
//	chkptbench -figure messages     # measured control messages per
//	                                # checkpoint vs the §4.1 formulas
//	chkptbench -figure domino       # useless checkpoints & rollback
//	                                # distance: uncoordinated vs ours
//	chkptbench -figure runtime      # EMPIRICAL Figure 8: overhead ratio
//	                                # measured on the runtime in virtual time
//
// Output is whitespace-separated columns suitable for plotting; "# hist"
// comment lines in the runtime figure carry stall/save distributions.
// -cpuprofile/-memprofile write pprof profiles of the benchmark itself.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/markov"
	"repro/internal/metrics"
	"repro/internal/montecarlo"
	"repro/internal/mpl"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/protocol"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/zigzag"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("chkptbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		figure  = fs.String("figure", "8", `which artifact: "8", "9", "validate", "messages", "domino", "runtime"`)
		n       = fs.Int("n", 64, "process count for figure 9")
		trials  = fs.Int("trials", 100000, "Monte Carlo trials for validate")
		lambda  = fs.Float64("lambda1", markov.PaperBaseline.Lambda1, "per-process failure rate")
		wm      = fs.Float64("wm", markov.PaperBaseline.WM, "message setup time w_m (seconds)")
		work    = fs.Int("work", 300000, "runtime figure: work units per iteration (1 virtual ms each; 300000 ≈ the paper's T=300s interval)")
		wrk     = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel sweep workers (1 = serial; output is identical either way)")
		cpuPro  = fs.String("cpuprofile", "", "write a pprof CPU profile of the benchmark to this file")
		memPro  = fs.String("memprofile", "", "write a pprof heap profile to this file")
		telAddr = fs.String("telemetry-addr", "", "serve live telemetry for the runtime figures on this address (/metrics, /snapshot.json, /healthz); e.g. 127.0.0.1:9464")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// fail reports an output-file error and forces a failing exit code from
	// the deferred profile writers below.
	fail := func(err error) {
		fmt.Fprintln(stderr, "chkptbench:", err)
		if code == 0 {
			code = 1
		}
	}
	if *cpuPro != "" {
		f, err := os.Create(*cpuPro)
		if err != nil {
			fmt.Fprintln(stderr, "chkptbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "chkptbench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
	}
	if *memPro != "" {
		defer func() {
			runtime.GC()
			if err := obs.WriteFile(*memPro, pprof.WriteHeapProfile); err != nil {
				fail(err)
			}
		}()
	}
	b := markov.PaperBaseline
	b.Lambda1 = *lambda
	b.WM = *wm
	if _, err := par.Workers(*wrk); err != nil {
		fmt.Fprintln(stderr, "chkptbench:", err)
		return 2
	}

	// Live telemetry across the runtime figures: one aggregator taps every
	// measurement run (the sweep's runs share it — rates and sketches are
	// fleet-wide, which is exactly what a mid-sweep scrape wants). The
	// analytic figures spawn no runtime, so their scrapes show zero events.
	var observer obs.Observer
	if *telAddr != "" {
		agg := telemetry.New(telemetry.Config{Nproc: 64})
		stopTick := agg.Start()
		defer stopTick()
		srv, err := telemetry.NewServer(*telAddr, agg)
		if err != nil {
			fmt.Fprintln(stderr, "chkptbench:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "chkptbench: telemetry at %s/metrics\n", srv.URL())
		observer = agg
	}

	switch *figure {
	case "8":
		pts, err := markov.Figure8Workers(b, markov.DefaultFigure8Ns(), *wrk)
		if err != nil {
			fmt.Fprintln(stderr, "chkptbench:", err)
			return 1
		}
		fmt.Fprintln(stdout, "# Figure 8: overhead ratio r vs number of processes n")
		fmt.Fprintln(stdout, "# n  appl-driven  SaS  C-L")
		for _, pt := range pts {
			fmt.Fprintf(stdout, "%-6.0f %-12.6g %-12.6g %-12.6g\n", pt.X, pt.ApplDriven, pt.SaS, pt.CL)
		}
	case "9":
		pts, err := markov.Figure9Workers(b, *n, markov.DefaultFigure9WMs(), *wrk)
		if err != nil {
			fmt.Fprintln(stderr, "chkptbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "# Figure 9: overhead ratio r vs message setup time w_m (n=%d)\n", *n)
		fmt.Fprintln(stdout, "# w_m  appl-driven  SaS  C-L")
		for _, pt := range pts {
			fmt.Fprintf(stdout, "%-8.4g %-12.6g %-12.6g %-12.6g\n", pt.X, pt.ApplDriven, pt.SaS, pt.CL)
		}
	case "validate":
		rows, err := montecarlo.ValidateFigure8Workers(b, []int{2, 16, 128, 1024}, *trials, 1, *wrk)
		if err != nil {
			fmt.Fprintln(stderr, "chkptbench:", err)
			return 1
		}
		fmt.Fprintln(stdout, "# Monte Carlo validation of the analytic overhead ratio")
		fmt.Fprintln(stdout, "# protocol  n  analytic  simulated")
		for _, row := range rows {
			fmt.Fprintf(stdout, "%-12s %-6d %-12.6g %s\n",
				row.Protocol, row.N, row.Analytic, row.Simulated)
		}
	case "messages":
		return runMessages(stdout, stderr, *wrk, observer)
	case "domino":
		return runDomino(stdout, stderr, *wrk, observer)
	case "runtime":
		return runEmpirical(stdout, stderr, *work, *wrk, observer)
	default:
		fmt.Fprintf(stderr, "chkptbench: unknown figure %q\n", *figure)
		return 2
	}
	return 0
}

// sweep runs f over items on up to workers goroutines, each returning its
// fully formatted output block, and writes the blocks to stdout in input
// order — parallel sweeps print byte-identical to serial ones. On error it
// reports the first failure and returns 1.
func sweep[T any](stdout, stderr io.Writer, workers int, items []T, f func(item T) (string, error)) int {
	blocks, err := par.Map(context.Background(), workers, items,
		func(_ context.Context, _ int, item T) (string, error) {
			return f(item)
		})
	if err != nil {
		fmt.Fprintln(stderr, "chkptbench:", err)
		return 1
	}
	for _, blk := range blocks {
		io.WriteString(stdout, blk)
	}
	return 0
}

// runMessages measures real control-message counts per checkpoint round on
// the concurrent runtime and compares them with the §4.1 formulas. The
// per-scale measurements are independent full runs, so they sweep in
// parallel; each run's processes are already goroutines, so worker counts
// here multiply goroutines, not correctness concerns.
func runMessages(stdout, stderr io.Writer, workers int, o obs.Observer) int {
	const iters = 2
	fmt.Fprintln(stdout, "# measured control messages per checkpoint round vs the paper's formulas")
	fmt.Fprintln(stdout, "# n  appl  sas(meas)  sas=5(n-1)  cl(meas)  cl markers=n(n-1)")
	return sweep(stdout, stderr, workers, []int{2, 4, 8, 12}, func(n int) (string, error) {
		prog := corpus.JacobiFig1(iters)
		appl, err := sim.Run(sim.Config{Program: prog, Nproc: n, DisableTrace: true, Observer: o})
		if err != nil {
			return "", err
		}
		sas, err := sim.Run(sim.Config{Program: prog, Nproc: n, Hooks: protocol.SaS(0), DisableTrace: true, Observer: o})
		if err != nil {
			return "", err
		}
		cl, err := sim.Run(sim.Config{Program: prog, Nproc: n, Hooks: protocol.CL(0, protocol.NewCLCollector()), DisableTrace: true, Observer: o})
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%-4d %-6d %-10d %-11d %-9d %d\n",
			n,
			appl.Metrics.CtrlMessages/iters,
			sas.Metrics.CtrlMessages/iters, 5*(n-1),
			cl.Metrics.CtrlMessages/iters, n*(n-1)), nil
	})
}

// runEmpirical measures overhead ratios on the concurrent runtime in
// virtual time: the same Jacobi workload runs checkpoint-free (the
// baseline T), then under each protocol; r̂ = makespan/baseline − 1. This
// is the runtime counterpart of the analytic Figure 8 — coordination costs
// (barrier stalls, marker floods) surface as measured time rather than as
// a formula.
func runEmpirical(stdout, stderr io.Writer, workUnits, workers int, o obs.Observer) int {
	const iters = 4
	tm := sim.PaperTimeModel
	// Per-iteration computation defaults to T ≈ 300 s (the paper's
	// programmed interval): 300000 work units at 1 virtual ms each.
	fmt.Fprintf(stdout, "# empirical overhead ratio (virtual time), Jacobi workload, T≈%gs/interval\n",
		float64(workUnits)/1000)
	fmt.Fprintln(stdout, "# n  baseline(s)  appl-driven  SaS  C-L")
	return sweep(stdout, stderr, workers, []int{2, 4, 8, 16}, func(n int) (string, error) {
		prog := jacobiWithWork(iters, workUnits)
		bare := mpl.Clone(prog)
		stripChkpts(bare)

		measure := func(p *mpl.Program, hooks sim.HooksFactory) (*sim.Result, error) {
			return sim.Run(sim.Config{
				Program: p, Nproc: n, Hooks: hooks, Time: &tm, DisableTrace: true,
				Observer: o,
			})
		}
		base, err := measure(bare, nil)
		if err != nil {
			return "", err
		}
		appl, err := measure(prog, nil)
		if err != nil {
			return "", err
		}
		sas, err := measure(prog, protocol.SaS(0))
		if err != nil {
			return "", err
		}
		cl, err := measure(prog, protocol.CL(0, protocol.NewCLCollector()))
		if err != nil {
			return "", err
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "%-4d %-12.4f %-12.6f %-12.6f %-12.6f\n",
			n, base.VTime, appl.VTime/base.VTime-1, sas.VTime/base.VTime-1, cl.VTime/base.VTime-1)
		// Where the overhead comes from: per-protocol distributions. The
		// coordination-free scheme never stalls, so its stall histogram is
		// empty by construction — that asymmetry IS the result.
		printHist(&sb, n, "appl", sim.HistBarrierStallV, appl.Metrics)
		printHist(&sb, n, "sas", sim.HistBarrierStallV, sas.Metrics)
		printHist(&sb, n, "cl", sim.HistBarrierStallV, cl.Metrics)
		printHist(&sb, n, "appl", sim.HistChkptSaveMS, appl.Metrics)
		printHist(&sb, n, "sas", sim.HistChkptSaveMS, sas.Metrics)
		return sb.String(), nil
	})
}

// printHist emits one protocol's distribution as a plot-safe comment line,
// followed by a one-line percentile summary interpolated from the same
// buckets via the sketch CDF (the numbers a live scrape would show).
func printHist(w io.Writer, n int, proto, name string, m metrics.Snapshot) {
	h, ok := m.Hists[name]
	if !ok || h.Count == 0 {
		fmt.Fprintf(w, "# hist n=%d %s %s (empty)\n", n, proto, name)
		return
	}
	fmt.Fprintf(w, "# hist n=%d %s %s %s\n", n, proto, name, h)
	sk := metrics.SketchFromHist(h)
	fmt.Fprintf(w, "# pXX n=%d %s %s p50=%.6g p95=%.6g p99=%.6g\n",
		n, proto, name, sk.Quantile(0.50), sk.Quantile(0.95), sk.Quantile(0.99))
}

// jacobiWithWork is the Figure 1 Jacobi exchange with a heavy per-iteration
// computation so each checkpoint interval costs about the paper's T.
func jacobiWithWork(iters, workUnits int) *mpl.Program {
	return mpl.NewBuilder("jacobi_heavy").
		Const("MAXITER", iters).
		Vars("x", "xl", "xr", "iter").
		Assign("x", mpl.Add(mpl.Rank(), mpl.Int(1))).
		Assign("iter", mpl.Int(0)).
		While(mpl.Lt(mpl.V("iter"), mpl.V("MAXITER")), func(b *mpl.Builder) {
			b.Chkpt()
			b.Work(mpl.Int(workUnits))
			b.Send(mpl.Sub(mpl.Rank(), mpl.Int(1)), "x")
			b.Send(mpl.Add(mpl.Rank(), mpl.Int(1)), "x")
			b.Recv(mpl.Sub(mpl.Rank(), mpl.Int(1)), "xl")
			b.Recv(mpl.Add(mpl.Rank(), mpl.Int(1)), "xr")
			b.Assign("x", mpl.Div(mpl.Add(mpl.Add(mpl.V("x"), mpl.V("xl")), mpl.V("xr")), mpl.Int(3)))
			b.Assign("iter", mpl.Add(mpl.V("iter"), mpl.Int(1)))
		}).
		MustProgram()
}

// stripChkpts removes all checkpoint statements (baseline measurement).
func stripChkpts(p *mpl.Program) {
	var fix func(body []mpl.Stmt) []mpl.Stmt
	fix = func(body []mpl.Stmt) []mpl.Stmt {
		out := body[:0]
		for _, s := range body {
			if _, ok := s.(*mpl.Chkpt); ok {
				continue
			}
			switch st := s.(type) {
			case *mpl.While:
				st.Body = fix(st.Body)
			case *mpl.If:
				st.Then = fix(st.Then)
				st.Else = fix(st.Else)
			}
			out = append(out, s)
		}
		return out
	}
	p.Body = fix(p.Body)
}

// runDomino contrasts the application-driven scheme with uncoordinated
// checkpointing on random workloads: useless checkpoints (Z-cycle
// analysis) and rollback steps needed at recovery.
func runDomino(stdout, stderr io.Writer, workers int, o obs.Observer) int {
	const n = 4
	input := func(rank, i int) int { return rank ^ i }
	fmt.Fprintln(stdout, "# useless checkpoints and recovery rollback distance, random workloads (n=4)")
	fmt.Fprintln(stdout, "# workload  appl-ckpts  appl-useless  uncoord-ckpts  uncoord-useless  uncoord-rollbacks")
	seeds := make([]int64, 0, 9)
	for seed := int64(-1); seed < 8; seed++ {
		seeds = append(seeds, seed)
	}
	return sweep(stdout, stderr, workers, seeds, func(seed int64) (string, error) {
		prog := corpus.Random(seed)
		label := fmt.Sprintf("seed%d", seed)
		interval := 3 // timer-driven uncoordinated checkpoints
		if seed < 0 {
			// The canonical Netzer-Xu pattern: uncoordinated checkpoints
			// at the program's own (zigzag-prone) statements.
			prog = corpus.ZigzagProne(3)
			label = "zigzag"
			interval = 0
		}
		rep, err := core.Transform(prog, core.DefaultConfig)
		if err != nil {
			return "", err
		}
		applRes, err := sim.Run(sim.Config{Program: rep.Program, Nproc: n, Input: input, Observer: o})
		if err != nil {
			return "", err
		}
		applZ, err := zigzag.FromTrace(applRes.Trace)
		if err != nil {
			return "", err
		}
		applStats := applZ.Stats()

		// Uncoordinated: timer-driven local checkpoints on the
		// UNTRANSFORMED program. The zigzag stats come from a failure-free
		// run (a post-recovery trace only covers the last incarnation);
		// the rollback distance from a separate crashed run recovered by
		// searching for the latest consistent cut.
		uncClean, err := sim.Run(sim.Config{
			Program:  prog,
			Nproc:    n,
			Input:    input,
			Hooks:    protocol.Uncoordinated(interval),
			Observer: o,
		})
		if err != nil {
			return "", err
		}
		uncZ, err := zigzag.FromTrace(uncClean.Trace)
		if err != nil {
			return "", err
		}
		uncStats := uncZ.Stats()
		victim := int(seed) % n
		if victim < 0 {
			victim += n
		}
		uncCrash, err := sim.Run(sim.Config{
			Program:      prog,
			Nproc:        n,
			Input:        input,
			Hooks:        protocol.Uncoordinated(interval),
			Failures:     []sim.Failure{{Proc: victim, AfterEvents: 14}},
			Recover:      recovery.LatestConsistent,
			DisableTrace: true,
			Observer:     o,
		})
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%-10s %-11d %-13d %-14d %-16d %d\n",
			label, applStats.Total, applStats.Useless,
			uncStats.Total, uncStats.Useless, uncCrash.RolledBack), nil
	})
}
