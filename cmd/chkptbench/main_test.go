package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestFigure8Output(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-figure", "8"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	lines := nonComment(out.String())
	if len(lines) != 10 {
		t.Fatalf("rows = %d, want 10:\n%s", len(lines), out.String())
	}
	// Each row: n appl sas cl, with appl smallest.
	for _, line := range lines {
		f := strings.Fields(line)
		if len(f) != 4 {
			t.Fatalf("bad row %q", line)
		}
		appl := parse(t, f[1])
		sas := parse(t, f[2])
		cl := parse(t, f[3])
		if !(appl < sas && appl < cl) {
			t.Errorf("appl-driven not smallest in row %q", line)
		}
	}
}

func TestFigure9Output(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-figure", "9", "-n", "32"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	lines := nonComment(out.String())
	if len(lines) < 5 {
		t.Fatalf("rows = %d", len(lines))
	}
	first := parse(t, strings.Fields(lines[0])[1])
	last := parse(t, strings.Fields(lines[len(lines)-1])[1])
	if first != last {
		t.Errorf("appl-driven moved with w_m: %v -> %v", first, last)
	}
}

func TestValidateOutput(t *testing.T) {
	var out, errb strings.Builder
	// Default λ₁ keeps every n in the sweep feasible; an inflated rate at
	// n=1024 would make intervals effectively never complete (the
	// montecarlo package rejects such regimes).
	if code := run([]string{"-figure", "validate", "-trials", "2000"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "±") {
		t.Errorf("no estimates in output:\n%s", out.String())
	}
}

func TestMessagesOutput(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-figure", "messages"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	lines := nonComment(out.String())
	if len(lines) != 4 {
		t.Fatalf("rows = %d:\n%s", len(lines), out.String())
	}
	for _, line := range lines {
		f := strings.Fields(line)
		// measured SaS (f[2]) must equal formula (f[3]); measured C-L
		// (f[4]) must equal markers formula (f[5]).
		if f[2] != f[3] {
			t.Errorf("SaS measured %s != formula %s in %q", f[2], f[3], line)
		}
		if f[4] != f[5] {
			t.Errorf("C-L measured %s != formula %s in %q", f[4], f[5], line)
		}
		if f[1] != "0" {
			t.Errorf("appl-driven ctrl %s != 0 in %q", f[1], line)
		}
	}
}

func TestUnknownFigure(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-figure", "42"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

func nonComment(s string) []string {
	var out []string
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	return out
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// TestRuntimeFigureHistograms runs the empirical figure with a tiny work
// parameter and checks the stall/save distributions appear: SaS must show a
// populated barrier-stall histogram, the coordination-free scheme an empty
// one — the measured form of the paper's comparison.
func TestRuntimeFigureHistograms(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-figure", "runtime", "-work", "50"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "# hist n=2 sas barrier_stall_vs count=") {
		t.Errorf("no populated SaS stall histogram:\n%s", s)
	}
	if !strings.Contains(s, "# hist n=2 appl barrier_stall_vs (empty)") {
		t.Errorf("appl-driven stall histogram not reported empty:\n%s", s)
	}
	if !strings.Contains(s, "appl chkpt_save_ms count=") {
		t.Errorf("no checkpoint save-time histogram:\n%s", s)
	}
	if rows := nonComment(s); len(rows) != 4 {
		t.Errorf("data rows = %d, want 4:\n%s", len(rows), s)
	}
	// Every populated # hist block is followed by a # pXX percentile
	// summary interpolated from the same buckets; empty ones are not.
	checkPXXLines(t, s)
	if !strings.Contains(s, "# pXX n=2 sas barrier_stall_vs p50=") {
		t.Errorf("no SaS stall percentile summary:\n%s", s)
	}
	if strings.Contains(s, "# pXX n=2 appl barrier_stall_vs") {
		t.Errorf("percentile summary for an empty histogram:\n%s", s)
	}
}

// checkPXXLines pins the # hist → # pXX pairing: each populated histogram
// line is immediately followed by its percentile line with parseable,
// ordered p50 ≤ p95 ≤ p99 values.
func checkPXXLines(t *testing.T, s string) {
	t.Helper()
	lines := strings.Split(s, "\n")
	for i, line := range lines {
		if !strings.HasPrefix(line, "# hist ") || strings.HasSuffix(line, "(empty)") {
			continue
		}
		if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "# pXX ") {
			t.Errorf("histogram line has no percentile summary: %q", line)
			continue
		}
		f := strings.Fields(lines[i+1])
		// "# pXX n=K proto name p50=... p95=... p99=..."
		if len(f) != 8 {
			t.Errorf("malformed pXX line: %q", lines[i+1])
			continue
		}
		var p50, p95, p99 float64
		for _, kv := range []struct {
			s string
			v *float64
		}{{f[5], &p50}, {f[6], &p95}, {f[7], &p99}} {
			_, val, ok := strings.Cut(kv.s, "=")
			if !ok {
				t.Errorf("bad pXX field %q in %q", kv.s, lines[i+1])
				continue
			}
			*kv.v = parse(t, val)
		}
		if !(p50 <= p95 && p95 <= p99) || p99 <= 0 {
			t.Errorf("percentiles not ordered/positive in %q", lines[i+1])
		}
	}
}

// TestBenchProfilingFlags checks the pprof flags write non-empty profiles.
func TestBenchProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errb strings.Builder
	if code := run([]string{"-figure", "8", "-cpuprofile", cpu, "-memprofile", mem}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestBenchProfileErrorPath: an unwritable profile target must fail the
// command even though the figure itself succeeds.
func TestBenchProfileErrorPath(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "prof")
	for _, flag := range []string{"-cpuprofile", "-memprofile"} {
		var out, errb strings.Builder
		if code := run([]string{"-figure", "8", flag, bad}, &out, &errb); code == 0 {
			t.Errorf("exit = 0 with unwritable %s", flag)
		}
	}
}
