// Command chkptverify is the generative correctness harness for the
// paper's central claim (Theorem 3.2): it generates random SPMD programs,
// transforms each with the three-phase pipeline, systematically explores
// the transformed program's message-delivery interleavings up to a
// branching bound, and checks that every straight cut of every explored
// execution is a recovery line — cross-validated by five independent
// deciders: four trace-consistency checks (vector clocks, structural
// happened-before, the orphan-message criterion, and Netzer-Xu zigzag
// paths) plus restore equivalence, which re-instantiates the machine from
// each cut's snapshots — both full and pruned to the per-site liveness
// manifest — and requires the completed replay to reproduce the original
// run's FinalVars exactly.
//
// Usage:
//
//	chkptverify [-seed N] [-progs N] [-depth N] [-schedules N] [-nprocs list] [-mutate] [-replay subseed] [-v]
//
// With -mutate the harness additionally sabotages each transformed
// program one checkpoint at a time (delete / move across a communication
// / skew into rank-parity branches) and each liveness manifest one live
// variable at a time (prune-drop), and requires the checker to catch the
// sabotage; a clean pass additionally requires the delete and prune-drop
// detection rates to reach 95%.
//
// Every counterexample line prints the generator sub-seed and schedule
// needed to replay it deterministically; -replay regenerates one program
// from its printed sub-seed and re-verifies it with verbose output.
//
// Exit codes: 0 clean, 1 counterexample or mutation-rate failure,
// 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/mpl"
	"repro/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chkptverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed      = fs.Int64("seed", 1, "generator seed for the program stream")
		progs     = fs.Int("progs", 100, "number of random programs to generate and verify")
		depth     = fs.Int("depth", 8, "branching-decision bound per explored schedule")
		schedules = fs.Int("schedules", 64, "max explored executions per (program, nproc)")
		nprocs    = fs.String("nprocs", "2,3", "comma-separated process counts to verify at")
		mutate    = fs.Bool("mutate", false, "also run the mutation (no-vacuous-pass) mode")
		replay    = fs.Int64("replay", 0, "regenerate ONE program from this sub-seed and re-verify it verbosely")
		workers   = fs.Int("workers", 0, "parallel workers over programs (0 = GOMAXPROCS)")
		verbose   = fs.Bool("v", false, "print per-run statistics even on success")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: chkptverify [flags]")
		fs.PrintDefaults()
		return 2
	}
	ns, err := parseNprocs(*nprocs)
	if err != nil {
		fmt.Fprintln(stderr, "chkptverify:", err)
		return 2
	}

	if *replay != 0 {
		return replayOne(*replay, ns, *depth, *schedules, *mutate, stdout, stderr)
	}

	opts := verify.Options{
		Seed:         *seed,
		Programs:     *progs,
		Depth:        *depth,
		MaxSchedules: *schedules,
		Nprocs:       ns,
		Mutate:       *mutate,
		Workers:      *workers,
	}
	res, err := verify.Run(context.Background(), opts)
	if err != nil {
		fmt.Fprintln(stderr, "chkptverify:", err)
		return 1
	}
	return report(res, *mutate, *verbose, stdout, stderr)
}

// report prints the outcome and picks the exit code.
func report(res *verify.Result, mutate, verbose bool, stdout, stderr io.Writer) int {
	code := 0
	for _, c := range res.Counterexamples {
		fmt.Fprintf(stderr, "COUNTEREXAMPLE %s\n", c)
		code = 1
	}
	if mutate {
		for _, kind := range verify.MutationKinds(res.Mutation) {
			ks := res.Mutation[kind]
			fmt.Fprintf(stdout, "mutation %-6s: %3d mutants, caught %3d (static %d, cut-contract %d, dynamic %d, runtime %d), rate %.1f%%\n",
				kind, ks.Total, ks.Caught(), ks.CaughtStatic, ks.CaughtCut, ks.CaughtDynamic, ks.CaughtRuntime, 100*ks.Rate())
			for _, esc := range ks.Escaped {
				fmt.Fprintf(stdout, "  escaped: %s\n", esc)
			}
		}
		if del := res.Mutation[verify.MutDelete]; del != nil && del.Rate() < 0.95 {
			fmt.Fprintf(stderr, "chkptverify: delete-mutant detection rate %.1f%% below the 95%% bar\n", 100*del.Rate())
			code = 1
		}
		if pd := res.Mutation[verify.MutPruneDrop]; pd != nil && pd.Rate() < 0.95 {
			fmt.Fprintf(stderr, "chkptverify: prune-drop detection rate %.1f%% below the 95%% bar\n", 100*pd.Rate())
			code = 1
		}
	}
	if code == 0 {
		fmt.Fprintf(stdout, "OK: %d programs, %d executions, %d straight cuts checked, %d cut restores replayed — every straight cut is a recovery line, full or pruned\n",
			res.Programs, res.Executions, res.CutsChecked, res.RestoresChecked)
		if verbose && res.TransformRejected > 0 {
			fmt.Fprintf(stdout, "   (%d generated programs fell outside the transformable set and were regenerated)\n",
				res.TransformRejected)
		}
	}
	return code
}

// replayOne regenerates a single program from a counterexample's printed
// sub-seed and re-verifies it with the program text shown, for debugging
// a reported failure in isolation.
func replayOne(sub int64, ns []int, depth, schedules int, mutate bool, stdout, stderr io.Writer) int {
	prog := verify.Generate(sub)
	fmt.Fprintf(stdout, "== program (sub-seed %d) ==\n%s\n", sub, mpl.Format(prog))
	rep, err := core.Transform(prog, core.DefaultConfig)
	if err != nil {
		fmt.Fprintln(stderr, "chkptverify: transform:", err)
		return 1
	}
	fmt.Fprintf(stdout, "== transformed (%d straight-cut indexes) ==\n%s\n",
		rep.CheckpointCount(), mpl.Format(rep.Program))
	res, err := verify.Run(context.Background(), verify.Options{
		Seed: sub, Programs: 1, Depth: depth, MaxSchedules: schedules,
		Nprocs: ns, Mutate: mutate, Workers: 1,
	})
	if err != nil {
		fmt.Fprintln(stderr, "chkptverify:", err)
		return 1
	}
	return report(res, mutate, true, stdout, stderr)
}

func parseNprocs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -nprocs entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-nprocs selects no process counts")
	}
	return out, nil
}
