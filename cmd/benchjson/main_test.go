package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: Intel(R) Xeon(R)
BenchmarkTransportRoundTrip 	   20000	      1550 ns/op	     638 B/op	       2 allocs/op
BenchmarkQueuePushPop-8     	   10000	        62.93 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/sim	0.034s
pkg: repro/internal/montecarlo
BenchmarkSimulateGamma/workers=2-8 	     100	   5217841 ns/op	    2215 B/op	      29 allocs/op	  38330000 trials/s
--- BENCH: some log line
BenchmarkBroken 	 notanumber	 12 ns/op
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}

	rt := results[0]
	if rt.Pkg != "repro/internal/sim" || rt.Name != "BenchmarkTransportRoundTrip" {
		t.Errorf("round trip identity = %q %q", rt.Pkg, rt.Name)
	}
	if rt.Procs != 0 || rt.Iterations != 20000 || rt.NsPerOp != 1550 {
		t.Errorf("round trip = %+v", rt)
	}
	if rt.BytesPerOp == nil || *rt.BytesPerOp != 638 || rt.AllocsPerOp == nil || *rt.AllocsPerOp != 2 {
		t.Errorf("round trip benchmem = %+v", rt)
	}

	qp := results[1]
	if qp.Name != "BenchmarkQueuePushPop" || qp.Procs != 8 || qp.NsPerOp != 62.93 {
		t.Errorf("queue = %+v", qp)
	}

	mc := results[2]
	if mc.Pkg != "repro/internal/montecarlo" || mc.Name != "BenchmarkSimulateGamma/workers=2" {
		t.Errorf("montecarlo identity = %+v", mc)
	}
	if mc.Metrics["trials/s"] != 38330000 {
		t.Errorf("custom metric = %+v", mc.Metrics)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	noise := `building...
BenchmarkOnlyName
Benchmark 12
ok   repro 0.1s
`
	results, err := Parse(strings.NewReader(noise))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d results from noise", len(results))
	}
}
