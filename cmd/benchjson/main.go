// Command benchjson converts `go test -bench` text output into the
// machine-readable BENCH_*.json files that track the repo's performance
// trajectory across PRs:
//
//	go test -bench . -benchmem ./... | benchjson -o BENCH_simcore.json
//
// Each benchmark result line becomes one JSON object carrying the package
// (from the interleaved "pkg:" context lines), the benchmark name split
// from its -cpu suffix, iteration count, ns/op, the -benchmem columns when
// present, and every custom b.ReportMetric column (e.g. "trials/s").
// Non-benchmark lines (build noise, PASS/ok, logs) are ignored, so the
// whole `go test` stream can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Pkg         string             `json:"pkg,omitempty"`
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	flag.Parse()
	results, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Parse reads a `go test -bench` stream and returns every benchmark
// result, tagged with the most recent "pkg:" context line.
func Parse(r io.Reader) ([]Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	results := []Result{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseLine(line)
		if !ok {
			continue
		}
		res.Pkg = pkg
		results = append(results, res)
	}
	return results, sc.Err()
}

// parseLine parses one "BenchmarkName-P  N  v unit  v unit ..." line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	res := Result{Name: fields[0]}
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name, res.Procs = res.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Iterations = iters
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			res.NsPerOp = v
			sawNs = true
		case "B/op":
			b := v
			res.BytesPerOp = &b
		case "allocs/op":
			a := v
			res.AllocsPerOp = &a
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = v
		}
	}
	return res, sawNs
}
