package main

import (
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/fleet"
)

func runFleet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	sigs := make(chan os.Signal)
	code = run(args, &out, &errb, sigs)
	return code, out.String(), errb.String()
}

func TestSmallFleetConservedExitsZero(t *testing.T) {
	code, out, stderr := runFleet(t, "-jobs", "15", "-max-inflight", "16", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
	if !strings.Contains(out, "conserved          true") {
		t.Fatalf("report missing conservation line:\n%s", out)
	}
	if !regexp.MustCompile(`succeeded\s+15\b`).MatchString(out) {
		t.Fatalf("report missing 15 successes:\n%s", out)
	}
}

func TestChaosFleetStillConserved(t *testing.T) {
	code, out, stderr := runFleet(t,
		"-jobs", "30", "-max-inflight", "8", "-seed", "11",
		"-storage-fault-rate", "0.05", "-crash-rate", "0.5",
		"-business-rate", "0.2", "-tenants", "batch:4:3,interactive::1")
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
	if !strings.Contains(out, "conserved          true") {
		t.Fatalf("chaos fleet not conserved:\n%s", out)
	}
}

func TestDrainAfterTimerCutsStreamShort(t *testing.T) {
	// A paced arrival stream far larger than the test budget; the drain
	// timer (the same path a SIGTERM takes) must cut it short, and the CLI
	// must still exit 0 with the books balanced.
	code, out, stderr := runFleet(t,
		"-jobs", "1000000", "-rate", "2000", "-seed", "3",
		"-drain-after", "40ms")
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
	if !strings.Contains(stderr, "drain timer fired") {
		t.Fatalf("drain timer did not fire:\n%s", stderr)
	}
	m := regexp.MustCompile(`fleet: (\d+) arrivals`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no arrivals line:\n%s", out)
	}
	if n, _ := strconv.Atoi(m[1]); n >= 1000000 {
		t.Fatalf("drain did not stop the stream: %d arrivals", n)
	}
	if !strings.Contains(out, "conserved          true") {
		t.Fatalf("drained fleet not conserved:\n%s", out)
	}
}

func TestEventsOutAndFileStore(t *testing.T) {
	dir := t.TempDir()
	events := dir + "/fleet.jsonl"
	code, out, stderr := runFleet(t,
		"-jobs", "5", "-seed", "2", "-store", dir+"/snaps", "-events-out", events)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
	b, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{`"admit"`, `"jobdone"`, `"drain"`} {
		if !strings.Contains(string(b), kind) {
			t.Errorf("events stream missing %s events", kind)
		}
	}
	// The file store persisted namespaced snapshots.
	fis, err := os.ReadDir(dir + "/snaps")
	if err != nil || len(fis) == 0 {
		t.Fatalf("file store empty: %v (%d entries)", err, len(fis))
	}
}

func TestWALStoreFlag(t *testing.T) {
	dir := t.TempDir()
	code, out, stderr := runFleet(t, "-jobs", "5", "-seed", "2", "-store", "wal:"+dir+"/log")
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
	if !strings.Contains(out, "wal store:") {
		t.Errorf("no wal store stats in output:\n%s", out)
	}
	// The log persisted segments and a manifest on disk.
	fis, err := os.ReadDir(dir + "/log")
	if err != nil || len(fis) == 0 {
		t.Fatalf("wal store dir empty: %v (%d entries)", err, len(fis))
	}
}

func TestBadFlagsExitTwo(t *testing.T) {
	if code, _, _ := runFleet(t, "-jobs", "nope"); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
	if code, _, _ := runFleet(t, "positional"); code != 2 {
		t.Fatalf("positional arg exit = %d, want 2", code)
	}
	if code, _, stderr := runFleet(t, "-tenants", "a:bad"); code != 2 || !strings.Contains(stderr, "bad quota") {
		t.Fatalf("bad tenants exit = %d stderr=%q, want 2", code, stderr)
	}
}

func TestParseTenants(t *testing.T) {
	got, err := parseTenants("batch:8:3, interactive::0.5 ,best-effort")
	if err != nil {
		t.Fatal(err)
	}
	want := []fleet.TenantConfig{
		{Name: "batch", Quota: 8, Weight: 3},
		{Name: "interactive", Weight: 0.5},
		{Name: "best-effort"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tenant %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if _, err := parseTenants("a,a"); err == nil {
		t.Error("duplicate tenant accepted")
	}
	if _, err := parseTenants(":3"); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := parseTenants("a:1:2:3"); err == nil {
		t.Error("over-long spec accepted")
	}
	if ts, err := parseTenants("  "); err != nil || ts != nil {
		t.Errorf("blank spec = %v, %v", ts, err)
	}
}

func TestTelemetryServerServesFleetGauges(t *testing.T) {
	// Ephemeral-port telemetry must come up, serve the fleet gauges, and
	// shut down cleanly through the deferred close path.
	code, out, stderr := runFleet(t,
		"-jobs", "10", "-seed", "9", "-telemetry-addr", "127.0.0.1:0",
		"-telemetry-window", "20ms")
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
	if !strings.Contains(stderr, "telemetry at http://") {
		t.Fatalf("no telemetry banner:\n%s", stderr)
	}
}
