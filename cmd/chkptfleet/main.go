// Command chkptfleet drives a fleet of concurrent checkpointed jobs
// against one shared store, exercising the robustness stack end to end:
// open-loop Poisson arrivals, per-tenant quotas and admission control,
// budgeted retries, a circuit breaker over the shared storage, and
// graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	chkptfleet -jobs 1000 [-rate 500] [-nproc 3] [-iters 3]
//	           [-max-inflight 32] [-tenants 'batch:8:3,interactive::1']
//	           [-seed 1] [-storage-fault-rate 0.05] [-crash-rate 0.5]
//	           [-net-fault-rate 0.02] [-business-rate 0.01]
//	           [-breaker-threshold 5] [-breaker-cooldown 50ms]
//	           [-retry-budget 4] [-drain-timeout 30s] [-job-timeout 30s]
//	           [-drain-after 0] [-store mem|wal:DIR|DIR] [-events-out fleet.jsonl]
//	           [-telemetry-addr 127.0.0.1:9464] [-telemetry-window 250ms]
//	           [-dash] [-q]
//
// Each tenant is NAME[:QUOTA[:WEIGHT]]; an empty quota means unbounded
// (the fleet-wide -max-inflight cap still applies) and weight biases the
// arrival draw. -rate 0 generates arrivals back to back (closed only by
// admission). -drain-after begins graceful drain on a timer — the same
// path a SIGTERM takes — which is how CI exercises shutdown without
// signals.
//
// The run exits non-zero if the taxonomy is violated (an admitted job
// missing from succeeded/infra_failed/business_failed/parked — a silent
// loss) or if telemetry artifacts cannot be flushed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/storage/wal"
	"repro/internal/telemetry"
)

func main() {
	// SIGINT/SIGTERM begin graceful drain: stop admitting, give in-flight
	// jobs the drain timeout, park the rest, then report and exit through
	// the ordinary path so telemetry still flushes.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sigs))
}

func run(args []string, stdout, stderr io.Writer, sigs <-chan os.Signal) (code int) {
	fs := flag.NewFlagSet("chkptfleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jobs       = fs.Int("jobs", 100, "arrivals to generate")
		rate       = fs.Float64("rate", 0, "open-loop Poisson arrival rate in jobs/second (0 = back to back)")
		nproc      = fs.Int("nproc", 3, "processes per job")
		iters      = fs.Int("iters", 3, "Jacobi iterations per job")
		maxInFl    = fs.Int("max-inflight", 32, "fleet-wide concurrent-job cap (admission control)")
		tenantsStr = fs.String("tenants", "", "tenants as NAME[:QUOTA[:WEIGHT]], comma-separated (empty = one unbounded tenant)")
		seed       = fs.Int64("seed", 1, "seed for arrivals, tenants, chaos, and business verdicts (same seed, same fleet)")
		faultRate  = fs.Float64("storage-fault-rate", 0, "storage chaos rate on the SHARED store in [0,1]")
		crashRate  = fs.Float64("crash-rate", 0, "expected injected crashes per job (Poisson)")
		netRate    = fs.Float64("net-fault-rate", 0, "per-job network chaos rate in [0,1] (drop/dup/reorder)")
		bizRate    = fs.Float64("business-rate", 0, "fraction of jobs ending in a simulated business failure")
		brkThresh  = fs.Int("breaker-threshold", 0, "consecutive transient store failures that open the breaker (0 = default)")
		brkCool    = fs.Duration("breaker-cooldown", 0, "how long the open breaker sheds before probing (0 = default)")
		retryBudg  = fs.Int64("retry-budget", 0, "retry tokens deposited per admitted job into its tenant's budget (0 = default, negative disables budgets)")
		drainTmo   = fs.Duration("drain-timeout", 30*time.Second, "how long drain waits for in-flight jobs before cancel-parking them")
		jobTmo     = fs.Duration("job-timeout", 30*time.Second, "per-job watchdog timeout")
		drainAfter = fs.Duration("drain-after", 0, "begin graceful drain after this long (0 = only on signal/stream end)")
		storeKind  = fs.String("store", "mem", "shared stable storage: mem, wal:DIR (durable group-commit log), or a directory path for the file store")
		noPrune    = fs.Bool("no-prune", false, "persist full variable environments instead of liveness-minimized checkpoint manifests")
		eventsOut  = fs.String("events-out", "", "stream structured JSONL fleet+runtime events to this file")
		telAddr    = fs.String("telemetry-addr", "", "serve live telemetry on this address: /metrics, /snapshot.json, /healthz")
		telWindow  = fs.Duration("telemetry-window", 250*time.Millisecond, "telemetry aggregation window")
		dash       = fs.Bool("dash", false, "render a live telemetry dashboard to stderr")
		quiet      = fs.Bool("q", false, "suppress the per-run banner (report still prints)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: chkptfleet [flags] (no positional arguments)")
		fs.PrintDefaults()
		return 2
	}
	tenants, err := parseTenants(*tenantsStr)
	if err != nil {
		fmt.Fprintln(stderr, "chkptfleet:", err)
		return 2
	}

	// fail reports a flush/teardown error and forces a failing exit code
	// from the deferred close paths below.
	fail := func(err error) {
		fmt.Fprintln(stderr, "chkptfleet:", err)
		if code == 0 {
			code = 1
		}
	}

	var store storage.Store
	var walStore *wal.Store
	switch {
	case *storeKind == "mem":
		// fleet default: per-run in-memory store
	case strings.HasPrefix(*storeKind, "wal:"):
		ws, err := wal.Open(strings.TrimPrefix(*storeKind, "wal:"), wal.Options{})
		if err != nil {
			fmt.Fprintln(stderr, "chkptfleet:", err)
			return 1
		}
		defer func() {
			if err := ws.Close(); err != nil {
				fail(err)
			}
		}()
		walStore = ws
		store = ws
	default:
		fileStore, err := storage.NewFile(*storeKind)
		if err != nil {
			fmt.Fprintln(stderr, "chkptfleet:", err)
			return 1
		}
		store = fileStore
	}

	var observers []obs.Observer
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fmt.Fprintln(stderr, "chkptfleet:", err)
			return 1
		}
		stream := obs.NewStreamWriter(bufferedFile{bufio.NewWriterSize(f, 64<<10), f})
		stream.AutoFlush(200 * time.Millisecond)
		defer func() {
			if err := stream.Close(); err != nil {
				fail(err)
			}
		}()
		observers = append(observers, stream)
	}

	counters := &metrics.Counters{}
	observer := obs.Multi(observers...)
	if *telAddr != "" || *dash {
		tcfg := telemetry.Config{
			Nproc:    *nproc,
			Window:   *telWindow,
			Counters: counters,
			Sink:     observer,
		}
		if walStore != nil {
			tcfg.WALStats = walStore.Stats
		}
		agg := telemetry.New(tcfg)
		observer = obs.Multi(observer, agg)
		stopTick := agg.Start()
		if *telAddr != "" {
			srv, err := telemetry.NewServer(*telAddr, agg)
			if err != nil {
				fmt.Fprintln(stderr, "chkptfleet:", err)
				stopTick()
				return 1
			}
			fmt.Fprintf(stderr, "chkptfleet: telemetry at %s/metrics\n", srv.URL())
			defer func() {
				if err := srv.Close(); err != nil {
					fail(err)
				}
			}()
		}
		var stopDash func()
		if *dash {
			stopDash = telemetry.NewDashboard(agg, stderr).RunUntil()
		}
		defer func() {
			stopTick()
			agg.Tick() // close the final partial window
			if stopDash != nil {
				stopDash()
			}
		}()
	}

	e := fleet.New(fleet.Config{
		Jobs:             *jobs,
		Nproc:            *nproc,
		Iters:            *iters,
		ArrivalRate:      *rate,
		MaxInFlight:      *maxInFl,
		Tenants:          tenants,
		Seed:             *seed,
		StorageFaultRate: *faultRate,
		CrashLambda:      *crashRate,
		NetFaultRate:     *netRate,
		BusinessFailRate: *bizRate,
		Breaker: fleet.BreakerConfig{
			FailureThreshold: *brkThresh,
			Cooldown:         *brkCool,
		},
		RetryBudgetPerJob: *retryBudg,
		Store:             store,
		NoPrune:           *noPrune,
		DrainTimeout:      *drainTmo,
		JobTimeout:        *jobTmo,
		Observer:          observer,
		Counters:          counters,
	})

	// Drain triggers: an OS signal, or the -drain-after timer (CI's way to
	// exercise the shutdown path deterministically). Engine.Drain is
	// idempotent, so the two can race freely.
	stopSignals := make(chan struct{})
	defer close(stopSignals)
	go func() {
		var timer <-chan time.Time
		if *drainAfter > 0 {
			timer = time.After(*drainAfter)
		}
		select {
		case <-sigs:
			fmt.Fprintln(stderr, "chkptfleet: signal received; draining")
			e.Drain()
		case <-timer:
			fmt.Fprintln(stderr, "chkptfleet: drain timer fired; draining")
			e.Drain()
		case <-stopSignals:
		}
	}()

	if !*quiet {
		fmt.Fprintf(stderr, "chkptfleet: %d jobs, rate=%g/s, inflight<=%d, %d tenant(s), seed=%d\n",
			*jobs, *rate, *maxInFl, max(1, len(tenants)), *seed)
	}
	rep, err := e.Run()
	fmt.Fprint(stdout, rep.String())
	if walStore != nil {
		st := walStore.Stats()
		fmt.Fprintf(stdout, "wal store: %d save(s) in %d group commit(s), %d rotation(s), %d compaction(s), %d recovered, %dB torn tail truncated\n",
			st.Saves, st.Batches, st.Rotations, st.Compactions, st.Recovered, st.TruncatedBytes)
	}
	if err != nil {
		// Conservation violation: an admitted job is missing from the
		// taxonomy — a silent loss. Never exit 0 on that.
		fmt.Fprintln(stderr, "chkptfleet:", err)
		return 1
	}
	return 0
}

// parseTenants parses NAME[:QUOTA[:WEIGHT]],... ("batch:8:3,interactive::1").
func parseTenants(s string) ([]fleet.TenantConfig, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []fleet.TenantConfig
	seen := make(map[string]bool)
	for _, spec := range strings.Split(s, ",") {
		parts := strings.Split(spec, ":")
		if len(parts) > 3 {
			return nil, fmt.Errorf("tenant %q: want NAME[:QUOTA[:WEIGHT]]", spec)
		}
		t := fleet.TenantConfig{Name: strings.TrimSpace(parts[0])}
		if t.Name == "" {
			return nil, fmt.Errorf("tenant %q: empty name", spec)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("tenant %q: duplicate name", t.Name)
		}
		seen[t.Name] = true
		if len(parts) > 1 && strings.TrimSpace(parts[1]) != "" {
			q, err := strconv.Atoi(strings.TrimSpace(parts[1]))
			if err != nil {
				return nil, fmt.Errorf("tenant %q: bad quota: %v", spec, err)
			}
			t.Quota = q
		}
		if len(parts) > 2 && strings.TrimSpace(parts[2]) != "" {
			w, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
			if err != nil {
				return nil, fmt.Errorf("tenant %q: bad weight: %v", spec, err)
			}
			t.Weight = w
		}
		out = append(out, t)
	}
	return out, nil
}

// bufferedFile routes stream writes through a bufio buffer while letting
// StreamWriter.Close flush it and close the underlying file.
type bufferedFile struct {
	*bufio.Writer
	f *os.File
}

func (b bufferedFile) Close() error { return b.f.Close() }
