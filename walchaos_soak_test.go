package repro_test

// WAL chaos soak: the acceptance test of the durable checkpoint log.
// Seeded runs drive concurrent saves and deletes into the WAL store while
// a deterministic injector kills it at arbitrary durability points
// (append / fsync / manifest write / rename / segment create / retire),
// tears in-flight batches, and flips bits in acknowledged record bodies.
// After every kill the store is REOPENED over the damaged directory and
// the fundamental invariant is checked:
//
//	every Save that returned nil is recovered — either byte-exact
//	(CRC-verified on read) or, if a flip rotted it, as ErrCorrupt;
//	NEVER missing and NEVER served with wrong contents. Acknowledged
//	deletes stay deleted. Torn tails are never served.
//
// Across >= 24 seeds (SOAK_SEEDS overrides; -short trims) with -race via
// `make walchaos`. One seed replays one fault schedule exactly: the
// injector is hash-deterministic and the store serializes consults
// per shard.

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/storage"
	"repro/internal/storage/wal"
	"repro/internal/vclock"
)

type walKey struct{ proc, index, instance int }

// walOrd recovers the workload ordinal a key was minted from (ord%8 is the
// proc, ord/8 the index), so checks can recompute per-key lane choices.
func walOrd(k walKey) int { return k.index*8 + k.proc }

// walPruned selects the liveness-pruned lane: every third ordinal writes a
// manifest-carrying snapshot, the shape the runtime persists for
// application checkpoints.
func walPruned(ord int) bool { return ord%3 == 2 }

func walSnap(k walKey, val int) storage.Snapshot {
	clk := vclock.New(k.proc + 1)
	clk[k.proc] = uint64(val)
	s := storage.Snapshot{
		Proc: k.proc, CFGIndex: k.index, Instance: k.instance,
		Clock: clk,
		Vars:  map[string]int{"v": val},
		PC:    fmt.Sprintf("pc%d", val),
	}
	if walPruned(walOrd(k)) {
		s.Manifest = []string{"v"}
	}
	return s
}

// walLedger tracks, under lock, what the workload was told: which saves
// and deletes were acknowledged, and which deletes were attempted (their
// tombstone may have hit disk even though the ack died with the crash).
type walLedger struct {
	mu           sync.Mutex
	acked        map[walKey]int // key -> expected Vars["v"]
	deleted      map[walKey]bool
	delAttempted map[walKey]bool
}

func newWALLedger() *walLedger {
	return &walLedger{
		acked:        map[walKey]int{},
		deleted:      map[walKey]bool{},
		delAttempted: map[walKey]bool{},
	}
}

// verify checks the whole ledger against a freshly recovered store.
// Returns the corrupt keys seen (for optional scrubbing).
func (l *walLedger) verify(t *testing.T, w *wal.Store, seed int64, round int) []walKey {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	var corrupt []walKey
	for k, want := range l.acked {
		s, err := w.Get(k.proc, k.index, k.instance)
		switch {
		case err == nil:
			if s.Vars["v"] != want || s.PC != fmt.Sprintf("pc%d", want) {
				t.Fatalf("seed %d round %d: acked save %v recovered with WRONG contents: got v=%d want %d",
					seed, round, k, s.Vars["v"], want)
			}
			// Pruned-lane oracle: an acked pruned checkpoint must keep its
			// manifest (it is inside the CRC'd payload) and every live
			// variable — the v check above — across crash and reopen.
			if pruned := walPruned(walOrd(k)); pruned != (len(s.Manifest) == 1 && s.Manifest[0] == "v") {
				t.Fatalf("seed %d round %d: acked save %v recovered with manifest %v, pruned-lane=%v",
					seed, round, k, s.Manifest, pruned)
			}
		case errors.Is(err, storage.ErrCorrupt):
			// Acceptable only because flips model media rot of the body;
			// the damage is detected, attributed, and never served.
			corrupt = append(corrupt, k)
		case errors.Is(err, storage.ErrNotFound) && l.delAttempted[k]:
			// An unacked delete's tombstone beat the crash to disk.
			delete(l.acked, k)
			l.deleted[k] = true
		default:
			t.Fatalf("seed %d round %d: acked save %v LOST after crash+reopen: %v", seed, round, k, err)
		}
	}
	for k := range l.deleted {
		if _, err := w.Get(k.proc, k.index, k.instance); !errors.Is(err, storage.ErrNotFound) {
			t.Fatalf("seed %d round %d: acked delete %v resurrected: %v", seed, round, k, err)
		}
	}
	return corrupt
}

func TestWALChaosSoak(t *testing.T) {
	defSeeds := 24
	if testing.Short() {
		defSeeds = 4
	}
	seeds := soakSeeds(t, defSeeds)

	var (
		aggMu      sync.Mutex
		aggKills   int64
		aggFlips   int64
		aggReopens int64
		aggAcked   int64
	)
	for seed := int64(0); seed < int64(seeds); seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			ledger := newWALLedger()
			const (
				rounds     = 12
				writers    = 4
				perWriter  = 40
				shardCount = 4
			)
			var kills, flips, reopens int64
			next := 0 // next fresh key ordinal

			for round := 0; round < rounds; round++ {
				// A fresh injector per round varies the fault schedule while
				// keeping the whole run replayable from (seed, round).
				inj := chaos.NewWALInjector(seed<<8|int64(round), chaos.WALRates{
					CrashRate: 0.004,
					FlipRate:  0.002,
				})
				w, err := wal.Open(dir, wal.Options{
					Shards:          shardCount,
					MaxSegmentBytes: 8 << 10, // tiny: force rotation + compaction under fire
					Injector:        inj,
				})
				if err != nil {
					t.Fatalf("seed %d round %d: recovery failed to open the damaged log: %v", seed, round, err)
				}
				if round > 0 {
					reopens++
				}

				// Invariant check against everything acked in prior rounds.
				corrupt := ledger.verify(t, w, seed, round)
				// Scrub every other round: quarantined keys become durable
				// tombstones (and must STAY gone after later reopens). A kill
				// can land mid-scrub, tombstoning some shards but not others,
				// so mark the keys delete-attempted FIRST — then a partially
				// landed tombstone reads as an ordinary unacked delete.
				if round%2 == 1 && len(corrupt) > 0 {
					ledger.mu.Lock()
					for _, k := range corrupt {
						ledger.delAttempted[k] = true
					}
					ledger.mu.Unlock()
					if _, err := w.Scrub(); err == nil {
						ledger.mu.Lock()
						for _, k := range corrupt {
							delete(ledger.acked, k)
							ledger.deleted[k] = true
						}
						ledger.mu.Unlock()
					} else if !errors.Is(err, wal.ErrCrashed) {
						t.Fatalf("seed %d round %d: scrub: %v", seed, round, err)
					}
				}

				// Concurrent workload: each writer owns a disjoint key range;
				// every fifth key is deleted right after saving.
				base := next
				next += writers * perWriter
				var wg sync.WaitGroup
				for wr := 0; wr < writers; wr++ {
					wg.Add(1)
					go func(wr int) {
						defer wg.Done()
						for i := 0; i < perWriter; i++ {
							ord := base + wr*perWriter + i
							k := walKey{proc: ord % 8, index: ord / 8, instance: 0}
							val := 1000 + ord
							err := w.Save(walSnap(k, val))
							switch {
							case err == nil:
								ledger.mu.Lock()
								ledger.acked[k] = val
								ledger.mu.Unlock()
							case errors.Is(err, wal.ErrCrashed):
								return
							default:
								t.Errorf("seed %d round %d: Save(%v) failed oddly: %v", seed, round, k, err)
								return
							}
							if ord%5 == 4 {
								derr := w.Delete(k.proc, k.index, k.instance)
								ledger.mu.Lock()
								switch {
								case derr == nil:
									delete(ledger.acked, k)
									ledger.deleted[k] = true
									ledger.delAttempted[k] = true
								case errors.Is(derr, wal.ErrCrashed):
									ledger.delAttempted[k] = true
								case errors.Is(derr, storage.ErrNotFound):
									// fine: save may itself have been unacked
								default:
									t.Errorf("seed %d round %d: Delete(%v) failed oddly: %v", seed, round, k, derr)
								}
								ledger.mu.Unlock()
								if errors.Is(derr, wal.ErrCrashed) {
									return
								}
							}
						}
					}(wr)
				}
				wg.Wait()
				st := inj.Stats()
				kills += st.Kills
				flips += st.Flips
				w.Close()
			}

			// Final recovery with NO injector: everything the ledger holds
			// must verify clean one last time.
			w, err := wal.Open(dir, wal.Options{Shards: shardCount})
			if err != nil {
				t.Fatalf("seed %d: final recovery failed: %v", seed, err)
			}
			defer w.Close()
			ledger.verify(t, w, seed, rounds)
			// Recovery must also never SERVE damage through bulk reads:
			// List either succeeds with verified records or fails ErrCorrupt.
			for p := 0; p < 8; p++ {
				if _, err := w.List(p); err != nil && !errors.Is(err, storage.ErrCorrupt) {
					t.Fatalf("seed %d: List(%d) after recovery: %v", seed, p, err)
				}
			}

			ledger.mu.Lock()
			ackedCount := int64(len(ledger.acked))
			ledger.mu.Unlock()
			aggMu.Lock()
			aggKills += kills
			aggFlips += flips
			aggReopens += reopens
			aggAcked += ackedCount
			aggMu.Unlock()
		})
	}

	t.Cleanup(func() {
		if t.Failed() {
			return
		}
		t.Logf("walchaos soak: acked=%d kills=%d flips=%d reopens=%d across %d seeds",
			aggAcked, aggKills, aggFlips, aggReopens, seeds)
		if fleetAssertions(t, seeds, defSeeds) && !testing.Short() {
			// The matrix is vacuous if the machinery never fired.
			if aggKills == 0 {
				t.Error("no crash point ever fired across the full matrix")
			}
			if aggFlips == 0 {
				t.Error("no bit flip ever fired across the full matrix")
			}
			if aggReopens == 0 {
				t.Error("no kill/reopen loop ever ran")
			}
			if aggAcked < 1000 {
				t.Errorf("only %d live acked checkpoints verified, want >= 1000", aggAcked)
			}
		}
	})
}
