// Package repro is a full reproduction of "Application-Driven
// Coordination-Free Distributed Checkpointing" (Agbaria & Sanders, ICDCS
// 2005): an offline, compile-time transformation of SPMD message-passing
// programs that places checkpoint statements so every straight cut of
// checkpoints is a recovery line — no coordination messages, no forced
// checkpoints, no rollback propagation at runtime.
//
// The library lives under internal/: the MPL language (mpl), control-flow
// graphs (cfg), the rank data-flow analysis (dataflow), the attribute
// solver (attr), the three transformation phases (insert, match, place)
// orchestrated by core, the concurrent goroutine/channel runtime (sim)
// with stable storage (storage), traces and happened-before (trace,
// vclock), recovery-line selection (recovery), the baseline protocols
// (protocol), and the §4 stochastic analysis (markov, montecarlo).
//
// Executables: cmd/chkptc (the offline transformer), cmd/chkptsim (the
// runtime driver), and cmd/chkptbench (regenerates the paper's figures).
// Runnable walkthroughs are under examples/.
//
// The benchmarks in bench_test.go regenerate every evaluation artifact of
// the paper; see EXPERIMENTS.md for the paper-vs-measured record.
package repro
