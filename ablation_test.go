package repro_test

// Ablation studies for the design choices documented in DESIGN.md and
// EXPERIMENTS.md: matching mode (one-to-one vs liberal), placement mode
// (loop-preserving vs base Algorithm 3.2), and attribute-solver bounds.

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/match"
	"repro/internal/place"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/zigzag"
)

// BenchmarkAblationMatchingMode compares the paper's one-to-one matching
// with the liberal all-pairs mode: edge counts and matcher cost. The
// doubled exchange motif is where they diverge — liberal matching invents
// FIFO-impossible cross-motif edges.
func BenchmarkAblationMatchingMode(b *testing.B) {
	prog := corpus.Random(3) // contains two identical exchange motifs
	var faithfulEdges, liberalEdges int
	for i := 0; i < b.N; i++ {
		f, err := match.BuildExtended(prog, match.Options{})
		if err != nil {
			b.Fatal(err)
		}
		l, err := match.BuildExtended(prog, match.Options{Liberal: true})
		if err != nil {
			b.Fatal(err)
		}
		faithfulEdges, liberalEdges = len(f.Messages), len(l.Messages)
	}
	b.ReportMetric(float64(faithfulEdges), "edges(one-to-one)")
	b.ReportMetric(float64(liberalEdges), "edges(liberal)")
}

// BenchmarkAblationPlacementMode compares loop-preserving placement with
// base Algorithm 3.2 on the checkpoint granularity that survives: base
// mode moves checkpoints out of loops (the paper's noted drawback), so a
// run takes far fewer checkpoints — coarser recovery granularity for the
// same program.
func BenchmarkAblationPlacementMode(b *testing.B) {
	prog := corpus.JacobiFig2(4)
	var preserveCkpts, baseCkpts int64
	for i := 0; i < b.N; i++ {
		for _, mode := range []struct {
			preserve bool
			out      *int64
		}{{true, &preserveCkpts}, {false, &baseCkpts}} {
			rep, err := core.Transform(prog, core.Config{PreserveLoops: mode.preserve})
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.Run(sim.Config{Program: rep.Program, Nproc: 4, DisableTrace: true})
			if err != nil {
				b.Fatal(err)
			}
			*mode.out = res.Metrics.Checkpoints
		}
	}
	b.ReportMetric(float64(preserveCkpts), "ckpts(preserve)")
	b.ReportMetric(float64(baseCkpts), "ckpts(base)")
	if preserveCkpts <= baseCkpts {
		b.Fatalf("loop preservation should retain checkpoint granularity: %d vs %d",
			preserveCkpts, baseCkpts)
	}
}

// BenchmarkAblationSolverBounds measures how the attribute solver's
// process-count bound affects matching cost (exactness is covered by unit
// tests; the bound is a pure cost knob for the modular patterns in SPMD
// code).
func BenchmarkAblationSolverBounds(b *testing.B) {
	prog := corpus.JacobiFig2(3)
	for _, maxN := range []int{5, 17, 33} {
		maxN := maxN
		b.Run(map[int]string{5: "maxN=5", 17: "maxN=17", 33: "maxN=33"}[maxN], func(b *testing.B) {
			opts := match.Options{Solver: attr.Solver{MinProcs: 2, MaxProcs: maxN}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := match.BuildExtended(prog, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestAblationSolverBoundsAgree checks that widening the solver bound does
// not change the matching on the corpus (17 is already past the modular
// periods used).
func TestAblationSolverBoundsAgree(t *testing.T) {
	for name, prog := range corpus.All() {
		narrow, err := match.BuildExtended(prog, match.Options{Solver: attr.Solver{MinProcs: 2, MaxProcs: 17}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wide, err := match.BuildExtended(prog, match.Options{Solver: attr.Solver{MinProcs: 2, MaxProcs: 33}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(narrow.Messages) != len(wide.Messages) {
			t.Errorf("%s: edge count changed with bound: %d vs %d",
				name, len(narrow.Messages), len(wide.Messages))
		}
	}
}

// BenchmarkAblationIncrementalStore quantifies the footprint saving of
// delta-encoded checkpoints against full snapshots on a real run.
func BenchmarkAblationIncrementalStore(b *testing.B) {
	prog := corpus.JacobiFig1(8)
	var fullB, deltaB int
	for i := 0; i < b.N; i++ {
		inc := storage.NewIncremental(8)
		if _, err := sim.Run(sim.Config{Program: prog, Nproc: 4, Store: inc, DisableTrace: true}); err != nil {
			b.Fatal(err)
		}
		st := inc.Stats()
		fullB, deltaB = st.FullBytes, st.DeltaBytes
	}
	b.ReportMetric(float64(fullB), "fullB")
	b.ReportMetric(float64(deltaB), "deltaB")
}

// BenchmarkZigzagAnalysis times useless-checkpoint detection on a trace.
func BenchmarkZigzagAnalysis(b *testing.B) {
	res, err := sim.Run(sim.Config{Program: corpus.ZigzagProne(6), Nproc: 6})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := zigzag.FromTrace(res.Trace)
		if err != nil {
			b.Fatal(err)
		}
		if len(a.Useless()) == 0 {
			b.Fatal("expected useless checkpoints")
		}
	}
}

// TestAblationBaseModeStillSafe confirms that the pessimistic base mode,
// despite coarser placement, yields safe programs across the corpus (its
// results additionally carry no loop-preserved orderings at all).
func TestAblationBaseModeStillSafe(t *testing.T) {
	for name, prog := range corpus.All() {
		res, err := place.Ensure(prog, place.Options{PreserveLoops: false})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Orderings) != 0 {
			t.Errorf("%s: base mode left orderings: %+v", name, res.Orderings)
		}
		violations, _, err := place.Check(res.Program, place.Options{PreserveLoops: false})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(violations) != 0 {
			t.Errorf("%s: base mode result unsafe: %+v", name, violations)
		}
	}
}
