#!/bin/sh
# Benchmark harness: runs the repo's benchmark suite with -benchmem and
# records machine-readable results, the perf trajectory later PRs measure
# themselves against:
#
#   BENCH_sweeps.json   — the compute sweeps: Monte Carlo (per worker
#                         count), the Figure 8/9 analytic series, the
#                         absorbing-chain solver;
#   BENCH_simcore.json  — the simulator hot paths: transport round trip,
#                         delivery queue, counters contention, transform
#                         pipeline, end-to-end failure/recovery runs;
#   BENCH_pipeline.json — the offline analysis pipeline: the aggregate
#                         transform benchmark its perf targets are pinned
#                         against (≤1,200 allocs/op and ≥3× wall over the
#                         pre-arena baseline, see EXPERIMENTS.md), the
#                         per-phase sub-benchmarks (CFG build / match /
#                         place) for regression attribution, and the
#                         generated large-program scaling run.
#
# BENCHTIME overrides -benchtime (default 1x: one measured iteration, the
# smoke setting CI uses; use e.g. BENCHTIME=2s locally for stable numbers).
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"

echo ">> building benchjson"
go build -o /tmp/benchjson.$$ ./cmd/benchjson
trap 'rm -f /tmp/benchjson.$$ /tmp/bench_out.$$' EXIT

run_set() {
    name="$1" pattern="$2" out="$3"
    shift 3
    echo ">> bench set $name (-bench '$pattern' -benchtime $BENCHTIME)"
    go test -run '^$' -bench "$pattern" -benchmem -benchtime "$BENCHTIME" "$@" \
        | tee /tmp/bench_out.$$
    /tmp/benchjson.$$ -o "$out" < /tmp/bench_out.$$
    echo ">> wrote $out"
}

# Sweep engine: sharded Monte Carlo across worker counts, analytic figure
# sweeps, chain solver.
run_set sweeps \
    'BenchmarkSimulateGamma|BenchmarkFigure|BenchmarkGamma|BenchmarkMonteCarloValidation' \
    BENCH_sweeps.json \
    ./internal/montecarlo/ ./internal/markov/ .

# Simulator core: per-message hot paths and end-to-end runs.
run_set simcore \
    'BenchmarkTransportRoundTrip|BenchmarkQueuePushPop|BenchmarkCountersInc|BenchmarkTransformPipeline$|BenchmarkRuntimeFailureRecovery|BenchmarkMessagesPerCheckpoint' \
    BENCH_simcore.json \
    ./internal/sim/ ./internal/metrics/ .

# Analysis pipeline: aggregate transform benchmark (the perf-target
# anchor), per-phase attribution benchmarks, large-program scaling.
run_set pipeline \
    'BenchmarkTransformPipeline$|BenchmarkTransformPipelineLarge|BenchmarkPipelineCFGBuild|BenchmarkPipelineMatch|BenchmarkPipelinePlace' \
    BENCH_pipeline.json \
    .

# Telemetry: the aggregator's observer-tap hot path (must stay ≤1 alloc/op)
# and the sketch observe/quantile paths it leans on.
run_set telemetry \
    'BenchmarkAggregatorIngest|BenchmarkSketch|BenchmarkRunTapOverhead' \
    BENCH_telemetry.json \
    ./internal/telemetry/ ./internal/metrics/

# Fleet: saturated end-to-end job throughput (clean and under chaos) and
# the breaker's closed-path per-op overhead (must stay 0 alloc/op).
run_set fleet \
    'BenchmarkFleetThroughput|BenchmarkFleetChaosThroughput|BenchmarkBreakerClosedPath' \
    BENCH_fleet.json \
    ./internal/fleet/

# Durable stores: 1000-job aggregate save throughput (the WAL's group
# commit vs the file store's fsync-per-save), uncontended save latency, and
# the liveness-pruned vs full-environment payload/latency comparison.
run_set store \
    'BenchmarkStoreAggregateSave|BenchmarkStoreSingleSave|BenchmarkSaveBytesPruned' \
    BENCH_store.json \
    .

echo 'bench OK'
