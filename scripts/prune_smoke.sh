#!/bin/sh
# Prune smoke: the liveness-minimized checkpointing A/B lane. Runs one
# program whose checkpoint sites have a genuinely dead variable through
# chkptsim twice — default (pruned) and -no-prune (full environments) —
# under crash/recovery chaos, and asserts:
#
#   1. both runs converge to the SAME final state (recovery from pruned
#      checkpoints is equivalent to recovery from full ones);
#   2. the pruned run reports nonzero bytes saved;
#   3. the -no-prune run reports no prune accounting at all (the flag
#      reproduces the old full-environment byte counts).
set -eu

cd "$(dirname "$0")/.."

SIM=/tmp/chkptsim_prune.$$
PROG=/tmp/prune_smoke_prog.$$
OUT_P=/tmp/prune_smoke_pruned.$$
OUT_F=/tmp/prune_smoke_full.$$
trap 'rm -f "$SIM" "$PROG" "$OUT_P" "$OUT_F"' EXIT

echo '>> building chkptsim'
go build -o "$SIM" ./cmd/chkptsim

# tmp is recomputed at the top of every iteration and zeroed before the
# loop ends, so it is dead at both checkpoint sites; x, y, iter stay live.
cat > "$PROG" <<'MPL'
program prunesmoke
const MAXITER = 6
var x, y, tmp, iter
proc {
    iter = 0
    while iter < MAXITER {
        tmp = x + iter
        x = tmp + rank
        if rank % 2 == 0 {
            chkpt
            send(rank + 1, x)
            recv(rank + 1, y)
        } else {
            recv(rank - 1, y)
            send(rank - 1, x)
            chkpt
        }
        tmp = 0
        iter = iter + 1
    }
}
MPL

echo '>> pruned run (default) with injected failures'
"$SIM" -n 4 -transform -fail 1:9 -fail 2:14 "$PROG" > "$OUT_P"
echo '>> full run (-no-prune) with the same failures'
"$SIM" -n 4 -transform -no-prune -fail 1:9 -fail 2:14 "$PROG" > "$OUT_F"

if ! grep -q '^prune: .* saved of ' "$OUT_P"; then
    echo 'pruned run reported no prune accounting:' >&2
    cat "$OUT_P" >&2
    exit 1
fi
if grep -q 'prune_bytes' "$OUT_P" && grep -q 'prune_bytes_saved=0 ' "$OUT_P"; then
    echo 'pruned run saved zero bytes — the dead variable was not dropped:' >&2
    cat "$OUT_P" >&2
    exit 1
fi
if grep -q 'prune_bytes\|^prune: ' "$OUT_F"; then
    echo '-no-prune run still reported prune accounting:' >&2
    cat "$OUT_F" >&2
    exit 1
fi

# Final states must match line for line (both runs print sorted vars).
STATE_P=$(grep '^  proc ' "$OUT_P")
STATE_F=$(grep '^  proc ' "$OUT_F")
if [ "$STATE_P" != "$STATE_F" ]; then
    echo 'pruned and full runs diverged:' >&2
    echo "pruned: $STATE_P" >&2
    echo "full:   $STATE_F" >&2
    exit 1
fi

echo "$(grep '^prune: ' "$OUT_P")"
echo 'prune smoke OK'
