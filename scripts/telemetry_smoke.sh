#!/bin/sh
# Telemetry smoke test: boots chkptsim with the live telemetry endpoint on
# an ephemeral port, then drives telemetryprobe (the repo's own stdlib
# scraper — no curl/wget dependence) against /metrics, /snapshot.json and
# /healthz. Exercises the full pull path CI-side: aggregator → exposition
# server → external scrape.
set -eu

cd "$(dirname "$0")/.."

echo '>> building chkptsim + telemetryprobe'
SIM=/tmp/chkptsim.$$
PROBE=/tmp/telemetryprobe.$$
ERR=/tmp/telemetry_smoke_err.$$
PROG=/tmp/telemetry_smoke_prog.$$
SIM_PID=
trap 'rm -f "$SIM" "$PROBE" "$ERR" "$PROG"; [ -n "$SIM_PID" ] && kill "$SIM_PID" 2>/dev/null || true' EXIT
go build -o "$SIM" ./cmd/chkptsim
go build -o "$PROBE" ./cmd/telemetryprobe

cat > "$PROG" <<'MPL'
program jacobi
const MAXITER = 6
var x, y, tmp, iter
proc {
    iter = 0
    while iter < MAXITER {
        tmp = x + iter
        x = tmp
        if rank % 2 == 0 {
            chkpt
            send(rank + 1, x)
            recv(rank + 1, y)
        } else {
            recv(rank - 1, y)
            send(rank - 1, x)
            chkpt
        }
        tmp = 0
        iter = iter + 1
    }
}
MPL

echo '>> starting chkptsim with -telemetry-addr 127.0.0.1:0'
"$SIM" -n 4 -transform -telemetry-addr 127.0.0.1:0 -telemetry-linger 10s \
    "$PROG" >/dev/null 2>"$ERR" &
SIM_PID=$!

# The ephemeral port is announced on stderr before the run starts.
URL=
i=0
while [ $i -lt 100 ]; do
    URL=$(sed -n 's|.*telemetry at \(http://[^/]*\)/metrics.*|\1|p' "$ERR" | head -n 1)
    [ -n "$URL" ] && break
    if ! kill -0 "$SIM_PID" 2>/dev/null; then
        echo 'chkptsim exited before announcing the telemetry URL:' >&2
        cat "$ERR" >&2
        exit 1
    fi
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$URL" ]; then
    echo 'telemetry URL never announced:' >&2
    cat "$ERR" >&2
    exit 1
fi

echo ">> probing $URL"
"$PROBE" -url "$URL" -timeout 5s -min-events 1 \
    -want chkptsim_events_total,chkptsim_healthy,chkptsim_counter_total,chkptsim_proc_events_total,chkptsim_health_stalls_total,chkptsim_prune_bytes_saved_total,chkptsim_prune_ratio

kill "$SIM_PID" 2>/dev/null || true
wait "$SIM_PID" 2>/dev/null || true
SIM_PID=

echo 'telemetry smoke OK'
