#!/bin/sh
# Repository health check: what CI runs, and what a contributor should run
# before sending a change. Fails on the first problem.
set -eu

cd "$(dirname "$0")/.."

echo '>> gofmt'
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo '>> go vet ./...'
go vet ./...

echo '>> go build ./...'
go build ./...

echo '>> go test -race ./...'
go test -race ./...

echo '>> straight-cut theorem harness (make verify)'
make verify

echo '>> chaos soak (go test -race -run TestChaosSoak -count=1 .)'
go test -race -run 'TestChaosSoak' -count=1 .

echo '>> network chaos soak (go test -race -run TestNetChaosSoak -count=1 .)'
go test -race -run 'TestNetChaosSoak' -count=1 .

echo '>> WAL crash soak (go test -race -run TestWALChaosSoak -count=1 .)'
go test -race -run 'TestWALChaosSoak' -count=1 .

echo '>> fleet soak (go test -race -run TestFleetSoak -count=1 .)'
go test -race -run 'TestFleetSoak' -count=1 .

echo '>> telemetry smoke (scripts/telemetry_smoke.sh)'
./scripts/telemetry_smoke.sh

echo '>> prune smoke (scripts/prune_smoke.sh)'
./scripts/prune_smoke.sh

# Opt-in: the benchmark harness is slow relative to the rest of the check
# and its numbers are machine-dependent, so it only runs when asked for.
if [ "${CHECK_BENCH:-0}" = "1" ]; then
    echo '>> bench harness (CHECK_BENCH=1)'
    ./scripts/bench.sh
fi

echo 'OK'
