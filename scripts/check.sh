#!/bin/sh
# Repository health check: what CI runs, and what a contributor should run
# before sending a change. Fails on the first problem.
set -eu

cd "$(dirname "$0")/.."

echo '>> gofmt'
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo '>> go vet ./...'
go vet ./...

echo '>> go build ./...'
go build ./...

echo '>> go test -race ./...'
go test -race ./...

echo '>> chaos soak (go test -race -run TestChaosSoak -count=1 .)'
go test -race -run 'TestChaosSoak' -count=1 .

echo '>> network chaos soak (go test -race -run TestNetChaosSoak -count=1 .)'
go test -race -run 'TestNetChaosSoak' -count=1 .

echo 'OK'
