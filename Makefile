GO ?= go

.PHONY: all build vet test race check fmt bench chaos netchaos

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is what CI runs: scripts/check.sh = vet + build + race tests + gofmt.
check:
	./scripts/check.sh

fmt:
	gofmt -w .

# bench runs the benchmark harness and writes BENCH_sweeps.json /
# BENCH_simcore.json, the perf trajectory baseline. BENCHTIME=<d|Nx>
# overrides -benchtime (default 1x: smoke; use e.g. 2s for stable numbers).
bench:
	BENCHTIME=$(BENCHTIME) ./scripts/bench.sh

# chaos runs the fault-injection soak: fixed seeds, all store kinds,
# storage faults + generated crash schedules, under the race detector.
# SOAK_SEEDS=<n> overrides the seed count.
chaos:
	$(GO) test -race -run 'TestChaosSoak' -count=1 -v .

# netchaos runs the network-chaos soak: multi-seed × {drop, dup, reorder,
# partition-heal} over the hardened transport, under the race detector.
# SOAK_SEEDS=<n> overrides the per-profile seed count.
netchaos:
	$(GO) test -race -run 'TestNetChaosSoak' -count=1 -v .
