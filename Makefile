GO ?= go

.PHONY: all build vet test race check fmt bench chaos netchaos

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is what CI runs: scripts/check.sh = vet + build + race tests + gofmt.
check:
	./scripts/check.sh

fmt:
	gofmt -w .

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# chaos runs the fault-injection soak: fixed seeds, all store kinds,
# storage faults + generated crash schedules, under the race detector.
# SOAK_SEEDS=<n> overrides the seed count.
chaos:
	$(GO) test -race -run 'TestChaosSoak' -count=1 -v .

# netchaos runs the network-chaos soak: multi-seed × {drop, dup, reorder,
# partition-heal} over the hardened transport, under the race detector.
# SOAK_SEEDS=<n> overrides the per-profile seed count.
netchaos:
	$(GO) test -race -run 'TestNetChaosSoak' -count=1 -v .
