GO ?= go

.PHONY: all build vet test race check fmt bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is what CI runs: scripts/check.sh = vet + build + race tests + gofmt.
check:
	./scripts/check.sh

fmt:
	gofmt -w .

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
