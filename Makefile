GO ?= go

.PHONY: all build vet test race check fmt bench chaos netchaos walchaos verify fuzz telemetry fleet prune

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is what CI runs: scripts/check.sh = vet + build + race tests + gofmt.
check:
	./scripts/check.sh

fmt:
	gofmt -w .

# bench runs the benchmark harness and writes BENCH_sweeps.json /
# BENCH_simcore.json, the perf trajectory baseline. BENCHTIME=<d|Nx>
# overrides -benchtime (default 1x: smoke; use e.g. 2s for stable numbers).
bench:
	BENCHTIME=$(BENCHTIME) ./scripts/bench.sh

# verify runs the generative correctness harness: 100 random programs
# through the full pipeline, systematic schedule exploration, theorem
# checking on every execution, and the mutation (no-vacuous-pass) mode.
# VERIFY_FLAGS overrides the defaults, e.g. VERIFY_FLAGS='-progs 500 -v'.
verify:
	$(GO) run ./cmd/chkptverify $(or $(VERIFY_FLAGS),-progs 100 -depth 8 -mutate)

# fuzz runs every native fuzz target for FUZZTIME (default 30s) each.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzMPLParse -fuzztime $(FUZZTIME) ./internal/mpl
	$(GO) test -fuzz FuzzEval -fuzztime $(FUZZTIME) ./internal/mpl
	$(GO) test -fuzz FuzzCFGBuild -fuzztime $(FUZZTIME) ./internal/cfg
	$(GO) test -fuzz FuzzStraightCutTheorem -fuzztime $(FUZZTIME) ./internal/verify
	$(GO) test -fuzz FuzzLivenessPrune -fuzztime $(FUZZTIME) ./internal/verify
	$(GO) test -fuzz FuzzWALRecover -fuzztime $(FUZZTIME) ./internal/storage/wal

# telemetry runs the live-telemetry smoke: chkptsim serving /metrics on an
# ephemeral port, scraped end-to-end by cmd/telemetryprobe.
telemetry:
	./scripts/telemetry_smoke.sh

# prune runs the liveness-pruning A/B smoke: the same program under
# injected failures with pruned (default) and full (-no-prune)
# checkpoints must converge to the same state, with nonzero bytes saved.
prune:
	./scripts/prune_smoke.sh

# chaos runs the fault-injection soak: fixed seeds, all store kinds,
# storage faults + generated crash schedules, under the race detector.
# SOAK_SEEDS=<n> overrides the seed count.
chaos:
	$(GO) test -race -run 'TestChaosSoak' -count=1 -v .

# netchaos runs the network-chaos soak: multi-seed × {drop, dup, reorder,
# partition-heal} over the hardened transport, under the race detector.
# SOAK_SEEDS=<n> overrides the per-profile seed count.
netchaos:
	$(GO) test -race -run 'TestNetChaosSoak' -count=1 -v .

# walchaos runs the durable-log crash soak: multi-seed kill/reopen loops
# over the WAL store with deterministic crash-point and bit-flip injection,
# proving no acknowledged checkpoint is ever lost and no torn record is
# ever served, under the race detector. SOAK_SEEDS=<n> overrides the count.
walchaos:
	$(GO) test -race -run 'TestWALChaosSoak' -count=1 -v .

# fleet runs the fleet-engine soak: >= 1000 concurrent checkpointed jobs
# against one shared store under storage/crash/network chaos, with exact
# taxonomy conservation, graceful drain, and circuit-breaker recovery,
# under the race detector. SOAK_SEEDS=<n> overrides the chaos-seed count.
fleet:
	$(GO) test -race -run 'TestFleetSoak' -count=1 -v .
