package repro_test

// Network chaos soak: the acceptance test of the hardened transport.
// Seeded runs over lossy links — multi-seed × {drop, dup, reorder,
// partition-heal} — must all converge to the clean run's final state while
// the repair machinery (resequencing, ack/retransmit with adaptive RTO,
// heartbeat failure detection) visibly engages: frames dropped and
// retransmitted, duplicates suppressed, reorders resequenced, partitions
// suspected and healed, with matching observability events.
//
// Under -short the per-profile seed matrix shrinks (which also sidesteps
// the fleet-wide coverage assertions) instead of skipping outright; `make
// netchaos` runs the full matrix with -race. SOAK_SEEDS overrides the
// per-profile seed count (CI uses a smaller matrix).

import (
	"fmt"
	"os"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/sim"
)

// soakSeeds returns the soak matrix's seed count: the SOAK_SEEDS
// environment variable when set, def otherwise.
func soakSeeds(t *testing.T, def int) int {
	t.Helper()
	s := os.Getenv("SOAK_SEEDS")
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		t.Fatalf("bad SOAK_SEEDS %q: want a positive integer", s)
	}
	return n
}

// fleetAssertions reports whether the fleet-wide "machinery must fire"
// aggregates should be checked. Per-seed convergence (the safety property)
// is always asserted, but the statistical coverage assertions only hold
// across a full-size matrix: a shrunken SOAK_SEEDS run may legitimately
// dodge a rare fault class.
func fleetAssertions(t *testing.T, seeds, def int) bool {
	t.Helper()
	if seeds >= def {
		return true
	}
	t.Logf("SOAK_SEEDS=%d < default %d: skipping fleet-wide coverage assertions (convergence still checked per seed)", seeds, def)
	return false
}

func TestNetChaosSoak(t *testing.T) {
	// -short trims the per-profile matrix to two seeds rather than
	// skipping; convergence is still checked per seed, and fleetAssertions
	// sees the shrunken count and skips only the fleet-wide coverage bars.
	defSeeds := 6
	if testing.Short() {
		defSeeds = 2
	}
	rep, err := core.Transform(corpus.JacobiFig2(3), core.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	prog := rep.Program
	const n = 3
	clean, err := sim.Run(sim.Config{Program: prog, Nproc: n, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	profiles := []struct {
		name  string
		rates chaos.NetRates
		parts []chaos.Partition
		// metrics that this profile's fleet must move
		wantMetrics []string
	}{
		{
			name:        "drop",
			rates:       chaos.NetRates{Drop: 0.15},
			wantMetrics: []string{sim.MetricNetDrops, sim.MetricNetRetransmits, sim.MetricNetRTOExpired},
		},
		{
			name:        "dup",
			rates:       chaos.NetRates{Dup: 0.25},
			wantMetrics: []string{sim.MetricNetDups},
		},
		{
			name:        "reorder",
			rates:       chaos.NetRates{Reorder: 0.3, Delay: 0.2, MaxDelay: 2 * time.Millisecond},
			wantMetrics: []string{sim.MetricNetReorders},
		},
		{
			name:  "partition-heal",
			rates: chaos.NetRates{Drop: 0.05},
			// The window opens at the epoch: the program is small enough to
			// finish in single-digit milliseconds, so a late-opening window
			// would never bite. An immediate one forces the detector to
			// convert the silence into restarts until the heal.
			parts: []chaos.Partition{
				{From: 0, To: 1, Start: 0, Dur: 150 * time.Millisecond},
			},
			wantMetrics: []string{sim.MetricHBSuspects, sim.MetricPartitionHealed},
		},
	}

	seeds := soakSeeds(t, defSeeds)
	checkFleet := fleetAssertions(t, seeds, 6)
	for _, prof := range profiles {
		prof := prof
		t.Run(prof.name, func(t *testing.T) {
			var mu sync.Mutex
			totals := map[string]int64{}
			kinds := map[obs.Kind]int{}
			var totalRestarts int64
			// Per-seed runs are independent: every link verdict is hashed
			// from (seed, class, from, to, seq, attempt), so interleaving
			// them is safe and each seed's convergence check against the
			// serial clean run asserts the outcome is unchanged. The group
			// subtest joins all parallel seeds before the fleet assertions.
			t.Run("seeds", func(t *testing.T) {
				for seed := int64(1); seed <= int64(seeds); seed++ {
					t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
						t.Parallel()
						rec := obs.NewRecorder()
						inj := chaos.NewNetwork(seed, prof.rates, prof.parts, rec)
						netCfg := &sim.NetConfig{
							Chaos:          inj,
							HeartbeatEvery: 2 * time.Millisecond,
							RTOFloor:       time.Millisecond,
							RTOCap:         50 * time.Millisecond,
							// Loss profiles are transient: never suspect. The
							// partition profile must suspect quickly so unhealed
							// silence converts to recovery instead of a deadlock.
							SuspectAfter: 2 * time.Second,
						}
						if len(prof.parts) > 0 {
							netCfg.SuspectAfter = 30 * time.Millisecond
						}
						res, err := sim.Run(sim.Config{
							Program:     prog,
							Nproc:       n,
							Net:         netCfg,
							Observer:    rec,
							Jitter:      seed,
							MaxRestarts: 40,
							Timeout:     20 * time.Second,
						})
						if err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
						if !reflect.DeepEqual(clean.FinalVars, res.FinalVars) {
							t.Fatalf("seed %d: diverged under %s chaos\nclean: %v\nchaos: %v",
								seed, prof.name, clean.FinalVars, res.FinalVars)
						}
						mu.Lock()
						for name, v := range res.Metrics.Custom {
							totals[name] += v
						}
						totalRestarts += int64(res.Restarts)
						for _, e := range rec.Events() {
							kinds[e.Kind]++
						}
						mu.Unlock()
					})
				}
			})
			if t.Failed() {
				return
			}
			if !checkFleet {
				return
			}
			for _, name := range prof.wantMetrics {
				if totals[name] == 0 {
					t.Errorf("fleet %s = 0, want > 0 (totals: %v)", name, totals)
				}
			}
			if kinds[obs.KindNetFault] == 0 {
				t.Errorf("no %q events across the fleet: %v", obs.KindNetFault, kinds)
			}
			if len(prof.parts) > 0 {
				if totalRestarts == 0 {
					t.Error("partition profile triggered no restarts — silence never became recovery")
				}
				for _, want := range []obs.Kind{obs.KindSuspect, obs.KindHeal, obs.KindRollback, obs.KindRestart} {
					if kinds[want] == 0 {
						t.Errorf("no %q events across the fleet: %v", want, kinds)
					}
				}
			}
		})
	}
}
