package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestSketchQuantiles(t *testing.T) {
	s := NewSketch()
	// 1..1000 uniformly: quantiles should land near q*1000 within the
	// one-eighth-decade bucket resolution (~33% relative slack to be safe).
	for i := 1; i <= 1000; i++ {
		s.Observe(float64(i))
	}
	snap := s.Snapshot()
	if snap.Count != 1000 {
		t.Fatalf("Count = %d", snap.Count)
	}
	if snap.Min != 1 || snap.Max != 1000 {
		t.Fatalf("min/max = %g/%g", snap.Min, snap.Max)
	}
	if got, want := snap.Sum, float64(1000*1001/2); math.Abs(got-want) > 0.5 {
		t.Errorf("Sum = %g, want %g", got, want)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 500}, {0.95, 950}, {0.99, 990},
	} {
		got := snap.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.33 {
			t.Errorf("Quantile(%g) = %g, want ~%g (rel err %.2f)", tc.q, got, tc.want, rel)
		}
	}
}

func TestSketchEmptyAndExtremes(t *testing.T) {
	s := NewSketch()
	if got := s.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g", got)
	}
	// One observation: every quantile is that observation.
	s.Observe(42)
	snap := s.Snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		if got := snap.Quantile(q); math.Abs(got-42) > 42*0.15 {
			t.Errorf("Quantile(%g) = %g, want ~42", q, got)
		}
	}
	// Values beyond both ends land in the open buckets and clamp to
	// observed extremes.
	s2 := NewSketch(1, 10)
	s2.Observe(0.001)
	s2.Observe(5000)
	snap2 := s2.Snapshot()
	if got := snap2.Quantile(0); got < 0.001-1e-12 || got > 1 {
		t.Errorf("underflow quantile = %g", got)
	}
	if got := snap2.Quantile(1); got != 5000 {
		t.Errorf("overflow quantile = %g, want 5000 (clamped to max)", got)
	}
}

func TestSketchMerge(t *testing.T) {
	a, b := NewSketch(), NewSketch()
	for i := 1; i <= 500; i++ {
		a.Observe(float64(i))
	}
	for i := 501; i <= 1000; i++ {
		b.Observe(float64(i))
	}
	if err := a.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	// The merged sketch must equal a sketch that saw everything.
	all := NewSketch()
	for i := 1; i <= 1000; i++ {
		all.Observe(float64(i))
	}
	got, want := a.Snapshot(), all.Snapshot()
	if got.Count != want.Count || got.Sum != want.Sum || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("merged = %+v, want %+v", got, want)
	}
	for i := range got.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d: %d vs %d", i, got.Counts[i], want.Counts[i])
		}
	}
	// Mismatched bounds must be rejected.
	if err := a.Merge(NewSketch(1, 2, 3).Snapshot()); err == nil {
		t.Error("merge with different bounds succeeded")
	}
}

func TestSketchConcurrent(t *testing.T) {
	s := NewSketch()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Observe(float64(g*1000 + i + 1))
			}
		}(g)
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Count != 8000 {
		t.Errorf("Count = %d, want 8000", snap.Count)
	}
	var wantSum float64
	for i := 1; i <= 8000; i++ {
		wantSum += float64(i)
	}
	if math.Abs(snap.Sum-wantSum) > 1e-6*wantSum {
		t.Errorf("Sum = %g, want %g", snap.Sum, wantSum)
	}
}

func TestSketchFromHist(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	sk := SketchFromHist(h.Snapshot())
	if sk.Count != 100 {
		t.Fatalf("Count = %d", sk.Count)
	}
	p50 := sk.Quantile(0.50)
	if p50 < 20 || p50 > 80 {
		t.Errorf("p50 = %g, want near 50", p50)
	}
	// Interpolated estimate should be at least as tight as the hist's
	// upper-bound estimate is loose: both clamp within [min, max].
	if p50 < sk.Min || p50 > sk.Max {
		t.Errorf("p50 = %g outside [%g, %g]", p50, sk.Min, sk.Max)
	}
}

func TestSketchReset(t *testing.T) {
	s := NewSketch()
	s.Observe(3)
	s.Reset()
	snap := s.Snapshot()
	if snap.Count != 0 || snap.Sum != 0 {
		t.Errorf("after Reset: %+v", snap)
	}
	if !math.IsInf(snap.Min, 1) || !math.IsInf(snap.Max, -1) {
		t.Errorf("after Reset min/max = %g/%g", snap.Min, snap.Max)
	}
}

func BenchmarkSketchObserve(b *testing.B) {
	s := NewSketch()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(float64(i&1023) + 0.5)
	}
}

func BenchmarkSketchObserveParallel(b *testing.B) {
	s := NewSketch()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 0.5
		for pb.Next() {
			s.Observe(v)
			v += 1.0
			if v > 1e5 {
				v = 0.5
			}
		}
	})
}
