package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestGauges(t *testing.T) {
	c := &Counters{}
	if got := c.Gauge("lag"); got != 0 {
		t.Errorf("unset gauge = %g", got)
	}
	c.SetGauge("lag", 1.5)
	c.SetGauge("lag", 0.25) // gauges overwrite, unlike counters
	c.SetGauge("watermark", 7)
	if got := c.Gauge("lag"); got != 0.25 {
		t.Errorf("lag = %g, want 0.25", got)
	}
	s := c.Snapshot()
	if s.Gauges["lag"] != 0.25 || s.Gauges["watermark"] != 7 {
		t.Errorf("snapshot gauges = %v", s.Gauges)
	}
	if !strings.Contains(s.String(), "lag=0.25") {
		t.Errorf("String() = %q, want lag gauge", s.String())
	}
	c.Reset()
	if got := c.Snapshot().Gauges; got != nil {
		t.Errorf("gauges after Reset = %v", got)
	}
}

func TestGaugeMergeKeepsMax(t *testing.T) {
	a, b := &Counters{}, &Counters{}
	a.SetGauge("lag", 2)
	b.SetGauge("lag", 5)
	b.SetGauge("other", 1)
	if err := a.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := a.Gauge("lag"); got != 5 {
		t.Errorf("merged lag = %g, want 5 (max)", got)
	}
	if got := a.Gauge("other"); got != 1 {
		t.Errorf("merged other = %g, want 1", got)
	}
	// Merging a smaller reading must not regress the gauge.
	low := &Counters{}
	low.SetGauge("lag", 1)
	if err := a.Merge(low.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := a.Gauge("lag"); got != 5 {
		t.Errorf("lag after low merge = %g, want 5", got)
	}
}

func TestGaugesConcurrent(t *testing.T) {
	c := &Counters{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.SetGauge("g", float64(i))
				c.SetGauge("h", float64(g))
			}
		}(g)
	}
	wg.Wait()
	if got := c.Gauge("g"); got < 0 || got > 499 {
		t.Errorf("g = %g out of range", got)
	}
}

// TestRegistryHistogramBoundsConflict is the regression test for
// Registry.Histogram silently ignoring bounds on every call after the
// first: conflicting bounds must panic, matching or absent bounds must
// return the existing histogram.
func TestRegistryHistogramBoundsConflict(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", 1, 2, 3)
	if got := r.Histogram("x"); got != h {
		t.Error("no-bounds call did not return the existing histogram")
	}
	if got := r.Histogram("x", 1, 2, 3); got != h {
		t.Error("matching-bounds call did not return the existing histogram")
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting bounds did not panic")
		}
	}()
	r.Histogram("x", 1, 2, 4)
}

// TestRegistryHistogramDefaultThenExplicit: a histogram created with
// default buckets then re-requested with explicitly equal bounds is not a
// conflict; a different explicit set is.
func TestRegistryHistogramDefaultThenExplicit(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("y") // DefaultBuckets
	if got := r.Histogram("y", DefaultBuckets...); got != h {
		t.Error("explicit DefaultBuckets treated as a conflict")
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting bounds did not panic")
		}
	}()
	r.Histogram("y", 10, 20)
}
