package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 2, 10, 99, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if want := []int64{2, 2, 1, 1}; len(s.Counts) != len(want) {
		t.Fatalf("counts = %v", s.Counts)
	} else {
		for i, c := range want {
			if s.Counts[i] != c {
				t.Errorf("bucket %d = %d, want %d (%v)", i, s.Counts[i], c, s.Counts)
			}
		}
	}
	if s.Count != 6 || s.Min != 0.5 || s.Max != 1000 {
		t.Errorf("count=%d min=%g max=%g", s.Count, s.Min, s.Max)
	}
	if got := s.Mean(); math.Abs(got-(0.5+1+2+10+99+1000)/6) > 1e-9 {
		t.Errorf("mean = %g", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // bucket (1,2]
	}
	h.Observe(7) // bucket (4,8]
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 2 {
		t.Errorf("p50 = %g, want 2", q)
	}
	if q := s.Quantile(1); q != 7 {
		t.Errorf("p100 = %g, want max 7 (clamped)", q)
	}
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g", q)
	}
}

func TestHistogramDefaultBucketsAscending(t *testing.T) {
	for i := 1; i < len(DefaultBuckets); i++ {
		if DefaultBuckets[i] <= DefaultBuckets[i-1] {
			t.Fatalf("DefaultBuckets not ascending at %d: %v", i, DefaultBuckets[i-3:i+1])
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Errorf("count = %d, want 8000", s.Count)
	}
}

func TestRegistryTimers(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("stage")
	tm.Start()
	time.Sleep(time.Millisecond)
	if d := tm.Stop(); d <= 0 {
		t.Errorf("interval = %v", d)
	}
	if tm.Stop() != 0 {
		t.Error("unmatched Stop not a no-op")
	}
	if r.Timer("stage") != tm {
		t.Error("Timer not idempotent by name")
	}
	r.Histogram("lat").Observe(3)
	s := r.Snapshot()
	if len(s.Timers) != 1 || s.Timers[0].Name != "stage" || s.Timers[0].Count != 1 || s.Timers[0].Elapsed <= 0 {
		t.Errorf("timers = %+v", s.Timers)
	}
	if s.Hists["lat"].Count != 1 {
		t.Errorf("hists = %+v", s.Hists)
	}
}

func TestCountersResetAndMerge(t *testing.T) {
	var c Counters
	c.IncAppMessages(3)
	c.IncCtrlMessages(2, 8)
	c.IncCheckpoints(1)
	c.Inc("x", 4)
	c.ObserveHist("lat", 5)
	first := c.Snapshot()

	c.Reset()
	if s := c.Snapshot(); s.AppMessages != 0 || s.CtrlMessages != 0 || s.Custom != nil || s.Hists != nil {
		t.Fatalf("after Reset: %+v", s)
	}

	// Aggregate the saved snapshot twice into the cleared counters.
	if err := c.Merge(first); err != nil {
		t.Fatal(err)
	}
	if err := c.Merge(first); err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	if s.AppMessages != 6 || s.CtrlMessages != 4 || s.CtrlBytes != 32 || s.Checkpoints != 2 {
		t.Errorf("merged totals: %+v", s)
	}
	if s.Custom["x"] != 8 {
		t.Errorf("merged custom = %v", s.Custom)
	}
	if h := s.Hists["lat"]; h.Count != 2 || h.Sum != 10 {
		t.Errorf("merged hist = %+v", h)
	}
}

func TestMergeBucketMismatch(t *testing.T) {
	var c Counters
	c.ObserveHist("lat", 1) // DefaultBuckets
	bad := Snapshot{Hists: map[string]HistSnapshot{
		"lat": {Bounds: []float64{1, 2}, Counts: []int64{1, 0, 0}, Count: 1, Sum: 1, Min: 1, Max: 1},
	}}
	if err := c.Merge(bad); err == nil {
		t.Error("merging mismatched bounds did not fail")
	}
}

func TestSnapshotStringIncludesHists(t *testing.T) {
	var c Counters
	c.ObserveHist("stall", 2)
	if s := c.Snapshot().String(); !strings.Contains(s, "stall{") || !strings.Contains(s, "count=1") {
		t.Errorf("String() = %q", s)
	}
}
