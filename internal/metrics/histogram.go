package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Histogram is a fixed-bucket histogram: bucket boundaries are chosen at
// construction and never change, so histograms from different runs of the
// same configuration can be merged bucket-by-bucket (Merge). Observations
// land in the first bucket whose upper bound is >= the value; values above
// the last bound land in an implicit overflow bucket. The zero value is not
// usable; construct with NewHistogram. All methods are safe for concurrent
// use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds
	counts []int64   // len(bounds)+1; last is overflow
	count  int64
	sum    float64
	min    float64
	max    float64
}

// DefaultBuckets is a 1-2-5 decade series from 1e-6 to 1e6, wide enough for
// observations in any unit the runtime records (milliseconds of wall time,
// virtual seconds, counts).
var DefaultBuckets = defaultBuckets()

func defaultBuckets() []float64 {
	var b []float64
	for exp := -6; exp <= 6; exp++ {
		decade := math.Pow(10, float64(exp))
		b = append(b, 1*decade, 2*decade, 5*decade)
	}
	return b
}

// NewHistogram creates a histogram with the given ascending upper bounds;
// with no arguments it uses DefaultBuckets. It panics on unsorted bounds —
// always a programming error, not input.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Snapshot returns a consistent copy of the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
}

// merge folds a snapshot back into the histogram (aggregation across runs).
// The snapshots must share bucket bounds.
func (h *Histogram) merge(s HistSnapshot) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(s.Bounds) != len(h.bounds) {
		return fmt.Errorf("metrics: merging histograms with %d vs %d buckets", len(s.Bounds), len(h.bounds))
	}
	for i, b := range s.Bounds {
		if b != h.bounds[i] {
			return fmt.Errorf("metrics: merging histograms with different bounds at %d: %g vs %g", i, b, h.bounds[i])
		}
	}
	for i, c := range s.Counts {
		h.counts[i] += c
	}
	h.count += s.Count
	h.sum += s.Sum
	if s.Count > 0 {
		if s.Min < h.min {
			h.min = s.Min
		}
		if s.Max > h.max {
			h.max = s.Max
		}
	}
	return nil
}

// HistSnapshot is an immutable copy of a histogram.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64 // len(Bounds)+1; last is overflow
	Count  int64
	Sum    float64
	Min    float64
	Max    float64
}

// Mean returns the average observation (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) as the upper bound of
// the bucket holding the q-th observation, clamped to the observed
// min/max. It returns 0 when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			var est float64
			if i < len(s.Bounds) {
				est = s.Bounds[i]
			} else {
				est = s.Max
			}
			return math.Min(math.Max(est, s.Min), s.Max)
		}
	}
	return s.Max
}

// String renders a compact one-line summary.
func (s HistSnapshot) String() string {
	if s.Count == 0 {
		return "count=0"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "count=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g min=%.4g max=%.4g",
		s.Count, s.Mean(), s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99), s.Min, s.Max)
	return sb.String()
}
