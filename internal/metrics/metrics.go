// Package metrics provides the overhead accounting used to compare
// checkpointing protocols on the runtime: counts of application messages,
// protocol control messages, checkpoints (voluntary and forced), rollbacks,
// and blocked time. These are the quantities the paper's §4 analysis folds
// into the M (message overhead) and C (coordination overhead) parameters.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Counters accumulates protocol-relevant event counts for one run. The zero
// value is ready to use and all methods are safe for concurrent use.
type Counters struct {
	mu sync.Mutex

	appMessages     int64
	ctrlMessages    int64
	ctrlBytes       int64
	checkpoints     int64
	forced          int64
	rollbacks       int64
	restartedEvents int64
	blocked         time.Duration
	custom          map[string]int64
}

// IncAppMessages records n application (payload) messages.
func (c *Counters) IncAppMessages(n int) { c.add(&c.appMessages, n) }

// IncCtrlMessages records n protocol control messages of size bytes each
// (markers, stop/resume broadcasts, acks — anything the application did not
// send).
func (c *Counters) IncCtrlMessages(n, bytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ctrlMessages += int64(n)
	c.ctrlBytes += int64(n) * int64(bytes)
}

// IncCheckpoints records n voluntary checkpoints.
func (c *Counters) IncCheckpoints(n int) { c.add(&c.checkpoints, n) }

// IncForced records n forced checkpoints (communication-induced protocols).
func (c *Counters) IncForced(n int) { c.add(&c.forced, n) }

// IncRollbacks records n process rollbacks.
func (c *Counters) IncRollbacks(n int) { c.add(&c.rollbacks, n) }

// IncRestartedEvents records n re-executed events lost to rollback.
func (c *Counters) IncRestartedEvents(n int) { c.add(&c.restartedEvents, n) }

// AddBlocked records wall-clock time a process spent blocked on protocol
// coordination (not on application receives).
func (c *Counters) AddBlocked(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.blocked += d
}

// Inc bumps a named custom counter.
func (c *Counters) Inc(name string, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.custom == nil {
		c.custom = make(map[string]int64)
	}
	c.custom[name] += int64(n)
}

func (c *Counters) add(field *int64, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	*field += int64(n)
}

// Snapshot is an immutable copy of the counters.
type Snapshot struct {
	AppMessages     int64
	CtrlMessages    int64
	CtrlBytes       int64
	Checkpoints     int64
	Forced          int64
	Rollbacks       int64
	RestartedEvents int64
	Blocked         time.Duration
	Custom          map[string]int64
}

// Snapshot returns a consistent copy of all counters.
func (c *Counters) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		AppMessages:     c.appMessages,
		CtrlMessages:    c.ctrlMessages,
		CtrlBytes:       c.ctrlBytes,
		Checkpoints:     c.checkpoints,
		Forced:          c.forced,
		Rollbacks:       c.rollbacks,
		RestartedEvents: c.restartedEvents,
		Blocked:         c.blocked,
	}
	if len(c.custom) > 0 {
		s.Custom = make(map[string]int64, len(c.custom))
		for k, v := range c.custom {
			s.Custom[k] = v
		}
	}
	return s
}

// TotalCheckpoints is voluntary plus forced checkpoints.
func (s Snapshot) TotalCheckpoints() int64 { return s.Checkpoints + s.Forced }

// String renders the snapshot as a single human-readable line.
func (s Snapshot) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "app=%d ctrl=%d ctrlBytes=%d ckpt=%d forced=%d rollbacks=%d replayed=%d blocked=%s",
		s.AppMessages, s.CtrlMessages, s.CtrlBytes, s.Checkpoints, s.Forced,
		s.Rollbacks, s.RestartedEvents, s.Blocked)
	if len(s.Custom) > 0 {
		keys := make([]string, 0, len(s.Custom))
		for k := range s.Custom {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s=%d", k, s.Custom[k])
		}
	}
	return sb.String()
}
