// Package metrics provides the overhead accounting used to compare
// checkpointing protocols on the runtime: counts of application messages,
// protocol control messages, checkpoints (voluntary and forced), rollbacks,
// and blocked time. These are the quantities the paper's §4 analysis folds
// into the M (message overhead) and C (coordination overhead) parameters.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Counters accumulates protocol-relevant event counts for one run. The zero
// value is ready to use and all methods are safe for concurrent use.
type Counters struct {
	mu sync.Mutex

	appMessages     int64
	ctrlMessages    int64
	ctrlBytes       int64
	checkpoints     int64
	forced          int64
	rollbacks       int64
	restartedEvents int64
	blocked         time.Duration
	custom          map[string]int64
	hists           map[string]*Histogram
}

// IncAppMessages records n application (payload) messages.
func (c *Counters) IncAppMessages(n int) { c.add(&c.appMessages, n) }

// IncCtrlMessages records n protocol control messages of size bytes each
// (markers, stop/resume broadcasts, acks — anything the application did not
// send).
func (c *Counters) IncCtrlMessages(n, bytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ctrlMessages += int64(n)
	c.ctrlBytes += int64(n) * int64(bytes)
}

// IncCheckpoints records n voluntary checkpoints.
func (c *Counters) IncCheckpoints(n int) { c.add(&c.checkpoints, n) }

// IncForced records n forced checkpoints (communication-induced protocols).
func (c *Counters) IncForced(n int) { c.add(&c.forced, n) }

// IncRollbacks records n process rollbacks.
func (c *Counters) IncRollbacks(n int) { c.add(&c.rollbacks, n) }

// IncRestartedEvents records n re-executed events lost to rollback.
func (c *Counters) IncRestartedEvents(n int) { c.add(&c.restartedEvents, n) }

// AddBlocked records wall-clock time a process spent blocked on protocol
// coordination (not on application receives).
func (c *Counters) AddBlocked(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.blocked += d
}

// Inc bumps a named custom counter.
func (c *Counters) Inc(name string, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.custom == nil {
		c.custom = make(map[string]int64)
	}
	c.custom[name] += int64(n)
}

// Max raises a named custom counter to v if v exceeds its current value —
// a high-watermark gauge (queue depths, backlog peaks) exported through the
// same custom-counter channel as Inc. Note Merge adds custom counters, so
// merging snapshots turns a watermark into a sum; aggregate watermarks
// across runs by taking the max of the per-run snapshots instead.
func (c *Counters) Max(name string, v int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.custom == nil {
		c.custom = make(map[string]int64)
	}
	if v > c.custom[name] {
		c.custom[name] = v
	}
}

// ObserveHist records one observation in the named distribution, creating
// it with DefaultBuckets on first use. Distributions turn the totals above
// into per-event shapes: how long each barrier stall was, not just their
// sum.
func (c *Counters) ObserveHist(name string, v float64) {
	c.mu.Lock()
	if c.hists == nil {
		c.hists = make(map[string]*Histogram)
	}
	h, ok := c.hists[name]
	if !ok {
		h = NewHistogram()
		c.hists[name] = h
	}
	c.mu.Unlock()
	h.Observe(v)
}

// Reset zeroes every counter and distribution so the Counters can be
// reused across incarnations or benchmark repetitions without
// reallocation by callers holding a reference.
func (c *Counters) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.appMessages = 0
	c.ctrlMessages = 0
	c.ctrlBytes = 0
	c.checkpoints = 0
	c.forced = 0
	c.rollbacks = 0
	c.restartedEvents = 0
	c.blocked = 0
	c.custom = nil
	c.hists = nil
}

// Merge folds a snapshot into the counters: totals add, distributions
// merge bucket-by-bucket. It aggregates per-run snapshots into whole-sweep
// statistics. Merging histograms with different bucket bounds fails.
func (c *Counters) Merge(s Snapshot) error {
	c.mu.Lock()
	c.appMessages += s.AppMessages
	c.ctrlMessages += s.CtrlMessages
	c.ctrlBytes += s.CtrlBytes
	c.checkpoints += s.Checkpoints
	c.forced += s.Forced
	c.rollbacks += s.Rollbacks
	c.restartedEvents += s.RestartedEvents
	c.blocked += s.Blocked
	if len(s.Custom) > 0 && c.custom == nil {
		c.custom = make(map[string]int64, len(s.Custom))
	}
	for k, v := range s.Custom {
		c.custom[k] += v
	}
	if len(s.Hists) > 0 && c.hists == nil {
		c.hists = make(map[string]*Histogram, len(s.Hists))
	}
	c.mu.Unlock()
	for name, hs := range s.Hists {
		c.mu.Lock()
		h, ok := c.hists[name]
		if !ok {
			h = NewHistogram(hs.Bounds...)
			c.hists[name] = h
		}
		c.mu.Unlock()
		if err := h.merge(hs); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

func (c *Counters) add(field *int64, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	*field += int64(n)
}

// Snapshot is an immutable copy of the counters.
type Snapshot struct {
	AppMessages     int64
	CtrlMessages    int64
	CtrlBytes       int64
	Checkpoints     int64
	Forced          int64
	Rollbacks       int64
	RestartedEvents int64
	Blocked         time.Duration
	Custom          map[string]int64
	Hists           map[string]HistSnapshot
}

// Snapshot returns a consistent copy of all counters.
func (c *Counters) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		AppMessages:     c.appMessages,
		CtrlMessages:    c.ctrlMessages,
		CtrlBytes:       c.ctrlBytes,
		Checkpoints:     c.checkpoints,
		Forced:          c.forced,
		Rollbacks:       c.rollbacks,
		RestartedEvents: c.restartedEvents,
		Blocked:         c.blocked,
	}
	if len(c.custom) > 0 {
		s.Custom = make(map[string]int64, len(c.custom))
		for k, v := range c.custom {
			s.Custom[k] = v
		}
	}
	if len(c.hists) > 0 {
		s.Hists = make(map[string]HistSnapshot, len(c.hists))
		for k, h := range c.hists {
			s.Hists[k] = h.Snapshot()
		}
	}
	return s
}

// TotalCheckpoints is voluntary plus forced checkpoints.
func (s Snapshot) TotalCheckpoints() int64 { return s.Checkpoints + s.Forced }

// String renders the snapshot as a single human-readable line.
func (s Snapshot) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "app=%d ctrl=%d ctrlBytes=%d ckpt=%d forced=%d rollbacks=%d replayed=%d blocked=%s",
		s.AppMessages, s.CtrlMessages, s.CtrlBytes, s.Checkpoints, s.Forced,
		s.Rollbacks, s.RestartedEvents, s.Blocked)
	if len(s.Custom) > 0 {
		keys := make([]string, 0, len(s.Custom))
		for k := range s.Custom {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s=%d", k, s.Custom[k])
		}
	}
	if len(s.Hists) > 0 {
		keys := make([]string, 0, len(s.Hists))
		for k := range s.Hists {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s{%s}", k, s.Hists[k])
		}
	}
	return sb.String()
}
