// Package metrics provides the overhead accounting used to compare
// checkpointing protocols on the runtime: counts of application messages,
// protocol control messages, checkpoints (voluntary and forced), rollbacks,
// and blocked time. These are the quantities the paper's §4 analysis folds
// into the M (message overhead) and C (coordination overhead) parameters.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counters accumulates protocol-relevant event counts for one run. The zero
// value is ready to use and all methods are safe for concurrent use.
//
// The fixed fields are plain atomics and the named counters live in a
// sharded map with per-shard RW locks, so the hot increment paths — every
// message send in the simulator goes through one — never contend on a
// single mutex. Each field is individually exact; a Snapshot taken while
// writers are active may interleave fields from slightly different moments
// (the runtime only snapshots at quiescent points, where the copy is
// exact).
type Counters struct {
	appMessages     atomic.Int64
	ctrlMessages    atomic.Int64
	ctrlBytes       atomic.Int64
	checkpoints     atomic.Int64
	forced          atomic.Int64
	rollbacks       atomic.Int64
	restartedEvents atomic.Int64
	blocked         atomic.Int64 // nanoseconds

	custom customMap
	gauges gaugeMap

	hmu   sync.Mutex
	hists map[string]*Histogram
}

// customShards is the stripe count of the named-counter map. Small powers
// of two beyond the typical core count stop cross-core increments of
// *different* names from serializing on one lock.
const customShards = 16

// customMap is a name → counter map striped across customShards shards.
// The common case (the name already exists) takes a shard read-lock and an
// atomic add; the write-lock is only held to insert a new name.
type customMap struct {
	shards [customShards]struct {
		mu sync.RWMutex
		m  map[string]*atomic.Int64
	}
}

// shard picks the stripe for a name (FNV-1a).
func (c *customMap) shard(name string) *struct {
	mu sync.RWMutex
	m  map[string]*atomic.Int64
} {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return &c.shards[h%customShards]
}

// counter returns the cell for name, creating it on first use.
func (c *customMap) counter(name string) *atomic.Int64 {
	s := c.shard(name)
	s.mu.RLock()
	v := s.m[name]
	s.mu.RUnlock()
	if v != nil {
		return v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v = s.m[name]; v != nil {
		return v
	}
	if s.m == nil {
		s.m = make(map[string]*atomic.Int64)
	}
	v = new(atomic.Int64)
	s.m[name] = v
	return v
}

// reset drops every named counter.
func (c *customMap) reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
}

// snapshot copies all named counters into one map (nil when empty).
func (c *customMap) snapshot() map[string]int64 {
	var out map[string]int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			if out == nil {
				out = make(map[string]int64)
			}
			out[k] = v.Load()
		}
		s.mu.RUnlock()
	}
	return out
}

// gaugeMap is a name → float64 gauge map striped like customMap. Gauges
// carry "current value" readings (checkpoint lag, last-save virtual time)
// rather than monotone totals; the live exposition layer renders them as
// Prometheus gauges.
type gaugeMap struct {
	shards [customShards]struct {
		mu sync.RWMutex
		m  map[string]*atomic.Uint64 // float64 bits
	}
}

// cell returns the gauge cell for name, creating it on first use.
func (g *gaugeMap) cell(name string) *atomic.Uint64 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	s := &g.shards[h%customShards]
	s.mu.RLock()
	v := s.m[name]
	s.mu.RUnlock()
	if v != nil {
		return v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v = s.m[name]; v != nil {
		return v
	}
	if s.m == nil {
		s.m = make(map[string]*atomic.Uint64)
	}
	v = new(atomic.Uint64)
	s.m[name] = v
	return v
}

// reset drops every gauge.
func (g *gaugeMap) reset() {
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
}

// snapshot copies all gauges into one map (nil when empty).
func (g *gaugeMap) snapshot() map[string]float64 {
	var out map[string]float64
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			if out == nil {
				out = make(map[string]float64)
			}
			out[k] = math.Float64frombits(v.Load())
		}
		s.mu.RUnlock()
	}
	return out
}

// IncAppMessages records n application (payload) messages.
func (c *Counters) IncAppMessages(n int) { c.appMessages.Add(int64(n)) }

// IncCtrlMessages records n protocol control messages of size bytes each
// (markers, stop/resume broadcasts, acks — anything the application did not
// send).
func (c *Counters) IncCtrlMessages(n, bytes int) {
	c.ctrlMessages.Add(int64(n))
	c.ctrlBytes.Add(int64(n) * int64(bytes))
}

// IncCheckpoints records n voluntary checkpoints.
func (c *Counters) IncCheckpoints(n int) { c.checkpoints.Add(int64(n)) }

// IncForced records n forced checkpoints (communication-induced protocols).
func (c *Counters) IncForced(n int) { c.forced.Add(int64(n)) }

// IncRollbacks records n process rollbacks.
func (c *Counters) IncRollbacks(n int) { c.rollbacks.Add(int64(n)) }

// IncRestartedEvents records n re-executed events lost to rollback.
func (c *Counters) IncRestartedEvents(n int) { c.restartedEvents.Add(int64(n)) }

// AddBlocked records wall-clock time a process spent blocked on protocol
// coordination (not on application receives).
func (c *Counters) AddBlocked(d time.Duration) { c.blocked.Add(int64(d)) }

// Inc bumps a named custom counter.
func (c *Counters) Inc(name string, n int) {
	c.custom.counter(name).Add(int64(n))
}

// Max raises a named custom counter to v if v exceeds its current value —
// a high-watermark gauge (queue depths, backlog peaks) exported through the
// same custom-counter channel as Inc. Note Merge adds custom counters, so
// merging snapshots turns a watermark into a sum; aggregate watermarks
// across runs by taking the max of the per-run snapshots instead.
func (c *Counters) Max(name string, v int64) {
	cell := c.custom.counter(name)
	for {
		cur := cell.Load()
		if v <= cur || cell.CompareAndSwap(cur, v) {
			return
		}
	}
}

// SetGauge records the current value of a named gauge — a point-in-time
// reading, not a total. The common case (the gauge exists) is a shard
// read-lock plus one atomic store, cheap enough for instrumentation points
// inside the runtime.
func (c *Counters) SetGauge(name string, v float64) {
	c.gauges.cell(name).Store(math.Float64bits(v))
}

// Gauge reads a named gauge (0 when never set).
func (c *Counters) Gauge(name string) float64 {
	return math.Float64frombits(c.gauges.cell(name).Load())
}

// ObserveHist records one observation in the named distribution, creating
// it with DefaultBuckets on first use. Distributions turn the totals above
// into per-event shapes: how long each barrier stall was, not just their
// sum.
func (c *Counters) ObserveHist(name string, v float64) {
	c.hmu.Lock()
	if c.hists == nil {
		c.hists = make(map[string]*Histogram)
	}
	h, ok := c.hists[name]
	if !ok {
		h = NewHistogram()
		c.hists[name] = h
	}
	c.hmu.Unlock()
	h.Observe(v)
}

// Reset zeroes every counter and distribution so the Counters can be
// reused across incarnations or benchmark repetitions without
// reallocation by callers holding a reference.
func (c *Counters) Reset() {
	c.appMessages.Store(0)
	c.ctrlMessages.Store(0)
	c.ctrlBytes.Store(0)
	c.checkpoints.Store(0)
	c.forced.Store(0)
	c.rollbacks.Store(0)
	c.restartedEvents.Store(0)
	c.blocked.Store(0)
	c.custom.reset()
	c.gauges.reset()
	c.hmu.Lock()
	c.hists = nil
	c.hmu.Unlock()
}

// Merge folds a snapshot into the counters: totals add, distributions
// merge bucket-by-bucket. It aggregates per-run snapshots into whole-sweep
// statistics. Merging histograms with different bucket bounds fails.
func (c *Counters) Merge(s Snapshot) error {
	c.appMessages.Add(s.AppMessages)
	c.ctrlMessages.Add(s.CtrlMessages)
	c.ctrlBytes.Add(s.CtrlBytes)
	c.checkpoints.Add(s.Checkpoints)
	c.forced.Add(s.Forced)
	c.rollbacks.Add(s.Rollbacks)
	c.restartedEvents.Add(s.RestartedEvents)
	c.blocked.Add(int64(s.Blocked))
	for k, v := range s.Custom {
		c.custom.counter(k).Add(v)
	}
	// Gauges are point-in-time readings, so "adding" them is meaningless;
	// merged snapshots keep the maximum, which is both deterministic under
	// parallel merges and the useful aggregate for lag/watermark gauges.
	for k, v := range s.Gauges {
		cell := c.gauges.cell(k)
		for {
			old := cell.Load()
			if v <= math.Float64frombits(old) || cell.CompareAndSwap(old, math.Float64bits(v)) {
				break
			}
		}
	}
	for name, hs := range s.Hists {
		c.hmu.Lock()
		if c.hists == nil {
			c.hists = make(map[string]*Histogram, len(s.Hists))
		}
		h, ok := c.hists[name]
		if !ok {
			h = NewHistogram(hs.Bounds...)
			c.hists[name] = h
		}
		c.hmu.Unlock()
		if err := h.merge(hs); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

// Snapshot is an immutable copy of the counters.
type Snapshot struct {
	AppMessages     int64
	CtrlMessages    int64
	CtrlBytes       int64
	Checkpoints     int64
	Forced          int64
	Rollbacks       int64
	RestartedEvents int64
	Blocked         time.Duration
	Custom          map[string]int64
	Gauges          map[string]float64
	Hists           map[string]HistSnapshot
}

// Snapshot returns a copy of all counters. Each field is read atomically;
// see the Counters doc for the cross-field caveat under concurrent writes.
func (c *Counters) Snapshot() Snapshot {
	s := Snapshot{
		AppMessages:     c.appMessages.Load(),
		CtrlMessages:    c.ctrlMessages.Load(),
		CtrlBytes:       c.ctrlBytes.Load(),
		Checkpoints:     c.checkpoints.Load(),
		Forced:          c.forced.Load(),
		Rollbacks:       c.rollbacks.Load(),
		RestartedEvents: c.restartedEvents.Load(),
		Blocked:         time.Duration(c.blocked.Load()),
	}
	s.Custom = c.custom.snapshot()
	s.Gauges = c.gauges.snapshot()
	c.hmu.Lock()
	if len(c.hists) > 0 {
		s.Hists = make(map[string]HistSnapshot, len(c.hists))
		for k, h := range c.hists {
			s.Hists[k] = h.Snapshot()
		}
	}
	c.hmu.Unlock()
	return s
}

// TotalCheckpoints is voluntary plus forced checkpoints.
func (s Snapshot) TotalCheckpoints() int64 { return s.Checkpoints + s.Forced }

// String renders the snapshot as a single human-readable line.
func (s Snapshot) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "app=%d ctrl=%d ctrlBytes=%d ckpt=%d forced=%d rollbacks=%d replayed=%d blocked=%s",
		s.AppMessages, s.CtrlMessages, s.CtrlBytes, s.Checkpoints, s.Forced,
		s.Rollbacks, s.RestartedEvents, s.Blocked)
	if len(s.Custom) > 0 {
		keys := make([]string, 0, len(s.Custom))
		for k := range s.Custom {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s=%d", k, s.Custom[k])
		}
	}
	if len(s.Gauges) > 0 {
		keys := make([]string, 0, len(s.Gauges))
		for k := range s.Gauges {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s=%g", k, s.Gauges[k])
		}
	}
	if len(s.Hists) > 0 {
		keys := make([]string, 0, len(s.Hists))
		for k := range s.Hists {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s{%s}", k, s.Hists[k])
		}
	}
	return sb.String()
}
