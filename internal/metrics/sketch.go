package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Sketch is a mergeable streaming quantile sketch: a fixed-bucket CDF over
// log-spaced bounds with purely atomic state. Observe is lock-free and
// allocation-free, so the live telemetry aggregator can feed it from the
// runtime's hot observer path; quantiles are estimated mid-run from the
// bucket CDF with linear interpolation inside the winning bucket, without
// retaining raw samples. Sketches built with the same bounds merge exactly
// (counts add), which makes per-shard or per-run sketches composable the
// same way fixed-bucket histograms are.
//
// The zero value is not usable; construct with NewSketch.
type Sketch struct {
	bounds []float64 // ascending upper bounds
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
	min    atomic.Uint64 // float64 bits, +Inf when empty
	max    atomic.Uint64 // float64 bits, -Inf when empty
}

// DefaultSketchBounds is a log-spaced series, eight buckets per decade from
// 1e-6 to 1e6 — a ~15% worst-case relative quantile error over the same
// twelve decades DefaultBuckets spans, at 97 buckets.
var DefaultSketchBounds = defaultSketchBounds()

func defaultSketchBounds() []float64 {
	const perDecade = 8
	b := make([]float64, 0, 12*perDecade+1)
	for e := 0; e <= 12*perDecade; e++ {
		b = append(b, 1e-6*math.Pow(10, float64(e)/perDecade))
	}
	return b
}

// NewSketch creates a sketch with the given ascending upper bounds; with no
// arguments it uses DefaultSketchBounds. It panics on unsorted bounds —
// always a programming error, not input.
func NewSketch(bounds ...float64) *Sketch {
	if len(bounds) == 0 {
		bounds = DefaultSketchBounds
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: sketch bounds not ascending at %d: %v", i, bounds))
		}
	}
	s := &Sketch{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	s.min.Store(math.Float64bits(math.Inf(1)))
	s.max.Store(math.Float64bits(math.Inf(-1)))
	return s
}

// Observe records one value. Lock-free, allocation-free.
func (s *Sketch) Observe(v float64) {
	i := sort.SearchFloat64s(s.bounds, v)
	s.counts[i].Add(1)
	s.count.Add(1)
	addFloat(&s.sum, v)
	minFloat(&s.min, v)
	maxFloat(&s.max, v)
}

// addFloat atomically adds v to the float64 stored as bits in a.
func addFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, nw) {
			return
		}
	}
}

// minFloat atomically lowers the float64 stored in a to v if v is smaller.
func minFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if v >= math.Float64frombits(old) || a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// maxFloat atomically raises the float64 stored in a to v if v is larger.
func maxFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if v <= math.Float64frombits(old) || a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Snapshot returns a copy of the sketch state. Concurrent observers may
// land between field reads (same caveat as Counters.Snapshot); each field
// is individually exact.
func (s *Sketch) Snapshot() SketchSnapshot {
	out := SketchSnapshot{
		Bounds: append([]float64(nil), s.bounds...),
		Counts: make([]int64, len(s.counts)),
		Count:  s.count.Load(),
		Sum:    math.Float64frombits(s.sum.Load()),
		Min:    math.Float64frombits(s.min.Load()),
		Max:    math.Float64frombits(s.max.Load()),
	}
	for i := range s.counts {
		out.Counts[i] = s.counts[i].Load()
	}
	return out
}

// Merge folds a snapshot into the sketch. The snapshot must share bounds.
func (s *Sketch) Merge(o SketchSnapshot) error {
	if len(o.Bounds) != len(s.bounds) {
		return fmt.Errorf("metrics: merging sketches with %d vs %d buckets", len(o.Bounds), len(s.bounds))
	}
	for i, b := range o.Bounds {
		if b != s.bounds[i] {
			return fmt.Errorf("metrics: merging sketches with different bounds at %d: %g vs %g", i, b, s.bounds[i])
		}
	}
	for i, c := range o.Counts {
		s.counts[i].Add(c)
	}
	s.count.Add(o.Count)
	addFloat(&s.sum, o.Sum)
	if o.Count > 0 {
		minFloat(&s.min, o.Min)
		maxFloat(&s.max, o.Max)
	}
	return nil
}

// Reset zeroes the sketch for reuse.
func (s *Sketch) Reset() {
	for i := range s.counts {
		s.counts[i].Store(0)
	}
	s.count.Store(0)
	s.sum.Store(0)
	s.min.Store(math.Float64bits(math.Inf(1)))
	s.max.Store(math.Float64bits(math.Inf(-1)))
}

// SketchSnapshot is an immutable copy of a sketch — structurally a CDF: the
// i-th count covers (Bounds[i-1], Bounds[i]], with a final overflow bucket.
type SketchSnapshot struct {
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// SketchFromHist reinterprets a fixed-bucket histogram snapshot as a sketch
// CDF — the two share bucket semantics — so interpolated quantiles are
// available for every distribution the runtime already records.
func SketchFromHist(h HistSnapshot) SketchSnapshot {
	return SketchSnapshot{
		Bounds: h.Bounds, Counts: h.Counts,
		Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
	}
}

// Mean returns the average observation (0 when empty).
func (s SketchSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by locating the bucket
// holding the q-th observation and interpolating linearly inside it,
// clamped to the observed min/max. It returns 0 when the sketch is empty.
// Worst-case relative error is bounded by the bucket width (one eighth of a
// decade for the default bounds).
func (s SketchSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen < rank {
			continue
		}
		lo, hi := s.bucketEdges(i)
		// Position of the rank inside this bucket's c observations.
		frac := float64(rank-(seen-c)) / float64(c)
		est := lo + frac*(hi-lo)
		return math.Min(math.Max(est, s.Min), s.Max)
	}
	return s.Max
}

// bucketEdges returns the value range covered by bucket i, substituting the
// observed extremes for the open ends (below the first bound, above the
// last).
func (s SketchSnapshot) bucketEdges(i int) (lo, hi float64) {
	if i == 0 {
		lo = math.Min(s.Min, s.Bounds[0])
	} else {
		lo = s.Bounds[i-1]
	}
	if i < len(s.Bounds) {
		hi = s.Bounds[i]
	} else {
		hi = math.Max(s.Max, s.Bounds[len(s.Bounds)-1])
	}
	return lo, hi
}
