package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestZeroValueUsable(t *testing.T) {
	var c Counters
	c.IncAppMessages(1)
	if got := c.Snapshot().AppMessages; got != 1 {
		t.Fatalf("AppMessages = %d, want 1", got)
	}
}

func TestAllCounters(t *testing.T) {
	var c Counters
	c.IncAppMessages(3)
	c.IncCtrlMessages(5, 9) // 5 messages of 9 bytes
	c.IncCheckpoints(2)
	c.IncForced(1)
	c.IncRollbacks(4)
	c.IncRestartedEvents(7)
	c.AddBlocked(2 * time.Second)
	c.Inc("markers", 6)

	s := c.Snapshot()
	if s.AppMessages != 3 || s.CtrlMessages != 5 || s.CtrlBytes != 45 ||
		s.Checkpoints != 2 || s.Forced != 1 || s.Rollbacks != 4 ||
		s.RestartedEvents != 7 || s.Blocked != 2*time.Second ||
		s.Custom["markers"] != 6 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.TotalCheckpoints() != 3 {
		t.Fatalf("TotalCheckpoints = %d, want 3", s.TotalCheckpoints())
	}
}

func TestSnapshotIsolation(t *testing.T) {
	var c Counters
	c.Inc("x", 1)
	s := c.Snapshot()
	c.Inc("x", 1)
	if s.Custom["x"] != 1 {
		t.Fatal("snapshot not isolated from later increments")
	}
	s.Custom["x"] = 99
	if c.Snapshot().Custom["x"] != 2 {
		t.Fatal("mutating snapshot leaked into counters")
	}
}

func TestMaxIsHighWatermark(t *testing.T) {
	var c Counters
	c.Max("depth", 3)
	c.Max("depth", 7)
	c.Max("depth", 5) // lower values never pull the watermark down
	if got := c.Snapshot().Custom["depth"]; got != 7 {
		t.Fatalf("Max watermark = %d, want 7", got)
	}
	c.Max("other", 0)
	if got := c.Snapshot().Custom["other"]; got != 0 {
		t.Fatalf("Max(0) = %d, want 0", got)
	}
	c.Reset()
	if got := c.Snapshot().Custom["depth"]; got != 0 {
		t.Fatalf("watermark survived Reset: %d", got)
	}
}

func TestStringContainsCustomSorted(t *testing.T) {
	var c Counters
	c.Inc("zeta", 1)
	c.Inc("alpha", 2)
	out := c.Snapshot().String()
	ia, iz := strings.Index(out, "alpha=2"), strings.Index(out, "zeta=1")
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("String() = %q: custom counters missing or unsorted", out)
	}
}

func TestConcurrentIncrements(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.IncAppMessages(1)
				c.Inc("k", 1)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.AppMessages != 8000 || s.Custom["k"] != 8000 {
		t.Fatalf("concurrent counts lost: %+v", s)
	}
}

// BenchmarkCountersInc pins the contention fix: every simulated message
// send crosses these increments, so they are the metrics hot path. The
// parallel variants hammer one Counters from GOMAXPROCS goroutines — the
// pre-fix single-mutex implementation serializes here, the atomic/sharded
// one must not.
func BenchmarkCountersInc(b *testing.B) {
	b.Run("fixed-serial", func(b *testing.B) {
		var c Counters
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.IncAppMessages(1)
		}
	})
	b.Run("fixed-parallel", func(b *testing.B) {
		var c Counters
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.IncAppMessages(1)
			}
		})
	})
	b.Run("named-parallel", func(b *testing.B) {
		var c Counters
		c.Inc("net_drops", 0) // pre-created: steady-state path, not first-insert
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc("net_drops", 1)
			}
		})
	})
	b.Run("max-parallel", func(b *testing.B) {
		var c Counters
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			var d int64
			for pb.Next() {
				d++
				c.Max("net_backlog_max", d%512)
			}
		})
	})
}
