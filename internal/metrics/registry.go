package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Registry is a named-timer and named-histogram registry in the style of
// OPA's metrics package: callers ask for a metric by name, lazily creating
// it, and export a consistent snapshot at the end of a run. Command-line
// tools use it to time pipeline stages (parse, transform, run) alongside
// the runtime's counters. The zero value is not usable; construct with
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	timers map[string]*Timer
	hists  map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		timers: make(map[string]*Timer),
		hists:  make(map[string]*Histogram),
	}
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it with the given bounds
// (DefaultBuckets when empty) on first use. Calling again with no bounds
// returns the existing histogram whatever its bounds; calling again WITH
// bounds panics unless they match the existing ones exactly — silently
// ignoring them would hand the caller buckets it did not ask for, and the
// mismatch would only surface (if ever) as a merge failure far from the
// bug.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
		return h
	}
	if len(bounds) > 0 && !equalBounds(h.bounds, bounds) {
		panic(fmt.Sprintf("metrics: histogram %q exists with bounds %v, requested %v",
			name, h.bounds, bounds))
	}
	return h
}

// equalBounds reports whether two bound slices are identical.
func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Snapshot exports every metric, timers sorted by name.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RegistrySnapshot{}
	for name, t := range r.timers {
		elapsed, count := t.Value(), t.Count()
		s.Timers = append(s.Timers, TimerSnapshot{Name: name, Elapsed: elapsed, Count: count})
	}
	sort.Slice(s.Timers, func(i, j int) bool { return s.Timers[i].Name < s.Timers[j].Name })
	if len(r.hists) > 0 {
		s.Hists = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Hists[name] = h.Snapshot()
		}
	}
	return s
}

// RegistrySnapshot is a consistent export of a Registry.
type RegistrySnapshot struct {
	Timers []TimerSnapshot
	Hists  map[string]HistSnapshot
}

// TimerSnapshot is one exported timer.
type TimerSnapshot struct {
	Name    string
	Elapsed time.Duration
	Count   int64
}

// Timer accumulates wall-clock time over Start/Stop intervals and counts
// the intervals. The zero value is ready to use and safe for concurrent
// use (each goroutine should use its own Start/Stop pairing, or guard
// externally — overlapping intervals on one timer lose the overlap).
type Timer struct {
	mu      sync.Mutex
	started time.Time
	running bool
	elapsed time.Duration
	count   int64
}

// Start begins an interval and returns the timer for chaining.
func (t *Timer) Start() *Timer {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.started = time.Now()
	t.running = true
	return t
}

// Stop ends the current interval, adds it to the total, and returns the
// interval's duration. Stop without a matching Start is a no-op.
func (t *Timer) Stop() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.running {
		return 0
	}
	d := time.Since(t.started)
	t.elapsed += d
	t.count++
	t.running = false
	return d
}

// Value returns the accumulated duration across completed intervals.
func (t *Timer) Value() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.elapsed
}

// Count returns the number of completed intervals.
func (t *Timer) Count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}
