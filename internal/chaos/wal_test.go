package chaos

import (
	"testing"

	"repro/internal/storage/wal"
)

// TestWALInjectorDeterminism: the same seed must produce byte-identical
// decisions for the same consult stream — that is what makes a walchaos
// failure replayable from its seed.
func TestWALInjectorDeterminism(t *testing.T) {
	decide := func() []wal.Fault {
		wi := NewWALInjector(42, WALRates{CrashRate: 0.1, FlipRate: 0.1})
		var out []wal.Fault
		for shard := 0; shard < 4; shard++ {
			for seq := uint64(0); seq < 200; seq++ {
				out = append(out, wi.Decide(wal.OpAppend, shard, seq, 512))
				out = append(out, wi.Decide(wal.OpSync, shard, seq, 0))
			}
		}
		return out
	}
	a, b := decide(), decide()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across replays: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestWALInjectorSeedsDiffer: different seeds must produce different fault
// patterns (the matrix is not vacuously replaying one schedule).
func TestWALInjectorSeedsDiffer(t *testing.T) {
	pattern := func(seed int64) []wal.Fault {
		wi := NewWALInjector(seed, WALRates{CrashRate: 0.2, FlipRate: 0.2})
		var out []wal.Fault
		for seq := uint64(0); seq < 500; seq++ {
			out = append(out, wi.Decide(wal.OpAppend, 0, seq, 256))
		}
		return out
	}
	a, b := pattern(1), pattern(2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 1 and 2 drew identical fault patterns")
	}
}

// TestWALInjectorRates: empirical fault frequency tracks the configured
// rates over a large consult stream.
func TestWALInjectorRates(t *testing.T) {
	const n = 20000
	wi := NewWALInjector(7, WALRates{CrashRate: 0.05, FlipRate: 0.1})
	kills, flips := 0, 0
	for seq := uint64(0); seq < n; seq++ {
		f := wi.Decide(wal.OpAppend, 0, seq, 1024)
		if f.Kill != wal.KillNone {
			kills++
		}
		if f.Flip {
			flips++
		}
	}
	if got := float64(kills) / n; got < 0.03 || got > 0.07 {
		t.Errorf("kill frequency %.4f, want ~0.05", got)
	}
	if got := float64(flips) / n; got < 0.07 || got > 0.13 {
		t.Errorf("flip frequency %.4f, want ~0.10", got)
	}
	st := wi.Stats()
	if int(st.Kills) != kills || int(st.Flips) != flips {
		t.Errorf("stats (%d kills, %d flips) disagree with observed (%d, %d)",
			st.Kills, st.Flips, kills, flips)
	}
	if st.TornKills == 0 {
		t.Error("no kill ever tore an append — Keep is never drawn")
	}
}

// TestWALInjectorZeroRates never faults.
func TestWALInjectorZeroRates(t *testing.T) {
	wi := NewWALInjector(3, WALRates{})
	for seq := uint64(0); seq < 1000; seq++ {
		if f := wi.Decide(wal.OpAppend, 0, seq, 128); f != (wal.Fault{}) {
			t.Fatalf("zero-rate injector faulted: %+v", f)
		}
	}
}
