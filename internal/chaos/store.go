// Package chaos injects faults into a run deterministically: a storage
// wrapper that fails, tears, corrupts, and delays operations at seeded
// per-class rates, and schedule generators that derive multi-process,
// multi-incarnation crash schedules from (λ, seed).
//
// Every fault decision is a pure function of (seed, fault class, snapshot
// key, per-key attempt number) — a hash, not a shared sequential RNG — so
// concurrent goroutine interleaving cannot perturb which operations fault.
// The same seed reproduces the same fault pattern for the same operation
// sequence, which is what makes chaos failures debuggable.
package chaos

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

// Rates sets the per-operation fault probabilities, each in [0, 1].
type Rates struct {
	// WriteError fails a Save with storage.ErrTransient before anything is
	// persisted (the retry layer usually absorbs it).
	WriteError float64
	// ReadError fails a Get/Latest with storage.ErrTransient.
	ReadError float64
	// TornWrite persists the snapshot but leaves it unreadable AND reports
	// the Save as failed — the half-written file of a crash mid-write.
	// Re-saving the same key repairs it (an atomic rewrite).
	TornWrite float64
	// BitFlip persists the snapshot, reports success, and silently marks
	// the stored copy corrupt — media rot detected only at read time.
	BitFlip float64
	// MaxLatency, when positive, delays every operation by a deterministic
	// per-operation fraction of it.
	MaxLatency time.Duration
}

// DefaultRates spreads one knob across the fault classes: the visible
// failures (write/read errors) at the full rate, the data-damaging ones
// (torn writes, bit flips) at half, plus a small operation latency.
func DefaultRates(rate float64) Rates {
	return Rates{
		WriteError: rate,
		ReadError:  rate,
		TornWrite:  rate / 2,
		BitFlip:    rate / 2,
		MaxLatency: 200 * time.Microsecond,
	}
}

// Stats counts the faults a Store injected.
type Stats struct {
	WriteErrors int64
	ReadErrors  int64
	TornWrites  int64
	BitFlips    int64
	// Repairs counts torn-marked keys healed by a re-save.
	Repairs int64
}

// Total is the number of injected faults (repairs are recoveries, not
// faults, and are not counted).
func (s Stats) Total() int64 {
	return s.WriteErrors + s.ReadErrors + s.TornWrites + s.BitFlips
}

// Fault classes. Distinct constants keep the per-class hash streams
// independent: the write-error decision for a key never correlates with its
// bit-flip decision.
const (
	classWrite = iota + 1
	classRead
	classTorn
	classFlip
	classLatency
)

func className(class int) string {
	switch class {
	case classWrite:
		return "write-error"
	case classRead:
		return "read-error"
	case classTorn:
		return "torn-write"
	case classFlip:
		return "bit-flip"
	default:
		return "latency"
	}
}

type key struct{ proc, index, instance int }

type opKey struct {
	class int
	k     key
}

// Store wraps a storage.Store with seeded fault injection. The inner store
// only ever holds CLEAN snapshots: corruption is tracked as marks at the
// wrapper level and surfaces as storage.ErrCorrupt on reads, simulating
// checksum detection without poisoning the inner store's own structures
// (a file store's namespace, an incremental store's delta chains).
//
// Store implements storage.Scrubber: Scrub removes marked keys from the
// inner store (newest-first per process, honoring tail-only deletion of
// delta-encoded stores) so replay can regenerate them.
type Store struct {
	inner storage.Store
	rates Rates
	seed  int64
	obsv  obs.Observer // nil: no fault events

	mu       sync.Mutex
	corrupt  map[key]string // marked-unreadable keys -> reason
	attempts map[opKey]uint64
	stats    Stats
}

var _ storage.Store = (*Store)(nil)
var _ storage.Scrubber = (*Store)(nil)

// New wraps inner with fault injection. The observer may be nil; when set
// it receives one KindFault event per injected fault.
func New(inner storage.Store, seed int64, rates Rates, obsv obs.Observer) *Store {
	return &Store{
		inner:    inner,
		rates:    rates,
		seed:     seed,
		obsv:     obsv,
		corrupt:  make(map[key]string),
		attempts: make(map[opKey]uint64),
	}
}

// mix is a splitmix64-style finalizer over the decision inputs. Each
// (seed, class, key, attempt) tuple gets an independent uniform draw.
func mix(seed int64, class int, k key, attempt uint64) uint64 {
	x := uint64(seed)
	x ^= uint64(class) * 0x9e3779b97f4a7c15
	x ^= uint64(uint32(k.proc))<<42 ^ uint64(uint32(k.index))<<21 ^ uint64(uint32(k.instance))
	x ^= attempt * 0xbf58476d1ce4e5b9
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll draws the next decision value for (class, key), advancing the
// per-key attempt counter so retries of the same operation re-roll.
func (c *Store) roll(class int, k key) uint64 {
	ok := opKey{class, k}
	attempt := c.attempts[ok]
	c.attempts[ok] = attempt + 1
	return mix(c.seed, class, k, attempt)
}

// hit converts a draw into a fault decision at the given rate.
func hit(h uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	return float64(h>>11)/(1<<53) < rate
}

// fault records an injected fault and publishes it.
func (c *Store) fault(class int, k key, count *int64) {
	*count++
	if c.obsv != nil {
		c.obsv.OnEvent(obs.Event{
			Kind: obs.KindFault, Proc: k.proc, Inc: -1,
			Tag:   className(class),
			Label: fmt.Sprintf("index=%d instance=%d", k.index, k.instance),
		})
	}
}

// latency sleeps a deterministic per-operation fraction of MaxLatency.
// Called without the lock held.
func (c *Store) latency(k key) {
	if c.rates.MaxLatency <= 0 {
		return
	}
	c.mu.Lock()
	h := c.roll(classLatency, k)
	c.mu.Unlock()
	time.Sleep(time.Duration(float64(c.rates.MaxLatency) * float64(h>>11) / (1 << 53)))
}

// Save implements storage.Store.
func (c *Store) Save(s storage.Snapshot) error {
	k := key{s.Proc, s.CFGIndex, s.Instance}
	c.latency(k)
	c.mu.Lock()
	if _, marked := c.corrupt[k]; marked {
		// The key holds a torn partial from a failed earlier attempt and
		// the inner store already has the clean body: treat the re-save as
		// an atomic rewrite that repairs it.
		delete(c.corrupt, k)
		c.stats.Repairs++
		c.mu.Unlock()
		return nil
	}
	if hit(c.roll(classWrite, k), c.rates.WriteError) {
		c.fault(classWrite, k, &c.stats.WriteErrors)
		c.mu.Unlock()
		return fmt.Errorf("%w: chaos: injected write error: proc=%d index=%d instance=%d",
			storage.ErrTransient, k.proc, k.index, k.instance)
	}
	torn := hit(c.roll(classTorn, k), c.rates.TornWrite)
	flip := !torn && hit(c.roll(classFlip, k), c.rates.BitFlip)
	c.mu.Unlock()

	if err := c.inner.Save(s); err != nil {
		return err
	}
	if torn {
		c.mu.Lock()
		c.corrupt[k] = "torn write"
		c.fault(classTorn, k, &c.stats.TornWrites)
		c.mu.Unlock()
		return fmt.Errorf("%w: chaos: torn write: proc=%d index=%d instance=%d",
			storage.ErrTransient, k.proc, k.index, k.instance)
	}
	if flip {
		c.mu.Lock()
		c.corrupt[k] = "bit flip"
		c.fault(classFlip, k, &c.stats.BitFlips)
		c.mu.Unlock()
	}
	return nil
}

// readFault rolls the read-error and corruption checks for key k.
func (c *Store) readFault(k key) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if hit(c.roll(classRead, k), c.rates.ReadError) {
		c.fault(classRead, k, &c.stats.ReadErrors)
		return fmt.Errorf("%w: chaos: injected read error: proc=%d index=%d instance=%d",
			storage.ErrTransient, k.proc, k.index, k.instance)
	}
	if reason, marked := c.corrupt[k]; marked {
		return fmt.Errorf("%w: chaos: %s: proc=%d index=%d instance=%d",
			storage.ErrCorrupt, reason, k.proc, k.index, k.instance)
	}
	return nil
}

// Get implements storage.Store.
func (c *Store) Get(proc, cfgIndex, instance int) (storage.Snapshot, error) {
	k := key{proc, cfgIndex, instance}
	c.latency(k)
	if err := c.readFault(k); err != nil {
		return storage.Snapshot{}, err
	}
	return c.inner.Get(proc, cfgIndex, instance)
}

// Latest implements storage.Store. The fault roll keys on (proc, index)
// alone — instance -1 — so retries of the same Latest re-roll coherently.
func (c *Store) Latest(proc, cfgIndex int) (storage.Snapshot, error) {
	c.latency(key{proc, cfgIndex, -1})
	c.mu.Lock()
	if hit(c.roll(classRead, key{proc, cfgIndex, -1}), c.rates.ReadError) {
		c.fault(classRead, key{proc, cfgIndex, -1}, &c.stats.ReadErrors)
		c.mu.Unlock()
		return storage.Snapshot{}, fmt.Errorf("%w: chaos: injected read error: proc=%d index=%d",
			storage.ErrTransient, proc, cfgIndex)
	}
	c.mu.Unlock()
	s, err := c.inner.Latest(proc, cfgIndex)
	if err != nil {
		return s, err
	}
	c.mu.Lock()
	reason, marked := c.corrupt[key{proc, cfgIndex, s.Instance}]
	c.mu.Unlock()
	if marked {
		return storage.Snapshot{}, fmt.Errorf("%w: chaos: %s: proc=%d index=%d instance=%d",
			storage.ErrCorrupt, reason, proc, cfgIndex, s.Instance)
	}
	return s, nil
}

// List implements storage.Store. It is strict: a process with any marked
// snapshot fails the whole listing, the way a chain scan stops at a
// damaged record.
func (c *Store) List(proc int) ([]storage.Snapshot, error) {
	c.mu.Lock()
	for k, reason := range c.corrupt {
		if k.proc == proc {
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: chaos: %s: proc=%d index=%d instance=%d",
				storage.ErrCorrupt, reason, k.proc, k.index, k.instance)
		}
	}
	c.mu.Unlock()
	return c.inner.List(proc)
}

// Indexes implements storage.Store.
func (c *Store) Indexes(n int) ([]int, error) { return c.inner.Indexes(n) }

// Delete implements storage.Store.
func (c *Store) Delete(proc, cfgIndex, instance int) error {
	k := key{proc, cfgIndex, instance}
	c.mu.Lock()
	delete(c.corrupt, k)
	c.mu.Unlock()
	return c.inner.Delete(proc, cfgIndex, instance)
}

// Scrub implements storage.Scrubber: it removes every marked key from the
// inner store so replay can regenerate it. Removal runs newest-first per
// process (by the process's own vector-clock component, its local total
// order) down to the oldest marked key, because delta-encoded inner stores
// only allow tail deletion; still-healthy snapshots removed on the way
// down are counted as collateral.
func (c *Store) Scrub() (storage.ScrubReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rep storage.ScrubReport
	pending := make(map[int]int) // proc -> marked keys remaining
	for k := range c.corrupt {
		pending[k.proc]++
	}
	procs := make([]int, 0, len(pending))
	for p := range pending {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		snaps, err := c.inner.List(p)
		if err != nil {
			return rep, err
		}
		// Newest-first by the process's own clock component. Under a
		// Namespace the proc number is fleet-global while each snapshot's
		// clock is job-local, so component p may not exist; fall back to
		// instance order there (fine: delta-encoded stores, the reason for
		// newest-first, are never namespaced in the fleet).
		newness := func(s storage.Snapshot) uint64 {
			if p < len(s.Clock) {
				return s.Clock[p]
			}
			return uint64(s.Instance)
		}
		sort.Slice(snaps, func(i, j int) bool {
			return newness(snaps[i]) > newness(snaps[j])
		})
		for _, s := range snaps {
			if pending[p] == 0 {
				break
			}
			k := key{p, s.CFGIndex, s.Instance}
			if err := c.inner.Delete(p, s.CFGIndex, s.Instance); err != nil {
				return rep, err
			}
			if reason, marked := c.corrupt[k]; marked {
				rep.Quarantined = append(rep.Quarantined, storage.SnapshotRef{
					Proc: p, CFGIndex: s.CFGIndex, Instance: s.Instance, Reason: reason,
				})
				delete(c.corrupt, k)
				pending[p]--
			} else {
				rep.Collateral++
			}
		}
		// Marks with no backing snapshot (deleted out of band): clear them
		// so they stop failing reads.
		for k, reason := range c.corrupt {
			if k.proc == p {
				rep.Quarantined = append(rep.Quarantined, storage.SnapshotRef{
					Proc: p, CFGIndex: k.index, Instance: k.instance, Reason: reason,
				})
				delete(c.corrupt, k)
			}
		}
	}
	return rep, nil
}

// Stats returns the fault counts so far.
func (c *Store) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
