package chaos

// Network-level fault injection: a link wrapper that drops, duplicates,
// reorders, and delays transport frames and enforces directed partition
// windows. Like the storage wrapper, every probabilistic decision is a
// pure hash of (seed, class, from, to, seq, attempt) — never a shared
// sequential RNG — so goroutine interleaving cannot perturb which frames
// fault, and one seed reproduces one fault pattern. Partition windows are
// schedules, not draws: they open and close at configured offsets from the
// injector's epoch (the first Verdict call), which spans incarnations, so
// an unhealed partition keeps a peer silent across restarts until the
// window closes in absolute time.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// NetRates sets the per-frame fault probabilities, each in [0, 1].
type NetRates struct {
	// Drop loses the frame entirely (the transport's retransmission
	// machinery decides what happens next).
	Drop float64
	// Dup delivers the frame twice.
	Dup float64
	// Reorder holds the frame back long enough for successors to overtake
	// it on the wire (a delay drawn in the upper half of MaxDelay).
	Reorder float64
	// Delay postpones delivery by a deterministic per-frame fraction of
	// MaxDelay without the reordering intent.
	Delay float64
	// MaxDelay bounds reorder/delay hold-back times (default 2ms when any
	// of Reorder/Delay is positive).
	MaxDelay time.Duration
}

// DefaultNetRates spreads one knob across the fault classes: drops at the
// full rate, duplicates and reorders at half, plus a small wire latency on
// a quarter of frames.
func DefaultNetRates(rate float64) NetRates {
	return NetRates{
		Drop:     rate,
		Dup:      rate / 2,
		Reorder:  rate / 2,
		Delay:    rate / 4,
		MaxDelay: 2 * time.Millisecond,
	}
}

// Partition is one directed partition window: frames from From to To are
// dropped while the window [Start, Start+Dur) is open, measured from the
// injector's epoch. From/To of -1 are wildcards matching every process.
type Partition struct {
	From, To int
	Start    time.Duration
	Dur      time.Duration
}

func (p Partition) matches(from, to int) bool {
	return (p.From < 0 || p.From == from) && (p.To < 0 || p.To == to)
}

// String renders the window in the -net-partition flag syntax.
func (p Partition) String() string {
	f, t := "*", "*"
	if p.From >= 0 {
		f = strconv.Itoa(p.From)
	}
	if p.To >= 0 {
		t = strconv.Itoa(p.To)
	}
	return fmt.Sprintf("%s>%s@%v+%v", f, t, p.Start, p.Dur)
}

// ParsePartitions parses a comma-separated list of partition specs of the
// form "FROM>TO@START+DUR" ("0>1@100ms+300ms"; "*" wildcards a side).
func ParsePartitions(spec string) ([]Partition, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []Partition
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		pair, window, ok := strings.Cut(field, "@")
		if !ok {
			return nil, fmt.Errorf("chaos: partition %q: missing '@'", field)
		}
		fromS, toS, ok := strings.Cut(pair, ">")
		if !ok {
			return nil, fmt.Errorf("chaos: partition %q: missing '>' in %q", field, pair)
		}
		startS, durS, ok := strings.Cut(window, "+")
		if !ok {
			return nil, fmt.Errorf("chaos: partition %q: missing '+' in %q", field, window)
		}
		side := func(s string) (int, error) {
			s = strings.TrimSpace(s)
			if s == "*" {
				return -1, nil
			}
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				return 0, fmt.Errorf("chaos: partition %q: bad process %q", field, s)
			}
			return v, nil
		}
		var p Partition
		var err error
		if p.From, err = side(fromS); err != nil {
			return nil, err
		}
		if p.To, err = side(toS); err != nil {
			return nil, err
		}
		if p.Start, err = time.ParseDuration(strings.TrimSpace(startS)); err != nil {
			return nil, fmt.Errorf("chaos: partition %q: bad start: %v", field, err)
		}
		if p.Dur, err = time.ParseDuration(strings.TrimSpace(durS)); err != nil {
			return nil, fmt.Errorf("chaos: partition %q: bad duration: %v", field, err)
		}
		if p.Start < 0 || p.Dur <= 0 {
			return nil, fmt.Errorf("chaos: partition %q: window must have start >= 0 and positive duration", field)
		}
		out = append(out, p)
	}
	return out, nil
}

// NetStats counts the faults a Network injected.
type NetStats struct {
	Drops          int64
	Dups           int64
	Reorders       int64
	Delays         int64
	PartitionDrops int64
	// Heals counts partition windows observed to close (first frame
	// attempted on a matching link after the window's end).
	Heals int64
}

// Total is the number of injected faults (heals are recoveries, not
// faults, and are not counted).
func (s NetStats) Total() int64 {
	return s.Drops + s.Dups + s.Reorders + s.Delays + s.PartitionDrops
}

// Network injects seeded link-level faults; it implements sim.LinkChaos
// and plugs into sim.NetConfig.Chaos.
type Network struct {
	seed  int64
	rates NetRates
	parts []Partition
	obsv  obs.Observer // nil: no fault events

	mu     sync.Mutex
	epoch  time.Time // zero until the first Verdict
	healed []bool    // per partition window
	stats  NetStats
}

var _ sim.LinkChaos = (*Network)(nil)

// NewNetwork creates a link-level fault injector. The observer may be nil;
// when set it receives one KindNetFault event per injected fault and one
// KindHeal event per closed partition window.
func NewNetwork(seed int64, rates NetRates, parts []Partition, obsv obs.Observer) *Network {
	if rates.MaxDelay <= 0 && (rates.Reorder > 0 || rates.Delay > 0) {
		rates.MaxDelay = 2 * time.Millisecond
	}
	return &Network{
		seed:   seed,
		rates:  rates,
		parts:  append([]Partition(nil), parts...),
		obsv:   obsv,
		healed: make([]bool, len(parts)),
	}
}

// Frame fault classes, a hash domain disjoint from the storage classes by
// construction (separate salt below).
const (
	nclassDrop = iota + 1
	nclassDup
	nclassReorder
	nclassDelay
)

// nmix is the splitmix64-style finalizer over a frame decision's inputs.
func nmix(seed int64, fclass, class, from, to, seq int, attempt int) uint64 {
	x := uint64(seed) ^ 0x6e65746368616f73 // "netchaos"
	x ^= uint64(fclass) * 0x9e3779b97f4a7c15
	x ^= uint64(class) * 0xd6e8feb86659fd93
	x ^= uint64(uint32(from))<<42 ^ uint64(uint32(to))<<21 ^ uint64(uint32(seq))
	x ^= uint64(attempt) * 0xbf58476d1ce4e5b9
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fault publishes one injected network fault.
func (c *Network) fault(tag string, class sim.LinkClass, from, to, seq, attempt int) {
	if c.obsv != nil {
		c.obsv.OnEvent(obs.Event{
			Kind: obs.KindNetFault, Proc: from, Inc: -1, Tag: tag,
			Label: fmt.Sprintf("%s %d->%d seq=%d attempt=%d", class, from, to, seq, attempt),
		})
	}
}

// Verdict implements sim.LinkChaos: the fate of one transmission attempt.
func (c *Network) Verdict(class sim.LinkClass, from, to, seq, attempt int) sim.Verdict {
	var v sim.Verdict
	now := time.Now()
	c.mu.Lock()
	if c.epoch.IsZero() {
		c.epoch = now
	}
	elapsed := now.Sub(c.epoch)
	for i, p := range c.parts {
		if !p.matches(from, to) {
			continue
		}
		switch {
		case elapsed < p.Start:
		case elapsed < p.Start+p.Dur:
			v.Drop = true
			v.Partitioned = true
		case !c.healed[i]:
			c.healed[i] = true
			v.Healed = true
			c.stats.Heals++
		}
	}
	if v.Partitioned {
		c.stats.PartitionDrops++
		c.stats.Drops++
		c.mu.Unlock()
		c.fault("partition", class, from, to, seq, attempt)
		return v
	}
	if v.Healed && c.obsv != nil {
		c.obsv.OnEvent(obs.Event{
			Kind: obs.KindHeal, Proc: from, Inc: -1,
			Label: fmt.Sprintf("partition healed at %v: first frame %s %d->%d", elapsed.Round(time.Millisecond), class, from, to),
		})
	}
	fc := int(class)
	if hit(nmix(c.seed, nclassDrop, fc, from, to, seq, attempt), c.rates.Drop) {
		v.Drop = true
		c.stats.Drops++
		c.mu.Unlock()
		c.fault("drop", class, from, to, seq, attempt)
		return v
	}
	if hit(nmix(c.seed, nclassDup, fc, from, to, seq, attempt), c.rates.Dup) {
		v.Duplicate = true
		c.stats.Dups++
		defer c.fault("dup", class, from, to, seq, attempt)
	}
	if h := nmix(c.seed, nclassReorder, fc, from, to, seq, attempt); hit(h, c.rates.Reorder) {
		// Upper half of MaxDelay: long enough that in-flight successors
		// sent back-to-back overtake this frame.
		v.Reorder = true
		v.Delay = c.rates.MaxDelay/2 + time.Duration(float64(c.rates.MaxDelay/2)*float64(h>>11)/(1<<53))
		c.stats.Reorders++
		c.mu.Unlock()
		c.fault("reorder", class, from, to, seq, attempt)
		return v
	}
	if h := nmix(c.seed, nclassDelay, fc, from, to, seq, attempt); hit(h, c.rates.Delay) {
		v.Delay = time.Duration(float64(c.rates.MaxDelay) * float64(h>>11) / (1 << 53))
		c.stats.Delays++
		c.mu.Unlock()
		c.fault("delay", class, from, to, seq, attempt)
		return v
	}
	c.mu.Unlock()
	return v
}

// Stats returns the fault counts so far.
func (c *Network) Stats() NetStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
