package chaos

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestNetVerdictDeterministic(t *testing.T) {
	rates := NetRates{Drop: 0.3, Dup: 0.3, Reorder: 0.3, Delay: 0.3, MaxDelay: time.Millisecond}
	a := NewNetwork(42, rates, nil, nil)
	b := NewNetwork(42, rates, nil, nil)
	for seq := 0; seq < 200; seq++ {
		for _, class := range []sim.LinkClass{sim.LinkData, sim.LinkCtrl, sim.LinkAck, sim.LinkHeartbeat} {
			va := a.Verdict(class, 0, 1, seq, 0)
			vb := b.Verdict(class, 0, 1, seq, 0)
			if va != vb {
				t.Fatalf("same seed diverged: class=%v seq=%d: %+v vs %+v", class, seq, va, vb)
			}
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Total() == 0 {
		t.Fatal("30% rates injected nothing across 800 frames")
	}
}

func TestNetVerdictSeedsDiffer(t *testing.T) {
	rates := NetRates{Drop: 0.5}
	a := NewNetwork(1, rates, nil, nil)
	b := NewNetwork(2, rates, nil, nil)
	same := 0
	const frames = 400
	for seq := 0; seq < frames; seq++ {
		if a.Verdict(sim.LinkData, 0, 1, seq, 0).Drop == b.Verdict(sim.LinkData, 0, 1, seq, 0).Drop {
			same++
		}
	}
	if same == frames {
		t.Fatal("different seeds produced identical drop patterns")
	}
}

func TestNetVerdictAttemptReRolls(t *testing.T) {
	// A frame dropped on attempt k must be able to pass on a later attempt:
	// the attempt number is part of the hash input. With Drop=0.5 the odds
	// that some frame stays dropped across 20 attempts are ~1e-6 per frame.
	c := NewNetwork(7, NetRates{Drop: 0.5}, nil, nil)
	for seq := 0; seq < 50; seq++ {
		passed := false
		for attempt := 0; attempt < 20; attempt++ {
			if !c.Verdict(sim.LinkData, 0, 1, seq, attempt).Drop {
				passed = true
				break
			}
		}
		if !passed {
			t.Fatalf("seq %d dropped on all 20 attempts", seq)
		}
	}
}

func TestNetVerdictClassStreamsIndependent(t *testing.T) {
	// Data and ack decisions for the same (from,to,seq) must come from
	// independent streams — otherwise ack loss correlates with data loss
	// and retransmission livelocks become artificially likely.
	c := NewNetwork(11, NetRates{Drop: 0.5}, nil, nil)
	same := 0
	const frames = 400
	for seq := 0; seq < frames; seq++ {
		d := c.Verdict(sim.LinkData, 0, 1, seq, 0).Drop
		a := c.Verdict(sim.LinkAck, 0, 1, seq, 0).Drop
		if d == a {
			same++
		}
	}
	if same == frames {
		t.Fatal("data and ack drop streams are identical")
	}
}

func TestNetRatesZeroInjectsNothing(t *testing.T) {
	c := NewNetwork(99, NetRates{}, nil, nil)
	for seq := 0; seq < 100; seq++ {
		if v := c.Verdict(sim.LinkData, 0, 1, seq, 0); v != (sim.Verdict{}) {
			t.Fatalf("zero rates injected %+v", v)
		}
	}
	if c.Stats().Total() != 0 {
		t.Fatalf("stats = %+v, want all zero", c.Stats())
	}
}

func TestPartitionWindowAndHeal(t *testing.T) {
	// Window opens immediately and lasts 50ms; frames 0->1 drop, the
	// reverse direction flows, and the first frame after the window heals.
	c := NewNetwork(5, NetRates{}, []Partition{{From: 0, To: 1, Start: 0, Dur: 50 * time.Millisecond}}, nil)
	v := c.Verdict(sim.LinkData, 0, 1, 0, 0) // also sets the epoch
	if !v.Drop || !v.Partitioned {
		t.Fatalf("frame inside window not partitioned: %+v", v)
	}
	if v := c.Verdict(sim.LinkData, 1, 0, 0, 0); v.Drop {
		t.Fatalf("reverse direction dropped by a directed partition: %+v", v)
	}
	time.Sleep(60 * time.Millisecond)
	v = c.Verdict(sim.LinkHeartbeat, 0, 1, 1, 0)
	if v.Drop {
		t.Fatalf("frame after window still dropped: %+v", v)
	}
	if !v.Healed {
		t.Fatalf("first frame after window did not heal: %+v", v)
	}
	if v := c.Verdict(sim.LinkData, 0, 1, 2, 0); v.Healed {
		t.Fatalf("heal reported twice: %+v", v)
	}
	st := c.Stats()
	if st.Heals != 1 || st.PartitionDrops != 1 {
		t.Fatalf("stats = %+v, want 1 heal, 1 partition drop", st)
	}
}

func TestPartitionWildcard(t *testing.T) {
	c := NewNetwork(5, NetRates{}, []Partition{{From: -1, To: 2, Start: 0, Dur: time.Minute}}, nil)
	for from := 0; from < 2; from++ {
		if v := c.Verdict(sim.LinkData, from, 2, 0, 0); !v.Partitioned {
			t.Fatalf("wildcard source %d->2 not partitioned", from)
		}
	}
	if v := c.Verdict(sim.LinkData, 2, 0, 0, 0); v.Partitioned {
		t.Fatal("partition leaked onto a non-matching link")
	}
}

func TestParsePartitions(t *testing.T) {
	parts, err := ParsePartitions("0>1@100ms+300ms, *>2@0s+1s")
	if err != nil {
		t.Fatal(err)
	}
	want := []Partition{
		{From: 0, To: 1, Start: 100 * time.Millisecond, Dur: 300 * time.Millisecond},
		{From: -1, To: 2, Start: 0, Dur: time.Second},
	}
	if len(parts) != len(want) {
		t.Fatalf("parsed %d windows, want %d", len(parts), len(want))
	}
	for i := range want {
		if parts[i] != want[i] {
			t.Fatalf("window %d = %+v, want %+v", i, parts[i], want[i])
		}
	}
	if got := parts[0].String(); got != "0>1@100ms+300ms" {
		t.Fatalf("String() = %q", got)
	}
	if parts, err := ParsePartitions("  "); err != nil || parts != nil {
		t.Fatalf("blank spec: %v, %v", parts, err)
	}
	for _, bad := range []string{"0>1", "0@1s+1s", "0>1@1s", "x>1@1s+1s", "0>1@1s+0s", "-2>1@1s+1s"} {
		if _, err := ParsePartitions(bad); err == nil {
			t.Errorf("spec %q accepted, want error", bad)
		}
	}
}

func TestReorderDelayWithinBounds(t *testing.T) {
	maxD := 4 * time.Millisecond
	c := NewNetwork(3, NetRates{Reorder: 1, MaxDelay: maxD}, nil, nil)
	for seq := 0; seq < 50; seq++ {
		v := c.Verdict(sim.LinkData, 0, 1, seq, 0)
		if !v.Reorder {
			t.Fatalf("rate 1 did not reorder seq %d", seq)
		}
		if v.Delay < maxD/2 || v.Delay > maxD {
			t.Fatalf("reorder delay %v outside [%v, %v]", v.Delay, maxD/2, maxD)
		}
	}
}

func TestDefaultNetRates(t *testing.T) {
	r := DefaultNetRates(0.2)
	if r.Drop != 0.2 || r.Dup != 0.1 || r.Reorder != 0.1 || r.Delay != 0.05 || r.MaxDelay <= 0 {
		t.Fatalf("DefaultNetRates = %+v", r)
	}
}
