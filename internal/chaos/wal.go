package chaos

import (
	"sync"

	"repro/internal/storage/wal"
)

// WALRates sets per-consult fault probabilities for the WAL store's
// durability points, each in [0, 1].
type WALRates struct {
	// CrashRate is the probability any single durability point (append,
	// fsync, manifest write/rename, segment create, retire) kills the
	// store. Whether the kill lands before or after the effect — and, for
	// appends, how many unsynced bytes survive (a torn write) — is drawn
	// from the same hash.
	CrashRate float64
	// FlipRate is the probability an append batch gets one bit flipped in
	// a record body: silent media rot of an acknowledged checkpoint,
	// detected only by CRC at read or recovery time.
	FlipRate float64
}

// DefaultWALRates spreads one knob: crashes at the full rate, flips at
// half, mirroring DefaultRates' split between loud and silent faults.
func DefaultWALRates(rate float64) WALRates {
	return WALRates{CrashRate: rate, FlipRate: rate / 2}
}

// WALStats counts the faults a WALInjector injected.
type WALStats struct {
	Kills     int64 // crash points fired (the store is dead after the first)
	Flips     int64
	TornKills int64 // kills that also tore the in-flight append
}

// WALInjector is a seeded, hash-deterministic wal.Injector. Every decision
// is a pure function of (seed, fault class, shard, op, consult sequence) —
// the same scheme as the storage and network injectors, so goroutine
// interleaving cannot perturb which consult faults. Because the WAL store
// serializes consults per shard under its shard mutex, one seed replays
// one fault pattern exactly.
type WALInjector struct {
	seed  int64
	rates WALRates

	mu    sync.Mutex
	stats WALStats
}

var _ wal.Injector = (*WALInjector)(nil)

// NewWALInjector returns an injector for the given seed and rates.
func NewWALInjector(seed int64, rates WALRates) *WALInjector {
	return &WALInjector{seed: seed, rates: rates}
}

// Fault classes for the WAL consult stream, disjoint from the storage
// wrapper's classes so a shared seed draws independent streams.
const (
	classWALCrash = iota + 64
	classWALFlip
)

// Decide implements wal.Injector.
func (wi *WALInjector) Decide(op wal.Op, shard int, seq uint64, size int) wal.Fault {
	// Key the draw on (shard, op, seq): one independent stream per consult
	// point. mix()'s attempt slot carries seq so long runs do not wrap the
	// 32-bit key fields.
	k := key{proc: shard, index: int(op), instance: 0}
	var f wal.Fault

	h := mix(wi.seed, classWALCrash, k, seq)
	if hit(h, wi.rates.CrashRate) {
		if h&(1<<60) != 0 {
			f.Kill = wal.KillBefore
		} else {
			f.Kill = wal.KillAfter
		}
		if op == wal.OpAppend && size > 0 {
			// Tear the in-flight batch: a deterministic fraction of its
			// unsynced bytes land.
			f.Keep = int((h >> 20) % uint64(size+1))
		}
		wi.mu.Lock()
		wi.stats.Kills++
		if f.Keep > 0 {
			wi.stats.TornKills++
		}
		wi.mu.Unlock()
		return f
	}

	if op == wal.OpAppend && size > 0 {
		h = mix(wi.seed, classWALFlip, k, seq)
		if hit(h, wi.rates.FlipRate) {
			f.Flip = true
			f.FlipAt = int((h >> 17) % uint64(size))
			wi.mu.Lock()
			wi.stats.Flips++
			wi.mu.Unlock()
		}
	}
	return f
}

// Stats returns the injected fault counts so far.
func (wi *WALInjector) Stats() WALStats {
	wi.mu.Lock()
	defer wi.mu.Unlock()
	return wi.stats
}
