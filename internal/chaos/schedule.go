package chaos

import (
	"math"
	"math/rand"

	"repro/internal/sim"
)

// ScheduleConfig shapes a generated crash schedule.
type ScheduleConfig struct {
	// Nproc is the process count; crashed processes are drawn from it
	// without replacement per incarnation (concurrent crashes hit DISTINCT
	// processes).
	Nproc int
	// Lambda is the expected number of crashes per incarnation (Poisson).
	Lambda float64
	// MaxIncarnations is how many incarnations may receive crashes —
	// values above 1 schedule failures during recovery. Default 1.
	MaxIncarnations int
	// MaxEvents bounds the crash point: AfterEvents is drawn uniformly
	// from [1, MaxEvents]. Default 40.
	MaxEvents int
	// MaxTime bounds virtual crash times for VCrashSchedule: At is drawn
	// uniformly from (0, MaxTime]. Default 10.
	MaxTime float64
}

func (cfg *ScheduleConfig) defaults() {
	if cfg.MaxIncarnations <= 0 {
		cfg.MaxIncarnations = 1
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 40
	}
	if cfg.MaxTime <= 0 {
		cfg.MaxTime = 10
	}
}

// poisson draws a Poisson variate (Knuth's product-of-uniforms method —
// fine for the small λ of crash schedules).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for p > l {
		k++
		p *= rng.Float64()
	}
	return k - 1
}

// CrashSchedule derives a crash schedule from (seed, λ): for each
// incarnation below MaxIncarnations it draws a Poisson number of crashes
// (capped at Nproc), assigns them to distinct processes, and picks an
// event-count crash point for each. The same seed always yields the same
// schedule; λ = 0 yields none.
func CrashSchedule(seed int64, cfg ScheduleConfig) []sim.Crash {
	cfg.defaults()
	if cfg.Nproc <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	var out []sim.Crash
	for inc := 0; inc < cfg.MaxIncarnations; inc++ {
		m := poisson(rng, cfg.Lambda)
		if m > cfg.Nproc {
			m = cfg.Nproc
		}
		perm := rng.Perm(cfg.Nproc)
		for i := 0; i < m; i++ {
			out = append(out, sim.Crash{
				Inc:         inc,
				Proc:        perm[i],
				AfterEvents: 1 + rng.Intn(cfg.MaxEvents),
			})
		}
	}
	return out
}

// VCrashSchedule is CrashSchedule in virtual time: crash points are drawn
// from (0, MaxTime] instead of event counts. Requires sim.Config.Time on
// the run that consumes it.
func VCrashSchedule(seed int64, cfg ScheduleConfig) []sim.VCrash {
	cfg.defaults()
	if cfg.Nproc <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	var out []sim.VCrash
	for inc := 0; inc < cfg.MaxIncarnations; inc++ {
		m := poisson(rng, cfg.Lambda)
		if m > cfg.Nproc {
			m = cfg.Nproc
		}
		perm := rng.Perm(cfg.Nproc)
		for i := 0; i < m; i++ {
			out = append(out, sim.VCrash{
				Inc:  inc,
				Proc: perm[i],
				At:   cfg.MaxTime * (1 - rng.Float64()),
			})
		}
	}
	return out
}
