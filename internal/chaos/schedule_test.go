package chaos

import (
	"reflect"
	"testing"
)

func TestCrashScheduleDeterministicPerSeed(t *testing.T) {
	cfg := ScheduleConfig{Nproc: 4, Lambda: 1.5, MaxIncarnations: 3}
	a := CrashSchedule(99, cfg)
	b := CrashSchedule(99, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
}

func TestCrashScheduleShape(t *testing.T) {
	cfg := ScheduleConfig{Nproc: 4, Lambda: 1.5, MaxIncarnations: 3, MaxEvents: 25}
	sawLateInc := false
	sawConcurrent := false
	for seed := int64(0); seed < 50; seed++ {
		perInc := make(map[int]map[int]bool)
		for _, c := range CrashSchedule(seed, cfg) {
			if c.Proc < 0 || c.Proc >= cfg.Nproc {
				t.Fatalf("seed %d: proc %d out of range", seed, c.Proc)
			}
			if c.Inc < 0 || c.Inc >= cfg.MaxIncarnations {
				t.Fatalf("seed %d: inc %d out of range", seed, c.Inc)
			}
			if c.AfterEvents < 1 || c.AfterEvents > cfg.MaxEvents {
				t.Fatalf("seed %d: AfterEvents %d out of [1,%d]", seed, c.AfterEvents, cfg.MaxEvents)
			}
			if perInc[c.Inc] == nil {
				perInc[c.Inc] = make(map[int]bool)
			}
			if perInc[c.Inc][c.Proc] {
				t.Fatalf("seed %d: process %d crashes twice in incarnation %d", seed, c.Proc, c.Inc)
			}
			perInc[c.Inc][c.Proc] = true
			if c.Inc >= 1 {
				sawLateInc = true
			}
		}
		for _, procs := range perInc {
			if len(procs) >= 2 {
				sawConcurrent = true
			}
		}
	}
	if !sawLateInc {
		t.Error("no schedule crashed a later incarnation across 50 seeds")
	}
	if !sawConcurrent {
		t.Error("no schedule crashed two processes concurrently across 50 seeds")
	}
}

func TestCrashScheduleZeroLambdaIsEmpty(t *testing.T) {
	if s := CrashSchedule(1, ScheduleConfig{Nproc: 4, Lambda: 0, MaxIncarnations: 3}); len(s) != 0 {
		t.Fatalf("λ=0 schedule = %v, want empty", s)
	}
	if s := CrashSchedule(1, ScheduleConfig{Nproc: 0, Lambda: 5}); s != nil {
		t.Fatalf("nproc=0 schedule = %v, want nil", s)
	}
}

func TestVCrashScheduleShape(t *testing.T) {
	cfg := ScheduleConfig{Nproc: 3, Lambda: 1, MaxIncarnations: 2, MaxTime: 5}
	a := VCrashSchedule(7, cfg)
	b := VCrashSchedule(7, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed diverged")
	}
	for _, c := range a {
		if c.Proc < 0 || c.Proc >= cfg.Nproc || c.Inc < 0 || c.Inc >= cfg.MaxIncarnations {
			t.Fatalf("out of range: %+v", c)
		}
		if c.At <= 0 || c.At > cfg.MaxTime {
			t.Fatalf("At %v out of (0,%v]", c.At, cfg.MaxTime)
		}
	}
}
