package chaos

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/storage"
	"repro/internal/vclock"
)

func snap(proc, index, instance int) storage.Snapshot {
	return storage.Snapshot{
		Proc: proc, CFGIndex: index, Instance: instance,
		Clock: vclock.VC{uint64(10*index + instance + 1), 0},
		Vars:  map[string]int{"x": 100*index + instance},
	}
}

func TestZeroRatesArePassthrough(t *testing.T) {
	c := New(storage.NewMemory(), 1, Rates{}, nil)
	for k := 0; k < 5; k++ {
		if err := c.Save(snap(0, 1, k)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := c.Latest(0, 1)
	if err != nil || s.Instance != 4 {
		t.Fatalf("Latest = %+v, %v", s, err)
	}
	if _, err := c.Get(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if l, err := c.List(0); err != nil || len(l) != 5 {
		t.Fatalf("List = %d snaps, %v", len(l), err)
	}
	if c.Stats().Total() != 0 {
		t.Fatalf("injected %+v with zero rates", c.Stats())
	}
}

func TestWriteErrorRateOneFailsEverySaveWithoutPersisting(t *testing.T) {
	inner := storage.NewMemory()
	c := New(inner, 7, Rates{WriteError: 1}, nil)
	for k := 0; k < 3; k++ {
		if err := c.Save(snap(0, 1, k)); !errors.Is(err, storage.ErrTransient) {
			t.Fatalf("Save = %v, want ErrTransient", err)
		}
	}
	if inner.Len() != 0 {
		t.Fatalf("inner holds %d snapshots after pure write errors", inner.Len())
	}
	if st := c.Stats(); st.WriteErrors != 3 {
		t.Fatalf("stats = %+v, want 3 write errors", st)
	}
}

func TestTornWriteFailsThenRepairsOnRetry(t *testing.T) {
	inner := storage.NewMemory()
	c := New(inner, 7, Rates{TornWrite: 1}, nil)
	if err := c.Save(snap(0, 1, 0)); !errors.Is(err, storage.ErrTransient) {
		t.Fatalf("first save = %v, want ErrTransient (torn)", err)
	}
	// The partial is on disk but unreadable.
	if _, err := c.Get(0, 1, 0); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("read of torn key = %v, want ErrCorrupt", err)
	}
	// The retry rewrites it atomically.
	if err := c.Save(snap(0, 1, 0)); err != nil {
		t.Fatalf("retry save = %v, want repair", err)
	}
	s, err := c.Get(0, 1, 0)
	if err != nil || s.Vars["x"] != 100 {
		t.Fatalf("after repair: %+v, %v", s, err)
	}
	if st := c.Stats(); st.TornWrites != 1 || st.Repairs != 1 {
		t.Fatalf("stats = %+v, want 1 torn + 1 repair", st)
	}
}

func TestBitFlipIsSilentUntilRead(t *testing.T) {
	c := New(storage.NewMemory(), 3, Rates{BitFlip: 1}, nil)
	if err := c.Save(snap(0, 1, 0)); err != nil {
		t.Fatalf("bit-flip save must report success, got %v", err)
	}
	if _, err := c.Get(0, 1, 0); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("Get = %v, want ErrCorrupt", err)
	}
	if _, err := c.Latest(0, 1); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("Latest = %v, want ErrCorrupt", err)
	}
	if _, err := c.List(0); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("List = %v, want ErrCorrupt", err)
	}
}

func TestReadErrorIsTransient(t *testing.T) {
	c := New(storage.NewMemory(), 3, Rates{ReadError: 1}, nil)
	if err := c.Save(snap(0, 1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(0, 1, 0); !errors.Is(err, storage.ErrTransient) {
		t.Fatalf("Get = %v, want ErrTransient", err)
	}
	if _, err := c.Latest(0, 1); !errors.Is(err, storage.ErrTransient) {
		t.Fatalf("Latest = %v, want ErrTransient", err)
	}
}

func TestScrubClearsMarksAndAllowsResave(t *testing.T) {
	inner := storage.NewMemory()
	c := New(inner, 3, Rates{BitFlip: 1}, nil)
	if err := c.Save(snap(0, 1, 0)); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Reason != "bit flip" {
		t.Fatalf("scrub = %+v, want 1 bit-flip quarantine", rep)
	}
	if _, err := c.Get(0, 1, 0); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("Get after scrub = %v, want ErrNotFound", err)
	}
	// Replay re-saves the key (the flip re-rolls on a fresh attempt; at
	// rate 1 it flips again, proving the attempt counter advances).
	if err := c.Save(snap(0, 1, 0)); err != nil {
		t.Fatalf("re-save after scrub: %v", err)
	}
	if inner.Len() != 1 {
		t.Fatalf("inner holds %d snapshots, want 1", inner.Len())
	}
}

func TestScrubSurvivesNamespacedProcNumbers(t *testing.T) {
	// Under a fleet Namespace the chaos store sees GLOBAL proc numbers
	// (e.g. job 16 of a 2-proc job saves proc 32) while each snapshot's
	// vector clock stays job-local (length 2). Scrub's newest-first
	// ordering must not index the clock with the global number.
	c := New(storage.NewMemory(), 11, Rates{}, nil)
	for inst := 0; inst < 3; inst++ {
		if err := c.Save(snap(32, 1, inst)); err != nil {
			t.Fatal(err)
		}
	}
	c.corrupt[key{32, 1, 1}] = "bit flip"
	rep, err := c.Scrub()
	if err != nil {
		t.Fatalf("scrub over namespaced procs: %v", err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Proc != 32 {
		t.Fatalf("scrub = %+v, want 1 quarantined at proc 32", rep)
	}
	if _, err := c.Get(32, 1, 1); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("Get after scrub = %v, want ErrNotFound", err)
	}
}

func TestScrubTruncatesNewestFirstOverDeltaChain(t *testing.T) {
	// The inner store only allows tail deletion (Incremental): quarantining
	// an old marked key must remove the newer clean keys above it as
	// collateral instead of failing.
	inner := storage.NewIncremental(8)
	c := New(inner, 5, Rates{}, nil)
	for k := 0; k < 4; k++ {
		if err := c.Save(snap(0, 1, k)); err != nil {
			t.Fatal(err)
		}
	}
	// Mark instance 1 corrupt by hand (rates were zero above).
	c.corrupt[key{0, 1, 1}] = "bit flip"
	rep, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || rep.Collateral != 2 {
		t.Fatalf("scrub = %+v, want 1 quarantined + 2 collateral", rep)
	}
	if _, err := c.Get(0, 1, 0); err != nil {
		t.Fatalf("instance below the mark must survive: %v", err)
	}
	for k := 1; k < 4; k++ {
		if _, err := c.Get(0, 1, k); !errors.Is(err, storage.ErrNotFound) {
			t.Fatalf("instance %d after scrub = %v, want ErrNotFound", k, err)
		}
	}
	// Replay regenerates the truncated tail.
	for k := 1; k < 4; k++ {
		if err := c.Save(snap(0, 1, k)); err != nil {
			t.Fatalf("re-save instance %d: %v", k, err)
		}
	}
}

func TestFaultPatternIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) ([]string, Stats) {
		c := New(storage.NewMemory(), seed, Rates{
			WriteError: 0.3, ReadError: 0.3, TornWrite: 0.2, BitFlip: 0.2,
		}, nil)
		var pattern []string
		record := func(err error) {
			switch {
			case err == nil:
				pattern = append(pattern, "ok")
			case errors.Is(err, storage.ErrTransient):
				pattern = append(pattern, "transient")
			case errors.Is(err, storage.ErrCorrupt):
				pattern = append(pattern, "corrupt")
			case errors.Is(err, storage.ErrNotFound):
				pattern = append(pattern, "notfound")
			default:
				pattern = append(pattern, "other")
			}
		}
		for k := 0; k < 10; k++ {
			record(c.Save(snap(0, 1, k)))
			record(c.Save(snap(1, 1, k)))
		}
		for k := 0; k < 10; k++ {
			_, err := c.Get(0, 1, k)
			record(err)
			_, err = c.Latest(1, 1)
			record(err)
		}
		return pattern, c.Stats()
	}
	p1, s1 := run(42)
	p2, s2 := run(42)
	if !reflect.DeepEqual(p1, p2) || s1 != s2 {
		t.Fatalf("same seed diverged:\n%v %+v\n%v %+v", p1, s1, p2, s2)
	}
	p3, _ := run(43)
	if reflect.DeepEqual(p1, p3) {
		t.Error("different seeds produced identical fault patterns (suspicious)")
	}
	// Moderate rates on 60 ops must actually inject something.
	if s1.Total() == 0 {
		t.Error("no faults injected at 30% rates over 60 operations")
	}
}

func TestInnerStoreOnlyHoldsCleanData(t *testing.T) {
	// Whatever the wrapper injects, the INNER store must remain readable:
	// corruption is marks, not mangled bytes.
	inner := storage.NewMemory()
	c := New(inner, 11, DefaultRates(0.4), nil)
	for k := 0; k < 10; k++ {
		_ = c.Save(snap(0, 1, k)) // errors expected; ignore
	}
	snaps, err := inner.List(0)
	if err != nil {
		t.Fatalf("inner.List = %v, inner must never corrupt", err)
	}
	for _, s := range snaps {
		if s.Vars["x"] != 100+s.Instance {
			t.Fatalf("inner snapshot mutated: %+v", s)
		}
	}
}
