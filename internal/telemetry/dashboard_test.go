package telemetry_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

func TestRenderSnapshotPlain(t *testing.T) {
	a := loadedAggregator()
	var buf bytes.Buffer
	telemetry.RenderSnapshot(&buf, a.Snapshot(), false)
	out := buf.String()
	if strings.Contains(out, "\x1b[") {
		t.Error("plain render leaked ANSI sequences")
	}
	for _, want := range []string{"chkpt live telemetry", "UNHEALTHY", "save ms", "block ms", "proc", "STALLED"} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
	// One row per participating process.
	if rows := strings.Count(out, "\np"); rows < 4 {
		t.Errorf("want ≥4 proc rows, got %d:\n%s", rows, out)
	}
}

func TestRenderSnapshotAnsi(t *testing.T) {
	a := telemetry.New(telemetry.Config{Window: time.Hour})
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0, VTime: 1})
	a.Tick()
	var buf bytes.Buffer
	telemetry.RenderSnapshot(&buf, a.Snapshot(), true)
	out := buf.String()
	if !strings.Contains(out, "\x1b[K") {
		t.Error("ANSI render has no erase-to-eol sequences")
	}
	if !strings.Contains(out, "HEALTHY") {
		t.Errorf("healthy run not labeled:\n%s", out)
	}
}

func TestRenderSnapshotCountersAndChaos(t *testing.T) {
	ctr := &metrics.Counters{}
	ctr.IncAppMessages(100)
	ctr.IncCheckpoints(4)
	ctr.Inc("net_faults_drop", 3)
	ctr.Inc("store_retry", 2)
	a := telemetry.New(telemetry.Config{Counters: ctr, Window: time.Hour})
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0})
	a.Tick()
	var buf bytes.Buffer
	telemetry.RenderSnapshot(&buf, a.Snapshot(), false)
	out := buf.String()
	for _, want := range []string{"msgs app", "net_faults_drop 3", "store_retry 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("counters view missing %q:\n%s", want, out)
		}
	}
}

func TestDashboardFramesPlain(t *testing.T) {
	a := telemetry.New(telemetry.Config{Window: time.Hour})
	a.OnEvent(obs.Event{Kind: obs.KindHalt, Proc: 0})
	a.Tick()
	var buf bytes.Buffer
	d := telemetry.NewDashboard(a, &buf)
	d.Plain = true
	d.Frame()
	d.Frame()
	if n := strings.Count(buf.String(), "---- telemetry frame ----"); n != 2 {
		t.Errorf("want 2 frame markers, got %d", n)
	}
}

func TestDashboardRunUntil(t *testing.T) {
	a := telemetry.New(telemetry.Config{Window: time.Hour})
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0})
	var buf syncBuffer
	d := telemetry.NewDashboard(a, &buf)
	d.Plain = true
	d.Refresh = time.Millisecond
	stop := d.RunUntil()
	time.Sleep(20 * time.Millisecond)
	stop()
	stop() // idempotent
	if !strings.Contains(buf.String(), "chkpt live telemetry") {
		t.Error("dashboard never rendered")
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for the ticker test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
