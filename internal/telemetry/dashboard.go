package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Dashboard renders an aggregator as a live plain-ANSI terminal view:
// run-level rates, health banners, save/block latency percentiles, and one
// row per process (incarnation, state, virtual clock, checkpoint lag).
// Zero external dependencies — just cursor-home + erase-to-end redraws, so
// it works in any VT100-era terminal and degrades to repeated full frames
// when piped to a file.
type Dashboard struct {
	agg *Aggregator
	out io.Writer

	// Refresh is the redraw interval for Run. Defaults to the
	// aggregator's window.
	Refresh time.Duration
	// Plain disables ANSI control sequences: frames are separated by a
	// marker line instead of redrawn in place (for logs / non-TTYs).
	Plain bool
}

// NewDashboard builds a dashboard over agg writing to out.
func NewDashboard(agg *Aggregator, out io.Writer) *Dashboard {
	return &Dashboard{agg: agg, out: out, Refresh: agg.Window()}
}

// Run redraws until stop is closed, then renders one final frame.
func (d *Dashboard) Run(stop <-chan struct{}) {
	interval := d.Refresh
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	if !d.Plain {
		fmt.Fprint(d.out, "\x1b[2J") // clear once; frames redraw from home
	}
	for {
		d.Frame()
		select {
		case <-t.C:
		case <-stop:
			d.Frame()
			return
		}
	}
}

// RunUntil is Run driven by a stop function: it returns a func that halts
// the dashboard and waits for the final frame.
func (d *Dashboard) RunUntil() (stop func()) {
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		d.Run(stopCh)
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stopCh)
			<-done
		})
	}
}

// Frame renders one frame of the current snapshot.
func (d *Dashboard) Frame() {
	var b strings.Builder
	if d.Plain {
		b.WriteString("---- telemetry frame ----\n")
	} else {
		b.WriteString("\x1b[H") // cursor home; each line below erases its tail
	}
	RenderSnapshot(&b, d.agg.Snapshot(), !d.Plain)
	if !d.Plain {
		b.WriteString("\x1b[J") // erase any leftover from a taller prior frame
	}
	io.WriteString(d.out, b.String())
}

// eol terminates a dashboard line, erasing stale tail characters in ANSI
// mode so shrinking values do not leave droppings.
func eol(ansi bool) string {
	if ansi {
		return "\x1b[K\n"
	}
	return "\n"
}

// RenderSnapshot writes the dashboard view of one snapshot. Exported so
// one-shot consumers (tests, `-dash` on non-TTYs, post-mortem tools) can
// render without a ticker.
func RenderSnapshot(w io.Writer, s Snapshot, ansi bool) {
	nl := eol(ansi)
	health := "HEALTHY"
	if !s.Healthy() {
		health = "UNHEALTHY"
		if ansi {
			health = "\x1b[1;31mUNHEALTHY\x1b[0m"
		}
	} else if ansi {
		health = "\x1b[1;32mHEALTHY\x1b[0m"
	}
	fmt.Fprintf(w, "chkpt live telemetry   up %7.1fs   window %4.0fms   ticks %-6d %s%s",
		s.UptimeSec, s.WindowSec*1e3, s.Ticks, health, nl)
	fmt.Fprintf(w, "events %-9d stalls %-4d storms %-4d lag-alerts %-4d stalled-procs %-3d%s",
		s.Total, s.Health.Stalls, s.Health.Storms, s.Health.LagAlerts, s.Health.StalledProcs, nl)

	// Rates, highest first, capped to one line's worth.
	kinds := sortedKeys(s.Rates)
	sort.Slice(kinds, func(i, j int) bool { return s.Rates[kinds[i]] > s.Rates[kinds[j]] })
	var rates []string
	for i, k := range kinds {
		if i == 6 {
			break
		}
		rates = append(rates, fmt.Sprintf("%s %.0f/s", k, s.Rates[k]))
	}
	fmt.Fprintf(w, "rates: %s%s", strings.Join(rates, "  "), nl)

	fmt.Fprintf(w, "save ms  p50 %8.3f  p95 %8.3f  p99 %8.3f  max %8.3f  n %-8d%s",
		s.SaveMS.P50, s.SaveMS.P95, s.SaveMS.P99, s.SaveMS.Max, s.SaveMS.Count, nl)
	fmt.Fprintf(w, "block ms p50 %8.3f  p95 %8.3f  p99 %8.3f  max %8.3f  n %-8d%s",
		s.BlockMS.P50, s.BlockMS.P95, s.BlockMS.P99, s.BlockMS.Max, s.BlockMS.Count, nl)

	if s.HasCounters {
		c := s.Counters
		fmt.Fprintf(w, "msgs app %-8d ctrl %-8d chkpts %-6d forced %-5d rollbacks %-5d%s",
			c.AppMessages, c.CtrlMessages, c.Checkpoints, c.Forced, c.Rollbacks, nl)
		if len(s.CounterRates) > 0 {
			fmt.Fprintf(w, "     app %6.0f/s ctrl %6.0f/s chkpts %4.1f/s%s",
				s.CounterRates["app_messages"], s.CounterRates["ctrl_messages"],
				s.CounterRates["checkpoints"], nl)
		}
		// Chaos / net-chaos injection counts and transport watermarks from
		// the named-counter tap, when the layers that publish them ran.
		var chaos []string
		for _, k := range sortedKeys(c.Custom) {
			if strings.Contains(k, "fault") || strings.Contains(k, "chaos") ||
				strings.Contains(k, "net_") || strings.Contains(k, "backlog") ||
				strings.Contains(k, "suspect") || strings.Contains(k, "retry") {
				chaos = append(chaos, fmt.Sprintf("%s %d", k, c.Custom[k]))
			}
		}
		if len(chaos) > 0 {
			fmt.Fprintf(w, "chaos: %s%s", strings.Join(chaos, "  "), nl)
		}
	}

	if s.HasWAL {
		ws := s.WAL
		ratio := float64(0)
		if ws.Batches > 0 {
			ratio = float64(ws.Saves) / float64(ws.Batches)
		}
		fmt.Fprintf(w, "wal: saves %-8d batches %-7d (%.1f/commit) rot %-4d compact %-4d recovered %-6d torn-bytes %-8d quarantined %-4d%s",
			ws.Saves, ws.Batches, ratio, ws.Rotations, ws.Compactions,
			ws.Recovered, ws.TruncatedBytes, ws.QuarantinedOnOpen, nl)
	}

	fmt.Fprintf(w, "%-5s %-4s %-9s %-10s %12s %12s%s",
		"proc", "inc", "state", "events", "vtime", "lag", nl)
	for _, p := range s.Procs {
		state := p.LastKind
		switch {
		case p.Stalled:
			state = "STALLED"
			if ansi {
				state = "\x1b[1;31mSTALLED\x1b[0m  " // pad: ANSI codes are zero-width
			}
		case p.Halted:
			state = "halted"
		}
		fmt.Fprintf(w, "p%-4d %-4d %-9s %-10d %12.4f %12.4f%s",
			p.Proc, p.Inc, state, p.Events, p.VTime, p.Lag, nl)
	}
}
