package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// Server is the pull-based exposition endpoint for one aggregator:
//
//	/metrics        Prometheus text format (0.0.4)
//	/snapshot.json  the full Snapshot as JSON
//	/healthz        200 "ok" when Healthy(), 503 otherwise
//	/               a one-line index
//
// Pull keeps the run free of any scraper-side coupling: the aggregator
// never blocks on a slow consumer, and killing the scraper costs nothing.
type Server struct {
	agg  *Aggregator
	ln   net.Listener
	http *http.Server

	served   chan struct{} // closed when the serve goroutine exits
	serveErr error         // its verdict; read only after <-served
	closeMu  sync.Mutex
	closeErr error
	closed   bool
}

// NewServer binds addr (e.g. "127.0.0.1:9464", or ":0" for an ephemeral
// port) and starts serving the aggregator. It returns once the listener is
// live; call Close to shut it down.
func NewServer(addr string, agg *Aggregator) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{agg: agg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot.json", s.handleSnapshot)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/", s.handleIndex)
	s.http = &http.Server{
		Handler:      mux,
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 10 * time.Second,
	}
	s.served = make(chan struct{})
	go func() {
		// Serve returns ErrServerClosed on an orderly Close; anything else
		// (listener torn out from under us, accept loop death) means the
		// endpoint silently stopped serving mid-run — Close surfaces it.
		err := s.http.Serve(ln)
		if !errors.Is(err, http.ErrServerClosed) {
			s.serveErr = fmt.Errorf("telemetry: server stopped serving: %w", err)
		}
		close(s.served)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the listener and in-flight handlers. It reports a shutdown
// failure OR a serve-loop death that predates it: a telemetry endpoint
// that died mid-run must not look like a clean exit to the caller.
// Close is idempotent; every call returns the same verdict.
func (s *Server) Close() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if !s.closed {
		s.closed = true
		err := s.http.Close()
		<-s.served // serve goroutine has recorded its verdict
		if err == nil {
			err = s.serveErr
		}
		s.closeErr = err
	}
	return s.closeErr
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WriteProm(w, s.agg.Snapshot())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.agg.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.agg.Snapshot()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if snap.Healthy() {
		fmt.Fprintln(w, "ok")
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintf(w, "unhealthy: stalled_procs=%d in_storm=%v\n",
		snap.Health.StalledProcs, snap.Health.InStorm)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "chkpt telemetry: /metrics /snapshot.json /healthz")
}
