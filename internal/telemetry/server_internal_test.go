package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestCloseReportsServeDeath pins the exit-path contract: when the serve
// loop dies out from under the run (here: the listener yanked away), Close
// must surface that instead of reporting a clean shutdown — chkptsim turns
// this into a non-zero exit.
func TestCloseReportsServeDeath(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", New(Config{Window: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	// Kill the accept loop the way an external failure would.
	if err := srv.ln.Close(); err != nil {
		t.Fatal(err)
	}
	<-srv.served

	first := srv.Close()
	if first == nil || !strings.Contains(first.Error(), "stopped serving") {
		t.Fatalf("Close() = %v, want serve-death error", first)
	}
	// Idempotent: the verdict must not change or vanish on re-Close.
	if second := srv.Close(); second != first {
		t.Errorf("second Close() = %v, want the same verdict %v", second, first)
	}
}

func TestCloseCleanShutdownIsNil(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", New(Config{Window: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("clean Close() = %v, want nil", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("repeated clean Close() = %v, want nil", err)
	}
}
