package telemetry_test

import (
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// BenchmarkRunTapOverhead measures what live telemetry costs a whole run:
// the same Jacobi program executed with no observer, with the aggregator
// tapping every event, and with aggregator + counters tap. The deltas are
// the published observer-tap overhead numbers (EXPERIMENTS.md).
func BenchmarkRunTapOverhead(b *testing.B) {
	run := func(b *testing.B, cfg func() sim.Config) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(cfg()); err != nil {
				b.Fatal(err)
			}
		}
	}
	base := func() sim.Config {
		return sim.Config{
			Program:      corpus.JacobiFig1(8),
			Nproc:        4,
			DisableTrace: true,
		}
	}
	b.Run("none", func(b *testing.B) {
		run(b, base)
	})
	b.Run("aggregator", func(b *testing.B) {
		agg := telemetry.New(telemetry.Config{Nproc: 4, Window: time.Hour})
		run(b, func() sim.Config {
			c := base()
			c.Observer = agg
			return c
		})
	})
	b.Run("aggregator+counters", func(b *testing.B) {
		ctr := &metrics.Counters{}
		agg := telemetry.New(telemetry.Config{Nproc: 4, Window: time.Hour, Counters: ctr})
		run(b, func() sim.Config {
			c := base()
			c.Observer = agg
			c.Counters = ctr
			return c
		})
	})
}

var _ obs.Observer = (*telemetry.Aggregator)(nil)
