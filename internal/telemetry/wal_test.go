package telemetry_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/storage"
	"repro/internal/storage/wal"
	"repro/internal/telemetry"
)

// TestWALStatsExposition pins the WAL → telemetry plumbing: a configured
// stats source shows up in the snapshot, the Prometheus exposition, and
// the dashboard; without one the wal families are absent entirely.
func TestWALStatsExposition(t *testing.T) {
	stats := wal.Stats{
		Saves:             120,
		Batches:           30,
		Rotations:         4,
		Compactions:       2,
		Recovered:         7,
		TruncatedBytes:    512,
		QuarantinedOnOpen: 1,
	}
	agg := telemetry.New(telemetry.Config{WALStats: func() wal.Stats { return stats }})

	s := agg.Snapshot()
	if !s.HasWAL {
		t.Fatal("HasWAL = false with a configured WALStats source")
	}
	if s.WAL != stats {
		t.Fatalf("snapshot WAL = %+v, want %+v", s.WAL, stats)
	}

	var prom strings.Builder
	if err := telemetry.WriteProm(&prom, s); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"chkptsim_wal_saves_total 120",
		"chkptsim_wal_batches_total 30",
		"chkptsim_wal_rotations_total 4",
		"chkptsim_wal_compactions_total 2",
		"chkptsim_wal_group_commit_ratio 4",
		"chkptsim_wal_recovered_records 7",
		"chkptsim_wal_truncated_bytes 512",
		"chkptsim_wal_quarantined_on_open 1",
	} {
		if !strings.Contains(prom.String(), want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, prom.String())
		}
	}

	var dash strings.Builder
	telemetry.RenderSnapshot(&dash, s, false)
	if !strings.Contains(dash.String(), "wal: saves 120") {
		t.Errorf("dashboard missing wal line:\n%s", dash.String())
	}

	// The JSON snapshot carries the stats under the stable "wal" key.
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		HasWAL bool      `json:"has_wal"`
		WAL    wal.Stats `json:"wal"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if !decoded.HasWAL || decoded.WAL != stats {
		t.Fatalf("JSON round-trip = %+v, want %+v", decoded.WAL, stats)
	}
}

// TestWALStatsAbsent: with no source configured the families never render
// (an all-zero wal section would read as a healthy-but-idle store).
func TestWALStatsAbsent(t *testing.T) {
	agg := telemetry.New(telemetry.Config{})
	s := agg.Snapshot()
	if s.HasWAL {
		t.Fatal("HasWAL = true without a WALStats source")
	}
	var prom strings.Builder
	if err := telemetry.WriteProm(&prom, s); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(prom.String(), "chkptsim_wal_") {
		t.Errorf("exposition has wal families without a source:\n%s", prom.String())
	}
	var dash strings.Builder
	telemetry.RenderSnapshot(&dash, s, false)
	if strings.Contains(dash.String(), "wal:") {
		t.Errorf("dashboard has wal line without a source:\n%s", dash.String())
	}
}

// TestWALStatsLive wires a real store through SetWALStats — the
// open-after-construction path the chkptsim binary uses — and checks the
// sampled counters move with store activity.
func TestWALStatsLive(t *testing.T) {
	ws, err := wal.Open(t.TempDir(), wal.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()

	agg := telemetry.New(telemetry.Config{})
	agg.SetWALStats(ws.Stats)

	if err := ws.Save(storage.Snapshot{Proc: 1, CFGIndex: 1, Instance: 1}); err != nil {
		t.Fatal(err)
	}
	s := agg.Snapshot()
	if !s.HasWAL {
		t.Fatal("HasWAL = false after SetWALStats")
	}
	if s.WAL.Saves != 1 {
		t.Fatalf("Saves = %d after one put, want 1", s.WAL.Saves)
	}
	if s.WAL.Batches < 1 {
		t.Fatalf("Batches = %d after one acknowledged put, want >= 1", s.WAL.Batches)
	}

	agg.SetWALStats(nil)
	if agg.Snapshot().HasWAL {
		t.Fatal("HasWAL = true after detaching the source")
	}
}
