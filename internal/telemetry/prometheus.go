package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4): `# HELP` / `# TYPE` headers per family, counters as
// `_total`, histograms as cumulative `_bucket{le=...}` series plus `_sum`
// and `_count`, label values escaped per the spec. The format is a
// contract with real scrapers — prometheus_conformance_test.go parses the
// output back with a strict parser.

// promFamily is one metric family being assembled: help, type, and its
// samples in emission order.
type promFamily struct {
	name, help, typ string
	samples         []promSample
}

type promSample struct {
	suffix string // appended to the family name ("", "_bucket", ...)
	labels string // rendered label set incl. braces, "" for none
	value  float64
}

// promWriter accumulates families and renders them.
type promWriter struct {
	fams []*promFamily
}

func (pw *promWriter) family(name, typ, help string) *promFamily {
	f := &promFamily{name: name, help: help, typ: typ}
	pw.fams = append(pw.fams, f)
	return f
}

func (f *promFamily) add(labels string, v float64) {
	f.samples = append(f.samples, promSample{labels: labels, value: v})
}

func (f *promFamily) addSuffixed(suffix, labels string, v float64) {
	f.samples = append(f.samples, promSample{suffix: suffix, labels: labels, value: v})
}

// render writes every non-empty family. Families with no samples are
// skipped entirely (a HELP/TYPE pair with no samples is legal but noisy).
func (pw *promWriter) render(w io.Writer) error {
	for _, f := range pw.fams {
		if len(f.samples) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.samples {
			if _, err := fmt.Fprintf(w, "%s%s%s %s\n",
				f.name, s.suffix, s.labels, formatValue(s.value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatValue renders a sample value. Integral values print without an
// exponent for readability; +Inf/-Inf/NaN use the spec spellings.
func formatValue(v float64) string {
	if v == float64(int64(v)) && v >= -1e15 && v <= 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// label renders a single-label set: {name="value"}.
func label(name, value string) string {
	return "{" + name + `="` + escapeLabel(value) + `"}`
}

// sanitizeName maps an arbitrary counter/gauge name onto the metric-name
// alphabet [a-zA-Z0-9_:]; anything else becomes '_', and a leading digit
// gains a '_' prefix. Used for names that become label VALUES here, but
// exported for callers that mint metric names from run-time strings.
func sanitizeName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// addSketch emits a sketch as a Prometheus histogram family: cumulative
// buckets at every bound with a recorded observation (plus +Inf), _sum and
// _count. Empty interior buckets are elided — cumulative counts stay
// correct and monotone — so the default 97-bound sketch does not explode
// the exposition.
func addSketch(pw *promWriter, name, help string, s metrics.SketchSnapshot) {
	f := pw.family(name, "histogram", help)
	if s.Count > 0 {
		var cum int64
		for i, b := range s.Bounds {
			if s.Counts[i] == 0 {
				continue
			}
			cum += s.Counts[i]
			f.addSuffixed("_bucket", label("le", strconv.FormatFloat(b, 'g', -1, 64)), float64(cum))
		}
		f.addSuffixed("_bucket", label("le", "+Inf"), float64(s.Count))
	} else {
		f.addSuffixed("_bucket", label("le", "+Inf"), 0)
	}
	f.addSuffixed("_sum", "", s.Sum)
	f.addSuffixed("_count", "", float64(s.Count))
}

// WriteProm renders the snapshot in the Prometheus text exposition format.
func WriteProm(w io.Writer, s Snapshot) error {
	pw := &promWriter{}

	f := pw.family("chkptsim_uptime_seconds", "gauge", "Seconds since the aggregator started.")
	f.add("", s.UptimeSec)
	f = pw.family("chkptsim_window_seconds", "gauge", "Aggregation window length.")
	f.add("", s.WindowSec)
	f = pw.family("chkptsim_ticks_total", "counter", "Aggregation windows closed so far.")
	f.add("", float64(s.Ticks))

	f = pw.family("chkptsim_events_total", "counter", "Runtime events observed, by kind.")
	for _, k := range sortedKeys(s.Kinds) {
		f.add(label("kind", k), float64(s.Kinds[k]))
	}
	f = pw.family("chkptsim_event_rate", "gauge", "Events per second over the retained window horizon, by kind.")
	for _, k := range sortedKeys(s.Rates) {
		f.add(label("kind", k), s.Rates[k])
	}

	procEvents := pw.family("chkptsim_proc_events_total", "counter", "Events observed per process.")
	procInc := pw.family("chkptsim_proc_incarnation", "gauge", "Highest incarnation seen per process.")
	procVT := pw.family("chkptsim_proc_vtime_seconds", "gauge", "Virtual clock per process.")
	procLag := pw.family("chkptsim_proc_checkpoint_lag_vseconds", "gauge", "Virtual seconds since the process's last completed checkpoint save.")
	procStalled := pw.family("chkptsim_proc_stalled", "gauge", "1 when the stall detector currently holds the process stalled.")
	for _, p := range s.Procs {
		l := label("proc", strconv.Itoa(p.Proc))
		procEvents.add(l, float64(p.Events))
		procInc.add(l, float64(p.Inc))
		procVT.add(l, p.VTime)
		procLag.add(l, p.Lag)
		procStalled.add(l, boolGauge(p.Stalled))
	}

	f = pw.family("chkptsim_health_stalls_total", "counter", "Stall episodes detected (no forward progress for the configured windows).")
	f.add("", float64(s.Health.Stalls))
	f = pw.family("chkptsim_health_storms_total", "counter", "Rollback storms detected.")
	f.add("", float64(s.Health.Storms))
	f = pw.family("chkptsim_health_lag_alerts_total", "counter", "Checkpoint-lag alerts raised.")
	f.add("", float64(s.Health.LagAlerts))
	f = pw.family("chkptsim_health_in_storm", "gauge", "1 while a rollback storm is in progress.")
	f.add("", boolGauge(s.Health.InStorm))
	f = pw.family("chkptsim_health_stalled_procs", "gauge", "Processes currently held stalled by the detector.")
	f.add("", float64(s.Health.StalledProcs))
	f = pw.family("chkptsim_healthy", "gauge", "1 when no process is stalled and no storm is in progress.")
	f.add("", boolGauge(s.Healthy()))

	addSketch(pw, "chkptsim_save_latency_ms", "Checkpoint save wall latency in milliseconds.", s.SaveSketch)
	addSketch(pw, "chkptsim_block_latency_ms", "Coordination block wall latency in milliseconds.", s.BlockSketch)
	addSketch(pw, "chkptsim_block_stall_vseconds", "Coordination stall in virtual seconds.", s.StallSketch)

	// Counters tap: fixed fields, custom counters, gauges, histograms.
	// Omitted entirely when no tap is configured.
	if s.HasCounters {
		ctr := pw.family("chkptsim_counter_total", "counter", "Protocol counters sampled from the run's metrics tap, by name.")
		for _, nv := range sortedFixed(s.Counters) {
			ctr.add(label("name", nv.name), float64(nv.value))
		}
		for _, k := range sortedKeys(s.Counters.Custom) {
			ctr.add(label("name", sanitizeName(k)), float64(s.Counters.Custom[k]))
		}
		rate := pw.family("chkptsim_counter_rate", "gauge", "Per-second counter rates over the last closed window, by name.")
		for _, k := range sortedKeys(s.CounterRates) {
			rate.add(label("name", sanitizeName(k)), s.CounterRates[k])
		}
		g := pw.family("chkptsim_gauge", "gauge", "Float gauges sampled from the run's metrics tap, by name.")
		for _, k := range sortedKeys(s.Counters.Gauges) {
			g.add(label("name", sanitizeName(k)), s.Counters.Gauges[k])
		}
		for _, k := range sortedKeys(s.Counters.Hists) {
			addSketch(pw, "chkptsim_hist_"+sanitizeName(k),
				"Run histogram "+k+" sampled from the metrics tap.",
				metrics.SketchFromHist(s.Counters.Hists[k]))
		}
	}

	// Liveness-pruning accounting: dedicated families so dashboards plot
	// the payload reduction directly instead of digging it out of the
	// generic counter tap. Names mirror sim.MetricPrune* (the string keys
	// are the contract; telemetry stays below sim in the import graph).
	// Omitted when pruning never fired — NoPrune runs, runs without a
	// counters tap, or programs whose manifests keep every variable.
	if s.HasCounters {
		if full := s.Counters.Custom["prune_bytes_full"]; full > 0 {
			saved := s.Counters.Custom["prune_bytes_saved"]
			f = pw.family("chkptsim_prune_bytes_full_total", "counter", "Bytes the checkpointed environments would occupy unpruned.")
			f.add("", float64(full))
			f = pw.family("chkptsim_prune_bytes_saved_total", "counter", "Bytes excluded from checkpoints by liveness-minimized manifests.")
			f.add("", float64(saved))
			f = pw.family("chkptsim_prune_vars_dropped_total", "counter", "Dead variables excluded from checkpoint payloads.")
			f.add("", float64(s.Counters.Custom["prune_vars_dropped"]))
			f = pw.family("chkptsim_prune_ratio", "gauge", "Fraction of full-environment bytes saved by pruning (saved/full).")
			f.add("", float64(saved)/float64(full))
		}
	}

	// WAL store durability counters. Omitted entirely when no store is
	// attached (HasWAL false).
	if s.HasWAL {
		ws := s.WAL
		f = pw.family("chkptsim_wal_saves_total", "counter", "Checkpoint puts acknowledged by the WAL store.")
		f.add("", float64(ws.Saves))
		f = pw.family("chkptsim_wal_batches_total", "counter", "WAL group commits (data fsyncs).")
		f.add("", float64(ws.Batches))
		f = pw.family("chkptsim_wal_rotations_total", "counter", "WAL segment rotations.")
		f.add("", float64(ws.Rotations))
		f = pw.family("chkptsim_wal_compactions_total", "counter", "WAL compactions completed.")
		f.add("", float64(ws.Compactions))
		f = pw.family("chkptsim_wal_group_commit_ratio", "gauge", "Acknowledged puts per group commit (amortization of fsync cost).")
		ratio := float64(0)
		if ws.Batches > 0 {
			ratio = float64(ws.Saves) / float64(ws.Batches)
		}
		f.add("", ratio)
		f = pw.family("chkptsim_wal_recovered_records", "gauge", "Valid records replayed at Open.")
		f.add("", float64(ws.Recovered))
		f = pw.family("chkptsim_wal_truncated_bytes", "gauge", "Torn-tail bytes discarded at Open.")
		f.add("", float64(ws.TruncatedBytes))
		f = pw.family("chkptsim_wal_quarantined_on_open", "gauge", "Keys that entered recovery already corrupt.")
		f.add("", float64(ws.QuarantinedOnOpen))
	}

	return pw.render(w)
}

type namedInt struct {
	name  string
	value int64
}

// fixedCounterValues names the fixed Counters fields for exposition.
func fixedCounterValues(s metrics.Snapshot) map[string]int64 {
	return map[string]int64{
		"app_messages":     s.AppMessages,
		"ctrl_messages":    s.CtrlMessages,
		"ctrl_bytes":       s.CtrlBytes,
		"checkpoints":      s.Checkpoints,
		"forced":           s.Forced,
		"rollbacks":        s.Rollbacks,
		"restarted_events": s.RestartedEvents,
		"blocked_ns":       int64(s.Blocked),
	}
}

func sortedFixed(s metrics.Snapshot) []namedInt {
	m := fixedCounterValues(s)
	out := make([]namedInt, 0, len(m))
	for _, k := range sortedKeys(m) {
		out = append(out, namedInt{k, m[k]})
	}
	return out
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// sortedKeys returns a map's keys in sorted order, for deterministic
// exposition output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
