package telemetry_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestHealthSignalsUnderSeededChaos is the end-to-end acceptance check for
// the health detectors: a seeded Poisson crash schedule drives a real run
// into rollbacks while the aggregator taps the observer fan-out, and all
// three signals — rollback storm, checkpoint lag, stall — must then appear
// BOTH in the Prometheus exposition and in the JSONL event stream.
func TestHealthSignalsUnderSeededChaos(t *testing.T) {
	const nproc = 4

	var jsonl bytes.Buffer
	stream := obs.NewStreamWriter(&jsonl)
	rec := obs.NewRecorder()
	sink := obs.Multi(rec, stream) // detector verdicts land in both artifacts

	counters := &metrics.Counters{}
	agg := telemetry.New(telemetry.Config{
		Nproc:          nproc,
		Window:         time.Hour, // ticked by hand below
		Rings:          32,
		Counters:       counters,
		Sink:           sink,
		StallWindows:   2,
		StormRollbacks: 2,
		StormWindows:   16,
		LagThreshold:   1e-9, // any unsaved progress at quiesce counts
	})

	// A seeded crash schedule with λ=2 over 4 procs and crashes across
	// three incarnations: several distinct rollback episodes are
	// guaranteed for this (seed, program) pair, pinned by the assert below.
	crashes := chaos.CrashSchedule(3, chaos.ScheduleConfig{
		Nproc: nproc, Lambda: 2, MaxEvents: 30, MaxIncarnations: 3,
	})
	if len(crashes) == 0 {
		t.Fatal("seed 3 produced no crashes; pick another seed")
	}
	tm := sim.PaperTimeModel
	res, err := sim.Run(sim.Config{
		Program:  corpus.JacobiFig1(4),
		Nproc:    nproc,
		Crashes:  crashes,
		Time:     &tm,
		Observer: obs.Multi(agg, stream), // runtime events reach both too
		Counters: counters,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Rollbacks < 2 {
		t.Fatalf("chaos schedule caused only %d rollbacks; detectors cannot fire", res.Metrics.Rollbacks)
	}

	// Close the first window: the run's rollbacks land in one delta →
	// storm; every proc that quiesced past its last save trips lag.
	agg.Tick()

	// Stall: one synthetic in-flight event marks proc 0 active-not-halted,
	// then silent windows trip the detector.
	agg.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0, VTime: res.VTime})
	agg.Tick()
	agg.Tick()
	agg.Tick()

	snap := agg.Snapshot()
	if snap.Health.Storms < 1 {
		t.Errorf("no rollback storm detected (rollbacks=%d)", res.Metrics.Rollbacks)
	}
	if snap.Health.LagAlerts < 1 {
		t.Error("no checkpoint-lag alert")
	}
	if snap.Health.Stalls < 1 {
		t.Error("no stall detected")
	}
	if snap.Healthy() {
		t.Error("snapshot claims healthy with active stall")
	}

	// Signal surface 1: Prometheus exposition.
	var prom bytes.Buffer
	if err := telemetry.WriteProm(&prom, snap); err != nil {
		t.Fatal(err)
	}
	fams := mustParseProm(t, prom.Bytes())
	for fam, min := range map[string]float64{
		"chkptsim_health_storms_total":     1,
		"chkptsim_health_lag_alerts_total": 1,
		"chkptsim_health_stalls_total":     1,
	} {
		f := fams[fam]
		if f == nil || len(f.samples) == 0 || f.samples[0].value < min {
			t.Errorf("exposition: %s < %g", fam, min)
		}
	}
	// The rollbacks that caused the storm are visible through the tap.
	var rollbacks float64
	for _, s := range fams["chkptsim_counter_total"].samples {
		if s.labels["name"] == "rollbacks" {
			rollbacks = s.value
		}
	}
	if rollbacks != float64(res.Metrics.Rollbacks) {
		t.Errorf("exposition rollbacks %g != run's %d", rollbacks, res.Metrics.Rollbacks)
	}

	// Signal surface 2: the JSONL event stream.
	if err := stream.Flush(); err != nil {
		t.Fatal(err)
	}
	got := map[obs.Kind]int{}
	for _, line := range bytes.Split(jsonl.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("malformed JSONL line %q: %v", line, err)
		}
		got[e.Kind]++
	}
	for _, k := range []obs.Kind{obs.KindStorm, obs.KindLag, obs.KindStall, obs.KindRollback} {
		if got[k] == 0 {
			t.Errorf("JSONL stream has no %s events (kinds: %v)", k, got)
		}
	}

	// The recorder sink saw the same verdicts (shared fan-out).
	recKinds := map[obs.Kind]int{}
	for _, e := range rec.Events() {
		recKinds[e.Kind]++
	}
	if recKinds[obs.KindStorm] != got[obs.KindStorm] || recKinds[obs.KindStall] != got[obs.KindStall] {
		t.Errorf("recorder and stream disagree on verdicts: rec=%v stream=%v", recKinds, got)
	}
}

// TestHealthSignalsQuietRun: a clean run must stay quiet — no detector
// may fire without cause.
func TestHealthSignalsQuietRun(t *testing.T) {
	sink := obs.NewRecorder()
	agg := telemetry.New(telemetry.Config{
		Nproc:          4,
		Window:         time.Hour,
		Sink:           sink,
		StallWindows:   2,
		StormRollbacks: 1,
	})
	_, err := sim.Run(sim.Config{
		Program:  corpus.JacobiFig1(3),
		Nproc:    4,
		Observer: agg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		agg.Tick() // all procs ended on halt: silence is completion
	}
	snap := agg.Snapshot()
	if snap.Health.Storms != 0 || snap.Health.Stalls != 0 || snap.Health.LagAlerts != 0 {
		t.Errorf("detectors fired on a clean run: %+v (%v)", snap.Health, sink.Events())
	}
	if !snap.Healthy() {
		t.Error("clean run reported unhealthy")
	}
	if snap.HaltedProcs() != 4 {
		t.Errorf("want 4 halted procs, got %d", snap.HaltedProcs())
	}
}
