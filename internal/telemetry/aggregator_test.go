package telemetry_test

import (
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// manual returns an aggregator for tick-by-hand tests (huge window so a
// background ticker never races the test even if Start were called).
func manual(over func(*telemetry.Config)) (*telemetry.Aggregator, *obs.Recorder) {
	sink := obs.NewRecorder()
	cfg := telemetry.Config{
		Nproc:          4,
		Window:         time.Hour,
		Rings:          16,
		Sink:           sink,
		StallWindows:   3,
		StormRollbacks: 2,
		StormWindows:   8,
	}
	if over != nil {
		over(&cfg)
	}
	return telemetry.New(cfg), sink
}

func kindsOf(rec *obs.Recorder) map[obs.Kind]int {
	out := map[obs.Kind]int{}
	for _, e := range rec.Events() {
		out[e.Kind]++
	}
	return out
}

func TestAggregatorCountsRatesAndProcs(t *testing.T) {
	a, _ := manual(nil)
	for i := 0; i < 10; i++ {
		a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: i % 2, VTime: float64(i)})
	}
	a.OnEvent(obs.Event{Kind: obs.KindSend, Proc: 0, Msg: &obs.MsgRef{From: 0, To: 1}})
	a.OnEvent(obs.Event{Kind: obs.KindChkpt, Proc: 1, Inc: 2, VTime: 12, DurNS: 3e6})
	a.OnEvent(obs.Event{Kind: obs.KindChkpt, Proc: -1}) // run-level: no proc row
	a.Tick()

	s := a.Snapshot()
	if s.Total != 13 || s.Kinds["compute"] != 10 || s.Kinds["send"] != 1 || s.Kinds["chkpt"] != 2 {
		t.Fatalf("kind totals wrong: total=%d kinds=%v", s.Total, s.Kinds)
	}
	if s.LastWindow["compute"] != 10 {
		t.Errorf("last window deltas wrong: %v", s.LastWindow)
	}
	if s.Rates["compute"] <= 0 {
		t.Errorf("no compute rate: %v", s.Rates)
	}
	if len(s.Procs) != 2 {
		t.Fatalf("want 2 proc rows, got %+v", s.Procs)
	}
	p1 := s.Procs[1]
	if p1.Proc != 1 || p1.Inc != 2 || p1.VTime != 12 || p1.LastSaveV != 12 || p1.LastKind != "chkpt" {
		t.Errorf("proc 1 row wrong: %+v", p1)
	}
	if s.SaveMS.Count != 1 || s.SaveMS.P50 < 2 || s.SaveMS.P50 > 4 {
		t.Errorf("save sketch not fed from chkpt DurNS: %+v", s.SaveMS)
	}
	if s.Ticks != 1 {
		t.Errorf("ticks = %d", s.Ticks)
	}
}

func TestAggregatorSecondTickDeltasOnly(t *testing.T) {
	a, _ := manual(nil)
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0})
	a.Tick()
	a.Tick() // empty window
	s := a.Snapshot()
	if len(s.LastWindow) != 0 {
		t.Errorf("empty window still shows deltas: %v", s.LastWindow)
	}
	if s.Kinds["compute"] != 1 {
		t.Errorf("cumulative total lost: %v", s.Kinds)
	}
}

// TestStallDetector: a silent non-halted process fires exactly one stall
// per silence episode, and moving again re-arms the detector.
func TestStallDetector(t *testing.T) {
	a, sink := manual(nil)
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0, VTime: 1})
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 1, VTime: 1})
	a.Tick() // registers progress for both

	// Proc 0 keeps moving; proc 1 goes quiet.
	for i := 0; i < 5; i++ {
		a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0})
		a.Tick()
	}
	got := kindsOf(sink)
	if got[obs.KindStall] != 1 {
		t.Fatalf("want exactly 1 stall, got %d (%v)", got[obs.KindStall], sink.Events())
	}
	var stall obs.Event
	for _, e := range sink.Events() {
		if e.Kind == obs.KindStall {
			stall = e
		}
	}
	if stall.Proc != 1 {
		t.Errorf("stall blamed proc %d, want 1", stall.Proc)
	}
	s := a.Snapshot()
	if s.Health.Stalls != 1 || s.Health.StalledProcs != 1 || s.Healthy() {
		t.Errorf("health wrong after stall: %+v healthy=%v", s.Health, s.Healthy())
	}

	// Proc 1 moves again: stall clears; a new silence fires a second one.
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 1})
	a.Tick()
	if s := a.Snapshot(); s.Health.StalledProcs != 0 || !s.Healthy() {
		t.Fatalf("stall did not clear: %+v", s.Health)
	}
	for i := 0; i < 4; i++ {
		a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0})
		a.Tick()
	}
	if got := kindsOf(sink); got[obs.KindStall] != 2 {
		t.Errorf("second silence episode: want 2 stalls total, got %d", got[obs.KindStall])
	}
}

// TestStallDetectorIgnoresHalted: silence after a halt is completion.
func TestStallDetectorIgnoresHalted(t *testing.T) {
	a, sink := manual(nil)
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0})
	a.OnEvent(obs.Event{Kind: obs.KindHalt, Proc: 0})
	for i := 0; i < 10; i++ {
		a.Tick()
	}
	if got := kindsOf(sink); got[obs.KindStall] != 0 {
		t.Errorf("halted process reported stalled: %v", sink.Events())
	}
	s := a.Snapshot()
	if len(s.Procs) != 1 || !s.Procs[0].Halted || s.HaltedProcs() != 1 {
		t.Errorf("halted flag lost: %+v", s.Procs)
	}
}

// TestStormDetector: rollbacks within the horizon fire one storm; the
// detector re-arms only after a rollback-free horizon.
func TestStormDetector(t *testing.T) {
	a, sink := manual(nil)
	a.OnEvent(obs.Event{Kind: obs.KindRollback, Proc: 0})
	a.Tick()
	if got := kindsOf(sink); got[obs.KindStorm] != 0 {
		t.Fatal("storm below threshold")
	}
	a.OnEvent(obs.Event{Kind: obs.KindRollback, Proc: 1})
	a.Tick()
	if got := kindsOf(sink); got[obs.KindStorm] != 1 {
		t.Fatalf("want 1 storm at threshold, got %d", got[obs.KindStorm])
	}
	if !a.Snapshot().Health.InStorm {
		t.Error("InStorm not set")
	}
	// More rollbacks inside the same storm: no re-fire.
	a.OnEvent(obs.Event{Kind: obs.KindRollback, Proc: 2})
	a.Tick()
	if got := kindsOf(sink); got[obs.KindStorm] != 1 {
		t.Fatalf("storm re-fired while active: %d", got[obs.KindStorm])
	}
	// A full rollback-free horizon re-arms.
	for i := 0; i < 9; i++ {
		a.Tick()
	}
	if a.Snapshot().Health.InStorm {
		t.Fatal("storm never cleared")
	}
	a.OnEvent(obs.Event{Kind: obs.KindRollback, Proc: 0})
	a.OnEvent(obs.Event{Kind: obs.KindRollback, Proc: 1})
	a.Tick()
	if got := kindsOf(sink); got[obs.KindStorm] != 2 {
		t.Errorf("want 2 storms after re-arm, got %d", got[obs.KindStorm])
	}
}

// TestLagDetector: virtual time running past the last save fires once per
// episode; a new save closes the gap and re-arms.
func TestLagDetector(t *testing.T) {
	a, sink := manual(func(c *telemetry.Config) { c.LagThreshold = 1.0 })
	a.OnEvent(obs.Event{Kind: obs.KindChkpt, Proc: 0, VTime: 1, DurNS: 1})
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0, VTime: 1.5})
	a.Tick()
	if got := kindsOf(sink); got[obs.KindLag] != 0 {
		t.Fatal("lag fired below threshold")
	}
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0, VTime: 3})
	a.Tick()
	a.Tick() // still lagged: no second alert
	if got := kindsOf(sink); got[obs.KindLag] != 1 {
		t.Fatalf("want 1 lag alert, got %d", got[obs.KindLag])
	}
	var lag obs.Event
	for _, e := range sink.Events() {
		if e.Kind == obs.KindLag {
			lag = e
		}
	}
	if lag.Proc != 0 || lag.VDur < 1.9 || lag.VDur > 2.1 {
		t.Errorf("lag event wrong: %+v", lag)
	}
	// A save at vtime 3 closes the gap; running ahead again re-fires.
	a.OnEvent(obs.Event{Kind: obs.KindChkpt, Proc: 0, VTime: 3, DurNS: 1})
	a.Tick()
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0, VTime: 5})
	a.Tick()
	if got := kindsOf(sink); got[obs.KindLag] != 2 {
		t.Errorf("want 2 lag alerts after re-arm, got %d", got[obs.KindLag])
	}
}

func TestLagDisabledByDefault(t *testing.T) {
	a, sink := manual(nil)
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0, VTime: 1e9})
	for i := 0; i < 5; i++ {
		a.Tick()
		a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0, VTime: 2e9})
	}
	if got := kindsOf(sink); got[obs.KindLag] != 0 {
		t.Errorf("lag alerts with LagThreshold=0: %d", got[obs.KindLag])
	}
}

func TestBlockSketches(t *testing.T) {
	a, _ := manual(nil)
	a.OnEvent(obs.Event{Kind: obs.KindBlock, Proc: 0, DurNS: 5e6, VDur: 0.25})
	a.OnEvent(obs.Event{Kind: obs.KindBlock, Proc: 1, DurNS: 10e6, VDur: 0.5})
	s := a.Snapshot()
	if s.BlockMS.Count != 2 || s.BlockMS.Max < 9 {
		t.Errorf("block sketch: %+v", s.BlockMS)
	}
	if s.StallV.Count != 2 || s.StallV.Max < 0.4 {
		t.Errorf("stall sketch: %+v", s.StallV)
	}
}

func TestCounterTap(t *testing.T) {
	ctr := &metrics.Counters{}
	a, _ := manual(func(c *telemetry.Config) { c.Counters = ctr })
	ctr.IncAppMessages(10)
	ctr.Inc("custom_thing", 3)
	ctr.SetGauge("g", 1.5)
	a.Tick()
	s := a.Snapshot()
	if !s.HasCounters {
		t.Fatal("HasCounters false with a tap configured")
	}
	if s.Counters.AppMessages != 10 || s.Counters.Custom["custom_thing"] != 3 {
		t.Errorf("counter sample wrong: %+v", s.Counters)
	}
	if s.CounterRates["app_messages"] <= 0 || s.CounterRates["custom_thing"] <= 0 {
		t.Errorf("counter rates wrong: %v", s.CounterRates)
	}
	if s.Counters.Gauges["g"] != 1.5 {
		t.Errorf("gauge sample wrong: %v", s.Counters.Gauges)
	}
}

// TestOutOfRangeProcFoldsToRunLevel: ranks beyond Nproc count toward
// totals without panicking or minting rows.
func TestOutOfRangeProcFoldsToRunLevel(t *testing.T) {
	a, _ := manual(nil)
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 99})
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: -1})
	s := a.Snapshot()
	if s.Total != 2 || len(s.Procs) != 0 {
		t.Errorf("run-level fold wrong: total=%d procs=%+v", s.Total, s.Procs)
	}
}

func TestStartTicks(t *testing.T) {
	a := telemetry.New(telemetry.Config{Window: time.Millisecond})
	stop := a.Start()
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for a.Snapshot().Ticks == 0 {
		if time.Now().After(deadline) {
			t.Fatal("Start never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	n := a.Snapshot().Ticks
	time.Sleep(5 * time.Millisecond)
	if a.Snapshot().Ticks != n {
		t.Error("ticker still running after stop")
	}
}

// jobStream deterministically replays job j's synthetic event stream into
// each observer: computes, checkpoints with known save latencies, blocks,
// and a rollback — the kinds the fleet aggregator merges across jobs.
func jobStream(j int, sinks ...obs.Observer) {
	emit := func(e obs.Event) {
		for _, s := range sinks {
			s.OnEvent(e)
		}
	}
	for i := 0; i < 50+j; i++ {
		emit(obs.Event{Kind: obs.KindCompute, Proc: i % 3, VTime: float64(i)})
	}
	for i := 0; i < 5; i++ {
		emit(obs.Event{Kind: obs.KindChkpt, Proc: i % 3, DurNS: int64(j+1) * 1e6})
	}
	emit(obs.Event{Kind: obs.KindBlock, Proc: j % 3, DurNS: 2e6, VDur: 0.1})
	emit(obs.Event{Kind: obs.KindRollback, Proc: -1})
	emit(obs.Event{Kind: obs.KindJobDone, Proc: -1, Inc: j, Tag: "succeeded"})
}

// TestMultiObserverMergeEqualsPerJobSum is the fleet wiring contract: one
// aggregator tapped by N concurrent job observers must end up with exactly
// the merged counters and quantile-sketch populations that N isolated
// per-job aggregators sum to. Nothing may be lost or double-counted under
// concurrency.
func TestMultiObserverMergeEqualsPerJobSum(t *testing.T) {
	const jobs = 16
	shared := telemetry.New(telemetry.Config{Nproc: 3, Window: time.Hour})
	solo := make([]*telemetry.Aggregator, jobs)
	for j := range solo {
		solo[j] = telemetry.New(telemetry.Config{Nproc: 3, Window: time.Hour})
	}

	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			// Each job feeds its own aggregator AND the shared one through
			// the same fan-out a fleet job's sim.Config.Observer uses.
			jobStream(j, obs.Multi(solo[j], shared))
		}(j)
	}
	wg.Wait()
	shared.Tick()

	got := shared.Snapshot()
	wantKinds := map[string]int64{}
	var wantTotal, wantSaves, wantBlocks int64
	var wantSaveMax float64
	for j := range solo {
		s := solo[j].Snapshot()
		for k, v := range s.Kinds {
			wantKinds[k] += v
		}
		wantTotal += s.Total
		wantSaves += s.SaveMS.Count
		wantBlocks += s.BlockMS.Count
		wantSaveMax = math.Max(wantSaveMax, s.SaveMS.Max)
	}
	if got.Total != wantTotal {
		t.Fatalf("merged total = %d, want sum of per-job totals %d", got.Total, wantTotal)
	}
	if !reflect.DeepEqual(got.Kinds, wantKinds) {
		t.Errorf("merged kind totals = %v, want %v", got.Kinds, wantKinds)
	}
	if got.SaveMS.Count != wantSaves || got.BlockMS.Count != wantBlocks {
		t.Errorf("sketch populations: saves=%d blocks=%d, want %d, %d",
			got.SaveMS.Count, got.BlockMS.Count, wantSaves, wantBlocks)
	}
	if got.SaveMS.Max != wantSaveMax {
		t.Errorf("save latency max = %v, want per-job max %v", got.SaveMS.Max, wantSaveMax)
	}
	// Quantiles of the merged population must sit inside the emitted
	// latency range (1..jobs ms) — a merge that mangled sketch buckets
	// would push them outside.
	if got.SaveMS.P50 < 1 || got.SaveMS.P99 > jobs+1 {
		t.Errorf("merged quantiles out of range: %+v", got.SaveMS)
	}
	if got.Kinds["jobdone"] != jobs {
		t.Errorf("jobdone total = %d, want %d", got.Kinds["jobdone"], jobs)
	}
}

// TestMultiObserverMergeFromRealRuns drives N real sim jobs concurrently,
// every job's observer fanned into one shared aggregator (exactly how
// chkptfleet wires it), and checks the aggregate checkpoint count equals
// the sum each run reports for itself.
func TestMultiObserverMergeFromRealRuns(t *testing.T) {
	const jobs = 4
	shared := telemetry.New(telemetry.Config{Nproc: 3, Window: time.Hour})
	var wantChkpts atomic.Int64
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			res, err := sim.Run(sim.Config{
				Program: corpus.JacobiFig1(3), Nproc: 3,
				Store:    storage.NewMemory(),
				Observer: obs.Multi(shared),
				Timeout:  30 * time.Second,
				Jitter:   int64(j + 1),
			})
			if err != nil {
				t.Errorf("job %d: %v", j, err)
				return
			}
			wantChkpts.Add(res.Metrics.Checkpoints)
		}(j)
	}
	wg.Wait()
	shared.Tick()
	s := shared.Snapshot()
	if s.Kinds["chkpt"] != wantChkpts.Load() {
		t.Errorf("aggregated chkpt events = %d, want sum of per-job checkpoints %d",
			s.Kinds["chkpt"], wantChkpts.Load())
	}
	if s.SaveMS.Count != wantChkpts.Load() {
		t.Errorf("save sketch count = %d, want %d", s.SaveMS.Count, wantChkpts.Load())
	}
}

// BenchmarkAggregatorIngest is the hot-path budget: OnEvent must stay at
// or below one allocation per event (it is zero in practice).
func BenchmarkAggregatorIngest(b *testing.B) {
	a := telemetry.New(telemetry.Config{Nproc: 8, Window: time.Hour})
	e := obs.Event{Kind: obs.KindChkpt, Proc: 3, Inc: 1, VTime: 2.5, DurNS: 4e6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.OnEvent(e)
	}
}

func BenchmarkAggregatorIngestParallel(b *testing.B) {
	a := telemetry.New(telemetry.Config{Nproc: 8, Window: time.Hour})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		e := obs.Event{Kind: obs.KindCompute, Proc: 2, VTime: 1}
		for pb.Next() {
			a.OnEvent(e)
		}
	})
}
