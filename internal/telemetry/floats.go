package telemetry

import "math"

// floatBits / floatFrom are the bit-pattern codec for float64 values kept
// in atomic.Uint64 cells. Virtual times are non-negative, so the encoded
// ordering matches numeric ordering and CAS-with-compare stays exact.
func floatBits(v float64) uint64 { return math.Float64bits(v) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }
