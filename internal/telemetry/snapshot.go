package telemetry

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/storage/wal"
)

// ProcStatus is one process's row in a Snapshot.
type ProcStatus struct {
	Proc      int     `json:"proc"`
	Events    int64   `json:"events"`
	Inc       int     `json:"inc"`
	LastKind  string  `json:"last_kind"`
	VTime     float64 `json:"vtime"`
	LastSaveV float64 `json:"last_save_v"`
	// Lag is VTime - LastSaveV: virtual seconds of work that would be
	// lost if the process failed right now.
	Lag     float64 `json:"lag"`
	Stalled bool    `json:"stalled"`
	Halted  bool    `json:"halted"`
}

// Quantiles is the standard percentile summary of one sketch.
type Quantiles struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Health is the detector state at snapshot time.
type Health struct {
	Stalls       int64 `json:"stalls"`     // stall episodes detected so far
	Storms       int64 `json:"storms"`     // rollback storms detected so far
	LagAlerts    int64 `json:"lag_alerts"` // checkpoint-lag alerts so far
	InStorm      bool  `json:"in_storm"`   // currently inside a rollback storm
	StalledProcs int   `json:"stalled_procs"`
}

// Snapshot is a point-in-time copy of everything the aggregator knows,
// consumed by the Prometheus renderer, /snapshot.json, and the dashboard.
type Snapshot struct {
	UptimeSec float64 `json:"uptime_sec"`
	WindowSec float64 `json:"window_sec"`
	Ticks     int64   `json:"ticks"`

	Total int64            `json:"total_events"`
	Kinds map[string]int64 `json:"kinds"` // cumulative per-kind totals

	// Rates are events/sec per kind over the ring's retained horizon;
	// LastWindow holds the most recent closed window's raw deltas.
	Rates      map[string]float64 `json:"rates"`
	LastWindow map[string]int64   `json:"last_window"`

	Procs []ProcStatus `json:"procs"`

	SaveMS  Quantiles `json:"save_ms"`
	BlockMS Quantiles `json:"block_ms"`
	StallV  Quantiles `json:"stall_v"`

	// Full sketches for merging and external analysis.
	SaveSketch  metrics.SketchSnapshot `json:"save_sketch"`
	BlockSketch metrics.SketchSnapshot `json:"block_sketch"`
	StallSketch metrics.SketchSnapshot `json:"stall_sketch"`

	Health Health `json:"health"`

	// Counters is the most recent sample of the configured counters tap;
	// CounterRates its per-second rates over the last window. HasCounters
	// is false (and both stay empty) when no tap is configured.
	HasCounters  bool               `json:"has_counters"`
	Counters     metrics.Snapshot   `json:"counters"`
	CounterRates map[string]float64 `json:"counter_rates,omitempty"`

	// WAL is the checkpoint store's durability counters, sampled at
	// snapshot time from the configured WALStats source. HasWAL is false
	// (and WAL stays zero) when no store is attached.
	HasWAL bool      `json:"has_wal"`
	WAL    wal.Stats `json:"wal"`
}

// finiteSketch zeroes the ±Inf min/max sentinels of an empty sketch so the
// snapshot stays JSON-encodable (encoding/json rejects non-finite floats).
func finiteSketch(s metrics.SketchSnapshot) metrics.SketchSnapshot {
	if s.Count == 0 {
		s.Min, s.Max = 0, 0
	}
	return s
}

// quantiles summarizes a sketch snapshot.
func quantiles(s metrics.SketchSnapshot) Quantiles {
	return Quantiles{
		Count: s.Count,
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
		Max:   s.Max,
	}
}

// Snapshot copies the aggregator's state. Safe to call concurrently with
// OnEvent and Tick.
func (a *Aggregator) Snapshot() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()

	s := Snapshot{
		UptimeSec:  time.Since(a.start).Seconds(),
		WindowSec:  a.cfg.Window.Seconds(),
		Ticks:      a.ticks,
		Total:      a.total.Load(),
		Kinds:      make(map[string]int64, nKinds),
		Rates:      make(map[string]float64, nKinds),
		LastWindow: make(map[string]int64, nKinds),
	}
	for i := range a.kinds {
		if v := a.kinds[i].Load(); v > 0 {
			s.Kinds[kindNames[i]] = v
		}
	}

	// Rates over the retained ring horizon.
	var horizon [nKinds]int64
	var horizonNS int64
	for i := 0; i < a.ringLen; i++ {
		slot := (a.ringHead - 1 - i + 2*len(a.ring)) % len(a.ring)
		for k := range horizon {
			horizon[k] += a.ring[slot].kinds[k]
		}
		horizonNS += a.ring[slot].durNS
	}
	if horizonNS > 0 {
		sec := float64(horizonNS) / 1e9
		for k, v := range horizon {
			if v > 0 {
				s.Rates[kindNames[k]] = float64(v) / sec
			}
		}
	}
	if a.ringLen > 0 {
		last := (a.ringHead - 1 + len(a.ring)) % len(a.ring)
		for k, v := range a.ring[last].kinds {
			if v > 0 {
				s.LastWindow[kindNames[k]] = v
			}
		}
	}

	s.Procs = make([]ProcStatus, 0, len(a.procs))
	stalled := 0
	for p := range a.procs {
		cell := &a.procs[p]
		ev := cell.events.Load()
		if ev == 0 {
			continue
		}
		ki := int(cell.lastKind.Load())
		ps := ProcStatus{
			Proc:      p,
			Events:    ev,
			Inc:       int(cell.inc.Load()),
			LastKind:  kindNames[ki],
			VTime:     floatFrom(cell.vtime.Load()),
			LastSaveV: floatFrom(cell.lastSaveV.Load()),
			Stalled:   cell.stalled,
			Halted:    ki == kiHalt,
		}
		ps.Lag = ps.VTime - ps.LastSaveV
		if ps.Stalled {
			stalled++
		}
		s.Procs = append(s.Procs, ps)
	}

	s.SaveSketch = finiteSketch(a.saveMS.Snapshot())
	s.BlockSketch = finiteSketch(a.blockMS.Snapshot())
	s.StallSketch = finiteSketch(a.stallV.Snapshot())
	s.SaveMS = quantiles(s.SaveSketch)
	s.BlockMS = quantiles(s.BlockSketch)
	s.StallV = quantiles(s.StallSketch)

	s.Health = Health{
		Stalls:       a.stalls.Load(),
		Storms:       a.storms.Load(),
		LagAlerts:    a.lagAlerts.Load(),
		InStorm:      a.inStorm,
		StalledProcs: stalled,
	}

	if a.cfg.Counters != nil {
		s.HasCounters = true
		s.Counters = a.prevCtr
		if len(s.Counters.Hists) > 0 {
			// Empty registry histograms carry the same non-finite
			// sentinels; copy-and-zero rather than mutating the shared map.
			hs := make(map[string]metrics.HistSnapshot, len(s.Counters.Hists))
			for k, h := range s.Counters.Hists {
				if h.Count == 0 {
					h.Min, h.Max = 0, 0
				}
				hs[k] = h
			}
			s.Counters.Hists = hs
		}
		if len(a.ctrDelta) > 0 {
			lastNS := int64(a.cfg.Window)
			if a.ringLen > 0 {
				last := (a.ringHead - 1 + len(a.ring)) % len(a.ring)
				if a.ring[last].durNS > 0 {
					lastNS = a.ring[last].durNS
				}
			}
			sec := float64(lastNS) / 1e9
			s.CounterRates = make(map[string]float64, len(a.ctrDelta))
			for k, v := range a.ctrDelta {
				s.CounterRates[k] = float64(v) / sec
			}
		}
	}
	if a.walStats != nil {
		s.HasWAL = true
		s.WAL = a.walStats()
	}
	return s
}

// Healthy reports whether the run looks healthy right now: no process
// stalled and no storm in progress. Detector history (past stalls that
// recovered) does not count against it.
func (s Snapshot) Healthy() bool {
	if s.Health.InStorm || s.Health.StalledProcs > 0 {
		return false
	}
	return true
}

// HaltedProcs counts processes whose last event was a halt.
func (s Snapshot) HaltedProcs() int {
	n := 0
	for _, p := range s.Procs {
		if p.Halted {
			n++
		}
	}
	return n
}

var _ obs.Observer = (*Aggregator)(nil)
