// Package telemetry is the live observability layer: where internal/obs
// turns runs into post-mortem artifacts, this package answers "what is the
// run doing RIGHT NOW". An Aggregator taps the same obs.Observer fan-out
// as the flight recorder (wire it with obs.Multi) and keeps only O(1)
// online state: per-kind event totals, per-process progress, fixed-size
// rings of per-window deltas, and mergeable quantile sketches for save /
// block / stall latencies — no raw samples are retained. The exposition
// server (Server) renders that state as Prometheus text, JSON snapshots,
// and a health endpoint; the Dashboard renders it as a live ANSI view.
//
// The hot path — OnEvent, called for every runtime event from every
// process goroutine — is lock-free: atomic counters, atomic per-process
// cells, and atomic sketch buckets. The cold path (Tick, Snapshot) takes a
// mutex; it runs once per aggregation window (default 250ms).
//
// Tick also runs the health detectors:
//
//   - stall: a process recorded no events for StallWindows consecutive
//     windows and its last event was not a halt;
//   - rollback storm: more rollbacks than StormRollbacks within the last
//     StormWindows windows;
//   - checkpoint lag: a process's virtual clock ran LagThreshold virtual
//     seconds past its last completed save.
//
// Each verdict increments a counter, flips a gauge, and is published as an
// obs event (KindStall / KindStorm / KindLag) on the configured Sink, so
// the flight recorder and event stream capture when the run went unhealthy.
package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/storage/wal"
)

// kindIndex maps an event kind to its slot in the fixed counter array.
// Unknown kinds share a slot rather than allocating, keeping OnEvent
// total-alloc-free even against newer producers.
const (
	kiCompute = iota
	kiSend
	kiRecv
	kiChkpt
	kiBlock
	kiRollback
	kiRestart
	kiHalt
	kiFault
	kiRetry
	kiScrub
	kiDegraded
	kiNetFault
	kiSuspect
	kiBacklog
	kiHeal
	kiStall
	kiStorm
	kiLag
	kiAdmit
	kiReject
	kiJobDone
	kiBreaker
	kiDrain
	kiOther
	nKinds
)

// kindNames indexes slot → kind label for exports.
var kindNames = [nKinds]string{
	kiCompute: string(obs.KindCompute), kiSend: string(obs.KindSend),
	kiRecv: string(obs.KindRecv), kiChkpt: string(obs.KindChkpt),
	kiBlock: string(obs.KindBlock), kiRollback: string(obs.KindRollback),
	kiRestart: string(obs.KindRestart), kiHalt: string(obs.KindHalt),
	kiFault: string(obs.KindFault), kiRetry: string(obs.KindRetry),
	kiScrub: string(obs.KindScrub), kiDegraded: string(obs.KindDegraded),
	kiNetFault: string(obs.KindNetFault), kiSuspect: string(obs.KindSuspect),
	kiBacklog: string(obs.KindBacklog), kiHeal: string(obs.KindHeal),
	kiStall: string(obs.KindStall), kiStorm: string(obs.KindStorm),
	kiLag: string(obs.KindLag), kiAdmit: string(obs.KindAdmit),
	kiReject: string(obs.KindReject), kiJobDone: string(obs.KindJobDone),
	kiBreaker: string(obs.KindBreaker), kiDrain: string(obs.KindDrain),
	kiOther: "other",
}

// kindIndex returns the counter slot for a kind. A string switch compiles
// to hashing without allocation, keeping the hot path clean.
func kindIndex(k obs.Kind) int {
	switch k {
	case obs.KindCompute:
		return kiCompute
	case obs.KindSend:
		return kiSend
	case obs.KindRecv:
		return kiRecv
	case obs.KindChkpt:
		return kiChkpt
	case obs.KindBlock:
		return kiBlock
	case obs.KindRollback:
		return kiRollback
	case obs.KindRestart:
		return kiRestart
	case obs.KindHalt:
		return kiHalt
	case obs.KindFault:
		return kiFault
	case obs.KindRetry:
		return kiRetry
	case obs.KindScrub:
		return kiScrub
	case obs.KindDegraded:
		return kiDegraded
	case obs.KindNetFault:
		return kiNetFault
	case obs.KindSuspect:
		return kiSuspect
	case obs.KindBacklog:
		return kiBacklog
	case obs.KindHeal:
		return kiHeal
	case obs.KindStall:
		return kiStall
	case obs.KindStorm:
		return kiStorm
	case obs.KindLag:
		return kiLag
	case obs.KindAdmit:
		return kiAdmit
	case obs.KindReject:
		return kiReject
	case obs.KindJobDone:
		return kiJobDone
	case obs.KindBreaker:
		return kiBreaker
	case obs.KindDrain:
		return kiDrain
	default:
		return kiOther
	}
}

// Config configures an Aggregator. The zero value of every field selects a
// sensible default.
type Config struct {
	// Nproc sizes the per-process table. Events naming ranks at or beyond
	// it fold into run-level accounting. Default 16.
	Nproc int
	// Window is the aggregation window Start ticks at. Default 250ms.
	Window time.Duration
	// Rings is how many windows of per-window deltas the ring retains
	// (the detector and rate horizon). Default 240 (one minute at 250ms).
	Rings int
	// Counters, when set, is sampled every window: per-counter deltas and
	// rates appear alongside the event-derived state. Point it at the
	// sim.Config.Counters tap.
	Counters *metrics.Counters
	// Sink receives detector verdicts as obs events. Wire the recorder
	// and stream writer here (NOT the aggregator itself) so health events
	// land in the same flight-recorder artifacts as runtime events.
	Sink obs.Observer
	// StallWindows is how many consecutive empty windows mark a
	// non-halted process as stalled. Default 8 (2s at the default window).
	StallWindows int
	// StormRollbacks is the rollback count within StormWindows that
	// constitutes a storm. Default 3.
	StormRollbacks int
	// StormWindows is the storm detector's horizon. Default 40 windows
	// (10s at the default window), clamped to Rings.
	StormWindows int
	// LagThreshold is the checkpoint-lag alert bar in virtual seconds;
	// 0 disables lag alerts (the gauge is always exported).
	LagThreshold float64
	// WALStats, when set, is sampled at every Snapshot: the store's
	// durability counters appear as chkptsim_wal_* series in /metrics and
	// a wal line on the dashboard. Point it at (*wal.Store).Stats. Stores
	// opened after the aggregator use SetWALStats instead.
	WALStats func() wal.Stats
}

func (c *Config) fill() {
	if c.Nproc <= 0 {
		c.Nproc = 16
	}
	if c.Window <= 0 {
		c.Window = 250 * time.Millisecond
	}
	if c.Rings <= 0 {
		c.Rings = 240
	}
	if c.StallWindows <= 0 {
		c.StallWindows = 8
	}
	if c.StormRollbacks <= 0 {
		c.StormRollbacks = 3
	}
	if c.StormWindows <= 0 {
		c.StormWindows = 40
	}
	if c.StormWindows > c.Rings {
		c.StormWindows = c.Rings
	}
}

// procCell is one process's lock-free hot-path state.
type procCell struct {
	events    atomic.Int64  // total events observed
	inc       atomic.Int64  // highest incarnation seen
	lastKind  atomic.Int64  // kind slot of the most recent event
	vtime     atomic.Uint64 // max virtual time seen, float64 bits
	lastSaveV atomic.Uint64 // virtual time of last chkpt event, float64 bits

	// Detector bookkeeping, touched only from Tick (under mu).
	lastEvents   int64 // events at the previous tick
	quietWindows int   // consecutive windows without progress
	stalled      bool
	lagged       bool
}

// window is one ring slot: per-kind event deltas for one closed window.
type window struct {
	kinds  [nKinds]int64
	events int64
	durNS  int64
}

// Aggregator is the streaming aggregation core. Construct with New; it is
// safe for concurrent use (OnEvent from any goroutine, Tick/Snapshot from
// the ticker or servers).
type Aggregator struct {
	cfg Config

	start time.Time
	kinds [nKinds]atomic.Int64
	total atomic.Int64
	procs []procCell
	run   procCell // events with out-of-range ranks (run-level, proc -1)

	saveMS  *metrics.Sketch // checkpoint save wall latency, ms
	blockMS *metrics.Sketch // coordination block wall latency, ms
	stallV  *metrics.Sketch // coordination stall, virtual seconds

	// Health counters (atomic: read by Snapshot without mu).
	stalls    atomic.Int64
	storms    atomic.Int64
	lagAlerts atomic.Int64

	mu       sync.Mutex
	ring     []window // cfg.Rings slots
	ringLen  int      // filled slots
	ringHead int      // next slot to write
	ticks    int64
	lastTick time.Time
	lastCum  [nKinds]int64 // cumulative kind counts at the previous tick
	inStorm  bool
	prevCtr  metrics.Snapshot // previous counters sample
	ctrDelta map[string]int64 // last-window deltas of counter fields
	walStats func() wal.Stats // sampled by Snapshot when non-nil
}

// New builds an aggregator from cfg (zero fields take defaults).
func New(cfg Config) *Aggregator {
	cfg.fill()
	return &Aggregator{
		cfg:      cfg,
		start:    time.Now(),
		procs:    make([]procCell, cfg.Nproc),
		saveMS:   metrics.NewSketch(),
		blockMS:  metrics.NewSketch(),
		stallV:   metrics.NewSketch(),
		ring:     make([]window, cfg.Rings),
		walStats: cfg.WALStats,
	}
}

// Window returns the configured aggregation window.
func (a *Aggregator) Window() time.Duration { return a.cfg.Window }

// SetWALStats attaches (or replaces, or with nil detaches) the WAL stats
// source after construction — for callers that open the store only after
// the telemetry stack is up. Safe to call concurrently with Snapshot.
func (a *Aggregator) SetWALStats(fn func() wal.Stats) {
	a.mu.Lock()
	a.walStats = fn
	a.mu.Unlock()
}

// OnEvent implements obs.Observer — the hot path. Purely atomic: no locks,
// no allocation.
func (a *Aggregator) OnEvent(e obs.Event) {
	ki := kindIndex(e.Kind)
	a.kinds[ki].Add(1)
	a.total.Add(1)

	cell := &a.run
	if e.Proc >= 0 && e.Proc < len(a.procs) {
		cell = &a.procs[e.Proc]
	}
	cell.events.Add(1)
	storeMaxInt(&cell.inc, int64(e.Inc))
	cell.lastKind.Store(int64(ki))
	storeMaxFloat(&cell.vtime, e.VTime)

	switch ki {
	case kiChkpt:
		cell.lastSaveV.Store(floatBits(e.VTime))
		if e.DurNS > 0 {
			a.saveMS.Observe(float64(e.DurNS) / 1e6)
		}
	case kiBlock:
		a.blockMS.Observe(float64(e.DurNS) / 1e6)
		if e.VDur > 0 {
			a.stallV.Observe(e.VDur)
		}
	}
}

// Tick closes the current aggregation window: it pushes the window's
// per-kind deltas into the ring, samples the counters tap, and runs the
// stall / storm / lag detectors. Start calls it on a ticker; tests drive
// it directly.
func (a *Aggregator) Tick() {
	a.mu.Lock()
	defer a.mu.Unlock()

	now := time.Now()
	durNS := int64(a.cfg.Window)
	if !a.lastTick.IsZero() {
		if d := now.Sub(a.lastTick); d > 0 {
			durNS = int64(d)
		}
	}
	a.lastTick = now

	var w window
	w.durNS = durNS
	for i := range a.kinds {
		cum := a.kinds[i].Load()
		w.kinds[i] = cum - a.lastCum[i]
		a.lastCum[i] = cum
		w.events += w.kinds[i]
	}
	a.ring[a.ringHead] = w
	a.ringHead = (a.ringHead + 1) % len(a.ring)
	if a.ringLen < len(a.ring) {
		a.ringLen++
	}
	a.ticks++

	if a.cfg.Counters != nil {
		cur := a.cfg.Counters.Snapshot()
		a.ctrDelta = counterDeltas(a.prevCtr, cur)
		a.prevCtr = cur
	}

	a.detectStalls()
	a.detectStorm()
	a.detectLag()
}

// Start runs Tick on the configured window until the returned stop
// function is called.
func (a *Aggregator) Start() (stop func()) {
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		t := time.NewTicker(a.cfg.Window)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				a.Tick()
			case <-stopCh:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stopCh)
			<-doneCh
		})
	}
}

// detectStalls fires a stall event for every process that made no progress
// for StallWindows consecutive windows and has not halted. One event per
// silence episode: the detector re-arms when the process moves again.
func (a *Aggregator) detectStalls() {
	for p := range a.procs {
		cell := &a.procs[p]
		ev := cell.events.Load()
		if ev == 0 {
			continue // never seen: not participating, not stalled
		}
		if ev != cell.lastEvents {
			cell.lastEvents = ev
			cell.quietWindows = 0
			cell.stalled = false
			continue
		}
		if int(cell.lastKind.Load()) == kiHalt {
			cell.quietWindows = 0
			cell.stalled = false
			continue // halted: silence is completion, not a stall
		}
		cell.quietWindows++
		if cell.quietWindows >= a.cfg.StallWindows && !cell.stalled {
			cell.stalled = true
			a.stalls.Add(1)
			a.emit(obs.Event{
				Kind: obs.KindStall, Proc: p, Inc: int(cell.inc.Load()),
				VTime: floatFrom(cell.vtime.Load()),
				Label: fmt.Sprintf("no forward progress in %d windows (%v)",
					cell.quietWindows, time.Duration(cell.quietWindows)*a.cfg.Window),
			})
		}
	}
}

// detectStorm fires when the rollback count over the last StormWindows
// windows reaches StormRollbacks, once per storm; it re-arms after a
// horizon with no rollbacks at all.
func (a *Aggregator) detectStorm() {
	var rollbacks int64
	for i := 0; i < a.ringLen && i < a.cfg.StormWindows; i++ {
		slot := (a.ringHead - 1 - i + len(a.ring)*2) % len(a.ring)
		rollbacks += a.ring[slot].kinds[kiRollback]
	}
	switch {
	case rollbacks >= int64(a.cfg.StormRollbacks) && !a.inStorm:
		a.inStorm = true
		a.storms.Add(1)
		a.emit(obs.Event{
			Kind: obs.KindStorm, Proc: -1,
			Label: fmt.Sprintf("%d rollbacks within %d windows", rollbacks, a.cfg.StormWindows),
		})
	case rollbacks == 0:
		a.inStorm = false
	}
}

// detectLag fires when a process's virtual clock runs LagThreshold virtual
// seconds past its last completed checkpoint save; it re-arms when a new
// save closes the gap.
func (a *Aggregator) detectLag() {
	if a.cfg.LagThreshold <= 0 {
		return
	}
	for p := range a.procs {
		cell := &a.procs[p]
		if cell.events.Load() == 0 {
			continue
		}
		lag := floatFrom(cell.vtime.Load()) - floatFrom(cell.lastSaveV.Load())
		if lag <= a.cfg.LagThreshold {
			cell.lagged = false
			continue
		}
		if cell.lagged {
			continue
		}
		cell.lagged = true
		a.lagAlerts.Add(1)
		a.emit(obs.Event{
			Kind: obs.KindLag, Proc: p, Inc: int(cell.inc.Load()),
			VTime: floatFrom(cell.vtime.Load()), VDur: lag,
			Label: fmt.Sprintf("%.3f virtual seconds since last completed save (threshold %.3f)",
				lag, a.cfg.LagThreshold),
		})
	}
}

// emit publishes a detector verdict on the sink. Callers hold mu; the sink
// (recorder / stream writer) must not call back into the aggregator.
func (a *Aggregator) emit(e obs.Event) {
	if a.cfg.Sink != nil {
		a.cfg.Sink.OnEvent(e)
	}
}

// counterDeltas computes per-field deltas between two counter snapshots,
// folding fixed fields and custom counters into one named map.
func counterDeltas(prev, cur metrics.Snapshot) map[string]int64 {
	d := map[string]int64{
		"app_messages":     cur.AppMessages - prev.AppMessages,
		"ctrl_messages":    cur.CtrlMessages - prev.CtrlMessages,
		"ctrl_bytes":       cur.CtrlBytes - prev.CtrlBytes,
		"checkpoints":      cur.Checkpoints - prev.Checkpoints,
		"forced":           cur.Forced - prev.Forced,
		"rollbacks":        cur.Rollbacks - prev.Rollbacks,
		"restarted_events": cur.RestartedEvents - prev.RestartedEvents,
		"blocked_ns":       int64(cur.Blocked - prev.Blocked),
	}
	for k, v := range cur.Custom {
		d[k] = v - prev.Custom[k]
	}
	return d
}

// storeMaxInt raises a to v if v is larger.
func storeMaxInt(a *atomic.Int64, v int64) {
	for {
		old := a.Load()
		if v <= old || a.CompareAndSwap(old, v) {
			return
		}
	}
}

// storeMaxFloat raises the float64 stored as bits in a to v if v is
// larger. Values are non-negative virtual times, so bit-pattern CAS with a
// float compare is exact.
func storeMaxFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if v <= floatFrom(old) || a.CompareAndSwap(old, floatBits(v)) {
			return
		}
	}
}
