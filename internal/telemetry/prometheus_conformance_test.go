package telemetry_test

import (
	"bytes"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// This file is a strict Go-side parser for the Prometheus text exposition
// format (0.0.4) and a conformance test that runs the renderer's output
// through it. The parser enforces the rules a real scraper relies on:
//
//   - metric and label names match the spec alphabets;
//   - every sample belongs to a family announced by a # TYPE line, with
//     # HELP preceding # TYPE exactly once per family;
//   - histogram families expose only _bucket/_sum/_count series, buckets
//     carry an le label, le values strictly increase, cumulative counts
//     are monotone, and the +Inf bucket equals _count;
//   - label values use only the legal escapes (\\ \" \n);
//   - no duplicate (name, labelset) samples;
//   - values parse as Go floats (incl. +Inf/-Inf/NaN spellings).

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type promParsedFamily struct {
	name, typ string
	samples   []parsedSample
}

type parsedSample struct {
	name   string            // full sample name incl. suffix
	labels map[string]string // parsed label set
	key    string            // canonical (name, labels) dedup key
	value  float64
}

// parseProm parses and validates a full exposition payload, returning the
// families keyed by name or the first violation.
func parseProm(data []byte) (map[string]*promParsedFamily, error) {
	fams := map[string]*promParsedFamily{}
	var cur *promParsedFamily
	seen := map[string]bool{}
	help := map[string]bool{}

	for n, line := range strings.Split(string(data), "\n") {
		lineno := n + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: malformed HELP: %q", lineno, line)
			}
			if help[name] {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineno, name)
			}
			help[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE: %q", lineno, line)
			}
			name, typ := fields[0], fields[1]
			if !metricNameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: bad metric name %q", lineno, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", lineno, typ)
			}
			if fams[name] != nil {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineno, name)
			}
			if !help[name] {
				return nil, fmt.Errorf("line %d: TYPE %s without preceding HELP", lineno, name)
			}
			cur = &promParsedFamily{name: name, typ: typ}
			fams[name] = cur
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment: legal
		}

		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		if cur == nil || !sampleBelongs(cur, s.name) {
			return nil, fmt.Errorf("line %d: sample %s outside its family block", lineno, s.name)
		}
		if seen[s.key] {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineno, s.key)
		}
		seen[s.key] = true
		cur.samples = append(cur.samples, s)
	}

	for name, f := range fams {
		if f.typ == "histogram" {
			if err := validateHistogram(name, f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// sampleBelongs reports whether a sample name is legal inside family f:
// the bare name, or for histograms the three suffixed series.
func sampleBelongs(f *promParsedFamily, sample string) bool {
	if f.typ == "histogram" {
		return sample == f.name+"_bucket" || sample == f.name+"_sum" || sample == f.name+"_count"
	}
	return sample == f.name
}

// parseSampleLine validates one sample line: name, optional label set,
// value, optional timestamp.
func parseSampleLine(line string) (parsedSample, error) {
	var zero parsedSample
	rest := line
	brace := strings.IndexByte(rest, '{')
	var name, labelPart string
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return zero, fmt.Errorf("unterminated label set: %q", line)
		}
		labelPart = rest[brace+1 : end]
		rest = strings.TrimLeft(rest[end+1:], " ")
	} else {
		var ok bool
		name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return zero, fmt.Errorf("no value: %q", line)
		}
	}
	if !metricNameRe.MatchString(name) {
		return zero, fmt.Errorf("bad sample name %q", name)
	}
	labels, err := parseLabels(labelPart)
	if err != nil {
		return zero, err
	}

	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return zero, fmt.Errorf("want value [timestamp], got %q", rest)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return zero, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return zero, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}

	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	key := name + "{"
	for _, k := range keys {
		key += k + "=" + strconv.Quote(labels[k]) + ","
	}
	key += "}"
	return parsedSample{name: name, labels: labels, key: key, value: v}, nil
}

// parseLabels validates a label body: name="value" pairs, comma separated,
// values escaped per the spec.
func parseLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=': %q", body[i:])
		}
		name := body[i : i+eq]
		if !labelNameRe.MatchString(name) {
			return nil, fmt.Errorf("bad label name %q", name)
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("label %s value not quoted", name)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(body) {
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					return nil, fmt.Errorf("dangling escape in label %s", name)
				}
				switch body[i+1] {
				case '\\', '"':
					val.WriteByte(body[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("illegal escape \\%c in label %s", body[i+1], name)
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %s", name)
		}
		labels[name] = val.String()
		if i < len(body) {
			if body[i] != ',' {
				return nil, fmt.Errorf("expected ',' after label %s, got %q", name, body[i:])
			}
			i++
		}
	}
	return labels, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validateHistogram enforces the histogram contract: an le label on every
// bucket, strictly increasing le values, monotone cumulative counts, a
// final +Inf bucket, and +Inf == _count.
func validateHistogram(name string, f *promParsedFamily) error {
	prevLe := math.Inf(-1)
	prevCum := -1.0
	var infCount, count float64
	var sawInf, sawSum, sawCount bool
	for _, s := range f.samples {
		switch s.name {
		case name + "_bucket":
			leStr, ok := s.labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket without le label", name)
			}
			le, err := parsePromValue(leStr)
			if err != nil {
				return fmt.Errorf("%s: bad le %q", name, leStr)
			}
			if le <= prevLe {
				return fmt.Errorf("%s: le not increasing: %g after %g", name, le, prevLe)
			}
			if s.value < prevCum {
				return fmt.Errorf("%s: bucket counts not monotone: %g after %g", name, s.value, prevCum)
			}
			prevLe, prevCum = le, s.value
			if math.IsInf(le, 1) {
				sawInf, infCount = true, s.value
			}
		case name + "_sum":
			sawSum = true
		case name + "_count":
			sawCount, count = true, s.value
		}
	}
	if !sawInf || !sawSum || !sawCount {
		return fmt.Errorf("%s: incomplete histogram (inf=%v sum=%v count=%v)", name, sawInf, sawSum, sawCount)
	}
	if infCount != count {
		return fmt.Errorf("%s: +Inf bucket %g != _count %g", name, infCount, count)
	}
	return nil
}

// mustParseProm is parseProm for tests that expect a valid payload.
func mustParseProm(t *testing.T, data []byte) map[string]*promParsedFamily {
	t.Helper()
	fams, err := parseProm(data)
	if err != nil {
		t.Fatalf("conformance violation: %v\npayload:\n%s", err, data)
	}
	return fams
}

// loadedAggregator builds an aggregator with every event-derived export
// surface populated: all kinds, multiple procs, sketches, fired detectors.
func loadedAggregator() *telemetry.Aggregator {
	a := telemetry.New(telemetry.Config{
		Nproc: 4, Window: time.Hour, Rings: 8,
		StallWindows: 2, StormRollbacks: 1, LagThreshold: 0.5,
	})
	kinds := []obs.Kind{
		obs.KindCompute, obs.KindSend, obs.KindRecv, obs.KindChkpt,
		obs.KindBlock, obs.KindRollback, obs.KindRestart, obs.KindHalt,
		obs.KindFault, obs.KindRetry, obs.KindScrub, obs.KindDegraded,
		obs.KindNetFault, obs.KindSuspect, obs.KindBacklog, obs.KindHeal,
		obs.Kind("mystery"),
	}
	for i, k := range kinds {
		a.OnEvent(obs.Event{Kind: k, Proc: i % 4, Inc: i % 3, VTime: float64(i), DurNS: int64(i+1) * 1e6, VDur: float64(i) / 10})
	}
	a.OnEvent(obs.Event{Kind: obs.KindChkpt, Proc: 0, VTime: 0.1, DurNS: 2e6})
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0, VTime: 5})
	a.Tick() // storm (1 rollback ≥ threshold), lag (proc 0 at 5 vs save 0.1)
	a.Tick()
	a.Tick() // stall for quiet procs
	return a
}

// TestPromConformance renders a fully-loaded snapshot and validates every
// rule with the strict parser.
func TestPromConformance(t *testing.T) {
	a := loadedAggregator()
	var buf bytes.Buffer
	if err := telemetry.WriteProm(&buf, a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	fams := mustParseProm(t, buf.Bytes())
	for _, want := range []string{
		"chkptsim_uptime_seconds", "chkptsim_events_total", "chkptsim_event_rate",
		"chkptsim_proc_events_total", "chkptsim_proc_incarnation",
		"chkptsim_proc_vtime_seconds", "chkptsim_proc_checkpoint_lag_vseconds",
		"chkptsim_proc_stalled", "chkptsim_health_stalls_total",
		"chkptsim_health_storms_total", "chkptsim_health_lag_alerts_total",
		"chkptsim_health_in_storm", "chkptsim_healthy",
		"chkptsim_save_latency_ms", "chkptsim_block_latency_ms",
		"chkptsim_block_stall_vseconds", "chkptsim_ticks_total",
	} {
		if fams[want] == nil {
			t.Errorf("family %s missing from exposition", want)
		}
	}
	if f := fams["chkptsim_events_total"]; f != nil {
		if f.typ != "counter" {
			t.Errorf("events_total type = %s", f.typ)
		}
		found := false
		for _, s := range f.samples {
			if s.labels["kind"] == "other" {
				found = true // the unknown "mystery" kind folds into other
			}
		}
		if !found {
			t.Error("unknown kind not folded into kind=\"other\"")
		}
	}
	// Detectors fired: health counters visible in the exposition.
	for fam, min := range map[string]float64{
		"chkptsim_health_storms_total":     1,
		"chkptsim_health_stalls_total":     1,
		"chkptsim_health_lag_alerts_total": 1,
	} {
		if f := fams[fam]; f == nil || len(f.samples) == 0 || f.samples[0].value < min {
			t.Errorf("%s below %g: %+v", fam, min, f)
		}
	}
}

// TestPromConformanceWithCounters covers the tap families, including the
// sanitization path for hostile counter names.
func TestPromConformanceWithCounters(t *testing.T) {
	ctr := &metrics.Counters{}
	ctr.IncAppMessages(42)
	ctr.Inc("weird name\"with\\specials\n", 7)
	ctr.SetGauge("chkpt_last_save_vs_p0", 1.25)
	ctr.ObserveHist("save ms", 3.5)
	a := telemetry.New(telemetry.Config{Counters: ctr, Window: time.Hour})
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0})
	a.Tick()
	var buf bytes.Buffer
	if err := telemetry.WriteProm(&buf, a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	fams := mustParseProm(t, buf.Bytes())
	for _, want := range []string{
		"chkptsim_counter_total", "chkptsim_counter_rate",
		"chkptsim_gauge", "chkptsim_hist_save_ms",
	} {
		if fams[want] == nil {
			t.Errorf("family %s missing", want)
		}
	}
	var appTotal, weird float64
	for _, s := range fams["chkptsim_counter_total"].samples {
		switch s.labels["name"] {
		case "app_messages":
			appTotal = s.value
		case "weird_name_with_specials_":
			weird = s.value
		}
	}
	if appTotal != 42 {
		t.Errorf("app_messages total = %g, want 42", appTotal)
	}
	if weird != 7 {
		t.Errorf("sanitized hostile counter name missing or wrong: %g", weird)
	}
}

// TestPromConformancePruneFamilies covers the liveness-pruning families:
// present with the right arithmetic when pruning fired, absent when the
// run never pruned (full-environment checkpoints keep the exposition
// quiet rather than emitting a misleading all-zero ratio).
func TestPromConformancePruneFamilies(t *testing.T) {
	ctr := &metrics.Counters{}
	ctr.Inc("prune_bytes_full", 400)
	ctr.Inc("prune_bytes_saved", 100)
	ctr.Inc("prune_vars_dropped", 12)
	a := telemetry.New(telemetry.Config{Counters: ctr, Window: time.Hour})
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0})
	a.Tick()
	var buf bytes.Buffer
	if err := telemetry.WriteProm(&buf, a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	fams := mustParseProm(t, buf.Bytes())
	for fam, want := range map[string]float64{
		"chkptsim_prune_bytes_full_total":   400,
		"chkptsim_prune_bytes_saved_total":  100,
		"chkptsim_prune_vars_dropped_total": 12,
		"chkptsim_prune_ratio":              0.25,
	} {
		f := fams[fam]
		if f == nil || len(f.samples) == 0 {
			t.Errorf("family %s missing", fam)
			continue
		}
		if got := f.samples[0].value; got != want {
			t.Errorf("%s = %g, want %g", fam, got, want)
		}
	}

	// A NoPrune run leaves prune_bytes_full at zero: no prune families.
	quiet := &metrics.Counters{}
	quiet.IncAppMessages(1)
	a2 := telemetry.New(telemetry.Config{Counters: quiet, Window: time.Hour})
	a2.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0})
	a2.Tick()
	buf.Reset()
	if err := telemetry.WriteProm(&buf, a2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	fams = mustParseProm(t, buf.Bytes())
	for _, fam := range []string{"chkptsim_prune_bytes_full_total", "chkptsim_prune_ratio"} {
		if fams[fam] != nil {
			t.Errorf("%s exported although pruning never fired", fam)
		}
	}
}

// TestPromNoCountersOmitsTapFamilies: without a tap the tap families must
// not appear at all (no all-zero noise).
func TestPromNoCountersOmitsTapFamilies(t *testing.T) {
	a := telemetry.New(telemetry.Config{Window: time.Hour})
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0})
	a.Tick()
	var buf bytes.Buffer
	if err := telemetry.WriteProm(&buf, a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	fams := mustParseProm(t, buf.Bytes())
	for _, fam := range []string{"chkptsim_counter_total", "chkptsim_gauge"} {
		if fams[fam] != nil {
			t.Errorf("%s exported without a tap", fam)
		}
	}
}

// TestPromParserRejectsViolations proves the parser has teeth: every
// malformed payload must fail.
func TestPromParserRejectsViolations(t *testing.T) {
	bad := map[string]string{
		"sample outside family": "orphan_metric 1\n",
		"type without help":     "# TYPE foo counter\nfoo 1\n",
		"bad metric name":       "# HELP 9bad x\n# TYPE 9bad counter\n9bad 1\n",
		"unknown type":          "# HELP foo x\n# TYPE foo matrix\nfoo 1\n",
		"bad value":             "# HELP foo x\n# TYPE foo counter\nfoo pizza\n",
		"duplicate sample":      "# HELP foo x\n# TYPE foo counter\nfoo 1\nfoo 2\n",
		"duplicate type":        "# HELP foo x\n# TYPE foo counter\n# TYPE foo counter\nfoo 1\n",
		"illegal escape":        "# HELP foo x\n# TYPE foo counter\nfoo{l=\"a\\tb\"} 1\n",
		"unquoted label":        "# HELP foo x\n# TYPE foo counter\nfoo{l=3} 1\n",
		"bad label name":        "# HELP foo x\n# TYPE foo counter\nfoo{0l=\"a\"} 1\n",
		"bucket without le":     "# HELP h x\n# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n",
		"le not increasing":     "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"non-monotone buckets":  "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"inf bucket != count":   "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"missing sum":           "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 0\nh_count 0\n",
		"foreign sample in fam": "# HELP foo x\n# TYPE foo counter\nbar 1\n",
	}
	for name, payload := range bad {
		payload := payload
		t.Run(name, func(t *testing.T) {
			if _, err := parseProm([]byte(payload)); err == nil {
				t.Errorf("parser accepted: %q", payload)
			}
		})
	}
	good := "# HELP foo a good one\n# TYPE foo counter\nfoo{l=\"a\\\\b\\\"c\\nd\"} 1 1722000000000\n"
	if fams, err := parseProm([]byte(good)); err != nil {
		t.Errorf("parser rejected a legal payload: %v", err)
	} else if v := fams["foo"].samples[0].labels["l"]; v != "a\\b\"c\nd" {
		t.Errorf("unescaped label value wrong: %q", v)
	}
}
