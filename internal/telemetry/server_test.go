package telemetry_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	a := loadedAggregator()
	srv, err := telemetry.NewServer("127.0.0.1:0", a)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body, ctype := get(t, srv.URL()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content-type %q", ctype)
	}
	fams := mustParseProm(t, []byte(body))
	if fams["chkptsim_events_total"] == nil {
		t.Error("/metrics payload missing event totals")
	}

	code, body, ctype = get(t, srv.URL()+"/snapshot.json")
	if code != 200 || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/snapshot.json status %d ctype %q", code, ctype)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("snapshot.json does not parse: %v", err)
	}
	if snap.Total == 0 || len(snap.Procs) == 0 {
		t.Errorf("snapshot.json empty: %+v", snap)
	}

	// loadedAggregator leaves procs stalled: /healthz must say so.
	code, body, _ = get(t, srv.URL()+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "unhealthy") {
		t.Errorf("/healthz on a stalled run: status %d body %q", code, body)
	}

	code, body, _ = get(t, srv.URL()+"/")
	if code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index: status %d body %q", code, body)
	}
	if code, _, _ = get(t, srv.URL()+"/nope"); code != 404 {
		t.Errorf("unknown path: status %d, want 404", code)
	}
}

func TestServerHealthzHealthy(t *testing.T) {
	a := telemetry.New(telemetry.Config{Window: time.Hour})
	a.OnEvent(obs.Event{Kind: obs.KindCompute, Proc: 0})
	a.Tick()
	srv, err := telemetry.NewServer("127.0.0.1:0", a)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body, _ := get(t, srv.URL()+"/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: status %d body %q", code, body)
	}
}

func TestServerBadAddr(t *testing.T) {
	if _, err := telemetry.NewServer("256.0.0.1:http-nope", telemetry.New(telemetry.Config{})); err == nil {
		t.Fatal("NewServer accepted a garbage address")
	}
}

// TestServerScrapeDuringIngest: scraping while events pour in must stay
// consistent (run with -race for the real assertion).
func TestServerScrapeDuringIngest(t *testing.T) {
	a := telemetry.New(telemetry.Config{Nproc: 4, Window: time.Millisecond})
	stop := a.Start()
	defer stop()
	srv, err := telemetry.NewServer("127.0.0.1:0", a)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			a.OnEvent(obs.Event{Kind: obs.KindChkpt, Proc: i % 4, VTime: float64(i), DurNS: 1e6})
		}
	}()
	for i := 0; i < 5; i++ {
		if code, body, _ := get(t, srv.URL()+"/metrics"); code != 200 {
			t.Fatalf("scrape %d failed: %d", i, code)
		} else {
			mustParseProm(t, []byte(body))
		}
	}
	<-done
}

// TestSnapshotJSONEncodableWhenEmpty: a fresh aggregator's sketches carry
// ±Inf min/max sentinels; the snapshot must zero them or json.Marshal fails
// and /snapshot.json serves an empty body.
func TestSnapshotJSONEncodableWhenEmpty(t *testing.T) {
	a := telemetry.New(telemetry.Config{Window: time.Hour, Counters: &metrics.Counters{}})
	a.Tick() // sample the (empty) counters tap, histograms included
	raw, err := json.Marshal(a.Snapshot())
	if err != nil {
		t.Fatalf("empty snapshot not encodable: %v", err)
	}
	var back telemetry.Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.SaveMS.Count != 0 || back.SaveSketch.Min != 0 || back.SaveSketch.Max != 0 {
		t.Errorf("empty sketch sentinels leaked: %+v", back.SaveSketch)
	}
}
