package sim

import (
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mpl"
	"repro/internal/trace"
)

func TestReduceSemantics(t *testing.T) {
	src := `
program red
var v
proc {
    v = rank + 1
    chkpt
    reduce(2, v)
}
`
	p := mustParseProg(t, src)
	res := runOK(t, p, 4)
	// Root (rank 2) holds 1+2+3+4 = 10; others keep their value.
	if got := res.FinalVars[2]["v"]; got != 10 {
		t.Errorf("root v = %d, want 10", got)
	}
	for _, r := range []int{0, 1, 3} {
		if got := res.FinalVars[r]["v"]; got != r+1 {
			t.Errorf("rank %d v = %d, want %d (non-roots keep their value)", r, got, r+1)
		}
	}
	if err := trace.Validate(res.Trace); err != nil {
		t.Fatal(err)
	}
	// n-1 application messages.
	if res.Metrics.AppMessages != 3 {
		t.Errorf("app messages = %d, want 3", res.Metrics.AppMessages)
	}
}

func TestReduceParsesAndFormats(t *testing.T) {
	src := "program r\nvar v\nproc { reduce(nproc - 1, v) }"
	p, err := mpl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := mpl.Format(p)
	p2, err := mpl.Parse(out)
	if err != nil {
		t.Fatalf("reduce does not round-trip: %v\n%s", err, out)
	}
	if mpl.Format(p2) != out {
		t.Error("format not idempotent with reduce")
	}
	red, ok := p.Body[0].(*mpl.Reduce)
	if !ok || mpl.ExprString(red.Root) != "nproc - 1" || red.Var != "v" {
		t.Errorf("parsed reduce = %+v", p.Body[0])
	}
}

func TestAllReduceMatchesRecurrence(t *testing.T) {
	res := runOK(t, corpus.AllReduce(3), 4)
	// acc_i(k+1) = acc_i(k) + Σ_j acc_j(k), starting from acc_i = i+1:
	// every rank adds the SAME global sum each round, so the per-rank
	// offsets persist while the totals agree.
	acc := []int{1, 2, 3, 4}
	for round := 0; round < 3; round++ {
		sum := 0
		for _, a := range acc {
			sum += a
		}
		for i := range acc {
			acc[i] += sum
		}
	}
	for r, vars := range res.FinalVars {
		if vars["acc"] != acc[r] {
			t.Errorf("rank %d acc = %d, want %d", r, vars["acc"], acc[r])
		}
		// All ranks saw the same final broadcast total.
		if vars["tot"] != res.FinalVars[0]["tot"] {
			t.Errorf("rank %d tot = %d, want %d", r, vars["tot"], res.FinalVars[0]["tot"])
		}
	}
	checkStraightCuts(t, res.Trace, true)
}

func TestAllReduceSurvivesFailure(t *testing.T) {
	p := corpus.AllReduce(3)
	clean := runOK(t, p, 4)
	failed := runOK(t, p, 4, func(c *Config) {
		c.Failures = []Failure{{Proc: 0, AfterEvents: 15}} // the reduce root itself
	})
	if failed.Restarts != 1 {
		t.Fatalf("restarts = %d", failed.Restarts)
	}
	if !reflect.DeepEqual(clean.FinalVars, failed.FinalVars) {
		t.Error("allreduce diverged after root crash")
	}
}

func TestReduceRootOutOfRange(t *testing.T) {
	p := mustParseProg(t, "program r\nvar v\nproc { reduce(7, v) }")
	if _, err := Run(Config{Program: p, Nproc: 2}); err == nil {
		t.Fatal("out-of-range reduce root accepted")
	}
}
