package sim_test

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestObserverMirrorsTrace runs a clean execution and checks the observer
// stream carries exactly the trace's sends, receives, and checkpoints,
// with matching vector clocks.
func TestObserverMirrorsTrace(t *testing.T) {
	rec := obs.NewRecorder()
	res, err := sim.Run(sim.Config{
		Program:  corpus.JacobiFig1(3),
		Nproc:    4,
		Observer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[obs.Kind]int{}
	for _, h := range res.Trace.Events() {
		for _, e := range h {
			switch e.Kind {
			case trace.KindSend:
				want[obs.KindSend]++
			case trace.KindRecv:
				want[obs.KindRecv]++
			case trace.KindCheckpoint:
				want[obs.KindChkpt]++
			case trace.KindCompute:
				want[obs.KindCompute]++
			}
		}
	}
	got := map[obs.Kind]int{}
	for _, e := range rec.Events() {
		got[e.Kind]++
	}
	for kind, n := range want {
		if got[kind] != n {
			t.Errorf("%s events = %d, want %d (trace)", kind, got[kind], n)
		}
	}
	if got[obs.KindHalt] != 4 {
		t.Errorf("halt events = %d, want one per process", got[obs.KindHalt])
	}
	// Clean run: no recovery lifecycle events, single incarnation.
	if got[obs.KindRollback] != 0 || got[obs.KindRestart] != 0 {
		t.Errorf("clean run has recovery events: %v", got)
	}
	for _, e := range rec.Events() {
		if e.Inc != 0 {
			t.Fatalf("clean run event in incarnation %d: %+v", e.Inc, e)
		}
		if e.Kind == obs.KindSend && e.Msg == nil {
			t.Fatalf("send without msg ref: %+v", e)
		}
		if e.Kind == obs.KindChkpt && (e.Chkpt == nil || len(e.VClock) != 4) {
			t.Fatalf("chkpt missing ref or clock: %+v", e)
		}
	}
}

// TestObserverSpansIncarnations injects a failure and checks the stream
// records the rollback, the restart, and events from both incarnations —
// the trace alone only keeps the final one.
func TestObserverSpansIncarnations(t *testing.T) {
	rec := obs.NewRecorder()
	res, err := sim.Run(sim.Config{
		Program:  corpus.JacobiFig1(3),
		Nproc:    4,
		Failures: []sim.Failure{{Proc: 1, AfterEvents: 8}},
		Observer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	incs := map[int]int{}
	var rollbacks, restarts int
	for _, e := range rec.Events() {
		incs[e.Inc]++
		switch e.Kind {
		case obs.KindRollback:
			rollbacks++
			if e.Proc != -1 || e.Label == "" {
				t.Errorf("rollback event = %+v", e)
			}
		case obs.KindRestart:
			restarts++
		}
	}
	if rollbacks != 1 || restarts != 1 {
		t.Errorf("rollbacks=%d restarts=%d, want 1/1", rollbacks, restarts)
	}
	if incs[0] == 0 || incs[1] == 0 {
		t.Errorf("incarnation coverage = %v, want events in both", incs)
	}
}

// TestBlockedTimeAccounting runs SaS under virtual time and checks barrier
// stalls surface in all three sinks: the blocked-time counter, the
// distributions, and block events on the observer.
func TestBlockedTimeAccounting(t *testing.T) {
	rec := obs.NewRecorder()
	tm := sim.PaperTimeModel
	res, err := sim.Run(sim.Config{
		Program:  corpus.JacobiFig1(2),
		Nproc:    4,
		Hooks:    protocol.SaS(0),
		Time:     &tm,
		Observer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Blocked <= 0 {
		t.Error("SaS run recorded no blocked wall time")
	}
	wall, okWall := res.Metrics.Hists[sim.HistBlockedWallMS]
	if !okWall || wall.Count == 0 {
		t.Errorf("no %s distribution: %v", sim.HistBlockedWallMS, res.Metrics.Hists)
	}
	stall, okStall := res.Metrics.Hists[sim.HistBarrierStallV]
	if !okStall || stall.Count == 0 {
		t.Errorf("no %s distribution: %v", sim.HistBarrierStallV, res.Metrics.Hists)
	}
	if save := res.Metrics.Hists[sim.HistChkptSaveMS]; save.Count != res.Metrics.TotalCheckpoints() {
		t.Errorf("%s count = %d, want %d checkpoints", sim.HistChkptSaveMS, save.Count, res.Metrics.TotalCheckpoints())
	}
	blocks := 0
	for _, e := range rec.Events() {
		if e.Kind == obs.KindBlock {
			blocks++
			if e.Tag != "ctrl" {
				t.Errorf("block event tag = %q", e.Tag)
			}
		}
	}
	if blocks == 0 {
		t.Error("no block events observed")
	}
	// The coordination-free scheme must stay free of all of it.
	free, err := sim.Run(sim.Config{Program: corpus.JacobiFig1(2), Nproc: 4, Time: &tm})
	if err != nil {
		t.Fatal(err)
	}
	if free.Metrics.Blocked != 0 {
		t.Errorf("appl-driven blocked = %v, want 0", free.Metrics.Blocked)
	}
	if _, ok := free.Metrics.Hists[sim.HistBarrierStallV]; ok {
		t.Error("appl-driven run recorded barrier stalls")
	}
}
