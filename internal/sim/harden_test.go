package sim

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// flakyStore fails the next `fails` Save calls with storage.ErrTransient,
// then behaves normally — the minimal model of a storage brown-out.
type flakyStore struct {
	storage.Store
	fails int64
}

func (f *flakyStore) Save(s storage.Snapshot) error {
	if atomic.AddInt64(&f.fails, -1) >= 0 {
		return fmt.Errorf("%w: injected save fault", storage.ErrTransient)
	}
	return f.Store.Save(s)
}

func TestRetryRecoversTransientSaveFaults(t *testing.T) {
	p := corpus.JacobiFig1(4)
	clean := runOK(t, p, 4)
	flaky := &flakyStore{Store: storage.NewMemory(), fails: 2}
	res := runOK(t, p, 4, func(c *Config) {
		c.Store = flaky
	})
	if res.Restarts != 0 {
		t.Fatalf("restarts = %d, want 0 (retry should absorb the faults)", res.Restarts)
	}
	if got := res.Metrics.Custom[MetricStoreRetries]; got < 2 {
		t.Errorf("%s = %d, want >= 2", MetricStoreRetries, got)
	}
	if !reflect.DeepEqual(clean.FinalVars, res.FinalVars) {
		t.Errorf("flaky-store run diverged:\nclean: %v\nflaky: %v", clean.FinalVars, res.FinalVars)
	}
}

func TestExhaustedSaveBecomesCrashAndRecovers(t *testing.T) {
	p := corpus.JacobiFig1(4)
	clean := runOK(t, p, 4)
	// Retry disabled: every injected fault immediately exhausts its save,
	// which must surface as a process crash followed by ordinary recovery —
	// never as a failed run.
	flaky := &flakyStore{Store: storage.NewMemory(), fails: 2}
	res := runOK(t, p, 4, func(c *Config) {
		c.Store = flaky
		c.MaxStoreAttempts = 1
		c.MaxRestarts = 5
	})
	if res.Restarts < 1 {
		t.Fatalf("restarts = %d, want >= 1 (save outage must crash the process)", res.Restarts)
	}
	if got := res.Metrics.Custom[MetricStoreRetryExhausted]; got < 1 {
		t.Errorf("%s = %d, want >= 1", MetricStoreRetryExhausted, got)
	}
	if got := res.Metrics.Custom[MetricSaveCrashes]; got < 1 {
		t.Errorf("%s = %d, want >= 1", MetricSaveCrashes, got)
	}
	if !reflect.DeepEqual(clean.FinalVars, res.FinalVars) {
		t.Errorf("save-outage run diverged:\nclean: %v\ngot: %v", clean.FinalVars, res.FinalVars)
	}
}

// fsyncFailStore fails the next `fails` Save calls with storage.ErrFsync —
// the fsyncgate failure mode, where the fsync error is permanent because
// the kernel may already have dropped the dirty pages.
type fsyncFailStore struct {
	storage.Store
	fails    int64
	attempts atomic.Int64
}

func (f *fsyncFailStore) Save(s storage.Snapshot) error {
	f.attempts.Add(1)
	if atomic.AddInt64(&f.fails, -1) >= 0 {
		return fmt.Errorf("%w: injected fsync failure", storage.ErrFsync)
	}
	return f.Store.Save(s)
}

// TestFsyncFailureCrashesWithoutRetry pins the fsyncgate semantics: a Save
// failing with ErrFsync must NOT be retried as if transient — it becomes a
// process crash immediately, and the run recovers through the ordinary
// rollback path to the same final state.
func TestFsyncFailureCrashesWithoutRetry(t *testing.T) {
	p := corpus.JacobiFig1(4)
	clean := runOK(t, p, 4)
	st := &fsyncFailStore{Store: storage.NewMemory(), fails: 1}
	res := runOK(t, p, 4, func(c *Config) {
		c.Store = st
		c.MaxRestarts = 5
	})
	if res.Restarts < 1 {
		t.Fatalf("restarts = %d, want >= 1 (fsync failure must crash the process)", res.Restarts)
	}
	if got := res.Metrics.Custom[MetricSaveCrashes]; got < 1 {
		t.Errorf("%s = %d, want >= 1", MetricSaveCrashes, got)
	}
	// The one failed save must not have been retried: every attempt past
	// the first belongs to replay after recovery, not backoff.
	if got := res.Metrics.Custom[MetricStoreRetries]; got != 0 {
		t.Errorf("%s = %d, want 0 — ErrFsync was retried as if transient", MetricStoreRetries, got)
	}
	if !reflect.DeepEqual(clean.FinalVars, res.FinalVars) {
		t.Errorf("fsync-failure run diverged:\nclean: %v\ngot: %v", clean.FinalVars, res.FinalVars)
	}
}

func TestConcurrentCrashesConverge(t *testing.T) {
	p := corpus.JacobiFig1(4)
	clean := runOK(t, p, 4)
	res := runOK(t, p, 4, func(c *Config) {
		c.Crashes = []Crash{
			{Inc: 0, Proc: 0, AfterEvents: 6},
			{Inc: 0, Proc: 2, AfterEvents: 6},
		}
	})
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (both crashes fall in one incarnation)", res.Restarts)
	}
	if !reflect.DeepEqual(clean.FinalVars, res.FinalVars) {
		t.Errorf("concurrent-crash run diverged:\nclean: %v\ngot: %v", clean.FinalVars, res.FinalVars)
	}
}

func TestCrashDuringRecoveryConverges(t *testing.T) {
	p := corpus.JacobiFig1(4)
	clean := runOK(t, p, 4)
	// The second crash strikes incarnation 1 — while the application is
	// still replaying from the first recovery line.
	res := runOK(t, p, 4, func(c *Config) {
		c.Crashes = []Crash{
			{Inc: 0, Proc: 1, AfterEvents: 10},
			{Inc: 1, Proc: 2, AfterEvents: 6},
		}
	})
	if res.Restarts != 2 {
		t.Fatalf("restarts = %d, want 2", res.Restarts)
	}
	if !reflect.DeepEqual(clean.FinalVars, res.FinalVars) {
		t.Errorf("crash-during-recovery run diverged:\nclean: %v\ngot: %v", clean.FinalVars, res.FinalVars)
	}
}

func TestCrashCombinesWithPositionalFailures(t *testing.T) {
	p := corpus.JacobiFig1(4)
	clean := runOK(t, p, 4)
	// A Crash and a Failures entry name the same process in the same
	// incarnation: the earlier trigger (AfterEvents 4) must win.
	res := runOK(t, p, 4, func(c *Config) {
		c.Failures = []Failure{{Proc: 1, AfterEvents: 20}}
		c.Crashes = []Crash{{Inc: 0, Proc: 1, AfterEvents: 4}}
	})
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.Restarts)
	}
	if !reflect.DeepEqual(clean.FinalVars, res.FinalVars) {
		t.Errorf("combined-schedule run diverged: %v vs %v", clean.FinalVars, res.FinalVars)
	}
}

func TestCrashValidation(t *testing.T) {
	p := corpus.JacobiFig1(3)
	if _, err := Run(Config{
		Program: p, Nproc: 3, Timeout: 5 * time.Second,
		Crashes: []Crash{{Inc: 0, Proc: 7, AfterEvents: 1}},
	}); err == nil {
		t.Error("out-of-range crash proc accepted")
	}
	if _, err := Run(Config{
		Program: p, Nproc: 3, Timeout: 5 * time.Second,
		VCrashes: []VCrash{{Inc: 0, Proc: 1, At: 1}},
	}); err == nil {
		t.Error("VCrashes without Config.Time accepted")
	}
}

func TestRetryExhaustionOnReadIsNotMaskedAsCrash(t *testing.T) {
	// Only checkpoint SAVES convert exhaustion into a crash; transient
	// exhaustion elsewhere still surfaces the typed error to the caller.
	inner := storage.NewMemory()
	rst := newRetryStore(&alwaysTransient{inner}, RetryPolicy{MaxAttempts: 3}, 1, &metrics.Counters{}, nil)
	if _, err := rst.Latest(0, 1); !errors.Is(err, storage.ErrTransient) {
		t.Fatalf("err = %v, want wrapped ErrTransient", err)
	}
}

// alwaysTransient fails every operation transiently.
type alwaysTransient struct{ storage.Store }

func (a *alwaysTransient) Latest(proc, idx int) (storage.Snapshot, error) {
	return storage.Snapshot{}, fmt.Errorf("%w: down", storage.ErrTransient)
}
