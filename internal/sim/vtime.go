package sim

// Virtual-time accounting. When Config.Time is set, every process carries
// a virtual clock (abstract seconds) advanced by the §4 cost parameters:
// computation cost, per-message setup w_m paid by the sender, propagation
// delay to the receiver, checkpoint overhead o, and recovery overhead R
// after a rollback. Control messages and markers pay the same costs as
// application messages, so coordination overhead (M in the paper's model)
// shows up as measured time — the runtime counterpart of the Figure 8/9
// analysis.
//
// Receive semantics: a message becomes available at
// senderVTime(after setup) + Delay; the receiver's clock advances to
// max(own, arrival). Barriers therefore synchronize clocks to the slowest
// participant plus the message costs, exactly as a real stop-the-world
// protocol would.

// TimeModel prices the runtime's events in abstract seconds.
type TimeModel struct {
	// Compute is the cost of one assignment or one unit of work(n).
	Compute float64
	// Setup is w_m: per-message setup time paid by the sender (applies to
	// application, control, and marker messages alike).
	Setup float64
	// Delay is the propagation time from sender to receiver.
	Delay float64
	// CheckpointOverhead is o: the sender-side cost of taking one local
	// checkpoint.
	CheckpointOverhead float64
	// Recovery is R: the restart cost added to every process's clock when
	// the application rolls back.
	Recovery float64
}

// PaperTimeModel mirrors the §4 constants (o = 1.78 s, R = 3.32 s) with a
// 1 ms message setup, zero propagation (w_b·bits is negligible for 8-bit
// control messages), and 1 ms per computation step.
var PaperTimeModel = TimeModel{
	Compute:            0.001,
	Setup:              0.001,
	Delay:              0,
	CheckpointOverhead: 1.78,
	Recovery:           3.32,
}

// VFailure schedules a crash in virtual time: the process fails when its
// virtual clock reaches At. Like Failures, entry k applies to
// incarnation k.
type VFailure struct {
	Proc int
	At   float64
}

// advance adds d to the process clock and applies the virtual-time failure
// trigger.
func (p *Proc) advance(d float64) error {
	if p.time == nil {
		return nil
	}
	p.vtime += d
	return p.checkVFail()
}

// syncTo raises the clock to at least t (message arrival).
func (p *Proc) syncTo(t float64) error {
	if p.time == nil {
		return nil
	}
	if t > p.vtime {
		p.vtime = t
	}
	return p.checkVFail()
}

func (p *Proc) checkVFail() error {
	if p.vfailAt >= 0 && p.vtime >= p.vfailAt {
		p.vfailAt = -1
		return &procFailure{proc: p.rank, vtime: p.vtime}
	}
	return nil
}

// VTime returns the process's current virtual clock.
func (p *Proc) VTime() float64 { return p.vtime }

// procFailure wraps ErrProcFailed with the virtual time of the crash so
// the runtime can restart the application at failure time + R.
type procFailure struct {
	proc  int
	vtime float64
}

func (e *procFailure) Error() string {
	return ErrProcFailed.Error()
}

func (e *procFailure) Unwrap() error { return ErrProcFailed }

// arrival computes a message's availability time at the receiver, charging
// the sender's clock with the setup cost first. Returns the arrival time.
func (p *Proc) chargeSend() (float64, error) {
	if p.time == nil {
		return 0, nil
	}
	if err := p.advance(p.time.Setup); err != nil {
		return 0, err
	}
	return p.vtime + p.time.Delay, nil
}
