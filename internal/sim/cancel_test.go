package sim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/mpl"
	"repro/internal/storage"
)

func TestCancelBeforeStartReturnsErrCanceled(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	_, err := Run(Config{
		Program: corpus.JacobiFig1(3), Nproc: 3,
		Timeout: 5 * time.Second, Cancel: cancel,
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestCancelAbortsBlockedIncarnation(t *testing.T) {
	// Rank 0 checkpoints, then blocks on a receive nobody answers. Without
	// cancellation only the (long) watchdog would end the run; the cancel
	// must abort it promptly, return ErrCanceled, and leave the checkpoint
	// in the store — the job is parked, not lost.
	p, err := mpl.Parse(`
program parkme
var x
proc {
    chkpt
    if rank == 0 {
        recv(1, x)
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	st := storage.NewMemory()
	cancel := make(chan struct{})
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := Run(Config{
			Program: p, Nproc: 2, Store: st,
			Timeout: 30 * time.Second, Cancel: cancel,
		})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancel did not end the run")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancel took %v, want prompt abort", elapsed)
	}
	snaps, err := st.List(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Error("canceled run lost its checkpoint: store empty for proc 0")
	}
}
