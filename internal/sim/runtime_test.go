package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/mpl"
	"repro/internal/recovery"
	"repro/internal/trace"
)

// runOK runs a program with the application-driven scheme and fails the
// test on error.
func runOK(t *testing.T, p *mpl.Program, n int, extra ...func(*Config)) *Result {
	t.Helper()
	cfg := Config{Program: p, Nproc: n, Timeout: 20 * time.Second}
	for _, f := range extra {
		f(&cfg)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%s, n=%d): %v", p.Name, n, err)
	}
	return res
}

// checkStraightCuts verifies that every complete straight cut of the trace
// is (or is not) a recovery line.
func checkStraightCuts(t *testing.T, tr *trace.Trace, wantConsistent bool) {
	t.Helper()
	idxs := tr.CheckpointIndexes()
	if len(idxs) == 0 {
		t.Fatal("no checkpoints recorded")
	}
	for _, i := range idxs {
		cut, err := tr.StraightCut(i)
		if err != nil {
			continue // some process never reached index i
		}
		got := trace.IsRecoveryLine(cut)
		if got != wantConsistent {
			a, b, _ := trace.FirstViolation(cut)
			t.Errorf("straight cut R_%d consistent = %v, want %v (violation %v -> %v)",
				i, got, wantConsistent, a, b)
		}
	}
}

func TestJacobiFig1StraightCutsAreRecoveryLines(t *testing.T) {
	res := runOK(t, corpus.JacobiFig1(4), 4)
	if err := trace.Validate(res.Trace); err != nil {
		t.Fatal(err)
	}
	checkStraightCuts(t, res.Trace, true)
	// Cross-check clocks against structural happened-before.
	h, err := trace.NewHB(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.CheckClockConsistency(); err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Checkpoints == 0 || res.Metrics.AppMessages == 0 {
		t.Errorf("metrics empty: %v", res.Metrics)
	}
	if res.Metrics.CtrlMessages != 0 {
		t.Errorf("application-driven run sent %d control messages (must be 0)", res.Metrics.CtrlMessages)
	}
}

func TestJacobiFig2UntransformedViolates(t *testing.T) {
	// The paper's Figure 3: with even ranks checkpointing before the
	// exchange and odd ranks after, C_even happens-before C_odd.
	res := runOK(t, corpus.JacobiFig2(3), 4)
	checkStraightCuts(t, res.Trace, false)
}

func TestJacobiFig2TransformedIsSafe(t *testing.T) {
	rep, err := core.Transform(corpus.JacobiFig2(3), core.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	res := runOK(t, rep.Program, 4)
	checkStraightCuts(t, res.Trace, true)
}

func TestFinalStateMatchesAcrossSchedules(t *testing.T) {
	// Deterministic programs give identical results on every run.
	p := corpus.JacobiFig1(3)
	a := runOK(t, p, 4)
	b := runOK(t, p, 4)
	if !reflect.DeepEqual(a.FinalVars, b.FinalVars) {
		t.Errorf("final states differ:\n%v\n%v", a.FinalVars, b.FinalVars)
	}
}

func TestFailureRecoveryPreservesResult(t *testing.T) {
	for _, tc := range []struct {
		name string
		prog *mpl.Program
		n    int
	}{
		{"jacobi_fig1", corpus.JacobiFig1(4), 4},
		{"ring", corpus.Ring(3), 3},
		{"masterworker", corpus.MasterWorker(3), 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clean := runOK(t, tc.prog, tc.n)
			failed := runOK(t, tc.prog, tc.n, func(c *Config) {
				c.Failures = []Failure{{Proc: 1, AfterEvents: 8}}
			})
			if failed.Restarts != 1 {
				t.Fatalf("restarts = %d, want 1", failed.Restarts)
			}
			if !reflect.DeepEqual(clean.FinalVars, failed.FinalVars) {
				t.Errorf("failure run diverged:\nclean: %v\nfailed: %v",
					clean.FinalVars, failed.FinalVars)
			}
		})
	}
}

func TestTransformedFig2SurvivesFailures(t *testing.T) {
	rep, err := core.Transform(corpus.JacobiFig2(4), core.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	clean := runOK(t, rep.Program, 4)
	// Inject failures at several points; recovery must always find a
	// consistent straight cut (Theorem 3.2 at runtime).
	for _, after := range []int{5, 15, 30, 50} {
		failed := runOK(t, rep.Program, 4, func(c *Config) {
			c.Failures = []Failure{{Proc: 2, AfterEvents: after}}
		})
		if !reflect.DeepEqual(clean.FinalVars, failed.FinalVars) {
			t.Errorf("after=%d: diverged: %v vs %v", after, clean.FinalVars, failed.FinalVars)
		}
	}
}

func TestUntransformedFig2RecoveryIsInconsistent(t *testing.T) {
	// Without the transformation, the straight cut chosen at recovery is
	// NOT a recovery line; the recovery layer must detect and report it.
	p := corpus.JacobiFig2(4)
	_, err := Run(Config{
		Program:  p,
		Nproc:    4,
		Failures: []Failure{{Proc: 1, AfterEvents: 40}},
		Timeout:  20 * time.Second,
	})
	if err == nil {
		t.Skip("failure hit before checkpoints diverged; nothing to detect")
	}
	if !errors.Is(err, recovery.ErrInconsistentCut) {
		t.Fatalf("err = %v, want ErrInconsistentCut", err)
	}
}

func TestFailureBeforeAnyCheckpointRestartsFromScratch(t *testing.T) {
	p := corpus.JacobiFig1(3)
	clean := runOK(t, p, 3)
	failed := runOK(t, p, 3, func(c *Config) {
		c.Failures = []Failure{{Proc: 0, AfterEvents: 1}} // before first chkpt
	})
	if failed.Restarts != 1 {
		t.Fatalf("restarts = %d", failed.Restarts)
	}
	if !reflect.DeepEqual(clean.FinalVars, failed.FinalVars) {
		t.Errorf("scratch restart diverged: %v vs %v", clean.FinalVars, failed.FinalVars)
	}
}

func TestMultipleFailures(t *testing.T) {
	p := corpus.JacobiFig1(5)
	clean := runOK(t, p, 4)
	failed := runOK(t, p, 4, func(c *Config) {
		c.Failures = []Failure{
			{Proc: 0, AfterEvents: 12},
			{Proc: 3, AfterEvents: 6},
			{Proc: 1, AfterEvents: 4},
		}
	})
	if failed.Restarts < 2 {
		t.Fatalf("restarts = %d, want at least 2", failed.Restarts)
	}
	if !reflect.DeepEqual(clean.FinalVars, failed.FinalVars) {
		t.Errorf("multi-failure run diverged: %v vs %v", clean.FinalVars, failed.FinalVars)
	}
}

func TestDeadlockDetected(t *testing.T) {
	p, err := mpl.Parse(`
program dead
var x
proc {
    if rank == 0 {
        recv(1, x)
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{Program: p, Nproc: 2, Timeout: 200 * time.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestEvalErrorSurfaces(t *testing.T) {
	p, err := mpl.Parse(`
program boom
var x
proc {
    x = 1 / (rank - rank)
}
`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{Program: p, Nproc: 2, Timeout: 5 * time.Second})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v, want division by zero", err)
	}
}

func TestInputDataFlows(t *testing.T) {
	p, err := mpl.Parse(`
program inputs
var x
proc {
    x = input(rank)
}
`)
	if err != nil {
		t.Fatal(err)
	}
	res := runOK(t, p, 3, func(c *Config) {
		c.Input = func(rank, i int) int { return 100*rank + i }
	})
	for r, vars := range res.FinalVars {
		if want := 100*r + r; vars["x"] != want {
			t.Errorf("proc %d x = %d, want %d", r, vars["x"], want)
		}
	}
}

func TestBcastDeliversRootValue(t *testing.T) {
	res := runOK(t, corpus.MasterWorker(2), 4)
	checkStraightCuts(t, res.Trace, true)
	if err := trace.Validate(res.Trace); err != nil {
		t.Fatal(err)
	}
}

func TestWholeCorpusRunsAndValidates(t *testing.T) {
	for name, p := range corpus.All() {
		if name == "irregular" {
			continue // needs input data; covered below
		}
		t.Run(name, func(t *testing.T) {
			res := runOK(t, p, 4)
			if err := trace.Validate(res.Trace); err != nil {
				t.Fatal(err)
			}
			h, err := trace.NewHB(res.Trace)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.CheckClockConsistency(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestIrregularProgramRuns(t *testing.T) {
	// n=2: rank 0 sends to input(0)+1 = 1, rank 1 receives from 0.
	res := runOK(t, corpus.Irregular(), 2, func(c *Config) {
		c.Input = func(rank, i int) int { return 0 }
	})
	// Rank 0 sent to rank 1.
	if res.FinalVars[1]["v"] != res.FinalVars[0]["v"] {
		t.Errorf("irregular send not delivered: %v", res.FinalVars)
	}
}

// TestPropertyTransformedRandomProgramsSafe is the end-to-end property
// test of the paper's contribution: random SPMD programs with arbitrary
// checkpoint placements, once transformed, execute with every straight cut
// being a recovery line — and survive failure injection with unchanged
// results.
func TestPropertyTransformedRandomProgramsSafe(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short")
	}
	input := func(rank, i int) int { return rank ^ i }
	for seed := int64(0); seed < 25; seed++ {
		p := corpus.Random(seed)
		rep, err := core.Transform(p, core.DefaultConfig)
		if err != nil {
			t.Fatalf("seed %d: transform: %v", seed, err)
		}
		for _, n := range []int{2, 3, 5} {
			res, err := Run(Config{
				Program: rep.Program, Nproc: n, Input: input,
				Timeout: 20 * time.Second,
			})
			if err != nil {
				t.Fatalf("seed %d n=%d: %v\n%s", seed, n, err, mpl.Format(rep.Program))
			}
			if err := trace.Validate(res.Trace); err != nil {
				t.Fatalf("seed %d n=%d: %v", seed, n, err)
			}
			for _, i := range res.Trace.CheckpointIndexes() {
				cut, err := res.Trace.StraightCut(i)
				if err != nil {
					continue
				}
				if !trace.IsRecoveryLine(cut) {
					a, b, _ := trace.FirstViolation(cut)
					t.Fatalf("seed %d n=%d: R_%d violated (%v -> %v)\n%s",
						seed, n, i, a, b, mpl.Format(rep.Program))
				}
			}
			// Failure injection must reproduce the clean result.
			failed, err := Run(Config{
				Program: rep.Program, Nproc: n, Input: input,
				Failures: []Failure{{Proc: seedProc(seed, n), AfterEvents: 12}},
				Timeout:  20 * time.Second,
			})
			if err != nil {
				t.Fatalf("seed %d n=%d failure run: %v\n%s",
					seed, n, err, mpl.Format(rep.Program))
			}
			if !reflect.DeepEqual(res.FinalVars, failed.FinalVars) {
				t.Fatalf("seed %d n=%d: failure run diverged", seed, n)
			}
		}
	}
}

func seedProc(seed int64, n int) int { return int(seed) % n }

func BenchmarkRunJacobiFig1(b *testing.B) {
	p := corpus.JacobiFig1(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Program: p, Nproc: 4, DisableTrace: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunWithFailure(b *testing.B) {
	p := corpus.JacobiFig1(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{
			Program: p, Nproc: 4, DisableTrace: true,
			Failures: []Failure{{Proc: 1, AfterEvents: 20}},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
