package sim

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/mpl"
	"repro/internal/storage"
	"repro/internal/trace"
)

func mustParseProg(t *testing.T, src string) *mpl.Program {
	t.Helper()
	p, err := mpl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFileBackedStoreRecovery runs the full crash/recover cycle against
// the durable file store: checkpoints are written as CRC-framed files and
// read back for the restart.
func TestFileBackedStoreRecovery(t *testing.T) {
	st, err := storage.NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := corpus.JacobiFig1(4)
	clean := runOK(t, p, 4)
	failed := runOK(t, p, 4, func(c *Config) {
		c.Store = st
		c.Failures = []Failure{{Proc: 2, AfterEvents: 20}}
	})
	if failed.Restarts != 1 {
		t.Fatalf("restarts = %d", failed.Restarts)
	}
	if !reflect.DeepEqual(clean.FinalVars, failed.FinalVars) {
		t.Errorf("file-store recovery diverged")
	}
	// The store holds complete straight cuts.
	indexes, err := st.Indexes(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(indexes) == 0 {
		t.Error("no complete indexes in file store")
	}
}

// TestIncrementalStoreRecovery runs crash/recover against the delta-
// encoded incremental store: reconstruction chains must survive rollback
// pruning (newest-first unwinding) and replay.
func TestIncrementalStoreRecovery(t *testing.T) {
	p := corpus.JacobiFig1(5)
	clean := runOK(t, p, 4)
	for _, fullEvery := range []int{1, 2, 4} {
		inc := storage.NewIncremental(fullEvery)
		failed := runOK(t, p, 4, func(c *Config) {
			c.Store = inc
			c.Failures = []Failure{{Proc: 2, AfterEvents: 20}}
		})
		if failed.Restarts != 1 {
			t.Fatalf("fullEvery=%d: restarts = %d", fullEvery, failed.Restarts)
		}
		if !reflect.DeepEqual(clean.FinalVars, failed.FinalVars) {
			t.Errorf("fullEvery=%d: incremental-store recovery diverged", fullEvery)
		}
	}
}

// TestLargerScale exercises n=16 (beyond the attr solver's default bound
// of 17, checking end-to-end behavior at the edge of the analysis range).
func TestLargerScale(t *testing.T) {
	rep, err := core.Transform(corpus.JacobiFig2(3), core.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	res := runOK(t, rep.Program, 16)
	checkStraightCuts(t, res.Trace, true)
	if err := trace.Validate(res.Trace); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleSweepDeterministicResults varies the real-time interleaving
// with jitter seeds: results, straight-cut consistency, and metrics of a
// deterministic program must be schedule-invariant.
func TestScheduleSweepDeterministicResults(t *testing.T) {
	rep, err := core.Transform(corpus.JacobiFig2(3), core.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	var baseline *Result
	for seed := int64(0); seed < 6; seed++ {
		res := runOK(t, rep.Program, 4, func(c *Config) { c.Jitter = seed })
		checkStraightCuts(t, res.Trace, true)
		if baseline == nil {
			baseline = res
			continue
		}
		if !reflect.DeepEqual(baseline.FinalVars, res.FinalVars) {
			t.Fatalf("seed %d: results changed with schedule", seed)
		}
		if baseline.Metrics.AppMessages != res.Metrics.AppMessages {
			t.Fatalf("seed %d: message count changed with schedule", seed)
		}
	}
}

// TestRepeatedRunsShareNetworklessState ensures two sequential Run calls
// with the same config are fully independent (no leaked globals).
func TestRepeatedRunsIndependent(t *testing.T) {
	p := corpus.Ring(2)
	a := runOK(t, p, 3)
	b := runOK(t, p, 3)
	if a.Metrics.AppMessages != b.Metrics.AppMessages {
		t.Errorf("app messages differ: %d vs %d", a.Metrics.AppMessages, b.Metrics.AppMessages)
	}
	if !reflect.DeepEqual(a.FinalVars, b.FinalVars) {
		t.Error("final states differ across runs")
	}
}

// TestFailureAtEveryPoint sweeps the crash point across the whole
// execution of the transformed Fig2 — recovery must succeed and reproduce
// the clean result regardless of when the crash lands.
func TestFailureAtEveryPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short")
	}
	rep, err := core.Transform(corpus.JacobiFig2(3), core.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	clean := runOK(t, rep.Program, 3)
	maxEvents := 0
	for _, h := range clean.Trace.Events() {
		if len(h) > maxEvents {
			maxEvents = len(h)
		}
	}
	for victim := 0; victim < 3; victim++ {
		for after := 1; after <= maxEvents; after += 3 {
			failed, err := Run(Config{
				Program:  rep.Program,
				Nproc:    3,
				Failures: []Failure{{Proc: victim, AfterEvents: after}},
				Timeout:  20 * time.Second,
			})
			if err != nil {
				t.Fatalf("victim %d after %d: %v", victim, after, err)
			}
			if !reflect.DeepEqual(clean.FinalVars, failed.FinalVars) {
				t.Fatalf("victim %d after %d: diverged", victim, after)
			}
		}
	}
}

// TestCrashDuringRecoverySweep sweeps crash points across incarnation 1 —
// the crash strikes while the application is replaying from the first
// recovery line — and across a three-deep cascade (incarnations 0, 1, 2).
// Every schedule must converge to the clean result.
func TestCrashDuringRecoverySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short")
	}
	rep, err := core.Transform(corpus.JacobiFig2(3), core.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	clean := runOK(t, rep.Program, 3)
	hitIncOne := 0
	for victim := 0; victim < 3; victim++ {
		for after := 1; after <= 40; after += 4 {
			failed, err := Run(Config{
				Program: rep.Program,
				Nproc:   3,
				// Proc 0 is always active in this program (rank 2's
				// partner is out of range, so rank 2 idles early); anchor
				// the first crash there so incarnation 1 always exists.
				Crashes: []Crash{
					{Inc: 0, Proc: 0, AfterEvents: 10},
					{Inc: 1, Proc: victim, AfterEvents: after},
				},
				Timeout: 20 * time.Second,
			})
			if err != nil {
				t.Fatalf("victim %d after %d in inc 1: %v", victim, after, err)
			}
			// A crash point past the end of the replay never fires, so
			// restarts is 1 or 2 depending on where the sweep landed.
			switch failed.Restarts {
			case 1:
			case 2:
				hitIncOne++
			default:
				t.Fatalf("victim %d after %d: restarts = %d, want 1 or 2", victim, after, failed.Restarts)
			}
			if !reflect.DeepEqual(clean.FinalVars, failed.FinalVars) {
				t.Fatalf("victim %d after %d in inc 1: diverged", victim, after)
			}
		}
	}
	if hitIncOne == 0 {
		t.Fatal("no sweep point crashed incarnation 1 — the sweep tested nothing")
	}
	// Three-deep cascade with concurrent crashes in the middle incarnation.
	failed, err := Run(Config{
		Program: rep.Program,
		Nproc:   3,
		Crashes: []Crash{
			{Inc: 0, Proc: 0, AfterEvents: 10},
			{Inc: 1, Proc: 0, AfterEvents: 8},
			{Inc: 1, Proc: 1, AfterEvents: 8},
			{Inc: 2, Proc: 1, AfterEvents: 12},
		},
		Timeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed.Restarts < 2 {
		t.Fatalf("cascade restarts = %d, want >= 2", failed.Restarts)
	}
	if !reflect.DeepEqual(clean.FinalVars, failed.FinalVars) {
		t.Fatal("cascade diverged")
	}
}

// TestStoreHoldsLatestInstancesOnly verifies rollback pruning: after a
// recovery, the store never holds two snapshots claiming the same
// (proc,index,instance) and replay regenerates the pruned suffix.
func TestRollbackPruningAndRegeneration(t *testing.T) {
	p := corpus.JacobiFig1(4)
	clean := runOK(t, p, 3)
	failed := runOK(t, p, 3, func(c *Config) {
		c.Failures = []Failure{{Proc: 0, AfterEvents: 18}}
	})
	// After recovery and replay, both stores hold the same number of
	// checkpoints per process (replay regenerated the pruned ones).
	for proc := 0; proc < 3; proc++ {
		a, err := clean.Store.List(proc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := failed.Store.List(proc)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Errorf("proc %d: clean store has %d snapshots, failed-run store %d",
				proc, len(a), len(b))
		}
	}
}

// TestBcastFromNonzeroRoot covers the collective with a non-default root.
func TestBcastFromNonzeroRoot(t *testing.T) {
	src := `
program rootcast
var v
proc {
    v = rank * 10
    chkpt
    bcast(2, v)
}
`
	p := mustParseProg(t, src)
	res := runOK(t, p, 4)
	for r, vars := range res.FinalVars {
		if vars["v"] != 20 {
			t.Errorf("rank %d v = %d, want 20 (root 2's value)", r, vars["v"])
		}
	}
}

// TestBcastRootOutOfRange surfaces a clear error.
func TestBcastRootOutOfRange(t *testing.T) {
	src := `
program badroot
var v
proc {
    bcast(9, v)
}
`
	p := mustParseProg(t, src)
	if _, err := Run(Config{Program: p, Nproc: 2, Timeout: 5 * time.Second}); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

// TestStepBudgetEnforced catches runaway loops.
func TestStepBudgetEnforced(t *testing.T) {
	src := `
program forever
var x
proc {
    while 1 {
        x = x + 1
    }
}
`
	p := mustParseProg(t, src)
	_, err := Run(Config{Program: p, Nproc: 1, MaxSteps: 1000, Timeout: 5 * time.Second})
	if err == nil {
		t.Fatal("infinite loop not stopped")
	}
}
