package sim

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/mpl"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestVTimeStraightLine(t *testing.T) {
	src := `
program vt
var x
proc {
    x = 1
    work(5)
    chkpt
}
`
	p := mustParseProg(t, src)
	tm := &TimeModel{Compute: 2, Setup: 1, CheckpointOverhead: 10}
	res, err := Run(Config{Program: p, Nproc: 1, Time: tm, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// assign (2) + work 5 units (10) + chkpt (10) = 22.
	if !almostEqual(res.VTime, 22) {
		t.Fatalf("VTime = %v, want 22", res.VTime)
	}
	if len(res.VTimes) != 1 || !almostEqual(res.VTimes[0], 22) {
		t.Fatalf("VTimes = %v", res.VTimes)
	}
}

func TestVTimeMessageSynchronizes(t *testing.T) {
	src := `
program sync
var x
proc {
    if rank == 0 {
        work(100)
        x = 7
        send(1, x)
    } else {
        recv(0, x)
    }
}
`
	p := mustParseProg(t, src)
	tm := &TimeModel{Compute: 1, Setup: 2, Delay: 3}
	res, err := Run(Config{Program: p, Nproc: 2, Time: tm, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// P0: work 100 + assign 1 + setup 2 = 103; arrival = 103 + 3 = 106.
	if !almostEqual(res.VTimes[0], 103) {
		t.Errorf("sender vtime = %v, want 103", res.VTimes[0])
	}
	if !almostEqual(res.VTimes[1], 106) {
		t.Errorf("receiver vtime = %v, want 106 (arrival)", res.VTimes[1])
	}
}

func TestVTimeZeroWithoutModel(t *testing.T) {
	res := runOK(t, corpus.JacobiFig1(2), 2)
	if res.VTime != 0 {
		t.Fatalf("VTime = %v without a time model", res.VTime)
	}
}

func TestVTimeDeterministic(t *testing.T) {
	p := corpus.JacobiFig1(3)
	tm := &TimeModel{Compute: 1, Setup: 0.5, Delay: 0.25, CheckpointOverhead: 5}
	a, err := Run(Config{Program: p, Nproc: 4, Time: tm, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Program: p, Nproc: 4, Time: tm, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.VTimes, b.VTimes) {
		t.Errorf("vtimes differ across runs: %v vs %v", a.VTimes, b.VTimes)
	}
}

func TestVTimeCheckpointOverheadMeasurable(t *testing.T) {
	// The same workload with and without checkpoint statements: the
	// virtual-time difference is exactly iterations × o per process chain.
	withCk := corpus.JacobiFig1(4)
	without := mpl.Clone(withCk)
	stripCheckpoints(without)

	tm := &TimeModel{Compute: 1, Setup: 0.1, Delay: 0.1, CheckpointOverhead: 7}
	a, err := Run(Config{Program: withCk, Nproc: 3, Time: tm, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Program: without, Nproc: 3, Time: tm, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	diff := a.VTime - b.VTime
	// Each of the 4 iterations pays o=7 on the critical path.
	if !almostEqual(diff, 4*7) {
		t.Errorf("checkpoint overhead on makespan = %v, want 28", diff)
	}
}

// stripCheckpoints removes all chkpt statements in place.
func stripCheckpoints(p *mpl.Program) {
	var fix func(body []mpl.Stmt) []mpl.Stmt
	fix = func(body []mpl.Stmt) []mpl.Stmt {
		out := body[:0]
		for _, s := range body {
			if _, ok := s.(*mpl.Chkpt); ok {
				continue
			}
			switch st := s.(type) {
			case *mpl.While:
				st.Body = fix(st.Body)
			case *mpl.If:
				st.Then = fix(st.Then)
				st.Else = fix(st.Else)
			}
			out = append(out, s)
		}
		return out
	}
	p.Body = fix(p.Body)
}

func TestVFailureTriggersRecoveryAndPaysForIt(t *testing.T) {
	p := corpus.JacobiFig1(4)
	tm := &TimeModel{Compute: 1, Setup: 0.1, Delay: 0.1, CheckpointOverhead: 2, Recovery: 9}
	clean, err := Run(Config{Program: p, Nproc: 3, Time: tm, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	failed, err := Run(Config{
		Program:   p,
		Nproc:     3,
		Time:      tm,
		VFailures: []VFailure{{Proc: 1, At: clean.VTime / 2}},
		Timeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", failed.Restarts)
	}
	if !reflect.DeepEqual(clean.FinalVars, failed.FinalVars) {
		t.Error("vfailure run diverged")
	}
	// The failed run must cost at least the clean time plus R (lost work
	// and recovery are re-paid).
	if failed.VTime < clean.VTime+tm.Recovery {
		t.Errorf("failed VTime = %v, want >= clean %v + R %v",
			failed.VTime, clean.VTime, tm.Recovery)
	}
}

func TestVFailureRequiresTimeModel(t *testing.T) {
	_, err := Run(Config{
		Program:   corpus.JacobiFig1(1),
		Nproc:     2,
		VFailures: []VFailure{{Proc: 0, At: 1}},
		Timeout:   5 * time.Second,
	})
	if err == nil {
		t.Fatal("VFailures without Time accepted")
	}
}

func BenchmarkVTimeRun(b *testing.B) {
	p := corpus.JacobiFig1(4)
	tm := &TimeModel{Compute: 1, Setup: 0.1, Delay: 0.1, CheckpointOverhead: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Program: p, Nproc: 4, Time: tm, DisableTrace: true}); err != nil {
			b.Fatal(err)
		}
	}
}
