package sim

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/vclock"
)

func TestRetryPolicyDefaults(t *testing.T) {
	tests := []struct {
		name string
		in   RetryPolicy
		want RetryPolicy
	}{
		{
			name: "zero value selects the documented defaults",
			in:   RetryPolicy{},
			want: RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond, JitterFrac: 0.5},
		},
		{
			name: "negative fields also select defaults",
			in:   RetryPolicy{MaxAttempts: -1, BaseDelay: -time.Second, MaxDelay: -time.Second},
			want: RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond, JitterFrac: 0.5},
		},
		{
			name: "negative jitter disables jitter",
			in:   RetryPolicy{JitterFrac: -1},
			want: RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond, JitterFrac: 0},
		},
		{
			name: "explicit fields survive",
			in:   RetryPolicy{MaxAttempts: 2, BaseDelay: 3 * time.Millisecond, MaxDelay: 9 * time.Millisecond, JitterFrac: 0.25},
			want: RetryPolicy{MaxAttempts: 2, BaseDelay: 3 * time.Millisecond, MaxDelay: 9 * time.Millisecond, JitterFrac: 0.25},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.in.withDefaults()
			got.Budget = nil
			if got != tt.want {
				t.Errorf("withDefaults() = %+v, want %+v", got, tt.want)
			}
		})
	}
}

func TestRetryPolicyBackoffSchedule(t *testing.T) {
	tests := []struct {
		name   string
		policy RetryPolicy
		retry  int
		want   time.Duration
	}{
		{"default first retry", RetryPolicy{}, 1, time.Millisecond},
		{"default doubles", RetryPolicy{}, 2, 2 * time.Millisecond},
		{"default keeps doubling", RetryPolicy{}, 5, 16 * time.Millisecond},
		{"default hits cap", RetryPolicy{}, 7, 50 * time.Millisecond},
		{"default stays at cap", RetryPolicy{}, 100, 50 * time.Millisecond},
		{"custom base", RetryPolicy{BaseDelay: 4 * time.Millisecond}, 2, 8 * time.Millisecond},
		{"custom cap clamps", RetryPolicy{BaseDelay: 4 * time.Millisecond, MaxDelay: 5 * time.Millisecond}, 2, 5 * time.Millisecond},
		{"base above cap clamps immediately", RetryPolicy{BaseDelay: time.Second, MaxDelay: 10 * time.Millisecond}, 1, 10 * time.Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.policy.Backoff(tt.retry); got != tt.want {
				t.Errorf("Backoff(%d) = %v, want %v", tt.retry, got, tt.want)
			}
		})
	}
}

func TestRetryStoreHonorsAttemptCap(t *testing.T) {
	for _, attempts := range []int{1, 2, 5} {
		t.Run(fmt.Sprintf("attempts=%d", attempts), func(t *testing.T) {
			var calls atomic.Int64
			st := &countingTransient{calls: &calls}
			c := &metrics.Counters{}
			rst := newRetryStore(st, RetryPolicy{
				MaxAttempts: attempts,
				BaseDelay:   time.Microsecond,
				MaxDelay:    time.Microsecond,
				JitterFrac:  -1,
			}, 1, c, nil)
			_, err := rst.Latest(0, 1)
			if !errors.Is(err, storage.ErrTransient) {
				t.Fatalf("err = %v, want wrapped ErrTransient", err)
			}
			if got := calls.Load(); got != int64(attempts) {
				t.Errorf("inner store called %d times, want %d", got, attempts)
			}
			snap := c.Snapshot()
			if got := snap.Custom[MetricStoreRetries]; got != int64(attempts-1) {
				t.Errorf("%s = %d, want %d", MetricStoreRetries, got, attempts-1)
			}
			if got := snap.Custom[MetricStoreRetryExhausted]; got != 1 {
				t.Errorf("%s = %d, want 1", MetricStoreRetryExhausted, got)
			}
		})
	}
}

// fixedBudget allows the first n retries and denies the rest.
type fixedBudget struct{ left atomic.Int64 }

func (b *fixedBudget) AllowRetry(op string) bool {
	return b.left.Add(-1) >= 0
}

func TestRetryBudgetDenialStopsRetrying(t *testing.T) {
	var calls atomic.Int64
	st := &countingTransient{calls: &calls}
	budget := &fixedBudget{}
	budget.left.Store(2)
	c := &metrics.Counters{}
	rst := newRetryStore(st, RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Microsecond,
		JitterFrac:  -1,
		Budget:      budget,
	}, 1, c, nil)
	_, err := rst.Latest(0, 1)
	if !errors.Is(err, storage.ErrTransient) {
		t.Fatalf("err = %v, want wrapped ErrTransient", err)
	}
	// 1 initial try + 2 funded retries; the third retry is denied.
	if got := calls.Load(); got != 3 {
		t.Errorf("inner store called %d times, want 3", got)
	}
	snap := c.Snapshot()
	if got := snap.Custom[MetricStoreRetryDenied]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricStoreRetryDenied, got)
	}
	if got := snap.Custom[MetricStoreRetryExhausted]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricStoreRetryExhausted, got)
	}
	if got := snap.Custom[MetricStoreRetries]; got != 2 {
		t.Errorf("%s = %d, want 2", MetricStoreRetries, got)
	}
}

func TestRetryBudgetNotChargedOnSuccess(t *testing.T) {
	budget := &fixedBudget{}
	budget.left.Store(100)
	rst := newRetryStore(storage.NewMemory(), RetryPolicy{Budget: budget}, 1, &metrics.Counters{}, nil)
	if err := rst.Save(storage.Snapshot{Proc: 0, CFGIndex: 1, Instance: 1, Clock: vclock.VC{1}}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if got := budget.left.Load(); got != 100 {
		t.Errorf("budget charged %d retries for a first-try success", 100-got)
	}
}

// countingTransient fails every operation transiently and counts calls.
type countingTransient struct {
	storage.Store
	calls *atomic.Int64
}

func (c *countingTransient) Latest(proc, idx int) (storage.Snapshot, error) {
	c.calls.Add(1)
	return storage.Snapshot{}, fmt.Errorf("%w: down", storage.ErrTransient)
}
