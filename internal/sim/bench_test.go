package sim

// Microbenchmarks of the simulator's per-message hot path. These pin the
// allocation cuts of the parallel sweep engine PR: frame pooling and
// window compaction in the hardened transport, and the head-indexed
// delivery queues. scripts/bench.sh records them into BENCH_simcore.json.

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

// BenchmarkTransportRoundTrip measures one full hardened-transport cycle —
// send through the (lossless) injector, receiver resequencing, delivery
// into the queue, blocking receive, and the cumulative ack sliding the
// sender's window — with allocations reported. Frame pooling and in-place
// window compaction should hold allocs/op near the floor set by Message
// copies.
func BenchmarkTransportRoundTrip(b *testing.B) {
	net := NewNetwork(2)
	counters := &metrics.Counters{}
	net.harden(NetConfig{
		DisableDetector: true,
		RTOFloor:        100 * time.Millisecond, // quiet timers at bench speed
		RTOCap:          time.Second,
	}, counters, nil, 1)
	defer net.tr.shutdown()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(Message{Kind: MsgApp, From: 0, To: 1, Seq: i, Value: i})
		if _, err := net.Recv(0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueuePushPop measures the bare delivery queue cycle used by
// every message on the legacy reliable fabric (no transport): one push and
// one blocking pop.
func BenchmarkQueuePushPop(b *testing.B) {
	q := newQueue()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.push(Message{Kind: MsgApp, Seq: i})
		if _, err := q.pop(); err != nil {
			b.Fatal(err)
		}
	}
}
