package sim

// The hardened transport: reliable, exactly-once, per-channel-FIFO message
// delivery on top of lossy links. The in-process Network is a perfectly
// reliable fabric — the one assumption a production deployment of the
// paper's coordination-free scheme could never make — so when Config.Net is
// set, every frame (application payloads, in-band markers, out-of-band
// control traffic) instead crosses a fault injector that may drop,
// duplicate, delay, or reorder it, and this layer restores the guarantees
// the checkpoint protocol above requires:
//
//   - per-(from,to) transport sequence numbers with receiver-side
//     resequencing and duplicate suppression (exactly-once, in-order
//     delivery into the existing queues);
//   - positive cumulative acknowledgements with retransmission on timeout,
//     the timeout being srtt + 4·rttvar from a per-link netestim.Estimator
//     (RFC 6298 form) under capped exponential backoff with jitter, and
//     Karn's rule: acks of retransmitted frames contribute no RTT samples;
//   - heartbeat-based failure detection, so a peer silenced by an unhealed
//     partition is *detected* and converted into the runtime's ordinary
//     crash→recovery path instead of deadlocking the incarnation.
//
// The transport lives strictly below the checkpoint protocol: application
// sequence numbers, vector clocks, the sender-based message log, and
// recovery-line selection never see retransmissions or duplicates, so the
// layer cannot create cut-crossing messages. ResetForRecovery bumps a
// per-link generation; frames and timers from a rolled-back incarnation
// are discarded on arrival.

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/netestim"
	"repro/internal/obs"
)

// Custom metrics counter names recorded by the hardened transport; like the
// storage-hardening counters they are part of the metrics-stream contract.
const (
	// MetricNetDrops counts frames the fault injector dropped (including
	// drops caused by an active partition window).
	MetricNetDrops = "net_drops"
	// MetricNetDups counts frames the fault injector duplicated.
	MetricNetDups = "net_dups"
	// MetricNetReorders counts frames the injector held back so a
	// successor could overtake them on the wire.
	MetricNetReorders = "net_reorders"
	// MetricNetRetransmits counts frames re-sent after an ack timeout.
	MetricNetRetransmits = "net_retransmits"
	// MetricNetRTOExpired counts retransmission-timer expiries.
	MetricNetRTOExpired = "net_rto_expired"
	// MetricNetBacklogMax is the high-watermark of any delivery queue's
	// depth (a gauge recorded via Counters.Max).
	MetricNetBacklogMax = "net_backlog_max"
	// MetricHBSuspects counts peers the heartbeat failure detector
	// declared suspect (each suspicion aborts the incarnation into the
	// ordinary crash→recovery path).
	MetricHBSuspects = "hb_suspects"
	// MetricPartitionHealed counts partition windows observed to heal
	// (first frame attempted on the link after the window closed).
	MetricPartitionHealed = "partition_healed"
)

// LinkClass identifies the traffic class of a transport frame. The fault
// injector keys its decision streams on it, so ack loss is independent of
// data loss and a heartbeat drop never correlates with a payload drop.
type LinkClass int

// Frame classes carried by the transport.
const (
	LinkData      LinkClass = iota + 1 // in-band application + marker frames
	LinkCtrl                           // out-of-band protocol control frames
	LinkAck                            // transport acknowledgements
	LinkHeartbeat                      // failure-detector heartbeats
)

// String names the class for events and diagnostics.
func (c LinkClass) String() string {
	switch c {
	case LinkData:
		return "data"
	case LinkCtrl:
		return "ctrl"
	case LinkAck:
		return "ack"
	case LinkHeartbeat:
		return "heartbeat"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Verdict is a fault injector's decision for one transmission attempt of
// one frame. The zero value delivers the frame untouched.
type Verdict struct {
	// Drop loses the frame (the sender's retransmission machinery, not the
	// injector, decides what happens next).
	Drop bool
	// Duplicate delivers a second copy of the frame.
	Duplicate bool
	// Delay postpones delivery by the given wall-clock duration.
	Delay time.Duration
	// Reorder marks that Delay was drawn specifically to let a successor
	// overtake this frame (counted separately from plain delays).
	Reorder bool
	// Partitioned marks that Drop is due to an active partition window.
	Partitioned bool
	// Healed marks the first attempt on this link after a partition window
	// closed — the transport counts it as a heal observation.
	Healed bool
}

// LinkChaos decides the fate of every transport frame. Implementations
// must be reproducible from (seed, class, from, to, seq, attempt) — see
// chaos.NetChaos — and safe for concurrent use.
type LinkChaos interface {
	Verdict(class LinkClass, from, to, seq, attempt int) Verdict
}

// Transport tuning defaults. Floors and caps are configurable bounds (the
// RTO itself always comes from the per-link estimator, never a constant).
const (
	defaultHeartbeatEvery   = 5 * time.Millisecond
	defaultSuspectAfter     = 40 * defaultHeartbeatEvery
	defaultRTOFloor         = 2 * time.Millisecond
	defaultRTOCap           = 200 * time.Millisecond
	defaultBacklogWatermark = 1024
	maxBackoffShift         = 6 // retransmit backoff doublings before the cap alone rules
)

// NetConfig enables the hardened transport on a run (sim.Config.Net). The
// zero value of each field selects a sensible default; a nil *NetConfig on
// the run config keeps the legacy reliable in-process fabric, byte-for-byte
// transparent to golden tests.
type NetConfig struct {
	// Chaos is the link-level fault injector; nil hardens the transport
	// over lossless links (acks, heartbeats, and sequencing still run).
	Chaos LinkChaos
	// HeartbeatEvery is the failure detector's probe interval.
	HeartbeatEvery time.Duration
	// SuspectAfter is how long a peer may stay silent — no heartbeat, no
	// data, no ack — before the detector declares it suspect and aborts
	// the incarnation into recovery.
	SuspectAfter time.Duration
	// RTOFloor bounds the retransmission timeout from below (guards
	// against variance collapse on long-stable links).
	RTOFloor time.Duration
	// RTOCap bounds the backed-off retransmission timeout from above.
	RTOCap time.Duration
	// BacklogWatermark is the queue depth beyond which a backlog event is
	// published (chaos-induced backlog made visible instead of silent
	// memory growth).
	BacklogWatermark int
	// DisableDetector turns heartbeats and suspicion off (unit tests that
	// want deterministic transport behaviour without liveness timers).
	DisableDetector bool
}

func (c NetConfig) withDefaults() NetConfig {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = defaultHeartbeatEvery
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = defaultSuspectAfter
	}
	if c.RTOFloor <= 0 {
		c.RTOFloor = defaultRTOFloor
	}
	if c.RTOCap <= 0 {
		c.RTOCap = defaultRTOCap
	}
	if c.RTOCap < c.RTOFloor {
		c.RTOCap = c.RTOFloor
	}
	if c.BacklogWatermark <= 0 {
		c.BacklogWatermark = defaultBacklogWatermark
	}
	return c
}

// transport is the per-network state of the hardened delivery layer.
type transport struct {
	net      *Network
	cfg      NetConfig
	counters *metrics.Counters
	obsv     obs.Observer

	data [][]*link // [from][to] in-band links (app + markers)
	ctrl [][]*link // [from][to] out-of-band control links

	jmu sync.Mutex
	rng *rand.Rand // backoff jitter only; never affects outcomes

	det *detector
}

// frame is one in-flight transport-level message.
type frame struct {
	seq       int
	msg       Message
	firstSend time.Time
	attempts  int
}

// framePool recycles frames between ack and next send. Every message the
// simulator moves allocates one frame on the hardened path, so under a
// sweep this is a per-message allocation; pooling cuts it to near zero.
// Frames are returned only after leaving the unacked window, and all
// transmission paths work on copied (gen, seq, msg, attempt) values — a
// recycled frame is never reachable from a timer or a delayed delivery.
var framePool = sync.Pool{New: func() any { return new(frame) }}

// getFrame takes a zeroed frame from the pool.
func getFrame(seq int, m Message) *frame {
	f := framePool.Get().(*frame)
	f.seq = seq
	f.msg = m
	f.attempts = 0
	return f
}

// putFrame clears payload references and recycles the frame.
func putFrame(f *frame) {
	f.msg = Message{}
	framePool.Put(f)
}

// initialWindow is the preallocated capacity of each link's unacked
// window; steady-state windows under the default chaos profiles stay well
// below it, so the append path almost never grows the backing array.
const initialWindow = 32

// link is one directed, sequenced, acknowledged channel (from → to) of one
// class. Sender state (unacked window, retransmit timer, RTT estimator)
// and receiver state (resequencing buffer) live on the same struct because
// both ends are in-process.
type link struct {
	t     *transport
	class LinkClass
	from  int
	to    int
	dst   *queue // delivery queue: chans[from][to] or ctrl[to]

	est *netestim.Estimator // survives resets: RTT knowledge outlives incarnations

	mu  sync.Mutex
	gen int // incarnation epoch; stale frames/timers no-op

	// Sender side.
	nextSeq int
	unacked []*frame
	boShift uint // backoff doublings since the last ack progress (Karn)
	timer   *time.Timer

	// Receiver side.
	expect   int
	pending  map[int]Message
	ackSends int // monotone attempt counter for this link's acks
}

// harden installs the transport on a network. Must be called before any
// process starts sending.
func (net *Network) harden(cfg NetConfig, counters *metrics.Counters, obsv obs.Observer, jitterSeed int64) {
	cfg = cfg.withDefaults()
	t := &transport{
		net:      net,
		cfg:      cfg,
		counters: counters,
		obsv:     obsv,
		rng:      rand.New(rand.NewSource(jitterSeed ^ 0x6e657463)),
	}
	t.data = make([][]*link, net.n)
	t.ctrl = make([][]*link, net.n)
	for i := 0; i < net.n; i++ {
		t.data[i] = make([]*link, net.n)
		t.ctrl[i] = make([]*link, net.n)
		for j := 0; j < net.n; j++ {
			if i == j {
				continue
			}
			t.data[i][j] = t.newLink(LinkData, i, j, net.chans[i][j])
			t.ctrl[i][j] = t.newLink(LinkCtrl, i, j, net.ctrl[j])
		}
	}
	// Watermark instrumentation on every delivery queue.
	for i := 0; i < net.n; i++ {
		for j := 0; j < net.n; j++ {
			net.chans[i][j].onDepth = t.depthWatcher(fmt.Sprintf("chan %d->%d", i, j))
		}
		net.ctrl[i].onDepth = t.depthWatcher(fmt.Sprintf("ctrl %d", i))
	}
	t.det = newDetector(t)
	net.tr = t
}

func (t *transport) newLink(class LinkClass, from, to int, dst *queue) *link {
	est := &netestim.Estimator{}
	est.SetRTOFloor(t.cfg.RTOFloor)
	return &link{
		t:       t,
		class:   class,
		from:    from,
		to:      to,
		dst:     dst,
		est:     est,
		unacked: make([]*frame, 0, initialWindow),
		pending: make(map[int]Message, initialWindow),
	}
}

// depthWatcher returns the per-queue depth callback: a high-watermark gauge
// plus a once-per-run backlog event when the configured watermark is
// crossed.
func (t *transport) depthWatcher(label string) func(int) {
	var once sync.Once
	return func(depth int) {
		t.counters.Max(MetricNetBacklogMax, int64(depth))
		if depth > t.cfg.BacklogWatermark {
			once.Do(func() {
				if t.obsv != nil {
					t.obsv.OnEvent(obs.Event{
						Kind: obs.KindBacklog, Proc: -1, Inc: -1,
						Label: fmt.Sprintf("%s backlog %d exceeds watermark %d", label, depth, t.cfg.BacklogWatermark),
					})
				}
			})
		}
	}
}

// verdict consults the fault injector; a nil injector delivers everything.
func (t *transport) verdict(class LinkClass, from, to, seq, attempt int) Verdict {
	if t.cfg.Chaos == nil {
		return Verdict{}
	}
	v := t.cfg.Chaos.Verdict(class, from, to, seq, attempt)
	if v.Healed {
		t.counters.Inc(MetricPartitionHealed, 1)
	}
	if v.Drop {
		t.counters.Inc(MetricNetDrops, 1)
	}
	if v.Duplicate {
		t.counters.Inc(MetricNetDups, 1)
	}
	if v.Reorder {
		t.counters.Inc(MetricNetReorders, 1)
	}
	return v
}

// jitter perturbs a backoff duration by ±25% so retransmit timers from many
// links spread out. Wall-clock only; never affects outcomes.
func (t *transport) jitter(d time.Duration) time.Duration {
	t.jmu.Lock()
	f := 0.75 + 0.5*t.rng.Float64()
	t.jmu.Unlock()
	return time.Duration(float64(d) * f)
}

// reset discards all in-flight transport state (unacked windows, pending
// resequencing buffers, timers) and bumps the generation so frames already
// on the wire are ignored on arrival. Called by ResetForRecovery: channel
// contents at the recovery line are reconstructed from the sender-based
// message log, not from the wire.
func (t *transport) reset() {
	for _, rows := range [][][]*link{t.data, t.ctrl} {
		for _, row := range rows {
			for _, lk := range row {
				if lk != nil {
					lk.reset()
				}
			}
		}
	}
	t.det.reset()
}

// shutdown permanently invalidates every link so retransmit timers and
// delayed deliveries stop after the run returns.
func (t *transport) shutdown() {
	t.reset()
}

func (lk *link) reset() {
	lk.mu.Lock()
	lk.gen++
	lk.nextSeq = 0
	for _, f := range lk.unacked {
		putFrame(f)
	}
	lk.unacked = lk.unacked[:0]
	lk.boShift = 0
	lk.expect = 0
	clear(lk.pending)
	lk.ackSends = 0
	if lk.timer != nil {
		lk.timer.Stop()
		lk.timer = nil
	}
	lk.mu.Unlock()
}

// send enqueues one message for reliable in-order delivery.
func (lk *link) send(m Message) {
	lk.mu.Lock()
	seq := lk.nextSeq
	lk.nextSeq++
	f := getFrame(seq, m)
	f.attempts = 1
	f.firstSend = time.Now()
	lk.unacked = append(lk.unacked, f)
	gen := lk.gen
	if lk.timer == nil {
		lk.armLocked(gen)
	}
	lk.mu.Unlock()
	lk.transmit(gen, seq, m, 0)
}

// transmit pushes one attempt of a frame through the fault injector. It
// takes the frame's fields by value, never the frame itself: by the time a
// delayed delivery or retransmission runs, the frame may have been acked
// and recycled.
func (lk *link) transmit(gen, seq int, m Message, attempt int) {
	v := lk.t.verdict(lk.class, lk.from, lk.to, seq, attempt)
	if v.Drop {
		return
	}
	// The fast path (no delay, no dup) calls deliver directly: a closure
	// here would allocate once per message on lossless links.
	if v.Delay > 0 {
		time.AfterFunc(v.Delay, func() { lk.deliver(gen, seq, m) })
	} else {
		lk.deliver(gen, seq, m)
	}
	if v.Duplicate {
		lk.deliver(gen, seq, m)
	}
}

// deliver is the receiver side: duplicate suppression, resequencing, and
// in-order push into the destination queue, then a cumulative ack.
func (lk *link) deliver(gen, seq int, m Message) {
	lk.mu.Lock()
	if gen != lk.gen {
		lk.mu.Unlock()
		return
	}
	lk.t.heard(lk.from, lk.to)
	if seq < lk.expect {
		// Duplicate of an already-delivered frame (a dup verdict, or a
		// retransmission racing its own ack): suppress, but re-ack so the
		// sender stops retransmitting.
		lk.mu.Unlock()
		lk.sendAck(gen)
		return
	}
	if _, dup := lk.pending[seq]; dup {
		lk.mu.Unlock()
		return
	}
	lk.pending[seq] = m
	// Flush the in-order prefix while holding lk.mu: concurrent deliveries
	// must not interleave their flushes, or resequenced frames would leak
	// out of order into the queue.
	for {
		next, ok := lk.pending[lk.expect]
		if !ok {
			break
		}
		delete(lk.pending, lk.expect)
		lk.expect++
		lk.dst.push(next)
	}
	lk.mu.Unlock()
	lk.sendAck(gen)
}

// sendAck sends a cumulative acknowledgement back across the injector
// (acks travel the reverse wire direction and can be lost or delayed too).
func (lk *link) sendAck(gen int) {
	lk.mu.Lock()
	if gen != lk.gen {
		lk.mu.Unlock()
		return
	}
	cum := lk.expect - 1
	attempt := lk.ackSends
	lk.ackSends++
	lk.mu.Unlock()

	v := lk.t.verdict(LinkAck, lk.to, lk.from, cum, attempt)
	if v.Drop {
		return
	}
	if v.Delay > 0 {
		time.AfterFunc(v.Delay, func() { lk.ackArrive(gen, cum) })
	} else {
		lk.ackArrive(gen, cum)
	}
	if v.Duplicate {
		lk.ackArrive(gen, cum)
	}
}

// ackArrive is the sender side of an ack: slide the unacked window, feed
// the RTT estimator (Karn's rule: only never-retransmitted frames yield
// samples), reset backoff on progress, and re-arm or stop the timer.
func (lk *link) ackArrive(gen, cum int) {
	now := time.Now()
	lk.mu.Lock()
	if gen != lk.gen {
		lk.mu.Unlock()
		return
	}
	lk.t.heard(lk.to, lk.from)
	// Slide the window in place: compacting the preallocated backing array
	// (instead of reslicing its head away) keeps the capacity for the life
	// of the link, and the acked frames go back to the pool.
	acked := 0
	for acked < len(lk.unacked) && lk.unacked[acked].seq <= cum {
		f := lk.unacked[acked]
		acked++
		if f.attempts == 1 {
			lk.est.Observe(now.Sub(f.firstSend))
		} else {
			lk.est.ObserveAmbiguous() // Karn: retransmitted exchange, no sample
		}
		putFrame(f)
	}
	progress := acked > 0
	if progress {
		n := copy(lk.unacked, lk.unacked[acked:])
		for i := n; i < len(lk.unacked); i++ {
			lk.unacked[i] = nil
		}
		lk.unacked = lk.unacked[:n]
	}
	if progress {
		lk.boShift = 0
		if len(lk.unacked) == 0 {
			if lk.timer != nil {
				lk.timer.Stop()
				lk.timer = nil
			}
		} else {
			lk.armLocked(gen)
		}
	}
	lk.mu.Unlock()
}

// rtoLocked derives the current retransmission timeout: the estimator's
// RFC 6298 bound, doubled per backoff shift, capped by the configured
// ceiling. Requires lk.mu.
func (lk *link) rtoLocked() time.Duration {
	rto, err := lk.est.RTO()
	if err != nil {
		rto = lk.t.cfg.RTOFloor // unreachable: the floor is always set
	}
	rto <<= lk.boShift
	if rto > lk.t.cfg.RTOCap || rto <= 0 {
		rto = lk.t.cfg.RTOCap
	}
	return rto
}

// armLocked (re)arms the retransmit timer for the oldest unacked frame.
// Requires lk.mu.
func (lk *link) armLocked(gen int) {
	if lk.timer != nil {
		lk.timer.Stop()
	}
	d := lk.t.jitter(lk.rtoLocked())
	lk.timer = time.AfterFunc(d, func() { lk.onTimeout(gen) })
}

// onTimeout retransmits the oldest unacked frame with exponential backoff.
func (lk *link) onTimeout(gen int) {
	lk.mu.Lock()
	if gen != lk.gen || len(lk.unacked) == 0 {
		lk.mu.Unlock()
		return
	}
	lk.t.counters.Inc(MetricNetRTOExpired, 1)
	if lk.boShift < maxBackoffShift {
		lk.boShift++
	}
	// Copy the head frame's fields under the lock: once released, an ack
	// may recycle the frame, so the retransmission must not touch it.
	f := lk.unacked[0]
	seq, m, attempt := f.seq, f.msg, f.attempts
	f.attempts++
	lk.armLocked(gen)
	lk.mu.Unlock()

	lk.t.counters.Inc(MetricNetRetransmits, 1)
	if lk.t.obsv != nil {
		lk.t.obsv.OnEvent(obs.Event{
			Kind: obs.KindRetry, Proc: lk.from, Inc: -1, Tag: "retransmit",
			Label: fmt.Sprintf("%s %d->%d seq=%d attempt=%d", lk.class, lk.from, lk.to, seq, attempt),
		})
	}
	lk.transmit(gen, seq, m, attempt)
}

// heard records that process `to` received evidence that `from` is alive
// (any delivered frame counts, not just heartbeats).
func (t *transport) heard(from, to int) {
	if t.det != nil {
		t.det.heard(from, to)
	}
}

// detector is the heartbeat failure detector: a network-level prober that
// stands in for the per-node heartbeat daemons of a real deployment. Every
// interval it pushes one heartbeat frame per directed pair through the
// fault injector and checks each pair's silence against the suspicion
// threshold. Suspicion is per incarnation (reset clears it).
type detector struct {
	t *transport

	mu        sync.Mutex
	lastHeard [][]time.Time // [observer][peer]
	suspected []bool        // [peer], this incarnation
	hbSeq     [][]int       // [from][to] heartbeat frame counter
	stop      chan struct{} // non-nil while running
}

func newDetector(t *transport) *detector {
	n := t.net.n
	d := &detector{t: t}
	d.lastHeard = make([][]time.Time, n)
	d.hbSeq = make([][]int, n)
	for i := 0; i < n; i++ {
		d.lastHeard[i] = make([]time.Time, n)
		d.hbSeq[i] = make([]int, n)
	}
	d.suspected = make([]bool, n)
	return d
}

func (d *detector) heard(from, to int) {
	d.mu.Lock()
	d.lastHeard[to][from] = time.Now()
	d.mu.Unlock()
}

func (d *detector) reset() {
	d.mu.Lock()
	for i := range d.suspected {
		d.suspected[i] = false
	}
	d.mu.Unlock()
}

// start launches the probe/check loop for one incarnation. onSuspect is
// called at most once per peer per incarnation, from the detector
// goroutine. The returned stop function blocks until the loop exits.
func (d *detector) start(onSuspect func(peer int, silence time.Duration)) (stop func()) {
	d.mu.Lock()
	now := time.Now()
	n := d.t.net.n
	for i := 0; i < n; i++ {
		d.suspected[i] = false
		for j := 0; j < n; j++ {
			d.lastHeard[i][j] = now // grace period from incarnation start
		}
	}
	stopCh := make(chan struct{})
	d.stop = stopCh
	d.mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(d.t.cfg.HeartbeatEvery)
		defer ticker.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-ticker.C:
				d.probe()
				d.check(onSuspect)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stopCh)
			<-done
		})
	}
}

// probe pushes one heartbeat per directed pair through the injector.
// Heartbeats are pure liveness evidence: they carry no payload, enter no
// queue, and are neither acked nor retransmitted.
func (d *detector) probe() {
	n := d.t.net.n
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if p == q {
				continue
			}
			d.mu.Lock()
			seq := d.hbSeq[p][q]
			d.hbSeq[p][q]++
			d.mu.Unlock()
			v := d.t.verdict(LinkHeartbeat, p, q, seq, 0)
			if v.Drop {
				continue
			}
			if v.Delay > 0 {
				p, q := p, q
				time.AfterFunc(v.Delay, func() { d.heard(p, q) })
			} else {
				d.heard(p, q)
			}
		}
	}
}

// check declares suspect any peer some observer has not heard from within
// the suspicion threshold.
func (d *detector) check(onSuspect func(int, time.Duration)) {
	now := time.Now()
	n := d.t.net.n
	type hit struct {
		peer    int
		silence time.Duration
	}
	var hits []hit
	d.mu.Lock()
	for o := 0; o < n; o++ {
		for p := 0; p < n; p++ {
			if o == p || d.suspected[p] {
				continue
			}
			if silence := now.Sub(d.lastHeard[o][p]); silence > d.t.cfg.SuspectAfter {
				d.suspected[p] = true
				hits = append(hits, hit{p, silence})
			}
		}
	}
	d.mu.Unlock()
	for _, h := range hits {
		onSuspect(h.peer, h.silence)
	}
}

// startDetector starts the heartbeat failure detector for one incarnation
// (no-op when the network is not hardened or the detector is disabled).
// The returned function stops it and must be called before the next
// incarnation starts.
func (net *Network) startDetector(onSuspect func(peer int, silence time.Duration)) (stop func()) {
	if net.tr == nil || net.tr.cfg.DisableDetector {
		return func() {}
	}
	return net.tr.det.start(onSuspect)
}
