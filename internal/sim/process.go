package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strconv"
	stdtime "time"

	"repro/internal/metrics"
	"repro/internal/mpl"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Histogram names the runtime records through metrics.Counters.ObserveHist.
// They are part of the metrics-stream contract (obs.WriteMetricsJSONL), so
// protocol comparisons can report distributions, not just totals.
const (
	// HistBlockedWallMS is wall-clock milliseconds a process spent blocked
	// on protocol coordination (RecvCtrl), one observation per wait.
	HistBlockedWallMS = "blocked_wall_ms"
	// HistBarrierStallV is virtual seconds a process's clock jumped while
	// waiting for protocol control traffic — the §4 coordination cost M as
	// a per-stall distribution (only recorded under Config.Time).
	HistBarrierStallV = "barrier_stall_vs"
	// HistChkptSaveMS is wall-clock milliseconds per checkpoint persisted
	// to stable storage.
	HistChkptSaveMS = "chkpt_save_ms"
)

// Liveness-pruning counter names. Each manifest-pruned checkpoint save adds
// what a full-environment snapshot of the same state would have cost
// (MetricPruneBytesFull), how many of those bytes the manifest dropped
// (MetricPruneBytesSaved), and how many dead variables were excluded
// (MetricPruneVarsDropped). The prune ratio is saved/full, computed at
// export time (telemetry's chkptsim_prune_* families); full-env saves —
// NoPrune runs and protocol-forced checkpoints — touch none of these.
const (
	MetricPruneBytesFull   = "prune_bytes_full"
	MetricPruneBytesSaved  = "prune_bytes_saved"
	MetricPruneVarsDropped = "prune_vars_dropped"
)

// GaugeLastSaveVPrefix + rank names the per-process gauge holding the
// virtual time of the process's most recent completed checkpoint save —
// the raw signal behind the telemetry layer's checkpoint-lag computation
// (lag = current virtual time − last save). Runs without Config.Time
// report 0, which still marks "has saved at least once" via the gauge's
// presence.
const GaugeLastSaveVPrefix = "chkpt_last_save_vs_p"

// ErrProcFailed is the injected-failure signal.
var ErrProcFailed = errors.New("sim: process failed (injected)")

// ErrStepBudget means a process exceeded its instruction budget — almost
// always a livelock or an unproductive protocol loop.
var ErrStepBudget = errors.New("sim: step budget exhausted")

// workSlices is how many preemptible chunks a work(N) instruction is
// divided into under virtual-time accounting, bounding how stale a
// process's clock can be when it reacts to polled protocol traffic.
const workSlices = 256

// reduceTmpVar receives peer contributions during a reduce; the '$' makes
// collision with program identifiers impossible.
const reduceTmpVar = "reduce$tmp"

// Proc is one process of the distributed execution. Protocol hooks receive
// it to send control traffic, take checkpoints, and inspect identity.
type Proc struct {
	rank     int
	n        int
	code     *Code
	net      *Network
	tr       *trace.Trace
	store    storage.Store
	counters *metrics.Counters
	hooks    Hooks
	obsv     obs.Observer // nil: observability off
	inc      int          // incarnation this process belongs to

	env       *mpl.Env
	pc        int
	clock     vclock.VC
	sendSeq   []int
	recvSeq   []int
	instances map[int]int

	steps      int
	maxSteps   int
	events     int
	failAfter  int // fail when events reaches this count; <0 = never
	midRecv    bool
	atBoundary bool // between instructions (OnStep/OnCtrl/marker phase)

	time    *TimeModel // nil: no virtual-time accounting
	vtime   float64
	vfailAt float64 // crash when vtime reaches this; <0 = never
	// workLeft/workQuantum slice a running work(N) instruction into
	// preemptible chunks so boundary polling sees intermediate virtual
	// times (a work instruction is otherwise atomic). -1 = no work in
	// progress. Mid-work protocol checkpoints resume at the instruction
	// start (the whole work replays); application checkpoints never land
	// mid-work.
	workLeft    int
	workQuantum int

	// lastSaveNS is the wall duration of the most recent checkpoint save,
	// stashed so record can attach it to the checkpoint's observer event
	// (live telemetry derives save-latency percentiles from it).
	lastSaveNS int64
	// wallNow is the wall-clock source for duration measurements
	// (Config.WallClock; nil means time.Now).
	wallNow func() stdtime.Time

	// jitter, when set, yields the goroutine randomly at instruction
	// boundaries to diversify real-time interleavings (Config.Jitter).
	jitter *rand.Rand

	// noPrune disables liveness-minimized checkpoint payloads: application
	// checkpoints persist the full environment, reproducing the
	// pre-pruning byte counts (Config.NoPrune, the A/B escape hatch).
	noPrune bool

	// protoState lets a protocol attach arbitrary per-process state.
	protoState any
}

// newProc builds a fresh process at the program start.
func newProc(rank int, code *Code, net *Network, tr *trace.Trace, st storage.Store,
	counters *metrics.Counters, hooks Hooks, input func(rank, i int) int,
	maxSteps, failAfter int, time *TimeModel, vfailAt float64,
	obsv obs.Observer, inc int) *Proc {
	n := net.N()
	p := &Proc{
		rank:      rank,
		n:         n,
		code:      code,
		net:       net,
		tr:        tr,
		store:     st,
		counters:  counters,
		hooks:     hooks,
		obsv:      obsv,
		inc:       inc,
		clock:     vclock.New(n),
		sendSeq:   make([]int, n),
		recvSeq:   make([]int, n),
		instances: make(map[int]int),
		maxSteps:  maxSteps,
		failAfter: failAfter,
		time:      time,
		vfailAt:   vfailAt,
		workLeft:  -1,
	}
	var inputFn func(int) int
	if input != nil {
		inputFn = func(i int) int { return input(rank, i) }
	}
	p.env = mpl.NewEnv(code.Prog, rank, n, inputFn)
	return p
}

// now reads the process's wall-clock source (Config.WallClock pin, or the
// real clock).
func (p *Proc) now() stdtime.Time {
	if p.wallNow != nil {
		return p.wallNow()
	}
	return stdtime.Now()
}

// Rank returns the process id.
func (p *Proc) Rank() int { return p.rank }

// N returns the process count.
func (p *Proc) N() int { return p.n }

// Clock returns a copy of the current vector clock.
func (p *Proc) Clock() vclock.VC { return p.clock.Clone() }

// Var reads a process variable (0 when undeclared).
func (p *Proc) Var(name string) int { return p.env.Vars[name] }

// ProtoState returns protocol-attached state.
func (p *Proc) ProtoState() any { return p.protoState }

// SetProtoState attaches protocol state.
func (p *Proc) SetProtoState(s any) { p.protoState = s }

// Instance returns the next instance number for checkpoint index idx.
func (p *Proc) Instance(idx int) int { return p.instances[idx] }

// Events returns the number of events recorded this incarnation.
func (p *Proc) Events() int { return p.events }

// Counters exposes the shared metrics counters (protocols record forced
// checkpoints and blocked time through them).
func (p *Proc) Counters() *metrics.Counters { return p.counters }

// resumePC is the program counter a restore should resume at for a
// checkpoint taken right now: the current instruction when it has not yet
// (fully) executed — at an instruction boundary or mid-receive — and the
// next instruction otherwise.
func (p *Proc) resumePC() int {
	if p.midRecv || p.atBoundary {
		return p.pc
	}
	return p.pc + 1
}

// restore rewinds the process to a snapshot.
func (p *Proc) restore(s storage.Snapshot) error {
	pc, err := strconv.Atoi(s.PC)
	if err != nil {
		return fmt.Errorf("sim: bad snapshot pc %q: %w", s.PC, err)
	}
	p.pc = pc
	p.clock = s.Clock.Clone()
	if s.Manifest == nil {
		p.env.Vars = make(map[string]int, len(s.Vars))
	} else {
		// Pruned snapshot: reconstruct dead variables to their declared
		// initial value (zero, matching mpl.NewEnv), then overlay the
		// manifest variables the snapshot actually carries.
		p.env.Vars = make(map[string]int, len(p.code.Prog.Vars))
		for _, name := range p.code.Prog.Vars {
			p.env.Vars[name] = 0
		}
	}
	for k, v := range s.Vars {
		p.env.Vars[k] = v
	}
	copy(p.sendSeq, s.SendSeqs)
	copy(p.recvSeq, s.RecvSeqs)
	p.instances = make(map[int]int, len(s.Instances))
	for k, v := range s.Instances {
		p.instances[k] = v
	}
	p.vtime = s.VTime
	return nil
}

// record appends an event to the trace (when tracing), publishes it to the
// observer, and applies the failure trigger.
func (p *Proc) record(e trace.Event) error {
	if p.tr != nil {
		e.Proc = p.rank
		e.Clock = p.clock
		p.tr.Append(e)
	}
	if p.obsv != nil {
		oe := obs.Event{Label: e.Label}
		switch e.Kind {
		case trace.KindSend:
			oe.Kind = obs.KindSend
			oe.Msg = &obs.MsgRef{From: e.Msg.From, To: e.Msg.To, Seq: e.Msg.Seq}
		case trace.KindRecv:
			oe.Kind = obs.KindRecv
			oe.Msg = &obs.MsgRef{From: e.Msg.From, To: e.Msg.To, Seq: e.Msg.Seq}
		case trace.KindCheckpoint:
			oe.Kind = obs.KindChkpt
			oe.Chkpt = &obs.ChkptRef{Index: e.Chkpt.CFGIndex, Instance: e.Chkpt.Instance}
			oe.DurNS = p.lastSaveNS
		default:
			oe.Kind = obs.KindCompute
		}
		oe.VClock = append([]uint64(nil), p.clock...)
		p.emit(oe)
	}
	p.events++
	if p.failAfter >= 0 && p.events >= p.failAfter {
		return fmt.Errorf("%w: process %d after %d events", ErrProcFailed, p.rank, p.events)
	}
	return nil
}

// emit publishes an event to the observer, filling the process identity
// and clocks. No-op without an observer.
func (p *Proc) emit(e obs.Event) {
	if p.obsv == nil {
		return
	}
	e.Proc = p.rank
	e.Inc = p.inc
	e.VTime = p.vtime
	p.obsv.OnEvent(e)
}

// TakeCheckpoint takes a full-environment local checkpoint with the given
// straight-cut index: ticks the clock, records the event, and persists the
// snapshot. Protocols call it for coordinated and forced checkpoints —
// which can land at arbitrary program points where no liveness manifest is
// known, so they always persist everything. Application chkpt statements go
// through appCheckpoint, which prunes to the site's manifest.
func (p *Proc) TakeCheckpoint(idx int) error {
	return p.takeCheckpoint(idx, nil)
}

// appCheckpoint takes the checkpoint for an application chkpt instruction,
// pruned to the site's liveness manifest (unless pruning is disabled or the
// site has no manifest).
func (p *Proc) appCheckpoint(in Instr) error {
	var manifest []string
	if !p.noPrune {
		manifest = p.code.Manifests[in.StmtID]
	}
	return p.takeCheckpoint(in.Index, manifest)
}

// takeCheckpoint persists a snapshot holding exactly the manifest variables
// (nil manifest = the whole environment). Pruned variables restore to their
// declared initial value — safe because liveness proved every path from
// this site redefines them before any use.
func (p *Proc) takeCheckpoint(idx int, manifest []string) error {
	instance := p.instances[idx]
	p.instances[idx] = instance + 1
	p.clock.Tick(p.rank)
	if p.time != nil {
		if err := p.advance(p.time.CheckpointOverhead); err != nil {
			return err
		}
	}

	resume := p.resumePC()
	var vars map[string]int
	if manifest == nil {
		vars = make(map[string]int, len(p.env.Vars))
		for k, v := range p.env.Vars {
			vars[k] = v
		}
	} else {
		fullBytes := 0
		for k := range p.env.Vars {
			fullBytes += len(k) + 8
		}
		vars = make(map[string]int, len(manifest))
		prunedBytes := 0
		for _, name := range manifest {
			if v, ok := p.env.Vars[name]; ok {
				vars[name] = v
				prunedBytes += len(name) + 8
			}
		}
		p.counters.Inc(MetricPruneBytesFull, fullBytes)
		p.counters.Inc(MetricPruneBytesSaved, fullBytes-prunedBytes)
		p.counters.Inc(MetricPruneVarsDropped, len(p.env.Vars)-len(vars))
	}
	instances := make(map[int]int, len(p.instances))
	for k, v := range p.instances {
		instances[k] = v
	}
	snap := storage.Snapshot{
		Proc:      p.rank,
		CFGIndex:  idx,
		Instance:  instance,
		Clock:     p.clock.Clone(),
		Vars:      vars,
		PC:        strconv.Itoa(resume),
		SendSeqs:  append([]int(nil), p.sendSeq...),
		RecvSeqs:  append([]int(nil), p.recvSeq...),
		Instances: instances,
		VTime:     p.vtime,
		Manifest:  manifest,
	}
	saveStart := p.now()
	if err := p.store.Save(snap); err != nil {
		if errors.Is(err, storage.ErrTransient) || errors.Is(err, storage.ErrFsync) {
			// The save exhausted its retries, or an fsync failed — which is
			// permanent (fsyncgate: the kernel may have dropped the dirty
			// pages, so retrying could "succeed" with nothing on disk). A
			// process that cannot persist its checkpoint is
			// indistinguishable from a crashed one, so convert the outage
			// into a crash: the runtime rolls back to the last recovery
			// line and replays from what storage verifiably holds, instead
			// of failing the whole run.
			p.counters.Inc(MetricSaveCrashes, 1)
			return fmt.Errorf("%w: process %d checkpoint save: %v", ErrProcFailed, p.rank, err)
		}
		return err
	}
	p.lastSaveNS = p.now().Sub(saveStart).Nanoseconds()
	p.counters.ObserveHist(HistChkptSaveMS, float64(p.lastSaveNS)/1e6)
	p.counters.IncCheckpoints(1)
	p.counters.SetGauge(GaugeLastSaveVPrefix+strconv.Itoa(p.rank), p.vtime)
	return p.record(trace.Event{
		Kind:  trace.KindCheckpoint,
		Chkpt: trace.Checkpoint{CFGIndex: idx, Instance: instance},
		Label: "C_" + strconv.Itoa(idx),
	})
}

// SendCtrl sends an out-of-band control message (protocol coordination).
// It pays the same virtual-time setup cost as an application send.
func (p *Proc) SendCtrl(to int, tag string, payload []int) error {
	p.counters.IncCtrlMessages(1, 8)
	arrive, err := p.chargeSend()
	if err != nil {
		return err
	}
	p.net.SendCtrl(Message{Kind: MsgCtrl, From: p.rank, To: to, Tag: tag, Piggyback: payload, ArriveV: arrive})
	return nil
}

// SendMarker sends an in-band marker on the (rank, to) channel.
func (p *Proc) SendMarker(to int, tag string, payload []int) error {
	p.counters.IncCtrlMessages(1, 8)
	arrive, err := p.chargeSend()
	if err != nil {
		return err
	}
	p.net.SendMarker(Message{Kind: MsgMarker, From: p.rank, To: to, Tag: tag, Piggyback: payload, ArriveV: arrive})
	return nil
}

// RecvCtrl blocks for the next control message (protocol barriers),
// synchronizing the virtual clock to its arrival. The wait is charged to
// the blocked-time accounting: total wall time in Counters.AddBlocked plus
// per-stall wall and virtual-time distributions, and a block event on the
// observer — protocol coordination cost is precisely what the paper's
// scheme eliminates, so the runtime makes it visible.
func (p *Proc) RecvCtrl() (Message, error) {
	start := p.now()
	v0 := p.vtime
	m, err := p.net.RecvCtrl(p.rank)
	if err != nil {
		return Message{}, err
	}
	if err := p.syncTo(m.ArriveV); err != nil {
		return Message{}, err
	}
	blocked := p.now().Sub(start)
	p.counters.AddBlocked(blocked)
	p.counters.ObserveHist(HistBlockedWallMS, float64(blocked.Nanoseconds())/1e6)
	if p.time != nil {
		p.counters.ObserveHist(HistBarrierStallV, p.vtime-v0)
	}
	p.emit(obs.Event{Kind: obs.KindBlock, Tag: "ctrl", DurNS: blocked.Nanoseconds(), VDur: p.vtime - v0})
	return m, nil
}

// PollMarker removes a leading marker from the inbound (from, rank)
// channel, if one is at the head (protocol halt drains — the process is
// virtually idle, so the clock advances to the marker's arrival; a
// virtual-time crash cannot trigger here, the application already halted).
func (p *Proc) PollMarker(from int) (Message, bool) {
	m, ok := p.net.PollMarker(from, p.rank, math.Inf(1))
	if ok && p.time != nil && m.ArriveV > p.vtime {
		p.vtime = m.ArriveV
	}
	return m, ok
}

// pollHorizon bounds opportunistic polling to messages that have virtually
// arrived.
func (p *Proc) pollHorizon() float64 {
	if p.time == nil {
		return math.Inf(1)
	}
	return p.vtime
}

// run executes the program until halt, failure, or abort.
func (p *Proc) run() error {
	for {
		if p.steps >= p.maxSteps {
			return fmt.Errorf("%w: process %d after %d steps", ErrStepBudget, p.rank, p.steps)
		}
		p.steps++

		// Out-of-band control and stray markers are served between
		// instructions so protocols make progress even on channels the
		// application never receives from.
		p.atBoundary = true
		if p.jitter != nil && p.jitter.Intn(4) == 0 {
			for y := p.jitter.Intn(3); y >= 0; y-- {
				runtime.Gosched()
			}
		}
		horizon := p.pollHorizon()
		for {
			m, ok := p.net.PollCtrl(p.rank, horizon)
			if !ok {
				break
			}
			if err := p.hooks.OnCtrl(p, m); err != nil {
				return err
			}
		}
		for from := 0; from < p.n; from++ {
			if from == p.rank {
				continue
			}
			if m, ok := p.net.PollMarker(from, p.rank, horizon); ok {
				if err := p.hooks.OnMarker(p, m); err != nil {
					return err
				}
			}
		}
		if err := p.hooks.OnStep(p); err != nil {
			return err
		}
		p.atBoundary = false

		in := p.code.Instrs[p.pc]
		switch in.Op {
		case OpAssign:
			v, err := mpl.Eval(in.Expr, p.env)
			if err != nil {
				return p.evalErr(in, err)
			}
			p.env.Vars[in.Var] = v
			if p.time != nil {
				if err := p.advance(p.time.Compute); err != nil {
					return err
				}
			}
			p.clock.Tick(p.rank)
			if err := p.record(trace.Event{Kind: trace.KindCompute, Label: in.Var + "="}); err != nil {
				return err
			}
			p.pc++
		case OpWork:
			if p.workLeft < 0 {
				units, err := mpl.Eval(in.Expr, p.env)
				if err != nil {
					return p.evalErr(in, err)
				}
				if units < 1 {
					units = 1
				}
				p.workLeft = units
				p.workQuantum = units/workSlices + 1
			}
			if p.time != nil {
				chunk := p.workQuantum
				if chunk > p.workLeft {
					chunk = p.workLeft
				}
				if err := p.advance(float64(chunk) * p.time.Compute); err != nil {
					return err
				}
				p.workLeft -= chunk
			} else {
				p.workLeft = 0
			}
			if p.workLeft > 0 {
				continue // preemption point: re-poll at the loop top
			}
			p.workLeft = -1
			p.clock.Tick(p.rank)
			if err := p.record(trace.Event{Kind: trace.KindCompute, Label: "work"}); err != nil {
				return err
			}
			p.pc++
		case OpSend:
			dest, err := mpl.Eval(in.Expr, p.env)
			if err != nil {
				return p.evalErr(in, err)
			}
			if dest >= 0 && dest < p.n && dest != p.rank {
				if err := p.sendApp(dest, p.env.Vars[in.Var]); err != nil {
					return err
				}
			}
			p.pc++
		case OpRecv:
			src, err := mpl.Eval(in.Expr, p.env)
			if err != nil {
				return p.evalErr(in, err)
			}
			if src >= 0 && src < p.n && src != p.rank {
				if err := p.recvApp(src, in.Var); err != nil {
					return err
				}
			}
			p.pc++
		case OpBcast:
			root, err := mpl.Eval(in.Expr, p.env)
			if err != nil {
				return p.evalErr(in, err)
			}
			if root < 0 || root >= p.n {
				return fmt.Errorf("sim: process %d: bcast root %d out of range", p.rank, root)
			}
			if p.rank == root {
				val := p.env.Vars[in.Var]
				for q := 0; q < p.n; q++ {
					if q == p.rank {
						continue
					}
					if err := p.sendApp(q, val); err != nil {
						return err
					}
				}
			} else {
				if err := p.recvApp(root, in.Var); err != nil {
					return err
				}
			}
			p.pc++
		case OpReduce:
			root, err := mpl.Eval(in.Expr, p.env)
			if err != nil {
				return p.evalErr(in, err)
			}
			if root < 0 || root >= p.n {
				return fmt.Errorf("sim: process %d: reduce root %d out of range", p.rank, root)
			}
			if p.rank == root {
				// Gather contributions in rank order (deterministic) and
				// accumulate into the root's own value. The temp buffer
				// name contains '$' so it can never collide with a
				// program identifier.
				sum := p.env.Vars[in.Var]
				for q := 0; q < p.n; q++ {
					if q == p.rank {
						continue
					}
					if err := p.recvApp(q, reduceTmpVar); err != nil {
						return err
					}
					sum += p.env.Vars[reduceTmpVar]
				}
				delete(p.env.Vars, reduceTmpVar)
				p.env.Vars[in.Var] = sum
			} else {
				if err := p.sendApp(root, p.env.Vars[in.Var]); err != nil {
					return err
				}
			}
			p.pc++
		case OpChkpt:
			take, err := p.hooks.AtChkptStmt(p, in.Index)
			if err != nil {
				return err
			}
			if take {
				if err := p.appCheckpoint(in); err != nil {
					return err
				}
			}
			p.pc++
		case OpJump:
			p.pc = in.Target
		case OpBranchFalse:
			ok, err := mpl.Truthy(in.Expr, p.env)
			if err != nil {
				return p.evalErr(in, err)
			}
			if ok {
				p.pc++
			} else {
				p.pc = in.Target
			}
		case OpHalt:
			p.emit(obs.Event{Kind: obs.KindHalt, VClock: append([]uint64(nil), p.clock...)})
			return p.hooks.OnHalt(p)
		default:
			return fmt.Errorf("sim: process %d: unknown opcode %v", p.rank, in.Op)
		}
	}
}

func (p *Proc) evalErr(in Instr, err error) error {
	return fmt.Errorf("sim: process %d at pc %d (stmt #%d): %w", p.rank, p.pc, in.StmtID, err)
}

// sendApp sends one application message to dest.
func (p *Proc) sendApp(dest, value int) error {
	seq := p.sendSeq[dest]
	p.sendSeq[dest] = seq + 1
	p.clock.Tick(p.rank)
	arrive, err := p.chargeSend()
	if err != nil {
		return err
	}
	m := Message{
		Kind:      MsgApp,
		From:      p.rank,
		To:        dest,
		Seq:       seq,
		Value:     value,
		Clock:     p.clock.Clone(),
		Piggyback: p.hooks.BeforeSend(p, dest),
		ArriveV:   arrive,
	}
	p.net.Send(m)
	p.counters.IncAppMessages(1)
	return p.record(trace.Event{
		Kind: trace.KindSend,
		Msg:  trace.MessageID{From: p.rank, To: dest, Seq: seq},
		Peer: dest,
	})
}

// recvApp blocks for the next application message from src, serving any
// in-band markers that arrive first.
func (p *Proc) recvApp(src int, varName string) error {
	p.midRecv = true
	defer func() { p.midRecv = false }()
	for {
		m, err := p.net.Recv(src, p.rank)
		if err != nil {
			return err
		}
		if err := p.syncTo(m.ArriveV); err != nil {
			return err
		}
		if m.Kind == MsgMarker {
			if err := p.hooks.OnMarker(p, m); err != nil {
				return err
			}
			continue
		}
		if m.Seq != p.recvSeq[src] {
			return fmt.Errorf("sim: process %d: FIFO violation from %d: seq %d, want %d",
				p.rank, src, m.Seq, p.recvSeq[src])
		}
		// The message is not yet delivered: forced checkpoints taken here
		// exclude it, and a restore re-executes this receive (the message
		// is re-injected as channel state).
		if err := p.hooks.BeforeDeliver(p, m); err != nil {
			return err
		}
		p.recvSeq[src] = m.Seq + 1
		p.env.Vars[varName] = m.Value
		p.clock.Tick(p.rank)
		p.clock.Merge(m.Clock)
		if err := p.record(trace.Event{
			Kind: trace.KindRecv,
			Msg:  trace.MessageID{From: src, To: p.rank, Seq: m.Seq},
			Peer: src,
		}); err != nil {
			return err
		}
		p.midRecv = false
		return p.hooks.AfterRecv(p, m)
	}
}
