package sim

// Hooks is the protocol extension interface. The application-driven
// (coordination-free) scheme of the paper is the no-op implementation:
// checkpoint statements execute locally and nothing else happens. The
// baseline protocols in internal/protocol implement coordination on top of
// these hooks.
//
// All hooks run on the process's own goroutine.
type Hooks interface {
	// AtChkptStmt runs when the process reaches an application checkpoint
	// statement with straight-cut index idx. Returning true takes the
	// checkpoint with that index; returning false skips it (protocols that
	// checkpoint on their own schedule return false).
	AtChkptStmt(p *Proc, idx int) (take bool, err error)
	// BeforeSend returns the piggyback payload to attach to an outgoing
	// application message (communication-induced protocols use this).
	BeforeSend(p *Proc, to int) []int
	// BeforeDeliver runs after an application message is pulled off the
	// channel but BEFORE it is delivered (variable written, clock merged).
	// Communication-induced protocols take forced checkpoints here so the
	// checkpoint excludes the message — otherwise the message would be an
	// orphan of the induced cut.
	BeforeDeliver(p *Proc, m Message) error
	// AfterRecv runs after an application message is delivered, before the
	// next instruction.
	AfterRecv(p *Proc, m Message) error
	// OnMarker runs when an in-band marker is consumed on a channel.
	OnMarker(p *Proc, m Message) error
	// OnCtrl runs when an out-of-band control message is polled.
	OnCtrl(p *Proc, m Message) error
	// OnStep runs before each instruction (after control polling); SaS-like
	// coordinators use it to initiate rounds.
	OnStep(p *Proc) error
	// OnHalt runs when the process reaches the end of the program.
	OnHalt(p *Proc) error
}

// NoHooks is the application-driven protocol: every checkpoint statement
// is taken locally, with zero coordination — the paper's contribution.
type NoHooks struct{}

var _ Hooks = NoHooks{}

// AtChkptStmt implements Hooks: always take the local checkpoint.
func (NoHooks) AtChkptStmt(*Proc, int) (bool, error) { return true, nil }

// BeforeSend implements Hooks: no piggyback.
func (NoHooks) BeforeSend(*Proc, int) []int { return nil }

// BeforeDeliver implements Hooks.
func (NoHooks) BeforeDeliver(*Proc, Message) error { return nil }

// AfterRecv implements Hooks.
func (NoHooks) AfterRecv(*Proc, Message) error { return nil }

// OnMarker implements Hooks: application-driven runs see no markers.
func (NoHooks) OnMarker(*Proc, Message) error { return nil }

// OnCtrl implements Hooks.
func (NoHooks) OnCtrl(*Proc, Message) error { return nil }

// OnStep implements Hooks.
func (NoHooks) OnStep(*Proc) error { return nil }

// OnHalt implements Hooks.
func (NoHooks) OnHalt(*Proc) error { return nil }

// HooksFactory builds one Hooks value per process; protocols that share
// state across processes (a coordinator, a snapshot collector) close over
// it in the factory.
type HooksFactory func(rank, nproc int) Hooks

// NoProtocol is the factory for the application-driven scheme.
func NoProtocol(int, int) Hooks { return NoHooks{} }
