// Package sim is the distributed runtime: it executes an MPL program on n
// concurrent processes (goroutines) connected by reliable FIFO channels —
// the paper's §2 system model — while recording the execution as a trace,
// stamping vector clocks, taking checkpoints to stable storage, and
// optionally injecting failures and restarting from recovery lines.
//
// Programs are compiled to a flat instruction list so a process can resume
// from a checkpoint by restoring variables and jumping to the saved
// program counter. Checkpointing *protocols* (application-driven, SaS,
// Chandy-Lamport, CIC, uncoordinated) plug in through the Hooks interface
// in hooks.go.
package sim

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/liveness"
	"repro/internal/mpl"
)

// OpCode enumerates instruction kinds.
type OpCode int

// Instruction opcodes.
const (
	OpAssign OpCode = iota + 1
	OpWork
	OpSend
	OpRecv
	OpBcast
	OpReduce
	OpChkpt
	OpJump
	OpBranchFalse // jump to Target when Expr is zero, else fall through
	OpHalt
)

// String names the opcode.
func (o OpCode) String() string {
	switch o {
	case OpAssign:
		return "assign"
	case OpWork:
		return "work"
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpBcast:
		return "bcast"
	case OpReduce:
		return "reduce"
	case OpChkpt:
		return "chkpt"
	case OpJump:
		return "jump"
	case OpBranchFalse:
		return "branch-false"
	case OpHalt:
		return "halt"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Instr is one compiled instruction.
type Instr struct {
	Op     OpCode
	StmtID int      // originating statement (-1 for synthetic jumps/halt)
	Var    string   // assign target / message buffer
	Expr   mpl.Expr // assign value, work amount, peer expression, or branch condition
	Target int      // jump / branch-false target pc
	Index  int      // chkpt: straight-cut index i
}

// Code is a compiled program.
type Code struct {
	Prog   *mpl.Program
	Instrs []Instr
	Enum   *cfg.Enumeration
	// Manifests maps each checkpoint statement's id to the variables live
	// at that site (sorted), from the backward liveness pass. Keyed by
	// statement id, not straight-cut index: two checkpoints in different
	// if-arms can share an index yet have different per-arm live sets. The
	// runtime persists only manifest variables unless pruning is disabled.
	Manifests map[int][]string
}

// Compile lowers a program to instructions. The checkpoint enumeration
// must be unambiguous (run Phase I equalization first if needed).
func Compile(p *mpl.Program) (*Code, error) {
	enum, err := cfg.Enumerate(p)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	live, err := liveness.Compute(p)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	c := &Code{Prog: p, Enum: enum, Manifests: live.Live}
	if err := c.compileBody(p.Body); err != nil {
		return nil, err
	}
	c.emit(Instr{Op: OpHalt, StmtID: -1})
	return c, nil
}

func (c *Code) emit(i Instr) int {
	c.Instrs = append(c.Instrs, i)
	return len(c.Instrs) - 1
}

func (c *Code) compileBody(body []mpl.Stmt) error {
	for _, s := range body {
		switch st := s.(type) {
		case *mpl.Assign:
			c.emit(Instr{Op: OpAssign, StmtID: st.ID(), Var: st.Name, Expr: st.X})
		case *mpl.Work:
			c.emit(Instr{Op: OpWork, StmtID: st.ID(), Expr: st.Amount})
		case *mpl.Send:
			c.emit(Instr{Op: OpSend, StmtID: st.ID(), Var: st.Var, Expr: st.Dest})
		case *mpl.Recv:
			c.emit(Instr{Op: OpRecv, StmtID: st.ID(), Var: st.Var, Expr: st.Src})
		case *mpl.Bcast:
			c.emit(Instr{Op: OpBcast, StmtID: st.ID(), Var: st.Var, Expr: st.Root})
		case *mpl.Reduce:
			c.emit(Instr{Op: OpReduce, StmtID: st.ID(), Var: st.Var, Expr: st.Root})
		case *mpl.Chkpt:
			idx, ok := c.Enum.Index[st.ID()]
			if !ok {
				return fmt.Errorf("sim: checkpoint statement #%d not enumerated", st.ID())
			}
			c.emit(Instr{Op: OpChkpt, StmtID: st.ID(), Index: idx})
		case *mpl.While:
			top := c.emit(Instr{Op: OpBranchFalse, StmtID: st.ID(), Expr: st.Cond})
			if err := c.compileBody(st.Body); err != nil {
				return err
			}
			c.emit(Instr{Op: OpJump, StmtID: -1, Target: top})
			c.Instrs[top].Target = len(c.Instrs)
		case *mpl.If:
			br := c.emit(Instr{Op: OpBranchFalse, StmtID: st.ID(), Expr: st.Cond})
			if err := c.compileBody(st.Then); err != nil {
				return err
			}
			if len(st.Else) > 0 {
				jmp := c.emit(Instr{Op: OpJump, StmtID: -1})
				c.Instrs[br].Target = len(c.Instrs)
				if err := c.compileBody(st.Else); err != nil {
					return err
				}
				c.Instrs[jmp].Target = len(c.Instrs)
			} else {
				c.Instrs[br].Target = len(c.Instrs)
			}
		default:
			return fmt.Errorf("sim: unknown statement type %T", s)
		}
	}
	return nil
}

// Disassemble renders the instruction list for debugging.
func (c *Code) Disassemble() string {
	out := ""
	for pc, in := range c.Instrs {
		out += fmt.Sprintf("%4d  %-12s", pc, in.Op)
		switch in.Op {
		case OpAssign:
			out += fmt.Sprintf(" %s = %s", in.Var, mpl.ExprString(in.Expr))
		case OpWork:
			out += fmt.Sprintf(" %s", mpl.ExprString(in.Expr))
		case OpSend:
			out += fmt.Sprintf(" ->%s, %s", mpl.ExprString(in.Expr), in.Var)
		case OpRecv:
			out += fmt.Sprintf(" <-%s, %s", mpl.ExprString(in.Expr), in.Var)
		case OpBcast, OpReduce:
			out += fmt.Sprintf(" root=%s, %s", mpl.ExprString(in.Expr), in.Var)
		case OpChkpt:
			out += fmt.Sprintf(" C_%d", in.Index)
		case OpJump:
			out += fmt.Sprintf(" ->%d", in.Target)
		case OpBranchFalse:
			out += fmt.Sprintf(" %s ? fall : ->%d", mpl.ExprString(in.Expr), in.Target)
		}
		out += "\n"
	}
	return out
}
