package sim

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// eventSink collects observed events for assertions.
type eventSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (s *eventSink) OnEvent(e obs.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *eventSink) kinds() map[obs.Kind]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[obs.Kind]int)
	for _, e := range s.events {
		out[e.Kind]++
	}
	return out
}

// funcChaos adapts a function to LinkChaos.
type funcChaos func(class LinkClass, from, to, seq, attempt int) Verdict

func (f funcChaos) Verdict(class LinkClass, from, to, seq, attempt int) Verdict {
	return f(class, from, to, seq, attempt)
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// hardenedNet builds a 2-process hardened network for direct transport
// tests (no runtime, no detector) and registers cleanup of its timers.
func hardenedNet(t *testing.T, n int, cfg NetConfig, obsv obs.Observer) (*Network, *metrics.Counters) {
	t.Helper()
	net := NewNetwork(n)
	counters := &metrics.Counters{}
	cfg.DisableDetector = true
	if cfg.RTOFloor == 0 {
		cfg.RTOFloor = time.Millisecond
	}
	net.harden(cfg, counters, obsv, 1)
	t.Cleanup(net.tr.shutdown)
	return net, counters
}

// TestTransportTransparentAtZeroRates: with the hardened transport on but
// every fault rate zero, runs are behaviourally identical to the legacy
// reliable fabric — same final state, no faults, no retransmissions.
func TestTransportTransparentAtZeroRates(t *testing.T) {
	p := corpus.JacobiFig1(4)
	clean := runOK(t, p, 4)
	res := runOK(t, p, 4, func(c *Config) {
		c.Net = &NetConfig{}
	})
	if !reflect.DeepEqual(clean.FinalVars, res.FinalVars) {
		t.Errorf("hardened zero-rate run diverged:\nclean: %v\ngot:   %v", clean.FinalVars, res.FinalVars)
	}
	if res.Restarts != 0 {
		t.Errorf("restarts = %d, want 0", res.Restarts)
	}
	for _, name := range []string{MetricNetDrops, MetricNetDups, MetricNetReorders, MetricHBSuspects} {
		if got := res.Metrics.Custom[name]; got != 0 {
			t.Errorf("%s = %d, want 0", name, got)
		}
	}
}

// TestTransportDeliversUnderFaults: a hardened run over aggressively lossy
// links (all classes dropped, duplicated, reordered) still converges to the
// fault-free final state, with the repair machinery visibly engaged.
func TestTransportDeliversUnderFaults(t *testing.T) {
	p := corpus.JacobiFig1(3)
	clean := runOK(t, p, 3)
	lossy := funcChaos(func(class LinkClass, from, to, seq, attempt int) Verdict {
		h := int(class)*2654435761 + from*40503 + to*65599 + seq*2246822519 + attempt*3266489917
		h ^= h >> 7
		var v Verdict
		if attempt == 0 && h%5 == 0 { // 20% first-attempt loss, all classes
			v.Drop = true
			return v
		}
		if h%4 == 1 {
			v.Duplicate = true
		}
		if h%7 == 2 {
			v.Delay = time.Duration(h%997) * time.Microsecond
			v.Reorder = true
		}
		return v
	})
	res := runOK(t, p, 3, func(c *Config) {
		c.Net = &NetConfig{
			Chaos:          lossy,
			RTOFloor:       time.Millisecond,
			RTOCap:         20 * time.Millisecond,
			SuspectAfter:   2 * time.Second, // losses here are transient; never suspect
			HeartbeatEvery: 5 * time.Millisecond,
		}
	})
	if !reflect.DeepEqual(clean.FinalVars, res.FinalVars) {
		t.Errorf("lossy run diverged:\nclean: %v\ngot:   %v", clean.FinalVars, res.FinalVars)
	}
	if res.Restarts != 0 {
		t.Errorf("restarts = %d, want 0 (transport must absorb transient loss)", res.Restarts)
	}
	if res.Metrics.Custom[MetricNetRetransmits] == 0 {
		t.Error("no retransmissions under 20% first-attempt loss")
	}
	if res.Metrics.Custom[MetricNetRTOExpired] == 0 {
		t.Error("no RTO expiries under 20% first-attempt loss")
	}
}

// TestInflightReconstructionExactlyOnce is the golden-pinned delivery test:
// messages sent across a duplicating, reordering link, partially consumed,
// then cut by a recovery reset must be redelivered exactly once each, in
// per-channel sequence order — byte-for-byte the pinned list, regardless of
// what duplicates and delays the wire produced.
func TestInflightReconstructionExactlyOnce(t *testing.T) {
	dupReorder := funcChaos(func(class LinkClass, from, to, seq, attempt int) Verdict {
		if class != LinkData {
			return Verdict{}
		}
		v := Verdict{Duplicate: true} // every frame delivered twice
		if seq%3 == 1 {
			v.Delay = 2 * time.Millisecond // and every third frame overtaken
			v.Reorder = true
		}
		return v
	})
	net, counters := hardenedNet(t, 2, NetConfig{Chaos: dupReorder}, nil)

	const total = 10
	for seq := 0; seq < total; seq++ {
		net.Send(Message{Kind: MsgApp, From: 0, To: 1, Seq: seq, Value: 100 + seq})
	}
	// Consume the first 4 messages as the pre-failure execution did; the
	// transport must hand them over in seq order despite dup/reorder.
	for want := 0; want < 4; want++ {
		m, err := net.Recv(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if m.Seq != want {
			t.Fatalf("pre-failure delivery out of order: got seq %d, want %d", m.Seq, want)
		}
	}
	if counters.Snapshot().Custom[MetricNetDups] == 0 {
		t.Fatal("injector produced no duplicates; test is vacuous")
	}

	// Recovery line: sender logged seqs [0,10), receiver consumed [0,4).
	sendSeq := [][]int{{0, total}, {0, 0}}
	recvSeq := [][]int{{0, 0}, {4, 0}}
	net.ResetForRecovery(sendSeq, recvSeq)

	var got []Message
	for {
		m, ok := net.chans[0][1].tryPop(1e18)
		if !ok {
			break
		}
		got = append(got, m)
	}
	var want []Message
	for seq := 4; seq < total; seq++ {
		want = append(want, Message{Kind: MsgApp, From: 0, To: 1, Seq: seq, Value: 100 + seq})
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("in-flight reconstruction:\ngot:  %v\nwant: %v", got, want)
	}
	// The wire may still hold delayed duplicates of pre-reset frames; the
	// generation bump must keep every one of them out of the new queues.
	time.Sleep(5 * time.Millisecond)
	if m, ok := net.chans[0][1].tryPop(1e18); ok {
		t.Fatalf("stale wire frame leaked into post-reset queue: %+v", m)
	}
}

// TestKarnRuleNoSamplesFromRetransmits: when every frame needs a
// retransmission, the ambiguous acks must contribute zero RTT samples
// (Karn's rule); a clean link must accumulate them.
func TestKarnRuleNoSamplesFromRetransmits(t *testing.T) {
	dropFirst := funcChaos(func(class LinkClass, from, to, seq, attempt int) Verdict {
		return Verdict{Drop: class == LinkData && attempt == 0}
	})
	net, counters := hardenedNet(t, 2, NetConfig{Chaos: dropFirst, RTOCap: 5 * time.Millisecond}, nil)

	const total = 5
	for seq := 0; seq < total; seq++ {
		net.Send(Message{Kind: MsgApp, From: 0, To: 1, Seq: seq, Value: seq})
	}
	lk := net.tr.data[0][1]
	waitUntil(t, 5*time.Second, "all frames acked", func() bool {
		lk.mu.Lock()
		defer lk.mu.Unlock()
		return len(lk.unacked) == 0
	})
	for want := 0; want < total; want++ {
		m, err := net.Recv(0, 1)
		if err != nil || m.Seq != want {
			t.Fatalf("Recv = %+v, %v; want seq %d", m, err, want)
		}
	}
	if got := lk.est.Samples(); got != 0 {
		t.Errorf("estimator took %d RTT samples from retransmitted exchanges; Karn forbids any", got)
	}
	if got := counters.Snapshot().Custom[MetricNetRetransmits]; got < total {
		t.Errorf("%s = %d, want >= %d", MetricNetRetransmits, got, total)
	}

	// Control: an unmolested link must take samples.
	net2, _ := hardenedNet(t, 2, NetConfig{}, nil)
	net2.Send(Message{Kind: MsgApp, From: 0, To: 1, Seq: 0, Value: 1})
	lk2 := net2.tr.data[0][1]
	waitUntil(t, time.Second, "clean ack", func() bool {
		lk2.mu.Lock()
		defer lk2.mu.Unlock()
		return len(lk2.unacked) == 0
	})
	if lk2.est.Samples() == 0 {
		t.Error("clean link accumulated no RTT samples")
	}
}

// TestDetectorConvertsPartitionToRecovery: a one-way partition silences a
// peer; the heartbeat detector must convert that silence into the ordinary
// crash→recovery path, and once the partition heals the run must converge
// to the fault-free final state.
func TestDetectorConvertsPartitionToRecovery(t *testing.T) {
	p := corpus.JacobiFig1(3)
	clean := runOK(t, p, 3)

	const window = 150 * time.Millisecond
	var pmu sync.Mutex
	var epoch time.Time
	healed := false
	partition := funcChaos(func(class LinkClass, from, to, seq, attempt int) Verdict {
		pmu.Lock()
		defer pmu.Unlock()
		if epoch.IsZero() {
			epoch = time.Now()
		}
		if from == 0 && to == 1 {
			if time.Since(epoch) < window {
				return Verdict{Drop: true, Partitioned: true}
			}
			if !healed {
				healed = true
				return Verdict{Healed: true}
			}
		}
		return Verdict{}
	})
	sink := &eventSink{}
	res := runOK(t, p, 3, func(c *Config) {
		c.Net = &NetConfig{
			Chaos:          partition,
			HeartbeatEvery: 2 * time.Millisecond,
			SuspectAfter:   40 * time.Millisecond,
			RTOFloor:       time.Millisecond,
			RTOCap:         20 * time.Millisecond,
		}
		c.MaxRestarts = 30
		c.Observer = sink
	})
	if !reflect.DeepEqual(clean.FinalVars, res.FinalVars) {
		t.Errorf("post-heal run diverged:\nclean: %v\ngot:   %v", clean.FinalVars, res.FinalVars)
	}
	if res.Restarts < 1 {
		t.Errorf("restarts = %d, want >= 1 (partition must trigger recovery)", res.Restarts)
	}
	if got := res.Metrics.Custom[MetricHBSuspects]; got < 1 {
		t.Errorf("%s = %d, want >= 1", MetricHBSuspects, got)
	}
	if got := res.Metrics.Custom[MetricPartitionHealed]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricPartitionHealed, got)
	}
	kinds := sink.kinds()
	if kinds[obs.KindSuspect] < 1 {
		t.Errorf("no %s events observed (kinds: %v)", obs.KindSuspect, kinds)
	}
	if kinds[obs.KindRollback] < 1 || kinds[obs.KindRestart] < 1 {
		t.Errorf("suspicion did not flow through the rollback/restart path (kinds: %v)", kinds)
	}
}

// TestBacklogWatermark: flooding a channel past the configured watermark
// must raise the high-watermark gauge and publish one backlog event.
func TestBacklogWatermark(t *testing.T) {
	sink := &eventSink{}
	net, counters := hardenedNet(t, 2, NetConfig{BacklogWatermark: 4}, sink)
	const total = 12
	for seq := 0; seq < total; seq++ {
		net.Send(Message{Kind: MsgApp, From: 0, To: 1, Seq: seq, Value: seq})
	}
	waitUntil(t, time.Second, "queue to fill", func() bool {
		return counters.Snapshot().Custom[MetricNetBacklogMax] >= total
	})
	if kinds := sink.kinds(); kinds[obs.KindBacklog] != 1 {
		t.Errorf("backlog events = %d, want exactly 1 (latched)", kinds[obs.KindBacklog])
	}
}

// TestRetransmitEventsTagged: transport retransmissions surface as retry
// events tagged "retransmit", distinguishable from storage retries.
func TestRetransmitEventsTagged(t *testing.T) {
	dropFirst := funcChaos(func(class LinkClass, from, to, seq, attempt int) Verdict {
		return Verdict{Drop: class == LinkData && seq == 0 && attempt == 0}
	})
	sink := &eventSink{}
	net, _ := hardenedNet(t, 2, NetConfig{Chaos: dropFirst, RTOCap: 5 * time.Millisecond}, sink)
	net.Send(Message{Kind: MsgApp, From: 0, To: 1, Seq: 0, Value: 7})
	if m, err := net.Recv(0, 1); err != nil || m.Value != 7 {
		t.Fatalf("Recv = %+v, %v", m, err)
	}
	waitUntil(t, time.Second, "retransmit event", func() bool {
		sink.mu.Lock()
		defer sink.mu.Unlock()
		for _, e := range sink.events {
			if e.Kind == obs.KindRetry && e.Tag == "retransmit" {
				return true
			}
		}
		return false
	})
}

// TestTransportCountersWired spot-checks that each injected fault class
// lands in its counter.
func TestTransportCountersWired(t *testing.T) {
	cases := []struct {
		verdict Verdict
		metric  string
	}{
		{Verdict{Drop: true}, MetricNetDrops},
		{Verdict{Duplicate: true}, MetricNetDups},
		{Verdict{Reorder: true, Delay: time.Millisecond}, MetricNetReorders},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.metric, func(t *testing.T) {
			first := true
			var mu sync.Mutex
			one := funcChaos(func(class LinkClass, from, to, seq, attempt int) Verdict {
				mu.Lock()
				defer mu.Unlock()
				if class == LinkData && first {
					first = false
					return tc.verdict
				}
				return Verdict{}
			})
			net, counters := hardenedNet(t, 2, NetConfig{Chaos: one, RTOCap: 5 * time.Millisecond}, nil)
			net.Send(Message{Kind: MsgApp, From: 0, To: 1, Seq: 0, Value: 1})
			if _, err := net.Recv(0, 1); err != nil {
				t.Fatal(err)
			}
			waitUntil(t, time.Second, tc.metric, func() bool {
				return counters.Snapshot().Custom[tc.metric] == 1
			})
		})
	}
}
