package sim_test

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestConfigCountersLiveTap: a caller-supplied Counters is the run's real
// sink — visible mid-run by construction — and Result.Metrics snapshots it.
func TestConfigCountersLiveTap(t *testing.T) {
	counters := &metrics.Counters{}
	res, err := sim.Run(sim.Config{
		Program:  corpus.JacobiFig1(3),
		Nproc:    4,
		Counters: counters,
	})
	if err != nil {
		t.Fatal(err)
	}
	live := counters.Snapshot()
	if live.Checkpoints == 0 || live.AppMessages == 0 {
		t.Fatalf("caller's counters not fed: %+v", live)
	}
	if live.Checkpoints != res.Metrics.Checkpoints || live.AppMessages != res.Metrics.AppMessages {
		t.Errorf("live tap diverges from Result.Metrics: %v vs %v", live, res.Metrics)
	}
}

// TestChkptEventsCarrySaveDuration: every checkpoint observer event holds
// the wall time its save took, and each saving process publishes a
// last-save virtual-time gauge — the raw signals live telemetry turns into
// save-latency percentiles and checkpoint lag.
func TestChkptEventsCarrySaveDuration(t *testing.T) {
	rec := obs.NewRecorder()
	tm := sim.PaperTimeModel
	counters := &metrics.Counters{}
	_, err := sim.Run(sim.Config{
		Program:  corpus.JacobiFig1(3),
		Nproc:    4,
		Observer: rec,
		Counters: counters,
		Time:     &tm,
	})
	if err != nil {
		t.Fatal(err)
	}
	chkpts := 0
	for _, e := range rec.Events() {
		if e.Kind != obs.KindChkpt {
			continue
		}
		chkpts++
		if e.DurNS <= 0 {
			t.Fatalf("checkpoint event without save duration: %+v", e)
		}
	}
	if chkpts == 0 {
		t.Fatal("no checkpoint events observed")
	}
	gauges := counters.Snapshot().Gauges
	for p := 0; p < 4; p++ {
		name := sim.GaugeLastSaveVPrefix + string(rune('0'+p))
		v, ok := gauges[name]
		if !ok {
			t.Fatalf("gauge %s missing: %v", name, gauges)
		}
		if v <= 0 {
			t.Errorf("gauge %s = %g, want a positive virtual save time", name, v)
		}
	}
}
