package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	stdtime "time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Custom metrics counter names the hardened runtime records (in
// metrics.Snapshot.Custom). They are part of the metrics-stream contract:
// chaos soaks assert on them, and dashboards chart them.
const (
	// MetricStoreRetries counts storage operations retried after a
	// transient fault.
	MetricStoreRetries = "storage_retries"
	// MetricStoreRetryExhausted counts storage operations that kept
	// failing transiently through every backoff attempt.
	MetricStoreRetryExhausted = "storage_retry_exhausted"
	// MetricStoreRetryDenied counts retries a RetryBudget refused to fund:
	// the operation gave up early so a fleet-wide brownout does not
	// multiply into a retry storm.
	MetricStoreRetryDenied = "storage_retry_budget_denied"
	// MetricRecoveryDegraded accumulates recovery.Line.Degraded: candidate
	// recovery cuts skipped because their snapshots would not load.
	MetricRecoveryDegraded = "recovery_degraded"
	// MetricScrubQuarantined counts snapshots quarantined by pre-rollback
	// scrub passes.
	MetricScrubQuarantined = "storage_quarantined"
	// MetricSaveCrashes counts checkpoint saves that exhausted their
	// retries and were converted into a process crash (recovery then
	// rolls the application back instead of killing the run).
	MetricSaveCrashes = "chkpt_save_crashes"
)

// Default retry tuning: capped exponential backoff with ±50% jitter. The
// base is small because simulated storage faults clear quickly; the cap
// bounds recovery latency when a fault burst hits every attempt.
const (
	defaultStoreAttempts = 6
	defaultRetryBase     = 1 * stdtime.Millisecond
	defaultRetryCap      = 50 * stdtime.Millisecond
	defaultJitterFrac    = 0.5
)

// RetryBudget gates retries beyond the per-operation attempt cap. A fleet
// driver hands every job of one tenant the same budget, so a storage
// brownout hitting a thousand jobs at once costs a bounded number of
// retries fleet-wide instead of a thousand independent backoff storms.
// Implementations must be safe for concurrent use.
type RetryBudget interface {
	// AllowRetry reports whether one more retry of op may be spent. A
	// denial converts the pending transient error into immediate
	// exhaustion (the operation fails as if every attempt were used).
	AllowRetry(op string) bool
}

// RetryPolicy is the tunable shape of the storage retry layer: how many
// attempts a transiently-failing operation gets, how the backoff between
// them grows, how much seeded jitter decorrelates concurrent retries, and
// (optionally) a shared budget that may cut retries short. The zero value
// selects the defaults the runtime has always used (6 attempts, 1ms base
// doubling to a 50ms cap, ±50% jitter, no budget).
type RetryPolicy struct {
	// MaxAttempts bounds total tries per operation (first try included).
	// <= 0 selects the default (6); 1 disables retry.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt. <= 0 selects the default (1ms).
	BaseDelay stdtime.Duration
	// MaxDelay caps the backoff growth. <= 0 selects the default (50ms).
	MaxDelay stdtime.Duration
	// JitterFrac perturbs each backoff by ±JitterFrac (0.5 = ±50%). 0
	// selects the default (0.5); negative disables jitter entirely.
	JitterFrac float64
	// Budget, when non-nil, is consulted before every retry; a denial
	// stops retrying immediately. Nil means attempts alone bound retry.
	Budget RetryBudget
}

// withDefaults resolves zero fields to the documented defaults.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = defaultStoreAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = defaultRetryBase
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = defaultRetryCap
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = defaultJitterFrac
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
	}
	return p
}

// Backoff returns the pre-jitter delay before retry attempt `retry`
// (1-based: Backoff(1) precedes the first retry): BaseDelay doubled per
// step, capped at MaxDelay. Exposed so tests and capacity models can audit
// the exact schedule a policy produces.
func (p RetryPolicy) Backoff(retry int) stdtime.Duration {
	p = p.withDefaults()
	d := p.BaseDelay
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if d > p.MaxDelay {
		return p.MaxDelay
	}
	return d
}

// retryStore wraps the run's stable storage with bounded retry on
// transient faults (storage.ErrTransient): capped exponential backoff plus
// seeded jitter, a retry counter, and a retry event per attempt on the
// observer. Non-transient errors (not-found, duplicate, corrupt) pass
// through untouched — retrying cannot fix them and the recovery layer
// handles them by degrading.
type retryStore struct {
	inner    storage.Store
	policy   RetryPolicy
	counters *metrics.Counters
	obsv     obs.Observer

	mu  sync.Mutex
	rng *rand.Rand
}

var _ storage.Store = (*retryStore)(nil)

// newRetryStore wraps inner under the given policy (zero fields take
// defaults). The seed only perturbs backoff jitter (wall time), never
// results.
func newRetryStore(inner storage.Store, policy RetryPolicy, seed int64, counters *metrics.Counters, obsv obs.Observer) *retryStore {
	return &retryStore{
		inner:    inner,
		policy:   policy.withDefaults(),
		counters: counters,
		obsv:     obsv,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// do runs op with retry-on-transient. It returns the final error, still
// matching storage.ErrTransient when every attempt failed transiently.
func (r *retryStore) do(op string, f func() error) error {
	var err error
	for attempt := 0; attempt < r.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			if b := r.policy.Budget; b != nil && !b.AllowRetry(op) {
				r.counters.Inc(MetricStoreRetryDenied, 1)
				r.counters.Inc(MetricStoreRetryExhausted, 1)
				return fmt.Errorf("sim: storage %s retry budget exhausted after %d attempts: %w", op, attempt, err)
			}
			r.counters.Inc(MetricStoreRetries, 1)
			if r.obsv != nil {
				r.obsv.OnEvent(obs.Event{
					Kind: obs.KindRetry, Proc: -1, Inc: -1,
					Tag: op, Label: err.Error(),
				})
			}
			stdtime.Sleep(r.jittered(r.policy.Backoff(attempt)))
		}
		err = f()
		if err == nil || !errors.Is(err, storage.ErrTransient) {
			return err
		}
	}
	r.counters.Inc(MetricStoreRetryExhausted, 1)
	return fmt.Errorf("sim: storage %s failed after %d attempts: %w", op, r.policy.MaxAttempts, err)
}

// jittered perturbs d by ±JitterFrac so synchronized retries from many
// processes spread out instead of hammering storage in lockstep.
func (r *retryStore) jittered(d stdtime.Duration) stdtime.Duration {
	if r.policy.JitterFrac <= 0 {
		return d
	}
	r.mu.Lock()
	f := 1 - r.policy.JitterFrac + 2*r.policy.JitterFrac*r.rng.Float64()
	r.mu.Unlock()
	return stdtime.Duration(float64(d) * f)
}

func (r *retryStore) Save(s storage.Snapshot) error {
	return r.do("save", func() error { return r.inner.Save(s) })
}

func (r *retryStore) Get(proc, cfgIndex, instance int) (storage.Snapshot, error) {
	var s storage.Snapshot
	err := r.do("get", func() (err error) {
		s, err = r.inner.Get(proc, cfgIndex, instance)
		return err
	})
	return s, err
}

func (r *retryStore) Latest(proc, cfgIndex int) (storage.Snapshot, error) {
	var s storage.Snapshot
	err := r.do("latest", func() (err error) {
		s, err = r.inner.Latest(proc, cfgIndex)
		return err
	})
	return s, err
}

func (r *retryStore) List(proc int) ([]storage.Snapshot, error) {
	var out []storage.Snapshot
	err := r.do("list", func() (err error) {
		out, err = r.inner.List(proc)
		return err
	})
	return out, err
}

func (r *retryStore) Indexes(n int) ([]int, error) {
	var out []int
	err := r.do("indexes", func() (err error) {
		out, err = r.inner.Indexes(n)
		return err
	})
	return out, err
}

func (r *retryStore) Delete(proc, cfgIndex, instance int) error {
	return r.do("delete", func() error { return r.inner.Delete(proc, cfgIndex, instance) })
}
