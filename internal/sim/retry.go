package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	stdtime "time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Custom metrics counter names the hardened runtime records (in
// metrics.Snapshot.Custom). They are part of the metrics-stream contract:
// chaos soaks assert on them, and dashboards chart them.
const (
	// MetricStoreRetries counts storage operations retried after a
	// transient fault.
	MetricStoreRetries = "storage_retries"
	// MetricStoreRetryExhausted counts storage operations that kept
	// failing transiently through every backoff attempt.
	MetricStoreRetryExhausted = "storage_retry_exhausted"
	// MetricRecoveryDegraded accumulates recovery.Line.Degraded: candidate
	// recovery cuts skipped because their snapshots would not load.
	MetricRecoveryDegraded = "recovery_degraded"
	// MetricScrubQuarantined counts snapshots quarantined by pre-rollback
	// scrub passes.
	MetricScrubQuarantined = "storage_quarantined"
	// MetricSaveCrashes counts checkpoint saves that exhausted their
	// retries and were converted into a process crash (recovery then
	// rolls the application back instead of killing the run).
	MetricSaveCrashes = "chkpt_save_crashes"
)

// Retry tuning: capped exponential backoff with ±50% jitter. The base is
// small because simulated storage faults clear quickly; the cap bounds
// recovery latency when a fault burst hits every attempt.
const (
	defaultStoreAttempts = 6
	retryBaseDelay       = 1 * stdtime.Millisecond
	retryMaxDelay        = 50 * stdtime.Millisecond
)

// retryStore wraps the run's stable storage with bounded retry on
// transient faults (storage.ErrTransient): capped exponential backoff plus
// seeded jitter, a retry counter, and a retry event per attempt on the
// observer. Non-transient errors (not-found, duplicate, corrupt) pass
// through untouched — retrying cannot fix them and the recovery layer
// handles them by degrading.
type retryStore struct {
	inner    storage.Store
	attempts int
	counters *metrics.Counters
	obsv     obs.Observer

	mu  sync.Mutex
	rng *rand.Rand
}

var _ storage.Store = (*retryStore)(nil)

// newRetryStore wraps inner. attempts <= 0 selects the default; 1 disables
// retry. The seed only perturbs backoff jitter (wall time), never results.
func newRetryStore(inner storage.Store, attempts int, seed int64, counters *metrics.Counters, obsv obs.Observer) *retryStore {
	if attempts <= 0 {
		attempts = defaultStoreAttempts
	}
	return &retryStore{
		inner:    inner,
		attempts: attempts,
		counters: counters,
		obsv:     obsv,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// do runs op with retry-on-transient. It returns the final error, still
// matching storage.ErrTransient when every attempt failed transiently.
func (r *retryStore) do(op string, f func() error) error {
	backoff := retryBaseDelay
	var err error
	for attempt := 0; attempt < r.attempts; attempt++ {
		if attempt > 0 {
			r.counters.Inc(MetricStoreRetries, 1)
			if r.obsv != nil {
				r.obsv.OnEvent(obs.Event{
					Kind: obs.KindRetry, Proc: -1, Inc: -1,
					Tag: op, Label: err.Error(),
				})
			}
			stdtime.Sleep(r.jittered(backoff))
			backoff *= 2
			if backoff > retryMaxDelay {
				backoff = retryMaxDelay
			}
		}
		err = f()
		if err == nil || !errors.Is(err, storage.ErrTransient) {
			return err
		}
	}
	r.counters.Inc(MetricStoreRetryExhausted, 1)
	return fmt.Errorf("sim: storage %s failed after %d attempts: %w", op, r.attempts, err)
}

// jittered perturbs d by ±50% so synchronized retries from many processes
// spread out instead of hammering storage in lockstep.
func (r *retryStore) jittered(d stdtime.Duration) stdtime.Duration {
	r.mu.Lock()
	f := 0.5 + r.rng.Float64()
	r.mu.Unlock()
	return stdtime.Duration(float64(d) * f)
}

func (r *retryStore) Save(s storage.Snapshot) error {
	return r.do("save", func() error { return r.inner.Save(s) })
}

func (r *retryStore) Get(proc, cfgIndex, instance int) (storage.Snapshot, error) {
	var s storage.Snapshot
	err := r.do("get", func() (err error) {
		s, err = r.inner.Get(proc, cfgIndex, instance)
		return err
	})
	return s, err
}

func (r *retryStore) Latest(proc, cfgIndex int) (storage.Snapshot, error) {
	var s storage.Snapshot
	err := r.do("latest", func() (err error) {
		s, err = r.inner.Latest(proc, cfgIndex)
		return err
	})
	return s, err
}

func (r *retryStore) List(proc int) ([]storage.Snapshot, error) {
	var out []storage.Snapshot
	err := r.do("list", func() (err error) {
		out, err = r.inner.List(proc)
		return err
	})
	return out, err
}

func (r *retryStore) Indexes(n int) ([]int, error) {
	var out []int
	err := r.do("indexes", func() (err error) {
		out, err = r.inner.Indexes(n)
		return err
	})
	return out, err
}

func (r *retryStore) Delete(proc, cfgIndex, instance int) error {
	return r.do("delete", func() error { return r.inner.Delete(proc, cfgIndex, instance) })
}
