package sim

import (
	"errors"
	"sync"

	"repro/internal/vclock"
)

// MsgKind classifies runtime messages.
type MsgKind int

// Message kinds: application payloads, in-band protocol markers
// (Chandy-Lamport), and out-of-band control messages (SaS coordination).
const (
	MsgApp MsgKind = iota + 1
	MsgMarker
	MsgCtrl
)

// Message is one network message.
type Message struct {
	Kind      MsgKind
	From, To  int
	Seq       int // per (From,To) application sequence number
	Value     int
	Clock     vclock.VC
	Piggyback []int  // protocol payload carried on app messages
	Tag       string // marker/control tag
	// ArriveV is the virtual time at which the message becomes available
	// to the receiver (0 when virtual-time accounting is off).
	ArriveV float64
}

// ErrAborted is returned by blocking receives when the runtime aborts the
// incarnation (failure injection).
var ErrAborted = errors.New("sim: incarnation aborted")

// queue is an unbounded FIFO with blocking receive and abort support. The
// head index makes pop O(1) without reslicing the backing array from the
// front: a steady-state pop/push cycle reuses one backing array instead of
// abandoning a slice head to the garbage collector per message.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Message
	head   int // items[:head] are consumed
	closed bool
	// onDepth, when set, observes the queue depth after every push (the
	// hardened transport's backlog watermark tap). Called outside q.mu.
	onDepth func(depth int)
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(m Message) {
	q.mu.Lock()
	q.items = append(q.items, m)
	depth := len(q.items) - q.head
	q.mu.Unlock()
	q.cond.Signal()
	if q.onDepth != nil {
		q.onDepth(depth)
	}
}

// popHeadLocked consumes the head message. Requires q.mu and a non-empty
// queue. Once the queue drains, the backing array rewinds for reuse; the
// consumed slot is zeroed so popped payloads don't pin memory.
func (q *queue) popHeadLocked() Message {
	m := q.items[q.head]
	q.items[q.head] = Message{}
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return m
}

// pop blocks until a message is available or the queue is aborted.
func (q *queue) pop() (Message, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == q.head && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return Message{}, ErrAborted
	}
	return q.popHeadLocked(), nil
}

// tryPopMarker removes and returns the head only when it is a marker that
// has virtually arrived (ArriveV <= maxArrive). Deferring messages from
// the virtual future keeps opportunistic polling causally sound: a real
// process cannot react to a notification before it arrives.
func (q *queue) tryPopMarker(maxArrive float64) (Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head < len(q.items) && q.items[q.head].Kind == MsgMarker && q.items[q.head].ArriveV <= maxArrive {
		return q.popHeadLocked(), true
	}
	return Message{}, false
}

// tryPop removes and returns the head message of any kind, subject to the
// same virtual-arrival horizon.
func (q *queue) tryPop(maxArrive float64) (Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.items) || q.closed || q.items[q.head].ArriveV > maxArrive {
		return Message{}, false
	}
	return q.popHeadLocked(), true
}

func (q *queue) abort() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// reset clears contents and reopens the queue with the given messages.
func (q *queue) reset(items []Message) {
	q.mu.Lock()
	q.items = append(q.items[:0], items...)
	q.head = 0
	q.closed = false
	q.mu.Unlock()
}

// Network provides n² FIFO application/marker channels, one control queue
// per process, and a sender-based message log used to reconstruct channel
// contents after a rollback.
type Network struct {
	n     int
	chans [][]*queue // [from][to], app + marker traffic
	ctrl  []*queue   // [to], out-of-band control traffic

	// tr, when non-nil, is the hardened transport (Config.Net): every
	// frame crosses lossy links with sequencing, acks, and retransmission
	// before reaching the queues above. Nil keeps the legacy reliable
	// direct-push fabric, byte-for-byte identical to earlier revisions.
	tr *transport

	mu  sync.Mutex
	log [][][]Message // [from][to] append-only log of app messages
}

// NewNetwork creates the fully connected network for n processes.
func NewNetwork(n int) *Network {
	net := &Network{
		n:     n,
		chans: make([][]*queue, n),
		ctrl:  make([]*queue, n),
		log:   make([][][]Message, n),
	}
	for i := 0; i < n; i++ {
		net.chans[i] = make([]*queue, n)
		net.log[i] = make([][]Message, n)
		for j := 0; j < n; j++ {
			net.chans[i][j] = newQueue()
		}
		net.ctrl[i] = newQueue()
	}
	return net
}

// N returns the process count.
func (net *Network) N() int { return net.n }

// Send delivers an application message (asynchronous, FIFO) and logs it
// for potential rollback re-injection. The sender-based log records the
// message before it touches the (possibly lossy) transport: recovery
// reconstructs in-flight messages from the log, never from the wire.
func (net *Network) Send(m Message) {
	net.mu.Lock()
	net.log[m.From][m.To] = append(net.log[m.From][m.To], m)
	net.mu.Unlock()
	if lk := net.dataLink(m.From, m.To); lk != nil {
		lk.send(m)
		return
	}
	net.chans[m.From][m.To].push(m)
}

// SendMarker delivers an in-band marker on the (from, to) channel. Markers
// share the data link with application messages so the in-band FIFO
// ordering the Chandy-Lamport protocol depends on survives the transport.
func (net *Network) SendMarker(m Message) {
	if lk := net.dataLink(m.From, m.To); lk != nil {
		lk.send(m)
		return
	}
	net.chans[m.From][m.To].push(m)
}

// SendCtrl delivers an out-of-band control message to m.To.
func (net *Network) SendCtrl(m Message) {
	if net.tr != nil && m.From != m.To && m.From >= 0 && m.From < net.n {
		net.tr.ctrl[m.From][m.To].send(m)
		return
	}
	net.ctrl[m.To].push(m)
}

// dataLink returns the hardened in-band link for (from, to), or nil when
// the network is not hardened (or for degenerate self-sends).
func (net *Network) dataLink(from, to int) *link {
	if net.tr == nil || from == to {
		return nil
	}
	return net.tr.data[from][to]
}

// Recv blocks for the next in-band message on channel (from, to).
func (net *Network) Recv(from, to int) (Message, error) {
	return net.chans[from][to].pop()
}

// PollMarker removes a leading marker from channel (from, to) if it has
// arrived by maxArrive virtual time (use math.Inf(1) when accounting is
// off).
func (net *Network) PollMarker(from, to int, maxArrive float64) (Message, bool) {
	return net.chans[from][to].tryPopMarker(maxArrive)
}

// PollCtrl removes the next control message for process to, if it has
// arrived by maxArrive virtual time.
func (net *Network) PollCtrl(to int, maxArrive float64) (Message, bool) {
	return net.ctrl[to].tryPop(maxArrive)
}

// RecvCtrl blocks for the next control message for process to.
func (net *Network) RecvCtrl(to int) (Message, error) {
	return net.ctrl[to].pop()
}

// Abort wakes every blocked receiver with ErrAborted.
func (net *Network) Abort() {
	for i := range net.chans {
		for j := range net.chans[i] {
			net.chans[i][j].abort()
		}
	}
	for _, q := range net.ctrl {
		q.abort()
	}
}

// ResetForRecovery clears all queues and re-injects, for each channel
// (p→q), the logged application messages with sequence numbers in
// (recvSeq[q][p], sendSeq[p][q]] — exactly the messages in flight at the
// recovery line. Messages the sender will regenerate during replay
// (seq > sendSeq[p][q]) are dropped from the log as well.
func (net *Network) ResetForRecovery(sendSeq, recvSeq [][]int) {
	// Invalidate the transport first: bumping link generations guarantees
	// that frames still on the (chaos-delayed) wire and pending retransmit
	// timers from the rolled-back incarnation are discarded on arrival,
	// and cannot pollute the reconstructed channel state below. In-flight
	// messages are re-injected from the sender-based log directly into the
	// queues — recovery bypasses the lossy links entirely.
	if net.tr != nil {
		net.tr.reset()
	}
	net.mu.Lock()
	defer net.mu.Unlock()
	for p := 0; p < net.n; p++ {
		for q := 0; q < net.n; q++ {
			var inflight []Message
			var keepLog []Message
			for _, m := range net.log[p][q] {
				if m.Seq >= sendSeq[p][q] {
					continue // will be regenerated by replay
				}
				keepLog = append(keepLog, m)
				if m.Seq >= recvSeq[q][p] {
					inflight = append(inflight, m)
				}
			}
			net.log[p][q] = keepLog
			net.chans[p][q].reset(inflight)
		}
		net.ctrl[p].reset(nil)
	}
}
