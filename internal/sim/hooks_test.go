package sim

import (
	"testing"
	"time"

	"repro/internal/corpus"
)

// probeHooks exercises the full Proc API surface from inside a protocol.
type probeHooks struct {
	NoHooks
	sawRank   int
	sawN      int
	steps     int
	sentCtrl  bool
	gotCtrl   bool
	sentMark  bool
	gotMarker bool
}

func (h *probeHooks) OnStep(p *Proc) error {
	h.steps++
	h.sawRank = p.Rank()
	h.sawN = p.N()
	if p.ProtoState() == nil {
		p.SetProtoState(h)
	}
	_ = p.Clock()
	_ = p.Var("x")
	_ = p.Events()
	_ = p.Instance(1)
	_ = p.VTime()
	p.Counters().Inc("probe", 1)
	// On the first step, rank 0 pings rank 1 with a control message and a
	// marker.
	if h.steps == 1 && p.Rank() == 0 && p.N() > 1 {
		if err := p.SendCtrl(1, "ping", []int{7}); err != nil {
			return err
		}
		if err := p.SendMarker(1, "mark", []int{9}); err != nil {
			return err
		}
		h.sentCtrl = true
		h.sentMark = true
	}
	return nil
}

func (h *probeHooks) OnCtrl(p *Proc, m Message) error {
	if m.Tag == "ping" && m.Piggyback[0] == 7 {
		h.gotCtrl = true
	}
	return nil
}

func (h *probeHooks) OnMarker(p *Proc, m Message) error {
	if m.Tag == "mark" && m.Piggyback[0] == 9 {
		h.gotMarker = true
	}
	return nil
}

func (h *probeHooks) OnHalt(p *Proc) error {
	// Drain any marker that raced past the last boundary.
	for from := 0; from < p.N(); from++ {
		if from == p.Rank() {
			continue
		}
		if m, ok := p.PollMarker(from); ok {
			if err := h.OnMarker(p, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func TestHooksAPISurface(t *testing.T) {
	hooks := make([]*probeHooks, 2)
	res, err := Run(Config{
		Program: corpus.JacobiFig1(2),
		Nproc:   2,
		Hooks: func(rank, nproc int) Hooks {
			hooks[rank] = &probeHooks{}
			return hooks[rank]
		},
		Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !hooks[0].sentCtrl || !hooks[0].sentMark {
		t.Error("rank 0 did not send probes")
	}
	if !hooks[1].gotCtrl {
		t.Error("rank 1 missed the control ping")
	}
	if !hooks[1].gotMarker {
		t.Error("rank 1 missed the marker")
	}
	for r, h := range hooks {
		if h.sawRank != r || h.sawN != 2 {
			t.Errorf("hook %d observed rank=%d n=%d", r, h.sawRank, h.sawN)
		}
		if h.steps == 0 {
			t.Errorf("hook %d never stepped", r)
		}
	}
	if res.Metrics.Custom["probe"] == 0 {
		t.Error("custom counter not recorded")
	}
	if res.Metrics.CtrlMessages != 2 {
		t.Errorf("ctrl messages = %d, want 2 (ping + marker)", res.Metrics.CtrlMessages)
	}
}

// blockingCtrlHooks exercises Proc.RecvCtrl (the blocking wait). The token
// can also be consumed by the runtime's boundary polling (OnCtrl), so both
// paths mark receipt — whichever wins the race.
type blockingCtrlHooks struct {
	NoHooks
	sent bool
	got  bool
}

func (h *blockingCtrlHooks) OnCtrl(p *Proc, m Message) error {
	if m.Tag == "token" {
		h.got = true
	}
	return nil
}

func (h *blockingCtrlHooks) AtChkptStmt(p *Proc, idx int) (bool, error) {
	if p.Rank() == 0 {
		if !h.sent {
			h.sent = true
			if err := p.SendCtrl(1, "token", nil); err != nil {
				return true, err
			}
		}
		return true, nil
	}
	if p.Rank() == 1 && !h.got {
		for {
			m, err := p.RecvCtrl()
			if err != nil {
				return false, err
			}
			if m.Tag == "token" {
				h.got = true
				return true, nil
			}
		}
	}
	return true, nil
}

func TestRecvCtrlBlocks(t *testing.T) {
	var h1 *blockingCtrlHooks
	_, err := Run(Config{
		Program: corpus.JacobiFig1(2),
		Nproc:   2,
		Hooks: func(rank, nproc int) Hooks {
			h := &blockingCtrlHooks{}
			if rank == 1 {
				h1 = h
			}
			return h
		},
		Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h1 == nil || !h1.got {
		t.Error("rank 1 never received the blocking control token")
	}
}
