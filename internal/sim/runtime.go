package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/mpl"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Failure schedules an injected crash: in the incarnation it applies to,
// process Proc fails after recording AfterEvents local events. The
// runtime then aborts the incarnation, chooses a recovery line, rolls the
// whole application back, and resumes — the global-restart model of the
// paper's coordination-free scheme.
type Failure struct {
	Proc        int
	AfterEvents int
}

// Crash schedules an injected crash addressed by incarnation. Unlike the
// positional Failures list (one entry per incarnation), Crashes can name
// several processes in the same incarnation — concurrent failures — and
// target incarnations k >= 1 without padding — failures that strike while
// the application is still replaying from a recovery line.
type Crash struct {
	Inc         int // incarnation the crash applies to
	Proc        int
	AfterEvents int
}

// VCrash is Crash in virtual time: process Proc fails when its virtual
// clock reaches At during incarnation Inc (requires Config.Time).
type VCrash struct {
	Inc  int
	Proc int
	At   float64
}

// ErrCanceled reports a run stopped early because Config.Cancel closed.
// The store still holds every checkpoint saved so far: the job is parked,
// not lost, and a later Run over the same store resumes from its recovery
// line.
var ErrCanceled = errors.New("sim: run canceled")

// RecoveryFunc chooses the recovery line after a failure. The default is
// recovery.StraightCut. Returning recovery.ErrNoRecoveryLine restarts the
// application from its initial state.
type RecoveryFunc func(st storage.Store, n int) (*recovery.Line, error)

// Config configures a run.
type Config struct {
	Program *mpl.Program
	Nproc   int
	// Hooks builds the per-process protocol; nil runs the coordination-free
	// application-driven scheme.
	Hooks HooksFactory
	// Store is the stable storage; nil uses a fresh in-memory store.
	Store storage.Store
	// Input supplies input(i) data per process; nil makes input(...) an
	// error.
	Input func(rank, i int) int
	// MaxSteps bounds each process's instruction count per incarnation
	// (default 1 << 20).
	MaxSteps int
	// Failures[k] is injected during incarnation k. Incarnations beyond the
	// list run failure-free.
	Failures []Failure
	// Time enables virtual-time accounting with the given cost model.
	Time *TimeModel
	// VFailures[k] crashes a process when its virtual clock reaches the
	// given time during incarnation k (requires Time).
	VFailures []VFailure
	// Crashes schedules additional crashes by (incarnation, process); see
	// Crash. When several triggers name the same process in the same
	// incarnation, the earliest event count wins.
	Crashes []Crash
	// VCrashes schedules additional virtual-time crashes by incarnation
	// (requires Time); the earliest time wins on collision.
	VCrashes []VCrash
	// MaxRestarts bounds recovery attempts (default: one more than the
	// total number of scheduled failures).
	MaxRestarts int
	// MaxStoreAttempts bounds the attempts per stable-storage operation
	// when the store reports transient faults (storage.ErrTransient);
	// attempts back off exponentially with jitter. 0 selects the default
	// (6); 1 disables retry. A checkpoint save that exhausts its attempts
	// crashes the saving process, turning a storage outage into an
	// ordinary recovery instead of a failed run. Shorthand for
	// Retry.MaxAttempts; ignored when Retry is set.
	MaxStoreAttempts int
	// Retry, when non-nil, fully specifies the storage retry layer —
	// attempt cap, backoff shape, jitter, and an optional shared
	// RetryBudget (fleet drivers use the budget to bound retries across
	// many concurrent jobs). Nil falls back to MaxStoreAttempts with
	// default backoff.
	Retry *RetryPolicy
	// Cancel, when non-nil, requests early termination when closed: the
	// run stops at the next incarnation boundary — or aborts the current
	// incarnation mid-flight — and returns ErrCanceled. Checkpoints
	// already saved remain in the store, so a canceled job is *parked*,
	// not lost: a later run over the same store resumes from its recovery
	// line. Fleet drain uses this to checkpoint-and-park in-flight jobs.
	Cancel <-chan struct{}
	// Recover chooses the recovery line (default recovery.StraightCut).
	Recover RecoveryFunc
	// DisableTrace skips event recording (benchmarks).
	DisableTrace bool
	// Observer, when set, receives every runtime event (sends, receives,
	// checkpoints, blocks, rollbacks, restarts) as it happens — the
	// observability layer's tap. Unlike Trace it spans ALL incarnations,
	// not just the final one, and it is independent of DisableTrace.
	// Implementations must be safe for concurrent use.
	Observer obs.Observer
	// Counters, when set, is the metrics sink the run accumulates into
	// instead of a fresh private one — the live-telemetry tap: an
	// exposition server can snapshot it WHILE the run executes instead of
	// waiting for Result.Metrics. Pre-existing contents are kept (and so
	// appear in Result.Metrics); pass a fresh Counters for per-run totals.
	Counters *metrics.Counters
	// Net, when set, hardens the network: every message crosses a lossy
	// link layer (optionally driven by a fault injector, Net.Chaos) with
	// per-channel sequencing, duplicate suppression, ack/retransmit under
	// a netestim-driven RTO, and a heartbeat failure detector that turns
	// silent peers into ordinary crash→recovery. Nil keeps the legacy
	// reliable in-process fabric, behaviourally identical to prior
	// revisions.
	Net *NetConfig
	// Timeout aborts a deadlocked incarnation (default 30s). Programs with
	// mismatched sends/receives otherwise block forever.
	Timeout time.Duration
	// Jitter perturbs the goroutine schedule with a seeded random yield
	// pattern at instruction boundaries. Different seeds explore different
	// real-time interleavings (marker arrival orders, poll timings);
	// results of deterministic programs must not change — which is exactly
	// what schedule-sweep tests assert. 0 disables jitter.
	Jitter int64
	// WallClock overrides the wall-clock source used for duration
	// measurements (checkpoint save latency, blocked time). Nil means
	// time.Now. Determinism hook: golden tests pin it to a constant so
	// measured durations — which otherwise vary run to run — stay zero in
	// the canonical event stream.
	WallClock func() time.Time
	// NoPrune disables liveness-minimized checkpoint payloads: application
	// checkpoints persist the full variable environment instead of the
	// per-site live-set manifest, reproducing pre-pruning byte counts. The
	// A/B escape hatch behind the CLIs' -no-prune flags.
	NoPrune bool
}

// Result reports a completed run.
type Result struct {
	// Trace records the FINAL incarnation's events (earlier incarnations
	// are rolled back; their surviving effects live in the checkpoints).
	Trace *trace.Trace
	// FinalVars is each process's variable state at halt.
	FinalVars []map[string]int
	// Metrics are the accumulated counters across all incarnations.
	Metrics metrics.Snapshot
	// Restarts is the number of recoveries performed.
	Restarts int
	// RolledBack accumulates recovery.Line.Rollbacks over all restarts
	// (domino measure for uncoordinated recovery).
	RolledBack int
	// Store is the stable storage after the run.
	Store storage.Store
	// VTimes are the per-process virtual clocks at completion (only with
	// Config.Time); VTime is their maximum — the application's makespan.
	VTimes []float64
	VTime  float64
}

// Run executes the program to completion under the configured protocol and
// failure schedule.
func Run(cfg Config) (*Result, error) {
	if cfg.Program == nil || cfg.Nproc <= 0 {
		return nil, errors.New("sim: Config requires Program and positive Nproc")
	}
	code, err := Compile(cfg.Program)
	if err != nil {
		return nil, err
	}
	hooksFactory := cfg.Hooks
	if hooksFactory == nil {
		hooksFactory = NoProtocol
	}
	st := cfg.Store
	if st == nil {
		st = storage.NewMemory()
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1 << 20
	}
	maxRestarts := cfg.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = len(cfg.Failures) + len(cfg.VFailures) +
			len(cfg.Crashes) + len(cfg.VCrashes) + 1
	}
	for _, c := range cfg.Crashes {
		if c.Proc < 0 || c.Proc >= cfg.Nproc {
			return nil, fmt.Errorf("sim: crash names process %d of %d", c.Proc, cfg.Nproc)
		}
		if c.Inc < 0 {
			return nil, fmt.Errorf("sim: crash names incarnation %d", c.Inc)
		}
	}
	for _, c := range cfg.VCrashes {
		if c.Proc < 0 || c.Proc >= cfg.Nproc {
			return nil, fmt.Errorf("sim: vcrash names process %d of %d", c.Proc, cfg.Nproc)
		}
		if c.Inc < 0 {
			return nil, fmt.Errorf("sim: vcrash names incarnation %d", c.Inc)
		}
		if cfg.Time == nil {
			return nil, errors.New("sim: VCrashes require Config.Time")
		}
	}
	chooseLine := cfg.Recover
	if chooseLine == nil {
		chooseLine = recovery.StraightCut
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}

	n := cfg.Nproc
	net := NewNetwork(n)
	counters := cfg.Counters
	if counters == nil {
		counters = &metrics.Counters{}
	}
	if cfg.Net != nil {
		net.harden(*cfg.Net, counters, cfg.Observer, cfg.Jitter+0x7f4a7c15)
		// Stop retransmit timers and orphan delayed deliveries once the
		// run is over, whatever path it exits by.
		defer net.tr.shutdown()
	}
	res := &Result{Store: st}
	// Every runtime access to stable storage goes through the retry
	// wrapper; Result.Store and Scrub still see the caller's store
	// directly. The seed only perturbs backoff jitter, never results.
	policy := RetryPolicy{MaxAttempts: cfg.MaxStoreAttempts}
	if cfg.Retry != nil {
		policy = *cfg.Retry
	}
	rst := newRetryStore(st, policy, cfg.Jitter+0x5bd1e995, counters, cfg.Observer)

	var line *recovery.Line // nil = start from scratch
	var restartV float64    // wall (virtual) time at which the restart begins
	for incarnation := 0; ; incarnation++ {
		if cfg.Cancel != nil {
			select {
			case <-cfg.Cancel:
				return nil, ErrCanceled
			default:
			}
		}
		var tr *trace.Trace
		if !cfg.DisableTrace {
			tr = trace.NewTrace(n)
		}
		failAfter := make([]int, n)
		vfailAt := make([]float64, n)
		for p := range failAfter {
			failAfter[p] = -1
			vfailAt[p] = -1
		}
		if incarnation < len(cfg.Failures) {
			f := cfg.Failures[incarnation]
			if f.Proc < 0 || f.Proc >= n {
				return nil, fmt.Errorf("sim: failure names process %d of %d", f.Proc, n)
			}
			failAfter[f.Proc] = f.AfterEvents
		}
		if incarnation < len(cfg.VFailures) {
			f := cfg.VFailures[incarnation]
			if f.Proc < 0 || f.Proc >= n {
				return nil, fmt.Errorf("sim: vfailure names process %d of %d", f.Proc, n)
			}
			if cfg.Time == nil {
				return nil, errors.New("sim: VFailures require Config.Time")
			}
			vfailAt[f.Proc] = f.At
		}
		for _, c := range cfg.Crashes {
			if c.Inc != incarnation {
				continue
			}
			if failAfter[c.Proc] < 0 || c.AfterEvents < failAfter[c.Proc] {
				failAfter[c.Proc] = c.AfterEvents
			}
		}
		for _, c := range cfg.VCrashes {
			if c.Inc != incarnation {
				continue
			}
			if vfailAt[c.Proc] < 0 || c.At < vfailAt[c.Proc] {
				vfailAt[c.Proc] = c.At
			}
		}

		procs := make([]*Proc, n)
		for r := 0; r < n; r++ {
			procs[r] = newProc(r, code, net, tr, rst, counters, hooksFactory(r, n),
				cfg.Input, maxSteps, failAfter[r], cfg.Time, vfailAt[r],
				cfg.Observer, incarnation)
			procs[r].noPrune = cfg.NoPrune
			if cfg.Jitter != 0 {
				procs[r].jitter = rand.New(rand.NewSource(cfg.Jitter + int64(r)*7919 + int64(incarnation)))
			}
			if cfg.WallClock != nil {
				procs[r].wallNow = cfg.WallClock
			}
			if line != nil {
				if err := procs[r].restore(line.Snapshots[r]); err != nil {
					return nil, err
				}
			}
			if restartV > 0 && procs[r].vtime < restartV {
				procs[r].vtime = restartV
			}
		}

		errs := make(chan error, n)
		for _, p := range procs {
			p := p
			go func() { errs <- p.run() }()
		}
		var timedOut atomic.Bool
		watchdog := time.AfterFunc(timeout, func() {
			timedOut.Store(true)
			net.Abort()
		})
		// Cancellation watcher: a drain request aborts the incarnation the
		// same way a watchdog or failure detector does — blocked receivers
		// wake with ErrAborted — and the run returns ErrCanceled below.
		var canceled atomic.Bool
		var stopCancelWatch chan struct{}
		if cfg.Cancel != nil {
			stopCancelWatch = make(chan struct{})
			go func() {
				select {
				case <-cfg.Cancel:
					canceled.Store(true)
					net.Abort()
				case <-stopCancelWatch:
				}
			}()
		}
		// The heartbeat failure detector (hardened networks only) converts
		// a silently lost peer — an unhealed partition, total ack loss —
		// into the same abort→recover path as an injected crash.
		inc := incarnation
		var suspectErr atomic.Pointer[error]
		stopDetector := net.startDetector(func(peer int, silence time.Duration) {
			err := fmt.Errorf("heartbeat: process %d silent for %v: %w",
				peer, silence.Round(time.Millisecond), ErrProcFailed)
			if suspectErr.CompareAndSwap(nil, &err) {
				counters.Inc(MetricHBSuspects, 1)
				if cfg.Observer != nil {
					cfg.Observer.OnEvent(obs.Event{
						Kind: obs.KindSuspect, Proc: peer, Inc: inc,
						Label: err.Error(),
					})
				}
				net.Abort()
			}
		})
		var failure error
		var fatal error
		for i := 0; i < n; i++ {
			err := <-errs
			switch {
			case err == nil:
			case errors.Is(err, ErrProcFailed):
				if failure == nil {
					failure = err
					net.Abort() // wake the others; they exit with ErrAborted
				}
			case errors.Is(err, ErrAborted):
				// Collateral of an abort; ignore.
			default:
				if fatal == nil {
					fatal = err
					net.Abort()
				}
			}
		}
		watchdog.Stop()
		stopDetector()
		if stopCancelWatch != nil {
			close(stopCancelWatch)
		}
		if fatal == nil && canceled.Load() {
			// Park the job: keep the store as-is (checkpoints saved so far
			// form the resume point) and report the cancellation, which
			// takes precedence over any concurrent failure or timeout.
			return nil, ErrCanceled
		}
		if failure == nil {
			if susp := suspectErr.Load(); susp != nil {
				// Every process exited with ErrAborted because the detector
				// pulled the plug: the suspicion is the failure.
				failure = *susp
			}
		}
		if fatal != nil {
			return nil, fatal
		}
		if timedOut.Load() && failure == nil {
			return nil, fmt.Errorf("sim: deadlock: no progress within %v", timeout)
		}
		if failure == nil {
			// Clean completion.
			res.Trace = tr
			res.FinalVars = make([]map[string]int, n)
			res.VTimes = make([]float64, n)
			for r, p := range procs {
				vars := make(map[string]int, len(p.env.Vars))
				for k, v := range p.env.Vars {
					vars[k] = v
				}
				res.FinalVars[r] = vars
				res.VTimes[r] = p.vtime
				if p.vtime > res.VTime {
					res.VTime = p.vtime
				}
			}
			res.Metrics = counters.Snapshot()
			return res, nil
		}

		// Failure path: recover. If virtual time is on, the restart begins
		// at the wall time the application had reached, plus the recovery
		// overhead R — lost work is then re-paid by the replay, exactly as
		// in the §4 model.
		if cfg.Time != nil {
			maxV := restartV
			for _, p := range procs {
				if p.vtime > maxV {
					maxV = p.vtime
				}
			}
			restartV = maxV + cfg.Time.Recovery
		}
		res.Restarts++
		counters.IncRollbacks(n)
		if cfg.Observer != nil {
			cfg.Observer.OnEvent(obs.Event{
				Kind: obs.KindRollback, Proc: -1, Inc: incarnation,
				VTime: restartV, Label: failure.Error(),
			})
		}
		if res.Restarts > maxRestarts {
			return nil, fmt.Errorf("sim: exceeded %d restarts: %w", maxRestarts, failure)
		}
		// Choose the line BEFORE scrubbing: selection must see corrupt
		// snapshots fail to load so Line.Degraded reports how far recovery
		// fell. Scrubbing afterwards clears the damaged keys from the
		// namespace, so the replay can regenerate them without tripping
		// over duplicates.
		line, err = chooseLine(rst, n)
		switch {
		case errors.Is(err, recovery.ErrNoRecoveryLine):
			line = nil // restart from scratch
		case err != nil:
			return nil, err
		}
		if scr, ok := st.(storage.Scrubber); ok {
			rep, err := scr.Scrub()
			if err != nil {
				return nil, err
			}
			if q := len(rep.Quarantined); q > 0 || rep.TempFiles > 0 {
				counters.Inc(MetricScrubQuarantined, q)
				if cfg.Observer != nil {
					cfg.Observer.OnEvent(obs.Event{
						Kind: obs.KindScrub, Proc: -1, Inc: incarnation,
						Label: fmt.Sprintf("quarantined %d snapshot(s), removed %d temp file(s)", q, rep.TempFiles),
					})
				}
			}
		}
		if line != nil && line.Degraded > 0 {
			counters.Inc(MetricRecoveryDegraded, line.Degraded)
			if cfg.Observer != nil {
				cfg.Observer.OnEvent(obs.Event{
					Kind: obs.KindDegraded, Proc: -1, Inc: incarnation,
					Label: fmt.Sprintf("recovery skipped %d candidate cut(s)", line.Degraded),
				})
			}
		}
		if cfg.Observer != nil {
			label := "from scratch"
			if line != nil {
				label = fmt.Sprintf("%d process(es) rolled back to recovery line", line.Rollbacks)
			}
			cfg.Observer.OnEvent(obs.Event{
				Kind: obs.KindRestart, Proc: -1, Inc: incarnation + 1,
				VTime: restartV, Label: label,
			})
		}
		if line != nil {
			res.RolledBack += line.Rollbacks
			if err := pruneStore(rst, line); err != nil {
				return nil, err
			}
			sendSeq, recvSeq := seqMatrices(line, n)
			net.ResetForRecovery(sendSeq, recvSeq)
		} else {
			if err := clearStore(rst, n); err != nil {
				return nil, err
			}
			zero := make([][]int, n)
			for i := range zero {
				zero[i] = make([]int, n)
			}
			net.ResetForRecovery(zero, zero)
		}
	}
}

// seqMatrices extracts the per-channel send/receive sequence numbers at
// the recovery line.
func seqMatrices(line *recovery.Line, n int) (sendSeq, recvSeq [][]int) {
	sendSeq = make([][]int, n)
	recvSeq = make([][]int, n)
	for p := 0; p < n; p++ {
		sendSeq[p] = append([]int(nil), line.Snapshots[p].SendSeqs...)
		recvSeq[p] = append([]int(nil), line.Snapshots[p].RecvSeqs...)
		if sendSeq[p] == nil {
			sendSeq[p] = make([]int, n)
		}
		if recvSeq[p] == nil {
			recvSeq[p] = make([]int, n)
		}
	}
	return sendSeq, recvSeq
}

// pruneStore deletes snapshots taken after the recovery line: the
// rolled-back execution will regenerate them deterministically. Per
// process, "after" is decided by the process's own vector-clock component,
// which orders its local events totally. Deletion runs newest-first so
// delta-encoded stores (storage.Incremental) can unwind their chains.
func pruneStore(st storage.Store, line *recovery.Line) error {
	for p, restore := range line.Snapshots {
		snaps, err := st.List(p)
		if err != nil {
			return err
		}
		cutTick := restore.Clock[p]
		var doomed []storage.Snapshot
		for _, s := range snaps {
			if s.Clock[p] > cutTick {
				doomed = append(doomed, s)
			}
		}
		sort.Slice(doomed, func(i, j int) bool {
			return doomed[i].Clock[p] > doomed[j].Clock[p]
		})
		for _, s := range doomed {
			if err := st.Delete(p, s.CFGIndex, s.Instance); err != nil {
				return err
			}
		}
	}
	return nil
}

// clearStore removes every snapshot (restart from scratch), newest-first
// per process for delta-encoded stores.
func clearStore(st storage.Store, n int) error {
	for p := 0; p < n; p++ {
		snaps, err := st.List(p)
		if err != nil {
			return err
		}
		sort.Slice(snaps, func(i, j int) bool {
			return snaps[i].Clock[p] > snaps[j].Clock[p]
		})
		for _, s := range snaps {
			if err := st.Delete(p, s.CFGIndex, s.Instance); err != nil {
				return err
			}
		}
	}
	return nil
}
