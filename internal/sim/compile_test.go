package sim

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mpl"
)

func TestCompileStraightLine(t *testing.T) {
	p, err := mpl.Parse(`
program s
var x
proc {
    x = 1
    chkpt
    send(rank + 1, x)
    recv(rank - 1, x)
}
`)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	ops := []OpCode{OpAssign, OpChkpt, OpSend, OpRecv, OpHalt}
	if len(code.Instrs) != len(ops) {
		t.Fatalf("instrs = %d, want %d\n%s", len(code.Instrs), len(ops), code.Disassemble())
	}
	for i, op := range ops {
		if code.Instrs[i].Op != op {
			t.Errorf("instr %d op = %v, want %v", i, code.Instrs[i].Op, op)
		}
	}
	if code.Instrs[1].Index != 1 {
		t.Errorf("chkpt index = %d, want 1", code.Instrs[1].Index)
	}
}

func TestCompileWhile(t *testing.T) {
	p, err := mpl.Parse(`
program w
var i
proc {
    i = 0
    while i < 3 {
        i = i + 1
    }
    i = 9
}
`)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	// assign, branchfalse, assign, jump, assign, halt
	if code.Instrs[1].Op != OpBranchFalse {
		t.Fatalf("instr 1 = %v", code.Instrs[1].Op)
	}
	if code.Instrs[3].Op != OpJump || code.Instrs[3].Target != 1 {
		t.Errorf("loop jump = %+v, want target 1", code.Instrs[3])
	}
	if code.Instrs[1].Target != 4 {
		t.Errorf("branch-false target = %d, want 4", code.Instrs[1].Target)
	}
}

func TestCompileIfElse(t *testing.T) {
	p, err := mpl.Parse(`
program b
var x
proc {
    if rank == 0 {
        x = 1
    } else {
        x = 2
    }
    x = 3
}
`)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	// branchfalse(→3), assign, jump(→4), assign, assign, halt
	br := code.Instrs[0]
	if br.Op != OpBranchFalse || br.Target != 3 {
		t.Errorf("branch = %+v", br)
	}
	if code.Instrs[2].Op != OpJump || code.Instrs[2].Target != 4 {
		t.Errorf("then-exit jump = %+v", code.Instrs[2])
	}
}

func TestCompileIfNoElse(t *testing.T) {
	p, err := mpl.Parse(`
program b
var x
proc {
    if rank == 0 {
        x = 1
    }
    x = 3
}
`)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	// branchfalse(→2), assign, assign, halt — no jump needed.
	if code.Instrs[0].Target != 2 {
		t.Errorf("branch target = %d, want 2", code.Instrs[0].Target)
	}
	for _, in := range code.Instrs {
		if in.Op == OpJump {
			t.Error("unexpected jump for else-less if")
		}
	}
}

func TestCompileRejectsAmbiguous(t *testing.T) {
	p, err := mpl.Parse(`
program amb
var x
proc {
    if rank == 0 {
        chkpt
    }
    x = 1
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(p); err == nil {
		t.Fatal("ambiguous enumeration accepted")
	}
}

func TestDisassembleMentionsAllOps(t *testing.T) {
	code, err := Compile(corpus.JacobiFig2(2))
	if err != nil {
		t.Fatal(err)
	}
	dis := code.Disassemble()
	for _, want := range []string{"assign", "send", "recv", "chkpt", "branch-false", "jump", "halt"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestCompileWholeCorpus(t *testing.T) {
	for name, p := range corpus.All() {
		t.Run(name, func(t *testing.T) {
			code, err := Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			// Jump/branch targets must be in range.
			for pc, in := range code.Instrs {
				switch in.Op {
				case OpJump, OpBranchFalse:
					if in.Target < 0 || in.Target >= len(code.Instrs) {
						t.Errorf("instr %d target %d out of range", pc, in.Target)
					}
				}
			}
			if code.Instrs[len(code.Instrs)-1].Op != OpHalt {
				t.Error("program does not end in halt")
			}
		})
	}
}
