package sim

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/trace"
)

func TestStencil2DRunsOnGrids(t *testing.T) {
	for _, tc := range []struct{ width, nproc int }{
		{3, 9},  // exact 3x3
		{3, 7},  // ragged last row
		{4, 8},  // 2 rows
		{2, 2},  // single row
		{5, 5},  // single full row
		{4, 10}, // ragged
	} {
		p := corpus.Stencil2D(tc.width, 3)
		res := runOK(t, p, tc.nproc)
		if err := trace.Validate(res.Trace); err != nil {
			t.Fatalf("w=%d n=%d: %v", tc.width, tc.nproc, err)
		}
		checkStraightCuts(t, res.Trace, true)
		// Determinism across runs.
		again := runOK(t, p, tc.nproc)
		if !reflect.DeepEqual(res.FinalVars, again.FinalVars) {
			t.Fatalf("w=%d n=%d: nondeterministic", tc.width, tc.nproc)
		}
	}
}

func TestStencilSkewedViolatesThenRepairs(t *testing.T) {
	p := corpus.StencilSkewed(3, 3)
	// The defect is real: column-parity-skewed checkpoints break straight
	// cuts on an actual run.
	res := runOK(t, p, 9)
	violated := false
	for _, idx := range res.Trace.CheckpointIndexes() {
		cut, err := res.Trace.StraightCut(idx)
		if err != nil {
			continue
		}
		if !trace.IsRecoveryLine(cut) {
			violated = true
		}
	}
	if !violated {
		t.Fatal("skewed stencil should violate straight cuts")
	}
	// Static analysis agrees.
	violations, err := core.Verify(p, core.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) == 0 {
		t.Fatal("Verify missed the skewed-stencil violation")
	}
	// Phase III repairs it; the repaired program runs consistently and
	// survives crashes with identical results.
	rep, err := core.Transform(p, core.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	clean := runOK(t, rep.Program, 9)
	checkStraightCuts(t, clean.Trace, true)
	crashed := runOK(t, rep.Program, 9, func(c *Config) {
		c.Failures = []Failure{{Proc: 4, AfterEvents: 30}}
	})
	if crashed.Restarts != 1 {
		t.Fatalf("restarts = %d", crashed.Restarts)
	}
	if !reflect.DeepEqual(clean.FinalVars, crashed.FinalVars) {
		t.Error("stencil crash run diverged")
	}
}

func TestStencilSkewedWidth4(t *testing.T) {
	// A different width exercises different modulo attributes.
	p := corpus.StencilSkewed(4, 2)
	rep, err := core.Transform(p, core.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	res := runOK(t, rep.Program, 8)
	checkStraightCuts(t, res.Trace, true)
}
