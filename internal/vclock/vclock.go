// Package vclock implements vector clocks for tracking the happened-before
// relation (Lamport [13] in the paper) between events of a distributed
// execution. The checkpointing verifier uses vector clocks captured at
// checkpoint time to decide whether a cut of checkpoints is consistent
// (Definition 2.1: no two checkpoints in the cut are related by hb).
package vclock

import (
	"fmt"
	"strconv"
	"strings"
)

// VC is a fixed-width vector clock over n processes. The zero value of a
// width-n clock is the initial clock of an execution. VCs are value types:
// methods that combine clocks return fresh copies and never alias their
// inputs.
type VC []uint64

// New returns a zero vector clock for n processes.
func New(n int) VC {
	return make(VC, n)
}

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// Tick increments the component of process p and returns v (mutated in
// place) for chaining. It panics if p is out of range, which always
// indicates a programming error in the runtime, not an input error.
func (v VC) Tick(p int) VC {
	v[p]++
	return v
}

// Merge sets v to the component-wise maximum of v and other, mutating v in
// place. Clocks of different widths cannot belong to the same execution;
// Merge panics on width mismatch.
func (v VC) Merge(other VC) VC {
	if len(v) != len(other) {
		panic(fmt.Sprintf("vclock: merge width mismatch: %d vs %d", len(v), len(other)))
	}
	for i, o := range other {
		if o > v[i] {
			v[i] = o
		}
	}
	return v
}

// Before reports whether v happened before other: v ≤ other component-wise
// and v ≠ other.
func (v VC) Before(other VC) bool {
	if len(v) != len(other) {
		return false
	}
	strictly := false
	for i := range v {
		switch {
		case v[i] > other[i]:
			return false
		case v[i] < other[i]:
			strictly = true
		}
	}
	return strictly
}

// Concurrent reports whether v and other are incomparable under
// happened-before (neither Before the other and not Equal).
func (v VC) Concurrent(other VC) bool {
	return !v.Before(other) && !other.Before(v) && !v.Equal(other)
}

// Equal reports whether v and other are identical clocks.
func (v VC) Equal(other VC) bool {
	if len(v) != len(other) {
		return false
	}
	for i := range v {
		if v[i] != other[i] {
			return false
		}
	}
	return true
}

// Compare returns the ordering of v relative to other:
// -1 if v happened before other, +1 if other happened before v,
// 0 if equal or concurrent (use Concurrent to distinguish).
func (v VC) Compare(other VC) int {
	switch {
	case v.Before(other):
		return -1
	case other.Before(v):
		return 1
	default:
		return 0
	}
}

// String renders the clock as "[a b c]".
func (v VC) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(strconv.FormatUint(x, 10))
	}
	sb.WriteByte(']')
	return sb.String()
}
