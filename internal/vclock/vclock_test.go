package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	v := New(4)
	if len(v) != 4 {
		t.Fatalf("len = %d, want 4", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Errorf("component %d = %d, want 0", i, x)
		}
	}
}

func TestTick(t *testing.T) {
	v := New(3)
	v.Tick(1).Tick(1).Tick(2)
	want := VC{0, 2, 1}
	if !v.Equal(want) {
		t.Fatalf("v = %v, want %v", v, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := VC{1, 2, 3}
	c := v.Clone()
	c.Tick(0)
	if v[0] != 1 {
		t.Fatalf("mutating clone changed original: %v", v)
	}
}

func TestMerge(t *testing.T) {
	tests := []struct {
		name string
		a, b VC
		want VC
	}{
		{"disjoint", VC{1, 0, 0}, VC{0, 2, 0}, VC{1, 2, 0}},
		{"dominated", VC{1, 1, 1}, VC{0, 0, 0}, VC{1, 1, 1}},
		{"mixed", VC{3, 1, 4}, VC{2, 5, 4}, VC{3, 5, 4}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.a.Clone().Merge(tt.b)
			if !got.Equal(tt.want) {
				t.Errorf("merge(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestMergeWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	VC{1}.Merge(VC{1, 2})
}

func TestBefore(t *testing.T) {
	tests := []struct {
		name string
		a, b VC
		want bool
	}{
		{"strictly less", VC{1, 2}, VC{2, 3}, true},
		{"equal on one", VC{1, 2}, VC{1, 3}, true},
		{"identical", VC{1, 2}, VC{1, 2}, false},
		{"concurrent", VC{2, 1}, VC{1, 2}, false},
		{"after", VC{3, 3}, VC{1, 2}, false},
		{"width mismatch", VC{1}, VC{1, 2}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Before(tt.b); got != tt.want {
				t.Errorf("%v.Before(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestConcurrent(t *testing.T) {
	if !(VC{2, 1}).Concurrent(VC{1, 2}) {
		t.Error("crossing clocks should be concurrent")
	}
	if (VC{1, 1}).Concurrent(VC{1, 1}) {
		t.Error("equal clocks are not concurrent")
	}
	if (VC{1, 1}).Concurrent(VC{2, 2}) {
		t.Error("ordered clocks are not concurrent")
	}
}

func TestCompare(t *testing.T) {
	if got := (VC{1, 1}).Compare(VC{2, 2}); got != -1 {
		t.Errorf("Compare = %d, want -1", got)
	}
	if got := (VC{2, 2}).Compare(VC{1, 1}); got != 1 {
		t.Errorf("Compare = %d, want 1", got)
	}
	if got := (VC{2, 1}).Compare(VC{1, 2}); got != 0 {
		t.Errorf("Compare = %d, want 0", got)
	}
}

func TestString(t *testing.T) {
	if got, want := (VC{1, 0, 42}).String(), "[1 0 42]"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// randomVC builds a bounded random clock pair sharing a width so the
// quick-check properties stay within a single logical execution.
func randomVC(r *rand.Rand, width int) VC {
	v := New(width)
	for i := range v {
		v[i] = uint64(r.Intn(5))
	}
	return v
}

func TestQuickBeforeAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomVC(r, 4), randomVC(r, 4)
		return !(a.Before(b) && b.Before(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBeforeTransitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomVC(r, 3), randomVC(r, 3), randomVC(r, 3)
		if a.Before(b) && b.Before(c) {
			return a.Before(c)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeIsUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomVC(r, 5), randomVC(r, 5)
		m := a.Clone().Merge(b)
		// a <= m and b <= m component-wise.
		for i := range m {
			if a[i] > m[i] || b[i] > m[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomVC(r, 4), randomVC(r, 4)
		return a.Clone().Merge(b).Equal(b.Clone().Merge(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTickBreaksBefore(t *testing.T) {
	// After p ticks its own clock, the new clock is never before the old.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomVC(r, 4)
		ticked := a.Clone().Tick(int(uint(seed) % 4))
		return !ticked.Before(a) && a.Before(ticked)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMerge(b *testing.B) {
	a := VC{1, 2, 3, 4, 5, 6, 7, 8}
	c := VC{8, 7, 6, 5, 4, 3, 2, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Merge(c)
	}
}

func BenchmarkBefore(b *testing.B) {
	a := VC{1, 2, 3, 4, 5, 6, 7, 8}
	c := VC{2, 3, 4, 5, 6, 7, 8, 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Before(c)
	}
}
