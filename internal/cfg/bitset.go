package cfg

import "math/bits"

// Bitset is a fixed-capacity bit set used by the graph analyses
// (dominators, reachability, loop membership).
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits.
func NewBitset(n int) Bitset {
	return make(Bitset, (n+63)/64)
}

// Set sets bit i.
func (b Bitset) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (b Bitset) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether bit i is set.
func (b Bitset) Has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Clone copies the bitset.
func (b Bitset) Clone() Bitset {
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}

// CopyFrom overwrites b with the contents of o. The two sets must have the
// same capacity.
func (b Bitset) CopyFrom(o Bitset) { copy(b, o) }

// Zero clears every bit, keeping the capacity — the reuse primitive the
// analysis scratch buffers lean on.
func (b Bitset) Zero() {
	for i := range b {
		b[i] = 0
	}
}

// IntersectWith keeps only bits present in both sets.
func (b Bitset) IntersectWith(o Bitset) {
	for i := range b {
		b[i] &= o[i]
	}
}

// UnionWith adds all bits of o.
func (b Bitset) UnionWith(o Bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// AndNotWith removes all bits of o (set difference) — the kill step of the
// backward liveness transfer function.
func (b Bitset) AndNotWith(o Bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}

// Equal reports set equality.
func (b Bitset) Equal(o Bitset) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Members returns the indexes of all set bits in ascending order.
func (b Bitset) Members() []int {
	return b.AppendMembers(make([]int, 0, b.Count()))
}

// AppendMembers appends the indexes of all set bits in ascending order to
// dst and returns the extended slice — the allocation-free variant of
// Members for callers that own a reusable buffer (pass dst[:0]).
func (b Bitset) AppendMembers(dst []int) []int {
	for i, w := range b {
		for w != 0 {
			j := bits.TrailingZeros64(w)
			dst = append(dst, i*64+j)
			w &= w - 1
		}
	}
	return dst
}
