package cfg

import (
	"errors"
	"testing"

	"repro/internal/mpl"
)

// FuzzCFGBuild checks that any program the parser and checker admit builds
// a structurally sound CFG: Build never panics, every edge stays in range,
// the exit is reachable from the entry, dominators compute, and checkpoint
// enumeration either succeeds with positive indexes or reports a
// well-formed ambiguity error. Run with `go test -fuzz FuzzCFGBuild`; the
// seed corpus runs under plain `go test`.
func FuzzCFGBuild(f *testing.F) {
	seeds := []string{
		"program p\nproc { }",
		"program p\nvar x\nproc { chkpt\nx = 1\nchkpt }",
		"program p\nvar a, t\nproc { while a < 3 { chkpt\nsend(rank + 1, a)\nrecv(rank - 1, t)\na = a + 1 } }",
		"program p\nvar v\nproc { if rank % 2 == 0 { chkpt\nsend(rank + 1, v) } else { recv(rank - 1, v)\nchkpt } }",
		"program p\nvar v\nproc { bcast(0, v)\nreduce(0, v)\nchkpt }",
		"program p\nvar j\nproc { while j < 2 { while j < 1 { chkpt\nj = j + 1 } } }",
		"program p\nvar x\nproc { if rank == 0 { x = 1 } else if rank == 1 { chkpt } else { x = 3 } }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := mpl.Parse(src)
		if err != nil {
			return
		}
		if err := mpl.Check(p); err != nil {
			return
		}
		g, err := Build(p)
		if err != nil {
			return // rejection is fine; crashing is not
		}
		for _, e := range g.Edges {
			if e.From < 0 || e.From >= len(g.Nodes) || e.To < 0 || e.To >= len(g.Nodes) {
				t.Fatalf("edge %+v out of node range [0, %d)", e, len(g.Nodes))
			}
		}
		if !g.Reachable(g.Entry).Has(g.Exit) {
			t.Fatal("exit not reachable from entry")
		}
		dom := g.Dominators()
		if len(dom) != len(g.Nodes) {
			t.Fatalf("dominator sets: %d, nodes: %d", len(dom), len(g.Nodes))
		}
		if !Dominates(dom, g.Entry, g.Exit) {
			t.Fatal("entry does not dominate exit")
		}
		enum, err := Enumerate(p)
		if err != nil {
			var amb *AmbiguousError
			if !errors.As(err, &amb) {
				t.Fatalf("Enumerate failed without an ambiguity: %v", err)
			}
			return
		}
		for id, idx := range enum.Index {
			if idx < 1 || idx > enum.Count {
				t.Fatalf("stmt #%d enumerated with index %d outside [1, %d]", id, idx, enum.Count)
			}
		}
	})
}
