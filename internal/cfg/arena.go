package cfg

// Arena is a grow-only scratch allocator for the analysis pipeline. One
// Transform allocates a single Arena and threads it through the phases;
// each fixpoint round calls Reset and re-carves its bitsets, worklists,
// and path buffers from the same backing arrays instead of allocating
// fresh ones. The contract is strictly round-scoped:
//
//   - buffers handed out by Bits / Ints / Steps are valid until the next
//     Reset, after which the arena reuses their storage;
//   - an Arena is NOT safe for concurrent use — parallel analysis workers
//     allocate locally and only the serial sections draw from the arena;
//   - a nil *Arena is valid everywhere one is accepted and falls back to
//     plain allocation, so the arena is an optimization, never a
//     requirement.
type Arena struct {
	words    []uint64
	wordsOff int
	ints     []int
	intsOff  int
}

// Reset recycles every buffer handed out since the previous Reset.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.wordsOff = 0
	a.intsOff = 0
}

// Bits returns a zeroed Bitset able to hold n bits, carved from the arena
// (or freshly allocated for a nil receiver).
func (a *Arena) Bits(n int) Bitset {
	need := (n + 63) / 64
	if a == nil {
		return NewBitset(n)
	}
	if a.wordsOff+need > len(a.words) {
		// Grow the backing array. Buffers carved before the growth keep
		// the old array alive and stay valid; the arena only ever reuses
		// storage at Reset.
		size := 2 * len(a.words)
		if size < need {
			size = need
		}
		if size < 256 {
			size = 256
		}
		a.words = make([]uint64, size)
		a.wordsOff = 0
	}
	out := Bitset(a.words[a.wordsOff : a.wordsOff+need])
	a.wordsOff += need
	out.Zero()
	return out
}

// Ints returns a zeroed []int of length n, carved from the arena (or
// freshly allocated for a nil receiver).
func (a *Arena) Ints(n int) []int {
	if a == nil {
		return make([]int, n)
	}
	if a.intsOff+n > len(a.ints) {
		size := 2 * len(a.ints)
		if size < n {
			size = n
		}
		if size < 256 {
			size = 256
		}
		a.ints = make([]int, size)
		a.intsOff = 0
	}
	out := a.ints[a.intsOff : a.intsOff+n]
	a.intsOff += n
	for i := range out {
		out[i] = 0
	}
	return out
}
