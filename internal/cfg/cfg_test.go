package cfg

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mpl"
)

func mustParse(t *testing.T, src string) *mpl.Program {
	t.Helper()
	p, err := mpl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustBuild(t *testing.T, p *mpl.Program) *Graph {
	t.Helper()
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildStraightLine(t *testing.T) {
	p := mustParse(t, `
program straight
var x
proc {
    x = 1
    chkpt
    send(rank + 1, x)
}
`)
	g := mustBuild(t, p)
	// entry, compute, chkpt, send, exit
	if len(g.Nodes) != 5 {
		t.Fatalf("nodes = %d, want 5", len(g.Nodes))
	}
	wantKinds := []NodeKind{KindEntry, KindCompute, KindChkpt, KindSend, KindExit}
	for i, k := range wantKinds {
		if g.Nodes[i].Kind != k {
			t.Errorf("node %d kind = %v, want %v", i, g.Nodes[i].Kind, k)
		}
	}
	if len(g.Edges) != 4 {
		t.Errorf("edges = %d, want 4", len(g.Edges))
	}
	// Chain property: every non-exit node has exactly one successor.
	for _, n := range g.Nodes {
		if n.ID != g.Exit && len(g.Succs(n.ID)) != 1 {
			t.Errorf("node %d has %d successors", n.ID, len(g.Succs(n.ID)))
		}
	}
}

func TestBuildWhileLoop(t *testing.T) {
	p := mustParse(t, `
program loop
var i
proc {
    while i < 3 {
        i = i + 1
    }
}
`)
	g := mustBuild(t, p)
	branches := g.NodesOfKind(KindBranch)
	if len(branches) != 1 {
		t.Fatalf("branches = %v", branches)
	}
	w := branches[0]
	succs := g.Succs(w)
	if len(succs) != 2 {
		t.Fatalf("while successors = %d, want 2", len(succs))
	}
	kinds := map[EdgeKind]int{}
	for _, e := range succs {
		kinds[e.Kind] = e.To
	}
	if _, ok := kinds[EdgeTrue]; !ok {
		t.Error("while lacks true edge")
	}
	if to, ok := kinds[EdgeFalse]; !ok || g.Nodes[to].Kind != KindExit {
		t.Error("while false edge should go to exit")
	}
	// Back edge from loop body to while header.
	backs := g.BackEdges()
	if len(backs) != 1 || backs[0].To != w {
		t.Fatalf("back edges = %v, want one into node %d", backs, w)
	}
	// The natural loop contains the header and the body compute node.
	loop := g.NaturalLoop(backs[0])
	if !loop.Has(w) || loop.Count() != 2 {
		t.Errorf("natural loop = %v", loop.Members())
	}
}

func TestBuildIfElse(t *testing.T) {
	p := mustParse(t, `
program branchy
var x
proc {
    if rank % 2 == 0 {
        send(rank + 1, x)
    } else {
        recv(rank - 1, x)
    }
    x = 0
}
`)
	g := mustBuild(t, p)
	br := g.NodesOfKind(KindBranch)[0]
	var thenTo, elseTo int
	for _, e := range g.Succs(br) {
		switch e.Kind {
		case EdgeTrue:
			thenTo = e.To
		case EdgeFalse:
			elseTo = e.To
		}
	}
	if g.Nodes[thenTo].Kind != KindSend {
		t.Errorf("then target = %v", g.Nodes[thenTo].Kind)
	}
	if g.Nodes[elseTo].Kind != KindRecv {
		t.Errorf("else target = %v", g.Nodes[elseTo].Kind)
	}
	// Both branches join at the final compute.
	joins := g.NodesOfKind(KindCompute)
	join := joins[len(joins)-1]
	if len(g.Preds(join)) != 2 {
		t.Errorf("join preds = %d, want 2", len(g.Preds(join)))
	}
	if len(g.BackEdges()) != 0 {
		t.Errorf("if/else should have no back edges")
	}
}

func TestBuildEmptyElse(t *testing.T) {
	p := mustParse(t, `
program halfif
var x
proc {
    if rank == 0 {
        x = 1
    }
    x = 2
}
`)
	g := mustBuild(t, p)
	br := g.NodesOfKind(KindBranch)[0]
	// False edge goes directly to the statement after the if.
	var falseTo int
	for _, e := range g.Succs(br) {
		if e.Kind == EdgeFalse {
			falseTo = e.To
		}
	}
	n := g.Nodes[falseTo]
	if n.Kind != KindCompute {
		t.Fatalf("false target kind = %v", n.Kind)
	}
	if as, ok := n.Stmt.(*mpl.Assign); !ok || mpl.ExprString(as.X) != "2" {
		t.Errorf("false target stmt = %v", n.Label())
	}
}

func TestDominators(t *testing.T) {
	p := corpus.JacobiFig2(2)
	g := mustBuild(t, p)
	dom := g.Dominators()
	// Entry dominates everything.
	for _, n := range g.Nodes {
		if !Dominates(dom, g.Entry, n.ID) {
			t.Errorf("entry does not dominate node %d", n.ID)
		}
		if !Dominates(dom, n.ID, n.ID) {
			t.Errorf("node %d does not dominate itself", n.ID)
		}
	}
	// The while header dominates everything inside the loop, including both
	// checkpoint nodes.
	whileID := -1
	for _, n := range g.Nodes {
		if n.Kind == KindBranch {
			if _, ok := n.Stmt.(*mpl.While); ok {
				whileID = n.ID
				break
			}
		}
	}
	if whileID < 0 {
		t.Fatal("no while node")
	}
	for _, c := range g.NodesOfKind(KindChkpt) {
		if !Dominates(dom, whileID, c) {
			t.Errorf("while does not dominate checkpoint node %d", c)
		}
	}
	// A then-branch node does not dominate the join.
	ifID := -1
	for _, n := range g.Nodes {
		if n.Kind == KindBranch {
			if _, ok := n.Stmt.(*mpl.If); ok {
				ifID = n.ID
			}
		}
	}
	var thenFirst int
	for _, e := range g.Succs(ifID) {
		if e.Kind == EdgeTrue {
			thenFirst = e.To
		}
	}
	if Dominates(dom, thenFirst, g.Exit) {
		t.Error("then-branch node should not dominate exit")
	}
}

func TestReachabilityAndPaths(t *testing.T) {
	p := corpus.JacobiFig1(2)
	g := mustBuild(t, p)
	if !g.PathExists(g.Entry, g.Exit) {
		t.Fatal("exit unreachable from entry")
	}
	if g.PathExists(g.Exit, g.Entry) {
		t.Fatal("entry reachable from exit")
	}
	path := g.FindPath(g.Entry, g.Exit)
	if path == nil || path[0] != g.Entry || path[len(path)-1] != g.Exit {
		t.Fatalf("FindPath = %v", path)
	}
	// Consecutive path nodes must be connected by an edge.
	for i := 0; i+1 < len(path); i++ {
		found := false
		for _, e := range g.Succs(path[i]) {
			if e.To == path[i+1] {
				found = true
			}
		}
		if !found {
			t.Fatalf("path step %d->%d has no edge", path[i], path[i+1])
		}
	}
	if g.FindPath(g.Exit, g.Entry) != nil {
		t.Error("FindPath backwards should be nil")
	}
	if got := g.FindPath(g.Entry, g.Entry); len(got) != 1 {
		t.Errorf("trivial path = %v", got)
	}
	// Inside the loop, the checkpoint can reach itself through the back
	// edge (path length > 1 via the loop).
	chk := g.NodesOfKind(KindChkpt)[0]
	reach := g.Reachable(chk)
	if !reach.Has(chk) {
		t.Error("checkpoint should reach itself via the loop")
	}
}

func TestEnumerateJacobiFig1(t *testing.T) {
	p := corpus.JacobiFig1(2)
	enum, err := Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	if enum.Count != 1 {
		t.Fatalf("Count = %d, want 1", enum.Count)
	}
	if len(enum.Index) != 1 {
		t.Fatalf("Index = %v", enum.Index)
	}
	for _, idx := range enum.Index {
		if idx != 1 {
			t.Errorf("index = %d, want 1", idx)
		}
	}
}

func TestEnumerateJacobiFig2BothBranchesIndex1(t *testing.T) {
	p := corpus.JacobiFig2(2)
	enum, err := Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	if enum.Count != 1 {
		t.Fatalf("Count = %d, want 1", enum.Count)
	}
	ids := enum.ByIndex(1)
	if len(ids) != 2 {
		t.Fatalf("S_1 = %v, want two checkpoint statements", ids)
	}
	g := mustBuild(t, p)
	byIdx := EnumerateGraph(g, enum)
	if len(byIdx[1]) != 2 {
		t.Fatalf("EnumerateGraph S_1 = %v", byIdx[1])
	}
	for _, nid := range byIdx[1] {
		if g.Nodes[nid].Kind != KindChkpt {
			t.Errorf("node %d kind = %v", nid, g.Nodes[nid].Kind)
		}
	}
}

func TestEnumerateSequence(t *testing.T) {
	p := mustParse(t, `
program seq
var x
proc {
    chkpt
    x = 1
    chkpt
    while x < 3 {
        chkpt
        x = x + 1
    }
    chkpt
}
`)
	enum, err := Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	if enum.Count != 4 {
		t.Fatalf("Count = %d, want 4", enum.Count)
	}
	// Indexes should be 1..4 in order of appearance.
	var got []int
	mpl.Walk(p.Body, func(s mpl.Stmt) bool {
		if _, ok := s.(*mpl.Chkpt); ok {
			got = append(got, enum.Index[s.ID()])
		}
		return true
	})
	for i, idx := range got {
		if idx != i+1 {
			t.Errorf("checkpoint %d index = %d, want %d", i, idx, i+1)
		}
	}
}

func TestEnumerateAmbiguous(t *testing.T) {
	p := mustParse(t, `
program amb
var x
proc {
    if rank == 0 {
        chkpt
    }
    chkpt
}
`)
	_, err := Enumerate(p)
	if err == nil {
		t.Fatal("ambiguous program accepted")
	}
	var ae *AmbiguousError
	if !asAmbiguous(err, &ae) {
		t.Fatalf("error type = %T", err)
	}
	if !strings.Contains(err.Error(), "then-branch yields 1") {
		t.Errorf("error = %v", err)
	}
}

func asAmbiguous(err error, target **AmbiguousError) bool {
	ae, ok := err.(*AmbiguousError)
	if ok {
		*target = ae
	}
	return ok
}

func TestEnumerateEqualBranches(t *testing.T) {
	p := corpus.PipelineStages(1)
	enum, err := Enumerate(p)
	if err != nil {
		t.Fatal(err)
	}
	if enum.Count != 1 || len(enum.Index) != 2 {
		t.Fatalf("enum = %+v", enum)
	}
}

func TestDOTOutput(t *testing.T) {
	p := corpus.JacobiFig2(1)
	g := mustBuild(t, p)
	dot := g.DOT("jacobi", []Edge{{From: 3, To: 4}})
	for _, want := range []string{"digraph", "ENTRY", "EXIT", "diamond", "doubleoctagon", "style=dashed", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestBuildAllCorpus(t *testing.T) {
	for name, p := range corpus.All() {
		t.Run(name, func(t *testing.T) {
			g := mustBuild(t, p)
			// Structural sanity on every corpus program.
			if g.Nodes[g.Entry].Kind != KindEntry || g.Nodes[g.Exit].Kind != KindExit {
				t.Fatal("entry/exit malformed")
			}
			if !g.PathExists(g.Entry, g.Exit) {
				t.Fatal("exit unreachable")
			}
			if len(g.Preds(g.Entry)) != 0 {
				t.Error("entry has predecessors")
			}
			if len(g.Succs(g.Exit)) != 0 {
				t.Error("exit has successors")
			}
			// Every node reachable from entry; every node reaches exit.
			reach := g.Reachable(g.Entry)
			for _, n := range g.Nodes {
				if !reach.Has(n.ID) {
					t.Errorf("node %d (%s) unreachable", n.ID, n.Label())
				}
				if !g.PathExists(n.ID, g.Exit) {
					t.Errorf("node %d (%s) cannot reach exit", n.ID, n.Label())
				}
			}
			// Statement count matches node count minus entry/exit.
			if got, want := len(g.Nodes)-2, p.StmtCount(); got != want {
				t.Errorf("stmt nodes = %d, program stmts = %d", got, want)
			}
		})
	}
}

func TestBitset(t *testing.T) {
	b := NewBitset(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Has(0) || !b.Has(64) || !b.Has(129) || b.Has(1) {
		t.Fatal("set/has broken")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d", b.Count())
	}
	members := b.Members()
	if len(members) != 3 || members[0] != 0 || members[1] != 64 || members[2] != 129 {
		t.Fatalf("Members = %v", members)
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 2 {
		t.Fatal("clear broken")
	}
	c := b.Clone()
	c.Set(5)
	if b.Has(5) {
		t.Fatal("clone aliased")
	}
	o := NewBitset(130)
	o.Set(0)
	b.IntersectWith(o)
	if !b.Has(0) || b.Has(129) {
		t.Fatal("intersect broken")
	}
	o.Set(7)
	b.UnionWith(o)
	if !b.Has(7) {
		t.Fatal("union broken")
	}
	if !b.Equal(o) {
		t.Fatalf("Equal broken: %v vs %v", b.Members(), o.Members())
	}
}

func BenchmarkBuildJacobi(b *testing.B) {
	p := corpus.JacobiFig2(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDominators(b *testing.B) {
	p := corpus.MasterWorker(4)
	g, err := Build(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Dominators()
	}
}
