// Package cfg builds and analyzes control-flow graphs of MPL programs —
// the representation the paper's offline analysis operates on (§2). A CFG
// has an entry and an exit node, branch nodes for loop and condition
// expressions, and dedicated nodes for the send, receive, bcast, and
// checkpoint statements that generate the events of the system model.
// Compute statements (assignments, work) also get nodes so the graph fully
// reflects program order.
//
// The package provides the standard analyses the paper relies on:
// dominators, backward-edge detection (loops), reachability and path
// extraction, and enumeration of checkpoint indexes (the C_i of §2).
package cfg

import (
	"fmt"
	"sync"

	"repro/internal/mpl"
)

// NodeKind classifies CFG nodes.
type NodeKind int

// Node kinds.
const (
	KindEntry NodeKind = iota + 1
	KindExit
	KindBranch  // while or if condition
	KindCompute // assign or work
	KindSend
	KindRecv
	KindBcast
	KindReduce
	KindChkpt
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case KindEntry:
		return "entry"
	case KindExit:
		return "exit"
	case KindBranch:
		return "branch"
	case KindCompute:
		return "compute"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindBcast:
		return "bcast"
	case KindReduce:
		return "reduce"
	case KindChkpt:
		return "chkpt"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// EdgeKind classifies control edges.
type EdgeKind int

// Edge kinds. Branch nodes emit True/False edges; everything else emits Seq.
const (
	EdgeSeq EdgeKind = iota + 1
	EdgeTrue
	EdgeFalse
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeSeq:
		return "seq"
	case EdgeTrue:
		return "true"
	case EdgeFalse:
		return "false"
	default:
		return fmt.Sprintf("edge(%d)", int(k))
	}
}

// Edge is a directed control edge.
type Edge struct {
	From int
	To   int
	Kind EdgeKind
}

// Node is one CFG node.
type Node struct {
	ID   int
	Kind NodeKind
	Stmt mpl.Stmt // nil for entry/exit
}

// Label names the node for diagnostics and DOT rendering. It is computed
// on demand: labels are pure presentation, and eagerly formatting one per
// node used to dominate CFG construction cost.
func (n *Node) Label() string {
	switch n.Kind {
	case KindEntry:
		return "ENTRY"
	case KindExit:
		return "EXIT"
	default:
		return mpl.DescribeStmt(n.Stmt)
	}
}

// Graph is a control-flow graph. Nodes are indexed by ID (dense, starting
// at 0); Entry and Exit name the distinguished nodes.
type Graph struct {
	Nodes []*Node
	Edges []Edge
	Entry int
	Exit  int

	// Grouped adjacency, built once after construction: succEdges[id] and
	// predEdges[id] are subslices of two shared backing arrays, so Succs
	// and Preds are allocation-free.
	succEdges [][]Edge
	predEdges [][]Edge

	// Cached analyses. A Graph is immutable after Build, so dominator sets
	// and back edges are computed at most once; the sync.Once guards make
	// the caches safe under concurrent read-only use (parallel analysis).
	domOnce  sync.Once
	dom      []Bitset
	backOnce sync.Once
	back     []Edge

	// cache is the BuildCache this graph was carved from (nil for plain
	// Build); the lazy analyses reuse its buffers too.
	cache *BuildCache
}

// Succs returns the edges leaving node id. The returned slice is shared —
// callers must not modify it.
func (g *Graph) Succs(id int) []Edge { return g.succEdges[id] }

// Preds returns the edges entering node id. The returned slice is shared —
// callers must not modify it.
func (g *Graph) Preds(id int) []Edge { return g.predEdges[id] }

// NodeByStmtID returns the node for a statement id, or nil.
func (g *Graph) NodeByStmtID(stmtID int) *Node {
	for _, n := range g.Nodes {
		if n.Stmt != nil && n.Stmt.ID() == stmtID {
			return n
		}
	}
	return nil
}

// NodesOfKind returns the ids of all nodes with the given kind, in id order.
func (g *Graph) NodesOfKind(kind NodeKind) []int {
	return g.AppendNodesOfKind(kind, nil)
}

// AppendNodesOfKind appends the ids of all nodes with the given kind, in id
// order, to dst — the allocation-free variant of NodesOfKind.
func (g *Graph) AppendNodesOfKind(kind NodeKind, dst []int) []int {
	for _, n := range g.Nodes {
		if n.Kind == kind {
			dst = append(dst, n.ID)
		}
	}
	return dst
}

// builder state for Build. Nodes are carved from one slab sized to the
// statement count (every statement yields exactly one node, plus
// entry/exit), so construction performs no per-node allocation. spare
// recycles dead frontier backings (see Build) so nested control flow
// stops allocating once the deepest nesting has been visited.
type builder struct {
	g     *Graph
	slab  []Node
	spare [][]dangling
}

// dangling is a (node, edge-kind) pair awaiting connection to the next
// node in sequence during construction.
type dangling struct {
	from int
	kind EdgeKind
}

// BuildCache recycles CFG construction buffers across repeated builds —
// the fixpoint driver in place rebuilds the CFG every round, and without
// reuse each rebuild pays the full slab/adjacency/dominator allocation
// bill again. A graph produced by BuildCached aliases its cache's
// buffers, so it is valid only until the next BuildCached call with the
// same cache; callers that need a graph to outlive the cache (or build
// concurrently) pass nil. Not safe for concurrent use.
type BuildCache struct {
	slab        []Node
	nodes       []*Node
	edges       []Edge
	deg         []int
	edgeBacking []Edge
	adj         [][]Edge
	spare       [][]dangling

	// Lazy-analysis buffers (Dominators / BackEdges).
	domWords []uint64
	dom      []Bitset
	meet     Bitset
	back     []Edge
}

// grown returns buf with length 0 and capacity ≥ n, reusing its backing
// array when possible. Contents are garbage; callers append.
func grown[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:0]
	}
	return make([]T, 0, n)
}

// grownLen returns buf with length exactly n, reusing its backing array
// when possible. Contents are garbage; callers must overwrite every entry.
func grownLen[T any](buf []T, n int) []T {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]T, n)
}

// take returns a length-1 frontier holding d, reusing a recycled backing
// when one is available. An empty freelist is refilled in bulk: one slab
// carved into fixed-capacity slots, so deep if/while nests cost one
// allocation per eight frontiers instead of one each. The slots use
// three-index slices, so a frontier outgrowing its slot reallocates
// normally rather than bleeding into a sibling.
func (b *builder) take(d dangling) []dangling {
	if len(b.spare) == 0 {
		// Slots lost to un-recyclable frontiers (merges, the final frontier)
		// drain the freelist a little every build; 32 slots per refill keeps
		// the cached-build steady state at one slab per several rounds.
		const slots, slotCap = 32, 4
		slab := make([]dangling, slots*slotCap)
		for i := 0; i < slots; i++ {
			lo := i * slotCap
			b.spare = append(b.spare, slab[lo:lo:lo+slotCap])
		}
	}
	k := len(b.spare)
	s := b.spare[k-1][:0]
	b.spare = b.spare[:k-1]
	return append(s, d)
}

// recycle donates a dead frontier's backing to later take calls. Callers
// must guarantee no live slice shares it.
func (b *builder) recycle(f []dangling) {
	if cap(f) > 0 {
		b.spare = append(b.spare, f[:0])
	}
}

func (b *builder) newNode(kind NodeKind, stmt mpl.Stmt) int {
	id := len(b.g.Nodes)
	b.slab = append(b.slab, Node{ID: id, Kind: kind, Stmt: stmt})
	b.g.Nodes = append(b.g.Nodes, &b.slab[len(b.slab)-1])
	return id
}

func (b *builder) addEdge(from, to int, kind EdgeKind) {
	b.g.Edges = append(b.g.Edges, Edge{From: from, To: to, Kind: kind})
}

// finalize builds the grouped adjacency in two counting passes over Edges:
// one backing array per direction, subsliced per node, so construction does
// no per-node slice growth and Succs/Preds are allocation-free afterwards.
// Edge order within a node's Succs/Preds follows Edges order, matching the
// insertion order the incremental construction used to produce.
func (g *Graph) finalize(c *BuildCache) {
	n := len(g.Nodes)
	c.deg = grownLen(c.deg, 2*n)
	deg := c.deg
	for i := range deg {
		deg[i] = 0
	}
	outDeg, inDeg := deg[:n], deg[n:]
	for _, e := range g.Edges {
		outDeg[e.From]++
		inDeg[e.To]++
	}
	c.edgeBacking = grownLen(c.edgeBacking, 2*len(g.Edges))
	edgeBacking := c.edgeBacking
	succBacking, predBacking := edgeBacking[:len(g.Edges)], edgeBacking[len(g.Edges):]
	c.adj = grownLen(c.adj, 2*n)
	adj := c.adj
	g.succEdges, g.predEdges = adj[:n], adj[n:]
	off := 0
	for id := 0; id < n; id++ {
		g.succEdges[id] = succBacking[off : off : off+outDeg[id]]
		off += outDeg[id]
	}
	off = 0
	for id := 0; id < n; id++ {
		g.predEdges[id] = predBacking[off : off : off+inDeg[id]]
		off += inDeg[id]
	}
	for _, e := range g.Edges {
		g.succEdges[e.From] = append(g.succEdges[e.From], e)
		g.predEdges[e.To] = append(g.predEdges[e.To], e)
	}
}

// Build constructs the CFG of a program. Each statement yields exactly one
// node; while and if statements yield branch nodes whose True edge enters
// the body/then and whose False edge leaves the loop / enters the else.
func Build(p *mpl.Program) (*Graph, error) { return BuildCached(p, nil) }

// BuildCached is Build with recycled construction buffers. The returned
// graph aliases the cache and is invalidated by the next BuildCached call
// with the same cache — see BuildCache. A nil cache builds fresh.
func BuildCached(p *mpl.Program, c *BuildCache) (*Graph, error) {
	if c == nil {
		c = &BuildCache{}
	}
	nstmt := p.StmtCount() + 2
	b := &builder{
		g: &Graph{
			Nodes: grown(c.nodes, nstmt),
			Edges: grown(c.edges, nstmt+nstmt/2),
			cache: c,
		},
		slab:  grown(c.slab, nstmt),
		spare: c.spare,
	}
	entry := b.newNode(KindEntry, nil)
	b.g.Entry = entry
	connect := func(frontier []dangling, to int) {
		for _, d := range frontier {
			b.addEdge(d.from, to, d.kind)
		}
	}

	var buildBody func(body []mpl.Stmt, frontier []dangling) ([]dangling, error)
	buildBody = func(body []mpl.Stmt, frontier []dangling) ([]dangling, error) {
		for _, s := range body {
			var kind NodeKind
			switch s.(type) {
			case *mpl.Assign, *mpl.Work:
				kind = KindCompute
			case *mpl.Send:
				kind = KindSend
			case *mpl.Recv:
				kind = KindRecv
			case *mpl.Bcast:
				kind = KindBcast
			case *mpl.Reduce:
				kind = KindReduce
			case *mpl.Chkpt:
				kind = KindChkpt
			case *mpl.While, *mpl.If:
				kind = KindBranch
			default:
				return nil, fmt.Errorf("cfg: unknown statement type %T", s)
			}
			id := b.newNode(kind, s)
			connect(frontier, id)
			switch st := s.(type) {
			case *mpl.While:
				bodyEnd, err := buildBody(st.Body, b.take(dangling{id, EdgeTrue}))
				if err != nil {
					return nil, err
				}
				// Backward edges to the loop header.
				connect(bodyEnd, id)
				b.recycle(bodyEnd)
				frontier = append(frontier[:0], dangling{id, EdgeFalse})
			case *mpl.If:
				thenEnd, err := buildBody(st.Then, b.take(dangling{id, EdgeTrue}))
				if err != nil {
					return nil, err
				}
				elseEnd, err := buildBody(st.Else, b.take(dangling{id, EdgeFalse}))
				if err != nil {
					return nil, err
				}
				merged := append(thenEnd, elseEnd...)
				// elseEnd's backing was copied out; thenEnd's was either
				// extended in place (now owned by merged) or, if append
				// grew, also left dead — only the provably dead one is safe
				// to recycle.
				b.recycle(elseEnd)
				frontier = merged
			default:
				// The incoming frontier's entries were just consumed by
				// connect, so its backing can host the successor frontier —
				// the straight-line common case allocates nothing.
				frontier = append(frontier[:0], dangling{id, EdgeSeq})
			}
		}
		return frontier, nil
	}

	frontier, err := buildBody(p.Body, []dangling{{entry, EdgeSeq}})
	if err != nil {
		return nil, err
	}
	exit := b.newNode(KindExit, nil)
	b.g.Exit = exit
	connect(frontier, exit)
	b.g.finalize(c)
	// Hand the (possibly regrown) buffers back for the next build.
	c.slab, c.nodes, c.edges, c.spare = b.slab, b.g.Nodes, b.g.Edges, b.spare
	return b.g, nil
}

// Dominators computes the immediate-dominator-free dominator sets: dom[v]
// is the set (as a bitset indexed by node id) of nodes that dominate v. A
// node a dominates b when every path from entry to b includes a (§2).
//
// The result is computed once and cached — the Graph is immutable after
// Build — with all rows carved from one backing array, so repeated queries
// (back-edge tests, Phase III dominator chains) cost nothing. Callers must
// not modify the returned sets.
func (g *Graph) Dominators() []Bitset {
	g.domOnce.Do(g.computeDominators)
	return g.dom
}

func (g *Graph) computeDominators() {
	n := len(g.Nodes)
	words := (n + 63) / 64
	var backing []uint64
	var dom []Bitset
	var meet Bitset
	if c := g.cache; c != nil {
		c.domWords = grownLen(c.domWords, n*words)
		backing = c.domWords
		for i := range backing {
			backing[i] = 0
		}
		c.dom = grownLen(c.dom, n)
		dom = c.dom
		c.meet = Bitset(grownLen([]uint64(c.meet), words))
		meet = c.meet
	} else {
		backing = make([]uint64, n*words)
		dom = make([]Bitset, n)
		meet = NewBitset(n)
	}
	for v := range dom {
		dom[v] = Bitset(backing[v*words : (v+1)*words])
		if v == g.Entry {
			dom[v].Set(g.Entry)
		} else {
			for i := 0; i < n; i++ {
				dom[v].Set(i)
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for v := 0; v < n; v++ {
			if v == g.Entry {
				continue
			}
			preds := g.predEdges[v]
			if len(preds) == 0 {
				// Unreachable node: dominated by everything (vacuous).
				continue
			}
			meet.CopyFrom(dom[preds[0].From])
			for _, e := range preds[1:] {
				meet.IntersectWith(dom[e.From])
			}
			meet.Set(v)
			if !meet.Equal(dom[v]) {
				dom[v].CopyFrom(meet)
				changed = true
			}
		}
	}
	g.dom = dom
}

// Dominates reports whether a dominates b under the given dominator sets.
func Dominates(dom []Bitset, a, b int) bool { return dom[b].Has(a) }

// BackEdges returns the edges ⟨a,b⟩ where b dominates a — the loop edges of
// the graph (§2's backward edges). The result is cached; callers must not
// modify it.
func (g *Graph) BackEdges() []Edge {
	g.backOnce.Do(func() {
		dom := g.Dominators()
		cnt := 0
		for _, e := range g.Edges {
			if Dominates(dom, e.To, e.From) {
				cnt++
			}
		}
		if cnt == 0 {
			return
		}
		if c := g.cache; c != nil {
			g.back = grown(c.back, cnt)
		} else {
			g.back = make([]Edge, 0, cnt)
		}
		for _, e := range g.Edges {
			if Dominates(dom, e.To, e.From) {
				g.back = append(g.back, e)
			}
		}
		if c := g.cache; c != nil {
			c.back = g.back
		}
	})
	return g.back
}

// IsBackEdge reports whether e is a backward control edge (its target
// dominates its source). It answers from the cached dominator sets in O(1),
// replacing the map[Edge]bool sets the path searches used to rebuild per
// query.
func (g *Graph) IsBackEdge(e Edge) bool {
	dom := g.Dominators()
	return dom[e.From].Has(e.To)
}

// NaturalLoop returns the node set of the natural loop of back edge ⟨a,b⟩:
// all nodes that can reach a without passing through b, plus b.
func (g *Graph) NaturalLoop(back Edge) Bitset {
	loop := NewBitset(len(g.Nodes))
	loop.Set(back.To)
	stack := []int{back.From}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if loop.Has(v) {
			continue
		}
		loop.Set(v)
		for _, e := range g.Preds(v) {
			stack = append(stack, e.From)
		}
	}
	return loop
}

// Reachable returns the bitset of nodes reachable from start via control
// edges (including start itself).
func (g *Graph) Reachable(start int) Bitset {
	seen := NewBitset(len(g.Nodes))
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen.Has(v) {
			continue
		}
		seen.Set(v)
		for _, e := range g.Succs(v) {
			if !seen.Has(e.To) {
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// PathExists reports whether a control path from a to b exists (a path of
// length zero counts: PathExists(x, x) is true).
func (g *Graph) PathExists(a, b int) bool {
	return g.Reachable(a).Has(b)
}

// FindPath returns one shortest control path from a to b as a node id
// sequence, or nil when none exists.
func (g *Graph) FindPath(a, b int) []int {
	if a == b {
		return []int{a}
	}
	prev := make([]int, len(g.Nodes))
	for i := range prev {
		prev[i] = -1
	}
	queue := []int{a}
	seen := NewBitset(len(g.Nodes))
	seen.Set(a)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.Succs(v) {
			if seen.Has(e.To) {
				continue
			}
			seen.Set(e.To)
			prev[e.To] = v
			if e.To == b {
				var path []int
				for x := b; x != -1; x = prev[x] {
					path = append(path, x)
					if x == a {
						break
					}
				}
				reverse(path)
				return path
			}
			queue = append(queue, e.To)
		}
	}
	return nil
}

func reverse(a []int) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}
