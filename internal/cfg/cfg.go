// Package cfg builds and analyzes control-flow graphs of MPL programs —
// the representation the paper's offline analysis operates on (§2). A CFG
// has an entry and an exit node, branch nodes for loop and condition
// expressions, and dedicated nodes for the send, receive, bcast, and
// checkpoint statements that generate the events of the system model.
// Compute statements (assignments, work) also get nodes so the graph fully
// reflects program order.
//
// The package provides the standard analyses the paper relies on:
// dominators, backward-edge detection (loops), reachability and path
// extraction, and enumeration of checkpoint indexes (the C_i of §2).
package cfg

import (
	"fmt"

	"repro/internal/mpl"
)

// NodeKind classifies CFG nodes.
type NodeKind int

// Node kinds.
const (
	KindEntry NodeKind = iota + 1
	KindExit
	KindBranch  // while or if condition
	KindCompute // assign or work
	KindSend
	KindRecv
	KindBcast
	KindReduce
	KindChkpt
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case KindEntry:
		return "entry"
	case KindExit:
		return "exit"
	case KindBranch:
		return "branch"
	case KindCompute:
		return "compute"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindBcast:
		return "bcast"
	case KindReduce:
		return "reduce"
	case KindChkpt:
		return "chkpt"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// EdgeKind classifies control edges.
type EdgeKind int

// Edge kinds. Branch nodes emit True/False edges; everything else emits Seq.
const (
	EdgeSeq EdgeKind = iota + 1
	EdgeTrue
	EdgeFalse
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeSeq:
		return "seq"
	case EdgeTrue:
		return "true"
	case EdgeFalse:
		return "false"
	default:
		return fmt.Sprintf("edge(%d)", int(k))
	}
}

// Edge is a directed control edge.
type Edge struct {
	From int
	To   int
	Kind EdgeKind
}

// Node is one CFG node.
type Node struct {
	ID    int
	Kind  NodeKind
	Stmt  mpl.Stmt // nil for entry/exit
	Label string
}

// Graph is a control-flow graph. Nodes are indexed by ID (dense, starting
// at 0); Entry and Exit name the distinguished nodes.
type Graph struct {
	Nodes []*Node
	Edges []Edge
	Entry int
	Exit  int

	succs [][]int // edge indexes by From
	preds [][]int // edge indexes by To
}

// Succs returns the edges leaving node id.
func (g *Graph) Succs(id int) []Edge {
	out := make([]Edge, len(g.succs[id]))
	for i, ei := range g.succs[id] {
		out[i] = g.Edges[ei]
	}
	return out
}

// Preds returns the edges entering node id.
func (g *Graph) Preds(id int) []Edge {
	out := make([]Edge, len(g.preds[id]))
	for i, ei := range g.preds[id] {
		out[i] = g.Edges[ei]
	}
	return out
}

// NodeByStmtID returns the node for a statement id, or nil.
func (g *Graph) NodeByStmtID(stmtID int) *Node {
	for _, n := range g.Nodes {
		if n.Stmt != nil && n.Stmt.ID() == stmtID {
			return n
		}
	}
	return nil
}

// NodesOfKind returns the ids of all nodes with the given kind, in id order.
func (g *Graph) NodesOfKind(kind NodeKind) []int {
	var out []int
	for _, n := range g.Nodes {
		if n.Kind == kind {
			out = append(out, n.ID)
		}
	}
	return out
}

// builder state for Build.
type builder struct {
	g *Graph
}

func (b *builder) newNode(kind NodeKind, stmt mpl.Stmt, label string) int {
	id := len(b.g.Nodes)
	b.g.Nodes = append(b.g.Nodes, &Node{ID: id, Kind: kind, Stmt: stmt, Label: label})
	b.g.succs = append(b.g.succs, nil)
	b.g.preds = append(b.g.preds, nil)
	return id
}

func (b *builder) addEdge(from, to int, kind EdgeKind) {
	ei := len(b.g.Edges)
	b.g.Edges = append(b.g.Edges, Edge{From: from, To: to, Kind: kind})
	b.g.succs[from] = append(b.g.succs[from], ei)
	b.g.preds[to] = append(b.g.preds[to], ei)
}

// Build constructs the CFG of a program. Each statement yields exactly one
// node; while and if statements yield branch nodes whose True edge enters
// the body/then and whose False edge leaves the loop / enters the else.
func Build(p *mpl.Program) (*Graph, error) {
	b := &builder{g: &Graph{}}
	entry := b.newNode(KindEntry, nil, "ENTRY")
	b.g.Entry = entry
	// frontier is the set of (node, edgeKind) pairs awaiting connection to
	// the next node in sequence.
	type dangling struct {
		from int
		kind EdgeKind
	}
	connect := func(frontier []dangling, to int) {
		for _, d := range frontier {
			b.addEdge(d.from, to, d.kind)
		}
	}

	var buildBody func(body []mpl.Stmt, frontier []dangling) ([]dangling, error)
	buildBody = func(body []mpl.Stmt, frontier []dangling) ([]dangling, error) {
		for _, s := range body {
			var kind NodeKind
			switch s.(type) {
			case *mpl.Assign, *mpl.Work:
				kind = KindCompute
			case *mpl.Send:
				kind = KindSend
			case *mpl.Recv:
				kind = KindRecv
			case *mpl.Bcast:
				kind = KindBcast
			case *mpl.Reduce:
				kind = KindReduce
			case *mpl.Chkpt:
				kind = KindChkpt
			case *mpl.While, *mpl.If:
				kind = KindBranch
			default:
				return nil, fmt.Errorf("cfg: unknown statement type %T", s)
			}
			id := b.newNode(kind, s, mpl.DescribeStmt(s))
			connect(frontier, id)
			switch st := s.(type) {
			case *mpl.While:
				bodyEnd, err := buildBody(st.Body, []dangling{{id, EdgeTrue}})
				if err != nil {
					return nil, err
				}
				// Backward edges to the loop header.
				connect(bodyEnd, id)
				frontier = []dangling{{id, EdgeFalse}}
			case *mpl.If:
				thenEnd, err := buildBody(st.Then, []dangling{{id, EdgeTrue}})
				if err != nil {
					return nil, err
				}
				elseEnd, err := buildBody(st.Else, []dangling{{id, EdgeFalse}})
				if err != nil {
					return nil, err
				}
				frontier = append(thenEnd, elseEnd...)
			default:
				frontier = []dangling{{id, EdgeSeq}}
			}
		}
		return frontier, nil
	}

	frontier, err := buildBody(p.Body, []dangling{{entry, EdgeSeq}})
	if err != nil {
		return nil, err
	}
	exit := b.newNode(KindExit, nil, "EXIT")
	b.g.Exit = exit
	connect(frontier, exit)
	return b.g, nil
}

// Dominators computes the immediate-dominator-free dominator sets: dom[v]
// is the set (as a bitset indexed by node id) of nodes that dominate v. A
// node a dominates b when every path from entry to b includes a (§2).
func (g *Graph) Dominators() []Bitset {
	n := len(g.Nodes)
	dom := make([]Bitset, n)
	all := NewBitset(n)
	for i := 0; i < n; i++ {
		all.Set(i)
	}
	for v := range dom {
		if v == g.Entry {
			dom[v] = NewBitset(n)
			dom[v].Set(g.Entry)
		} else {
			dom[v] = all.Clone()
		}
	}
	changed := true
	for changed {
		changed = false
		for v := 0; v < n; v++ {
			if v == g.Entry {
				continue
			}
			var meet Bitset
			first := true
			for _, e := range g.Preds(v) {
				if first {
					meet = dom[e.From].Clone()
					first = false
				} else {
					meet.IntersectWith(dom[e.From])
				}
			}
			if first {
				// Unreachable node: dominated by everything (vacuous).
				continue
			}
			meet.Set(v)
			if !meet.Equal(dom[v]) {
				dom[v] = meet
				changed = true
			}
		}
	}
	return dom
}

// Dominates reports whether a dominates b under the given dominator sets.
func Dominates(dom []Bitset, a, b int) bool { return dom[b].Has(a) }

// BackEdges returns the edges ⟨a,b⟩ where b dominates a — the loop edges of
// the graph (§2's backward edges).
func (g *Graph) BackEdges() []Edge {
	dom := g.Dominators()
	var out []Edge
	for _, e := range g.Edges {
		if Dominates(dom, e.To, e.From) {
			out = append(out, e)
		}
	}
	return out
}

// NaturalLoop returns the node set of the natural loop of back edge ⟨a,b⟩:
// all nodes that can reach a without passing through b, plus b.
func (g *Graph) NaturalLoop(back Edge) Bitset {
	loop := NewBitset(len(g.Nodes))
	loop.Set(back.To)
	stack := []int{back.From}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if loop.Has(v) {
			continue
		}
		loop.Set(v)
		for _, e := range g.Preds(v) {
			stack = append(stack, e.From)
		}
	}
	return loop
}

// Reachable returns the bitset of nodes reachable from start via control
// edges (including start itself).
func (g *Graph) Reachable(start int) Bitset {
	seen := NewBitset(len(g.Nodes))
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen.Has(v) {
			continue
		}
		seen.Set(v)
		for _, e := range g.Succs(v) {
			if !seen.Has(e.To) {
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// PathExists reports whether a control path from a to b exists (a path of
// length zero counts: PathExists(x, x) is true).
func (g *Graph) PathExists(a, b int) bool {
	return g.Reachable(a).Has(b)
}

// FindPath returns one shortest control path from a to b as a node id
// sequence, or nil when none exists.
func (g *Graph) FindPath(a, b int) []int {
	if a == b {
		return []int{a}
	}
	prev := make([]int, len(g.Nodes))
	for i := range prev {
		prev[i] = -1
	}
	queue := []int{a}
	seen := NewBitset(len(g.Nodes))
	seen.Set(a)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.Succs(v) {
			if seen.Has(e.To) {
				continue
			}
			seen.Set(e.To)
			prev[e.To] = v
			if e.To == b {
				var path []int
				for x := b; x != -1; x = prev[x] {
					path = append(path, x)
					if x == a {
						break
					}
				}
				reverse(path)
				return path
			}
			queue = append(queue, e.To)
		}
	}
	return nil
}

func reverse(a []int) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}
