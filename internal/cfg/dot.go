package cfg

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax. Message edges (from an
// extended CFG) may be passed to render as dashed edges, matching the
// paper's Figure 4 presentation.
func (g *Graph) DOT(name string, messageEdges []Edge) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  node [fontname=\"monospace\"];\n")
	for _, n := range g.Nodes {
		shape := "box"
		switch n.Kind {
		case KindEntry, KindExit:
			shape = "oval"
		case KindBranch:
			shape = "diamond"
		case KindChkpt:
			shape = "doubleoctagon"
		}
		label := n.Label()
		if label == "" {
			label = n.Kind.String()
		}
		fmt.Fprintf(&sb, "  n%d [label=%q, shape=%s];\n", n.ID, label, shape)
	}
	back := make(map[Edge]bool)
	for _, e := range g.BackEdges() {
		back[e] = true
	}
	for _, e := range g.Edges {
		attrs := []string{}
		switch e.Kind {
		case EdgeTrue:
			attrs = append(attrs, `label="T"`)
		case EdgeFalse:
			attrs = append(attrs, `label="F"`)
		}
		if back[e] {
			attrs = append(attrs, "constraint=false", "color=gray")
		}
		fmt.Fprintf(&sb, "  n%d -> n%d", e.From, e.To)
		if len(attrs) > 0 {
			fmt.Fprintf(&sb, " [%s]", strings.Join(attrs, ", "))
		}
		sb.WriteString(";\n")
	}
	for _, e := range messageEdges {
		fmt.Fprintf(&sb, "  n%d -> n%d [style=dashed, color=blue, label=\"msg\"];\n", e.From, e.To)
	}
	sb.WriteString("}\n")
	return sb.String()
}
