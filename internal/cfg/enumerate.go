package cfg

import (
	"fmt"

	"repro/internal/mpl"
)

// This file enumerates checkpoint statements: the C_i of §2. The paper
// enumerates checkpoint nodes along every entry→exit path; a checkpoint
// statement inside a loop keeps the same index in every iteration
// (Definition 2.3). Enumeration is well-defined only when every path
// assigns the same index to each checkpoint — the property Phase I's
// equalization step ("we may add/remove some of the checkpoints to ensure
// that every path of the CFG has the same number of checkpoint nodes")
// establishes. Because MPL programs are structured, we enumerate directly
// on the AST: if-branches must contain the same number of checkpoints, and
// a while body contributes its checkpoints exactly once.

// AmbiguousError reports that checkpoint indexing differs across paths, with
// the statement at which the mismatch is detected.
type AmbiguousError struct {
	Stmt mpl.Stmt
	Msg  string
}

// Error implements error.
func (e *AmbiguousError) Error() string {
	return fmt.Sprintf("cfg: ambiguous checkpoint enumeration at %s: %s", mpl.DescribeStmt(e.Stmt), e.Msg)
}

// Enumeration maps checkpoint statement ids to indexes (1-based).
type Enumeration struct {
	// Index maps chkpt statement id -> checkpoint index i.
	Index map[int]int
	// Count is the number of distinct indexes (the m of Algorithm 3.2).
	Count int
}

// ByIndex returns the statement ids carrying index i, in id order — the
// S_i of §2 as statement ids.
func (e *Enumeration) ByIndex(i int) []int {
	var out []int
	for id, idx := range e.Index {
		if idx == i {
			out = append(out, id)
		}
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Enumerate assigns checkpoint indexes to every chkpt statement of the
// program. It fails with *AmbiguousError when two paths disagree — i.e.
// when an if statement's branches contain different numbers of checkpoints
// (Phase I must equalize first).
func Enumerate(p *mpl.Program) (*Enumeration, error) {
	enum := &Enumeration{}
	if err := EnumerateInto(p, enum); err != nil {
		return nil, err
	}
	return enum, nil
}

// EnumerateInto is Enumerate writing into an existing Enumeration,
// reusing its map storage — for callers (Phase III's fixpoint) that
// re-enumerate the same program many times.
func EnumerateInto(p *mpl.Program, enum *Enumeration) error {
	if enum.Index == nil {
		enum.Index = make(map[int]int)
	} else {
		clear(enum.Index)
	}
	end, err := enumerateBody(p.Body, 0, enum)
	if err != nil {
		return err
	}
	enum.Count = end
	return nil
}

// enumerateBody walks stmts assigning indexes starting after `seen`
// checkpoints; it returns the total checkpoints seen after the body.
func enumerateBody(body []mpl.Stmt, seen int, enum *Enumeration) (int, error) {
	for _, s := range body {
		switch st := s.(type) {
		case *mpl.Chkpt:
			seen++
			enum.Index[st.ID()] = seen
		case *mpl.While:
			// The body's checkpoints are indexed once; iterations repeat
			// the same indexes (Definition 2.3).
			end, err := enumerateBody(st.Body, seen, enum)
			if err != nil {
				return 0, err
			}
			seen = end
		case *mpl.If:
			thenEnd, err := enumerateBody(st.Then, seen, enum)
			if err != nil {
				return 0, err
			}
			elseEnd, err := enumerateBody(st.Else, seen, enum)
			if err != nil {
				return 0, err
			}
			if thenEnd != elseEnd {
				return 0, &AmbiguousError{
					Stmt: st,
					Msg: fmt.Sprintf("then-branch yields %d checkpoints, else-branch %d",
						thenEnd-seen, elseEnd-seen),
				}
			}
			seen = thenEnd
		}
	}
	return seen, nil
}

// EnumerateGraph applies an Enumeration to a graph, returning for each
// checkpoint index i the CFG node ids of S_i. Node ids are in id order.
func EnumerateGraph(g *Graph, enum *Enumeration) map[int][]int {
	out := make(map[int][]int)
	for _, n := range g.Nodes {
		if n.Kind != KindChkpt {
			continue
		}
		if idx, ok := enum.Index[n.Stmt.ID()]; ok {
			out[idx] = append(out[idx], n.ID)
		}
	}
	return out
}
