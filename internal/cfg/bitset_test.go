package cfg

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestBitsetCount(t *testing.T) {
	b := NewBitset(200)
	if b.Count() != 0 {
		t.Fatalf("empty Count = %d", b.Count())
	}
	want := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, i := range want {
		b.Set(i)
	}
	if got := b.Count(); got != len(want) {
		t.Errorf("Count = %d, want %d", got, len(want))
	}
	b.Clear(64)
	if got := b.Count(); got != len(want)-1 {
		t.Errorf("Count after Clear = %d, want %d", got, len(want)-1)
	}
}

func TestBitsetAppendMembers(t *testing.T) {
	b := NewBitset(150)
	want := []int{3, 64, 70, 149}
	for _, i := range want {
		b.Set(i)
	}
	if got := b.Members(); !reflect.DeepEqual(got, want) {
		t.Errorf("Members = %v, want %v", got, want)
	}
	// Append-into-caller-buffer variant: reusing the same backing array
	// must not allocate and must produce identical contents.
	buf := make([]int, 0, 8)
	got := b.AppendMembers(buf)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AppendMembers = %v, want %v", got, want)
	}
	if &got[0] != &buf[:1][0] {
		t.Error("AppendMembers reallocated despite sufficient capacity")
	}
	// Appending onto a non-empty prefix preserves it.
	pre := b.AppendMembers([]int{-1})
	if !reflect.DeepEqual(pre, append([]int{-1}, want...)) {
		t.Errorf("AppendMembers with prefix = %v", pre)
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = b.AppendMembers(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("AppendMembers into reused buffer allocates %v/op", allocs)
	}
}

func TestBitsetCopyFromZero(t *testing.T) {
	a, b := NewBitset(100), NewBitset(100)
	for _, i := range []int{1, 50, 99} {
		a.Set(i)
	}
	b.Set(7)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Errorf("CopyFrom: %v != %v", b.Members(), a.Members())
	}
	b.Zero()
	if b.Count() != 0 {
		t.Errorf("Zero left %v set", b.Members())
	}
	if len(b) != len(a) {
		t.Error("Zero changed capacity")
	}
}

func TestBitsetRandomAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const n = 300
	b := NewBitset(n)
	ref := map[int]bool{}
	for op := 0; op < 2000; op++ {
		i := r.Intn(n)
		if r.Intn(2) == 0 {
			b.Set(i)
			ref[i] = true
		} else {
			b.Clear(i)
			delete(ref, i)
		}
	}
	if b.Count() != len(ref) {
		t.Fatalf("Count = %d, want %d", b.Count(), len(ref))
	}
	for _, m := range b.Members() {
		if !ref[m] {
			t.Fatalf("spurious member %d", m)
		}
	}
}

func TestArenaReuse(t *testing.T) {
	a := &Arena{}
	b1 := a.Bits(100)
	b1.Set(5)
	i1 := a.Ints(10)
	i1[0] = 7
	a.Reset()
	b2 := a.Bits(100)
	if b2.Count() != 0 {
		t.Errorf("arena bitset not zeroed after Reset: %v", b2.Members())
	}
	i2 := a.Ints(10)
	if i2[0] != 0 {
		t.Error("arena ints not zeroed after Reset")
	}
	if &b1[0] != &b2[0] {
		t.Error("arena did not reuse bitset storage after Reset")
	}
	// A nil arena degrades to plain allocation.
	var nilA *Arena
	nb := nilA.Bits(64)
	nb.Set(1)
	if ni := nilA.Ints(4); len(ni) != 4 {
		t.Error("nil arena Ints wrong length")
	}
	nilA.Reset() // must not panic
}
