package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// feed publishes a tiny two-process run with a message, a checkpoint, a
// block, and a recovery cycle.
func feed(o Observer) {
	o.OnEvent(Event{Kind: KindCompute, Proc: 0, VClock: []uint64{1, 0}, Label: "x="})
	o.OnEvent(Event{Kind: KindSend, Proc: 0, VClock: []uint64{2, 0}, VTime: 0.001, Msg: &MsgRef{From: 0, To: 1, Seq: 0}})
	o.OnEvent(Event{Kind: KindRecv, Proc: 1, VClock: []uint64{2, 1}, VTime: 0.002, Msg: &MsgRef{From: 0, To: 1, Seq: 0}})
	o.OnEvent(Event{Kind: KindChkpt, Proc: 1, VClock: []uint64{2, 2}, VTime: 0.003, Chkpt: &ChkptRef{Index: 0, Instance: 0}, Label: "C_0"})
	o.OnEvent(Event{Kind: KindBlock, Proc: 0, VTime: 0.004, Tag: "ctrl", DurNS: 1500, VDur: 0.003})
	o.OnEvent(Event{Kind: KindRollback, Proc: -1, Label: "proc 1 failed"})
	o.OnEvent(Event{Kind: KindRestart, Proc: -1, Inc: 1})
	o.OnEvent(Event{Kind: KindHalt, Proc: 0, Inc: 1})
	o.OnEvent(Event{Kind: KindHalt, Proc: 1, Inc: 1})
}

func TestRecorderCanonicalOrder(t *testing.T) {
	r := NewRecorder()
	feed(r)
	events := r.Events()
	if len(events) != 9 {
		t.Fatalf("events = %d, want 9", len(events))
	}
	for i := 1; i < len(events); i++ {
		a, b := events[i-1], events[i]
		if a.Inc > b.Inc || (a.Inc == b.Inc && a.Proc > b.Proc) ||
			(a.Inc == b.Inc && a.Proc == b.Proc && a.Seq >= b.Seq) {
			t.Errorf("order violated at %d: %+v then %+v", i, a, b)
		}
	}
	// Per-(inc,proc) sequences start at 0 and are dense.
	if events[0].Proc != -1 || events[0].Seq != 0 {
		t.Errorf("first event = %+v, want runtime seq 0", events[0])
	}
}

func TestRecorderWallStamps(t *testing.T) {
	r := NewRecorder()
	r.OnEvent(Event{Kind: KindCompute, Proc: 0})
	time.Sleep(time.Millisecond)
	r.OnEvent(Event{Kind: KindCompute, Proc: 0})
	events := r.Events()
	if events[0].WallNS < 0 || events[1].WallNS <= events[0].WallNS {
		t.Errorf("wall stamps not increasing: %d then %d", events[0].WallNS, events[1].WallNS)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.OnEvent(Event{Kind: KindCompute, Proc: p})
			}
		}()
	}
	wg.Wait()
	events := r.Events()
	if len(events) != 2000 {
		t.Fatalf("events = %d", len(events))
	}
	// Each process's local history must be dense despite interleaving.
	next := map[int]int{}
	for _, e := range events {
		if e.Seq != next[e.Proc] {
			t.Fatalf("proc %d seq %d, want %d", e.Proc, e.Seq, next[e.Proc])
		}
		next[e.Proc]++
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Now = func() int64 { return 0 }
	feed(r)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 9 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		if e.Kind == "" {
			t.Errorf("line without kind: %q", line)
		}
		if strings.Contains(line, "wall_ns") {
			t.Errorf("zeroed wall clock still serialized: %q", line)
		}
	}
}

func TestStreamWriter(t *testing.T) {
	var buf bytes.Buffer
	s := NewStreamWriter(&buf)
	feed(s)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 9 {
		t.Fatalf("lines = %d", len(lines))
	}
	var first Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Kind != KindCompute {
		t.Errorf("stream not in arrival order: first = %+v", first)
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("empty Multi not nil")
	}
	a, b := NewRecorder(), NewRecorder()
	if Multi(a, nil) != Observer(a) {
		t.Error("single-observer Multi not unwrapped")
	}
	m := Multi(a, b)
	m.OnEvent(Event{Kind: KindCompute, Proc: 0})
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("fan-out failed: %d, %d", a.Len(), b.Len())
	}
}

// TestChromeTraceSchema validates the export against the trace-event
// contract Perfetto requires: a traceEvents array whose entries carry
// ph/ts/pid/tid, flow arrows in matched s/f pairs, and checkpoints as
// instant events.
func TestChromeTraceSchema(t *testing.T) {
	r := NewRecorder()
	r.Now = func() int64 { return 0 }
	feed(r)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	var flowsS, flowsF, instants int
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event missing %q: %v", field, ev)
			}
		}
		switch ev["ph"] {
		case "s":
			flowsS++
		case "f":
			flowsF++
			if ev["bp"] != "e" {
				t.Errorf("flow finish without bp=e: %v", ev)
			}
		case "i":
			instants++
		case "X":
			if d, ok := ev["dur"].(float64); !ok || d <= 0 {
				t.Errorf("slice without positive dur: %v", ev)
			}
		}
	}
	if flowsS != 1 || flowsF != 1 {
		t.Errorf("flow events s=%d f=%d, want 1/1", flowsS, flowsF)
	}
	if instants < 3 { // chkpt + rollback + restart at least
		t.Errorf("instants = %d", instants)
	}
}

func TestWriteMetricsJSONL(t *testing.T) {
	var c metrics.Counters
	c.IncAppMessages(4)
	c.Inc("custom_thing", 2)
	c.ObserveHist("stall_v", 0.5)
	c.ObserveHist("stall_v", 1.5)
	reg := metrics.NewRegistry()
	tm := reg.Timer("sim.run")
	tm.Start()
	tm.Stop()
	reg.Histogram("empty") // never observed: must not emit Inf

	var buf bytes.Buffer
	meta := RunMeta{Program: "p", Protocol: "appl", Nproc: 4, Restarts: 1}
	if err := WriteMetricsJSONL(&buf, meta, c.Snapshot(), reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	types := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		types[m["type"].(string)]++
		switch m["type"] {
		case "run":
			if m["program"] != "p" || m["nproc"] != float64(4) {
				t.Errorf("run line = %q", line)
			}
		case "counters":
			if m["app_messages"] != float64(4) {
				t.Errorf("counters line = %q", line)
			}
		case "histogram":
			if m["name"] == "stall_v" && m["count"] != float64(2) {
				t.Errorf("histogram line = %q", line)
			}
		}
	}
	if types["run"] != 1 || types["counters"] != 1 || types["histogram"] != 2 || types["timer"] != 1 {
		t.Errorf("line types = %v", types)
	}
}
