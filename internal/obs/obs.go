// Package obs is the run observability layer: it turns executions of the
// sim runtime into durable, structured artifacts. The runtime publishes
// Events through the Observer interface (wired via sim.Config.Observer);
// this package provides the consumers:
//
//   - Recorder collects events in memory and exports them as canonical
//     JSONL (WriteJSONL) or as a Chrome trace-event file (WriteChromeTrace)
//     that opens directly in Perfetto (ui.perfetto.dev) or
//     chrome://tracing, with per-process timelines, checkpoints as instant
//     events, send→recv flow arrows, and rollback/restart markers.
//   - StreamWriter streams each event as one JSON line the moment it is
//     observed — a flight recorder that survives crashes of the run.
//   - WriteMetricsJSONL exports a run's counters, histograms, and timers
//     as a JSONL metrics stream.
//
// The package deliberately depends only on internal/metrics, never on the
// runtime, so any event producer can reuse it.
//
// # JSONL event schema
//
// Each line is one JSON object:
//
//	kind    string  event kind: send, recv, chkpt, compute, block,
//	                rollback, restart, halt, fault, retry, scrub, degraded,
//	                netfault, suspect, backlog, heal, stall, storm, lag,
//	                admit, reject, jobdone, breaker, drain
//	proc    int     process rank; -1 for run-level events
//	inc     int     incarnation (0 until the first recovery)
//	seq     int     position in the (inc, proc) local history
//	vclock  []int   vector clock after the event (process events only)
//	vtime   float64 virtual time, seconds (when the run prices time)
//	wall_ns int64   wall-clock nanoseconds since the observer started
//	label   string  human-readable tag (statement, failure, recovery line)
//	tag     string  protocol tag for control traffic ("ctrl", marker tags)
//	msg     object  {"from","to","seq"} for send/recv
//	chkpt   object  {"index","instance"} for chkpt
//	dur_ns  int64   blocked wall time for block events
//	vdur    float64 blocked virtual time for block events
//
// Zero-valued optional fields are omitted. Lines are ordered by
// (inc, proc, seq) in Recorder exports, which is deterministic for
// deterministic programs; StreamWriter emits arrival order.
package obs

// Kind names an event class in the exported streams. String values, not
// iota: the JSONL schema is a contract with external tools.
type Kind string

// Event kinds. The first four mirror the trace package's local-history
// kinds; the rest are runtime lifecycle events that an in-memory trace
// never sees (they concern incarnations, not one local history).
const (
	KindCompute  Kind = "compute"
	KindSend     Kind = "send"
	KindRecv     Kind = "recv"
	KindChkpt    Kind = "chkpt"
	KindBlock    Kind = "block"
	KindRollback Kind = "rollback"
	KindRestart  Kind = "restart"
	KindHalt     Kind = "halt"
	// Robustness kinds: the chaos layer and the hardened runtime publish
	// every injected fault, every storage retry, every scrub quarantine,
	// and every degraded recovery-line fallback so fault handling is as
	// observable as the happy path.
	KindFault    Kind = "fault"    // injected storage fault (Tag: fault class)
	KindRetry    Kind = "retry"    // operation retried: storage (Tag: op) or transport retransmit (Tag: "retransmit")
	KindScrub    Kind = "scrub"    // scrub pass quarantined corrupt snapshots
	KindDegraded Kind = "degraded" // recovery fell back below the best straight cut
	// Network-chaos kinds: the link-level fault injector and the hardened
	// transport publish every injected network fault, heartbeat suspicion,
	// queue-backlog watermark crossing, and partition heal.
	KindNetFault Kind = "netfault" // injected network fault (Tag: drop/dup/reorder/delay/partition)
	KindSuspect  Kind = "suspect"  // heartbeat failure detector suspected a silent peer
	KindBacklog  Kind = "backlog"  // a channel queue crossed the configured backlog watermark
	KindHeal     Kind = "heal"     // a directed partition window closed (first frame through)
	// Health kinds: the live telemetry aggregator (internal/telemetry)
	// publishes its detector verdicts back into the event stream so the
	// flight recorder captures WHEN the run went unhealthy, not just that
	// it did.
	KindStall Kind = "stall" // no forward progress from a process for N aggregation windows
	KindStorm Kind = "storm" // rollback storm: repeated rollbacks within the detector's horizon
	KindLag   Kind = "lag"   // checkpoint lag: virtual time since a process's last completed save crossed the threshold
	// Fleet kinds: the fleet engine (internal/fleet) publishes job
	// admissions, rejections, terminal classifications, circuit-breaker
	// transitions, and drain lifecycle into the same stream, so one
	// recorder or telemetry aggregator sees the whole fleet's story. Fleet
	// events carry Proc = -1 (they concern jobs, not a job's processes)
	// and the job id in Inc where meaningful.
	KindAdmit   Kind = "admit"   // job admitted (Tag: tenant)
	KindReject  Kind = "reject"  // admission rejected (Tag: tenant, Label: reason)
	KindJobDone Kind = "jobdone" // admitted job reached a terminal bucket (Tag: bucket)
	KindBreaker Kind = "breaker" // circuit breaker transition (Label: from->to)
	KindDrain   Kind = "drain"   // drain lifecycle (Label: begin/park/done)
)

// MsgRef identifies an application message (sender, receiver, per-channel
// sequence number).
type MsgRef struct {
	From int `json:"from"`
	To   int `json:"to"`
	Seq  int `json:"seq"`
}

// ChkptRef identifies a checkpoint: the straight-cut index C_i and the
// instance count for checkpoint statements inside loops.
type ChkptRef struct {
	Index    int `json:"index"`
	Instance int `json:"instance"`
}

// Event is one observed runtime event. Producers fill the semantic fields;
// Seq and WallNS are stamped by the consuming Recorder/StreamWriter so
// producers stay free of clock and ordering concerns.
type Event struct {
	Kind   Kind      `json:"kind"`
	Proc   int       `json:"proc"`
	Inc    int       `json:"inc"`
	Seq    int       `json:"seq"`
	VClock []uint64  `json:"vclock,omitempty"`
	VTime  float64   `json:"vtime,omitempty"`
	WallNS int64     `json:"wall_ns,omitempty"`
	Label  string    `json:"label,omitempty"`
	Tag    string    `json:"tag,omitempty"`
	Msg    *MsgRef   `json:"msg,omitempty"`
	Chkpt  *ChkptRef `json:"chkpt,omitempty"`
	DurNS  int64     `json:"dur_ns,omitempty"`
	VDur   float64   `json:"vdur,omitempty"`
}

// Observer receives runtime events as they happen. Implementations must be
// safe for concurrent use: every process goroutine publishes through the
// same observer.
type Observer interface {
	OnEvent(Event)
}

// multi fans one event out to several observers.
type multi []Observer

func (m multi) OnEvent(e Event) {
	for _, o := range m {
		o.OnEvent(e)
	}
}

// Multi combines observers; nil entries are dropped. It returns nil when
// nothing remains, so callers can wire the result straight into a config
// field that treats nil as "observability off".
func Multi(obs ...Observer) Observer {
	var out multi
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return out
	}
}
