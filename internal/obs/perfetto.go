package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event format, the JSON dialect Perfetto (ui.perfetto.dev)
// and chrome://tracing ingest natively:
//
//	{"traceEvents": [{"name","ph","ts","pid","tid",...}, ...]}
//
// Phases used here: "M" metadata (process/thread names), "X" complete
// slices, "i" instant events, "s"/"f" flow arrows. Timestamps are
// microseconds. https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

type chromeEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope: t(hread), p(rocess), g(lobal)
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// timebase selects how event timestamps map to trace microseconds, in
// preference order: virtual time when the run priced it (deterministic,
// matches the paper's cost model), wall time otherwise, and the local
// sequence number as a last resort so traces without any clock still lay
// out left-to-right.
func timebase(events []Event) func(Event) float64 {
	anyV, anyW := false, false
	for _, e := range events {
		anyV = anyV || e.VTime > 0
		anyW = anyW || e.WallNS > 0
	}
	switch {
	case anyV:
		return func(e Event) float64 { return e.VTime * 1e6 }
	case anyW:
		return func(e Event) float64 { return float64(e.WallNS) / 1e3 }
	default:
		return func(e Event) float64 { return float64(e.Seq) }
	}
}

// tid maps a process rank to a trace thread id; the run-level pseudo
// process (-1) gets track 0, ranks shift up by one.
func tid(proc int) int { return proc + 1 }

// flowID names the send→recv arrow of one application message. Inc is part
// of the key: a replayed message after recovery is a fresh arrow.
func flowID(inc int, m *MsgRef) string {
	return fmt.Sprintf("m%d.%d.%d.%d", inc, m.From, m.To, m.Seq)
}

// WriteChromeTrace exports the recorded run in Chrome trace-event JSON.
// Each incarnation is one trace process ("pid"), each simulated process
// one thread: restarts therefore appear as separate process groups.
// Checkpoints render as instant events, application messages as flow
// arrows between the send and recv slices, block events as spans whose
// width is the stalled time, and rollback/restart as global instants.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	ts := timebase(events)

	var out []chromeEvent
	// Metadata: name every (incarnation, rank) track that appears.
	seenPID := map[int]bool{}
	seenTID := map[[2]int]bool{}
	for _, e := range events {
		if !seenPID[e.Inc] {
			seenPID[e.Inc] = true
			out = append(out, chromeEvent{
				Name: "process_name", Ph: "M", PID: e.Inc,
				Args: map[string]any{"name": fmt.Sprintf("incarnation %d", e.Inc)},
			})
		}
		key := [2]int{e.Inc, e.Proc}
		if !seenTID[key] {
			seenTID[key] = true
			name := fmt.Sprintf("proc %d", e.Proc)
			if e.Proc < 0 {
				name = "runtime"
			}
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", PID: e.Inc, TID: tid(e.Proc),
				Args: map[string]any{"name": name},
			})
		}
	}

	const pointDur = 1.0 // µs width of point-like slices
	for _, e := range events {
		base := chromeEvent{TS: ts(e), PID: e.Inc, TID: tid(e.Proc)}
		args := map[string]any{"seq": e.Seq}
		if len(e.VClock) > 0 {
			args["vclock"] = e.VClock
		}
		if e.Label != "" {
			args["label"] = e.Label
		}
		switch e.Kind {
		case KindChkpt:
			ev := base
			ev.Ph, ev.S, ev.Cat = "i", "t", "chkpt"
			ev.Name = e.Label
			if ev.Name == "" && e.Chkpt != nil {
				ev.Name = fmt.Sprintf("C_%d", e.Chkpt.Index)
			}
			if e.Chkpt != nil {
				args["index"], args["instance"] = e.Chkpt.Index, e.Chkpt.Instance
			}
			ev.Args = args
			out = append(out, ev)
		case KindSend:
			ev := base
			ev.Ph, ev.Dur, ev.Cat = "X", pointDur, "msg"
			ev.Name = fmt.Sprintf("send→%d", e.Msg.To)
			ev.Args = args
			out = append(out, ev)
			flow := base
			flow.Ph, flow.ID, flow.Name, flow.Cat = "s", flowID(e.Inc, e.Msg), "msg", "msg"
			out = append(out, flow)
		case KindRecv:
			ev := base
			ev.Ph, ev.Dur, ev.Cat = "X", pointDur, "msg"
			ev.Name = fmt.Sprintf("recv←%d", e.Msg.From)
			ev.Args = args
			out = append(out, ev)
			flow := base
			flow.Ph, flow.ID, flow.Name, flow.Cat, flow.BP = "f", flowID(e.Inc, e.Msg), "msg", "msg", "e"
			out = append(out, flow)
		case KindBlock:
			ev := base
			ev.Ph, ev.Cat = "X", "block"
			ev.Name = "blocked"
			if e.Tag != "" {
				ev.Name = "blocked:" + e.Tag
			}
			switch {
			case e.VDur > 0:
				ev.Dur = e.VDur * 1e6
				ev.TS -= ev.Dur // VTime is stamped at unblock
			case e.DurNS > 0:
				ev.Dur = float64(e.DurNS) / 1e3
			default:
				ev.Dur = pointDur
			}
			ev.Args = args
			out = append(out, ev)
		case KindRollback, KindRestart:
			ev := base
			ev.Ph, ev.S, ev.Cat = "i", "g", "recovery"
			ev.Name = string(e.Kind)
			ev.Args = args
			out = append(out, ev)
		case KindHalt:
			ev := base
			ev.Ph, ev.S, ev.Cat = "i", "t", "lifecycle"
			ev.Name = "halt"
			ev.Args = args
			out = append(out, ev)
		default: // compute and future kinds: a plain slice
			ev := base
			ev.Ph, ev.Dur, ev.Cat = "X", pointDur, "compute"
			ev.Name = e.Label
			if ev.Name == "" {
				ev.Name = string(e.Kind)
			}
			ev.Args = args
			out = append(out, ev)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}
