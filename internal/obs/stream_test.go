package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// TestStreamWriterTornPrefixParseable simulates a mid-run kill of a
// buffered stream: a tiny bufio buffer forces flushes to land mid-line, and
// the file is read WITHOUT closing the writer — exactly what a SIGKILL
// leaves behind. Every line but possibly the torn final one must parse.
func TestStreamWriterTornPrefixParseable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// 64 bytes is smaller than one encoded event, so the buffer spills
	// mid-line on nearly every event.
	bw := bufio.NewWriterSize(f, 64)
	s := NewStreamWriter(bw)
	s.Now = func() int64 { return 0 }
	for i := 0; i < 50; i++ {
		s.OnEvent(Event{Kind: KindCompute, Proc: i % 4, Label: "step-" + strconv.Itoa(i)})
	}
	// No Flush, no Close: read the kill artifact as-is.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("nothing reached disk before the simulated kill")
	}
	complete, torn := parseJSONLPrefix(t, data)
	if complete < 30 {
		t.Errorf("only %d complete events on disk of 50 written", complete)
	}
	if !torn {
		// With a 64-byte buffer the tail is almost certainly torn; if it
		// isn't, the prefix is simply fully parseable — also fine.
		t.Logf("tail happened to land on a line boundary (%d events)", complete)
	}
}

// TestStreamWriterAutoFlush: without an explicit Flush, a buffered stream
// becomes durable within the AutoFlush interval.
func TestStreamWriterAutoFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20) // too big to spill on its own
	s := NewStreamWriter(bw)
	stop := s.AutoFlush(5 * time.Millisecond)
	defer stop()
	s.OnEvent(Event{Kind: KindChkpt, Chkpt: &ChkptRef{Index: 1}})

	deadline := time.Now().Add(2 * time.Second)
	for {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 0 {
			if n, _ := parseJSONLPrefix(t, data); n != 1 {
				t.Fatalf("flushed %d events, want 1", n)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("AutoFlush never flushed the buffered event")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStreamWriterClose covers the Close contract: final flush, underlying
// close, and error propagation from each stage.
func TestStreamWriterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	s := NewStreamWriter(flushCloser{Writer: bw, c: f})
	stop := s.AutoFlush(time.Hour) // never fires; Close must stop it
	_ = stop
	s.OnEvent(Event{Kind: KindHalt})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n, torn := parseJSONLPrefix(t, data); n != 1 || torn {
		t.Errorf("after Close: %d events, torn=%v", n, torn)
	}
	// Close on an already-closed file must surface the close error.
	if err := s.Close(); err == nil {
		t.Error("second Close on closed file returned nil")
	}
}

// TestStreamWriterCloseReportsFlushError: a flush that cannot reach the
// writer must come back from Close even when every OnEvent "succeeded"
// into the buffer.
func TestStreamWriterCloseReportsFlushError(t *testing.T) {
	wantErr := errors.New("disk gone")
	fw := &failingFlushWriter{err: wantErr}
	s := NewStreamWriter(fw)
	s.OnEvent(Event{Kind: KindHalt})
	if err := s.Close(); !errors.Is(err, wantErr) {
		t.Errorf("Close = %v, want %v", err, wantErr)
	}
	if err := s.Err(); !errors.Is(err, wantErr) {
		t.Errorf("Err = %v, want %v", err, wantErr)
	}
}

// flushCloser buffers writes through bufio and closes the underlying file:
// the wiring CLI commands use for -events-out.
type flushCloser struct {
	*bufio.Writer
	c io.Closer
}

func (f flushCloser) Close() error { return f.c.Close() }

type failingFlushWriter struct{ err error }

func (f *failingFlushWriter) Write(p []byte) (int, error) { return len(p), nil }
func (f *failingFlushWriter) Flush() error                { return f.err }

// TestStreamWriterUnbufferedNoops: Flush/AutoFlush/Close on a plain writer
// are harmless no-ops (Close still reports stream errors).
func TestStreamWriterUnbufferedNoops(t *testing.T) {
	var buf bytes.Buffer
	s := NewStreamWriter(&buf)
	stop := s.AutoFlush(time.Millisecond)
	stop()
	s.OnEvent(Event{Kind: KindHalt})
	if err := s.Flush(); err != nil {
		t.Errorf("Flush: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if n, torn := parseJSONLPrefix(t, buf.Bytes()); n != 1 || torn {
		t.Errorf("%d events, torn=%v", n, torn)
	}
}

// parseJSONLPrefix parses data as JSONL tolerating a torn final line,
// failing the test on any malformed COMPLETE line. It returns the number
// of complete events and whether the tail was torn.
func parseJSONLPrefix(t *testing.T, data []byte) (complete int, torn bool) {
	t.Helper()
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			if i == len(lines)-1 {
				return complete, true // torn tail: tolerated
			}
			t.Fatalf("malformed non-final line %d: %q: %v", i, line, err)
		}
		complete++
	}
	return complete, false
}
