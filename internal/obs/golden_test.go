package obs_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// pipelineEvents executes the transformed pipeline example — the paper's
// staged producer/consumer workload — under virtual time and returns the
// canonical JSONL event stream. Everything in the run is deterministic
// (program, inputs, virtual clock, per-process local order), so the bytes
// must be identical on every execution; the wall clock is pinned to zero
// to keep it that way.
func pipelineEvents(t *testing.T) []byte {
	t.Helper()
	rep, err := core.Transform(corpus.PipelineStages(2), core.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	rec.Now = func() int64 { return 0 }
	tm := sim.PaperTimeModel
	epoch := time.Unix(0, 0)
	if _, err := sim.Run(sim.Config{
		Program:   rep.Program,
		Nproc:     4,
		Time:      &tm,
		Observer:  rec,
		WallClock: func() time.Time { return epoch }, // durations pin to 0
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPipelineEventStreamGolden pins the observer's JSONL schema and event
// ordering: the stream of a deterministic run must be byte-stable across
// runs and match the checked-in golden file. Regenerate with
//
//	go test ./internal/obs -run Golden -update
//
// after an INTENTIONAL schema or runtime-semantics change.
func TestPipelineEventStreamGolden(t *testing.T) {
	first := pipelineEvents(t)
	second := pipelineEvents(t)
	if !bytes.Equal(first, second) {
		t.Fatal("event stream differs between two identical runs — nondeterministic field in the schema?")
	}

	golden := filepath.Join("testdata", "pipeline_events.golden.jsonl")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, first, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(first, want) {
		gotLines := bytes.Split(first, []byte("\n"))
		wantLines := bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w []byte
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if !bytes.Equal(g, w) {
				t.Fatalf("event stream diverges from golden at line %d:\n got: %s\nwant: %s\n(run with -update after intentional changes)", i+1, g, w)
			}
		}
		t.Fatal("event stream differs from golden")
	}
}
