package obs

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/metrics"
)

// RunMeta describes the run a metrics stream belongs to.
type RunMeta struct {
	Program    string  `json:"program"`
	Protocol   string  `json:"protocol"`
	Nproc      int     `json:"nproc"`
	Restarts   int     `json:"restarts"`
	RolledBack int     `json:"rolled_back"`
	VTime      float64 `json:"vtime,omitempty"`
}

// metricsLine is one line of the metrics JSONL stream; Type discriminates:
// "run" (metadata), "counters", "histogram", "timer".
type metricsLine struct {
	Type string `json:"type"`

	// run
	*RunMeta `json:",omitempty"`

	// counters
	AppMessages     *int64           `json:"app_messages,omitempty"`
	CtrlMessages    *int64           `json:"ctrl_messages,omitempty"`
	CtrlBytes       *int64           `json:"ctrl_bytes,omitempty"`
	Checkpoints     *int64           `json:"checkpoints,omitempty"`
	Forced          *int64           `json:"forced,omitempty"`
	Rollbacks       *int64           `json:"rollbacks,omitempty"`
	RestartedEvents *int64           `json:"restarted_events,omitempty"`
	BlockedNS       *int64           `json:"blocked_ns,omitempty"`
	Custom          map[string]int64 `json:"custom,omitempty"`

	// histogram and timer
	Name string `json:"name,omitempty"`

	// histogram
	Count  int64     `json:"count,omitempty"`
	Sum    float64   `json:"sum,omitempty"`
	Min    float64   `json:"min,omitempty"`
	Max    float64   `json:"max,omitempty"`
	Mean   float64   `json:"mean,omitempty"`
	P50    float64   `json:"p50,omitempty"`
	P95    float64   `json:"p95,omitempty"`
	P99    float64   `json:"p99,omitempty"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`

	// timer
	NS int64 `json:"ns,omitempty"`
}

// WriteMetricsJSONL exports a run's metrics as a JSONL stream: one "run"
// line, one "counters" line, one "histogram" line per distribution (sorted
// by name), and one "timer" line per registry timer. A nil registry
// snapshot is fine — callers without stage timers pass
// metrics.RegistrySnapshot{}.
func WriteMetricsJSONL(w io.Writer, meta RunMeta, m metrics.Snapshot, reg metrics.RegistrySnapshot) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(metricsLine{Type: "run", RunMeta: &meta}); err != nil {
		return err
	}
	blocked := m.Blocked.Nanoseconds()
	counters := metricsLine{
		Type:            "counters",
		AppMessages:     &m.AppMessages,
		CtrlMessages:    &m.CtrlMessages,
		CtrlBytes:       &m.CtrlBytes,
		Checkpoints:     &m.Checkpoints,
		Forced:          &m.Forced,
		Rollbacks:       &m.Rollbacks,
		RestartedEvents: &m.RestartedEvents,
		BlockedNS:       &blocked,
		Custom:          m.Custom,
	}
	if err := enc.Encode(counters); err != nil {
		return err
	}
	if err := writeHistLines(enc, m.Hists); err != nil {
		return err
	}
	if err := writeHistLines(enc, reg.Hists); err != nil {
		return err
	}
	for _, t := range reg.Timers {
		line := metricsLine{Type: "timer", Name: t.Name, NS: t.Elapsed.Nanoseconds(), Count: t.Count}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

func writeHistLines(enc *json.Encoder, hists map[string]metrics.HistSnapshot) error {
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := hists[name]
		if h.Count == 0 {
			// Never observed: Min/Max are infinities, which JSON cannot
			// carry; emit an explicitly empty distribution instead.
			h.Min, h.Max = 0, 0
		}
		line := metricsLine{
			Type: "histogram", Name: name,
			Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
			Mean: h.Mean(), P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			Bounds: h.Bounds, Counts: h.Counts,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}
