package obs

import (
	"io"
	"os"
)

// WriteFile creates path, runs write, and closes the file, reporting the
// FIRST error: a failed write must not be masked by a clean close, and a
// failed close (lost flush) must surface even when the write succeeded.
// Export-producing commands route every artifact through it so their exit
// codes reflect truncated or unwritable output.
func WriteFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
