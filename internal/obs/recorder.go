package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// stamper assigns per-(inc, proc) local sequence numbers and wall-clock
// stamps. Callers must hold their own lock around stamp.
type stamper struct {
	start time.Time
	now   func() int64 // wall ns supplier; nil = real clock
	seqs  map[[2]int]int
}

func newStamper() stamper {
	return stamper{start: time.Now(), seqs: make(map[[2]int]int)}
}

func (s *stamper) stamp(e *Event, clock func() int64) {
	key := [2]int{e.Inc, e.Proc}
	e.Seq = s.seqs[key]
	s.seqs[key] = e.Seq + 1
	if clock != nil {
		e.WallNS = clock()
	} else {
		e.WallNS = int64(time.Since(s.start))
	}
}

// Recorder is an Observer that collects every event in memory for
// post-run export. The zero value is not usable; construct with
// NewRecorder.
type Recorder struct {
	mu sync.Mutex
	st stamper
	// Now, when non-nil, replaces the wall clock (nanoseconds since run
	// start). Tests use it for byte-stable output; returning a constant 0
	// suppresses wall_ns entirely via omitempty.
	Now    func() int64
	events []Event
}

// NewRecorder creates an empty recorder; wall stamps are relative to this
// call.
func NewRecorder() *Recorder {
	return &Recorder{st: newStamper()}
}

// OnEvent implements Observer.
func (r *Recorder) OnEvent(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.st.stamp(&e, r.Now)
	r.events = append(r.events, e)
}

// Events returns the recorded events in canonical (inc, proc, seq) order.
// Run-level events (proc -1) sort before the processes of their
// incarnation. This order is deterministic for deterministic programs —
// per-process histories are totally ordered by the process itself — while
// raw arrival order is scheduler-dependent.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Inc != b.Inc {
			return a.Inc < b.Inc
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.Seq < b.Seq
	})
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// WriteJSONL writes the events in canonical order, one JSON object per
// line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// StreamWriter is an Observer that writes each event as one JSON line the
// moment it arrives — arrival order, not canonical order — so a crashed
// run still leaves its events on disk. Construct with NewStreamWriter;
// check Err after the run (a stream that went bad swallows subsequent
// events rather than blocking the runtime).
//
// When the underlying writer buffers (it implements Flush() error, like
// bufio.Writer), call AutoFlush to bound how much history a kill can lose,
// and Close at the end of the run: Close stops the flusher, forces a final
// flush, closes the writer when it is an io.Closer, and returns the first
// error from any of stream, flush, or close — a lost flush must fail the
// run's exit code, not vanish.
type StreamWriter struct {
	mu  sync.Mutex
	st  stamper
	w   io.Writer
	enc *json.Encoder
	err error
	// Now mirrors Recorder.Now.
	Now func() int64

	stopFlush chan struct{} // non-nil while AutoFlush runs
	flushDone chan struct{}
}

// flusher is the buffered-writer contract AutoFlush and Close act on
// (bufio.Writer satisfies it).
type flusher interface{ Flush() error }

// NewStreamWriter creates a streaming observer over w.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return &StreamWriter{st: newStamper(), w: w, enc: json.NewEncoder(w)}
}

// OnEvent implements Observer.
func (s *StreamWriter) OnEvent(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.stamp(&e, s.Now)
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
}

// Err returns the first write error, if any.
func (s *StreamWriter) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Flush forces buffered events to the underlying writer (no-op when the
// writer does not buffer). The first flush failure poisons the stream like
// a write failure would.
func (s *StreamWriter) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *StreamWriter) flushLocked() error {
	f, ok := s.w.(flusher)
	if !ok {
		return s.err
	}
	if err := f.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// AutoFlush flushes the stream every interval until Close (or the returned
// stop function) is called, so a killed run leaves at most one interval of
// events in the buffer. It is a no-op for unbuffered writers. Calling it
// twice without an intervening stop panics — two flush loops on one stream
// is always a wiring bug.
func (s *StreamWriter) AutoFlush(interval time.Duration) (stop func()) {
	s.mu.Lock()
	if s.stopFlush != nil {
		s.mu.Unlock()
		panic("obs: AutoFlush already running")
	}
	if _, ok := s.w.(flusher); !ok || interval <= 0 {
		s.mu.Unlock()
		return func() {}
	}
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	s.stopFlush, s.flushDone = stopCh, doneCh
	s.mu.Unlock()

	go func() {
		defer close(doneCh)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Flush()
			case <-stopCh:
				return
			}
		}
	}()
	return func() { s.stopAutoFlush() }
}

func (s *StreamWriter) stopAutoFlush() {
	s.mu.Lock()
	stopCh, doneCh := s.stopFlush, s.flushDone
	s.stopFlush, s.flushDone = nil, nil
	s.mu.Unlock()
	if stopCh == nil {
		return
	}
	close(stopCh)
	<-doneCh
}

// Close stops any AutoFlush loop, flushes buffered events, closes the
// underlying writer when it is an io.Closer, and returns the first error
// among stream error, flush error, and close error.
func (s *StreamWriter) Close() error {
	s.stopAutoFlush()
	s.mu.Lock()
	first := s.flushLocked()
	s.mu.Unlock()
	if c, ok := s.w.(io.Closer); ok {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
