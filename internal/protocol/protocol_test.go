package protocol

import (
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
)

func run(t *testing.T, cfg sim.Config) *sim.Result {
	t.Helper()
	if cfg.Timeout == 0 {
		cfg.Timeout = 20 * time.Second
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// assertIndexCutsConsistent checks that for every checkpoint index stored
// by ALL processes, the (same-instance) cut is consistent.
func assertIndexCutsConsistent(t *testing.T, st storage.Store, n int) {
	t.Helper()
	indexes, err := st.Indexes(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(indexes) == 0 {
		t.Fatal("no complete checkpoint indexes")
	}
	for _, idx := range indexes {
		cut := make([]storage.Snapshot, n)
		for p := 0; p < n; p++ {
			s, err := st.Latest(p, idx)
			if err != nil {
				t.Fatal(err)
			}
			cut[p] = s
		}
		for i := range cut {
			for j := range cut {
				if i != j && cut[i].Clock.Before(cut[j].Clock) {
					t.Errorf("index %d: checkpoint of p%d happened before p%d's", idx, i, j)
				}
			}
		}
	}
}

func TestSaSConsistentRoundsAndMessageCount(t *testing.T) {
	const n, iters = 4, 3
	res := run(t, sim.Config{
		Program: corpus.JacobiFig1(iters),
		Nproc:   n,
		Hooks:   SaS(0),
	})
	assertIndexCutsConsistent(t, res.Store, n)
	// Every round's straight cut in the trace is a recovery line.
	for _, idx := range res.Trace.CheckpointIndexes() {
		cut, err := res.Trace.StraightCut(idx)
		if err != nil {
			t.Fatal(err)
		}
		if !trace.IsRecoveryLine(cut) {
			t.Errorf("SaS round %d cut inconsistent", idx)
		}
	}
	// The paper's M(SaS): 5(n-1) control messages per checkpoint round.
	wantCtrl := int64(iters * 5 * (n - 1))
	if res.Metrics.CtrlMessages != wantCtrl {
		t.Errorf("ctrl messages = %d, want %d", res.Metrics.CtrlMessages, wantCtrl)
	}
	if res.Metrics.Checkpoints != int64(iters*n) {
		t.Errorf("checkpoints = %d, want %d", res.Metrics.Checkpoints, iters*n)
	}
}

func TestSaSDeadlocksWhenBarrierMisplaced(t *testing.T) {
	// Fig2's odd ranks must receive before reaching their checkpoint
	// statement, but the even coordinator stops at the barrier before
	// sending: classic stop-the-world fragility. The application-driven
	// approach exists to avoid exactly this.
	_, err := sim.Run(sim.Config{
		Program: corpus.JacobiFig2(2),
		Nproc:   4,
		Hooks:   SaS(0),
		Timeout: 300 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestCLSnapshotsConsistentOnUntransformedFig2(t *testing.T) {
	// Fig2's OWN straight cuts are inconsistent; Chandy-Lamport's marker
	// rounds still produce recovery lines.
	const n, iters = 4, 3
	coll := NewCLCollector()
	res := run(t, sim.Config{
		Program: corpus.JacobiFig2(iters),
		Nproc:   n,
		Hooks:   CL(0, coll),
	})
	assertIndexCutsConsistent(t, res.Store, n)
	if coll.Rounds() != iters {
		t.Errorf("rounds = %d, want %d", coll.Rounds(), iters)
	}
	// Marker traffic: n(n-1) markers per round (every process refloods to
	// all others). The paper counts 2n(n-1) messages for C-L on a fully
	// connected network (bidirectional channel convention); our count is
	// the unidirectional half.
	wantMarkers := int64(iters * n * (n - 1))
	if res.Metrics.CtrlMessages != wantMarkers {
		t.Errorf("markers = %d, want %d", res.Metrics.CtrlMessages, wantMarkers)
	}
	if res.Metrics.Checkpoints != int64(iters*n) {
		t.Errorf("checkpoints = %d, want %d", res.Metrics.Checkpoints, iters*n)
	}
}

func TestCLOnRing(t *testing.T) {
	const n = 3
	coll := NewCLCollector()
	res := run(t, sim.Config{
		Program: corpus.Ring(3),
		Nproc:   n,
		Hooks:   CL(0, coll),
	})
	assertIndexCutsConsistent(t, res.Store, n)
	if coll.Rounds() == 0 {
		t.Fatal("no snapshot rounds")
	}
}

func TestCLCollectorRecordsChannelState(t *testing.T) {
	c := NewCLCollector()
	c.noteRound(0)
	c.record(0, 1, 2, 42)
	c.record(0, 1, 2, 43)
	got := c.ChannelState(0, 1, 2)
	if len(got) != 2 || got[0] != 42 || got[1] != 43 {
		t.Errorf("channel state = %v", got)
	}
	if c.Rounds() != 1 {
		t.Errorf("rounds = %d", c.Rounds())
	}
	if len(c.ChannelState(0, 2, 1)) != 0 {
		t.Error("unrecorded channel non-empty")
	}
}

func TestCICForcesCheckpointsAndStaysConsistent(t *testing.T) {
	// On the untransformed Fig2 the piggybacked indexes force odd ranks to
	// checkpoint before delivering even ranks' messages; same-index cuts
	// are then consistent even though the application's placements are
	// not.
	const n, iters = 4, 3
	res := run(t, sim.Config{
		Program: corpus.JacobiFig2(iters),
		Nproc:   n,
		Hooks:   CIC(),
	})
	assertIndexCutsConsistent(t, res.Store, n)
	if res.Metrics.Forced == 0 {
		t.Error("CIC took no forced checkpoints on Fig2")
	}
	if res.Metrics.CtrlMessages != 0 {
		t.Errorf("CIC sent %d control messages, want 0 (piggyback only)", res.Metrics.CtrlMessages)
	}
}

func TestCICNoForcedWhenPlacementAligned(t *testing.T) {
	// On Fig1 everyone checkpoints at the same point before communicating,
	// so indexes never lag: no forced checkpoints.
	res := run(t, sim.Config{
		Program: corpus.JacobiFig1(3),
		Nproc:   4,
		Hooks:   CIC(),
	})
	if res.Metrics.Forced != 0 {
		t.Errorf("forced = %d, want 0", res.Metrics.Forced)
	}
	assertIndexCutsConsistent(t, res.Store, 4)
}

func TestUncoordinatedTimerDomino(t *testing.T) {
	// Timer-driven local checkpoints, a crash, and LatestConsistent
	// recovery: the run completes with the correct result; rollbacks
	// beyond the newest checkpoints measure the domino effect.
	clean := run(t, sim.Config{Program: corpus.JacobiFig1(4), Nproc: 4})
	res := run(t, sim.Config{
		Program:  corpus.JacobiFig1(4),
		Nproc:    4,
		Hooks:    Uncoordinated(5),
		Failures: []sim.Failure{{Proc: 2, AfterEvents: 18}},
		Recover:  recovery.LatestConsistent,
	})
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.Restarts)
	}
	for p := range clean.FinalVars {
		if clean.FinalVars[p]["x"] != res.FinalVars[p]["x"] {
			t.Errorf("proc %d x = %d, want %d", p, res.FinalVars[p]["x"], clean.FinalVars[p]["x"])
		}
	}
}

func TestUncoordinatedStatementModeUsesLocalIndexes(t *testing.T) {
	res := run(t, sim.Config{
		Program: corpus.JacobiFig1(3),
		Nproc:   3,
		Hooks:   Uncoordinated(0),
	})
	if res.Metrics.Checkpoints != int64(3*3) {
		t.Errorf("checkpoints = %d, want 9", res.Metrics.Checkpoints)
	}
	if res.Metrics.CtrlMessages != 0 {
		t.Errorf("ctrl = %d, want 0", res.Metrics.CtrlMessages)
	}
}

func TestSaSNonZeroCoordinator(t *testing.T) {
	const n, iters = 4, 2
	res := run(t, sim.Config{
		Program: corpus.JacobiFig1(iters),
		Nproc:   n,
		Hooks:   SaS(2),
	})
	assertIndexCutsConsistent(t, res.Store, n)
	if want := int64(iters * 5 * (n - 1)); res.Metrics.CtrlMessages != want {
		t.Errorf("ctrl = %d, want %d", res.Metrics.CtrlMessages, want)
	}
}

func TestCLNonZeroInitiator(t *testing.T) {
	const n = 4
	coll := NewCLCollector()
	res := run(t, sim.Config{
		Program: corpus.JacobiFig2(2),
		Nproc:   n,
		Hooks:   CL(3, coll),
	})
	assertIndexCutsConsistent(t, res.Store, n)
	if coll.Rounds() != 2 {
		t.Errorf("rounds = %d, want 2", coll.Rounds())
	}
}

func TestCICOnZigzagProne(t *testing.T) {
	// The zigzag-prone placement is where communication-induced
	// checkpointing earns its keep: forced checkpoints break the would-be
	// Z-cycles and the index cuts stay consistent.
	const n = 4
	res := run(t, sim.Config{
		Program: corpus.ZigzagProne(3),
		Nproc:   n,
		Hooks:   CIC(),
	})
	assertIndexCutsConsistent(t, res.Store, n)
	if res.Metrics.Forced == 0 {
		t.Error("CIC took no forced checkpoints on the zigzag-prone pattern")
	}
}

// TestProtocolOverheadOrdering is the qualitative claim behind the paper's
// Figures 8-9: per checkpoint, the application-driven scheme exchanges no
// control messages, SaS exchanges 5(n-1), and C-L n(n-1) (markers); so for
// n > 6 C-L costs more than SaS, and both cost more than zero.
func TestProtocolOverheadOrdering(t *testing.T) {
	const n, iters = 8, 2
	prog := corpus.JacobiFig1(iters)

	appl := run(t, sim.Config{Program: prog, Nproc: n})
	sas := run(t, sim.Config{Program: prog, Nproc: n, Hooks: SaS(0)})
	cl := run(t, sim.Config{Program: prog, Nproc: n, Hooks: CL(0, NewCLCollector())})

	if appl.Metrics.CtrlMessages != 0 {
		t.Errorf("appl-driven ctrl = %d", appl.Metrics.CtrlMessages)
	}
	if !(sas.Metrics.CtrlMessages > appl.Metrics.CtrlMessages) {
		t.Error("SaS should cost more than appl-driven")
	}
	if !(cl.Metrics.CtrlMessages > sas.Metrics.CtrlMessages) {
		t.Errorf("C-L (%d) should cost more than SaS (%d) at n=%d",
			cl.Metrics.CtrlMessages, sas.Metrics.CtrlMessages, n)
	}
	// All three runs compute the same application answer.
	for p := 0; p < n; p++ {
		if appl.FinalVars[p]["x"] != sas.FinalVars[p]["x"] ||
			appl.FinalVars[p]["x"] != cl.FinalVars[p]["x"] {
			t.Errorf("proc %d results differ across protocols", p)
		}
	}
}

func BenchmarkSaSRound(b *testing.B) {
	prog := corpus.JacobiFig1(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{Program: prog, Nproc: 4, Hooks: SaS(0), DisableTrace: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCLRound(b *testing.B) {
	prog := corpus.JacobiFig1(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		coll := NewCLCollector()
		if _, err := sim.Run(sim.Config{Program: prog, Nproc: 4, Hooks: CL(0, coll), DisableTrace: true}); err != nil {
			b.Fatal(err)
		}
	}
}
