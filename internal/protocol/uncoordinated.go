package protocol

import "repro/internal/sim"

// uncoordProc is the per-process state of uncoordinated checkpointing: a
// purely local checkpoint counter and an event-based timer.
type uncoordProc struct {
	counter    int
	lastEvents int
}

// Uncoordinated returns the hooks factory for uncoordinated checkpointing:
// each process checkpoints on its own schedule — every interval local
// events (a stand-in for a local wall-clock timer) — with no coordination
// and no regard for the application's checkpoint statements. Recovery must
// search for a consistent cut among the saved checkpoints
// (recovery.LatestConsistent) and can exhibit the domino effect.
//
// With interval <= 0, processes instead checkpoint at the application's
// checkpoint statements but with private local indexes (counter values),
// so the straight-cut structure is deliberately discarded.
func Uncoordinated(interval int) sim.HooksFactory {
	return func(rank, nproc int) sim.Hooks {
		return &uncoordHooks{state: &uncoordProc{}, interval: interval}
	}
}

type uncoordHooks struct {
	sim.NoHooks
	state    *uncoordProc
	interval int
}

var _ sim.Hooks = (*uncoordHooks)(nil)

// AtChkptStmt: in statement mode, checkpoint with a private local index.
func (h *uncoordHooks) AtChkptStmt(p *sim.Proc, _ int) (bool, error) {
	if h.interval > 0 {
		return false, nil // timer mode ignores application checkpoints
	}
	h.state.counter++
	return false, p.TakeCheckpoint(h.state.counter)
}

// OnStep: in timer mode, checkpoint every interval events.
func (h *uncoordHooks) OnStep(p *sim.Proc) error {
	if h.interval <= 0 {
		return nil
	}
	st := h.state
	if p.Events()-st.lastEvents >= h.interval {
		st.lastEvents = p.Events()
		st.counter++
		return p.TakeCheckpoint(st.counter)
	}
	return nil
}
