package protocol

import (
	"math"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/mpl"
	"repro/internal/sim"
)

// heavyJacobi builds the Figure 1 exchange with ~300 s of computation per
// iteration, the paper's programmed interval T.
func heavyJacobi(iters, workUnits int) *mpl.Program {
	return mpl.NewBuilder("jacobi_heavy").
		Const("MAXITER", iters).
		Vars("x", "xl", "xr", "iter").
		Assign("iter", mpl.Int(0)).
		While(mpl.Lt(mpl.V("iter"), mpl.V("MAXITER")), func(b *mpl.Builder) {
			b.Chkpt()
			b.Work(mpl.Int(workUnits))
			b.Send(mpl.Sub(mpl.Rank(), mpl.Int(1)), "x")
			b.Send(mpl.Add(mpl.Rank(), mpl.Int(1)), "x")
			b.Recv(mpl.Sub(mpl.Rank(), mpl.Int(1)), "xl")
			b.Recv(mpl.Add(mpl.Rank(), mpl.Int(1)), "xr")
			b.Assign("iter", mpl.Add(mpl.V("iter"), mpl.Int(1)))
		}).
		MustProgram()
}

// TestEmpiricalOverheadProperties pins the virtual-time (makespan)
// behavior of the protocols on a balanced workload:
//
//   - the application-driven scheme's overhead is EXACTLY iters·o on the
//     critical path — coordination-free means nothing else;
//   - appl-driven is the cheapest at every n;
//   - SaS's overhead grows with n (the coordinator serializes 3(n−1)
//     message setups per round);
//   - measured makespans differ from the paper's analytic charging, which
//     adds the full message count M to every process's interval (see
//     EXPERIMENTS.md).
func TestEmpiricalOverheadProperties(t *testing.T) {
	const iters, units = 3, 50000
	tm := sim.PaperTimeModel
	measure := func(n int, hooks sim.HooksFactory) float64 {
		t.Helper()
		res, err := sim.Run(sim.Config{
			Program: heavyJacobi(iters, units), Nproc: n,
			Hooks: hooks, Time: &tm, DisableTrace: true,
			Timeout: 30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.VTime
	}

	base := float64(iters*units)*tm.Compute + 0.005 /* handful of assigns/sends */
	var prevSaS float64
	for _, n := range []int{2, 4, 8} {
		appl := measure(n, nil)
		sas := measure(n, SaS(0))
		cl := measure(n, CL(0, NewCLCollector()))

		wantAppl := float64(iters) * tm.CheckpointOverhead
		gotOverhead := appl - float64(iters*units)*tm.Compute
		if math.Abs(gotOverhead-wantAppl) > 0.1 {
			t.Errorf("n=%d: appl overhead = %v, want ≈ %v (iters·o)", n, gotOverhead, wantAppl)
		}
		if !(appl < sas) || !(appl < cl) {
			t.Errorf("n=%d: appl %v not cheapest (SaS %v, C-L %v)", n, appl, sas, cl)
		}
		if prevSaS != 0 && !(sas > prevSaS) {
			t.Errorf("n=%d: SaS makespan did not grow with n: %v then %v", n, prevSaS, sas)
		}
		prevSaS = sas
		if appl < base {
			t.Errorf("n=%d: appl %v below bare compute %v", n, appl, base)
		}
	}
}

// TestVFailureWithProtocolFreeScheme ensures the virtual-time failure path
// composes with the coordination-free scheme end to end: the crash costs
// lost work plus R and the answer is unchanged.
func TestVFailureWithProtocolFreeScheme(t *testing.T) {
	tm := sim.PaperTimeModel
	prog := corpus.JacobiFig1(3)
	clean, err := sim.Run(sim.Config{Program: prog, Nproc: 3, Time: &tm, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	failed, err := sim.Run(sim.Config{
		Program: prog, Nproc: 3, Time: &tm,
		VFailures: []sim.VFailure{{Proc: 1, At: clean.VTime * 0.6}},
		Timeout:   20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed.Restarts != 1 {
		t.Fatalf("restarts = %d", failed.Restarts)
	}
	if failed.VTime <= clean.VTime {
		t.Errorf("failure run cheaper than clean: %v <= %v", failed.VTime, clean.VTime)
	}
}
