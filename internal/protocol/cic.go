package protocol

import "repro/internal/sim"

// cicProc is the per-process state of index-based communication-induced
// checkpointing (the BCS protocol of Briatico, Ciuffoletti & Simoncini):
// a local checkpoint index, piggybacked on every application message.
type cicProc struct {
	index int
}

// CIC returns the hooks factory for index-based communication-induced
// checkpointing. Voluntary checkpoints happen at the application's
// checkpoint statements and advance the local index; a message arriving
// with a larger piggybacked index forces a checkpoint with the sender's
// index BEFORE delivery, so that all checkpoints sharing an index form a
// consistent cut.
func CIC() sim.HooksFactory {
	return func(rank, nproc int) sim.Hooks {
		return &cicHooks{state: &cicProc{}}
	}
}

type cicHooks struct {
	sim.NoHooks
	state *cicProc
}

var _ sim.Hooks = (*cicHooks)(nil)

// AtChkptStmt takes a voluntary checkpoint with the next index.
func (h *cicHooks) AtChkptStmt(p *sim.Proc, _ int) (bool, error) {
	st := h.state
	st.index++
	return false, p.TakeCheckpoint(st.index)
}

// BeforeSend piggybacks the local index.
func (h *cicHooks) BeforeSend(p *sim.Proc, to int) []int {
	return []int{h.state.index}
}

// BeforeDeliver applies the induction rule: a message from index k > local
// index forces a checkpoint at index k before delivery (the message then
// belongs to the interval AFTER the forced checkpoint, keeping the
// index-k cut orphan-free).
func (h *cicHooks) BeforeDeliver(p *sim.Proc, m sim.Message) error {
	st := h.state
	if len(m.Piggyback) == 0 {
		return nil
	}
	if k := m.Piggyback[0]; k > st.index {
		st.index = k
		p.Counters().IncForced(1)
		return p.TakeCheckpoint(k)
	}
	return nil
}
