package protocol

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sim"
)

const tagMarker = "cl-marker"

// CLCollector gathers the global snapshots produced by the Chandy-Lamport
// protocol: per round, the recorded channel states (checkpoints themselves
// go to the regular stable store). It is shared by all processes.
type CLCollector struct {
	mu sync.Mutex
	// channelState[round] maps "from->to" to the messages recorded as
	// in-flight for that round.
	channelState map[int]map[string][]int
	rounds       int
}

// NewCLCollector creates an empty collector.
func NewCLCollector() *CLCollector {
	return &CLCollector{channelState: make(map[int]map[string][]int)}
}

// Rounds returns the number of snapshot rounds initiated.
func (c *CLCollector) Rounds() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rounds
}

// ChannelState returns the recorded in-flight values for a round and
// channel.
func (c *CLCollector) ChannelState(round, from, to int) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.channelState[round][chanKey(from, to)]...)
}

func chanKey(from, to int) string { return fmt.Sprintf("%d->%d", from, to) }

func (c *CLCollector) record(round, from, to, value int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.channelState[round] == nil {
		c.channelState[round] = make(map[string][]int)
	}
	k := chanKey(from, to)
	c.channelState[round][k] = append(c.channelState[round][k], value)
}

func (c *CLCollector) noteRound(round int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if round+1 > c.rounds {
		c.rounds = round + 1
	}
}

// clProc is per-process Chandy-Lamport state. Rounds may overlap (a fast
// neighbor can reflood round r+1 before round r's markers all arrived), so
// marker bookkeeping is per round.
type clProc struct {
	initiator bool
	collector *CLCollector

	stmtHits   int // checkpoint statements executed = rounds expected
	started    map[int]bool
	markerFrom map[int][]bool
	markersIn  map[int]int
	nproc      int
}

// CL returns the hooks factory for Chandy-Lamport distributed snapshots.
// The process with the initiator rank starts a snapshot round at each of
// its checkpoint statements; all other processes ignore their checkpoint
// statements and checkpoint on first marker receipt, recording channel
// states until markers arrive on all inbound channels. Checkpoints of
// round r are saved with straight-cut index r, so the trace/storage
// verifiers can check the snapshot's consistency directly.
func CL(initiator int, collector *CLCollector) sim.HooksFactory {
	return func(rank, nproc int) sim.Hooks {
		return &clHooks{state: &clProc{
			initiator:  rank == initiator,
			collector:  collector,
			started:    make(map[int]bool),
			markerFrom: make(map[int][]bool),
			markersIn:  make(map[int]int),
			nproc:      nproc,
		}}
	}
}

type clHooks struct {
	sim.NoHooks
	state *clProc
}

var _ sim.Hooks = (*clHooks)(nil)

// startRound checkpoints locally and floods markers.
func (h *clHooks) startRound(p *sim.Proc, round int) error {
	st := h.state
	st.started[round] = true
	st.markerFrom[round] = make([]bool, st.nproc)
	st.collector.noteRound(round)
	if err := p.TakeCheckpoint(round); err != nil {
		return err
	}
	for q := 0; q < p.N(); q++ {
		if q != p.Rank() {
			if err := p.SendMarker(q, tagMarker, []int{round}); err != nil {
				return err
			}
		}
	}
	return nil
}

// AtChkptStmt: the initiator starts a round; everyone else defers to the
// marker flood.
func (h *clHooks) AtChkptStmt(p *sim.Proc, _ int) (bool, error) {
	st := h.state
	st.stmtHits++
	if st.initiator {
		if err := h.startRound(p, st.stmtHits-1); err != nil {
			return false, err
		}
	}
	return false, nil
}

// OnMarker implements the classic rules: the first marker of a round takes
// the local checkpoint and refloods; a round completes when markers
// arrived on all inbound channels.
func (h *clHooks) OnMarker(p *sim.Proc, m sim.Message) error {
	st := h.state
	round := m.Piggyback[0]
	if !st.started[round] {
		if err := h.startRound(p, round); err != nil {
			return err
		}
	}
	if st.markerFrom[round][m.From] {
		return fmt.Errorf("protocol: CL process %d: duplicate marker from %d round %d",
			p.Rank(), m.From, round)
	}
	st.markerFrom[round][m.From] = true
	st.markersIn[round]++
	return nil
}

// AfterRecv records channel state: an application message on a channel
// whose marker is still pending belongs to every such open round's
// snapshot.
func (h *clHooks) AfterRecv(p *sim.Proc, m sim.Message) error {
	st := h.state
	for round := range st.started {
		if st.markersIn[round] < st.nproc-1 && !st.markerFrom[round][m.From] {
			st.collector.record(round, m.From, p.Rank(), m.Value)
		}
	}
	return nil
}

// roundsDone reports whether all expected rounds started and completed.
func (st *clProc) roundsDone() bool {
	for r := 0; r < st.stmtHits; r++ {
		if !st.started[r] || st.markersIn[r] < st.nproc-1 {
			return false
		}
	}
	return true
}

// OnHalt drains outstanding markers so late rounds complete: the process
// has executed all its checkpoint statements, so it knows how many rounds
// exist and spins (yielding) until their markers arrive.
func (h *clHooks) OnHalt(p *sim.Proc) error {
	st := h.state
	const spinBudget = 1 << 22
	for spins := 0; !st.roundsDone(); spins++ {
		progress := false
		for from := 0; from < p.N(); from++ {
			if from == p.Rank() {
				continue
			}
			if m, ok := p.PollMarker(from); ok {
				if err := h.OnMarker(p, m); err != nil {
					return err
				}
				progress = true
			}
		}
		if !progress {
			if spins >= spinBudget {
				return fmt.Errorf("protocol: CL process %d: rounds incomplete at halt", p.Rank())
			}
			runtime.Gosched()
		}
	}
	return nil
}
