// Package protocol implements the checkpointing protocols the paper
// compares against (§4.1) on top of the sim runtime's hook interface:
//
//   - SaS — synchronize-and-stop coordinated checkpointing [19]: all
//     processes barrier at checkpoint statements under a coordinator that
//     exchanges 5(n−1) control messages per checkpoint round (the paper's
//     M(SaS) formula: three coordinator broadcasts, two replies each).
//   - CL — the Chandy-Lamport distributed-snapshots protocol [7]: the
//     initiator checkpoints and floods markers; every process checkpoints
//     on first marker receipt and records channel state until markers
//     arrive on all inbound channels.
//   - CIC — communication-induced checkpointing in the index-based (BCS)
//     style: checkpoint indexes are piggybacked on application messages
//     and a receiver whose index lags is forced to checkpoint before
//     delivery.
//   - Uncoordinated — processes checkpoint on a purely local schedule;
//     recovery must search for a consistent cut and may cascade (domino
//     effect).
//
// The application-driven scheme of the paper needs NO protocol: it is
// sim.NoProtocol.
package protocol

import (
	"fmt"

	"repro/internal/sim"
)

// Control tags used by SaS.
const (
	tagInit   = "sas-init"
	tagReady  = "sas-ready"
	tagChkpt  = "sas-chkpt"
	tagDone   = "sas-done"
	tagResume = "sas-resume"
)

// sasShared is the cross-process coordinator state (rounds are implicit:
// every process reaches every checkpoint statement in SPMD programs).
type sasProc struct {
	coordinator int
	round       int
	// stash holds control messages consumed by the runtime's boundary
	// polling before the barrier logic asked for them.
	stash []sim.Message
}

// SaS returns the hooks factory for synchronize-and-stop coordinated
// checkpointing with the given coordinator rank. Checkpoint statements act
// as the coordination points: every process must reach the statement
// before anyone checkpoints, all stop, checkpoint, and resume together —
// so the n checkpoints of round r trivially form a recovery line.
//
// SaS requires every process to reach checkpoint statements in the same
// order (true for SPMD programs with uniform control flow at the
// checkpoint statements); a program where one rank communicates before
// its checkpoint while its peer has already stopped would deadlock, which
// is precisely the coordination fragility the paper's approach removes.
func SaS(coordinator int) sim.HooksFactory {
	return func(rank, nproc int) sim.Hooks {
		return &sasHooks{state: &sasProc{coordinator: coordinator}}
	}
}

type sasHooks struct {
	sim.NoHooks
	state *sasProc
}

var _ sim.Hooks = (*sasHooks)(nil)

// OnCtrl stashes control traffic consumed by boundary polling.
func (h *sasHooks) OnCtrl(p *sim.Proc, m sim.Message) error {
	h.state.stash = append(h.state.stash, m)
	return nil
}

// waitFor blocks until a control message with the tag arrives.
func (h *sasHooks) waitFor(p *sim.Proc, tag string) (sim.Message, error) {
	for i, m := range h.state.stash {
		if m.Tag == tag {
			h.state.stash = append(h.state.stash[:i], h.state.stash[i+1:]...)
			return m, nil
		}
	}
	for {
		m, err := p.RecvCtrl()
		if err != nil {
			return sim.Message{}, err
		}
		if m.Tag == tag {
			return m, nil
		}
		h.state.stash = append(h.state.stash, m)
	}
}

// AtChkptStmt implements the stop-the-world barrier.
func (h *sasHooks) AtChkptStmt(p *sim.Proc, _ int) (bool, error) {
	st := h.state
	n := p.N()
	round := st.round
	st.round++
	if p.Rank() == st.coordinator {
		// Broadcast 1: INIT.
		for q := 0; q < n; q++ {
			if q != p.Rank() {
				if err := p.SendCtrl(q, tagInit, []int{round}); err != nil {
					return false, err
				}
			}
		}
		// Gather READY from everyone.
		for i := 0; i < n-1; i++ {
			if _, err := h.waitFor(p, tagReady); err != nil {
				return false, err
			}
		}
		// Broadcast 2: CHKPT; checkpoint locally.
		for q := 0; q < n; q++ {
			if q != p.Rank() {
				if err := p.SendCtrl(q, tagChkpt, []int{round}); err != nil {
					return false, err
				}
			}
		}
		if err := p.TakeCheckpoint(round); err != nil {
			return false, err
		}
		// Gather DONE.
		for i := 0; i < n-1; i++ {
			if _, err := h.waitFor(p, tagDone); err != nil {
				return false, err
			}
		}
		// Broadcast 3: RESUME.
		for q := 0; q < n; q++ {
			if q != p.Rank() {
				if err := p.SendCtrl(q, tagResume, []int{round}); err != nil {
					return false, err
				}
			}
		}
		return false, nil
	}
	// Participant: READY → wait CHKPT → checkpoint → DONE → wait RESUME.
	if _, err := h.waitFor(p, tagInit); err != nil {
		return false, err
	}
	if err := p.SendCtrl(st.coordinator, tagReady, []int{round}); err != nil {
		return false, err
	}
	if _, err := h.waitFor(p, tagChkpt); err != nil {
		return false, err
	}
	if err := p.TakeCheckpoint(round); err != nil {
		return false, err
	}
	if err := p.SendCtrl(st.coordinator, tagDone, []int{round}); err != nil {
		return false, err
	}
	if _, err := h.waitFor(p, tagResume); err != nil {
		return false, err
	}
	return false, nil
}

// sanity check that rounds stay aligned across processes.
func (h *sasHooks) OnHalt(p *sim.Proc) error {
	if len(h.state.stash) > 0 {
		return fmt.Errorf("protocol: SaS process %d halted with %d unconsumed control messages",
			p.Rank(), len(h.state.stash))
	}
	return nil
}
