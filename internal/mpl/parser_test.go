package mpl

import (
	"strings"
	"testing"
)

const jacobiSrc = `
program jacobi

const MAXITER = 4

var x, y, iter

proc {
    iter = 0
    while iter < MAXITER {
        chkpt
        send(rank + 1, x)
        recv(rank - 1, y)
        x = x + y
        iter = iter + 1
    }
}
`

func TestParseJacobi(t *testing.T) {
	p, err := Parse(jacobiSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "jacobi" {
		t.Errorf("Name = %q", p.Name)
	}
	if v, ok := p.ConstValue("MAXITER"); !ok || v != 4 {
		t.Errorf("MAXITER = %d, %v", v, ok)
	}
	if len(p.Vars) != 3 {
		t.Errorf("Vars = %v", p.Vars)
	}
	if len(p.Body) != 2 {
		t.Fatalf("Body len = %d, want 2", len(p.Body))
	}
	w, ok := p.Body[1].(*While)
	if !ok {
		t.Fatalf("Body[1] = %T, want *While", p.Body[1])
	}
	if len(w.Body) != 5 {
		t.Fatalf("loop body len = %d, want 5", len(w.Body))
	}
	if _, ok := w.Body[0].(*Chkpt); !ok {
		t.Errorf("loop body[0] = %T, want *Chkpt", w.Body[0])
	}
	if s, ok := w.Body[1].(*Send); !ok || ExprString(s.Dest) != "rank + 1" || s.Var != "x" {
		t.Errorf("loop body[1] wrong: %+v", w.Body[1])
	}
}

func TestParseAssignsUniqueIDs(t *testing.T) {
	p, err := Parse(jacobiSrc)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	Walk(p.Body, func(s Stmt) bool {
		if seen[s.ID()] {
			t.Errorf("duplicate id %d", s.ID())
		}
		seen[s.ID()] = true
		return true
	})
	if len(seen) != p.StmtCount() {
		t.Errorf("StmtCount = %d, distinct ids = %d", p.StmtCount(), len(seen))
	}
	if p.MaxStmtID() != p.StmtCount()-1 {
		t.Errorf("MaxStmtID = %d, want %d", p.MaxStmtID(), p.StmtCount()-1)
	}
}

func TestParseIfElse(t *testing.T) {
	src := `
program evenodd
var x
proc {
    if rank % 2 == 0 {
        send(rank + 1, x)
    } else {
        recv(rank - 1, x)
    }
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs, ok := p.Body[0].(*If)
	if !ok {
		t.Fatalf("Body[0] = %T", p.Body[0])
	}
	if ExprString(ifs.Cond) != "rank % 2 == 0" {
		t.Errorf("Cond = %q", ExprString(ifs.Cond))
	}
	if len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Errorf("then/else lens = %d/%d", len(ifs.Then), len(ifs.Else))
	}
}

func TestParseElseIfChain(t *testing.T) {
	src := `
program chain
var x
proc {
    if rank == 0 {
        x = 1
    } else if rank == 1 {
        x = 2
    } else {
        x = 3
    }
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	outer := p.Body[0].(*If)
	if len(outer.Else) != 1 {
		t.Fatalf("outer else len = %d", len(outer.Else))
	}
	inner, ok := outer.Else[0].(*If)
	if !ok {
		t.Fatalf("else-if not nested: %T", outer.Else[0])
	}
	if len(inner.Else) != 1 {
		t.Errorf("inner else missing")
	}
}

func TestParseBcastAndWork(t *testing.T) {
	src := `
program coll
var v
proc {
    work(100)
    bcast(0, v)
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Body[0].(*Work); !ok {
		t.Errorf("Body[0] = %T, want *Work", p.Body[0])
	}
	bc, ok := p.Body[1].(*Bcast)
	if !ok || ExprString(bc.Root) != "0" || bc.Var != "v" {
		t.Errorf("Body[1] = %+v", p.Body[1])
	}
}

func TestParsePrecedence(t *testing.T) {
	tests := []struct {
		expr string
		want string
	}{
		{"1 + 2 * 3", "1 + 2 * 3"},
		{"(1 + 2) * 3", "(1 + 2) * 3"},
		{"rank % 2 == 0 && rank < nproc", "rank % 2 == 0 && rank < nproc"},
		{"a || b && c", "a || b && c"},
		{"(a || b) && c", "(a || b) && c"},
		{"!a && b", "!a && b"},
		{"-(a + b)", "-(a + b)"},
		{"1 - 2 - 3", "1 - 2 - 3"},
		{"1 - (2 - 3)", "1 - (2 - 3)"},
		{"input(rank + 1) % 4", "input(rank + 1) % 4"},
	}
	for _, tt := range tests {
		src := "program t\nvar a, b, c, x\nproc { x = " + tt.expr + " }"
		p, err := Parse(src)
		if err != nil {
			t.Errorf("%s: %v", tt.expr, err)
			continue
		}
		got := ExprString(p.Body[0].(*Assign).X)
		if got != tt.want {
			t.Errorf("expr %q round-tripped to %q, want %q", tt.expr, got, tt.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"missing program", "var x\nproc {}", `expected "program"`},
		{"missing proc", "program p\nvar x", "expected declaration or proc"},
		{"unclosed block", "program p\nproc { x = 1", "unexpected end of input"},
		{"bad stmt", "program p\nproc { 42 }", "expected statement"},
		{"missing paren", "program p\nvar x\nproc { send(1 x) }", `expected ","`},
		{"trailing junk", "program p\nproc {} extra", "expected end of input"},
		{"missing cond", "program p\nproc { while { } }", "expected expression"},
		{"send needs var", "program p\nproc { send(0, 1) }", "variable name"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error = %q, want substring %q", err, tt.want)
			}
		})
	}
}

func TestCheckErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"undeclared var", "program p\nproc { x = 1 }", "undeclared identifier"},
		{"undeclared in expr", "program p\nvar x\nproc { x = y + 1 }", `undeclared identifier "y"`},
		{"assign to rank", "program p\nproc { rank = 1 }", "must be a variable"},
		{"assign to const", "program p\nconst K = 1\nproc { K = 2 }", "must be a variable"},
		{"send const buffer", "program p\nconst K = 1\nvar x\nproc { send(0, K) }", "must be a variable"},
		{"redeclare builtin", "program p\nvar rank\nproc { }", "redeclares builtin"},
		{"redeclare const", "program p\nconst K = 1\nvar K\nproc { }", "redeclares constant"},
		{"bad builtin", "program p\nvar x\nproc { x = foo(1) }", `unknown builtin "foo"`},
		{"input arity", "program p\nvar x\nproc { x = input(1, 2) }", "input takes 1 argument"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error = %q, want substring %q", err, tt.want)
			}
		})
	}
}

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{jacobiSrc, `
program evenodd

const K = -2

var x, y

proc {
    if rank % 2 == 0 {
        chkpt
        send(rank + 1, x)
        recv(rank + 1, y)
    } else {
        recv(rank - 1, y)
        send(rank - 1, x)
        chkpt
    }
    work(x * K)
    bcast(0, x)
}
`}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		out1 := Format(p1)
		p2, err := Parse(out1)
		if err != nil {
			t.Fatalf("formatted output does not reparse: %v\n%s", err, out1)
		}
		out2 := Format(p2)
		if out1 != out2 {
			t.Errorf("format not idempotent:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p, err := Parse(jacobiSrc)
	if err != nil {
		t.Fatal(err)
	}
	c := Clone(p)
	// Mutate the clone's loop condition.
	c.Body[1].(*While).Cond = Int(0)
	if ExprString(p.Body[1].(*While).Cond) != "iter < MAXITER" {
		t.Error("clone aliased original condition")
	}
	// IDs must be preserved.
	if c.Body[0].ID() != p.Body[0].ID() {
		t.Error("clone changed statement ids")
	}
	if Format(Clone(p)) != Format(p) {
		t.Error("clone not structurally identical")
	}
}

func TestFindStmt(t *testing.T) {
	p, err := Parse(jacobiSrc)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Body[1].(*While)
	got := p.FindStmt(w.Body[0].ID())
	if got == nil || got.ID() != w.Body[0].ID() {
		t.Errorf("FindStmt failed: %v", got)
	}
	if p.FindStmt(9999) != nil {
		t.Error("FindStmt(9999) should be nil")
	}
}
