package mpl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func simp(t *testing.T, expr string) string {
	t.Helper()
	p, err := Parse("program t\nvar a, b, x\nproc { x = " + expr + " }")
	if err != nil {
		t.Fatal(err)
	}
	return ExprString(Simplify(p.Body[0].(*Assign).X))
}

func TestSimplifyFolding(t *testing.T) {
	tests := []struct{ in, want string }{
		{"1 + 2", "3"},
		{"2 * 3 + 4", "10"},
		{"10 / 2", "5"},
		{"7 % 3", "1"},
		{"-5 % 3", "1"}, // Euclidean, matching Eval
		{"1 < 2", "1"},
		{"2 == 3", "0"},
		{"1 && 0", "0"},
		{"0 || 2", "1"},
		{"!0", "1"},
		{"!7", "0"},
		{"-(3)", "-3"},
		{"a + 0", "a"},
		{"0 + a", "a"},
		{"a - 0", "a"},
		{"1 * a", "a"},
		{"a * 1", "a"},
		{"a / 1", "a"},
		{"0 && a", "0"},
		{"1 || a", "1"},
		{"-(-a)", "a"},
		{"rank + (2 - 2)", "rank"},
		{"(1 + 1) * rank", "2 * rank"},
	}
	for _, tt := range tests {
		if got := simp(t, tt.in); got != tt.want {
			t.Errorf("Simplify(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestSimplifyPreservesErrors(t *testing.T) {
	// Division/modulo by a constant zero must NOT fold away: the runtime
	// error is part of the semantics.
	tests := []string{"1 / 0", "1 % 0", "a + 1 / 0"}
	for _, in := range tests {
		got := simp(t, in)
		p, err := Parse("program t\nvar a, b, x\nproc { x = " + got + " }")
		if err != nil {
			t.Fatalf("%q simplified to unparseable %q", in, got)
		}
		env := &Env{Vars: map[string]int{"a": 1, "b": 2, "x": 0}}
		if _, err := Eval(p.Body[0].(*Assign).X, env); err == nil {
			t.Errorf("Simplify(%q) = %q lost the division-by-zero error", in, got)
		}
	}
	// x*0 keeps x's potential errors too.
	if got := simp(t, "(1 / (a - 1)) * 0"); got == "0" {
		t.Error("x*0 folded despite potential evaluation error in x")
	}
}

func TestSimplifyDoesNotEvaluateInput(t *testing.T) {
	got := simp(t, "input(1 + 1)")
	if got != "input(2)" {
		t.Errorf("got %q", got)
	}
}

// randomExpr builds a random expression over a small grammar.
func randomExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return Int(r.Intn(7) - 3)
		case 1:
			return Rank()
		case 2:
			return Nproc()
		default:
			return V("a")
		}
	}
	ops := []string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"}
	op := ops[r.Intn(len(ops))]
	return &Binary{Op: op, L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
}

// TestQuickSimplifyEquivalence is the core property: for every
// environment, Simplify(e) evaluates exactly like e — same value or same
// error-ness.
func TestQuickSimplifyEquivalence(t *testing.T) {
	f := func(seed int64, rank8, n8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 4)
		s := Simplify(e)
		env := &Env{
			Rank:  int(rank8 % 16),
			Nproc: int(n8%16) + 1,
			Vars:  map[string]int{"a": int(seed % 11)},
		}
		v1, err1 := Eval(e, env)
		v2, err2 := Eval(s, env)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 == nil && v1 != v2 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestQuickSimplifyIdempotent: Simplify(Simplify(e)) == Simplify(e).
func TestQuickSimplifyIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomExpr(r, 4)
		once := Simplify(e)
		twice := Simplify(once)
		return ExprString(once) == ExprString(twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSimplify(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	e := randomExpr(r, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Simplify(e)
	}
}
