package mpl

import (
	"fmt"
	"unicode"
)

// lexer scans MPL source into tokens. Comments run from '#' to end of line.
type lexer struct {
	src  []rune
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

// SyntaxError reports a lexical or parse error with its position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("mpl: %s: %s", e.Pos, e.Msg)
}

func (l *lexer) errorf(pos Pos, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) advance() rune {
	r := l.src[l.off]
	l.off++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		r := l.peek()
		switch {
		case r == '#':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case unicode.IsSpace(r):
			l.advance()
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	l.skipSpaceAndComments()
	pos := Pos{Line: l.line, Col: l.col}
	if l.off >= len(l.src) {
		return Token{Kind: TokenEOF, Pos: pos}, nil
	}
	r := l.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		start := l.off
		for l.off < len(l.src) && (unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_') {
			l.advance()
		}
		text := string(l.src[start:l.off])
		kind := TokenIdent
		if keywords[text] {
			kind = TokenKeyword
		}
		return Token{Kind: kind, Text: text, Pos: pos}, nil
	case unicode.IsDigit(r):
		start := l.off
		for l.off < len(l.src) && unicode.IsDigit(l.peek()) {
			l.advance()
		}
		return Token{Kind: TokenInt, Text: string(l.src[start:l.off]), Pos: pos}, nil
	}

	two := func(second rune, yes, no TokenKind, yesText, noText string) (Token, error) {
		l.advance()
		if l.peek() == second {
			l.advance()
			return Token{Kind: yes, Text: yesText, Pos: pos}, nil
		}
		if no == 0 {
			return Token{}, l.errorf(pos, "unexpected character %q", string(r))
		}
		return Token{Kind: no, Text: noText, Pos: pos}, nil
	}

	switch r {
	case '{':
		l.advance()
		return Token{Kind: TokenLBrace, Text: "{", Pos: pos}, nil
	case '}':
		l.advance()
		return Token{Kind: TokenRBrace, Text: "}", Pos: pos}, nil
	case '(':
		l.advance()
		return Token{Kind: TokenLParen, Text: "(", Pos: pos}, nil
	case ')':
		l.advance()
		return Token{Kind: TokenRParen, Text: ")", Pos: pos}, nil
	case ',':
		l.advance()
		return Token{Kind: TokenComma, Text: ",", Pos: pos}, nil
	case '+':
		l.advance()
		return Token{Kind: TokenPlus, Text: "+", Pos: pos}, nil
	case '-':
		l.advance()
		return Token{Kind: TokenMinus, Text: "-", Pos: pos}, nil
	case '*':
		l.advance()
		return Token{Kind: TokenStar, Text: "*", Pos: pos}, nil
	case '/':
		l.advance()
		return Token{Kind: TokenSlash, Text: "/", Pos: pos}, nil
	case '%':
		l.advance()
		return Token{Kind: TokenPct, Text: "%", Pos: pos}, nil
	case '=':
		return two('=', TokenEq, TokenAssign, "==", "=")
	case '!':
		return two('=', TokenNeq, TokenNot, "!=", "!")
	case '<':
		return two('=', TokenLe, TokenLt, "<=", "<")
	case '>':
		return two('=', TokenGe, TokenGt, ">=", ">")
	case '&':
		return two('&', TokenAnd, 0, "&&", "")
	case '|':
		return two('|', TokenOr, 0, "||", "")
	default:
		return Token{}, l.errorf(pos, "unexpected character %q", string(r))
	}
}

// lexAll scans the whole input, returning the token stream ending in EOF.
func lexAll(src string) ([]Token, error) {
	l := newLexer(src)
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokenEOF {
			return toks, nil
		}
	}
}
