package mpl

// This file provides the programmatic construction API used by examples,
// tests, and the transformation phases: expression helpers, a statement
// Builder, and deep cloning.

// Int returns an integer literal expression.
func Int(v int) Expr { return &IntLit{Value: v} }

// V returns an identifier expression.
func V(name string) Expr { return &Ident{Name: name} }

// Rank returns the rank builtin.
func Rank() Expr { return &Ident{Name: BuiltinRank} }

// Nproc returns the nproc builtin.
func Nproc() Expr { return &Ident{Name: BuiltinNproc} }

// InputAt returns input(i), an irregular (data-dependent) expression.
func InputAt(i Expr) Expr { return &Call{Name: BuiltinInput, Args: []Expr{i}} }

// Binary expression helpers.

// Add returns l + r.
func Add(l, r Expr) Expr { return &Binary{Op: "+", L: l, R: r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return &Binary{Op: "-", L: l, R: r} }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return &Binary{Op: "*", L: l, R: r} }

// Div returns l / r.
func Div(l, r Expr) Expr { return &Binary{Op: "/", L: l, R: r} }

// Mod returns l % r.
func Mod(l, r Expr) Expr { return &Binary{Op: "%", L: l, R: r} }

// Eq returns l == r.
func Eq(l, r Expr) Expr { return &Binary{Op: "==", L: l, R: r} }

// Neq returns l != r.
func Neq(l, r Expr) Expr { return &Binary{Op: "!=", L: l, R: r} }

// Lt returns l < r.
func Lt(l, r Expr) Expr { return &Binary{Op: "<", L: l, R: r} }

// Le returns l <= r.
func Le(l, r Expr) Expr { return &Binary{Op: "<=", L: l, R: r} }

// Gt returns l > r.
func Gt(l, r Expr) Expr { return &Binary{Op: ">", L: l, R: r} }

// Ge returns l >= r.
func Ge(l, r Expr) Expr { return &Binary{Op: ">=", L: l, R: r} }

// And returns l && r.
func And(l, r Expr) Expr { return &Binary{Op: "&&", L: l, R: r} }

// Or returns l || r.
func Or(l, r Expr) Expr { return &Binary{Op: "||", L: l, R: r} }

// Not returns !x.
func Not(x Expr) Expr { return &Unary{Op: "!", X: x} }

// Neg returns -x.
func Neg(x Expr) Expr { return &Unary{Op: "-", X: x} }

// Builder accumulates a program body with automatically assigned statement
// IDs. Obtain one from NewBuilder, add declarations and statements, and
// call Program to finish (which also runs Check).
type Builder struct {
	prog   *Program
	nextID int
	// target is the statement list under construction (nesting pushes).
	target *[]Stmt
}

// NewBuilder starts a program named name.
func NewBuilder(name string) *Builder {
	b := &Builder{prog: &Program{Name: name}}
	b.target = &b.prog.Body
	return b
}

// Const declares a constant.
func (b *Builder) Const(name string, value int) *Builder {
	b.prog.Consts = append(b.prog.Consts, Const{Name: name, Value: value})
	return b
}

// Vars declares variables.
func (b *Builder) Vars(names ...string) *Builder {
	b.prog.Vars = append(b.prog.Vars, names...)
	return b
}

func (b *Builder) base() StmtBase {
	id := b.nextID
	b.nextID++
	return StmtBase{StmtID: id}
}

func (b *Builder) push(s Stmt) *Builder {
	*b.target = append(*b.target, s)
	return b
}

// Assign appends "name = x".
func (b *Builder) Assign(name string, x Expr) *Builder {
	return b.push(&Assign{StmtBase: b.base(), Name: name, X: x})
}

// Work appends "work(amount)".
func (b *Builder) Work(amount Expr) *Builder {
	return b.push(&Work{StmtBase: b.base(), Amount: amount})
}

// Send appends "send(dest, varName)".
func (b *Builder) Send(dest Expr, varName string) *Builder {
	return b.push(&Send{StmtBase: b.base(), Dest: dest, Var: varName})
}

// Recv appends "recv(src, varName)".
func (b *Builder) Recv(src Expr, varName string) *Builder {
	return b.push(&Recv{StmtBase: b.base(), Src: src, Var: varName})
}

// Bcast appends "bcast(root, varName)".
func (b *Builder) Bcast(root Expr, varName string) *Builder {
	return b.push(&Bcast{StmtBase: b.base(), Root: root, Var: varName})
}

// Reduce appends "reduce(root, varName)".
func (b *Builder) Reduce(root Expr, varName string) *Builder {
	return b.push(&Reduce{StmtBase: b.base(), Root: root, Var: varName})
}

// Chkpt appends a checkpoint statement.
func (b *Builder) Chkpt() *Builder {
	return b.push(&Chkpt{StmtBase: b.base()})
}

// While appends "while cond { ... }", building the body via fn.
func (b *Builder) While(cond Expr, fn func(*Builder)) *Builder {
	w := &While{StmtBase: b.base(), Cond: cond}
	b.nested(&w.Body, fn)
	return b.push(w)
}

// If appends "if cond { then }" with no else branch.
func (b *Builder) If(cond Expr, then func(*Builder)) *Builder {
	s := &If{StmtBase: b.base(), Cond: cond}
	b.nested(&s.Then, then)
	return b.push(s)
}

// IfElse appends "if cond { then } else { els }".
func (b *Builder) IfElse(cond Expr, then, els func(*Builder)) *Builder {
	s := &If{StmtBase: b.base(), Cond: cond}
	b.nested(&s.Then, then)
	b.nested(&s.Else, els)
	return b.push(s)
}

func (b *Builder) nested(list *[]Stmt, fn func(*Builder)) {
	saved := b.target
	b.target = list
	fn(b)
	b.target = saved
}

// Program finishes construction, validates the program, and returns it.
func (b *Builder) Program() (*Program, error) {
	if err := Check(b.prog); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustProgram is Program for static program literals in examples and tests;
// it panics on semantic errors, which there indicate a programming bug.
func (b *Builder) MustProgram() *Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}

// Clone returns a deep copy of the program. Statement IDs are preserved;
// expressions are copied so mutations of the clone never alias the
// original.
//
// The copy is slab-allocated: a counting pre-pass sizes one typed slab per
// concrete node type, so cloning costs one allocation per node TYPE (plus
// the backing arrays) instead of one per node — the difference between
// ~constant and ~program-sized allocation counts in Phase III, which
// clones per Transform.
func Clone(p *Program) *Program {
	var m cloneMem
	m.count(p.Body)
	m.assigns = make([]Assign, 0, m.nAssign)
	m.works = make([]Work, 0, m.nWork)
	m.sends = make([]Send, 0, m.nSend)
	m.recvs = make([]Recv, 0, m.nRecv)
	m.bcasts = make([]Bcast, 0, m.nBcast)
	m.reduces = make([]Reduce, 0, m.nReduce)
	m.chkpts = make([]Chkpt, 0, m.nChkpt)
	m.whiles = make([]While, 0, m.nWhile)
	m.ifs = make([]If, 0, m.nIf)
	m.intLits = make([]IntLit, 0, m.nIntLit)
	m.idents = make([]Ident, 0, m.nIdent)
	m.calls = make([]Call, 0, m.nCall)
	m.unaries = make([]Unary, 0, m.nUnary)
	m.binaries = make([]Binary, 0, m.nBinary)
	m.stmts = make([]Stmt, m.nStmtSlot)
	m.exprs = make([]Expr, m.nExprSlot)
	return &Program{
		Name:   p.Name,
		Consts: append([]Const(nil), p.Consts...),
		Vars:   append([]string(nil), p.Vars...),
		Body:   m.body(p.Body),
	}
}

// cloneMem holds one Clone call's slabs and their fill offsets.
type cloneMem struct {
	nAssign, nWork, nSend, nRecv, nBcast, nReduce, nChkpt, nWhile, nIf int
	nIntLit, nIdent, nCall, nUnary, nBinary                            int
	nStmtSlot, nExprSlot                                               int // total body / call-arg slots

	assigns  []Assign
	works    []Work
	sends    []Send
	recvs    []Recv
	bcasts   []Bcast
	reduces  []Reduce
	chkpts   []Chkpt
	whiles   []While
	ifs      []If
	intLits  []IntLit
	idents   []Ident
	calls    []Call
	unaries  []Unary
	binaries []Binary
	stmts    []Stmt
	exprs    []Expr
	stmtOff  int
	exprOff  int
}

func (m *cloneMem) count(body []Stmt) {
	m.nStmtSlot += len(body)
	for _, s := range body {
		switch st := s.(type) {
		case *Assign:
			m.nAssign++
			m.countExpr(st.X)
		case *Work:
			m.nWork++
			m.countExpr(st.Amount)
		case *Send:
			m.nSend++
			m.countExpr(st.Dest)
		case *Recv:
			m.nRecv++
			m.countExpr(st.Src)
		case *Bcast:
			m.nBcast++
			m.countExpr(st.Root)
		case *Reduce:
			m.nReduce++
			m.countExpr(st.Root)
		case *Chkpt:
			m.nChkpt++
		case *While:
			m.nWhile++
			m.countExpr(st.Cond)
			m.count(st.Body)
		case *If:
			m.nIf++
			m.countExpr(st.Cond)
			m.count(st.Then)
			m.count(st.Else)
		default:
			panic("mpl: Clone: unknown statement type")
		}
	}
}

func (m *cloneMem) countExpr(e Expr) {
	switch x := e.(type) {
	case nil:
	case *IntLit:
		m.nIntLit++
	case *Ident:
		m.nIdent++
	case *Call:
		m.nCall++
		m.nExprSlot += len(x.Args)
		for _, a := range x.Args {
			m.countExpr(a)
		}
	case *Unary:
		m.nUnary++
		m.countExpr(x.X)
	case *Binary:
		m.nBinary++
		m.countExpr(x.L)
		m.countExpr(x.R)
	default:
		panic("mpl: Clone: unknown expression type")
	}
}

// body carves a full-capacity subslice for the statement list (appends to
// it later therefore reallocate rather than bleed into a sibling block)
// and fills it.
func (m *cloneMem) body(body []Stmt) []Stmt {
	if body == nil {
		return nil
	}
	out := m.stmts[m.stmtOff : m.stmtOff+len(body) : m.stmtOff+len(body)]
	m.stmtOff += len(body)
	for i, s := range body {
		out[i] = m.stmt(s)
	}
	return out
}

func (m *cloneMem) stmt(s Stmt) Stmt {
	switch st := s.(type) {
	case *Assign:
		m.assigns = append(m.assigns, Assign{StmtBase: st.StmtBase, Name: st.Name, X: m.expr(st.X)})
		return &m.assigns[len(m.assigns)-1]
	case *Work:
		m.works = append(m.works, Work{StmtBase: st.StmtBase, Amount: m.expr(st.Amount)})
		return &m.works[len(m.works)-1]
	case *Send:
		m.sends = append(m.sends, Send{StmtBase: st.StmtBase, Dest: m.expr(st.Dest), Var: st.Var})
		return &m.sends[len(m.sends)-1]
	case *Recv:
		m.recvs = append(m.recvs, Recv{StmtBase: st.StmtBase, Src: m.expr(st.Src), Var: st.Var})
		return &m.recvs[len(m.recvs)-1]
	case *Bcast:
		m.bcasts = append(m.bcasts, Bcast{StmtBase: st.StmtBase, Root: m.expr(st.Root), Var: st.Var})
		return &m.bcasts[len(m.bcasts)-1]
	case *Reduce:
		m.reduces = append(m.reduces, Reduce{StmtBase: st.StmtBase, Root: m.expr(st.Root), Var: st.Var})
		return &m.reduces[len(m.reduces)-1]
	case *Chkpt:
		m.chkpts = append(m.chkpts, Chkpt{StmtBase: st.StmtBase})
		return &m.chkpts[len(m.chkpts)-1]
	case *While:
		m.whiles = append(m.whiles, While{StmtBase: st.StmtBase, Cond: m.expr(st.Cond), Body: m.body(st.Body)})
		return &m.whiles[len(m.whiles)-1]
	case *If:
		m.ifs = append(m.ifs, If{StmtBase: st.StmtBase, Cond: m.expr(st.Cond), Then: m.body(st.Then), Else: m.body(st.Else)})
		return &m.ifs[len(m.ifs)-1]
	default:
		panic("mpl: Clone: unknown statement type")
	}
}

func (m *cloneMem) expr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *IntLit:
		m.intLits = append(m.intLits, IntLit{Value: x.Value})
		return &m.intLits[len(m.intLits)-1]
	case *Ident:
		m.idents = append(m.idents, Ident{Name: x.Name})
		return &m.idents[len(m.idents)-1]
	case *Call:
		args := m.exprs[m.exprOff : m.exprOff+len(x.Args) : m.exprOff+len(x.Args)]
		m.exprOff += len(x.Args)
		for i, a := range x.Args {
			args[i] = m.expr(a)
		}
		m.calls = append(m.calls, Call{Name: x.Name, Args: args})
		return &m.calls[len(m.calls)-1]
	case *Unary:
		m.unaries = append(m.unaries, Unary{Op: x.Op, X: m.expr(x.X)})
		return &m.unaries[len(m.unaries)-1]
	case *Binary:
		m.binaries = append(m.binaries, Binary{Op: x.Op, L: m.expr(x.L), R: m.expr(x.R)})
		return &m.binaries[len(m.binaries)-1]
	default:
		panic("mpl: Clone: unknown expression type")
	}
}

// CloneExpr deep-copies an expression.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *IntLit:
		return &IntLit{Value: x.Value}
	case *Ident:
		return &Ident{Name: x.Name}
	case *Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = CloneExpr(a)
		}
		return &Call{Name: x.Name, Args: args}
	case *Unary:
		return &Unary{Op: x.Op, X: CloneExpr(x.X)}
	case *Binary:
		return &Binary{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	default:
		panic("mpl: CloneExpr: unknown expression type")
	}
}
