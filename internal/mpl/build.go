package mpl

// This file provides the programmatic construction API used by examples,
// tests, and the transformation phases: expression helpers, a statement
// Builder, and deep cloning.

// Int returns an integer literal expression.
func Int(v int) Expr { return &IntLit{Value: v} }

// V returns an identifier expression.
func V(name string) Expr { return &Ident{Name: name} }

// Rank returns the rank builtin.
func Rank() Expr { return &Ident{Name: BuiltinRank} }

// Nproc returns the nproc builtin.
func Nproc() Expr { return &Ident{Name: BuiltinNproc} }

// InputAt returns input(i), an irregular (data-dependent) expression.
func InputAt(i Expr) Expr { return &Call{Name: BuiltinInput, Args: []Expr{i}} }

// Binary expression helpers.

// Add returns l + r.
func Add(l, r Expr) Expr { return &Binary{Op: "+", L: l, R: r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return &Binary{Op: "-", L: l, R: r} }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return &Binary{Op: "*", L: l, R: r} }

// Div returns l / r.
func Div(l, r Expr) Expr { return &Binary{Op: "/", L: l, R: r} }

// Mod returns l % r.
func Mod(l, r Expr) Expr { return &Binary{Op: "%", L: l, R: r} }

// Eq returns l == r.
func Eq(l, r Expr) Expr { return &Binary{Op: "==", L: l, R: r} }

// Neq returns l != r.
func Neq(l, r Expr) Expr { return &Binary{Op: "!=", L: l, R: r} }

// Lt returns l < r.
func Lt(l, r Expr) Expr { return &Binary{Op: "<", L: l, R: r} }

// Le returns l <= r.
func Le(l, r Expr) Expr { return &Binary{Op: "<=", L: l, R: r} }

// Gt returns l > r.
func Gt(l, r Expr) Expr { return &Binary{Op: ">", L: l, R: r} }

// Ge returns l >= r.
func Ge(l, r Expr) Expr { return &Binary{Op: ">=", L: l, R: r} }

// And returns l && r.
func And(l, r Expr) Expr { return &Binary{Op: "&&", L: l, R: r} }

// Or returns l || r.
func Or(l, r Expr) Expr { return &Binary{Op: "||", L: l, R: r} }

// Not returns !x.
func Not(x Expr) Expr { return &Unary{Op: "!", X: x} }

// Neg returns -x.
func Neg(x Expr) Expr { return &Unary{Op: "-", X: x} }

// Builder accumulates a program body with automatically assigned statement
// IDs. Obtain one from NewBuilder, add declarations and statements, and
// call Program to finish (which also runs Check).
type Builder struct {
	prog   *Program
	nextID int
	// target is the statement list under construction (nesting pushes).
	target *[]Stmt
}

// NewBuilder starts a program named name.
func NewBuilder(name string) *Builder {
	b := &Builder{prog: &Program{Name: name}}
	b.target = &b.prog.Body
	return b
}

// Const declares a constant.
func (b *Builder) Const(name string, value int) *Builder {
	b.prog.Consts = append(b.prog.Consts, Const{Name: name, Value: value})
	return b
}

// Vars declares variables.
func (b *Builder) Vars(names ...string) *Builder {
	b.prog.Vars = append(b.prog.Vars, names...)
	return b
}

func (b *Builder) base() StmtBase {
	id := b.nextID
	b.nextID++
	return StmtBase{StmtID: id}
}

func (b *Builder) push(s Stmt) *Builder {
	*b.target = append(*b.target, s)
	return b
}

// Assign appends "name = x".
func (b *Builder) Assign(name string, x Expr) *Builder {
	return b.push(&Assign{StmtBase: b.base(), Name: name, X: x})
}

// Work appends "work(amount)".
func (b *Builder) Work(amount Expr) *Builder {
	return b.push(&Work{StmtBase: b.base(), Amount: amount})
}

// Send appends "send(dest, varName)".
func (b *Builder) Send(dest Expr, varName string) *Builder {
	return b.push(&Send{StmtBase: b.base(), Dest: dest, Var: varName})
}

// Recv appends "recv(src, varName)".
func (b *Builder) Recv(src Expr, varName string) *Builder {
	return b.push(&Recv{StmtBase: b.base(), Src: src, Var: varName})
}

// Bcast appends "bcast(root, varName)".
func (b *Builder) Bcast(root Expr, varName string) *Builder {
	return b.push(&Bcast{StmtBase: b.base(), Root: root, Var: varName})
}

// Reduce appends "reduce(root, varName)".
func (b *Builder) Reduce(root Expr, varName string) *Builder {
	return b.push(&Reduce{StmtBase: b.base(), Root: root, Var: varName})
}

// Chkpt appends a checkpoint statement.
func (b *Builder) Chkpt() *Builder {
	return b.push(&Chkpt{StmtBase: b.base()})
}

// While appends "while cond { ... }", building the body via fn.
func (b *Builder) While(cond Expr, fn func(*Builder)) *Builder {
	w := &While{StmtBase: b.base(), Cond: cond}
	b.nested(&w.Body, fn)
	return b.push(w)
}

// If appends "if cond { then }" with no else branch.
func (b *Builder) If(cond Expr, then func(*Builder)) *Builder {
	s := &If{StmtBase: b.base(), Cond: cond}
	b.nested(&s.Then, then)
	return b.push(s)
}

// IfElse appends "if cond { then } else { els }".
func (b *Builder) IfElse(cond Expr, then, els func(*Builder)) *Builder {
	s := &If{StmtBase: b.base(), Cond: cond}
	b.nested(&s.Then, then)
	b.nested(&s.Else, els)
	return b.push(s)
}

func (b *Builder) nested(list *[]Stmt, fn func(*Builder)) {
	saved := b.target
	b.target = list
	fn(b)
	b.target = saved
}

// Program finishes construction, validates the program, and returns it.
func (b *Builder) Program() (*Program, error) {
	if err := Check(b.prog); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustProgram is Program for static program literals in examples and tests;
// it panics on semantic errors, which there indicate a programming bug.
func (b *Builder) MustProgram() *Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}

// Clone returns a deep copy of the program. Statement IDs are preserved;
// expressions are copied so mutations of the clone never alias the
// original.
func Clone(p *Program) *Program {
	cp := &Program{
		Name:   p.Name,
		Consts: append([]Const(nil), p.Consts...),
		Vars:   append([]string(nil), p.Vars...),
		Body:   cloneBody(p.Body),
	}
	return cp
}

func cloneBody(body []Stmt) []Stmt {
	if body == nil {
		return nil
	}
	out := make([]Stmt, len(body))
	for i, s := range body {
		out[i] = cloneStmt(s)
	}
	return out
}

func cloneStmt(s Stmt) Stmt {
	switch st := s.(type) {
	case *Assign:
		return &Assign{StmtBase: st.StmtBase, Name: st.Name, X: CloneExpr(st.X)}
	case *Work:
		return &Work{StmtBase: st.StmtBase, Amount: CloneExpr(st.Amount)}
	case *Send:
		return &Send{StmtBase: st.StmtBase, Dest: CloneExpr(st.Dest), Var: st.Var}
	case *Recv:
		return &Recv{StmtBase: st.StmtBase, Src: CloneExpr(st.Src), Var: st.Var}
	case *Bcast:
		return &Bcast{StmtBase: st.StmtBase, Root: CloneExpr(st.Root), Var: st.Var}
	case *Reduce:
		return &Reduce{StmtBase: st.StmtBase, Root: CloneExpr(st.Root), Var: st.Var}
	case *Chkpt:
		return &Chkpt{StmtBase: st.StmtBase}
	case *While:
		return &While{StmtBase: st.StmtBase, Cond: CloneExpr(st.Cond), Body: cloneBody(st.Body)}
	case *If:
		return &If{StmtBase: st.StmtBase, Cond: CloneExpr(st.Cond), Then: cloneBody(st.Then), Else: cloneBody(st.Else)}
	default:
		panic("mpl: cloneStmt: unknown statement type")
	}
}

// CloneExpr deep-copies an expression.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *IntLit:
		return &IntLit{Value: x.Value}
	case *Ident:
		return &Ident{Name: x.Name}
	case *Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = CloneExpr(a)
		}
		return &Call{Name: x.Name, Args: args}
	case *Unary:
		return &Unary{Op: x.Op, X: CloneExpr(x.X)}
	case *Binary:
		return &Binary{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	default:
		panic("mpl: CloneExpr: unknown expression type")
	}
}
