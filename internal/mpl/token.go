// Package mpl implements MPL, a small SPMD message-passing language that
// stands in for the MPI/C programs of the paper. An MPL program is a single
// source executed by every process (the paper's SPMD assumption, §3);
// processes observe their identity through the built-in variables rank and
// nproc, communicate with blocking point-to-point send/recv and a bcast
// collective, and mark checkpoint locations with the chkpt statement.
//
// The package provides the lexer, parser, AST, semantic checker,
// source printer, and expression evaluator. Control-flow-graph
// construction lives in internal/cfg, and the checkpoint analyses of the
// paper operate on those CFGs.
package mpl

import (
	"fmt"
	"strconv"
)

// TokenKind enumerates lexical token kinds. The zero kind is invalid.
type TokenKind int

// Token kinds.
const (
	TokenEOF TokenKind = iota + 1
	TokenIdent
	TokenInt
	TokenKeyword
	// Punctuation and operators.
	TokenLBrace // {
	TokenRBrace // }
	TokenLParen // (
	TokenRParen // )
	TokenComma  // ,
	TokenAssign // =
	TokenPlus   // +
	TokenMinus  // -
	TokenStar   // *
	TokenSlash  // /
	TokenPct    // %
	TokenEq     // ==
	TokenNeq    // !=
	TokenLt     // <
	TokenLe     // <=
	TokenGt     // >
	TokenGe     // >=
	TokenAnd    // &&
	TokenOr     // ||
	TokenNot    // !
)

// Keywords of the language.
var keywords = map[string]bool{
	"program": true,
	"const":   true,
	"var":     true,
	"proc":    true,
	"while":   true,
	"if":      true,
	"else":    true,
	"send":    true,
	"recv":    true,
	"bcast":   true,
	"reduce":  true,
	"chkpt":   true,
	"work":    true,
}

// Builtin identifiers readable by every process.
const (
	BuiltinRank  = "rank"  // this process's id in [0, nproc)
	BuiltinNproc = "nproc" // number of processes
	BuiltinInput = "input" // input(i): data-dependent (irregular) value
)

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

// String renders "line:col".
func (p Pos) String() string {
	return strconv.Itoa(p.Line) + ":" + strconv.Itoa(p.Col)
}

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case TokenEOF:
		return "end of input"
	case TokenIdent, TokenInt, TokenKeyword:
		return fmt.Sprintf("%q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}
