package mpl

import (
	"strings"
	"testing"
)

// FuzzMPLParse checks the parser's crash-freedom and, when parsing succeeds,
// the print/reparse fixpoint: Format(Parse(x)) must itself parse to a
// program that formats identically. Run with `go test -fuzz FuzzMPLParse`;
// the seed corpus runs under plain `go test`.
func FuzzMPLParse(f *testing.F) {
	seeds := []string{
		"",
		"program p\nproc { }",
		"program p\nvar x\nproc { x = 1 }",
		jacobiSrc,
		"program p\nconst K = -3\nvar a, b\nproc { while a < K { chkpt } }",
		"program p\nvar v\nproc { bcast(0, v)\nif rank % 2 == 0 { send(rank + 1, v) } else { recv(rank - 1, v) } }",
		"program p\nvar x\nproc { x = input(rank) % (nproc - 1) }",
		"program p\nproc { chkpt\nchkpt\nchkpt }",
		"program p\nvar x\nproc { if rank == 0 { x = 1 } else if rank == 1 { x = 2 } else { x = 3 } }",
		"program \xff\nproc { }",
		"program p\nproc { while 1 { } }",
		"program p # comment\nproc { } # trailing",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := Parse(src)
		if err != nil {
			return // rejection is fine; crashing is not
		}
		out1 := Format(p1)
		p2, err := Parse(out1)
		if err != nil {
			t.Fatalf("formatted output does not reparse: %v\ninput: %q\nformatted:\n%s", err, src, out1)
		}
		out2 := Format(p2)
		if out1 != out2 {
			t.Fatalf("format not idempotent:\nfirst:\n%s\nsecond:\n%s", out1, out2)
		}
	})
}

// FuzzEval checks the evaluator never panics on checked programs: any
// expression the checker admits either evaluates or returns an error.
func FuzzEval(f *testing.F) {
	exprs := []string{
		"1 + 2 * 3",
		"rank % (nproc - nproc)",
		"1 / (rank - 1)",
		"-(-(-x))",
		"input(input(0))",
		"a && b || !a",
		"x < 3 == 1",
	}
	for _, e := range exprs {
		f.Add(e, 3, 8)
	}
	f.Fuzz(func(t *testing.T, expr string, rank, nproc int) {
		src := "program t\nvar a, b, x\nproc { x = " + expr + " }"
		p, err := Parse(src)
		if err != nil {
			return
		}
		env := &Env{
			Rank:  rank,
			Nproc: nproc,
			Vars:  map[string]int{"a": 1, "b": 2, "x": 0},
			Input: func(i int) int { return i },
		}
		// Must not panic; errors are acceptable (division by zero).
		v, err := Eval(p.Body[0].(*Assign).X, env)
		if err != nil && !strings.Contains(err.Error(), "eval") {
			t.Fatalf("unexpected error type: %v (value %d)", err, v)
		}
	})
}
