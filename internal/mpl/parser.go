package mpl

import (
	"fmt"
	"strconv"
)

// Parse parses MPL source into a checked Program. Statement IDs are
// assigned in source order starting at 0.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks   []Token
	pos    int
	nextID int
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind TokenKind, what string) (Token, error) {
	t := p.cur()
	if t.Kind != kind {
		return Token{}, p.errorf("expected %s, found %s", what, t)
	}
	p.advance()
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.cur()
	if t.Kind != TokenKeyword || t.Text != kw {
		return p.errorf("expected %q, found %s", kw, t)
	}
	p.advance()
	return nil
}

func (p *parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == TokenKeyword && t.Text == kw
}

func (p *parser) newBase(pos Pos) StmtBase {
	id := p.nextID
	p.nextID++
	return StmtBase{StmtID: id, SrcPos: pos}
}

func (p *parser) parseProgram() (*Program, error) {
	if err := p.expectKeyword("program"); err != nil {
		return nil, err
	}
	name, err := p.expect(TokenIdent, "program name")
	if err != nil {
		return nil, err
	}
	prog := &Program{Name: name.Text}

	for {
		switch {
		case p.atKeyword("const"):
			p.advance()
			id, err := p.expect(TokenIdent, "constant name")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokenAssign, `"="`); err != nil {
				return nil, err
			}
			neg := false
			if p.cur().Kind == TokenMinus {
				neg = true
				p.advance()
			}
			lit, err := p.expect(TokenInt, "integer literal")
			if err != nil {
				return nil, err
			}
			v, err := strconv.Atoi(lit.Text)
			if err != nil {
				return nil, p.errorf("bad integer %q", lit.Text)
			}
			if neg {
				v = -v
			}
			prog.Consts = append(prog.Consts, Const{Name: id.Text, Value: v})
		case p.atKeyword("var"):
			p.advance()
			for {
				id, err := p.expect(TokenIdent, "variable name")
				if err != nil {
					return nil, err
				}
				prog.Vars = append(prog.Vars, id.Text)
				if p.cur().Kind != TokenComma {
					break
				}
				p.advance()
			}
		case p.atKeyword("proc"):
			p.advance()
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			prog.Body = body
			if _, err := p.expect(TokenEOF, "end of input"); err != nil {
				return nil, err
			}
			return prog, nil
		default:
			return nil, p.errorf("expected declaration or proc block, found %s", p.cur())
		}
	}
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokenLBrace, `"{"`); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.cur().Kind != TokenRBrace {
		if p.cur().Kind == TokenEOF {
			return nil, p.errorf(`unexpected end of input, expected "}"`)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.advance() // consume }
	return stmts, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == TokenIdent:
		// assignment
		base := p.newBase(t.Pos)
		p.advance()
		if _, err := p.expect(TokenAssign, `"=" (assignment)`); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{StmtBase: base, Name: t.Text, X: x}, nil
	case p.atKeyword("chkpt"):
		base := p.newBase(t.Pos)
		p.advance()
		return &Chkpt{StmtBase: base}, nil
	case p.atKeyword("send"), p.atKeyword("recv"), p.atKeyword("bcast"), p.atKeyword("reduce"):
		kw := t.Text
		base := p.newBase(t.Pos)
		p.advance()
		if _, err := p.expect(TokenLParen, `"("`); err != nil {
			return nil, err
		}
		peer, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokenComma, `","`); err != nil {
			return nil, err
		}
		v, err := p.expect(TokenIdent, "variable name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokenRParen, `")"`); err != nil {
			return nil, err
		}
		switch kw {
		case "send":
			return &Send{StmtBase: base, Dest: peer, Var: v.Text}, nil
		case "recv":
			return &Recv{StmtBase: base, Src: peer, Var: v.Text}, nil
		case "bcast":
			return &Bcast{StmtBase: base, Root: peer, Var: v.Text}, nil
		default:
			return &Reduce{StmtBase: base, Root: peer, Var: v.Text}, nil
		}
	case p.atKeyword("work"):
		base := p.newBase(t.Pos)
		p.advance()
		if _, err := p.expect(TokenLParen, `"("`); err != nil {
			return nil, err
		}
		amt, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokenRParen, `")"`); err != nil {
			return nil, err
		}
		return &Work{StmtBase: base, Amount: amt}, nil
	case p.atKeyword("while"):
		base := p.newBase(t.Pos)
		p.advance()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &While{StmtBase: base, Cond: cond, Body: body}, nil
	case p.atKeyword("if"):
		base := p.newBase(t.Pos)
		p.advance()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.atKeyword("else") {
			p.advance()
			if p.atKeyword("if") {
				// else-if chains: parse the nested if as the sole else stmt.
				s, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				els = []Stmt{s}
			} else {
				els, err = p.parseBlock()
				if err != nil {
					return nil, err
				}
			}
		}
		return &If{StmtBase: base, Cond: cond, Then: then, Else: els}, nil
	default:
		return nil, p.errorf("expected statement, found %s", t)
	}
}

// Expression grammar (precedence climbing, lowest first):
//
//	or:    and ("||" and)*
//	and:   cmp ("&&" cmp)*
//	cmp:   add (("=="|"!="|"<"|"<="|">"|">=") add)?
//	add:   mul (("+"|"-") mul)*
//	mul:   unary (("*"|"/"|"%") unary)*
//	unary: ("-"|"!") unary | primary
//	primary: INT | IDENT | IDENT "(" args ")" | "(" expr ")"
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokenOr {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokenAnd {
		p.advance()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "&&", L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[TokenKind]string{
	TokenEq:  "==",
	TokenNeq: "!=",
	TokenLt:  "<",
	TokenLe:  "<=",
	TokenGt:  ">",
	TokenGe:  ">=",
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.cur().Kind]; ok {
		p.advance()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().Kind {
		case TokenPlus:
			op = "+"
		case TokenMinus:
			op = "-"
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.cur().Kind {
		case TokenStar:
			op = "*"
		case TokenSlash:
			op = "/"
		case TokenPct:
			op = "%"
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TokenMinus:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	case TokenNot:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "!", X: x}, nil
	default:
		return p.parsePrimary()
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokenInt:
		p.advance()
		v, err := strconv.Atoi(t.Text)
		if err != nil {
			return nil, p.errorf("bad integer %q", t.Text)
		}
		return &IntLit{Value: v}, nil
	case TokenIdent:
		p.advance()
		if p.cur().Kind == TokenLParen {
			p.advance()
			var args []Expr
			if p.cur().Kind != TokenRParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.cur().Kind != TokenComma {
						break
					}
					p.advance()
				}
			}
			if _, err := p.expect(TokenRParen, `")"`); err != nil {
				return nil, err
			}
			return &Call{Name: t.Text, Args: args}, nil
		}
		return &Ident{Name: t.Text}, nil
	case TokenLParen:
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokenRParen, `")"`); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return nil, p.errorf("expected expression, found %s", t)
	}
}
