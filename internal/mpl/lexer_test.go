package mpl

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := lexAll("x = 42 + rank")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokenIdent, TokenAssign, TokenInt, TokenPlus, TokenIdent, TokenEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d kind = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	src := "== != < <= > >= && || ! % * / ( ) { } ,"
	toks, err := lexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokenEq, TokenNeq, TokenLt, TokenLe, TokenGt, TokenGe,
		TokenAnd, TokenOr, TokenNot, TokenPct, TokenStar, TokenSlash,
		TokenLParen, TokenRParen, TokenLBrace, TokenRBrace, TokenComma, TokenEOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v (%q), want kind %v", i, got[i], toks[i].Text, want[i])
		}
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := lexAll("while whileX send sendto chkpt")
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []TokenKind{TokenKeyword, TokenIdent, TokenKeyword, TokenIdent, TokenKeyword, TokenEOF}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Errorf("token %d (%q) kind = %v, want %v", i, toks[i].Text, toks[i].Kind, k)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lexAll("x # this is a comment\ny")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "x" || toks[1].Text != "y" {
		t.Fatalf("comment not skipped: %v", toks)
	}
	if toks[1].Pos.Line != 2 {
		t.Errorf("line tracking across comments wrong: %v", toks[1].Pos)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lexAll("a\n  bb")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{Line: 2, Col: 3}) {
		t.Errorf("bb at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"$", "a & b", "a | b", "x @ y"} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q) succeeded, want error", src)
		} else if !strings.Contains(err.Error(), "mpl:") {
			t.Errorf("error %q lacks package prefix", err)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := lexAll("ok\n   $")
	if err == nil {
		t.Fatal("expected error")
	}
	var se *SyntaxError
	if !asSyntaxError(err, &se) {
		t.Fatalf("error type = %T, want *SyntaxError", err)
	}
	if se.Pos != (Pos{Line: 2, Col: 4}) {
		t.Errorf("error position = %v, want 2:4", se.Pos)
	}
}

func asSyntaxError(err error, target **SyntaxError) bool {
	se, ok := err.(*SyntaxError)
	if ok {
		*target = se
	}
	return ok
}
