package mpl

import (
	"errors"
	"fmt"
)

// CheckError reports a semantic error in a program.
type CheckError struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *CheckError) Error() string {
	return fmt.Sprintf("mpl: %s: %s", e.Pos, e.Msg)
}

// Check validates a program's static semantics:
//   - every referenced identifier is a declared variable, constant, or
//     builtin;
//   - the builtins rank/nproc and declared constants are never assigned or
//     used as message buffers;
//   - no name is declared twice (across vars, consts, and builtins);
//   - calls name the input builtin with exactly one argument;
//   - statement IDs are unique.
func Check(p *Program) error {
	declared := map[string]string{
		BuiltinRank:  "builtin",
		BuiltinNproc: "builtin",
	}
	var errs []error
	for _, c := range p.Consts {
		if kind, ok := declared[c.Name]; ok {
			errs = append(errs, &CheckError{Msg: fmt.Sprintf("constant %q redeclares %s", c.Name, kind)})
			continue
		}
		declared[c.Name] = "constant"
	}
	for _, v := range p.Vars {
		if kind, ok := declared[v]; ok {
			errs = append(errs, &CheckError{Msg: fmt.Sprintf("variable %q redeclares %s", v, kind)})
			continue
		}
		declared[v] = "variable"
	}

	checkExpr := func(pos Pos, e Expr) {
		WalkExpr(e, func(x Expr) bool {
			switch n := x.(type) {
			case *Ident:
				if _, ok := declared[n.Name]; !ok {
					errs = append(errs, &CheckError{Pos: pos, Msg: fmt.Sprintf("undeclared identifier %q", n.Name)})
				}
			case *Call:
				if n.Name != BuiltinInput {
					errs = append(errs, &CheckError{Pos: pos, Msg: fmt.Sprintf("unknown builtin %q", n.Name)})
				} else if len(n.Args) != 1 {
					errs = append(errs, &CheckError{Pos: pos, Msg: fmt.Sprintf("input takes 1 argument, got %d", len(n.Args))})
				}
			}
			return true
		})
	}
	mustBeVar := func(pos Pos, name, role string) {
		kind, ok := declared[name]
		switch {
		case !ok:
			errs = append(errs, &CheckError{Pos: pos, Msg: fmt.Sprintf("undeclared identifier %q", name)})
		case kind != "variable":
			errs = append(errs, &CheckError{Pos: pos, Msg: fmt.Sprintf("%s must be a variable, %q is a %s", role, name, kind)})
		}
	}

	seenIDs := make(map[int]bool)
	Walk(p.Body, func(s Stmt) bool {
		if seenIDs[s.ID()] {
			errs = append(errs, &CheckError{Pos: s.Pos(), Msg: fmt.Sprintf("duplicate statement id %d", s.ID())})
		}
		seenIDs[s.ID()] = true
		switch st := s.(type) {
		case *Assign:
			mustBeVar(st.Pos(), st.Name, "assignment target")
			checkExpr(st.Pos(), st.X)
		case *Work:
			checkExpr(st.Pos(), st.Amount)
		case *Send:
			checkExpr(st.Pos(), st.Dest)
			mustBeVar(st.Pos(), st.Var, "send buffer")
		case *Recv:
			checkExpr(st.Pos(), st.Src)
			mustBeVar(st.Pos(), st.Var, "receive buffer")
		case *Bcast:
			checkExpr(st.Pos(), st.Root)
			mustBeVar(st.Pos(), st.Var, "broadcast buffer")
		case *Reduce:
			checkExpr(st.Pos(), st.Root)
			mustBeVar(st.Pos(), st.Var, "reduce buffer")
		case *While:
			checkExpr(st.Pos(), st.Cond)
		case *If:
			checkExpr(st.Pos(), st.Cond)
		}
		return true
	})
	return errors.Join(errs...)
}
