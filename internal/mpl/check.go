package mpl

import (
	"errors"
	"fmt"
	"sort"
)

// CheckError reports a semantic error in a program.
type CheckError struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *CheckError) Error() string {
	return fmt.Sprintf("mpl: %s: %s", e.Pos, e.Msg)
}

// checker carries Check's state. Methods instead of closures: Check runs
// at every pipeline entry, and the per-call escaping closures (plus
// unsized map growth) were measurable in the transform benchmark.
type checker struct {
	declared map[string]string
	ids      []int // statement ids in walk order; dup check sorts at the end
	errs     []error
}

func (c *checker) expr(pos Pos, e Expr) {
	switch n := e.(type) {
	case *Ident:
		if _, ok := c.declared[n.Name]; !ok {
			c.errs = append(c.errs, &CheckError{Pos: pos, Msg: fmt.Sprintf("undeclared identifier %q", n.Name)})
		}
	case *Call:
		if n.Name != BuiltinInput {
			c.errs = append(c.errs, &CheckError{Pos: pos, Msg: fmt.Sprintf("unknown builtin %q", n.Name)})
		} else if len(n.Args) != 1 {
			c.errs = append(c.errs, &CheckError{Pos: pos, Msg: fmt.Sprintf("input takes 1 argument, got %d", len(n.Args))})
		}
		for _, arg := range n.Args {
			c.expr(pos, arg)
		}
	case *Unary:
		c.expr(pos, n.X)
	case *Binary:
		c.expr(pos, n.L)
		c.expr(pos, n.R)
	}
}

func (c *checker) mustBeVar(pos Pos, name, role string) {
	kind, ok := c.declared[name]
	switch {
	case !ok:
		c.errs = append(c.errs, &CheckError{Pos: pos, Msg: fmt.Sprintf("undeclared identifier %q", name)})
	case kind != "variable":
		c.errs = append(c.errs, &CheckError{Pos: pos, Msg: fmt.Sprintf("%s must be a variable, %q is a %s", role, name, kind)})
	}
}

func (c *checker) stmt(s Stmt) bool {
	c.ids = append(c.ids, s.ID())
	switch st := s.(type) {
	case *Assign:
		c.mustBeVar(st.Pos(), st.Name, "assignment target")
		c.expr(st.Pos(), st.X)
	case *Work:
		c.expr(st.Pos(), st.Amount)
	case *Send:
		c.expr(st.Pos(), st.Dest)
		c.mustBeVar(st.Pos(), st.Var, "send buffer")
	case *Recv:
		c.expr(st.Pos(), st.Src)
		c.mustBeVar(st.Pos(), st.Var, "receive buffer")
	case *Bcast:
		c.expr(st.Pos(), st.Root)
		c.mustBeVar(st.Pos(), st.Var, "broadcast buffer")
	case *Reduce:
		c.expr(st.Pos(), st.Root)
		c.mustBeVar(st.Pos(), st.Var, "reduce buffer")
	case *While:
		c.expr(st.Pos(), st.Cond)
	case *If:
		c.expr(st.Pos(), st.Cond)
	}
	return true
}

// Check validates a program's static semantics:
//   - every referenced identifier is a declared variable, constant, or
//     builtin;
//   - the builtins rank/nproc and declared constants are never assigned or
//     used as message buffers;
//   - no name is declared twice (across vars, consts, and builtins);
//   - calls name the input builtin with exactly one argument;
//   - statement IDs are unique.
func Check(p *Program) error {
	c := &checker{
		declared: make(map[string]string, len(p.Consts)+len(p.Vars)+2),
		ids:      make([]int, 0, p.StmtCount()),
	}
	c.declared[BuiltinRank] = "builtin"
	c.declared[BuiltinNproc] = "builtin"
	for _, cst := range p.Consts {
		if kind, ok := c.declared[cst.Name]; ok {
			c.errs = append(c.errs, &CheckError{Msg: fmt.Sprintf("constant %q redeclares %s", cst.Name, kind)})
			continue
		}
		c.declared[cst.Name] = "constant"
	}
	for _, v := range p.Vars {
		if kind, ok := c.declared[v]; ok {
			c.errs = append(c.errs, &CheckError{Msg: fmt.Sprintf("variable %q redeclares %s", v, kind)})
			continue
		}
		c.declared[v] = "variable"
	}
	Walk(p.Body, c.stmt)
	// Duplicate statement ids: sort-and-scan beats a per-statement set (a
	// map was two allocations and growth on every Check).
	sort.Ints(c.ids)
	for i := 1; i < len(c.ids); i++ {
		if c.ids[i] == c.ids[i-1] && (i == 1 || c.ids[i] != c.ids[i-2]) {
			c.errs = append(c.errs, &CheckError{Msg: fmt.Sprintf("duplicate statement id %d", c.ids[i])})
		}
	}
	return errors.Join(c.errs...)
}
