package mpl

// Simplify performs conservative algebraic simplification on an
// expression: constant folding and identity elimination. It never changes
// the expression's value for ANY environment — including error behavior
// (division by zero is never folded away, and subexpressions with side
// conditions are preserved). The data-flow analysis uses it to keep
// resolved rank expressions small, and the printer benefits from tidier
// output.
//
// Simplify copies on change only: when nothing folds, the input node is
// returned as-is, so results may share structure with the input. Callers
// must treat both as immutable (every caller already does — simplified
// expressions are abstract values, never program statements).
func Simplify(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *IntLit, *Ident:
		return e
	case *Call:
		changed := false
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = Simplify(a)
			changed = changed || args[i] != a
		}
		if !changed {
			return x
		}
		return &Call{Name: x.Name, Args: args}
	case *Unary:
		inner := Simplify(x.X)
		if lit, ok := inner.(*IntLit); ok {
			switch x.Op {
			case "-":
				return &IntLit{Value: -lit.Value}
			case "!":
				if lit.Value == 0 {
					return &IntLit{Value: 1}
				}
				return &IntLit{Value: 0}
			}
		}
		// --x = x
		if x.Op == "-" {
			if u, ok := inner.(*Unary); ok && u.Op == "-" {
				return u.X
			}
		}
		if inner == x.X {
			return x
		}
		return &Unary{Op: x.Op, X: inner}
	case *Binary:
		l := Simplify(x.L)
		r := Simplify(x.R)
		ll, lOK := l.(*IntLit)
		rl, rOK := r.(*IntLit)

		// Full constant folding (except when it would hide a division by
		// zero — that error must survive to runtime).
		if lOK && rOK {
			if v, ok := foldBinary(x.Op, ll.Value, rl.Value); ok {
				return &IntLit{Value: v}
			}
			if l == x.L && r == x.R {
				return x
			}
			return &Binary{Op: x.Op, L: l, R: r}
		}

		// Identity eliminations that are safe for all values of the
		// non-constant side. Additive/multiplicative identities only:
		// x*0 is NOT folded (x could still fail to evaluate? No —
		// expressions are total except division; x*0 where x contains a
		// division could error. Keep x*0 unfolded for error preservation.)
		switch x.Op {
		case "+":
			if lOK && ll.Value == 0 {
				return r
			}
			if rOK && rl.Value == 0 {
				return l
			}
		case "-":
			if rOK && rl.Value == 0 {
				return l
			}
		case "*":
			if lOK && ll.Value == 1 {
				return r
			}
			if rOK && rl.Value == 1 {
				return l
			}
		case "/":
			if rOK && rl.Value == 1 {
				return l
			}
		case "&&":
			// true && x = (x != 0) — not representable without changing
			// the 0/1 normalization of x; only fold the short-circuit
			// side: 0 && x = 0 (x never evaluated at runtime either).
			if lOK && ll.Value == 0 {
				return &IntLit{Value: 0}
			}
		case "||":
			if lOK && ll.Value != 0 {
				return &IntLit{Value: 1}
			}
		}
		if l == x.L && r == x.R {
			return x
		}
		return &Binary{Op: x.Op, L: l, R: r}
	default:
		return e
	}
}

// FoldBinary evaluates a constant binary operation; ok=false when folding
// must not happen (division/modulo by zero must fail at runtime, not
// vanish at analysis time). Exported so the data-flow analysis can fold
// constant subexpressions during substitution instead of building a Binary
// node Simplify would immediately collapse.
func FoldBinary(op string, l, r int) (int, bool) {
	return foldBinary(op, l, r)
}

// foldBinary evaluates a constant binary operation; ok=false when folding
// must not happen (division/modulo by zero must fail at runtime, not
// vanish at analysis time).
func foldBinary(op string, l, r int) (int, bool) {
	switch op {
	case "+":
		return l + r, true
	case "-":
		return l - r, true
	case "*":
		return l * r, true
	case "/":
		if r == 0 {
			return 0, false
		}
		return l / r, true
	case "%":
		if r == 0 {
			return 0, false
		}
		m := l % r
		if m < 0 {
			if r > 0 {
				m += r
			} else {
				m -= r
			}
		}
		return m, true
	case "==":
		return boolInt(l == r), true
	case "!=":
		return boolInt(l != r), true
	case "<":
		return boolInt(l < r), true
	case "<=":
		return boolInt(l <= r), true
	case ">":
		return boolInt(l > r), true
	case ">=":
		return boolInt(l >= r), true
	case "&&":
		return boolInt(l != 0 && r != 0), true
	case "||":
		return boolInt(l != 0 || r != 0), true
	default:
		return 0, false
	}
}
