package mpl

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func evalStr(t *testing.T, expr string, env *Env) (int, error) {
	t.Helper()
	src := "program t\nvar a, b, x\nproc { x = " + expr + " }"
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	return Eval(p.Body[0].(*Assign).X, env)
}

func testEnv() *Env {
	return &Env{
		Rank:  3,
		Nproc: 8,
		Vars:  map[string]int{"a": 10, "b": 4, "x": 0},
		Input: func(i int) int { return i * 100 },
	}
}

func TestEvalArithmetic(t *testing.T) {
	tests := []struct {
		expr string
		want int
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"a - b", 6},
		{"a / b", 2},
		{"a % b", 2},
		{"-a + 1", -9},
		{"rank", 3},
		{"nproc", 8},
		{"rank + 1", 4},
		{"(rank - 1 + nproc) % nproc", 2},
		{"(rank - 5) % nproc", 6}, // Euclidean modulo: -2 mod 8 = 6
		{"input(2)", 200},
		{"input(rank)", 300},
	}
	for _, tt := range tests {
		got, err := evalStr(t, tt.expr, testEnv())
		if err != nil {
			t.Errorf("%s: %v", tt.expr, err)
			continue
		}
		if got != tt.want {
			t.Errorf("%s = %d, want %d", tt.expr, got, tt.want)
		}
	}
}

func TestEvalComparisonsAndLogic(t *testing.T) {
	tests := []struct {
		expr string
		want int
	}{
		{"a == 10", 1},
		{"a != 10", 0},
		{"a < b", 0},
		{"a <= 10", 1},
		{"a > b", 1},
		{"b >= 5", 0},
		{"1 && 2", 1},
		{"1 && 0", 0},
		{"0 || 3", 1},
		{"0 || 0", 0},
		{"!0", 1},
		{"!7", 0},
		{"rank % 2 == 1 && rank < nproc", 1},
	}
	for _, tt := range tests {
		got, err := evalStr(t, tt.expr, testEnv())
		if err != nil {
			t.Errorf("%s: %v", tt.expr, err)
			continue
		}
		if got != tt.want {
			t.Errorf("%s = %d, want %d", tt.expr, got, tt.want)
		}
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// Division by zero on the right side must not be evaluated.
	if got, err := evalStr(t, "0 && 1 / 0", testEnv()); err != nil || got != 0 {
		t.Errorf("&& did not short-circuit: %d, %v", got, err)
	}
	if got, err := evalStr(t, "1 || 1 / 0", testEnv()); err != nil || got != 1 {
		t.Errorf("|| did not short-circuit: %d, %v", got, err)
	}
}

func TestEvalErrors(t *testing.T) {
	if _, err := evalStr(t, "1 / 0", testEnv()); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("1/0 err = %v", err)
	}
	if _, err := evalStr(t, "1 % 0", testEnv()); err == nil {
		t.Error("1%0 should fail")
	}
	env := testEnv()
	env.Input = nil
	if _, err := evalStr(t, "input(1)", env); err == nil {
		t.Error("input with nil binding should fail")
	}
	// Unknown identifier via a hand-built expression (checker bypassed).
	if _, err := Eval(V("ghost"), env); err == nil {
		t.Error("unknown identifier should fail")
	}
	var ee *EvalError
	_, err := Eval(V("ghost"), env)
	if !errors.As(err, &ee) {
		t.Errorf("error type = %T, want *EvalError", err)
	}
}

func TestNewEnvInitializesVars(t *testing.T) {
	p, err := Parse("program t\nconst K = 7\nvar u, v\nproc { u = K }")
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(p, 2, 4, nil)
	if env.Rank != 2 || env.Nproc != 4 {
		t.Errorf("env = %+v", env)
	}
	if v, ok := env.Vars["u"]; !ok || v != 0 {
		t.Errorf("u = %d, %v", v, ok)
	}
	if env.Consts["K"] != 7 {
		t.Errorf("K = %d", env.Consts["K"])
	}
	got, err := Eval(V("K"), env)
	if err != nil || got != 7 {
		t.Errorf("Eval(K) = %d, %v", got, err)
	}
}

func TestTruthy(t *testing.T) {
	env := testEnv()
	b, err := Truthy(Int(0), env)
	if err != nil || b {
		t.Errorf("Truthy(0) = %v, %v", b, err)
	}
	b, err = Truthy(Int(-5), env)
	if err != nil || !b {
		t.Errorf("Truthy(-5) = %v, %v", b, err)
	}
}

func TestUsesInput(t *testing.T) {
	if UsesInput(Add(Rank(), Int(1))) {
		t.Error("rank+1 is regular")
	}
	if !UsesInput(Add(Rank(), InputAt(Int(0)))) {
		t.Error("rank+input(0) is irregular")
	}
	if !UsesInput(InputAt(InputAt(Int(0)))) {
		t.Error("nested input is irregular")
	}
	if UsesInput(nil) {
		t.Error("nil expression is regular")
	}
}

func TestQuickEuclideanModulo(t *testing.T) {
	// For positive divisors the result is always in [0, divisor).
	f := func(l int16, r uint8) bool {
		div := int(r%31) + 1
		env := &Env{Vars: map[string]int{}}
		got, err := Eval(Mod(Int(int(l)), Int(div)), env)
		if err != nil {
			return false
		}
		if got < 0 || got >= div {
			return false
		}
		// Congruence: (got - l) divisible by div.
		return (got-int(l))%div == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEvalMatchesGo(t *testing.T) {
	// +, -, * agree with Go's arithmetic.
	f := func(a, b int16) bool {
		env := &Env{Vars: map[string]int{}}
		sum, err1 := Eval(Add(Int(int(a)), Int(int(b))), env)
		diff, err2 := Eval(Sub(Int(int(a)), Int(int(b))), env)
		prod, err3 := Eval(Mul(Int(int(a)), Int(int(b))), env)
		return err1 == nil && err2 == nil && err3 == nil &&
			sum == int(a)+int(b) && diff == int(a)-int(b) && prod == int(a)*int(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuilderProducesCheckedProgram(t *testing.T) {
	p := NewBuilder("ring").
		Const("STEPS", 3).
		Vars("tok", "i").
		Assign("i", Int(0)).
		While(Lt(V("i"), V("STEPS")), func(b *Builder) {
			b.Chkpt()
			b.IfElse(Eq(Mod(Rank(), Int(2)), Int(0)),
				func(b *Builder) {
					b.Send(Add(Rank(), Int(1)), "tok")
				},
				func(b *Builder) {
					b.Recv(Sub(Rank(), Int(1)), "tok")
				})
			b.Assign("i", Add(V("i"), Int(1)))
		}).
		MustProgram()
	if p.StmtCount() != 7 {
		t.Errorf("StmtCount = %d, want 7", p.StmtCount())
	}
	// Round trip through the printer and parser.
	p2, err := Parse(Format(p))
	if err != nil {
		t.Fatalf("builder output does not reparse: %v\n%s", err, Format(p))
	}
	if Format(p2) != Format(p) {
		t.Error("builder/parser round trip mismatch")
	}
}

func TestBuilderRejectsBadProgram(t *testing.T) {
	_, err := NewBuilder("bad").Assign("nowhere", Int(1)).Program()
	if err == nil {
		t.Fatal("undeclared assignment accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustProgram did not panic")
		}
	}()
	NewBuilder("bad2").Assign("nowhere", Int(1)).MustProgram()
}

func BenchmarkParseJacobi(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(jacobiSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalExpr(b *testing.B) {
	p, err := Parse("program t\nvar x\nproc { x = (rank - 1 + nproc) % nproc * 2 + 1 }")
	if err != nil {
		b.Fatal(err)
	}
	e := p.Body[0].(*Assign).X
	env := &Env{Rank: 3, Nproc: 8, Vars: map[string]int{"x": 0}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(e, env); err != nil {
			b.Fatal(err)
		}
	}
}
