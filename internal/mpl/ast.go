package mpl

import "fmt"

// Program is a parsed MPL program: constant and variable declarations plus
// the proc body every process executes.
type Program struct {
	Name   string
	Consts []Const
	Vars   []string
	Body   []Stmt
}

// Const is a named compile-time integer constant.
type Const struct {
	Name  string
	Value int
}

// ConstValue looks up a declared constant.
func (p *Program) ConstValue(name string) (int, bool) {
	for _, c := range p.Consts {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Stmt is a program statement. Every statement carries a unique ID assigned
// at parse (or build) time; the transformation phases address statements by
// ID when moving checkpoints, and the runtime uses IDs as resume labels.
type Stmt interface {
	stmtNode()
	// ID returns the statement's unique id within its program.
	ID() int
	// Pos returns the source position ({0,0} for built programs).
	Pos() Pos
}

// StmtBase carries the fields shared by all statements. It is exported so
// the builder API in build.go can construct statements, but programs should
// normally be built via Build* helpers or the parser.
type StmtBase struct {
	StmtID int
	SrcPos Pos
}

// ID implements Stmt.
func (b *StmtBase) ID() int { return b.StmtID }

// Pos implements Stmt.
func (b *StmtBase) Pos() Pos { return b.SrcPos }

// Assign is "name = expr", a computation event.
type Assign struct {
	StmtBase
	Name string
	X    Expr
}

// Work is "work(expr)", a pure computation burning the given abstract cost.
type Work struct {
	StmtBase
	Amount Expr
}

// Send is "send(dest, var)". Sends to a destination outside [0, nproc) are
// no-ops (guarded-boundary semantics), which lets ring and stencil codes
// omit explicit edge guards just like the paper's Jacobi example.
type Send struct {
	StmtBase
	Dest Expr
	Var  string
}

// Recv is "recv(src, var)", blocking. Receives from a source outside
// [0, nproc) are no-ops that leave var unchanged.
type Recv struct {
	StmtBase
	Src Expr
	Var string
}

// Bcast is "bcast(root, var)", a collective: the root's value of var is
// delivered to every process. It reduces to point-to-point sends/receives
// (§3.2's observation that collectives reduce to send/recv statements).
type Bcast struct {
	StmtBase
	Root Expr
	Var  string
}

// Reduce is "reduce(root, var)", a collective: the sum of var across all
// processes is delivered to the root's var; other processes keep their
// value. Like bcast it reduces to point-to-point sends/receives (§3.2).
type Reduce struct {
	StmtBase
	Root Expr
	Var  string
}

// Chkpt is the checkpoint statement.
type Chkpt struct {
	StmtBase
}

// While is "while cond { body }".
type While struct {
	StmtBase
	Cond Expr
	Body []Stmt
}

// If is "if cond { then } else { else }"; Else may be empty.
type If struct {
	StmtBase
	Cond Expr
	Then []Stmt
	Else []Stmt
}

func (*Assign) stmtNode() {}
func (*Work) stmtNode()   {}
func (*Send) stmtNode()   {}
func (*Recv) stmtNode()   {}
func (*Bcast) stmtNode()  {}
func (*Reduce) stmtNode() {}
func (*Chkpt) stmtNode()  {}
func (*While) stmtNode()  {}
func (*If) stmtNode()     {}

// Expr is an integer expression. Comparison and logical operators yield
// 0/1; conditions treat any nonzero value as true.
type Expr interface {
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	Value int
}

// Ident references a variable, constant, or builtin (rank, nproc).
type Ident struct {
	Name string
}

// Call is a builtin call; the only builtin is input(i), whose value is
// process input data — the paper's "irregular computation pattern".
type Call struct {
	Name string
	Args []Expr
}

// Unary is -x or !x.
type Unary struct {
	Op string
	X  Expr
}

// Binary is a binary operation.
type Binary struct {
	Op   string
	L, R Expr
}

func (*IntLit) exprNode() {}
func (*Ident) exprNode()  {}
func (*Call) exprNode()   {}
func (*Unary) exprNode()  {}
func (*Binary) exprNode() {}

// Walk visits every statement in the body (pre-order, including nested
// bodies) until fn returns false.
func Walk(body []Stmt, fn func(Stmt) bool) bool {
	for _, s := range body {
		if !fn(s) {
			return false
		}
		switch st := s.(type) {
		case *While:
			if !Walk(st.Body, fn) {
				return false
			}
		case *If:
			if !Walk(st.Then, fn) {
				return false
			}
			if !Walk(st.Else, fn) {
				return false
			}
		}
	}
	return true
}

// WalkExpr visits e and all subexpressions pre-order until fn returns false.
func WalkExpr(e Expr, fn func(Expr) bool) bool {
	if e == nil {
		return true
	}
	if !fn(e) {
		return false
	}
	switch x := e.(type) {
	case *Unary:
		return WalkExpr(x.X, fn)
	case *Binary:
		return WalkExpr(x.L, fn) && WalkExpr(x.R, fn)
	case *Call:
		for _, a := range x.Args {
			if !WalkExpr(a, fn) {
				return false
			}
		}
	}
	return true
}

// FindStmt returns the statement with the given id, or nil.
func (p *Program) FindStmt(id int) Stmt {
	var found Stmt
	Walk(p.Body, func(s Stmt) bool {
		if s.ID() == id {
			found = s
			return false
		}
		return true
	})
	return found
}

// MaxStmtID returns the largest statement id in the program, or -1 when the
// body is empty. New statements added by transformations must use larger
// ids.
func (p *Program) MaxStmtID() int {
	maxID := -1
	Walk(p.Body, func(s Stmt) bool {
		if s.ID() > maxID {
			maxID = s.ID()
		}
		return true
	})
	return maxID
}

// StmtCount returns the number of statements in the program.
func (p *Program) StmtCount() int {
	n := 0
	Walk(p.Body, func(Stmt) bool { n++; return true })
	return n
}

// DescribeStmt names a statement for diagnostics and CFG node labels.
func DescribeStmt(s Stmt) string {
	switch st := s.(type) {
	case *Assign:
		return fmt.Sprintf("assign %s (#%d)", st.Name, st.ID())
	case *Work:
		return fmt.Sprintf("work (#%d)", st.ID())
	case *Send:
		return fmt.Sprintf("send->%s (#%d)", ExprString(st.Dest), st.ID())
	case *Recv:
		return fmt.Sprintf("recv<-%s (#%d)", ExprString(st.Src), st.ID())
	case *Bcast:
		return fmt.Sprintf("bcast root=%s (#%d)", ExprString(st.Root), st.ID())
	case *Reduce:
		return fmt.Sprintf("reduce root=%s (#%d)", ExprString(st.Root), st.ID())
	case *Chkpt:
		return fmt.Sprintf("chkpt (#%d)", st.ID())
	case *While:
		return fmt.Sprintf("while %s (#%d)", ExprString(st.Cond), st.ID())
	case *If:
		return fmt.Sprintf("if %s (#%d)", ExprString(st.Cond), st.ID())
	default:
		return fmt.Sprintf("stmt (#%d)", s.ID())
	}
}
