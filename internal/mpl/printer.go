package mpl

import (
	"strconv"
	"strings"
)

// Format renders a program back to MPL source. Parsing the output yields a
// structurally identical program (statement IDs are reassigned in source
// order). The checkpoint placement phase uses Format to emit the
// transformed program.
func Format(p *Program) string {
	var sb strings.Builder
	sb.WriteString("program ")
	sb.WriteString(p.Name)
	sb.WriteString("\n")
	if len(p.Consts) > 0 {
		sb.WriteString("\n")
		for _, c := range p.Consts {
			sb.WriteString("const ")
			sb.WriteString(c.Name)
			sb.WriteString(" = ")
			sb.WriteString(strconv.Itoa(c.Value))
			sb.WriteString("\n")
		}
	}
	if len(p.Vars) > 0 {
		sb.WriteString("\nvar ")
		sb.WriteString(strings.Join(p.Vars, ", "))
		sb.WriteString("\n")
	}
	sb.WriteString("\nproc {\n")
	formatBody(&sb, p.Body, 1)
	sb.WriteString("}\n")
	return sb.String()
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("    ")
	}
}

func formatBody(sb *strings.Builder, body []Stmt, depth int) {
	for _, s := range body {
		formatStmt(sb, s, depth)
	}
}

func formatStmt(sb *strings.Builder, s Stmt, depth int) {
	indent(sb, depth)
	switch st := s.(type) {
	case *Assign:
		sb.WriteString(st.Name)
		sb.WriteString(" = ")
		sb.WriteString(ExprString(st.X))
		sb.WriteString("\n")
	case *Work:
		sb.WriteString("work(")
		sb.WriteString(ExprString(st.Amount))
		sb.WriteString(")\n")
	case *Send:
		sb.WriteString("send(")
		sb.WriteString(ExprString(st.Dest))
		sb.WriteString(", ")
		sb.WriteString(st.Var)
		sb.WriteString(")\n")
	case *Recv:
		sb.WriteString("recv(")
		sb.WriteString(ExprString(st.Src))
		sb.WriteString(", ")
		sb.WriteString(st.Var)
		sb.WriteString(")\n")
	case *Bcast:
		sb.WriteString("bcast(")
		sb.WriteString(ExprString(st.Root))
		sb.WriteString(", ")
		sb.WriteString(st.Var)
		sb.WriteString(")\n")
	case *Reduce:
		sb.WriteString("reduce(")
		sb.WriteString(ExprString(st.Root))
		sb.WriteString(", ")
		sb.WriteString(st.Var)
		sb.WriteString(")\n")
	case *Chkpt:
		sb.WriteString("chkpt\n")
	case *While:
		sb.WriteString("while ")
		sb.WriteString(ExprString(st.Cond))
		sb.WriteString(" {\n")
		formatBody(sb, st.Body, depth+1)
		indent(sb, depth)
		sb.WriteString("}\n")
	case *If:
		sb.WriteString("if ")
		sb.WriteString(ExprString(st.Cond))
		sb.WriteString(" {\n")
		formatBody(sb, st.Then, depth+1)
		indent(sb, depth)
		if len(st.Else) > 0 {
			sb.WriteString("} else {\n")
			formatBody(sb, st.Else, depth+1)
			indent(sb, depth)
		}
		sb.WriteString("}\n")
	}
}

// precedence levels for minimal parenthesization.
func exprPrec(e Expr) int {
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case "||":
			return 1
		case "&&":
			return 2
		case "==", "!=", "<", "<=", ">", ">=":
			return 3
		case "+", "-":
			return 4
		default: // * / %
			return 5
		}
	case *Unary:
		return 6
	default:
		return 7
	}
}

// ExprString renders an expression with minimal parentheses.
func ExprString(e Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e, 0)
	return sb.String()
}

func writeExpr(sb *strings.Builder, e Expr, parentPrec int) {
	prec := exprPrec(e)
	needParens := prec < parentPrec
	if needParens {
		sb.WriteByte('(')
	}
	switch x := e.(type) {
	case *IntLit:
		sb.WriteString(strconv.Itoa(x.Value))
	case *Ident:
		sb.WriteString(x.Name)
	case *Call:
		sb.WriteString(x.Name)
		sb.WriteByte('(')
		for i, a := range x.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a, 0)
		}
		sb.WriteByte(')')
	case *Unary:
		sb.WriteString(x.Op)
		writeExpr(sb, x.X, prec)
	case *Binary:
		// Left associative: the right child needs strictly higher precedence
		// to avoid parens.
		writeExpr(sb, x.L, prec)
		sb.WriteByte(' ')
		sb.WriteString(x.Op)
		sb.WriteByte(' ')
		writeExpr(sb, x.R, prec+1)
	}
	if needParens {
		sb.WriteByte(')')
	}
}
