package mpl

import (
	"errors"
	"fmt"
)

// Env supplies the values an expression may read: process variables, program
// constants, the rank/nproc builtins, and the input builtin's data.
type Env struct {
	Rank  int
	Nproc int
	// Vars holds the mutable process variables. Undeclared reads are an
	// evaluation error; the checker prevents them for parsed programs.
	Vars map[string]int
	// Consts holds program constants.
	Consts map[string]int
	// Input returns process input data for index i. A nil Input makes any
	// input(...) call an evaluation error.
	Input func(i int) int
}

// NewEnv builds an evaluation environment for one process of a program,
// with all declared variables initialized to zero.
func NewEnv(p *Program, rank, nproc int, input func(int) int) *Env {
	env := &Env{
		Rank:   rank,
		Nproc:  nproc,
		Vars:   make(map[string]int, len(p.Vars)),
		Consts: make(map[string]int, len(p.Consts)),
		Input:  input,
	}
	for _, v := range p.Vars {
		env.Vars[v] = 0
	}
	for _, c := range p.Consts {
		env.Consts[c.Name] = c.Value
	}
	return env
}

// EvalError reports a runtime evaluation failure (division by zero, missing
// input data, unknown identifier).
type EvalError struct {
	Msg string
}

// Error implements error.
func (e *EvalError) Error() string { return "mpl: eval: " + e.Msg }

// ErrDivideByZero is wrapped by division/modulo-by-zero errors.
var ErrDivideByZero = errors.New("division by zero")

// Eval evaluates an expression in the environment. Comparison and logical
// operators yield 0 or 1; && and || short-circuit.
func Eval(e Expr, env *Env) (int, error) {
	switch x := e.(type) {
	case *IntLit:
		return x.Value, nil
	case *Ident:
		switch x.Name {
		case BuiltinRank:
			return env.Rank, nil
		case BuiltinNproc:
			return env.Nproc, nil
		}
		if v, ok := env.Vars[x.Name]; ok {
			return v, nil
		}
		if v, ok := env.Consts[x.Name]; ok {
			return v, nil
		}
		return 0, &EvalError{Msg: fmt.Sprintf("unknown identifier %q", x.Name)}
	case *Call:
		if x.Name != BuiltinInput {
			return 0, &EvalError{Msg: fmt.Sprintf("unknown builtin %q", x.Name)}
		}
		if len(x.Args) != 1 {
			return 0, &EvalError{Msg: fmt.Sprintf("input takes 1 argument, got %d", len(x.Args))}
		}
		if env.Input == nil {
			return 0, &EvalError{Msg: "no input data bound"}
		}
		i, err := Eval(x.Args[0], env)
		if err != nil {
			return 0, err
		}
		return env.Input(i), nil
	case *Unary:
		v, err := Eval(x.X, env)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "-":
			return -v, nil
		case "!":
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		default:
			return 0, &EvalError{Msg: fmt.Sprintf("unknown unary operator %q", x.Op)}
		}
	case *Binary:
		l, err := Eval(x.L, env)
		if err != nil {
			return 0, err
		}
		// Short-circuit logical operators.
		switch x.Op {
		case "&&":
			if l == 0 {
				return 0, nil
			}
			r, err := Eval(x.R, env)
			if err != nil {
				return 0, err
			}
			return boolInt(r != 0), nil
		case "||":
			if l != 0 {
				return 1, nil
			}
			r, err := Eval(x.R, env)
			if err != nil {
				return 0, err
			}
			return boolInt(r != 0), nil
		}
		r, err := Eval(x.R, env)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, &EvalError{Msg: fmt.Sprintf("%s: %s", ErrDivideByZero, ExprString(e))}
			}
			return l / r, nil
		case "%":
			if r == 0 {
				return 0, &EvalError{Msg: fmt.Sprintf("%s: %s", ErrDivideByZero, ExprString(e))}
			}
			// Euclidean-style modulo: the result has the sign of the
			// divisor's magnitude, i.e. always non-negative for positive
			// divisors. SPMD rank arithmetic like (rank-1+n)%n and
			// (rank-1)%n then agree, which matches programmer intent.
			m := l % r
			if m < 0 {
				if r > 0 {
					m += r
				} else {
					m -= r
				}
			}
			return m, nil
		case "==":
			return boolInt(l == r), nil
		case "!=":
			return boolInt(l != r), nil
		case "<":
			return boolInt(l < r), nil
		case "<=":
			return boolInt(l <= r), nil
		case ">":
			return boolInt(l > r), nil
		case ">=":
			return boolInt(l >= r), nil
		default:
			return 0, &EvalError{Msg: fmt.Sprintf("unknown binary operator %q", x.Op)}
		}
	default:
		return 0, &EvalError{Msg: fmt.Sprintf("unknown expression node %T", e)}
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Truthy evaluates a condition expression: nonzero means true.
func Truthy(e Expr, env *Env) (bool, error) {
	v, err := Eval(e, env)
	return v != 0, err
}

// UsesInput reports whether the expression contains an input(...) call —
// the paper's "irregular computation pattern" (§3.2): a parameter whose
// value depends on input data and therefore cannot be resolved statically.
func UsesInput(e Expr) bool {
	irregular := false
	WalkExpr(e, func(x Expr) bool {
		if c, ok := x.(*Call); ok && c.Name == BuiltinInput {
			irregular = true
			return false
		}
		return true
	})
	return irregular
}
