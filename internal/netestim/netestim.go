// Package netestim estimates network message delay from observed round-trip
// times. The paper's Phase I (§3.1) uses such an estimate — citing Karn &
// Partridge [12] and RTT-measurement studies [5] — to account for
// message-passing cost when choosing the optimal checkpoint interval of a
// message-passing (rather than serial) program.
//
// The estimator is the classic Jacobson/Karels smoothed-RTT algorithm used
// by TCP, with Karn's rule (samples from retransmitted exchanges are
// discarded): srtt ← (1-α)·srtt + α·sample, rttvar ← (1-β)·rttvar +
// β·|sample-srtt|, with α=1/8 and β=1/4.
package netestim

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Default smoothing gains, per RFC 6298.
const (
	defaultAlpha = 1.0 / 8.0
	defaultBeta  = 1.0 / 4.0
)

// Estimator tracks a smoothed round-trip time and its variance. The zero
// value is ready to use with the default gains.
type Estimator struct {
	mu      sync.Mutex
	alpha   float64
	beta    float64
	srtt    time.Duration
	rttvar  time.Duration
	samples int
	floor   time.Duration
}

// NewEstimator returns an estimator with custom gains. Gains outside (0,1]
// are an input error.
func NewEstimator(alpha, beta float64) (*Estimator, error) {
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("netestim: gains must be in (0,1], got alpha=%v beta=%v", alpha, beta)
	}
	return &Estimator{alpha: alpha, beta: beta}, nil
}

// ErrNoSamples is returned by estimate accessors before any sample arrives.
var ErrNoSamples = errors.New("netestim: no samples observed yet")

// Observe feeds one RTT sample. Following Karn's rule, callers must not
// feed samples from ambiguous (retransmitted) exchanges; ObserveAmbiguous
// exists to document such discards. Non-positive samples are ignored: a
// zero RTT is always a measurement artifact.
func (e *Estimator) Observe(sample time.Duration) {
	if sample <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	alpha, beta := e.alpha, e.beta
	if alpha == 0 {
		alpha, beta = defaultAlpha, defaultBeta
	}
	if e.samples == 0 {
		e.srtt = sample
		e.rttvar = sample / 2
	} else {
		dev := e.srtt - sample
		if dev < 0 {
			dev = -dev
		}
		e.rttvar = time.Duration((1-beta)*float64(e.rttvar) + beta*float64(dev))
		e.srtt = time.Duration((1-alpha)*float64(e.srtt) + alpha*float64(sample))
	}
	e.samples++
}

// ObserveAmbiguous records that a sample was discarded under Karn's rule.
// It never changes the estimate.
func (e *Estimator) ObserveAmbiguous() {
	// Intentionally empty: the method exists so call sites show the
	// discard decision explicitly.
}

// RTT returns the smoothed round-trip estimate.
func (e *Estimator) RTT() (time.Duration, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.samples == 0 {
		return 0, ErrNoSamples
	}
	return e.srtt, nil
}

// OneWayDelay returns the estimated one-way message delay (RTT/2), the
// quantity Phase I's interval model consumes.
func (e *Estimator) OneWayDelay() (time.Duration, error) {
	rtt, err := e.RTT()
	if err != nil {
		return 0, err
	}
	return rtt / 2, nil
}

// RTO returns the retransmission timeout in RFC 6298 form:
// max(floor, srtt + 4·rttvar). Before any sample arrives it returns the
// configured floor (the conservative initial timeout the RFC prescribes);
// with no floor set it returns ErrNoSamples as before.
func (e *Estimator) RTO() (time.Duration, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.samples == 0 {
		if e.floor > 0 {
			return e.floor, nil
		}
		return 0, ErrNoSamples
	}
	rto := e.srtt + 4*e.rttvar
	if rto < e.floor {
		rto = e.floor
	}
	return rto, nil
}

// SetRTOFloor sets the lower bound RTO never drops below, guarding against
// the variance collapsing to zero on a long-stable link (RFC 6298 §2.4 uses
// one second; simulated links want something far smaller). A zero floor
// restores the unbounded behaviour.
func (e *Estimator) SetRTOFloor(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if d < 0 {
		d = 0
	}
	e.floor = d
}

// Reset discards the estimate so the next sample re-initializes srtt and
// rttvar from scratch, keeping the configured gains and RTO floor. Callers
// reset after a connectivity epoch change (a healed partition, a recovered
// incarnation) when old samples no longer describe the link.
func (e *Estimator) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.srtt = 0
	e.rttvar = 0
	e.samples = 0
}

// Samples returns how many samples were accepted.
func (e *Estimator) Samples() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.samples
}

// LinearModel is the affine message-cost model the paper's §4 uses:
// cost(bits) = Setup + PerBit·bits, with Setup = w_m and PerBit = w_b.
type LinearModel struct {
	Setup  time.Duration // w_m: per-message setup time
	PerBit time.Duration // w_b: additional per-bit delay
}

// Cost returns the modeled delay of one message of the given size.
func (m LinearModel) Cost(bits int) time.Duration {
	return m.Setup + time.Duration(bits)*m.PerBit
}

// FitLinear fits a LinearModel from two (bits, delay) measurements by
// solving the 2×2 system exactly. Measurements at the same size cannot
// determine a slope.
func FitLinear(bits1 int, d1 time.Duration, bits2 int, d2 time.Duration) (LinearModel, error) {
	if bits1 == bits2 {
		return LinearModel{}, fmt.Errorf("netestim: need distinct sizes to fit, both %d bits", bits1)
	}
	perBit := float64(d2-d1) / float64(bits2-bits1)
	setup := float64(d1) - perBit*float64(bits1)
	if perBit < 0 || setup < 0 {
		return LinearModel{}, fmt.Errorf(
			"netestim: measurements imply negative cost (setup=%v perBit=%v)",
			time.Duration(setup), time.Duration(perBit))
	}
	return LinearModel{Setup: time.Duration(setup), PerBit: time.Duration(perBit)}, nil
}
