package netestim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestNewEstimatorValidatesGains(t *testing.T) {
	for _, bad := range [][2]float64{{0, 0.5}, {0.5, 0}, {1.1, 0.5}, {0.5, 1.1}, {-1, 0.5}} {
		if _, err := NewEstimator(bad[0], bad[1]); err == nil {
			t.Errorf("gains %v accepted, want error", bad)
		}
	}
	if _, err := NewEstimator(0.125, 0.25); err != nil {
		t.Errorf("valid gains rejected: %v", err)
	}
}

func TestNoSamples(t *testing.T) {
	var e Estimator
	if _, err := e.RTT(); !errors.Is(err, ErrNoSamples) {
		t.Errorf("RTT err = %v, want ErrNoSamples", err)
	}
	if _, err := e.OneWayDelay(); !errors.Is(err, ErrNoSamples) {
		t.Errorf("OneWayDelay err = %v, want ErrNoSamples", err)
	}
	if _, err := e.RTO(); !errors.Is(err, ErrNoSamples) {
		t.Errorf("RTO err = %v, want ErrNoSamples", err)
	}
}

func TestFirstSampleInitializes(t *testing.T) {
	var e Estimator
	e.Observe(100 * time.Millisecond)
	rtt, err := e.RTT()
	if err != nil || rtt != 100*time.Millisecond {
		t.Fatalf("RTT = %v, %v; want 100ms", rtt, err)
	}
	ow, _ := e.OneWayDelay()
	if ow != 50*time.Millisecond {
		t.Fatalf("OneWayDelay = %v, want 50ms", ow)
	}
	rto, _ := e.RTO()
	if rto != 300*time.Millisecond { // srtt + 4*(srtt/2)
		t.Fatalf("RTO = %v, want 300ms", rto)
	}
}

func TestSmoothingConvergesToConstant(t *testing.T) {
	var e Estimator
	for i := 0; i < 200; i++ {
		e.Observe(80 * time.Millisecond)
	}
	rtt, _ := e.RTT()
	if rtt != 80*time.Millisecond {
		t.Fatalf("constant input should converge exactly, got %v", rtt)
	}
	rto, _ := e.RTO()
	if rto >= 90*time.Millisecond {
		t.Fatalf("variance should decay under constant input: RTO = %v", rto)
	}
}

func TestIgnoresNonPositiveSamples(t *testing.T) {
	var e Estimator
	e.Observe(0)
	e.Observe(-time.Second)
	if e.Samples() != 0 {
		t.Fatal("non-positive samples were accepted")
	}
	e.Observe(time.Millisecond)
	e.ObserveAmbiguous()
	if e.Samples() != 1 {
		t.Fatalf("Samples = %d, want 1", e.Samples())
	}
}

func TestQuickEstimateWithinSampleRange(t *testing.T) {
	// The smoothed RTT always stays within [min, max] of observed samples.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var e Estimator
		lo, hi := time.Duration(1<<62), time.Duration(0)
		for i := 0; i < 50; i++ {
			s := time.Duration(1+r.Intn(1000)) * time.Millisecond
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
			e.Observe(s)
		}
		rtt, err := e.RTT()
		return err == nil && rtt >= lo && rtt <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRTOTable pins the RTO accessor's RFC 6298 form across floor
// configurations, Karn's rule under retransmission, and variance collapse
// after long stability.
func TestRTOTable(t *testing.T) {
	const ms = time.Millisecond
	cases := []struct {
		name    string
		floor   time.Duration
		feed    func(e *Estimator)
		want    time.Duration
		wantErr bool
	}{
		{
			name:    "no samples, no floor: error",
			feed:    func(*Estimator) {},
			wantErr: true,
		},
		{
			name:  "no samples with floor: floor is the initial timeout",
			floor: 100 * ms,
			feed:  func(*Estimator) {},
			want:  100 * ms,
		},
		{
			name: "first sample: srtt + 4*(srtt/2)",
			feed: func(e *Estimator) { e.Observe(10 * ms) },
			want: 30 * ms,
		},
		{
			name:  "karn: ambiguous retransmitted exchanges never move the estimate",
			floor: 1 * ms,
			feed: func(e *Estimator) {
				e.Observe(10 * ms)
				for i := 0; i < 50; i++ {
					// The wire saw 500 ms round trips on retransmitted
					// frames; Karn's rule discards every one of them.
					e.ObserveAmbiguous()
				}
			},
			want: 30 * ms,
		},
		{
			name:  "variance collapse after long stability hits the floor",
			floor: 5 * ms,
			feed: func(e *Estimator) {
				for i := 0; i < 500; i++ {
					e.Observe(1 * ms)
				}
			},
			// rttvar decays toward zero, so srtt + 4*rttvar -> 1 ms, and
			// the configured floor takes over.
			want: 5 * ms,
		},
		{
			name:  "floor below estimate is inert",
			floor: 1 * ms,
			feed:  func(e *Estimator) { e.Observe(10 * ms) },
			want:  30 * ms,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var e Estimator
			e.SetRTOFloor(tc.floor)
			tc.feed(&e)
			rto, err := e.RTO()
			if tc.wantErr {
				if !errors.Is(err, ErrNoSamples) {
					t.Fatalf("RTO err = %v, want ErrNoSamples", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if rto != tc.want {
				t.Fatalf("RTO = %v, want %v", rto, tc.want)
			}
		})
	}
}

func TestVarianceCollapseWithoutFloor(t *testing.T) {
	var e Estimator
	for i := 0; i < 500; i++ {
		e.Observe(8 * time.Millisecond)
	}
	rto, err := e.RTO()
	if err != nil {
		t.Fatal(err)
	}
	// With no floor the collapse is visible: RTO decays to (nearly) the
	// smoothed RTT itself — the failure mode SetRTOFloor exists to guard.
	if rto >= 9*time.Millisecond {
		t.Fatalf("RTO = %v, want < 9ms after variance collapse", rto)
	}
	if rto < 8*time.Millisecond {
		t.Fatalf("RTO = %v fell below srtt", rto)
	}
}

func TestResetClearsEstimateKeepsFloor(t *testing.T) {
	var e Estimator
	e.SetRTOFloor(7 * time.Millisecond)
	e.Observe(100 * time.Millisecond)
	e.Reset()
	if e.Samples() != 0 {
		t.Fatalf("Samples = %d after Reset, want 0", e.Samples())
	}
	if _, err := e.RTT(); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("RTT err = %v, want ErrNoSamples", err)
	}
	rto, err := e.RTO()
	if err != nil || rto != 7*time.Millisecond {
		t.Fatalf("RTO = %v, %v; want floor 7ms", rto, err)
	}
	// The next sample re-initializes, not smooths against the old state.
	e.Observe(20 * time.Millisecond)
	rtt, _ := e.RTT()
	if rtt != 20*time.Millisecond {
		t.Fatalf("RTT after reset+observe = %v, want 20ms", rtt)
	}
}

func TestLinearModelCost(t *testing.T) {
	m := LinearModel{Setup: time.Millisecond, PerBit: time.Microsecond}
	if got := m.Cost(8); got != time.Millisecond+8*time.Microsecond {
		t.Fatalf("Cost(8) = %v", got)
	}
	if got := m.Cost(0); got != time.Millisecond {
		t.Fatalf("Cost(0) = %v, want setup only", got)
	}
}

func TestFitLinear(t *testing.T) {
	want := LinearModel{Setup: 2 * time.Millisecond, PerBit: 3 * time.Microsecond}
	got, err := FitLinear(100, want.Cost(100), 1000, want.Cost(1000))
	if err != nil {
		t.Fatal(err)
	}
	if got.Setup != want.Setup || got.PerBit != want.PerBit {
		t.Fatalf("FitLinear = %+v, want %+v", got, want)
	}
}

func TestFitLinearRejectsDegenerate(t *testing.T) {
	if _, err := FitLinear(100, time.Second, 100, 2*time.Second); err == nil {
		t.Error("same-size measurements accepted")
	}
	// Decreasing cost with size implies negative per-bit delay.
	if _, err := FitLinear(100, 2*time.Second, 1000, time.Second); err == nil {
		t.Error("negative slope accepted")
	}
}

func TestQuickFitLinearRoundTrip(t *testing.T) {
	f := func(setupMs, perBitNs uint16, b1, b2 uint8) bool {
		if b1 == b2 {
			return true
		}
		m := LinearModel{
			Setup:  time.Duration(setupMs) * time.Millisecond,
			PerBit: time.Duration(perBitNs) * time.Nanosecond,
		}
		got, err := FitLinear(int(b1), m.Cost(int(b1)), int(b2), m.Cost(int(b2)))
		if err != nil {
			return false
		}
		// Allow 1ns rounding slack from the float math.
		dS := got.Setup - m.Setup
		if dS < 0 {
			dS = -dS
		}
		dP := got.PerBit - m.PerBit
		if dP < 0 {
			dP = -dP
		}
		return dS <= time.Nanosecond && dP <= time.Nanosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
