// Package insert implements Phase I of the paper (§3.1): static insertion
// of application-level checkpoint statements into a message-passing
// program, guided by an optimal-checkpoint-interval model, plus the
// equalization step the paper notes ("we may add/remove some of the
// checkpoints to ensure that every path of the CFG has the same number of
// checkpoint nodes").
//
// Interval selection follows the classic first-order optimum (Young's
// formula, in the lineage of Chandy & Ramamoorthy [8] and Toueg &
// Babaoglu [22] the paper cites): T_opt = sqrt(2·o/λ) for checkpoint
// overhead o and failure rate λ. For a message-passing (rather than
// serial) program the per-iteration cost model includes an estimated
// message delay (§3.1's network-delay estimation), typically obtained from
// a netestim.Estimator.
package insert

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mpl"
	"repro/internal/netestim"
)

// CostModel assigns abstract execution costs to statements for interval
// planning. Costs are in the same unit as the interval (seconds in the
// paper's parameterization).
type CostModel struct {
	// Compute is the cost of one assignment or one unit of work(n).
	Compute float64
	// MessageDelay is the one-way message delay added per send/recv/bcast.
	MessageDelay float64
	// CheckpointOverhead is o, the execution-time increase per checkpoint.
	CheckpointOverhead float64
	// FailureRate is λ, per-process failures per time unit.
	FailureRate float64
}

// DefaultCostModel uses the paper's §4 constants: o = 1.78 s and
// λ = 1.23e-6 /s, with a 1 ms message delay.
var DefaultCostModel = CostModel{
	Compute:            0.001,
	MessageDelay:       0.001,
	CheckpointOverhead: 1.78,
	FailureRate:        1.23e-6,
}

// CostModelFromEstimator builds a cost model whose message delay comes
// from live RTT measurements (§3.1: "before applying this phase, we
// estimate the message delay in the network"). The estimator must have
// observed at least one sample.
func CostModelFromEstimator(base CostModel, est *netestim.Estimator) (CostModel, error) {
	delay, err := est.OneWayDelay()
	if err != nil {
		return CostModel{}, fmt.Errorf("insert: estimate message delay: %w", err)
	}
	base.MessageDelay = delay.Seconds()
	return base, nil
}

// YoungInterval returns the first-order optimal checkpoint interval
// sqrt(2·o/λ). It returns an error for non-positive parameters.
func YoungInterval(o, lambda float64) (float64, error) {
	if o <= 0 || lambda <= 0 {
		return 0, fmt.Errorf("insert: interval parameters must be positive: o=%v lambda=%v", o, lambda)
	}
	return math.Sqrt(2 * o / lambda), nil
}

// EstimateBodyCost estimates the cost of executing a statement list once.
// work(e) counts its (statically-evaluable) amount times Compute; loops
// count their body once (the per-iteration estimate the interval planner
// needs).
func EstimateBodyCost(body []mpl.Stmt, cm CostModel) float64 {
	total := 0.0
	for _, s := range body {
		switch st := s.(type) {
		case *mpl.Assign:
			total += cm.Compute
		case *mpl.Work:
			units := 1
			if lit, ok := st.Amount.(*mpl.IntLit); ok && lit.Value > 0 {
				units = lit.Value
			}
			total += float64(units) * cm.Compute
		case *mpl.Send, *mpl.Recv:
			total += cm.MessageDelay
		case *mpl.Bcast, *mpl.Reduce:
			// Root-side fan plus delivery: counted as two message delays.
			total += 2 * cm.MessageDelay
		case *mpl.Chkpt:
			total += cm.CheckpointOverhead
		case *mpl.While:
			total += cm.Compute + EstimateBodyCost(st.Body, cm)
		case *mpl.If:
			thenCost := EstimateBodyCost(st.Then, cm)
			elseCost := EstimateBodyCost(st.Else, cm)
			total += cm.Compute + math.Max(thenCost, elseCost)
		}
	}
	return total
}

// Plan reports what Phase I did.
type Plan struct {
	// Inserted lists the statement ids of newly added chkpt statements.
	Inserted []int
	// OptimalInterval is T_opt from Young's formula.
	OptimalInterval float64
	// IterationCost is the estimated cost of one outermost-loop iteration
	// (0 when the program has no loops).
	IterationCost float64
	// IterationsPerCheckpoint is the recommended number of iterations
	// between checkpoints, max(1, round(T_opt / IterationCost)). The
	// inserted checkpoints are unconditional (every iteration): skipping
	// iterations would require a data-dependent branch that the straight-
	// cut indexing of §2 cannot validate statically. The recommendation is
	// reported so callers can scale loop granularity instead.
	IterationsPerCheckpoint int
	// Equalized lists ids of chkpt statements added by equalization.
	Equalized []int
}

// InsertCheckpoints adds checkpoint statements to a program that has none:
// one at the top of each outermost loop body (the paper's canonical
// placement, Figure 1), or one at the start of the program when it is
// loop-free. Programs that already contain checkpoints are returned
// unchanged except for equalization (Phase I is optional, §3.1). The input
// program is mutated.
func InsertCheckpoints(p *mpl.Program, cm CostModel) (*Plan, error) {
	plan := &Plan{}
	tOpt, err := YoungInterval(cm.CheckpointOverhead, cm.FailureRate)
	if err != nil {
		return nil, err
	}
	plan.OptimalInterval = tOpt

	hasChkpt := false
	mpl.Walk(p.Body, func(s mpl.Stmt) bool {
		if _, ok := s.(*mpl.Chkpt); ok {
			hasChkpt = true
			return false
		}
		return true
	})

	nextID := p.MaxStmtID() + 1
	if !hasChkpt {
		var loops []*mpl.While
		for _, s := range p.Body { // outermost loops only
			if w, ok := s.(*mpl.While); ok {
				loops = append(loops, w)
			}
		}
		if len(loops) > 0 {
			for _, w := range loops {
				ck := &mpl.Chkpt{StmtBase: mpl.StmtBase{StmtID: nextID}}
				nextID++
				w.Body = append([]mpl.Stmt{ck}, w.Body...)
				plan.Inserted = append(plan.Inserted, ck.ID())
			}
			plan.IterationCost = EstimateBodyCost(loops[0].Body, cm)
		} else {
			ck := &mpl.Chkpt{StmtBase: mpl.StmtBase{StmtID: nextID}}
			nextID++
			p.Body = append([]mpl.Stmt{ck}, p.Body...)
			plan.Inserted = append(plan.Inserted, ck.ID())
		}
	} else {
		for _, s := range p.Body {
			if w, ok := s.(*mpl.While); ok {
				plan.IterationCost = EstimateBodyCost(w.Body, cm)
				break
			}
		}
	}

	if plan.IterationCost > 0 {
		k := int(math.Round(tOpt / plan.IterationCost))
		if k < 1 {
			k = 1
		}
		plan.IterationsPerCheckpoint = k
	} else {
		plan.IterationsPerCheckpoint = 1
	}

	eq, err := Equalize(p)
	if err != nil {
		return nil, err
	}
	plan.Equalized = eq
	return plan, nil
}

// maxEqualizeRounds bounds the equalization fixpoint; each round fixes at
// least one if statement, so the program's statement count bounds the real
// work.
const maxEqualizeRounds = 1000

// Equalize repairs checkpoint-count imbalances between if branches by
// prepending checkpoint statements to the lighter branch, until every path
// carries the same number of checkpoints (checkpoint enumeration becomes
// unambiguous). It returns the ids of the added statements. The program is
// mutated.
//
// Prepending (rather than appending) matters for Phase III convergence: a
// checkpoint at the very start of a branch can only be reached causally
// through the branch's dominating if node, so within one loop iteration it
// cannot sit downstream of a message and re-trigger the movement that
// emptied the branch in the first place.
func Equalize(p *mpl.Program) ([]int, error) {
	var added []int
	nextID := p.MaxStmtID() + 1
	for round := 0; round < maxEqualizeRounds; round++ {
		// Probe for imbalance directly instead of running cfg.Enumerate and
		// parsing its error: the fixpoint rounds of Phase III call Equalize
		// constantly, and the direct walk finds the same innermost-first
		// offending if statement without building an enumeration map.
		ifStmt := firstUnbalanced(p.Body)
		if ifStmt == nil {
			return added, nil
		}
		thenN := countChkpts(ifStmt.Then)
		elseN := countChkpts(ifStmt.Else)
		if thenN == elseN {
			return nil, fmt.Errorf("insert: equalization stuck at %s (counts already equal)", mpl.DescribeStmt(ifStmt))
		}
		deficit := thenN - elseN
		lighter := &ifStmt.Else
		if deficit < 0 {
			deficit = -deficit
			lighter = &ifStmt.Then
		}
		for i := 0; i < deficit; i++ {
			ck := &mpl.Chkpt{StmtBase: mpl.StmtBase{StmtID: nextID}}
			nextID++
			*lighter = append([]mpl.Stmt{ck}, *lighter...)
			added = append(added, ck.ID())
		}
	}
	return nil, errors.New("insert: equalization did not converge")
}

// firstUnbalanced finds the first if statement (innermost-first, in program
// order — matching cfg.Enumerate's error detection order) whose branches
// carry different checkpoint counts. Nil when every if is balanced, i.e.
// checkpoint enumeration is unambiguous.
func firstUnbalanced(body []mpl.Stmt) *mpl.If {
	for _, s := range body {
		switch st := s.(type) {
		case *mpl.While:
			if f := firstUnbalanced(st.Body); f != nil {
				return f
			}
		case *mpl.If:
			if f := firstUnbalanced(st.Then); f != nil {
				return f
			}
			if f := firstUnbalanced(st.Else); f != nil {
				return f
			}
			if countChkpts(st.Then) != countChkpts(st.Else) {
				return st
			}
		}
	}
	return nil
}

// countChkpts counts checkpoint statements in a body, where loop bodies
// count once and balanced if branches count once (mirroring enumeration).
// For unbalanced branches it returns the maximum, which is what the
// deficit computation needs.
func countChkpts(body []mpl.Stmt) int {
	n := 0
	for _, s := range body {
		switch st := s.(type) {
		case *mpl.Chkpt:
			n++
		case *mpl.While:
			n += countChkpts(st.Body)
		case *mpl.If:
			tn, en := countChkpts(st.Then), countChkpts(st.Else)
			if en > tn {
				tn = en
			}
			n += tn
		}
	}
	return n
}

// Coalesce removes redundant immediately-adjacent checkpoint statements
// (two chkpts with no intervening statement), which checkpoint movement
// can produce. It returns the number of statements removed. The program is
// mutated.
func Coalesce(p *mpl.Program) int {
	removed := 0
	var fix func(body []mpl.Stmt) []mpl.Stmt
	fix = func(body []mpl.Stmt) []mpl.Stmt {
		out := body[:0]
		prevChkpt := false
		for _, s := range body {
			if _, ok := s.(*mpl.Chkpt); ok {
				if prevChkpt {
					removed++
					continue
				}
				prevChkpt = true
			} else {
				prevChkpt = false
				switch st := s.(type) {
				case *mpl.While:
					st.Body = fix(st.Body)
				case *mpl.If:
					st.Then = fix(st.Then)
					st.Else = fix(st.Else)
				}
			}
			out = append(out, s)
		}
		return out
	}
	p.Body = fix(p.Body)
	return removed
}
