package insert

import (
	"math"
	"testing"
	"time"

	"repro/internal/cfg"
	"repro/internal/corpus"
	"repro/internal/mpl"
	"repro/internal/netestim"
)

func mustParse(t *testing.T, src string) *mpl.Program {
	t.Helper()
	p, err := mpl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func countChkptStmts(p *mpl.Program) int {
	n := 0
	mpl.Walk(p.Body, func(s mpl.Stmt) bool {
		if _, ok := s.(*mpl.Chkpt); ok {
			n++
		}
		return true
	})
	return n
}

func TestYoungInterval(t *testing.T) {
	got, err := YoungInterval(1.78, 1.23e-6)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(2 * 1.78 / 1.23e-6)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("interval = %v, want %v", got, want)
	}
	if _, err := YoungInterval(0, 1); err == nil {
		t.Error("o=0 accepted")
	}
	if _, err := YoungInterval(1, -1); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestEstimateBodyCost(t *testing.T) {
	p := mustParse(t, `
program cost
var x
proc {
    x = 1
    work(10)
    send(rank + 1, x)
    recv(rank - 1, x)
    if rank == 0 {
        work(100)
    } else {
        work(10)
    }
}
`)
	cm := CostModel{Compute: 1, MessageDelay: 5}
	got := EstimateBodyCost(p.Body, cm)
	// assign(1) + work(10) + send(5) + recv(5) + if(1 + max(100,10))
	want := 1.0 + 10 + 5 + 5 + 1 + 100
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("cost = %v, want %v", got, want)
	}
}

func TestInsertIntoLoop(t *testing.T) {
	p := mustParse(t, `
program bare
var x, i
proc {
    i = 0
    while i < 10 {
        x = x + 1
        i = i + 1
    }
}
`)
	plan, err := InsertCheckpoints(p, DefaultCostModel)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Inserted) != 1 {
		t.Fatalf("inserted = %v", plan.Inserted)
	}
	w := p.Body[1].(*mpl.While)
	if _, ok := w.Body[0].(*mpl.Chkpt); !ok {
		t.Fatalf("checkpoint not at loop top: %T", w.Body[0])
	}
	if plan.IterationCost <= 0 {
		t.Error("iteration cost not estimated")
	}
	if plan.IterationsPerCheckpoint < 1 {
		t.Errorf("k = %d", plan.IterationsPerCheckpoint)
	}
	if plan.OptimalInterval <= 0 {
		t.Error("optimal interval missing")
	}
	// The result must enumerate cleanly.
	if _, err := cfg.Enumerate(p); err != nil {
		t.Errorf("inserted program does not enumerate: %v", err)
	}
}

func TestInsertLoopFree(t *testing.T) {
	p := mustParse(t, `
program flat
var x
proc {
    x = 1
    x = x * 2
}
`)
	plan, err := InsertCheckpoints(p, DefaultCostModel)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Inserted) != 1 {
		t.Fatalf("inserted = %v", plan.Inserted)
	}
	if _, ok := p.Body[0].(*mpl.Chkpt); !ok {
		t.Fatalf("checkpoint not at program start: %T", p.Body[0])
	}
}

func TestInsertSkipsProgramsWithCheckpoints(t *testing.T) {
	p := corpus.JacobiFig1(3)
	before := countChkptStmts(p)
	plan, err := InsertCheckpoints(p, DefaultCostModel)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Inserted) != 0 {
		t.Errorf("inserted %v into a program that has checkpoints", plan.Inserted)
	}
	if countChkptStmts(p) != before {
		t.Error("checkpoint count changed")
	}
}

func TestInsertMultipleOutermostLoops(t *testing.T) {
	p := mustParse(t, `
program twoloop
var i, j
proc {
    i = 0
    while i < 5 {
        i = i + 1
    }
    j = 0
    while j < 5 {
        j = j + 1
    }
}
`)
	plan, err := InsertCheckpoints(p, DefaultCostModel)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Inserted) != 2 {
		t.Fatalf("inserted = %v, want one per loop", plan.Inserted)
	}
	if _, err := cfg.Enumerate(p); err != nil {
		t.Errorf("enumeration failed: %v", err)
	}
}

func TestEqualizeSimpleImbalance(t *testing.T) {
	p := mustParse(t, `
program amb
var x
proc {
    if rank == 0 {
        chkpt
    }
    x = 1
}
`)
	added, err := Equalize(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 1 {
		t.Fatalf("added = %v, want 1", added)
	}
	enum, err := cfg.Enumerate(p)
	if err != nil {
		t.Fatalf("still ambiguous: %v", err)
	}
	if enum.Count != 1 {
		t.Errorf("Count = %d", enum.Count)
	}
	ifStmt := p.Body[0].(*mpl.If)
	if len(ifStmt.Else) != 1 {
		t.Fatalf("else branch = %v", ifStmt.Else)
	}
	if _, ok := ifStmt.Else[0].(*mpl.Chkpt); !ok {
		t.Error("equalization did not add a checkpoint to else")
	}
}

func TestEqualizeNested(t *testing.T) {
	p := mustParse(t, `
program nested
var x
proc {
    if rank < 4 {
        if rank < 2 {
            chkpt
            chkpt
        } else {
            chkpt
        }
    } else {
        x = 1
    }
}
`)
	added, err := Equalize(p)
	if err != nil {
		t.Fatal(err)
	}
	// Inner else needs 1, outer else needs 2.
	if len(added) != 3 {
		t.Errorf("added = %d checkpoints, want 3", len(added))
	}
	if _, err := cfg.Enumerate(p); err != nil {
		t.Errorf("still ambiguous: %v", err)
	}
}

func TestEqualizeNoOpOnBalanced(t *testing.T) {
	p := corpus.JacobiFig2(2)
	added, err := Equalize(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 0 {
		t.Errorf("added %v to a balanced program", added)
	}
}

func TestEqualizeFreshIDsUnique(t *testing.T) {
	p := mustParse(t, `
program amb2
var x
proc {
    if rank == 0 {
        chkpt
        chkpt
    }
    x = 1
}
`)
	if _, err := Equalize(p); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	mpl.Walk(p.Body, func(s mpl.Stmt) bool {
		if seen[s.ID()] {
			t.Errorf("duplicate statement id %d after equalize", s.ID())
		}
		seen[s.ID()] = true
		return true
	})
}

func TestCoalesce(t *testing.T) {
	p := mustParse(t, `
program dup
var x
proc {
    chkpt
    chkpt
    x = 1
    chkpt
    while x < 3 {
        chkpt
        chkpt
        x = x + 1
    }
}
`)
	removed := Coalesce(p)
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	if got := countChkptStmts(p); got != 3 {
		t.Errorf("remaining checkpoints = %d, want 3", got)
	}
	// Idempotent.
	if again := Coalesce(p); again != 0 {
		t.Errorf("second coalesce removed %d", again)
	}
}

func TestCoalesceKeepsSeparatedCheckpoints(t *testing.T) {
	p := corpus.JacobiFig1(2)
	if removed := Coalesce(p); removed != 0 {
		t.Errorf("coalesce removed %d from a clean program", removed)
	}
}

func TestCostModelFromEstimator(t *testing.T) {
	var est netestim.Estimator
	if _, err := CostModelFromEstimator(DefaultCostModel, &est); err == nil {
		t.Fatal("empty estimator accepted")
	}
	est.Observe(20 * time.Millisecond)
	cm, err := CostModelFromEstimator(DefaultCostModel, &est)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cm.MessageDelay-0.010) > 1e-9 {
		t.Errorf("MessageDelay = %v, want 0.010 (RTT/2)", cm.MessageDelay)
	}
	// Other fields untouched.
	if cm.CheckpointOverhead != DefaultCostModel.CheckpointOverhead {
		t.Error("unrelated fields changed")
	}
}

func BenchmarkInsertCheckpoints(b *testing.B) {
	src := `
program bench
var x, i
proc {
    i = 0
    while i < 10 {
        x = x + 1
        i = i + 1
    }
}
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := mpl.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := InsertCheckpoints(p, DefaultCostModel); err != nil {
			b.Fatal(err)
		}
	}
}
