package fleet

import (
	"testing"

	"repro/internal/storage"
)

// BenchmarkFleetThroughput measures end-to-end fleet job throughput on a
// clean shared store: admission, namespacing, the breaker fast path, the
// full checkpointed sim run, and taxonomy accounting per op.
func BenchmarkFleetThroughput(b *testing.B) {
	// MaxInFlight = b.N so back-to-back arrivals are all ADMITTED and
	// ns/op means per-job cost of the saturated batch; with a smaller cap
	// the open-loop arrival stream would outrun the workers and the bench
	// would mostly measure rejections.
	e := New(Config{Jobs: b.N, MaxInFlight: b.N, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	rep, err := e.Run()
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if rep.Admitted != int64(b.N) {
		b.Fatalf("admitted %d of %d", rep.Admitted, b.N)
	}
	b.ReportMetric(rep.JobsPerSec, "jobs/s")
}

// BenchmarkFleetChaosThroughput is the same fleet under storage chaos:
// the price of retries, breaker accounting, and crash-recovery traffic.
func BenchmarkFleetChaosThroughput(b *testing.B) {
	e := New(Config{
		Jobs: b.N, MaxInFlight: b.N, Seed: 1,
		StorageFaultRate: 0.04, CrashLambda: 0.4,
	})
	b.ReportAllocs()
	b.ResetTimer()
	rep, err := e.Run()
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.JobsPerSec, "jobs/s")
}

// BenchmarkBreakerClosedPath measures the breaker's per-op overhead on the
// hot (closed, healthy) path that every storage operation in the fleet
// pays.
func BenchmarkBreakerClosedPath(b *testing.B) {
	br := NewBreaker(nopStore{}, BreakerConfig{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.Latest(0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

type nopStore struct{ storage.Store }

func (nopStore) Latest(proc, cfgIndex int) (storage.Snapshot, error) {
	return storage.Snapshot{}, nil
}
