package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Config shapes one fleet run.
type Config struct {
	// Jobs is how many arrivals to generate (a drain may stop the stream
	// early; arrivals after StartDrain are rejected, not queued).
	Jobs int
	// Nproc is each job's process count. Default 3.
	Nproc int
	// Iters sizes each job's Jacobi iteration count. Default 3.
	Iters int
	// ArrivalRate is the open-loop Poisson arrival rate in jobs/second;
	// <= 0 disables pacing (arrivals are generated back to back — the
	// bench and soak configuration).
	ArrivalRate float64
	// MaxInFlight caps fleet-wide concurrent jobs (admission control) and
	// sizes the worker pool. Default 32.
	MaxInFlight int
	// Tenants partitions the fleet; empty means one unlimited tenant
	// "default". Arrivals draw tenants by Weight.
	Tenants []TenantConfig
	// Seed drives every random choice (arrivals, tenants, chaos, business
	// verdicts). Same seed, same fleet.
	Seed int64
	// StorageFaultRate turns on seeded storage chaos on the SHARED store
	// (every job feels the same brownouts). 0 disables.
	StorageFaultRate float64
	// CrashLambda is the per-job expected injected crashes (Poisson,
	// distinct per job by seed). 0 disables.
	CrashLambda float64
	// NetFaultRate turns on per-job network chaos (drop/dup/reorder) at
	// the given rate. 0 disables.
	NetFaultRate float64
	// BusinessFailRate is the fraction of jobs whose outcome is a
	// simulated application-owned failure (ErrBusiness) — the
	// business-vs-infrastructure split. Drawn per job from Seed.
	BusinessFailRate float64
	// Breaker tunes the shared store's circuit breaker.
	Breaker BreakerConfig
	// RetryBudgetPerJob is deposited into the job's tenant budget at
	// admission (default 4); RetryBudgetCap bounds each tenant's pool
	// (default 64 × RetryBudgetPerJob). RetryBudgetPerJob < 0 disables
	// budgets entirely (attempt caps alone bound retry).
	RetryBudgetPerJob int64
	RetryBudgetCap    int64
	// Store is the shared backing store. Default: fresh in-memory store.
	Store storage.Store
	// NoPrune persists full variable environments instead of each job's
	// liveness-minimized checkpoint manifests (the A/B lane for measuring
	// what pruning saves fleet-wide).
	NoPrune bool
	// DrainTimeout bounds how long drain waits for in-flight jobs before
	// cancel-parking them. Default 30s.
	DrainTimeout time.Duration
	// JobTimeout is each job's sim watchdog. Default 30s.
	JobTimeout time.Duration
	// Observer taps every job's runtime events plus the fleet's own
	// admit/reject/jobdone/breaker/drain events — point the telemetry
	// aggregator here. Optional.
	Observer obs.Observer
	// Counters is the shared metrics sink (fleet gauges and counters ride
	// it to /metrics). Optional; a private one is used when nil.
	Counters *metrics.Counters
}

func (c *Config) fill() {
	if c.Nproc <= 0 {
		c.Nproc = 3
	}
	if c.Iters <= 0 {
		c.Iters = 3
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 32
	}
	if len(c.Tenants) == 0 {
		c.Tenants = []TenantConfig{{Name: "default"}}
	}
	if c.RetryBudgetPerJob == 0 {
		c.RetryBudgetPerJob = 4
	}
	if c.RetryBudgetCap <= 0 {
		c.RetryBudgetCap = 64 * c.RetryBudgetPerJob
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 30 * time.Second
	}
	if c.Counters == nil {
		c.Counters = &metrics.Counters{}
	}
}

// Report is a completed fleet run's accounting.
type Report struct {
	Arrivals int64            // jobs that arrived (admitted + rejected)
	Admitted int64            // jobs that entered the fleet
	Rejected map[string]int64 // refusals by reason
	Buckets  map[string]int64 // terminal taxonomy of admitted jobs
	Breaker  BreakerStats
	// DrainDur is how long drain took; DrainParked reports whether the
	// deadline expired and in-flight jobs were cancel-parked.
	DrainDur    time.Duration
	DrainParked bool
	Elapsed     time.Duration
	JobsPerSec  float64
}

// RejectedTotal sums refusals across reasons.
func (r *Report) RejectedTotal() int64 {
	var n int64
	for _, v := range r.Rejected {
		n += v
	}
	return n
}

// Conserved is the no-silent-loss check: every arrival was admitted or
// rejected, and every admitted job reached exactly one taxonomy bucket.
func (r *Report) Conserved() bool {
	var buckets int64
	for _, b := range Buckets {
		buckets += r.Buckets[b]
	}
	return r.Arrivals == r.Admitted+r.RejectedTotal() && r.Admitted == buckets
}

// String renders the taxonomy table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fleet: %d arrivals in %v (%.1f jobs/s admitted)\n",
		r.Arrivals, r.Elapsed.Round(time.Millisecond), r.JobsPerSec)
	fmt.Fprintf(&sb, "  admitted           %6d\n", r.Admitted)
	for _, b := range Buckets {
		fmt.Fprintf(&sb, "    %-16s %6d\n", b, r.Buckets[b])
	}
	reasons := make([]string, 0, len(r.Rejected))
	for reason := range r.Rejected {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	fmt.Fprintf(&sb, "  rejected           %6d\n", r.RejectedTotal())
	for _, reason := range reasons {
		fmt.Fprintf(&sb, "    %-16s %6d\n", reason, r.Rejected[reason])
	}
	fmt.Fprintf(&sb, "  breaker            opened=%d shed=%d\n", r.Breaker.Opened, r.Breaker.Shed)
	fmt.Fprintf(&sb, "  drain              %v (parked=%v)\n", r.DrainDur.Round(time.Millisecond), r.DrainParked)
	fmt.Fprintf(&sb, "  conserved          %v\n", r.Conserved())
	return sb.String()
}

// Engine drives one fleet run. Build with New, start with Run; Drain may
// be called from any goroutine (SIGTERM handler) to begin graceful
// shutdown early.
type Engine struct {
	cfg Config

	adm     *Admission
	brk     *Breaker
	budgets map[string]*RetryBudget

	drainCh    chan struct{} // closed by Drain: stop generating arrivals
	drainOnce  sync.Once
	cancelJobs chan struct{} // closed at the drain deadline: park in-flight jobs

	mu      sync.Mutex
	buckets map[string]int64
}

// New builds an engine (validating nothing beyond defaults: a zero Config
// is a small but runnable fleet).
func New(cfg Config) *Engine {
	cfg.fill()
	st := cfg.Store
	if st == nil {
		st = storage.NewMemory()
	}
	if cfg.StorageFaultRate > 0 {
		st = chaos.New(st, cfg.Seed^0x9e3779b9, chaos.DefaultRates(cfg.StorageFaultRate), cfg.Observer)
	}
	e := &Engine{
		cfg:        cfg,
		adm:        NewAdmission(cfg.MaxInFlight, cfg.Tenants, cfg.Counters, cfg.Observer),
		brk:        NewBreaker(st, withTelemetry(cfg.Breaker, cfg.Counters, cfg.Observer)),
		budgets:    make(map[string]*RetryBudget),
		drainCh:    make(chan struct{}),
		cancelJobs: make(chan struct{}),
		buckets:    make(map[string]int64),
	}
	if cfg.RetryBudgetPerJob > 0 {
		for _, t := range cfg.Tenants {
			e.budgets[t.Name] = NewRetryBudget(cfg.RetryBudgetPerJob, cfg.RetryBudgetCap)
		}
	}
	return e
}

// withTelemetry defaults the breaker's sinks to the engine's.
func withTelemetry(b BreakerConfig, c *metrics.Counters, o obs.Observer) BreakerConfig {
	if b.Counters == nil {
		b.Counters = c
	}
	if b.Obs == nil {
		b.Obs = o
	}
	return b
}

// Breaker exposes the shared store's breaker (reports, tests).
func (e *Engine) Breaker() *Breaker { return e.brk }

// Drain begins graceful shutdown: the arrival stream stops, admissions
// are refused with ReasonDraining, and Run proceeds to its drain phase —
// in-flight jobs get DrainTimeout to finish before being cancel-parked.
// Safe to call from any goroutine, any number of times.
func (e *Engine) Drain() {
	e.drainOnce.Do(func() {
		e.adm.StartDrain()
		close(e.drainCh)
	})
}

// Run generates the arrival stream, drives every admitted job to a
// terminal bucket, drains, and reports. It is a single-shot: build a new
// Engine per run.
func (e *Engine) Run() (*Report, error) {
	cfg := e.cfg
	start := time.Now()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pool := par.NewPool(cfg.MaxInFlight)

	rep := &Report{
		Rejected: make(map[string]int64),
		Buckets:  make(map[string]int64),
	}
	var wg sync.WaitGroup

arrivals:
	for j := 0; j < cfg.Jobs; j++ {
		if cfg.ArrivalRate > 0 && j > 0 {
			// Open-loop Poisson arrivals: exponential inter-arrival gaps on
			// the fleet's own clock, cut short only by a drain request.
			gap := time.Duration(rng.ExpFloat64() / cfg.ArrivalRate * float64(time.Second))
			select {
			case <-time.After(gap):
			case <-e.drainCh:
				break arrivals
			}
		} else {
			select {
			case <-e.drainCh:
				break arrivals
			default:
			}
		}
		rep.Arrivals++
		tenant := e.pickTenant(rng)
		release, err := e.adm.TryAdmit(tenant)
		if err != nil {
			var aerr *AdmissionError
			if errors.As(err, &aerr) {
				rep.Rejected[aerr.Reason]++
			}
			continue
		}
		rep.Admitted++
		if b := e.budgets[tenant]; b != nil {
			b.Deposit(cfg.RetryBudgetPerJob)
		}
		jobID := j
		jobSeed := cfg.Seed ^ (int64(jobID)+1)*0x5deece66d
		business := cfg.BusinessFailRate > 0 && splitmixFrac(jobSeed) < cfg.BusinessFailRate
		wg.Add(1)
		pool.Submit(func() {
			defer wg.Done()
			err := e.runJob(jobID, jobSeed, tenant, business)
			bucket := Classify(err)
			e.mu.Lock()
			e.buckets[bucket]++
			e.mu.Unlock()
			cfg.Counters.Inc("fleet_"+bucket, 1)
			if cfg.Observer != nil {
				label := ""
				if err != nil {
					label = err.Error()
				}
				cfg.Observer.OnEvent(obs.Event{
					Kind: obs.KindJobDone, Proc: -1, Inc: jobID,
					Tag: bucket, Label: label,
				})
			}
			release()
		})
	}

	// Drain: no more admissions (either the stream is exhausted or Drain
	// fired); give in-flight jobs the deadline, then park the rest.
	e.Drain()
	drainStart := time.Now()
	if cfg.Observer != nil {
		cfg.Observer.OnEvent(obs.Event{Kind: obs.KindDrain, Proc: -1, Label: "begin",
			Tag: fmt.Sprintf("inflight=%d", e.adm.Active())})
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(cfg.DrainTimeout):
		rep.DrainParked = true
		close(e.cancelJobs)
		if cfg.Observer != nil {
			cfg.Observer.OnEvent(obs.Event{Kind: obs.KindDrain, Proc: -1, Label: "park",
				Tag: fmt.Sprintf("inflight=%d", e.adm.Active())})
		}
		<-done // cancellation unblocks every job promptly
	}
	pool.Close()
	rep.DrainDur = time.Since(drainStart)
	rep.Elapsed = time.Since(start)
	cfg.Counters.SetGauge("drain_seconds", rep.DrainDur.Seconds())
	if cfg.Observer != nil {
		cfg.Observer.OnEvent(obs.Event{Kind: obs.KindDrain, Proc: -1, Label: "done",
			Tag: fmt.Sprintf("%.3fs", rep.DrainDur.Seconds())})
	}

	e.mu.Lock()
	for b, n := range e.buckets {
		rep.Buckets[b] = n
	}
	e.mu.Unlock()
	rep.Breaker = e.brk.Stats()
	if rep.Elapsed > 0 {
		rep.JobsPerSec = float64(rep.Admitted) / rep.Elapsed.Seconds()
	}
	if !rep.Conserved() {
		return rep, fmt.Errorf("fleet: taxonomy violated: %d arrivals, %d admitted, %d rejected, buckets %v",
			rep.Arrivals, rep.Admitted, rep.RejectedTotal(), rep.Buckets)
	}
	return rep, nil
}

// pickTenant draws a tenant by weight.
func (e *Engine) pickTenant(rng *rand.Rand) string {
	ts := e.cfg.Tenants
	if len(ts) == 1 {
		return ts[0].Name
	}
	// Weight <= 0 counts as 1 (see TenantConfig).
	var total float64
	for _, t := range ts {
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		total += w
	}
	x := rng.Float64() * total
	for _, t := range ts {
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		x -= w
		if x < 0 {
			return t.Name
		}
	}
	return ts[len(ts)-1].Name
}

// runJob drives one admitted job to its terminal error (nil = success).
func (e *Engine) runJob(jobID int, jobSeed int64, tenant string, business bool) error {
	cfg := e.cfg
	ns, err := storage.NewNamespace(e.brk, jobID, cfg.Nproc)
	if err != nil {
		return err
	}
	sc := sim.Config{
		Program:  corpus.JacobiFig1(cfg.Iters),
		Nproc:    cfg.Nproc,
		Store:    ns,
		NoPrune:  cfg.NoPrune,
		Input:    func(rank, i int) int { return rank + i },
		Jitter:   jobSeed | 1, // nonzero: every job explores its own schedule
		Timeout:  cfg.JobTimeout,
		Cancel:   e.cancelJobs,
		Observer: cfg.Observer,
		Counters: cfg.Counters,
		Retry:    &sim.RetryPolicy{},
	}
	if b := e.budgets[tenant]; b != nil {
		// Assigned only when present: a nil *RetryBudget boxed into the
		// interface would pass the retry layer's nil check and panic.
		sc.Retry.Budget = b
	}
	restarts := 1
	if cfg.CrashLambda > 0 {
		sc.Crashes = chaos.CrashSchedule(jobSeed, chaos.ScheduleConfig{
			Nproc: cfg.Nproc, Lambda: cfg.CrashLambda, MaxIncarnations: 2,
		})
		restarts += len(sc.Crashes)
	}
	if cfg.NetFaultRate > 0 {
		sc.Net = &sim.NetConfig{
			Chaos: chaos.NewNetwork(jobSeed^0x2545f491, chaos.DefaultNetRates(cfg.NetFaultRate), nil, cfg.Observer),
		}
	}
	// Storage faults and sheds crash processes beyond the scheduled
	// failures; leave recovery generous headroom (matches chkptsim).
	sc.MaxRestarts = restarts + 25
	if _, err := sim.Run(sc); err != nil {
		return err
	}
	if business {
		return fmt.Errorf("fleet: job %d (tenant %s): simulated domain error: %w", jobID, tenant, ErrBusiness)
	}
	return nil
}

// splitmixFrac hashes a seed to a uniform [0, 1) fraction (splitmix64
// finalizer) — the per-job business-failure draw, decoupled from the
// arrival rng so schedules stay comparable across configs.
func splitmixFrac(seed int64) float64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
