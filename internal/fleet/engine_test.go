package fleet

import (
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
)

func TestEngineCleanFleetAllSucceed(t *testing.T) {
	e := New(Config{Jobs: 20, MaxInFlight: 32, Seed: 1})
	rep, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v\n%s", err, rep)
	}
	if !rep.Conserved() {
		t.Fatalf("not conserved:\n%s", rep)
	}
	if rep.Arrivals != 20 || rep.Admitted != 20 || rep.RejectedTotal() != 0 {
		t.Fatalf("arrivals=%d admitted=%d rejected=%d, want 20/20/0",
			rep.Arrivals, rep.Admitted, rep.RejectedTotal())
	}
	if rep.Buckets[BucketSucceeded] != 20 {
		t.Fatalf("buckets = %v, want 20 succeeded", rep.Buckets)
	}
	if rep.DrainParked {
		t.Fatal("clean fleet parked jobs")
	}
}

func TestEngineBusinessTaxonomy(t *testing.T) {
	e := New(Config{Jobs: 10, Seed: 2, BusinessFailRate: 1.0})
	rep, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v\n%s", err, rep)
	}
	if rep.Buckets[BucketBusinessFailed] != 10 {
		t.Fatalf("buckets = %v, want 10 business_failed", rep.Buckets)
	}
	// Business failures are application outcomes: the infrastructure
	// buckets stay empty.
	if rep.Buckets[BucketInfraFailed] != 0 || rep.Buckets[BucketParked] != 0 {
		t.Fatalf("business failures leaked into infra buckets: %v", rep.Buckets)
	}
}

func TestEngineRejectsAtCapacityNeverQueues(t *testing.T) {
	// One slot, back-to-back arrivals, jobs big enough to outlive the
	// arrival loop: almost everything must be rejected immediately —
	// admission never queues.
	e := New(Config{Jobs: 100, MaxInFlight: 1, Iters: 50, Seed: 3})
	rep, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v\n%s", err, rep)
	}
	if !rep.Conserved() {
		t.Fatalf("not conserved:\n%s", rep)
	}
	if rep.Rejected[ReasonFleetCapacity] == 0 {
		t.Fatalf("no capacity rejections with MaxInFlight=1:\n%s", rep)
	}
	if rep.Admitted+rep.RejectedTotal() != 100 {
		t.Fatalf("lost arrivals:\n%s", rep)
	}
}

func TestEngineDrainParksInFlight(t *testing.T) {
	st := storage.NewMemory()
	e := New(Config{
		Jobs: 4, MaxInFlight: 4, Iters: 5000, Seed: 4,
		Store: st, DrainTimeout: 5 * time.Millisecond,
	})
	start := time.Now()
	rep, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v\n%s", err, rep)
	}
	if !rep.DrainParked {
		t.Fatalf("drain deadline did not fire:\n%s", rep)
	}
	if rep.Buckets[BucketParked] == 0 {
		t.Fatalf("no jobs parked:\n%s", rep)
	}
	if !rep.Conserved() {
		t.Fatalf("not conserved:\n%s", rep)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("drain-park took %v; cancellation did not cut jobs short", el)
	}
	// Parked means parked, not lost: the jobs' checkpoints survive in the
	// shared store for a later resume.
	var snaps int
	for p := 0; p < 4*3; p++ {
		got, err := st.List(p)
		if err != nil {
			t.Fatalf("List(%d): %v", p, err)
		}
		snaps += len(got)
	}
	if snaps == 0 {
		t.Fatal("no checkpoints persisted for parked jobs")
	}
}

func TestEngineExternalDrainStopsArrivals(t *testing.T) {
	// A paced stream far larger than the test budget; Drain (the SIGTERM
	// path) must cut it short and still balance the books.
	e := New(Config{Jobs: 1_000_000, ArrivalRate: 2000, Seed: 5})
	go func() {
		time.Sleep(50 * time.Millisecond)
		e.Drain()
	}()
	rep, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v\n%s", err, rep)
	}
	if rep.Arrivals >= 1_000_000 {
		t.Fatalf("drain did not stop the arrival stream: %d arrivals", rep.Arrivals)
	}
	if !rep.Conserved() {
		t.Fatalf("not conserved:\n%s", rep)
	}
}

// windowStore fails every op transiently for a fixed wall-clock window
// starting at its first operation — a brownout with a hard start and end.
// (Time-based, not op-count-based: while the breaker is open, sheds never
// reach the store, so an op-counted window would never drain.)
type windowStore struct {
	storage.Store
	dur   time.Duration
	mu    sync.Mutex
	start time.Time
}

func (w *windowStore) browned() error {
	w.mu.Lock()
	if w.start.IsZero() {
		w.start = time.Now()
	}
	brown := time.Since(w.start) < w.dur
	w.mu.Unlock()
	if brown {
		return storage.ErrTransient
	}
	return nil
}

func (w *windowStore) Save(s storage.Snapshot) error {
	if err := w.browned(); err != nil {
		return err
	}
	return w.Store.Save(s)
}

func (w *windowStore) Latest(proc, cfgIndex int) (storage.Snapshot, error) {
	if err := w.browned(); err != nil {
		return storage.Snapshot{}, err
	}
	return w.Store.Latest(proc, cfgIndex)
}

func TestEngineBreakerOpensAndRecovers(t *testing.T) {
	// A brownout covering the stream's first 30ms: the breaker must trip
	// (shedding load off the sick store) and, once the window passes,
	// recover via half-open probes so later arrivals run clean.
	st := &windowStore{Store: storage.NewMemory(), dur: 30 * time.Millisecond}
	e := New(Config{
		Jobs: 60, MaxInFlight: 8, Iters: 10, Seed: 6, Store: st,
		ArrivalRate: 500, // ~120ms of paced arrivals: traffic outlives the brownout
		Breaker: BreakerConfig{
			FailureThreshold: 3,
			Cooldown:         time.Millisecond,
			SuccessesToClose: 2,
		},
	})
	rep, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v\n%s", err, rep)
	}
	if !rep.Conserved() {
		t.Fatalf("not conserved:\n%s", rep)
	}
	if rep.Breaker.Opened == 0 {
		t.Fatalf("breaker never opened through the brownout:\n%s", rep)
	}
	if got := e.Breaker().State(); got != StateClosed {
		t.Fatalf("breaker state = %d after the store healed, want closed\n%s", got, rep)
	}
	if rep.Buckets[BucketSucceeded] == 0 {
		t.Fatalf("no job survived the brownout:\n%s", rep)
	}
}
