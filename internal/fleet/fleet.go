// Package fleet is the scale layer over the single-job simulator: where
// internal/sim validates ONE application's coordination-free checkpointing
// (the paper's setting), fleet drives THOUSANDS of concurrent jobs against
// one shared checkpoint store and keeps the whole population correct and
// observable while storage and network chaos hit everyone at once — the
// ROADMAP's millions-of-users story.
//
// The engine is built as a robustness subsystem, not a load generator:
//
//   - open-loop Poisson arrivals: jobs arrive on their own clock, so
//     overload cannot hide behind closed-loop self-throttling;
//   - admission control with per-tenant quotas: capacity is refused
//     up-front with a typed ErrAdmissionRejected — never an unbounded
//     queue that collapses under sustained overload;
//   - per-tenant retry budgets (sim.RetryBudget) over the runtime's
//     capped-backoff retry: a storage brownout hitting every job at once
//     spends a bounded, tenant-proportional number of retries fleet-wide
//     instead of multiplying into a retry storm;
//   - a half-open circuit breaker around the shared store: consecutive
//     transient failures trip it open, shedding storage load fast (each
//     shed save converts into the job's ordinary crash→recovery path, so
//     jobs pace themselves instead of hammering a browned-out store);
//     probes through the half-open state close it again;
//   - graceful drain: stop admissions, let in-flight jobs finish inside a
//     deadline, then cancel the rest — sim.ErrCanceled parks them with
//     their checkpoints intact for a later resume;
//   - a strict terminal taxonomy: every admitted job lands in EXACTLY one
//     of succeeded / infra_failed / business_failed / parked. Report.
//     Conserved() checks admitted == Σ buckets; the chaos soaks assert it
//     across seeds, which is the fleet-level "no job silently lost"
//     counterpart of the paper's per-job recovery guarantee.
//
// Every job taps the same obs.Observer fan-out and metrics.Counters, so
// one telemetry aggregator serves live fleet-wide stats (fleet gauges ride
// the existing counters→/metrics path).
package fleet

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Terminal taxonomy buckets. Every admitted job ends in exactly one; the
// names double as metrics counter suffixes and obs jobdone tags.
const (
	BucketSucceeded      = "succeeded"
	BucketInfraFailed    = "infra_failed"
	BucketBusinessFailed = "business_failed"
	BucketParked         = "parked"
)

// Buckets lists the taxonomy in report order.
var Buckets = []string{BucketSucceeded, BucketInfraFailed, BucketBusinessFailed, BucketParked}

// Admission-rejection reasons (AdmissionError.Reason).
const (
	ReasonFleetCapacity = "fleet_capacity"
	ReasonTenantQuota   = "tenant_quota"
	ReasonDraining      = "draining"
)

// ErrAdmissionRejected is the sentinel every admission refusal wraps:
// callers branch with errors.Is and read the reason from AdmissionError.
// Rejection is immediate and stateless — a rejected arrival is counted and
// dropped, never queued, so overload cannot build a collapse-prone backlog.
var ErrAdmissionRejected = errors.New("fleet: admission rejected")

// ErrBusiness marks a job failure owned by the application (bad input,
// simulated domain error), as opposed to infrastructure (storage, network,
// runtime). Wrap business outcomes with it so Classify separates the two:
// infra failures page the platform, business failures page the tenant.
var ErrBusiness = errors.New("fleet: business failure")

// AdmissionError is the typed refusal.
type AdmissionError struct {
	Tenant string
	Reason string // ReasonFleetCapacity | ReasonTenantQuota | ReasonDraining
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("fleet: admission rejected (%s) for tenant %q", e.Reason, e.Tenant)
}

// Unwrap makes errors.Is(err, ErrAdmissionRejected) hold.
func (e *AdmissionError) Unwrap() error { return ErrAdmissionRejected }

// Classify maps an admitted job's terminal error to its taxonomy bucket.
// The mapping is total: any error not recognizably business or parked is
// infrastructure, so no outcome can escape the taxonomy.
func Classify(err error) string {
	switch {
	case err == nil:
		return BucketSucceeded
	case errors.Is(err, sim.ErrCanceled):
		return BucketParked
	case errors.Is(err, ErrBusiness):
		return BucketBusinessFailed
	default:
		return BucketInfraFailed
	}
}
