package fleet

import (
	"errors"
	"testing"

	"repro/internal/metrics"
	"repro/internal/obs"
)

func wantReject(t *testing.T, a *Admission, tenant, reason string) {
	t.Helper()
	rel, err := a.TryAdmit(tenant)
	if err == nil {
		rel()
		t.Fatalf("TryAdmit(%q) admitted, want rejection %q", tenant, reason)
	}
	if !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("rejection does not wrap ErrAdmissionRejected: %v", err)
	}
	var aerr *AdmissionError
	if !errors.As(err, &aerr) {
		t.Fatalf("rejection is not *AdmissionError: %v", err)
	}
	if aerr.Reason != reason || aerr.Tenant != tenant {
		t.Fatalf("rejection = %+v, want tenant=%q reason=%q", aerr, tenant, reason)
	}
}

func TestAdmissionFleetCapacity(t *testing.T) {
	ctr := &metrics.Counters{}
	a := NewAdmission(2, nil, ctr, nil)

	rel1, err := a.TryAdmit("a")
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.TryAdmit("b")
	if err != nil {
		t.Fatal(err)
	}
	wantReject(t, a, "c", ReasonFleetCapacity)
	if got := ctr.Gauge("fleet_active_jobs"); got != 2 {
		t.Errorf("fleet_active_jobs = %v, want 2", got)
	}
	if got := ctr.Gauge("fleet_rejected"); got != 1 {
		t.Errorf("fleet_rejected = %v, want 1", got)
	}

	// Releasing frees the slot; double release is harmless.
	rel1()
	rel1()
	if a.Active() != 1 {
		t.Fatalf("active = %d after release, want 1", a.Active())
	}
	rel3, err := a.TryAdmit("c")
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	rel2()
	rel3()
	if a.Active() != 0 {
		t.Fatalf("active = %d after all releases, want 0", a.Active())
	}
	cs := ctr.Snapshot().Custom
	if cs["fleet_admitted"] != 3 || cs["fleet_rejected_total"] != 1 || cs["fleet_rejected_"+ReasonFleetCapacity] != 1 {
		t.Errorf("counters = %v", cs)
	}
}

func TestAdmissionTenantQuota(t *testing.T) {
	tenants := []TenantConfig{{Name: "small", Quota: 1}, {Name: "big"}}
	sink := obs.NewRecorder()
	a := NewAdmission(10, tenants, nil, sink)

	relS, err := a.TryAdmit("small")
	if err != nil {
		t.Fatal(err)
	}
	// small is at quota; big is unbounded (up to the fleet cap).
	wantReject(t, a, "small", ReasonTenantQuota)
	for i := 0; i < 5; i++ {
		if _, err := a.TryAdmit("big"); err != nil {
			t.Fatalf("big admit %d: %v", i, err)
		}
	}
	relS()
	if _, err := a.TryAdmit("small"); err != nil {
		t.Fatalf("small after release: %v", err)
	}

	var admits, rejects int
	for _, e := range sink.Events() {
		switch e.Kind {
		case obs.KindAdmit:
			admits++
		case obs.KindReject:
			rejects++
			if e.Tag != "small" || e.Label != ReasonTenantQuota {
				t.Errorf("reject event = %+v", e)
			}
		}
	}
	if admits != 7 || rejects != 1 {
		t.Errorf("events: admits=%d rejects=%d, want 7/1", admits, rejects)
	}
}

func TestAdmissionDraining(t *testing.T) {
	a := NewAdmission(0, nil, nil, nil)
	rel, err := a.TryAdmit("t")
	if err != nil {
		t.Fatal(err)
	}
	a.StartDrain()
	wantReject(t, a, "t", ReasonDraining)
	// In-flight work is unaffected and can still release.
	rel()
	if a.Active() != 0 {
		t.Fatalf("active = %d, want 0", a.Active())
	}
}

func TestRetryBudgetTokenBucket(t *testing.T) {
	b := NewRetryBudget(2, 3)
	if b.Tokens() != 2 {
		t.Fatalf("initial tokens = %d", b.Tokens())
	}
	b.Deposit(10) // clamped at cap
	if b.Tokens() != 3 {
		t.Fatalf("tokens after clamped deposit = %d, want 3", b.Tokens())
	}
	for i := 0; i < 3; i++ {
		if !b.AllowRetry("save") {
			t.Fatalf("retry %d refused with tokens left", i)
		}
	}
	if b.AllowRetry("save") {
		t.Fatal("retry allowed on empty bucket")
	}
	b.Deposit(1)
	if !b.AllowRetry("save") {
		t.Fatal("retry refused after refill")
	}

	// Uncapped bucket accumulates freely.
	u := NewRetryBudget(0, 0)
	u.Deposit(1 << 20)
	if u.Tokens() != 1<<20 {
		t.Fatalf("uncapped tokens = %d", u.Tokens())
	}
}
