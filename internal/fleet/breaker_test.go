package fleet

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// flakyStore fails operations transiently while `down` is set.
type flakyStore struct {
	storage.Store
	down atomic.Bool
	ops  atomic.Int64
}

func newFlaky() *flakyStore { return &flakyStore{Store: storage.NewMemory()} }

func (f *flakyStore) Save(s storage.Snapshot) error {
	f.ops.Add(1)
	if f.down.Load() {
		return fmt.Errorf("%w: injected brownout", storage.ErrTransient)
	}
	return f.Store.Save(s)
}

func snapN(n int) storage.Snapshot {
	return storage.Snapshot{Proc: 0, CFGIndex: 1, Instance: n, Clock: vclock.VC{uint64(n)}}
}

// fakeClock is a manual time source for cooldown control.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }

func newTestBreaker(inner storage.Store, clk *fakeClock, ctr *metrics.Counters, sink obs.Observer) *Breaker {
	return NewBreaker(inner, BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Second,
		HalfOpenProbes:   1,
		SuccessesToClose: 2,
		Counters:         ctr,
		Obs:              sink,
		Now:              clk.Now,
	})
}

func TestBreakerTripsShedsAndRecovers(t *testing.T) {
	inner := newFlaky()
	clk := &fakeClock{now: time.Unix(0, 0)}
	ctr := &metrics.Counters{}
	sink := obs.NewRecorder()
	b := newTestBreaker(inner, clk, ctr, sink)

	// Healthy ops keep it closed.
	if err := b.Save(snapN(1)); err != nil || b.State() != StateClosed {
		t.Fatalf("healthy save: err=%v state=%d", err, b.State())
	}

	// A brownout: FailureThreshold consecutive transients trip it open.
	inner.down.Store(true)
	for i := 0; i < 3; i++ {
		if err := b.Save(snapN(10 + i)); !errors.Is(err, storage.ErrTransient) {
			t.Fatalf("brownout save %d: %v", i, err)
		}
	}
	if b.State() != StateOpen {
		t.Fatalf("state = %d after threshold failures, want open", b.State())
	}

	// Open: operations shed WITHOUT touching the store, and the shed error
	// carries both identities.
	before := inner.ops.Load()
	err := b.Save(snapN(20))
	if !errors.Is(err, ErrBreakerOpen) || !errors.Is(err, storage.ErrTransient) {
		t.Fatalf("shed error = %v, want ErrBreakerOpen AND ErrTransient", err)
	}
	if inner.ops.Load() != before {
		t.Fatal("shed operation reached the browned-out store")
	}
	if ctr.Snapshot().Custom["breaker_shed"] == 0 {
		t.Error("breaker_shed not counted")
	}
	if ctr.Gauge("breaker_state") != StateOpen {
		t.Errorf("breaker_state gauge = %v, want %d", ctr.Gauge("breaker_state"), StateOpen)
	}

	// Cooldown elapses; the store healed. Two probe successes close it.
	inner.down.Store(false)
	clk.advance(2 * time.Second)
	if err := b.Save(snapN(21)); err != nil {
		t.Fatalf("probe 1: %v", err)
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %d after one good probe, want half-open", b.State())
	}
	if err := b.Save(snapN(22)); err != nil {
		t.Fatalf("probe 2: %v", err)
	}
	if b.State() != StateClosed {
		t.Fatalf("state = %d after %d good probes, want closed", b.State(), 2)
	}

	st := b.Stats()
	if st.Opened != 1 || st.Shed == 0 {
		t.Errorf("stats = %+v, want opened=1 and some shed", st)
	}
	// The transition trail landed in the event stream.
	var labels []string
	for _, e := range sink.Events() {
		if e.Kind == obs.KindBreaker {
			labels = append(labels, e.Label)
		}
	}
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if len(labels) != len(want) {
		t.Fatalf("breaker events = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("event %d = %q, want %q", i, labels[i], want[i])
		}
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	inner := newFlaky()
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := newTestBreaker(inner, clk, nil, nil)

	inner.down.Store(true)
	for i := 0; i < 3; i++ {
		_ = b.Save(snapN(i))
	}
	clk.advance(2 * time.Second)
	// Still down: the probe fails and the breaker reopens for a fresh
	// cooldown — half-open never floods a sick store.
	if err := b.Save(snapN(50)); !errors.Is(err, storage.ErrTransient) {
		t.Fatalf("probe: %v", err)
	}
	if b.State() != StateOpen {
		t.Fatalf("state = %d after failed probe, want open", b.State())
	}
	if got := b.Stats().Opened; got != 2 {
		t.Errorf("opened = %d, want 2 (initial trip + probe reopen)", got)
	}
}

func TestBreakerIgnoresSemanticErrors(t *testing.T) {
	b := NewBreaker(storage.NewMemory(), BreakerConfig{FailureThreshold: 1})
	// Not-found / duplicate are results, not store-health signals.
	for i := 0; i < 5; i++ {
		if _, err := b.Latest(0, 1); !errors.Is(err, storage.ErrNotFound) {
			t.Fatalf("Latest: %v", err)
		}
	}
	if err := b.Save(snapN(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(snapN(1)); !errors.Is(err, storage.ErrDuplicate) {
		t.Fatalf("dup save: %v", err)
	}
	if b.State() != StateClosed {
		t.Fatalf("state = %d after semantic errors, want closed", b.State())
	}
}

func TestBreakerHalfOpenLimitsProbes(t *testing.T) {
	inner := newFlaky()
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := newTestBreaker(inner, clk, nil, nil)
	inner.down.Store(true)
	for i := 0; i < 3; i++ {
		_ = b.Save(snapN(i))
	}
	clk.advance(2 * time.Second)

	// Hold one probe slot open by checking State (transitions to
	// half-open), then grab the only probe manually via before().
	if b.State() != StateHalfOpen {
		t.Fatal("not half-open after cooldown")
	}
	probe, err := b.before()
	if err != nil || !probe {
		t.Fatalf("first probe refused: probe=%v err=%v", probe, err)
	}
	// Second concurrent operation: probe budget exhausted, shed.
	if _, err := b.before(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe = %v, want shed", err)
	}
	b.after(probe, nil)
}

// scrubbableStore is a memory store that implements Scrubber by reporting
// (and clearing) injected marks — minimal stand-in for chaos/wal/file
// stores in the fleet chain.
type scrubbableStore struct {
	storage.Store
	marks []storage.SnapshotRef
}

func (s *scrubbableStore) Scrub() (storage.ScrubReport, error) {
	rep := storage.ScrubReport{Quarantined: s.marks}
	s.marks = nil
	return rep, nil
}

// TestBreakerForwardsScrubber: the fleet chain is Namespace → Breaker →
// store, so quarantine only reaches a durable backend if the breaker
// forwards Scrub. It must also shed scrubs while open, like any other op.
func TestBreakerForwardsScrubber(t *testing.T) {
	inner := &scrubbableStore{
		Store: storage.NewMemory(),
		marks: []storage.SnapshotRef{{Proc: 3, CFGIndex: 1, Instance: 0, Reason: "bit flip"}},
	}
	clk := &fakeClock{}
	b := newTestBreaker(inner, clk, nil, nil)
	scr, ok := any(b).(storage.Scrubber)
	if !ok {
		t.Fatal("breaker does not forward Scrubber; fleet quarantine dead-ends at the breaker")
	}
	rep, err := scr.Scrub()
	if err != nil {
		t.Fatalf("Scrub through breaker: %v", err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Proc != 3 {
		t.Fatalf("report not forwarded: %+v", rep)
	}

	// Non-scrubber inner: clean no-op.
	b2 := newTestBreaker(newFlaky(), clk, nil, nil)
	if rep, err := b2.Scrub(); err != nil || len(rep.Quarantined) != 0 {
		t.Fatalf("Scrub over non-scrubber inner = %+v, %v; want empty, nil", rep, err)
	}

	// An open breaker sheds scrubs too.
	b3 := newTestBreaker(&scrubbableStore{Store: storage.NewMemory()}, clk, nil, nil)
	b3.mu.Lock()
	b3.trip("test")
	b3.mu.Unlock()
	if _, err := b3.Scrub(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Scrub through open breaker = %v, want ErrBreakerOpen", err)
	}
}
