package fleet

import (
	"errors"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Breaker states, exported for reports and the breaker_state gauge.
const (
	StateClosed   = 0
	StateHalfOpen = 1
	StateOpen     = 2
)

// ErrBreakerOpen marks an operation shed because the circuit breaker is
// open. The concrete error also matches storage.ErrTransient, so existing
// failure handling applies unchanged: a shed checkpoint save crashes the
// saving process into its ordinary recovery path (pacing the job off the
// store), and the retry layer backs off instead of treating the shed as
// permanent. errors.Is(err, ErrBreakerOpen) distinguishes sheds from real
// storage faults.
var ErrBreakerOpen = errors.New("fleet: circuit breaker open")

// shedError is the error every shed operation returns: one value, two
// identities (breaker-open AND transient).
type shedError struct{}

func (shedError) Error() string { return "fleet: circuit breaker open: storage load shed" }

func (shedError) Unwrap() []error { return []error{ErrBreakerOpen, storage.ErrTransient} }

// BreakerConfig tunes a Breaker. Zero fields select defaults.
type BreakerConfig struct {
	// FailureThreshold is how many CONSECUTIVE transient failures trip the
	// breaker open. Default 5.
	FailureThreshold int
	// Cooldown is how long an open breaker sheds before letting probes
	// through (half-open). Default 50ms — a few retry-backoff caps, so a
	// browned-out store gets real quiet time.
	Cooldown time.Duration
	// HalfOpenProbes bounds concurrent trial operations in the half-open
	// state; excess operations are still shed. Default 1.
	HalfOpenProbes int
	// SuccessesToClose is how many consecutive probe successes close the
	// breaker. One probe failure reopens it immediately. Default 2.
	SuccessesToClose int
	// Counters receives breaker_opened / breaker_shed counts and the
	// breaker_state gauge. Optional.
	Counters *metrics.Counters
	// Obs receives a KindBreaker event per state transition. Optional.
	Obs obs.Observer
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
}

func (c *BreakerConfig) fill() {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 50 * time.Millisecond
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.SuccessesToClose <= 0 {
		c.SuccessesToClose = 2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// BreakerStats is a point-in-time summary for reports.
type BreakerStats struct {
	State  int   // StateClosed / StateHalfOpen / StateOpen
	Opened int64 // times the breaker tripped open (incl. half-open reopens)
	Shed   int64 // operations refused while open
}

// Breaker wraps a shared storage.Store with a half-open circuit breaker.
// Only transient faults (storage.ErrTransient) count against the circuit:
// not-found / duplicate / corrupt are semantic results, not store-health
// signals. Safe for concurrent use by every job in the fleet — that
// sharing is the point: ANY job's failures open the circuit for all, and
// any job's probe successes close it again.
type Breaker struct {
	inner storage.Store
	cfg   BreakerConfig

	mu        sync.Mutex
	state     int
	fails     int       // consecutive transient failures while closed
	successes int       // consecutive probe successes while half-open
	probes    int       // in-flight half-open probes
	openedAt  time.Time // when the breaker last opened
	opened    int64
	shed      int64
}

var _ storage.Store = (*Breaker)(nil)

// NewBreaker wraps inner. The breaker starts closed.
func NewBreaker(inner storage.Store, cfg BreakerConfig) *Breaker {
	cfg.fill()
	b := &Breaker{inner: inner, cfg: cfg}
	b.setGauge()
	return b
}

// State returns the current state (StateClosed / StateHalfOpen /
// StateOpen), advancing open→half-open if the cooldown has elapsed.
func (b *Breaker) State() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	return b.state
}

// Stats returns a snapshot of the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{State: b.state, Opened: b.opened, Shed: b.shed}
}

// setGauge publishes the state gauge; callers hold mu (or are in New).
func (b *Breaker) setGauge() {
	if b.cfg.Counters != nil {
		b.cfg.Counters.SetGauge("breaker_state", float64(b.state))
	}
}

// transition moves to state `to`, stamping telemetry. Callers hold mu.
func (b *Breaker) transition(to int, why string) {
	from := b.state
	b.state = to
	b.setGauge()
	if b.cfg.Obs != nil {
		names := [...]string{"closed", "half-open", "open"}
		b.cfg.Obs.OnEvent(obs.Event{
			Kind: obs.KindBreaker, Proc: -1,
			Label: names[from] + "->" + names[to],
			Tag:   why,
		})
	}
}

// maybeHalfOpen advances open→half-open once the cooldown elapses.
// Callers hold mu.
func (b *Breaker) maybeHalfOpen() {
	if b.state == StateOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.successes = 0
		b.probes = 0
		b.transition(StateHalfOpen, "cooldown elapsed")
	}
}

// before gates one operation: it returns (probe, nil) to admit it, or a
// shed error. probe marks half-open trial operations for after().
func (b *Breaker) before() (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	switch b.state {
	case StateClosed:
		return false, nil
	case StateHalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			return true, nil
		}
	}
	b.shed++
	if b.cfg.Counters != nil {
		b.cfg.Counters.Inc("breaker_shed", 1)
	}
	return false, shedError{}
}

// after records one admitted operation's outcome.
func (b *Breaker) after(probe bool, opErr error) {
	transient := opErr != nil && errors.Is(opErr, storage.ErrTransient)
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probes--
		if b.state != StateHalfOpen {
			return // a concurrent probe already decided the verdict
		}
		if transient {
			b.trip("probe failed")
			return
		}
		b.successes++
		if b.successes >= b.cfg.SuccessesToClose {
			b.fails = 0
			b.transition(StateClosed, "probes succeeded")
		}
		return
	}
	if b.state != StateClosed {
		return // raced with a transition; the new state owns accounting
	}
	if !transient {
		b.fails = 0
		return
	}
	b.fails++
	if b.fails >= b.cfg.FailureThreshold {
		b.trip("failure threshold")
	}
}

// trip opens the breaker. Callers hold mu.
func (b *Breaker) trip(why string) {
	b.openedAt = b.cfg.Now()
	b.fails = 0
	b.opened++
	if b.cfg.Counters != nil {
		b.cfg.Counters.Inc("breaker_opened", 1)
	}
	b.transition(StateOpen, why)
}

// do wraps one store operation with the breaker protocol.
func (b *Breaker) do(f func() error) error {
	probe, err := b.before()
	if err != nil {
		return err
	}
	opErr := f()
	b.after(probe, opErr)
	return opErr
}

func (b *Breaker) Save(s storage.Snapshot) error {
	return b.do(func() error { return b.inner.Save(s) })
}

func (b *Breaker) Latest(proc, cfgIndex int) (storage.Snapshot, error) {
	var s storage.Snapshot
	err := b.do(func() (err error) {
		s, err = b.inner.Latest(proc, cfgIndex)
		return err
	})
	return s, err
}

func (b *Breaker) Get(proc, cfgIndex, instance int) (storage.Snapshot, error) {
	var s storage.Snapshot
	err := b.do(func() (err error) {
		s, err = b.inner.Get(proc, cfgIndex, instance)
		return err
	})
	return s, err
}

func (b *Breaker) List(proc int) ([]storage.Snapshot, error) {
	var out []storage.Snapshot
	err := b.do(func() (err error) {
		out, err = b.inner.List(proc)
		return err
	})
	return out, err
}

func (b *Breaker) Indexes(n int) ([]int, error) {
	var out []int
	err := b.do(func() (err error) {
		out, err = b.inner.Indexes(n)
		return err
	})
	return out, err
}

func (b *Breaker) Delete(proc, cfgIndex, instance int) error {
	return b.do(func() error { return b.inner.Delete(proc, cfgIndex, instance) })
}

// Scrub forwards storage.Scrubber when the wrapped store implements it, so
// quarantine reaches durable backends through the fleet's full wrapper
// chain (Namespace → Breaker → chaos/store). It runs under the breaker
// protocol like any other operation: a browned-out store sheds scrubs too.
func (b *Breaker) Scrub() (storage.ScrubReport, error) {
	scr, ok := b.inner.(storage.Scrubber)
	if !ok {
		return storage.ScrubReport{}, nil
	}
	var rep storage.ScrubReport
	err := b.do(func() (err error) {
		rep, err = scr.Scrub()
		return err
	})
	return rep, err
}

var _ storage.Scrubber = (*Breaker)(nil)
