package fleet

import (
	"sync/atomic"

	"repro/internal/sim"
)

// RetryBudget is a token bucket implementing sim.RetryBudget for one
// tenant. Every job admitted for the tenant deposits a fixed number of
// tokens (capped), and every storage retry by any of the tenant's jobs
// withdraws one. The effect is Finagle-style budgeted retry at fleet
// scope: retry capacity grows with admitted work, so a healthy tenant
// retries freely, while a storage brownout hitting a thousand concurrent
// jobs can only spend the bounded pool — the excess fails fast instead of
// compounding the brownout with synchronized backoff storms.
type RetryBudget struct {
	tokens atomic.Int64
	cap    int64
}

var _ sim.RetryBudget = (*RetryBudget)(nil)

// NewRetryBudget returns a budget holding `initial` tokens, never
// accumulating beyond cap (cap <= 0 means uncapped).
func NewRetryBudget(initial, cap int64) *RetryBudget {
	b := &RetryBudget{cap: cap}
	if initial > 0 {
		b.tokens.Store(initial)
	}
	return b
}

// Deposit adds n tokens, clamped at the cap.
func (b *RetryBudget) Deposit(n int64) {
	if n <= 0 {
		return
	}
	for {
		old := b.tokens.Load()
		next := old + n
		if b.cap > 0 && next > b.cap {
			next = b.cap
		}
		if next == old || b.tokens.CompareAndSwap(old, next) {
			return
		}
	}
}

// Tokens returns the current balance.
func (b *RetryBudget) Tokens() int64 { return b.tokens.Load() }

// AllowRetry implements sim.RetryBudget: it withdraws one token, or
// refuses when the pool is dry.
func (b *RetryBudget) AllowRetry(op string) bool {
	for {
		old := b.tokens.Load()
		if old <= 0 {
			return false
		}
		if b.tokens.CompareAndSwap(old, old-1) {
			return true
		}
	}
}
