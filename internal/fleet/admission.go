package fleet

import (
	"sync"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// TenantConfig describes one tenant of the fleet.
type TenantConfig struct {
	// Name identifies the tenant in metrics, events, and rejections.
	Name string
	// Quota bounds the tenant's concurrent in-flight jobs; <= 0 means no
	// per-tenant bound (the fleet-wide cap still applies).
	Quota int
	// Weight biases the arrival draw toward this tenant (engine-side);
	// <= 0 counts as 1.
	Weight float64
}

// Admission is the fleet's front door: a fixed-capacity, per-tenant-quota
// gate that answers immediately. Admit or reject — never queue: a queue in
// front of a saturated fleet only converts overload into latency collapse
// and, eventually, lost work. Rejected arrivals are counted, published as
// obs events, and dropped; open-loop callers simply keep arriving.
type Admission struct {
	counters *metrics.Counters
	obsv     obs.Observer

	mu       sync.Mutex
	max      int // fleet-wide in-flight cap; <= 0 means unbounded
	inflight int
	quotas   map[string]int // tenant -> quota (<= 0 absent)
	byTenant map[string]int // tenant -> in-flight
	draining bool
	rejected int64
}

// NewAdmission builds the gate. maxInFlight <= 0 disables the fleet-wide
// cap (tenant quotas still apply).
func NewAdmission(maxInFlight int, tenants []TenantConfig, counters *metrics.Counters, obsv obs.Observer) *Admission {
	a := &Admission{
		counters: counters,
		obsv:     obsv,
		max:      maxInFlight,
		quotas:   make(map[string]int),
		byTenant: make(map[string]int),
	}
	for _, t := range tenants {
		if t.Quota > 0 {
			a.quotas[t.Name] = t.Quota
		}
	}
	a.gauges()
	return a
}

// gauges publishes fleet_active_jobs and fleet_rejected. Callers hold mu
// (or are in New).
func (a *Admission) gauges() {
	if a.counters != nil {
		a.counters.SetGauge("fleet_active_jobs", float64(a.inflight))
		a.counters.SetGauge("fleet_rejected", float64(a.rejected))
	}
}

// TryAdmit asks to start one job for tenant. On success it returns a
// release function (call exactly once, when the job reaches a terminal
// bucket). On refusal it returns a *AdmissionError wrapping
// ErrAdmissionRejected — immediately, never blocking.
func (a *Admission) TryAdmit(tenant string) (release func(), err error) {
	a.mu.Lock()
	reason := ""
	switch {
	case a.draining:
		reason = ReasonDraining
	case a.max > 0 && a.inflight >= a.max:
		reason = ReasonFleetCapacity
	default:
		if q, ok := a.quotas[tenant]; ok && a.byTenant[tenant] >= q {
			reason = ReasonTenantQuota
		}
	}
	if reason != "" {
		a.rejected++
		a.gauges()
		a.mu.Unlock()
		if a.counters != nil {
			a.counters.Inc("fleet_rejected_total", 1)
			a.counters.Inc("fleet_rejected_"+reason, 1)
		}
		if a.obsv != nil {
			a.obsv.OnEvent(obs.Event{Kind: obs.KindReject, Proc: -1, Tag: tenant, Label: reason})
		}
		return nil, &AdmissionError{Tenant: tenant, Reason: reason}
	}
	a.inflight++
	a.byTenant[tenant]++
	a.gauges()
	a.mu.Unlock()
	if a.counters != nil {
		a.counters.Inc("fleet_admitted", 1)
	}
	if a.obsv != nil {
		a.obsv.OnEvent(obs.Event{Kind: obs.KindAdmit, Proc: -1, Tag: tenant})
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.inflight--
			a.byTenant[tenant]--
			a.gauges()
			a.mu.Unlock()
		})
	}, nil
}

// StartDrain flips the gate into draining: every further TryAdmit is
// rejected with ReasonDraining. In-flight jobs are unaffected.
func (a *Admission) StartDrain() {
	a.mu.Lock()
	a.draining = true
	a.mu.Unlock()
}

// Active returns the current in-flight job count.
func (a *Admission) Active() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}
