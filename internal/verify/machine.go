package verify

import (
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/mpl"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// ErrBudget means an execution exceeded its instruction budget — almost
// always a livelock in a generated program (the generator is supposed to
// emit terminating programs, so hitting this is reported, not ignored).
var ErrBudget = errors.New("verify: instruction budget exhausted")

// ErrDeadlock reports a global state where no process can move but not all
// have halted: some process waits on a message that will never arrive.
var ErrDeadlock = errors.New("verify: deadlock")

// DefaultBudget bounds the total local instructions of one execution.
const DefaultBudget = 1 << 20

// parkKind classifies the visible operation a process is parked at.
type parkKind int

const (
	parkHalted parkKind = iota
	parkSend            // next event: send one message to park.peer
	parkRecv            // next event: receive the head message from park.peer
)

// park is the resolved visible operation a normalized process waits at.
type park struct {
	kind parkKind
	peer int
}

// msg is one in-flight message on a FIFO channel.
type msg struct {
	seq   int
	value int
	clock vclock.VC
}

// procState is one process of the product machine.
type procState struct {
	pc  int
	sub int // completed peer legs inside a bcast/reduce instruction
	acc int // reduce accumulator at the root

	env       *mpl.Env
	clock     vclock.VC
	sendSeq   []int
	recvSeq   []int
	instances map[int]int
	park      park
}

// Machine is a deterministic interpreter of a compiled MPL program's CFG
// product: n process states plus explicit per-channel FIFO queues. All
// nondeterminism is external — the caller picks which enabled process
// performs its next visible communication event — so a schedule ([]int of
// process ids) identifies an execution exactly.
//
// Between visible events each process is "normalized": local instructions
// (assign, work, jumps, branches, and checkpoint statements, which involve
// no interaction) run eagerly, so scheduling choices exist only where they
// can matter for the communication structure.
type Machine struct {
	code     *sim.Code
	n        int
	input    func(rank, i int) int
	procs    []*procState
	chans    [][][]msg // chans[from][to]
	tr       *trace.Trace
	budget   int
	schedule []int

	// Restore logging (the pruned-restore equivalence axis). When enabled,
	// the machine records a full local snapshot at every checkpoint event
	// and keeps every sent message, so any straight cut of the finished
	// execution can be re-instantiated as a restored machine — chkpts[p]
	// in event order, sendLog[from][to] in seq order. pending[p] holds the
	// records still waiting to learn whether each manifest variable's first
	// dynamic access after the checkpoint is a read or a write (the
	// prune-drop equivalent-mutant oracle).
	logRestore bool
	chkpts     [][]*chkptRecord
	pending    [][]*chkptRecord
	sendLog    [][][]msg
}

// chkptRecord is one process's local state at a checkpoint event — the
// verify-side analogue of storage.Snapshot, recorded unpruned so restore
// checks can compare full-env against manifest-pruned reconstruction.
type chkptRecord struct {
	index    int // straight-cut index C_i
	instance int
	stmtID   int // originating chkpt statement (manifest key)
	pc       int // resume pc: the instruction after the checkpoint
	vars     map[string]int
	clock    vclock.VC
	sendSeq  []int
	recvSeq  []int
	// instances is the per-index checkpoint counter AFTER this event, so a
	// restored machine numbers subsequent checkpoints like the runtime.
	instances map[int]int
	// First-access classification of the site's manifest variables in THIS
	// instance's continuation, filled in as the clean run executes past the
	// checkpoint: readFirst holds variables whose first dynamic access was a
	// read (a pruned restore that zeroed them would be observed), unresolved
	// those never accessed again (they survive to exit, where FinalVars
	// observes everything). Variables in neither set were overwritten before
	// any read — zeroing them at this instance is invisible.
	readFirst  map[string]bool
	unresolved map[string]bool
}

// NewMachine compiles nothing — it instantiates an already compiled
// program for n processes and normalizes every process to its first
// visible operation. input supplies the input(i) builtin per rank (nil
// makes input(...) an evaluation error, matching the runtime).
func NewMachine(code *sim.Code, n int, input func(rank, i int) int) (*Machine, error) {
	return newMachine(code, n, input, false)
}

// newMachine is NewMachine with restore logging optionally enabled from the
// start — recording must begin before the initial normalization, which can
// already execute checkpoint statements.
func newMachine(code *sim.Code, n int, input func(rank, i int) int, logRestore bool) (*Machine, error) {
	if n < 1 {
		return nil, fmt.Errorf("verify: need at least 1 process, got %d", n)
	}
	m := &Machine{
		code:   code,
		n:      n,
		input:  input,
		procs:  make([]*procState, n),
		chans:  make([][][]msg, n),
		tr:     trace.NewTrace(n),
		budget: DefaultBudget,
	}
	if logRestore {
		m.logRestore = true
		m.chkpts = make([][]*chkptRecord, n)
		m.pending = make([][]*chkptRecord, n)
		m.sendLog = make([][][]msg, n)
		for p := 0; p < n; p++ {
			m.sendLog[p] = make([][]msg, n)
		}
	}
	for p := 0; p < n; p++ {
		m.chans[p] = make([][]msg, n)
		var inputFn func(int) int
		if input != nil {
			rank := p
			inputFn = func(i int) int { return input(rank, i) }
		}
		m.procs[p] = &procState{
			env:       mpl.NewEnv(code.Prog, p, n, inputFn),
			clock:     vclock.New(n),
			sendSeq:   make([]int, n),
			recvSeq:   make([]int, n),
			instances: make(map[int]int),
		}
	}
	for p := 0; p < n; p++ {
		if err := m.normalize(p); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// N returns the process count.
func (m *Machine) N() int { return m.n }

// SetBudget replaces the remaining instruction budget.
func (m *Machine) SetBudget(n int) { m.budget = n }

// Trace returns the recorded execution.
func (m *Machine) Trace() *trace.Trace { return m.tr }

// Schedule returns the sequence of process ids stepped so far.
func (m *Machine) Schedule() []int {
	return append([]int(nil), m.schedule...)
}

// FinalVars returns each process's variables (call after Done).
func (m *Machine) FinalVars() []map[string]int {
	out := make([]map[string]int, m.n)
	for p, ps := range m.procs {
		vars := make(map[string]int, len(ps.env.Vars))
		for k, v := range ps.env.Vars {
			vars[k] = v
		}
		out[p] = vars
	}
	return out
}

// Done reports whether every process has halted.
func (m *Machine) Done() bool {
	for _, ps := range m.procs {
		if ps.park.kind != parkHalted {
			return false
		}
	}
	return true
}

// enabled reports whether process p can perform its visible operation now.
func (m *Machine) enabled(p int) bool {
	ps := m.procs[p]
	switch ps.park.kind {
	case parkSend:
		return true
	case parkRecv:
		return len(m.chans[ps.park.peer][p]) > 0
	default:
		return false
	}
}

// Enabled returns the processes that can move, in ascending id order.
func (m *Machine) Enabled() []int {
	var out []int
	for p := 0; p < m.n; p++ {
		if m.enabled(p) {
			out = append(out, p)
		}
	}
	return out
}

// Deadlocked reports a stuck global state: not all processes halted, yet
// none is enabled.
func (m *Machine) Deadlocked() bool {
	return !m.Done() && len(m.Enabled()) == 0
}

// Dependent reports whether the visible operations processes p and q are
// parked at may not commute: one is the send and the other the receive on
// the same channel. All other pairs of enabled transitions are independent
// (channels have a single sender and a single receiver), which is what the
// explorer's sleep sets prune by.
func (m *Machine) Dependent(p, q int) bool {
	a, b := m.procs[p].park, m.procs[q].park
	if a.kind == parkSend && b.kind == parkRecv && a.peer == q && b.peer == p {
		return true
	}
	if b.kind == parkSend && a.kind == parkRecv && b.peer == p && a.peer == q {
		return true
	}
	return false
}

// Step performs process p's parked visible operation — one send completing
// or one message delivery — then re-normalizes p. p must be enabled.
func (m *Machine) Step(p int) error {
	if !m.enabled(p) {
		return fmt.Errorf("verify: process %d is not enabled (park %v)", p, m.procs[p].park.kind)
	}
	ps := m.procs[p]
	in := m.code.Instrs[ps.pc]
	switch ps.park.kind {
	case parkSend:
		dest := ps.park.peer
		m.touchRead(p, in.Var)
		value := ps.env.Vars[in.Var] // send/bcast/reduce all transmit Var
		seq := ps.sendSeq[dest]
		ps.sendSeq[dest] = seq + 1
		ps.clock.Tick(p)
		mg := msg{seq: seq, value: value, clock: ps.clock.Clone()}
		m.chans[p][dest] = append(m.chans[p][dest], mg)
		if m.logRestore {
			m.sendLog[p][dest] = append(m.sendLog[p][dest], mg)
		}
		m.tr.Append(trace.Event{
			Proc: p, Kind: trace.KindSend, Clock: ps.clock,
			Msg: trace.MessageID{From: p, To: dest, Seq: seq}, Peer: dest,
		})
	case parkRecv:
		src := ps.park.peer
		queue := m.chans[src][p]
		mg := queue[0]
		m.chans[src][p] = queue[1:]
		if mg.seq != ps.recvSeq[src] {
			return fmt.Errorf("verify: process %d: FIFO violation from %d: seq %d, want %d",
				p, src, mg.seq, ps.recvSeq[src])
		}
		ps.recvSeq[src] = mg.seq + 1
		switch in.Op {
		case sim.OpRecv, sim.OpBcast:
			m.touchWrite(p, in.Var)
			ps.env.Vars[in.Var] = mg.value
		case sim.OpReduce:
			ps.acc += mg.value
		}
		ps.clock.Tick(p)
		ps.clock.Merge(mg.clock)
		m.tr.Append(trace.Event{
			Proc: p, Kind: trace.KindRecv, Clock: ps.clock,
			Msg: trace.MessageID{From: src, To: p, Seq: mg.seq}, Peer: src,
		})
	}
	m.schedule = append(m.schedule, p)
	if err := m.advanceAfterLeg(p, in); err != nil {
		return err
	}
	return m.normalize(p)
}

// advanceAfterLeg moves p past the communication leg just performed:
// point-to-point operations complete in one leg; collectives complete
// after their last peer leg.
func (m *Machine) advanceAfterLeg(p int, in sim.Instr) error {
	ps := m.procs[p]
	switch in.Op {
	case sim.OpSend, sim.OpRecv:
		ps.pc++
	case sim.OpBcast, sim.OpReduce:
		root, err := mpl.Eval(in.Expr, ps.env)
		if err != nil {
			return m.evalErr(p, in, err)
		}
		if p != root {
			// Non-root legs are single: recv (bcast) or send (reduce).
			ps.pc++
			return nil
		}
		ps.sub++
		if ps.sub >= m.n-1 {
			if in.Op == sim.OpReduce {
				m.touchRead(p, in.Var) // root folds its own contribution in
				ps.env.Vars[in.Var] += ps.acc
				ps.acc = 0
			}
			ps.sub = 0
			ps.pc++
		}
	}
	return nil
}

// normalize advances p through local instructions until it parks at a
// visible operation or halts.
func (m *Machine) normalize(p int) error {
	ps := m.procs[p]
	for {
		if m.budget <= 0 {
			return fmt.Errorf("%w: process %d at pc %d", ErrBudget, p, ps.pc)
		}
		m.budget--
		in := m.code.Instrs[ps.pc]
		switch in.Op {
		case sim.OpAssign:
			m.touchExprReads(p, in.Expr)
			v, err := mpl.Eval(in.Expr, ps.env)
			if err != nil {
				return m.evalErr(p, in, err)
			}
			m.touchWrite(p, in.Var)
			ps.env.Vars[in.Var] = v
			ps.pc++
		case sim.OpWork:
			m.touchExprReads(p, in.Expr)
			if _, err := mpl.Eval(in.Expr, ps.env); err != nil {
				return m.evalErr(p, in, err)
			}
			ps.pc++
		case sim.OpJump:
			ps.pc = in.Target
		case sim.OpBranchFalse:
			m.touchExprReads(p, in.Expr)
			ok, err := mpl.Truthy(in.Expr, ps.env)
			if err != nil {
				return m.evalErr(p, in, err)
			}
			if ok {
				ps.pc++
			} else {
				ps.pc = in.Target
			}
		case sim.OpChkpt:
			// Checkpoints involve no interaction: they are local events
			// taken eagerly, exactly like the application-driven protocol.
			instance := ps.instances[in.Index]
			ps.instances[in.Index] = instance + 1
			ps.clock.Tick(p)
			m.tr.Append(trace.Event{
				Proc: p, Kind: trace.KindCheckpoint, Clock: ps.clock,
				Chkpt: trace.Checkpoint{CFGIndex: in.Index, Instance: instance},
				Label: fmt.Sprintf("C_%d", in.Index),
			})
			if m.logRestore {
				vars := make(map[string]int, len(ps.env.Vars))
				for k, v := range ps.env.Vars {
					vars[k] = v
				}
				instances := make(map[int]int, len(ps.instances))
				for k, v := range ps.instances {
					instances[k] = v
				}
				rec := &chkptRecord{
					index: in.Index, instance: instance, stmtID: in.StmtID,
					pc: ps.pc + 1, vars: vars, clock: ps.clock.Clone(),
					sendSeq:    append([]int(nil), ps.sendSeq...),
					recvSeq:    append([]int(nil), ps.recvSeq...),
					instances:  instances,
					readFirst:  make(map[string]bool),
					unresolved: make(map[string]bool),
				}
				for _, name := range m.code.Manifests[in.StmtID] {
					rec.unresolved[name] = true
				}
				m.chkpts[p] = append(m.chkpts[p], rec)
				if len(rec.unresolved) > 0 {
					m.pending[p] = append(m.pending[p], rec)
				}
			}
			ps.pc++
		case sim.OpSend:
			m.touchExprReads(p, in.Expr)
			dest, err := mpl.Eval(in.Expr, ps.env)
			if err != nil {
				return m.evalErr(p, in, err)
			}
			if dest < 0 || dest >= m.n || dest == p {
				ps.pc++ // guarded-boundary no-op, same as the runtime
				continue
			}
			ps.park = park{kind: parkSend, peer: dest}
			return nil
		case sim.OpRecv:
			m.touchExprReads(p, in.Expr)
			src, err := mpl.Eval(in.Expr, ps.env)
			if err != nil {
				return m.evalErr(p, in, err)
			}
			if src < 0 || src >= m.n || src == p {
				ps.pc++ // guarded-boundary no-op
				continue
			}
			ps.park = park{kind: parkRecv, peer: src}
			return nil
		case sim.OpBcast, sim.OpReduce:
			m.touchExprReads(p, in.Expr)
			root, err := mpl.Eval(in.Expr, ps.env)
			if err != nil {
				return m.evalErr(p, in, err)
			}
			if root < 0 || root >= m.n {
				return fmt.Errorf("verify: process %d: collective root %d out of range [0,%d)", p, root, m.n)
			}
			if m.n == 1 {
				ps.pc++ // single-process collectives are no-ops
				continue
			}
			if p == root {
				peer := m.nextPeer(p, ps.sub)
				if in.Op == sim.OpReduce && ps.sub == 0 {
					ps.acc = 0
				}
				kind := parkSend
				if in.Op == sim.OpReduce {
					kind = parkRecv
				}
				ps.park = park{kind: kind, peer: peer}
			} else {
				kind := parkRecv
				if in.Op == sim.OpReduce {
					kind = parkSend
				}
				ps.park = park{kind: kind, peer: root}
			}
			return nil
		case sim.OpHalt:
			ps.park = park{kind: parkHalted}
			return nil
		default:
			return fmt.Errorf("verify: process %d: unknown opcode %v", p, in.Op)
		}
	}
}

// touchRead resolves name as read-first in every pending checkpoint record
// of process p that has not yet seen an access to it.
func (m *Machine) touchRead(p int, name string) {
	m.touch(p, name, true)
}

// touchWrite resolves name as written-first (not recorded — absence from
// both sets is the classification).
func (m *Machine) touchWrite(p int, name string) {
	m.touch(p, name, false)
}

func (m *Machine) touch(p int, name string, read bool) {
	if !m.logRestore || len(m.pending[p]) == 0 {
		return
	}
	out := m.pending[p][:0]
	for _, rec := range m.pending[p] {
		if rec.unresolved[name] {
			delete(rec.unresolved, name)
			if read {
				rec.readFirst[name] = true
			}
		}
		if len(rec.unresolved) > 0 {
			out = append(out, rec)
		}
	}
	m.pending[p] = out
}

// touchExprReads resolves every variable mentioned in e as read. mpl
// evaluation has no short-circuiting, so the syntactic ident set is exactly
// the dynamic read set.
func (m *Machine) touchExprReads(p int, e mpl.Expr) {
	if !m.logRestore || len(m.pending[p]) == 0 {
		return
	}
	mpl.WalkExpr(e, func(x mpl.Expr) bool {
		if id, ok := x.(*mpl.Ident); ok {
			m.touchRead(p, id.Name)
		}
		return true
	})
}

// nextPeer returns the sub-th peer of a collective's root in ascending
// rank order, skipping the root itself — the same order the sim runtime
// uses, so both executions produce identical message structures.
func (m *Machine) nextPeer(root, sub int) int {
	q := 0
	for {
		if q != root {
			if sub == 0 {
				return q
			}
			sub--
		}
		q++
	}
}

func (m *Machine) evalErr(p int, in sim.Instr, err error) error {
	return fmt.Errorf("verify: process %d (stmt #%d, op %v): %w", p, in.StmtID, in.Op, err)
}

// Signature hashes the per-process event histories (kind, peer, message
// id, checkpoint index and instance). Two executions with equal signatures
// have identical local histories and message pairings, hence identical
// happened-before structure; the explorer uses signatures both to dedupe
// equivalent interleavings and to assert Kahn-style confluence (every
// schedule of a deterministic program must produce the same signature).
func (m *Machine) Signature() uint64 {
	h := fnv.New64a()
	buf := make([]byte, 0, 64)
	put := func(vals ...int) {
		buf = buf[:0]
		for _, v := range vals {
			buf = append(buf,
				byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		h.Write(buf)
	}
	for p, hist := range m.tr.Events() {
		put(-1, p)
		for _, e := range hist {
			switch e.Kind {
			case trace.KindSend, trace.KindRecv:
				put(int(e.Kind), e.Msg.From, e.Msg.To, e.Msg.Seq)
			case trace.KindCheckpoint:
				put(int(e.Kind), e.Chkpt.CFGIndex, e.Chkpt.Instance)
			default:
				put(int(e.Kind))
			}
		}
	}
	return h.Sum64()
}

// RunSchedule replays a recorded schedule on a fresh machine, then — if
// the schedule ends before the program does — completes the run with the
// deterministic lowest-id choice. It is the replay entry point for
// counterexample reports.
func RunSchedule(code *sim.Code, n int, input func(rank, i int) int, schedule []int) (*Machine, error) {
	m, err := NewMachine(code, n, input)
	if err != nil {
		return nil, err
	}
	for i, p := range schedule {
		if err := m.Step(p); err != nil {
			return nil, fmt.Errorf("verify: replay step %d (proc %d): %w", i, p, err)
		}
	}
	for !m.Done() {
		en := m.Enabled()
		if len(en) == 0 {
			return m, fmt.Errorf("%w after %d steps", ErrDeadlock, len(m.schedule))
		}
		if err := m.Step(en[0]); err != nil {
			return nil, err
		}
	}
	return m, nil
}
