package verify

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mpl"
	"repro/internal/sim"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := Generate(seed)
		b := Generate(seed)
		if mpl.Format(a) != mpl.Format(b) {
			t.Fatalf("seed %d: Generate is not deterministic", seed)
		}
		if err := mpl.Check(a); err != nil {
			t.Fatalf("seed %d: generated program invalid: %v", seed, err)
		}
	}
}

func TestProgGenSubSeedsRegenerate(t *testing.T) {
	g := NewProgGen(42)
	for k := 0; k < 5; k++ {
		p, sub := g.Next()
		if got := mpl.Format(Generate(sub)); got != mpl.Format(p) {
			t.Fatalf("program %d: Generate(SubSeed) does not regenerate the stream program", k)
		}
	}
}

// TestMachineAgreesWithRuntime replays transformed generated programs on
// both the verification machine (deterministic schedule) and the real
// concurrent runtime, and requires identical final variables: the machine
// is only trustworthy as a theorem-checking vehicle if it implements the
// same semantics as the system under test.
func TestMachineAgreesWithRuntime(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rep, err := core.Transform(Generate(seed), core.DefaultConfig)
		if err != nil {
			t.Fatalf("seed %d: transform: %v", seed, err)
		}
		code, err := sim.Compile(rep.Program)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		for _, n := range []int{2, 3, 4} {
			m, err := RunSchedule(code, n, DefaultInput, nil)
			if err != nil {
				t.Fatalf("seed %d n=%d: machine run: %v", seed, n, err)
			}
			res, err := sim.Run(sim.Config{Program: rep.Program, Nproc: n, Input: DefaultInput})
			if err != nil {
				t.Fatalf("seed %d n=%d: sim run: %v", seed, n, err)
			}
			if got, want := m.FinalVars(), res.FinalVars; !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d n=%d: machine vars %v, runtime vars %v", seed, n, got, want)
			}
		}
	}
}

// ringProgram runs TWO rounds of a ring shift with checkpoints between.
// Two rounds matter: a process's second send can be enabled while its
// neighbour still holds the first message undelivered, and that co-enabled
// send/recv pair on one channel is where delivery interleavings genuinely
// branch (a single round has exactly one Mazurkiewicz trace).
func ringProgram(t *testing.T) *mpl.Program {
	t.Helper()
	b := mpl.NewBuilder("ring")
	b.Vars("a", "tmp", "j")
	b.Assign("a", mpl.Add(mpl.Rank(), mpl.Int(1)))
	b.Assign("j", mpl.Int(0))
	b.While(mpl.Lt(mpl.V("j"), mpl.Int(2)), func(b *mpl.Builder) {
		b.Chkpt()
		b.Send(mpl.Mod(mpl.Add(mpl.Rank(), mpl.Int(1)), mpl.Nproc()), "a")
		b.Recv(mpl.Mod(mpl.Sub(mpl.Rank(), mpl.Int(1)), mpl.Nproc()), "tmp")
		b.Chkpt()
		b.Assign("a", mpl.Add(mpl.V("a"), mpl.V("tmp")))
		b.Assign("j", mpl.Add(mpl.V("j"), mpl.Int(1)))
	})
	return b.MustProgram()
}

func TestExploreCoversInterleavingsAndConfluence(t *testing.T) {
	code, err := sim.Compile(ringProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(code, 3, DefaultInput, ExploreOptions{Depth: 8, MaxSchedules: 200}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions < 2 {
		t.Fatalf("explored %d executions, want several (real interleaving freedom)", res.Executions)
	}
	if !res.Confluent() {
		t.Fatalf("ring program not confluent: %d signatures over %d executions",
			len(res.Signatures), res.Executions)
	}
}

func TestExploreSleepSetsPrune(t *testing.T) {
	// Two disjoint pairs communicating independently: (0->1) and (2->3).
	// The message deliveries commute, so sleep sets should collapse the
	// interleavings of independent transitions: far fewer executions than
	// the naive product, and with depth 0 exactly one.
	b := mpl.NewBuilder("disjoint")
	b.Vars("a", "tmp")
	b.Assign("a", mpl.Rank())
	b.If(mpl.Eq(mpl.Mod(mpl.Rank(), mpl.Int(2)), mpl.Int(0)), func(b *mpl.Builder) {
		b.Send(mpl.Add(mpl.Rank(), mpl.Int(1)), "a")
	})
	b.If(mpl.Eq(mpl.Mod(mpl.Rank(), mpl.Int(2)), mpl.Int(1)), func(b *mpl.Builder) {
		b.Recv(mpl.Sub(mpl.Rank(), mpl.Int(1)), "tmp")
	})
	code, err := sim.Compile(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(code, 4, DefaultInput, ExploreOptions{Depth: 16, MaxSchedules: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions != 1 {
		t.Fatalf("independent sends/recvs explored %d executions, want 1 (sleep sets should prune all commutations)", res.Executions)
	}
}

func TestExploreDetectsDeadlock(t *testing.T) {
	// Both processes receive first: a classic cycle.
	b := mpl.NewBuilder("deadlock")
	b.Vars("a", "tmp")
	b.IfElse(mpl.Eq(mpl.Rank(), mpl.Int(0)),
		func(b *mpl.Builder) {
			b.Recv(mpl.Int(1), "tmp")
			b.Send(mpl.Int(1), "a")
		},
		func(b *mpl.Builder) {
			b.Recv(mpl.Int(0), "tmp")
			b.Send(mpl.Int(0), "a")
		})
	code, err := sim.Compile(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Explore(code, 2, DefaultInput, ExploreOptions{Depth: 4}, nil)
	if _, ok := err.(*DeadlockError); !ok {
		t.Fatalf("want DeadlockError, got %v", err)
	}
}

// figure2Program reconstructs the paper's Figure 2: the checkpoint sits
// before the send on rank 0 but after the matching receive on rank 1, so
// the straight cut R_1 is NOT a recovery line.
func figure2Program(t *testing.T) *mpl.Program {
	t.Helper()
	b := mpl.NewBuilder("figure2")
	b.Vars("a", "tmp")
	b.Assign("a", mpl.Add(mpl.Rank(), mpl.Int(1)))
	b.IfElse(mpl.Eq(mpl.Rank(), mpl.Int(0)),
		func(b *mpl.Builder) {
			b.Chkpt()
			b.Send(mpl.Int(1), "a")
		},
		func(b *mpl.Builder) {
			b.Recv(mpl.Int(0), "tmp")
			b.Chkpt()
		})
	return b.MustProgram()
}

func TestCheckTraceFindsFigure2Violation(t *testing.T) {
	code, err := sim.Compile(figure2Program(t))
	if err != nil {
		t.Fatal(err)
	}
	violations := 0
	_, err = Explore(code, 2, DefaultInput, ExploreOptions{Depth: 4}, func(m *Machine) error {
		chk, err := CheckTrace(m.Trace())
		if err != nil {
			return err
		}
		violations += len(chk.Violations)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if violations == 0 {
		t.Fatal("Figure 2 skew not detected: the checker passed an unsafe placement")
	}
}

func TestRunScheduleReplaysSignature(t *testing.T) {
	code, err := sim.Compile(ringProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	var schedules [][]int
	var sigs []uint64
	_, err = Explore(code, 3, DefaultInput, ExploreOptions{Depth: 6, MaxSchedules: 8}, func(m *Machine) error {
		schedules = append(schedules, m.Schedule())
		sigs = append(sigs, m.Signature())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, sched := range schedules {
		m, err := RunSchedule(code, 3, DefaultInput, sched)
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if m.Signature() != sigs[i] {
			t.Fatalf("replay %d: signature mismatch", i)
		}
	}
}

func TestTheoremHoldsOnGeneratedPrograms(t *testing.T) {
	progs := 6
	if testing.Short() {
		progs = 3
	}
	res, err := Run(context.Background(), Options{
		Seed: 1, Programs: progs, Depth: 4, MaxSchedules: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		for _, c := range res.Counterexamples {
			t.Errorf("counterexample: %s", c)
		}
		t.FailNow()
	}
	if res.CutsChecked == 0 {
		t.Fatal("harness checked zero straight cuts — vacuous run")
	}
}

func TestMutationModeCatchesSabotage(t *testing.T) {
	progs := 3
	if testing.Short() {
		progs = 2
	}
	res, err := Run(context.Background(), Options{
		Seed: 7, Programs: progs, Depth: 2, MaxSchedules: 8, Mutate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		for _, c := range res.Counterexamples {
			t.Errorf("unmutated counterexample: %s", c)
		}
		t.FailNow()
	}
	del := res.Mutation[MutDelete]
	if del == nil || del.Total == 0 {
		t.Fatal("no delete mutants generated")
	}
	if del.Rate() < 0.95 {
		t.Fatalf("delete detection rate %.2f < 0.95; escaped: %v", del.Rate(), del.Escaped)
	}
	skew := res.Mutation[MutSkew]
	if skew != nil && skew.Total > 0 && skew.CaughtDynamic == 0 {
		t.Errorf("no skew mutant was caught DYNAMICALLY (total %d): the Figure 2 path is untested", skew.Total)
	}
}

func TestMutantsAreStructurallyDistinct(t *testing.T) {
	rep, err := core.Transform(Generate(3), core.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	orig := mpl.Format(rep.Program)
	muts := AllMutants(rep.Program)
	if len(muts) == 0 {
		t.Fatal("no mutants for a transformed program")
	}
	for _, mu := range muts {
		if mpl.Format(mu.Prog) == orig {
			t.Errorf("%s: mutant identical to original", mu.Desc)
		}
		if mpl.Format(rep.Program) != orig {
			t.Fatalf("%s: mutation aliased the original program", mu.Desc)
		}
	}
}
