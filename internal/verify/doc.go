// Package verify is the generative correctness harness for the paper's
// central claim (Theorem 3.2): after the compile-time transformation,
// EVERY straight cut of checkpoints is a recovery line in EVERY execution.
// The hand-written corpus programs exercise that theorem on a handful of
// shapes and seeded schedules; this package hunts for counterexamples
// automatically, in the systematic-exploration tradition of TLC and
// DPOR-style model checkers:
//
//   - ProgGen (gen.go) emits seeded random, well-formed SPMD programs with
//     ID-dependent branches, loops, and matched send/recv patterns, drawn
//     from communication-motif templates plus random checkpoint-placement
//     mutation — possibly unsafe placements, which is the point: Phase III
//     must repair whatever ProgGen invents.
//
//   - Machine (machine.go) is a deterministic sequential interpreter of a
//     compiled program's per-process CFG product: n process states plus
//     explicit FIFO channel queues, advanced one visible communication
//     event at a time under an externally chosen schedule. A schedule is a
//     plain []int of process ids, so any execution replays exactly.
//
//   - Explore (explore.go) runs the machine under all message-delivery
//     interleavings up to a configurable branching-depth bound — DPOR-lite:
//     a depth-first search over schedule prefixes with sleep sets pruning
//     interleavings that only commute independent transitions. Beyond the
//     bound each branch is completed deterministically, so every explored
//     schedule yields a full, checkable trace.
//
//   - CheckTrace (check.go) asserts the theorem on each explored execution
//     and cross-validates four independently implemented consistency
//     deciders against each other: vector clocks captured at checkpoint
//     time, the structural happened-before closure, the orphan-message
//     criterion (all internal/trace), and Netzer-Xu zigzag-path
//     reachability (internal/zigzag). Any disagreement between the four is
//     reported as a harness bug, never swallowed.
//
//   - Mutate (mutate.go) is the no-vacuous-pass guard: it deliberately
//     breaks a transformed program — deleting one inserted checkpoint,
//     moving it across a communication statement, or skewing it into a
//     rank-parity branch (the Figure 2 shape) — and asserts the checker
//     DOES notice, either statically (checkpoint enumeration rejects the
//     mutant), by contract (the straight-cut index set changed), or
//     dynamically (an explored execution violates the theorem).
//
// The cmd/chkptverify CLI drives the harness (-seed, -progs, -depth,
// -mutate); every counterexample report carries the generator seed and
// schedule needed to replay it deterministically.
package verify
