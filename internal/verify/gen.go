package verify

import (
	"math/rand"
	"strconv"

	"repro/internal/mpl"
)

// subSeedStride spreads per-program sub-seeds across the int64 space
// (golden-ratio increment), so neighbouring harness seeds do not produce
// overlapping program streams.
const subSeedStride = int64(-7046029254386353131) // 0x9E3779B97F4A7C15 as int64

// ProgGen is a seeded stream of random, well-formed SPMD programs. Each
// program is generated from its own sub-seed, printed in counterexample
// reports, so a single program regenerates via Generate(subSeed) without
// replaying the stream.
type ProgGen struct {
	seed int64
	k    int
}

// NewProgGen starts a program stream at seed.
func NewProgGen(seed int64) *ProgGen { return &ProgGen{seed: seed} }

// SubSeed returns the sub-seed of the k-th program of the stream.
func (g *ProgGen) SubSeed(k int) int64 {
	return g.seed + int64(k)*subSeedStride
}

// Next returns the next program of the stream and its sub-seed.
func (g *ProgGen) Next() (*mpl.Program, int64) {
	sub := g.SubSeed(g.k)
	g.k++
	return Generate(sub), sub
}

// Generate builds one deterministic, deadlock-free SPMD program from a
// sub-seed: communication motifs (ID-dependent branches, loops, matched
// send/recv patterns, collectives) that are safe under asynchronous sends
// and blocking receives for EVERY process count, interleaved with
// computation, randomly placed checkpoint statements, and a final random
// mutation pass that inserts extra checkpoints at arbitrary body positions
// — including positions that break Condition 1 or if-branch balance, which
// is the point: Phases I–III must repair whatever this invents.
func Generate(seed int64) *mpl.Program {
	r := rand.New(rand.NewSource(seed))
	b := mpl.NewBuilder("gen_" + strconv.FormatInt(seed, 10))
	b.Vars("a", "c", "tmp", "iter", "j")

	iters := 1 + r.Intn(3)
	b.Const("ITERS", iters)
	b.Assign("a", mpl.Add(mpl.Rank(), mpl.Int(1)))
	if r.Intn(3) == 0 {
		// Irregular (data-dependent) seed value via the input builtin.
		b.Assign("c", mpl.InputAt(mpl.Rank()))
		b.Assign("a", mpl.Add(mpl.V("a"), mpl.V("c")))
	}
	b.Assign("iter", mpl.Int(0))

	motifs := 1 + r.Intn(3)
	b.While(mpl.Lt(mpl.V("iter"), mpl.V("ITERS")), func(b *mpl.Builder) {
		for m := 0; m < motifs; m++ {
			genMotif(b, r)
		}
		b.Assign("iter", mpl.Add(mpl.V("iter"), mpl.Int(1)))
	})
	if r.Intn(2) == 0 {
		genMotif(b, r)
	}
	if r.Intn(2) == 0 {
		b.Chkpt()
		b.Assign("a", mpl.Add(mpl.V("a"), mpl.Int(1)))
	}
	p := b.MustProgram()

	// Mutation pass: sprinkle extra checkpoints at random positions of the
	// finished template, unbalanced branches and all.
	for extra := r.Intn(3); extra > 0; extra-- {
		insertRandomChkpt(p, r)
	}
	return p
}

// GenerateLarge builds one deterministic large SPMD program — the
// large-program corpus behind the pipeline scaling benchmarks and the
// serial-vs-parallel equality test. Each of scale phases is a loop nest
// up to three deep whose innermost body holds several communication
// motifs; statement count grows roughly linearly with scale (a few
// hundred statements at scale 8). The same random checkpoint-mutation
// pass as Generate runs at the end, and the same guarantees hold: the
// program is well-formed, deadlock-free for every process count, and
// repairable by Phases I–III.
func GenerateLarge(seed int64, scale int) *mpl.Program {
	if scale < 1 {
		scale = 1
	}
	r := rand.New(rand.NewSource(seed))
	b := mpl.NewBuilder("genlarge_" + strconv.FormatInt(seed, 10))
	b.Vars("a", "c", "tmp", "j", "i0", "i1", "i2")
	b.Assign("a", mpl.Add(mpl.Rank(), mpl.Int(1)))
	counters := [...]string{"i0", "i1", "i2"}
	for ph := 0; ph < scale; ph++ {
		depth := 1 + r.Intn(3)
		motifs := 2 + r.Intn(3)
		var nest func(b *mpl.Builder, d int)
		nest = func(b *mpl.Builder, d int) {
			if d == depth {
				for m := 0; m < motifs; m++ {
					genMotif(b, r)
				}
				return
			}
			ctr := counters[d]
			reps := 1 + r.Intn(2)
			b.Assign(ctr, mpl.Int(0))
			b.While(mpl.Lt(mpl.V(ctr), mpl.Int(reps)), func(b *mpl.Builder) {
				nest(b, d+1)
				b.Assign(ctr, mpl.Add(mpl.V(ctr), mpl.Int(1)))
			})
		}
		nest(b, 0)
		if r.Intn(2) == 0 {
			b.Chkpt()
		}
		b.Work(mpl.Int(1 + r.Intn(3)))
	}
	p := b.MustProgram()
	for extra := 2 + r.Intn(scale+1); extra > 0; extra-- {
		insertRandomChkpt(p, r)
	}
	return p
}

// genMotif appends one random communication motif. All motifs are
// deadlock-free by construction for every nproc >= 1: peer expressions
// that leave [0, nproc) are no-ops on both sides (guarded-boundary
// semantics, same as the runtime).
func genMotif(b *mpl.Builder, r *rand.Rand) {
	maybeChkpt := func(prob float64) {
		if r.Float64() < prob {
			b.Chkpt()
		}
	}
	switch r.Intn(8) {
	case 0:
		// Even/odd paired exchange (the paper's Figure 2 shape).
		evenCk := r.Intn(2) == 0
		oddCk := r.Intn(2) == 0
		b.IfElse(mpl.Eq(mpl.Mod(mpl.Rank(), mpl.Int(2)), mpl.Int(0)),
			func(b *mpl.Builder) {
				if evenCk {
					b.Chkpt()
				}
				b.Send(mpl.Add(mpl.Rank(), mpl.Int(1)), "a")
				b.Recv(mpl.Add(mpl.Rank(), mpl.Int(1)), "tmp")
				if !evenCk {
					b.Chkpt()
				}
			},
			func(b *mpl.Builder) {
				b.Recv(mpl.Sub(mpl.Rank(), mpl.Int(1)), "tmp")
				if oddCk {
					b.Chkpt()
				}
				b.Send(mpl.Sub(mpl.Rank(), mpl.Int(1)), "a")
				if !oddCk {
					b.Chkpt()
				}
			})
		b.Assign("a", mpl.Add(mpl.V("a"), mpl.V("tmp")))
	case 1:
		// Ring shift: everyone sends right, receives from the left.
		maybeChkpt(0.5)
		b.Send(mpl.Mod(mpl.Add(mpl.Rank(), mpl.Int(1)), mpl.Nproc()), "a")
		b.Recv(mpl.Mod(mpl.Sub(mpl.Rank(), mpl.Int(1)), mpl.Nproc()), "tmp")
		maybeChkpt(0.5)
		b.Assign("a", mpl.Add(mpl.V("a"), mpl.V("tmp")))
	case 2:
		// Broadcast from a random (in-range for every nproc) root.
		maybeChkpt(0.3)
		b.Assign("c", mpl.Add(mpl.V("a"), mpl.Int(1)))
		b.Bcast(mpl.Mod(mpl.Int(r.Intn(4)), mpl.Nproc()), "c")
		maybeChkpt(0.3)
		b.Assign("a", mpl.Add(mpl.V("a"), mpl.V("c")))
	case 3:
		// Allreduce: contribute, reduce to rank 0, broadcast back.
		maybeChkpt(0.4)
		b.Assign("c", mpl.V("a"))
		b.Reduce(mpl.Int(0), "c")
		b.Bcast(mpl.Int(0), "c")
		maybeChkpt(0.4)
		b.Assign("a", mpl.Add(mpl.V("a"), mpl.V("c")))
	case 4:
		// Halves pipeline: lower half sends up (last odd rank sits out).
		half := mpl.Div(mpl.Nproc(), mpl.Int(2))
		sendCk := r.Intn(2) == 0
		b.IfElse(mpl.Lt(mpl.Rank(), half),
			func(b *mpl.Builder) {
				if sendCk {
					b.Chkpt()
				}
				b.Send(mpl.Add(mpl.Rank(), half), "a")
				if !sendCk {
					b.Chkpt()
				}
			},
			func(b *mpl.Builder) {
				b.If(mpl.Lt(mpl.Rank(), mpl.Mul(mpl.Int(2), half)), func(b *mpl.Builder) {
					b.Recv(mpl.Sub(mpl.Rank(), half), "tmp")
					b.Assign("a", mpl.Add(mpl.V("a"), mpl.V("tmp")))
				})
				b.Chkpt()
			})
	case 5:
		// Ping-pong between ranks 0 and 1 (no-op for nproc == 1).
		maybeChkpt(0.3)
		b.If(mpl.Eq(mpl.Rank(), mpl.Int(0)), func(b *mpl.Builder) {
			b.Send(mpl.Int(1), "a")
			b.Recv(mpl.Int(1), "tmp")
		})
		b.If(mpl.Eq(mpl.Rank(), mpl.Int(1)), func(b *mpl.Builder) {
			b.Recv(mpl.Int(0), "tmp")
			b.Send(mpl.Int(0), "tmp")
		})
		maybeChkpt(0.3)
	case 6:
		// Wrap-around token: the last rank hands a value to rank 0.
		last := mpl.Sub(mpl.Nproc(), mpl.Int(1))
		b.If(mpl.Eq(mpl.Rank(), last), func(b *mpl.Builder) {
			b.Send(mpl.Int(0), "a")
		})
		maybeChkpt(0.4)
		b.If(mpl.Eq(mpl.Rank(), mpl.Int(0)), func(b *mpl.Builder) {
			b.Recv(last, "tmp")
			b.Assign("a", mpl.Add(mpl.V("a"), mpl.V("tmp")))
		})
	case 7:
		// Inner loop of ring shifts with its own counter.
		reps := 1 + r.Intn(2)
		withCk := r.Intn(2) == 0
		b.Assign("j", mpl.Int(0))
		b.While(mpl.Lt(mpl.V("j"), mpl.Int(reps)), func(b *mpl.Builder) {
			b.Send(mpl.Mod(mpl.Add(mpl.Rank(), mpl.Int(1)), mpl.Nproc()), "a")
			b.Recv(mpl.Mod(mpl.Sub(mpl.Rank(), mpl.Int(1)), mpl.Nproc()), "tmp")
			if withCk {
				b.Chkpt()
			}
			b.Assign("a", mpl.Add(mpl.V("a"), mpl.V("tmp")))
			b.Assign("j", mpl.Add(mpl.V("j"), mpl.Int(1)))
		})
	}
	b.Work(mpl.Int(1 + r.Intn(3)))
}

// bodySlot addresses one insertion point: position pos of *list.
type bodySlot struct {
	list *[]mpl.Stmt
	pos  int
}

// insertionSlots collects the statement-list insertion points of the
// program, top-level and nested, EXCEPT inside one-sided (else-less) if
// branches that communicate: a checkpoint wedged between the sends and
// receives of a single-rank guard is outside Phase III's repair set (its
// mover cannot relocate a checkpoint across the guard boundary), so
// sprinkling one there would make the generator emit untransformable
// programs rather than hard ones.
func insertionSlots(p *mpl.Program) []bodySlot {
	var out []bodySlot
	var walk func(list *[]mpl.Stmt)
	walk = func(list *[]mpl.Stmt) {
		for pos := 0; pos <= len(*list); pos++ {
			out = append(out, bodySlot{list: list, pos: pos})
		}
		for _, s := range *list {
			switch st := s.(type) {
			case *mpl.While:
				walk(&st.Body)
			case *mpl.If:
				if len(st.Else) == 0 && containsComm(st.Then) {
					continue
				}
				walk(&st.Then)
				if len(st.Else) > 0 {
					walk(&st.Else)
				}
			}
		}
	}
	walk(&p.Body)
	return out
}

// containsComm reports whether the body holds a communication statement
// at any nesting depth.
func containsComm(body []mpl.Stmt) bool {
	found := false
	mpl.Walk(body, func(s mpl.Stmt) bool {
		if isComm(s) {
			found = true
			return false
		}
		return true
	})
	return found
}

// insertRandomChkpt splices a fresh checkpoint statement into a random
// insertion slot, mutating p in place.
func insertRandomChkpt(p *mpl.Program, r *rand.Rand) {
	slots := insertionSlots(p)
	s := slots[r.Intn(len(slots))]
	insertStmt(s, &mpl.Chkpt{StmtBase: mpl.StmtBase{StmtID: p.MaxStmtID() + 1}})
}

// insertStmt splices st into the slot.
func insertStmt(s bodySlot, st mpl.Stmt) {
	list := *s.list
	list = append(list[:s.pos:s.pos], append([]mpl.Stmt{st}, list[s.pos:]...)...)
	*s.list = list
}
