package verify

import (
	"fmt"
	"sort"

	"repro/internal/mpl"
)

// MutationKind enumerates the checkpoint-sabotage operators.
type MutationKind int

// The operators. Each breaks a transformed program in a way the checker
// pipeline must notice — statically, by contract, or dynamically.
const (
	// MutDelete removes one checkpoint statement.
	MutDelete MutationKind = iota
	// MutMove swaps one checkpoint with an adjacent communication
	// statement, dragging it across a send/recv boundary.
	MutMove
	// MutSkew wraps one checkpoint and the communication statement after
	// it in a rank-parity branch — even ranks checkpoint before the
	// communication, odd ranks after. This is the paper's Figure 2 shape:
	// statically well-formed (both branches hold one checkpoint, so the
	// enumeration stays balanced) but dynamically unsafe.
	MutSkew
	// MutPruneDrop deletes one variable from one checkpoint site's liveness
	// manifest, so pruned snapshots taken at that site silently lose a live
	// variable. The program itself is untouched; only the restore-equivalence
	// axis can catch this class (the four trace deciders never look at
	// snapshot contents).
	MutPruneDrop
)

// String names the kind.
func (k MutationKind) String() string {
	switch k {
	case MutDelete:
		return "delete"
	case MutMove:
		return "move"
	case MutSkew:
		return "skew"
	case MutPruneDrop:
		return "prune-drop"
	default:
		return fmt.Sprintf("mutation(%d)", int(k))
	}
}

// Mutant is one sabotaged program.
type Mutant struct {
	Prog *mpl.Program
	Kind MutationKind
	Site int // index into the program's checkpoint sites, in body order
	Desc string

	// Prune-drop mutants leave Prog nil and instead name the manifest entry
	// to sabotage: the variable DropVar at the checkpoint with statement id
	// DropStmt.
	DropStmt int
	DropVar  string
}

// chkptSites returns the location of every checkpoint statement, in body
// order: (*slot.list)[slot.pos] is the *mpl.Chkpt.
func chkptSites(p *mpl.Program) []bodySlot {
	var out []bodySlot
	var walk func(list *[]mpl.Stmt)
	walk = func(list *[]mpl.Stmt) {
		for pos := range *list {
			if _, ok := (*list)[pos].(*mpl.Chkpt); ok {
				out = append(out, bodySlot{list: list, pos: pos})
			}
		}
		for _, s := range *list {
			switch st := s.(type) {
			case *mpl.While:
				walk(&st.Body)
			case *mpl.If:
				walk(&st.Then)
				walk(&st.Else)
			}
		}
	}
	walk(&p.Body)
	return out
}

// isComm reports whether s is a communication statement.
func isComm(s mpl.Stmt) bool {
	switch s.(type) {
	case *mpl.Send, *mpl.Recv, *mpl.Bcast, *mpl.Reduce:
		return true
	}
	return false
}

// DeleteMutants returns one mutant per checkpoint statement, each with
// that single checkpoint removed.
func DeleteMutants(p *mpl.Program) []Mutant {
	n := len(chkptSites(p))
	out := make([]Mutant, 0, n)
	for site := 0; site < n; site++ {
		cp := mpl.Clone(p)
		s := chkptSites(cp)[site]
		id := (*s.list)[s.pos].ID()
		*s.list = append((*s.list)[:s.pos], (*s.list)[s.pos+1:]...)
		out = append(out, Mutant{
			Prog: cp, Kind: MutDelete, Site: site,
			Desc: fmt.Sprintf("delete checkpoint stmt #%d (site %d)", id, site),
		})
	}
	return out
}

// MoveMutants returns one mutant per checkpoint that has a communication
// statement as an immediate neighbour, with the two swapped (preferring
// the following neighbour).
func MoveMutants(p *mpl.Program) []Mutant {
	n := len(chkptSites(p))
	var out []Mutant
	for site := 0; site < n; site++ {
		cp := mpl.Clone(p)
		s := chkptSites(cp)[site]
		list := *s.list
		other := -1
		if s.pos+1 < len(list) && isComm(list[s.pos+1]) {
			other = s.pos + 1
		} else if s.pos > 0 && isComm(list[s.pos-1]) {
			other = s.pos - 1
		}
		if other < 0 {
			continue
		}
		id := list[s.pos].ID()
		list[s.pos], list[other] = list[other], list[s.pos]
		out = append(out, Mutant{
			Prog: cp, Kind: MutMove, Site: site,
			Desc: fmt.Sprintf("move checkpoint stmt #%d across %T (site %d)", id, list[s.pos], site),
		})
	}
	return out
}

// SkewMutants returns one mutant per checkpoint immediately followed by a
// communication statement: the pair is rewrapped as
//
//	if rank % 2 == 0 { chkpt; comm } else { comm; chkpt }
//
// so the checkpoint lands on opposite sides of the communication on even
// and odd ranks — Figure 2 reconstructed inside a verified program.
func SkewMutants(p *mpl.Program) []Mutant {
	n := len(chkptSites(p))
	var out []Mutant
	for site := 0; site < n; site++ {
		cp := mpl.Clone(p)
		s := chkptSites(cp)[site]
		list := *s.list
		if s.pos+1 >= len(list) || !isComm(list[s.pos+1]) {
			continue
		}
		ck, comm := list[s.pos], list[s.pos+1]
		nextID := cp.MaxStmtID() + 1
		ifStmt := &mpl.If{
			StmtBase: mpl.StmtBase{StmtID: nextID},
			Cond:     mpl.Eq(mpl.Mod(mpl.Rank(), mpl.Int(2)), mpl.Int(0)),
			Then:     []mpl.Stmt{ck, comm},
			Else: []mpl.Stmt{
				cloneWithID(comm, nextID+1),
				cloneWithID(ck, nextID+2),
			},
		}
		rest := append([]mpl.Stmt{ifStmt}, list[s.pos+2:]...)
		*s.list = append(list[:s.pos:s.pos], rest...)
		out = append(out, Mutant{
			Prog: cp, Kind: MutSkew, Site: site,
			Desc: fmt.Sprintf("skew checkpoint stmt #%d around %T into rank-parity branches (site %d)", ck.ID(), comm, site),
		})
	}
	return out
}

// AllMutants concatenates every operator's mutants.
func AllMutants(p *mpl.Program) []Mutant {
	out := DeleteMutants(p)
	out = append(out, MoveMutants(p)...)
	out = append(out, SkewMutants(p)...)
	return out
}

// PruneDropMutants returns one mutant per (checkpoint site, live variable)
// pair where the clean run's restore log recorded a non-initial value —
// profile, built by liveNonZero over the explored executions. Dropping a
// variable that held its initial value at every recorded instance is an
// equivalent mutant (the pruned restore reconstructs the value exactly), so
// such pairs are skipped rather than counted as escapes.
func PruneDropMutants(manifests map[int][]string, profile map[int]map[string]bool) []Mutant {
	stmts := make([]int, 0, len(manifests))
	for id := range manifests {
		stmts = append(stmts, id)
	}
	sort.Ints(stmts)
	var out []Mutant
	for _, id := range stmts {
		for _, name := range manifests[id] {
			if !profile[id][name] {
				continue
			}
			out = append(out, Mutant{
				Kind: MutPruneDrop, DropStmt: id, DropVar: name,
				Desc: fmt.Sprintf("drop live variable %q from checkpoint stmt #%d manifest", name, id),
			})
		}
	}
	return out
}

// cloneWithID deep-copies a statement and assigns it a fresh id, for
// duplicating statements into a second branch.
func cloneWithID(s mpl.Stmt, id int) mpl.Stmt {
	cp := cloneOne(s)
	switch st := cp.(type) {
	case *mpl.Send:
		st.StmtID = id
	case *mpl.Recv:
		st.StmtID = id
	case *mpl.Bcast:
		st.StmtID = id
	case *mpl.Reduce:
		st.StmtID = id
	case *mpl.Chkpt:
		st.StmtID = id
	default:
		panic(fmt.Sprintf("verify: cloneWithID: unexpected statement %T", cp))
	}
	return cp
}

// cloneOne deep-copies one statement via a throwaway program clone.
func cloneOne(s mpl.Stmt) mpl.Stmt {
	tmp := &mpl.Program{Body: []mpl.Stmt{s}}
	return mpl.Clone(tmp).Body[0]
}
