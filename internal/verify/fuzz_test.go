package verify

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// FuzzStraightCutTheorem is the end-to-end theorem fuzz: generate a random
// program from the fuzzed sub-seed, transform it with the full three-phase
// pipeline, explore the message-delivery interleavings at the fuzzed
// process count, and require every straight cut of every explored
// execution to be a recovery line (Theorem 3.2). Programs the pipeline
// rejects (outside Phase III's repair set) are skipped — the harness
// regenerates those; the fuzzer's job is the theorem, not the repair set.
// Run with `go test -fuzz FuzzStraightCutTheorem`; the seed corpus runs
// under plain `go test`.
func FuzzStraightCutTheorem(f *testing.F) {
	f.Add(int64(1), 2, 3)
	f.Add(int64(7), 3, 4)
	f.Add(int64(-6168010883773021199), 2, 8) // once escaped a self-pair analyzer bug
	f.Add(subSeedStride, 3, 2)
	f.Add(int64(0), 4, 5)
	f.Fuzz(func(t *testing.T, seed int64, nproc, depth int) {
		// Fold arbitrary fuzzed ints into the bounded ranges the explorer
		// can afford; mod-then-abs avoids the abs(MinInt) overflow.
		if nproc < 1 || nproc > 4 {
			nproc = 1 + abs(nproc%4)
		}
		if depth < 0 || depth > 6 {
			depth = abs(depth % 7)
		}
		rep, err := core.Transform(Generate(seed), core.DefaultConfig)
		if err != nil {
			t.Skip("outside the transformable set")
		}
		code, err := sim.Compile(rep.Program)
		if err != nil {
			t.Fatalf("transformed program does not compile: %v", err)
		}
		opts := ExploreOptions{Depth: depth, MaxSchedules: 24}
		_, err = Explore(code, nproc, DefaultInput, opts, func(m *Machine) error {
			chk, err := CheckTrace(m.Trace())
			if err != nil {
				return err
			}
			for _, v := range chk.Violations {
				t.Errorf("seed=%d nproc=%d schedule=%v: %s", seed, nproc, m.Schedule(), v)
			}
			if len(chk.Missing) > 0 {
				t.Errorf("seed=%d nproc=%d schedule=%v: straight cuts %v undefined",
					seed, nproc, m.Schedule(), chk.Missing)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("seed=%d nproc=%d: %v", seed, nproc, err)
		}
	})
}

// FuzzLivenessPrune is the end-to-end pruning-soundness fuzz: generate and
// transform a random program, explore its interleavings with restore
// logging, and require every straight cut of every explored execution to
// restore to the original FinalVars both from the full snapshots and from
// snapshots pruned to the per-site liveness manifests (dead variables reset
// to initial values). A divergence means the backward liveness analysis
// dropped a variable recovery still needed. Run with `go test -fuzz
// FuzzLivenessPrune`; the seed corpus runs under plain `go test`.
func FuzzLivenessPrune(f *testing.F) {
	f.Add(int64(1), 2, 3)
	f.Add(int64(3419378616714001440), 3, 4) // recv-overwritten tmp: no-op path matters
	f.Add(int64(-935306948222843914), 2, 5) // reduce inside rank-parity branches
	f.Add(int64(99), 3, 2)
	f.Add(int64(-1), 4, 4)
	f.Fuzz(func(t *testing.T, seed int64, nproc, depth int) {
		if nproc < 1 || nproc > 4 {
			nproc = 1 + abs(nproc%4)
		}
		if depth < 0 || depth > 6 {
			depth = abs(depth % 7)
		}
		rep, err := core.Transform(Generate(seed), core.DefaultConfig)
		if err != nil {
			t.Skip("outside the transformable set")
		}
		code, err := sim.Compile(rep.Program)
		if err != nil {
			t.Fatalf("transformed program does not compile: %v", err)
		}
		opts := ExploreOptions{Depth: depth, MaxSchedules: 16, LogRestore: true}
		_, err = Explore(code, nproc, DefaultInput, opts, func(m *Machine) error {
			divs, _, err := CheckRestores(m, nil)
			if err != nil {
				return err
			}
			for _, d := range divs {
				t.Errorf("seed=%d nproc=%d schedule=%v: %s", seed, nproc, m.Schedule(), d)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("seed=%d nproc=%d: %v", seed, nproc, err)
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
