package verify

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mpl"
	"repro/internal/par"
	"repro/internal/sim"
)

// Options configures a harness run.
type Options struct {
	Seed         int64
	Programs     int   // programs to generate and verify
	Depth        int   // branching bound per schedule
	MaxSchedules int   // explored executions per (program, nproc); 0 = 64
	Nprocs       []int // process counts; nil = {2, 3}
	Mutate       bool  // also run the mutation (no-vacuous-pass) mode
	Workers      int   // parallelism over programs; 0 = GOMAXPROCS
}

func (o Options) nprocs() []int {
	if len(o.Nprocs) == 0 {
		return []int{2, 3}
	}
	return o.Nprocs
}

func (o Options) maxSchedules() int {
	if o.MaxSchedules <= 0 {
		return 64
	}
	return o.MaxSchedules
}

// Counterexample is one harness finding, with everything needed to replay
// it deterministically: Generate(SubSeed) rebuilds the program,
// core.Transform(…, core.DefaultConfig) the transformed form, and
// RunSchedule(code, Nproc, DefaultInput, Schedule) the execution.
type Counterexample struct {
	SubSeed  int64
	Nproc    int
	Schedule []int
	Kind     string // "violation", "deadlock", "missing-index", "non-confluent", "restore-divergence", "error"
	Detail   string
}

// String renders the counterexample with its replay coordinates.
func (c Counterexample) String() string {
	return fmt.Sprintf("[%s] subseed=%d nproc=%d schedule=%v: %s",
		c.Kind, c.SubSeed, c.Nproc, c.Schedule, c.Detail)
}

// KindStats aggregates mutation outcomes for one operator.
type KindStats struct {
	Total         int
	CaughtStatic  int // checkpoint enumeration rejected the mutant
	CaughtRuntime int // the mutant failed to execute (never expected)
	CaughtCut     int // the straight-cut index contract changed
	CaughtDynamic int // an explored execution violated the theorem
	Escaped       []string
}

// Caught sums the detections.
func (s *KindStats) Caught() int {
	return s.CaughtStatic + s.CaughtRuntime + s.CaughtCut + s.CaughtDynamic
}

// Rate returns the detection rate in [0, 1] (1 for no mutants).
func (s *KindStats) Rate() float64 {
	if s.Total == 0 {
		return 1
	}
	return float64(s.Caught()) / float64(s.Total)
}

// Result aggregates a harness run.
type Result struct {
	Programs          int
	Executions        int
	CutsChecked       int
	RestoresChecked   int // cut restores replayed (full + pruned) for FinalVars equivalence
	TransformRejected int // generated programs outside Phase III's repair set, regenerated
	Counterexamples   []Counterexample
	Mutation          map[MutationKind]*KindStats // non-nil when Options.Mutate
}

// Ok reports whether the run found no counterexample. Mutation escape
// rates are judged by the caller (the CLI enforces the delete-rate bar).
func (r *Result) Ok() bool { return len(r.Counterexamples) == 0 }

// DefaultInput is the deterministic input builtin bound to every verified
// execution: pseudo-data that varies by rank and index but never by
// schedule.
func DefaultInput(rank, i int) int {
	v := (rank*31 + i*7) % 13
	if v < 0 {
		v += 13
	}
	return v
}

// Run generates Options.Programs random programs, transforms each with the
// full three-phase pipeline, explores the transformed program's schedule
// space at every configured process count, and checks Theorem 3.2 on every
// explored execution. With Mutate set it additionally sabotages each
// transformed program one checkpoint at a time and verifies the checker
// catches the sabotage. Programs are verified in parallel (par.Map); the
// result is deterministic for a given (Seed, Programs, Depth, Nprocs).
func Run(ctx context.Context, opts Options) (*Result, error) {
	gen := NewProgGen(opts.Seed)
	subs := make([]int64, opts.Programs)
	for k := range subs {
		subs[k] = gen.SubSeed(k)
	}
	perProg, err := par.Map(ctx, opts.Workers, subs, func(ctx context.Context, _ int, sub int64) (*Result, error) {
		return runOne(sub, opts)
	})
	if err != nil {
		return nil, err
	}
	total := &Result{}
	if opts.Mutate {
		total.Mutation = make(map[MutationKind]*KindStats)
	}
	for _, r := range perProg {
		total.Programs += r.Programs
		total.Executions += r.Executions
		total.CutsChecked += r.CutsChecked
		total.RestoresChecked += r.RestoresChecked
		total.TransformRejected += r.TransformRejected
		total.Counterexamples = append(total.Counterexamples, r.Counterexamples...)
		for kind, ks := range r.Mutation {
			tk := total.Mutation[kind]
			if tk == nil {
				tk = &KindStats{}
				total.Mutation[kind] = tk
			}
			tk.Total += ks.Total
			tk.CaughtStatic += ks.CaughtStatic
			tk.CaughtRuntime += ks.CaughtRuntime
			tk.CaughtCut += ks.CaughtCut
			tk.CaughtDynamic += ks.CaughtDynamic
			tk.Escaped = append(tk.Escaped, ks.Escaped...)
		}
	}
	return total, nil
}

// retryStride derives replacement sub-seeds when a generated program
// falls outside Phase III's repair set and must be regenerated.
const retryStride = int64(0x5DEECE66D)

// maxGenAttempts bounds regeneration per program slot.
const maxGenAttempts = 8

// runOne verifies a single generated program at every process count.
func runOne(sub int64, opts Options) (*Result, error) {
	res := &Result{Programs: 1}
	if opts.Mutate {
		res.Mutation = make(map[MutationKind]*KindStats)
	}
	var rep *core.Report
	var lastErr error
	for attempt := 0; attempt < maxGenAttempts; attempt++ {
		seed := sub + int64(attempt)*retryStride
		r, err := core.Transform(Generate(seed), core.DefaultConfig)
		if err == nil {
			sub, rep = seed, r
			break
		}
		lastErr = err
		res.TransformRejected++
	}
	if rep == nil {
		res.Counterexamples = append(res.Counterexamples, Counterexample{
			SubSeed: sub, Kind: "error",
			Detail: fmt.Sprintf("transform failed for %d consecutive regenerations: %v", maxGenAttempts, lastErr),
		})
		return res, nil
	}
	code, err := sim.Compile(rep.Program)
	if err != nil {
		res.Counterexamples = append(res.Counterexamples, Counterexample{
			SubSeed: sub, Kind: "error", Detail: "compile failed: " + err.Error(),
		})
		return res, nil
	}
	// indexSets[n] is the straight-cut contract at process count n: which
	// indexes a correct execution checks. The mutation mode compares
	// mutant runs against it. profile accumulates the (checkpoint site,
	// variable) pairs observed with non-initial values, feeding the
	// prune-drop operator's equivalent-mutant filter.
	indexSets := make(map[int]map[int]bool)
	profile := make(map[int]map[string]bool)
	for _, n := range opts.nprocs() {
		idx, err := verifyProgram(res, sub, code, n, opts, profile)
		if err != nil {
			return nil, err
		}
		indexSets[n] = idx
	}
	if opts.Mutate {
		runMutation(res, sub, rep.Program, code, profile, indexSets, opts)
	}
	return res, nil
}

// verifyProgram explores one (program, nproc) pair, checking every
// execution, and returns the set of straight-cut indexes checked. Besides
// the four trace deciders it replays every straight cut's restore — full
// and liveness-pruned — and asserts FinalVars equivalence (the fifth
// axis), recording non-initial live values into profile along the way.
func verifyProgram(res *Result, sub int64, code *sim.Code, n int, opts Options, profile map[int]map[string]bool) (map[int]bool, error) {
	indexes := make(map[int]bool)
	exOpts := ExploreOptions{Depth: opts.Depth, MaxSchedules: opts.maxSchedules(), LogRestore: true}
	er, err := Explore(code, n, DefaultInput, exOpts, func(m *Machine) error {
		res.Executions++
		chk, err := CheckTrace(m.Trace())
		if err != nil {
			return err
		}
		res.CutsChecked += len(chk.Indexes)
		for _, i := range chk.Indexes {
			indexes[i] = true
		}
		if len(chk.Missing) > 0 {
			res.Counterexamples = append(res.Counterexamples, Counterexample{
				SubSeed: sub, Nproc: n, Schedule: m.Schedule(), Kind: "missing-index",
				Detail: fmt.Sprintf("straight cuts %v undefined: some process skipped them", chk.Missing),
			})
		}
		for _, v := range chk.Violations {
			res.Counterexamples = append(res.Counterexamples, Counterexample{
				SubSeed: sub, Nproc: n, Schedule: m.Schedule(), Kind: "violation",
				Detail: v.String(),
			})
		}
		divs, cuts, err := m.checkRestores(nil, modeBoth)
		if err != nil {
			return err
		}
		res.RestoresChecked += cuts
		for _, d := range divs {
			res.Counterexamples = append(res.Counterexamples, Counterexample{
				SubSeed: sub, Nproc: n, Schedule: m.Schedule(), Kind: "restore-divergence",
				Detail: d.String(),
			})
		}
		m.liveNonZero(profile)
		return nil
	})
	if err != nil {
		if de, ok := err.(*DeadlockError); ok {
			res.Counterexamples = append(res.Counterexamples, Counterexample{
				SubSeed: sub, Nproc: n, Schedule: de.Schedule, Kind: "deadlock",
				Detail: "generated program deadlocked",
			})
			return indexes, nil
		}
		if _, ok := err.(*HarnessError); ok {
			return nil, fmt.Errorf("subseed %d, nproc %d: %w", sub, n, err)
		}
		res.Counterexamples = append(res.Counterexamples, Counterexample{
			SubSeed: sub, Nproc: n, Kind: "error", Detail: err.Error(),
		})
		return indexes, nil
	}
	if !er.Confluent() {
		res.Counterexamples = append(res.Counterexamples, Counterexample{
			SubSeed: sub, Nproc: n, Kind: "non-confluent",
			Detail: fmt.Sprintf("%d distinct execution signatures across %d schedules (MPL programs must be schedule-deterministic)",
				len(er.Signatures), er.Executions),
		})
	}
	return indexes, nil
}

// runMutation sabotages the transformed program one checkpoint at a time
// — plus, per checkpoint site, one live manifest variable at a time — and
// records how each mutant was (or was not) caught.
func runMutation(res *Result, sub int64, transformed *mpl.Program, code *sim.Code, profile map[int]map[string]bool, indexSets map[int]map[int]bool, opts Options) {
	muts := AllMutants(transformed)
	muts = append(muts, PruneDropMutants(code.Manifests, profile)...)
	for _, mut := range muts {
		ks := res.Mutation[mut.Kind]
		if ks == nil {
			ks = &KindStats{}
			res.Mutation[mut.Kind] = ks
		}
		ks.Total++
		var outcome string
		if mut.Kind == MutPruneDrop {
			outcome = classifyPruneDrop(mut, code, indexSets, opts)
		} else {
			outcome = classifyMutant(mut, indexSets, opts)
		}
		switch outcome {
		case "static":
			ks.CaughtStatic++
		case "runtime":
			ks.CaughtRuntime++
		case "cut":
			ks.CaughtCut++
		case "dynamic":
			ks.CaughtDynamic++
		default:
			ks.Escaped = append(ks.Escaped,
				fmt.Sprintf("subseed=%d %s", sub, mut.Desc))
		}
	}
}

// classifyMutant runs the detection ladder on one mutant: static
// (enumeration rejects it), dynamic (an explored execution violates the
// theorem), cut contract (the straight-cut index set changed), runtime
// (execution failed outright), or "escaped".
func classifyMutant(mut Mutant, indexSets map[int]map[int]bool, opts Options) string {
	code, err := sim.Compile(mut.Prog)
	if err != nil {
		return "static"
	}
	outcome := "escaped"
	exOpts := ExploreOptions{Depth: opts.Depth, MaxSchedules: opts.maxSchedules()}
	ns := make([]int, 0, len(indexSets))
	for n := range indexSets {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	for _, n := range ns {
		want := indexSets[n]
		got := make(map[int]bool)
		sawMissing := false
		sawViolation := false
		_, err := Explore(code, n, DefaultInput, exOpts, func(m *Machine) error {
			chk, err := CheckTrace(m.Trace())
			if err != nil {
				return err
			}
			for _, i := range chk.Indexes {
				got[i] = true
			}
			if len(chk.Missing) > 0 {
				sawMissing = true
			}
			if len(chk.Violations) > 0 {
				sawViolation = true
			}
			return nil
		})
		if err != nil {
			return "runtime"
		}
		if sawViolation {
			return "dynamic" // strongest verdict: stop immediately
		}
		if sawMissing || !sameIndexSet(got, want) {
			outcome = "cut"
		}
	}
	return outcome
}

// errCaught aborts an exploration early once a mutant is detected.
var errCaught = errors.New("verify: mutant caught")

// classifyPruneDrop runs one prune-drop mutant: the program and its
// execution are untouched (so the trace deciders and cut contract cannot
// fire), but the manifests handed to the pruned restore replays are
// sabotaged — DropVar is removed from site DropStmt's live set. Detection
// must come from the restore-equivalence axis alone.
func classifyPruneDrop(mut Mutant, code *sim.Code, indexSets map[int]map[int]bool, opts Options) string {
	manifests := make(map[int][]string, len(code.Manifests))
	for id, names := range code.Manifests {
		manifests[id] = names
	}
	dropped := make([]string, 0, len(code.Manifests[mut.DropStmt]))
	for _, name := range code.Manifests[mut.DropStmt] {
		if name != mut.DropVar {
			dropped = append(dropped, name)
		}
	}
	manifests[mut.DropStmt] = dropped

	exOpts := ExploreOptions{Depth: opts.Depth, MaxSchedules: opts.maxSchedules(), LogRestore: true}
	ns := make([]int, 0, len(indexSets))
	for n := range indexSets {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	for _, n := range ns {
		_, err := Explore(code, n, DefaultInput, exOpts, func(m *Machine) error {
			divs, _, err := m.checkRestores(manifests, modePruned)
			if err != nil {
				return err
			}
			if len(divs) > 0 {
				return errCaught
			}
			return nil
		})
		if errors.Is(err, errCaught) {
			return "dynamic"
		}
		if err != nil {
			return "runtime"
		}
	}
	return "escaped"
}

// sameIndexSet compares two straight-cut index sets.
func sameIndexSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !b[i] {
			return false
		}
	}
	return true
}

// MutationKinds returns the operators in a stable reporting order.
func MutationKinds(m map[MutationKind]*KindStats) []MutationKind {
	kinds := make([]MutationKind, 0, len(m))
	for k := range m {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}
