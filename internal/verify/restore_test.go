package verify

import (
	"testing"

	"repro/internal/mpl"
	"repro/internal/sim"
)

// restoreRing is a 2-iteration ring exchange where every rank checkpoints
// at the top of each iteration, before any communication — so every cut is
// consistent and every process's a, v, iter are in the site manifest.
func restoreRing(t *testing.T) *sim.Code {
	t.Helper()
	prog := mpl.NewBuilder("restorering").
		Vars("a", "v", "iter").
		Assign("a", mpl.Add(mpl.Rank(), mpl.Int(1))).
		Assign("iter", mpl.Int(0)).
		While(mpl.Lt(mpl.V("iter"), mpl.Int(2)), func(b *mpl.Builder) {
			b.Chkpt()
			b.Send(mpl.Add(mpl.Rank(), mpl.Int(1)), "a")
			b.Recv(mpl.Sub(mpl.Rank(), mpl.Int(1)), "v")
			b.Assign("a", mpl.Add(mpl.V("a"), mpl.V("v")))
			b.Assign("iter", mpl.Add(mpl.V("iter"), mpl.Int(1)))
		}).
		MustProgram()
	code, err := sim.Compile(prog)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return code
}

// TestCheckRestoresClean: on a correct program, every explored schedule's
// every cut must restore — full AND pruned — to the original FinalVars.
func TestCheckRestoresClean(t *testing.T) {
	code := restoreRing(t)
	for _, n := range []int{2, 3} {
		cuts := 0
		_, err := Explore(code, n, DefaultInput, ExploreOptions{Depth: 6, LogRestore: true}, func(m *Machine) error {
			divs, c, err := CheckRestores(m, nil)
			if err != nil {
				return err
			}
			if len(divs) > 0 {
				t.Errorf("n=%d schedule %v: unexpected divergence %v", n, m.Schedule(), divs[0])
			}
			cuts += c
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: Explore: %v", n, err)
		}
		if cuts == 0 {
			t.Fatalf("n=%d: no cut restores replayed", n)
		}
	}
}

// TestCheckRestoresCatchesDroppedLiveVar: sabotaging the manifest — the
// prune-drop mutation — must surface as a pruned-mode divergence, while the
// full-mode replays stay clean (they never consult the manifest).
func TestCheckRestoresCatchesDroppedLiveVar(t *testing.T) {
	code := restoreRing(t)
	var site int
	for id, manifest := range code.Manifests {
		site = id
		has := false
		for _, name := range manifest {
			has = has || name == "a"
		}
		if !has {
			t.Fatalf("manifest %v at site #%d does not keep a", manifest, id)
		}
	}
	sabotaged := map[int][]string{site: {"iter", "v"}} // drops "a"

	caught := false
	_, err := Explore(code, 2, DefaultInput, ExploreOptions{Depth: 6, LogRestore: true}, func(m *Machine) error {
		divs, _, err := m.checkRestores(sabotaged, modeBoth)
		if err != nil {
			return err
		}
		for _, d := range divs {
			if d.Mode != "pruned" {
				t.Errorf("divergence in %s mode: %v (only pruned replays see the manifest)", d.Mode, d)
			}
			caught = true
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if !caught {
		t.Fatal("dropping live variable a from the manifest went undetected")
	}
}

// TestCheckRestoresRequiresLogging: the axis refuses machines that were not
// recording snapshots and send logs.
func TestCheckRestoresRequiresLogging(t *testing.T) {
	code := restoreRing(t)
	m, err := NewMachine(code, 2, DefaultInput)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	if _, _, err := CheckRestores(m, nil); err == nil {
		t.Fatal("CheckRestores on an unlogged machine must error")
	}
}

// TestPruneDropMutantsFilter: the generator must propose exactly the
// (site, variable) pairs the profile marks, in deterministic order.
func TestPruneDropMutantsFilter(t *testing.T) {
	manifests := map[int][]string{3: {"a", "iter"}, 7: {"a"}}
	profile := map[int]map[string]bool{3: {"a": true}, 7: {"a": true}}
	muts := PruneDropMutants(manifests, profile)
	if len(muts) != 2 {
		t.Fatalf("got %d mutants, want 2: %v", len(muts), muts)
	}
	if muts[0].DropStmt != 3 || muts[0].DropVar != "a" || muts[1].DropStmt != 7 {
		t.Errorf("unexpected mutants %v", muts)
	}
	for _, mut := range muts {
		if mut.Kind != MutPruneDrop || mut.Prog != nil {
			t.Errorf("mutant %v: want Kind prune-drop with nil Prog", mut)
		}
	}
	// iter at site 3 was never marked (equivalent drop) — not generated.
	if got := PruneDropMutants(manifests, map[int]map[string]bool{}); len(got) != 0 {
		t.Errorf("empty profile generated %v", got)
	}
}
