package verify

import (
	"fmt"
	"sort"

	"repro/internal/mpl"
	"repro/internal/trace"
)

// This file is the harness's fifth cross-validation axis: restore
// equivalence. The four trace deciders prove every straight cut is a
// CONSISTENT global state; this axis additionally proves the cut is a
// USABLE one — re-instantiating the machine from the cut's local snapshots
// plus the reconstructed in-flight channel state and running to completion
// reproduces the original FinalVars exactly. It runs each cut twice: once
// from the full recorded environments (the deterministic-replay theorem)
// and once from environments pruned to the per-site liveness manifests with
// dead variables reset to their initial value (the pruning soundness
// theorem). Any divergence, in either mode, is a counterexample.

// RestoreDivergence is one failed restore replay.
type RestoreDivergence struct {
	Index    int    // straight-cut index restored from
	Instance int    // instance restored from
	Mode     string // "full" or "pruned"
	Detail   string
}

// String renders the divergence.
func (d RestoreDivergence) String() string {
	return fmt.Sprintf("restore from cut R_%d (instance %d, %s): %s", d.Index, d.Instance, d.Mode, d.Detail)
}

// restoreModes selects which reconstruction modes CheckRestores replays.
type restoreModes int

const (
	modeFull restoreModes = 1 << iota
	modePruned
	modeBoth = modeFull | modePruned
)

// CheckRestores replays every straight cut of a finished, restore-logged
// execution and compares the replayed FinalVars against the original run's.
// manifests overrides the compiled per-site manifests (nil uses
// code.Manifests) — the prune-drop mutation operator passes sabotaged
// manifests here. Returns the divergences and the number of cut restores
// replayed.
func CheckRestores(m *Machine, manifests map[int][]string) ([]RestoreDivergence, int, error) {
	return m.checkRestores(manifests, modeBoth)
}

func (m *Machine) checkRestores(manifests map[int][]string, modes restoreModes) ([]RestoreDivergence, int, error) {
	if !m.logRestore {
		return nil, 0, fmt.Errorf("verify: machine was not restore-logged")
	}
	if manifests == nil {
		manifests = m.code.Manifests
	}
	want := m.FinalVars()

	// Group each process's checkpoint records by straight-cut index. The
	// cut R_i at instance k exists when every process recorded (i, k);
	// per-process records for one index arrive in instance order, so the
	// k-th entry has instance k.
	byIndex := make([]map[int][]*chkptRecord, m.n)
	for p := 0; p < m.n; p++ {
		byIndex[p] = make(map[int][]*chkptRecord)
		for _, rec := range m.chkpts[p] {
			byIndex[p][rec.index] = append(byIndex[p][rec.index], rec)
		}
	}
	var indexes []int
	for idx := range byIndex[0] {
		common := len(byIndex[0][idx])
		for p := 1; p < m.n; p++ {
			if c := len(byIndex[p][idx]); c < common {
				common = c
			}
		}
		if common > 0 {
			indexes = append(indexes, idx)
		}
	}
	sort.Ints(indexes)

	var divs []RestoreDivergence
	cuts := 0
	cut := make([]*chkptRecord, m.n)
	for _, idx := range indexes {
		common := len(byIndex[0][idx])
		for p := 1; p < m.n; p++ {
			if c := len(byIndex[p][idx]); c < common {
				common = c
			}
		}
		for k := 0; k < common; k++ {
			for p := 0; p < m.n; p++ {
				cut[p] = byIndex[p][idx][k]
			}
			for _, mode := range []struct {
				name   string
				on     restoreModes
				pruned bool
			}{{"full", modeFull, false}, {"pruned", modePruned, true}} {
				if modes&mode.on == 0 {
					continue
				}
				cuts++
				detail, err := m.replayCut(cut, mode.pruned, manifests, want)
				if err != nil {
					return divs, cuts, err
				}
				if detail != "" {
					divs = append(divs, RestoreDivergence{
						Index: idx, Instance: k, Mode: mode.name, Detail: detail,
					})
				}
			}
		}
	}
	return divs, cuts, nil
}

// replayCut re-instantiates the machine from one straight cut and runs it
// to completion with the deterministic lowest-id rule (confluence makes any
// completion order equivalent). Returns a non-empty description when the
// replay's FinalVars differ from want, and an error only for harness-level
// failures (inconsistent cut reconstruction, budget exhaustion).
func (m *Machine) replayCut(cut []*chkptRecord, pruned bool, manifests map[int][]string, want []map[string]int) (string, error) {
	rm, err := m.restoredMachine(cut, pruned, manifests)
	if err != nil {
		return "", err
	}
	for !rm.Done() {
		en := rm.Enabled()
		if len(en) == 0 {
			return fmt.Sprintf("restored run deadlocked after %d steps", len(rm.schedule)), nil
		}
		if err := rm.Step(en[0]); err != nil {
			return fmt.Sprintf("restored run failed: %v", err), nil
		}
	}
	got := rm.FinalVars()
	for p := range want {
		for name, w := range want[p] {
			if g, ok := got[p][name]; !ok || g != w {
				return fmt.Sprintf("process %d: %s = %d after restore, want %d", p, name, got[p][name], w), nil
			}
		}
		if len(got[p]) != len(want[p]) {
			return fmt.Sprintf("process %d: %d variables after restore, want %d", p, len(got[p]), len(want[p])), nil
		}
	}
	return "", nil
}

// restoredMachine builds a machine positioned at the given straight cut:
// process states from the cut's local snapshots (full, or pruned to the
// site manifest with dead variables reset to initial values) and channels
// holding exactly the messages in flight across the cut, rebuilt from the
// send log.
func (m *Machine) restoredMachine(cut []*chkptRecord, pruned bool, manifests map[int][]string) (*Machine, error) {
	rm := &Machine{
		code:   m.code,
		n:      m.n,
		procs:  make([]*procState, m.n),
		chans:  make([][][]msg, m.n),
		tr:     trace.NewTrace(m.n),
		budget: DefaultBudget,
	}
	for p := 0; p < m.n; p++ {
		rec := cut[p]
		var inputFn func(int) int
		if m.input != nil {
			rank := p
			inputFn = func(i int) int { return m.input(rank, i) }
		}
		// NewEnv zero-initializes every declared variable — the "dead
		// variables restore to their declared initial values" contract.
		env := mpl.NewEnv(m.code.Prog, p, m.n, inputFn)
		manifest := manifests[rec.stmtID]
		if pruned && manifest != nil {
			for _, name := range manifest {
				if v, ok := rec.vars[name]; ok {
					env.Vars[name] = v
				}
			}
		} else {
			for k, v := range rec.vars {
				env.Vars[k] = v
			}
		}
		instances := make(map[int]int, len(rec.instances))
		for k, v := range rec.instances {
			instances[k] = v
		}
		rm.procs[p] = &procState{
			pc:        rec.pc,
			env:       env,
			clock:     rec.clock.Clone(),
			sendSeq:   append([]int(nil), rec.sendSeq...),
			recvSeq:   append([]int(nil), rec.recvSeq...),
			instances: instances,
		}
	}
	// In-flight channel state: everything sender a had sent to receiver b
	// at its cut point that b had not yet received at its own. A receiver
	// ahead of its sender would be an orphan message — exactly what the
	// four cut deciders prove cannot happen on a straight cut of a
	// transformed program — so it is a harness error here, not a finding.
	for a := 0; a < m.n; a++ {
		rm.chans[a] = make([][]msg, m.n)
		for b := 0; b < m.n; b++ {
			if a == b {
				continue
			}
			sent, rcvd := cut[a].sendSeq[b], cut[b].recvSeq[a]
			if rcvd > sent {
				return nil, fmt.Errorf("verify: cut R_%d is not reconstructible: process %d received %d messages from %d which had sent %d",
					cut[a].index, b, rcvd, a, sent)
			}
			for _, mg := range m.sendLog[a][b] {
				if mg.seq >= rcvd && mg.seq < sent {
					rm.chans[a][b] = append(rm.chans[a][b], mg)
				}
			}
		}
	}
	for p := 0; p < m.n; p++ {
		if err := rm.normalize(p); err != nil {
			return nil, fmt.Errorf("verify: normalizing restored process %d: %w", p, err)
		}
	}
	return rm, nil
}

// liveNonZero scans a finished, restore-logged execution for (checkpoint
// site, manifest variable) pairs a prune-drop mutation can actually
// corrupt, so equivalent mutants are never generated. Two conditions,
// both required at some recorded instance:
//
//   - The recorded value differs from the variable's initial value.
//     Dropping a variable that is zero at every instance is invisible —
//     the pruned restore reconstructs exactly the recorded value.
//
//   - The zeroed value can be observed: the instance's first-access
//     classification (recorded dynamically as the clean run executed past
//     the checkpoint) says the variable was read before any redefinition
//     (readFirst), or never touched again (unresolved — it survives to
//     exit, where FinalVars observes every variable). Liveness alone is
//     too coarse here: a variable can be live at the site through a path
//     the concrete execution never takes — a guarded-boundary receive
//     that is in range on every rank holding a non-initial value, a
//     branch not taken — and dropping it is then invisible.
func (m *Machine) liveNonZero(acc map[int]map[string]bool) {
	for p := 0; p < m.n; p++ {
		for _, rec := range m.chkpts[p] {
			for _, name := range m.code.Manifests[rec.stmtID] {
				if rec.vars[name] == 0 {
					continue
				}
				if !rec.readFirst[name] && !rec.unresolved[name] {
					continue
				}
				set := acc[rec.stmtID]
				if set == nil {
					set = make(map[string]bool)
					acc[rec.stmtID] = set
				}
				set[name] = true
			}
		}
	}
}
