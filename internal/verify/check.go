package verify

import (
	"errors"
	"fmt"

	"repro/internal/trace"
	"repro/internal/zigzag"
)

// clockAuditLimit bounds the trace size (total events) for the full
// pairwise clock-vs-structure audit, which is O(E²·n).
const clockAuditLimit = 600

// HarnessError reports a disagreement between the independently
// implemented consistency deciders. For a full cut (one checkpoint per
// process) the four criteria — vector clocks, structural happened-before,
// the orphan-message criterion, and zigzag-path freedom — are provably
// equivalent, so any disagreement is a bug in this harness or the
// libraries under it, never a property of the program being checked.
type HarnessError struct {
	Index      int
	VClock     bool
	Structural bool
	Orphan     bool
	Zigzag     bool
	Detail     string
}

// Error implements error.
func (e *HarnessError) Error() string {
	if e.Detail != "" {
		return "verify: harness cross-validation failed: " + e.Detail
	}
	return fmt.Sprintf("verify: harness cross-validation failed at straight cut R_%d: vclock=%v structural=%v orphan=%v zigzag=%v",
		e.Index, e.VClock, e.Structural, e.Orphan, e.Zigzag)
}

// Violation is a theorem counterexample: a straight cut of one explored
// execution that is not a recovery line.
type Violation struct {
	Index int              // the straight cut R_Index
	Cut   trace.Cut        //
	A, B  trace.Checkpoint // witness: A happened before B
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("straight cut R_%d is not a recovery line: %v happened before %v", v.Index, v.A, v.B)
}

// CheckReport summarizes checking one execution.
type CheckReport struct {
	Indexes    []int // straight-cut indexes that existed and were checked
	Missing    []int // indexes taken by some processes but not all (R_i undefined)
	Violations []Violation
}

// Ok reports whether the execution upholds Theorem 3.2.
func (r *CheckReport) Ok() bool { return len(r.Violations) == 0 }

// CheckTrace asserts the paper's Theorem 3.2 on one finished execution:
// every straight cut R_i that exists is a recovery line. Each cut's
// consistency is decided four independent ways and the verdicts must
// agree exactly; a disagreement returns a HarnessError. Indexes that some
// process never checkpointed (R_i undefined) are reported in Missing —
// the caller decides whether that breaks its contract (it does for an
// unmutated transformed program).
func CheckTrace(tr *trace.Trace) (*CheckReport, error) {
	hb, err := trace.NewHB(tr)
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	zz, err := zigzag.FromTrace(tr)
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	if tr.Len() <= clockAuditLimit {
		if err := hb.CheckClockConsistency(); err != nil {
			return nil, &HarnessError{Detail: "vector clocks disagree with event structure: " + err.Error()}
		}
	}
	ord := checkpointOrdinals(tr)
	rep := &CheckReport{}
	for _, i := range tr.CheckpointIndexes() {
		cut, err := tr.StraightCut(i)
		if errors.Is(err, trace.ErrNoCheckpoint) {
			rep.Missing = append(rep.Missing, i)
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("verify: %w", err)
		}
		vclk := trace.IsRecoveryLine(cut)
		structural := hb.CutConsistentStructural(cut)
		orphan := hb.CutConsistentByMessages(cut)
		zfree := zigzagFree(zz, cut, ord)
		if vclk != structural || vclk != orphan || vclk != zfree {
			return nil, &HarnessError{Index: i, VClock: vclk, Structural: structural, Orphan: orphan, Zigzag: zfree}
		}
		rep.Indexes = append(rep.Indexes, i)
		if !vclk {
			a, b, _ := trace.FirstViolation(cut)
			rep.Violations = append(rep.Violations, Violation{Index: i, Cut: cut, A: a, B: b})
		}
	}
	return rep, nil
}

// ordKey identifies a checkpoint event within an execution.
type ordKey struct{ proc, eventSeq int }

// checkpointOrdinals maps every checkpoint to its 1-based temporal ordinal
// on its process — the coordinate system of the zigzag analysis.
func checkpointOrdinals(tr *trace.Trace) map[ordKey]int {
	out := make(map[ordKey]int)
	for p, hist := range tr.Events() {
		k := 0
		for _, e := range hist {
			if e.Kind == trace.KindCheckpoint {
				k++
				out[ordKey{p, e.Seq}] = k
			}
		}
	}
	return out
}

// zigzagFree decides cut consistency the Netzer-Xu way: a full cut is
// consistent iff there is no zigzag path between any two (possibly equal)
// members — the p == q case is the Z-cycle check.
func zigzagFree(zz *zigzag.Analysis, cut trace.Cut, ord map[ordKey]int) bool {
	for _, a := range cut {
		for _, b := range cut {
			if zz.ZPath(a.Proc, ord[ordKey{a.Proc, a.EventSeq}], b.Proc, ord[ordKey{b.Proc, b.EventSeq}]) {
				return false
			}
		}
	}
	return true
}
