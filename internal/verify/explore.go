package verify

import (
	"fmt"

	"repro/internal/sim"
)

// ExploreOptions bounds a systematic exploration.
type ExploreOptions struct {
	// Depth bounds the number of BRANCHING decisions per schedule: states
	// where more than one non-slept process is enabled. Beyond the bound
	// the run completes deterministically (lowest enabled id first), so
	// every explored schedule still yields a full, checkable trace.
	Depth int
	// MaxSchedules caps the number of completed executions (0 = no cap).
	MaxSchedules int
	// Budget is the per-execution instruction budget (0 = DefaultBudget).
	Budget int
	// LogRestore records per-checkpoint local snapshots and the full send
	// log on every explored machine, enabling the restore-equivalence
	// checks (CheckRestores) inside visit callbacks.
	LogRestore bool
}

// ExploreResult summarizes one exploration.
type ExploreResult struct {
	Executions int            // completed executions visited
	Signatures map[uint64]int // execution signature -> count
	Truncated  bool           // MaxSchedules cut the search off
}

// Confluent reports whether every explored execution produced the same
// per-process histories — the Kahn-network determinism that MPL programs
// (blocking receives from a specific source over reliable FIFO channels,
// asynchronous sends) must exhibit. A second signature is itself a
// correctness finding: it means scheduling leaked into the message
// structure, which the deterministic-replay story depends on not happening.
func (r *ExploreResult) Confluent() bool { return len(r.Signatures) <= 1 }

// DeadlockError is an exploration counterexample: a schedule after which
// some process waits forever. The schedule replays it via RunSchedule.
type DeadlockError struct {
	Schedule []int
}

// Error implements error.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("verify: deadlock after %d steps (schedule %v)", len(e.Schedule), e.Schedule)
}

// Explore runs the compiled program under all message-delivery
// interleavings up to the branching bound — DPOR-lite: a depth-first
// search over schedule prefixes with sleep sets pruning interleavings
// that only commute independent transitions. visit is called once per
// completed execution with the finished machine (trace and schedule
// intact); a non-nil return aborts the search and is surfaced verbatim.
func Explore(code *sim.Code, n int, input func(rank, i int) int, opts ExploreOptions, visit func(*Machine) error) (*ExploreResult, error) {
	ex := &explorer{
		code:  code,
		n:     n,
		input: input,
		opts:  opts,
		visit: visit,
		res:   &ExploreResult{Signatures: make(map[uint64]int)},
	}
	m, err := ex.fresh()
	if err != nil {
		return ex.res, err
	}
	if err := ex.dfs(m, nil, 0); err != nil {
		return ex.res, err
	}
	return ex.res, nil
}

type explorer struct {
	code  *sim.Code
	n     int
	input func(rank, i int) int
	opts  ExploreOptions
	visit func(*Machine) error
	res   *ExploreResult
}

func (ex *explorer) fresh() (*Machine, error) {
	m, err := newMachine(ex.code, ex.n, ex.input, ex.opts.LogRestore)
	if err != nil {
		return nil, err
	}
	if ex.opts.Budget > 0 {
		m.SetBudget(ex.opts.Budget)
	}
	return m, nil
}

// replay builds a fresh machine advanced through the given prefix.
func (ex *explorer) replay(prefix []int) (*Machine, error) {
	m, err := ex.fresh()
	if err != nil {
		return nil, err
	}
	for i, p := range prefix {
		if err := m.Step(p); err != nil {
			return nil, fmt.Errorf("verify: replaying prefix step %d (proc %d): %w", i, p, err)
		}
	}
	return m, nil
}

func (ex *explorer) capped() bool {
	return ex.opts.MaxSchedules > 0 && ex.res.Executions >= ex.opts.MaxSchedules
}

func (ex *explorer) finish(m *Machine) error {
	ex.res.Executions++
	ex.res.Signatures[m.Signature()]++
	if ex.visit != nil {
		return ex.visit(m)
	}
	return nil
}

// dfs advances m to completion. Runs of single-choice states are walked
// inline (updating the sleep set after each executed transition); a state
// with several awake transitions is a branch point, recursed per choice
// with sleep-set pruning: after exploring transition p, p joins the sleep
// set of its later siblings, and a child's sleep set keeps only the
// transitions independent of the one just taken.
func (ex *explorer) dfs(m *Machine, sleep map[int]bool, branchings int) error {
	for {
		if ex.capped() {
			ex.res.Truncated = true
			return nil
		}
		if m.Done() {
			return ex.finish(m)
		}
		en := m.Enabled()
		if len(en) == 0 {
			return &DeadlockError{Schedule: m.Schedule()}
		}
		awake := awakeOf(en, sleep)
		if len(awake) == 0 {
			// Every enabled transition is asleep: this state's successors
			// are covered by sibling branches. Prune.
			return nil
		}
		if len(awake) == 1 || branchings >= ex.opts.Depth {
			p := awake[0]
			next := pruneSleep(m, sleep, p)
			if err := m.Step(p); err != nil {
				return fmt.Errorf("%w (schedule %v)", err, m.Schedule())
			}
			sleep = next
			continue
		}

		// Branch point.
		branchings++
		base := m.Schedule()
		var explored []int
		for _, p := range awake {
			if ex.capped() {
				ex.res.Truncated = true
				return nil
			}
			childSleep := pruneSleep(m, sleep, p)
			for _, q := range explored {
				if q != p && !m.Dependent(p, q) {
					childSleep[q] = true
				}
			}
			cm, err := ex.replay(base)
			if err != nil {
				return err
			}
			if err := cm.Step(p); err != nil {
				return fmt.Errorf("%w (schedule %v)", err, cm.Schedule())
			}
			if err := ex.dfs(cm, childSleep, branchings); err != nil {
				return err
			}
			explored = append(explored, p)
		}
		return nil
	}
}

// awakeOf filters the enabled set by the sleep set, preserving ascending
// id order.
func awakeOf(enabled []int, sleep map[int]bool) []int {
	var out []int
	for _, p := range enabled {
		if !sleep[p] {
			out = append(out, p)
		}
	}
	return out
}

// pruneSleep derives the sleep set after executing p at m's current
// state: sleeping transitions stay asleep only while independent of the
// executed one.
func pruneSleep(m *Machine, sleep map[int]bool, p int) map[int]bool {
	out := make(map[int]bool, len(sleep))
	for q := range sleep {
		if q != p && !m.Dependent(p, q) {
			out[q] = true
		}
	}
	return out
}
