// Package place implements Phase III of the paper (§3.3): given a program
// whose checkpoint statements are enumerated into straight cuts S_i, it
// moves checkpoint statements until no causal path connects two members of
// any S_i in the extended CFG Ĝ — Condition 1 — so that in any further
// execution every straight cut R_i is a recovery line (Theorem 3.2).
//
// The engine is Algorithm 3.2 run to fixpoint: find a violating pair
// (C_i^A, C_i^B) with a causal path γ from C_i^A to C_i^B, and move C_i^B
// backward in the CFG to an edge ⟨a, b⟩ on its dominator chain such that
// C_i^A cannot reach a in Ĝ (the ENTRY node guarantees such an edge
// exists, per the paper's termination argument). Moving a checkpoint can
// unbalance if-branch checkpoint counts, so each round re-equalizes
// (Phase I's add/remove rule) before re-analyzing.
//
// With Options.PreserveLoops (the paper's end-of-§3.3 optimization, on by
// default in DefaultOptions) a violating pair whose every causal path
// traverses a backward control edge is NOT moved: such causality only
// crosses loop iterations, so under Definition 2.3's latest-instance
// straight cuts the recovery line is preserved provided checkpoint
// completion follows message order; the pair is recorded as an ordering
// constraint instead. The simulator verifies this empirically.
package place

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/insert"
	"repro/internal/match"
	"repro/internal/mpl"
)

// Options configures Phase III.
type Options struct {
	// Match configures Phase II (the matcher runs each fixpoint round).
	Match match.Options
	// PreserveLoops keeps checkpoints inside loops when every violating
	// path crosses a loop boundary (back edge), recording an ordering
	// constraint instead of moving.
	PreserveLoops bool
	// MaxIterations bounds the move-reanalyze fixpoint. Zero means the
	// default (100).
	MaxIterations int
	// Workers fans the per-checkpoint-node reachability analysis across
	// goroutines (par.Workers semantics: 0 = GOMAXPROCS, 1 = serial). The
	// result is identical for every worker count.
	Workers int
	// Arena, when non-nil, supplies round-scoped scratch buffers reused
	// across fixpoint rounds (reset at each round boundary).
	Arena *cfg.Arena
	// AssumeOwned lets Ensure mutate the input program directly instead of
	// cloning it first — for callers (like core.Transform) that already
	// work on a private copy.
	AssumeOwned bool
}

// DefaultOptions enables the loop-preservation optimization.
var DefaultOptions = Options{PreserveLoops: true}

func (o Options) maxIter() int {
	if o.MaxIterations <= 0 {
		return 100
	}
	return o.MaxIterations
}

// Violation is a detected breach of Condition 1: the checkpoint at
// FromStmt can happen-before the one at ToStmt within the same straight
// cut.
type Violation struct {
	Index    int // the straight-cut index i
	FromStmt int // checkpoint statement id of C_i^A
	ToStmt   int // checkpoint statement id of C_i^B
	// ViaBackEdge reports that every witness path crosses a loop boundary.
	ViaBackEdge bool
}

// Move records one application of Algorithm 3.2 Step 2.
type Move struct {
	ChkptStmt  int    // the moved checkpoint statement id
	Index      int    // its straight-cut index at move time
	BeforeStmt int    // reinsertion point: before this statement id
	Reason     string // human-readable description
}

// Ordering is a loop-preserved pair: causality between the two checkpoint
// statements exists only across loop iterations.
type Ordering struct {
	Index       int
	EarlierStmt int // the upstream checkpoint (C_i^A)
	LaterStmt   int // the downstream checkpoint (C_i^B)
}

// Result reports the transformation.
type Result struct {
	// Program is the transformed program (the input is never mutated).
	Program *mpl.Program
	// InitialViolations are the Condition-1 breaches of the input program
	// (empty when the program was already safe).
	InitialViolations []Violation
	// Moves lists the checkpoint movements applied, in order.
	Moves []Move
	// Orderings lists loop-preserved pairs remaining in the final program.
	Orderings []Ordering
	// EqualizedStmts lists checkpoint statements added by re-equalization.
	EqualizedStmts []int
	// CoalescedStmts is the number of redundant checkpoints removed.
	CoalescedStmts int
	// Iterations is the number of fixpoint rounds executed.
	Iterations int
	// Enumeration is the final checkpoint enumeration.
	Enumeration *cfg.Enumeration
	// Residual holds the violations remaining when the fixpoint failed
	// (empty on success).
	Residual []Violation
}

// analysis is one round's view of the program.
type analysis struct {
	enum       *cfg.Enumeration
	ext        *match.Extended
	cutNodes   []int       // chkpt CFG node ids grouped by straight-cut index
	cutOff     []int       // group i is cutNodes[cutOff[i]:cutOff[i+1]]
	violations []Violation // movable violations (honoring PreserveLoops)
	orderings  []Ordering  // loop-preserved pairs
	firstFrom  int         // CFG node id of violations[0].FromStmt's node
	firstTo    int         // CFG node id of violations[0].ToStmt's node
}

// nodes returns the CFG node ids of straight cut S_i, in node-id order.
func (a *analysis) nodes(i int) []int { return a.cutNodes[a.cutOff[i]:a.cutOff[i+1]] }

// analyzeScratch carries one Ensure call's reusable analysis buffers across
// fixpoint rounds. Each analyze call with the same scratch overwrites the
// previous round's analysis in place — callers that must keep a round's
// results past the next call (the cleanup probe, Check) pass nil for fresh
// allocations, and Ensure snapshots InitialViolations before round two.
type analyzeScratch struct {
	a          analysis
	enum       cfg.Enumeration
	build      cfg.BuildCache
	cutNodes   []int
	cutOff     []int
	cursor     []int
	violations []Violation
	orderings  []Ordering
}

// grownInts returns buf resized to n zeroed entries, reusing its backing
// array when it is large enough.
func grownInts(buf []int, n int) []int {
	if cap(buf) >= n {
		buf = buf[:n]
		for i := range buf {
			buf[i] = 0
		}
		return buf
	}
	return make([]int, n)
}

// analyze runs enumeration + Phase II + Condition 1 on the current program.
//
// The data-flow result df is computed once per Ensure and reused across
// every fixpoint round: Phase III only inserts, moves, and removes
// checkpoint statements, which carry no assignments, branches, or
// communication parameters, so reaching definitions and resolved
// parameters of all other statements are unaffected. A nil df makes
// analyze compute its own (the verification-only path).
//
// Condition 1 is a quadratic pair query over each straight cut's members.
// Instead of a fresh path search per pair, the per-source causal closures
// are precomputed once — fanned across Options.Workers goroutines, each
// source independent, results keyed by node id so the outcome is identical
// for any worker count — and the pair loop reads the memoized sets.
func analyze(p *mpl.Program, df *dataflow.Result, opts Options, sc *analyzeScratch) (*analysis, error) {
	if sc == nil {
		sc = &analyzeScratch{}
	}
	if err := cfg.EnumerateInto(p, &sc.enum); err != nil {
		return nil, fmt.Errorf("place: %w", err)
	}
	if df == nil {
		df = dataflow.Analyze(p)
	}
	g, err := cfg.BuildCached(p, &sc.build)
	if err != nil {
		return nil, err
	}
	mopts := opts.Match
	mopts.Arena = opts.Arena
	ext, err := match.Match(p, g, df, mopts)
	if err != nil {
		return nil, err
	}
	a := &sc.a
	*a = analysis{enum: &sc.enum, ext: ext}

	// Bucket the checkpoint CFG nodes by straight-cut index with a counting
	// sort into one flat array: group i is cutNodes[cutOff[i]:cutOff[i+1]].
	// Node-id order within each group and index order across groups are
	// inherent to the two passes, so the pair scan below visits violations
	// in the same deterministic order a sorted per-index map would — with
	// no map, no sort, and buffers reused across rounds.
	m := sc.enum.Count
	sc.cutOff = grownInts(sc.cutOff, m+2)
	total := 0
	for _, nd := range g.Nodes {
		if nd.Kind != cfg.KindChkpt {
			continue
		}
		sc.cutOff[sc.enum.Index[nd.Stmt.ID()]+1]++
		total++
	}
	for i := 1; i < m+2; i++ {
		sc.cutOff[i] += sc.cutOff[i-1]
	}
	sc.cutNodes = grownInts(sc.cutNodes, total)
	sc.cursor = grownInts(sc.cursor, m+2)
	copy(sc.cursor, sc.cutOff)
	for _, nd := range g.Nodes {
		if nd.Kind != cfg.KindChkpt {
			continue
		}
		idx := sc.enum.Index[nd.Stmt.ID()]
		sc.cutNodes[sc.cursor[idx]] = nd.ID
		sc.cursor[idx]++
	}
	a.cutNodes, a.cutOff = sc.cutNodes, sc.cutOff
	a.violations = sc.violations[:0]
	a.orderings = sc.orderings[:0]

	if err := ext.PrecomputeReach(sc.cutNodes, opts.Workers); err != nil {
		return nil, fmt.Errorf("place: %w", err)
	}
	for i := 1; i <= m; i++ {
		nodes := a.nodes(i)
		for _, from := range nodes {
			for _, to := range nodes {
				// from == to is NOT skipped: a single checkpoint statement
				// shared by all ranks can causally reach itself through a
				// message round-trip (e.g. rank 1's instance sends a reply
				// consumed before rank 0's instance of the same statement),
				// which violates Condition 1 exactly like a two-statement
				// pair. Causal reachability demands at least one message
				// edge, so the trivial empty path never matches.
				if !ext.CausallyReaches(from, to) {
					continue
				}
				needsBack := ext.CausalNeedsBack(from, to)
				fromStmt := ext.G.Nodes[from].Stmt.ID()
				toStmt := ext.G.Nodes[to].Stmt.ID()
				if opts.PreserveLoops && needsBack {
					a.orderings = append(a.orderings, Ordering{
						Index: i, EarlierStmt: fromStmt, LaterStmt: toStmt,
					})
					continue
				}
				v := Violation{Index: i, FromStmt: fromStmt, ToStmt: toStmt, ViaBackEdge: needsBack}
				if len(a.violations) == 0 {
					a.firstFrom = from
					a.firstTo = to
				}
				a.violations = append(a.violations, v)
			}
		}
	}
	sc.violations, sc.orderings = a.violations, a.orderings
	return a, nil
}

// Ensure runs Phase III on a program (which must already contain
// checkpoints; run Phase I first otherwise) and returns the transformed
// program plus the full transformation report.
func Ensure(p *mpl.Program, opts Options) (*Result, error) {
	prog := p
	if !opts.AssumeOwned {
		prog = mpl.Clone(p)
	}
	res := &Result{}

	eq, err := insert.Equalize(prog)
	if err != nil {
		return nil, fmt.Errorf("place: pre-equalization: %w", err)
	}
	res.EqualizedStmts = append(res.EqualizedStmts, eq...)

	// Data flow is invariant across the fixpoint: rounds only add, move,
	// or remove checkpoint statements, which carry no assignments,
	// branches, or parameters. Analyze once, reuse every round. The match
	// cache likewise carries solver tables and scratch buffers from round
	// to round (sound for the same reason; see match.RoundCache).
	df := dataflow.Analyze(prog)
	if opts.Match.Cache == nil {
		opts.Match.Cache = &match.RoundCache{}
	}

	sc := &analyzeScratch{}
	opts.Arena.Reset()
	first, err := analyze(prog, df, opts, sc)
	if err != nil {
		return nil, err
	}
	// Snapshot: the next analyze round overwrites the scratch-backed slice.
	res.InitialViolations = append([]Violation(nil), first.violations...)

	cur := first
	for iter := 0; ; iter++ {
		if iter >= opts.maxIter() {
			// Return the partial transformation so callers can inspect the
			// stuck state; the error still signals failure.
			res.Program = prog
			res.Orderings = dedupOrderings(cur.orderings)
			res.Enumeration = cur.enum
			res.Residual = cur.violations
			return res, fmt.Errorf("place: no fixpoint after %d iterations (%d violations remain)",
				iter, len(cur.violations))
		}
		res.Iterations = iter + 1
		if len(cur.violations) == 0 {
			break
		}
		moves, err := applyMoves(prog, cur, opts)
		if err != nil {
			return nil, err
		}
		res.Moves = append(res.Moves, moves...)
		if !opts.PreserveLoops {
			// Base mode gathers all members of the violating index at one
			// position; merge the resulting adjacent duplicates so the
			// index collapses to a single statement.
			res.CoalescedStmts += insert.Coalesce(prog)
		}

		eq, err := insert.Equalize(prog)
		if err != nil {
			return nil, fmt.Errorf("place: re-equalization: %w", err)
		}
		res.EqualizedStmts = append(res.EqualizedStmts, eq...)

		opts.Arena.Reset()
		cur, err = analyze(prog, df, opts, sc)
		if err != nil {
			return nil, err
		}
	}

	// Cleanup: coalescing adjacent duplicate checkpoints must not
	// reintroduce violations or imbalance; verify on a clone and keep the
	// cleaned program only if it stays safe. Skip the clone (and the extra
	// analysis round) entirely when no adjacent duplicates exist — the
	// common case, and the clone was a measurable share of the pipeline's
	// allocations.
	if hasAdjacentChkpts(prog.Body) {
		cleaned := mpl.Clone(prog)
		if removed := insert.Coalesce(cleaned); removed > 0 {
			if eq, err := insert.Equalize(cleaned); err == nil && len(eq) == 0 {
				// A fresh scratch so a rejected cleanup does not clobber
				// cur's scratch-backed enumeration and orderings — but the
				// CFG build buffers are donated (header copy): cur's graph
				// is never touched again (only cur.orderings and cur.enum
				// are read below).
				opts.Arena.Reset()
				probe := &analyzeScratch{build: sc.build}
				sc.build = cfg.BuildCache{}
				if after, err := analyze(cleaned, df, opts, probe); err == nil && len(after.violations) == 0 {
					prog = cleaned
					cur = after
					res.CoalescedStmts = removed
				}
			}
		}
	}

	res.Program = prog
	res.Orderings = dedupOrderings(cur.orderings)
	res.Enumeration = cur.enum
	return res, nil
}

func dedupOrderings(in []Ordering) []Ordering {
	if len(in) == 0 {
		return nil
	}
	seen := make(map[Ordering]bool, len(in))
	var out []Ordering
	for _, o := range in {
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// applyMoves performs Algorithm 3.2 Step 2 for the first violation.
//
// In PreserveLoops mode (the default) only the downstream checkpoint
// C_i^B moves, and "no path from C_i^A to a in Ĝ" uses acyclic
// (back-edge-free) reachability — the notion that matches the mode's
// violation definition, since cross-iteration causality is tolerated and
// recorded as an ordering. The movement lands exactly before the point
// where the witness path γ enters C_i^B's dominator chain (the paper's "b
// is the first node of the path ⟨ENTRY,…,C_B⟩ that is in γ"), because every
// deeper chain edge has an upstream endpoint the violator can reach.
//
// In base mode all members of the violating straight cut S_i gather at one
// position chosen with full (cyclic) reachability from every member; the
// caller coalesces the resulting adjacent duplicates. Moving one member at
// a time in base mode can livelock against re-equalization (the moved
// checkpoint leaves its branch, equalization regrows it); gathering the
// whole cut converges and is what the repeated application of Step 2
// produces anyway once loop positions are all reachable via back edges.
func applyMoves(prog *mpl.Program, a *analysis, opts Options) ([]Move, error) {
	g := a.ext.G
	toNode := a.firstTo
	fromNode := a.firstFrom
	index := a.violations[0].Index

	var moveStmts []int // checkpoint statements to relocate
	var reach cfg.Bitset
	if opts.PreserveLoops {
		moveStmts = []int{g.Nodes[toNode].Stmt.ID()}
		reach = a.ext.ReachableExtended(fromNode, true)
	} else {
		for _, n := range a.nodes(index) {
			moveStmts = append(moveStmts, g.Nodes[n].Stmt.ID())
		}
		// Union into a fresh set — ReachableExtended returns the shared
		// memoized closures, which must stay unmodified.
		reach = cfg.NewBitset(len(g.Nodes))
		for _, n := range a.nodes(index) {
			reach.UnionWith(a.ext.ReachableExtended(n, false))
		}
	}

	// Dominator chain of toNode, ordered from entry outward. Dominance is
	// a total order on the chain, so sorting by "dominates" is sound.
	dom := g.Dominators()
	chain := dom[toNode].AppendMembers(nil)
	k := 0
	for _, n := range chain {
		if n != toNode && n != g.Entry {
			chain[k] = n
			k++
		}
	}
	chain = chain[:k]
	// Insertion sort by dominance (a total order on a dominator chain);
	// sort.Slice's reflection-based swapper allocated every round.
	for i := 1; i < len(chain); i++ {
		for j := i; j > 0 && cfg.Dominates(dom, chain[j], chain[j-1]); j-- {
			chain[j], chain[j-1] = chain[j-1], chain[j]
		}
	}

	// Walk the chain from the deepest (closest to C_B) position upward and
	// take the first edge ⟨a,b⟩ whose upstream endpoint the violators
	// cannot reach — the minimal movement satisfying the paper's
	// condition. The ENTRY node is the final fallback: nothing reaches it.
	for k := len(chain) - 1; k >= 0; k-- {
		b := chain[k]
		aNode := g.Entry
		if k > 0 {
			aNode = chain[k-1]
		}
		if reach.Has(aNode) {
			continue
		}
		targetStmt := g.Nodes[b].Stmt.ID()
		var moves []Move
		for _, ck := range moveStmts {
			if ck == targetStmt {
				continue
			}
			moved, err := moveChkptBefore(prog, ck, targetStmt)
			if err != nil {
				return nil, err
			}
			moves = append(moves, Move{
				ChkptStmt:  moved,
				Index:      index,
				BeforeStmt: targetStmt,
				Reason:     moveReason(index, moved, g.Nodes[fromNode].Stmt.ID(), targetStmt),
			})
		}
		return moves, nil
	}
	return nil, errors.New("place: no movement position found (checkpoint already at program start)")
}

// moveReason renders a Move's diagnostic without fmt (moves happen every
// fixpoint round; Sprintf's boxing — and the statement-describing Label
// rendering before it — showed up in the pipeline profile). The
// reinsertion point is named by statement id; Move.BeforeStmt carries the
// same id for tools that want to render the statement.
func moveReason(index, moved, from, target int) string {
	b := make([]byte, 0, 72)
	b = append(b, "C_"...)
	b = strconv.AppendInt(b, int64(index), 10)
	b = append(b, " at stmt #"...)
	b = strconv.AppendInt(b, int64(moved), 10)
	b = append(b, " reachable from stmt #"...)
	b = strconv.AppendInt(b, int64(from), 10)
	b = append(b, "; moved before stmt #"...)
	b = strconv.AppendInt(b, int64(target), 10)
	return string(b)
}

// hasAdjacentChkpts reports whether any statement list of the program
// contains two immediately-adjacent checkpoint statements — the (cheap)
// precondition for insert.Coalesce to have any effect.
func hasAdjacentChkpts(body []mpl.Stmt) bool {
	prevChkpt := false
	for _, s := range body {
		if _, ok := s.(*mpl.Chkpt); ok {
			if prevChkpt {
				return true
			}
			prevChkpt = true
			continue
		}
		prevChkpt = false
		switch st := s.(type) {
		case *mpl.While:
			if hasAdjacentChkpts(st.Body) {
				return true
			}
		case *mpl.If:
			if hasAdjacentChkpts(st.Then) || hasAdjacentChkpts(st.Else) {
				return true
			}
		}
	}
	return false
}

// moveChkptBefore removes the checkpoint statement chkptID from its block
// and reinserts it immediately before statement targetID. It returns the
// moved statement's id.
func moveChkptBefore(p *mpl.Program, chkptID, targetID int) (int, error) {
	stmt, ok := removeStmt(p, chkptID)
	if !ok {
		return 0, fmt.Errorf("place: checkpoint statement #%d not found", chkptID)
	}
	ck, ok := stmt.(*mpl.Chkpt)
	if !ok {
		return 0, fmt.Errorf("place: statement #%d is %s, not a checkpoint", chkptID, mpl.DescribeStmt(stmt))
	}
	if !insertBefore(p, targetID, ck) {
		return 0, fmt.Errorf("place: reinsertion target #%d not found", targetID)
	}
	return ck.ID(), nil
}

// removeStmt removes the statement with the given id from the program,
// returning it.
func removeStmt(p *mpl.Program, id int) (mpl.Stmt, bool) {
	var removed mpl.Stmt
	var fix func(body []mpl.Stmt) []mpl.Stmt
	fix = func(body []mpl.Stmt) []mpl.Stmt {
		out := body[:0]
		for _, s := range body {
			if s.ID() == id && removed == nil {
				removed = s
				continue
			}
			switch st := s.(type) {
			case *mpl.While:
				st.Body = fix(st.Body)
			case *mpl.If:
				st.Then = fix(st.Then)
				st.Else = fix(st.Else)
			}
			out = append(out, s)
		}
		return out
	}
	p.Body = fix(p.Body)
	return removed, removed != nil
}

// insertBefore inserts stmt immediately before the statement with
// targetID, wherever it lives.
func insertBefore(p *mpl.Program, targetID int, stmt mpl.Stmt) bool {
	done := false
	var fix func(body []mpl.Stmt) []mpl.Stmt
	fix = func(body []mpl.Stmt) []mpl.Stmt {
		for i, s := range body {
			if s.ID() == targetID && !done {
				done = true
				out := make([]mpl.Stmt, 0, len(body)+1)
				out = append(out, body[:i]...)
				out = append(out, stmt)
				out = append(out, body[i:]...)
				return out
			}
			switch st := s.(type) {
			case *mpl.While:
				st.Body = fix(st.Body)
			case *mpl.If:
				st.Then = fix(st.Then)
				st.Else = fix(st.Else)
			}
			if done {
				break
			}
		}
		return body
	}
	p.Body = fix(p.Body)
	return done
}

// Check runs Condition 1 on a program without transforming it, returning
// the violations and loop-preserved orderings. It is the verification-only
// entry point (e.g. for programs the user believes are already safe).
func Check(p *mpl.Program, opts Options) (violations []Violation, orderings []Ordering, err error) {
	a, err := analyze(p, nil, opts, nil)
	if err != nil {
		return nil, nil, err
	}
	return a.violations, dedupOrderings(a.orderings), nil
}
