// Package place implements Phase III of the paper (§3.3): given a program
// whose checkpoint statements are enumerated into straight cuts S_i, it
// moves checkpoint statements until no causal path connects two members of
// any S_i in the extended CFG Ĝ — Condition 1 — so that in any further
// execution every straight cut R_i is a recovery line (Theorem 3.2).
//
// The engine is Algorithm 3.2 run to fixpoint: find a violating pair
// (C_i^A, C_i^B) with a causal path γ from C_i^A to C_i^B, and move C_i^B
// backward in the CFG to an edge ⟨a, b⟩ on its dominator chain such that
// C_i^A cannot reach a in Ĝ (the ENTRY node guarantees such an edge
// exists, per the paper's termination argument). Moving a checkpoint can
// unbalance if-branch checkpoint counts, so each round re-equalizes
// (Phase I's add/remove rule) before re-analyzing.
//
// With Options.PreserveLoops (the paper's end-of-§3.3 optimization, on by
// default in DefaultOptions) a violating pair whose every causal path
// traverses a backward control edge is NOT moved: such causality only
// crosses loop iterations, so under Definition 2.3's latest-instance
// straight cuts the recovery line is preserved provided checkpoint
// completion follows message order; the pair is recorded as an ordering
// constraint instead. The simulator verifies this empirically.
package place

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/insert"
	"repro/internal/match"
	"repro/internal/mpl"
)

// Options configures Phase III.
type Options struct {
	// Match configures Phase II (the matcher runs each fixpoint round).
	Match match.Options
	// PreserveLoops keeps checkpoints inside loops when every violating
	// path crosses a loop boundary (back edge), recording an ordering
	// constraint instead of moving.
	PreserveLoops bool
	// MaxIterations bounds the move-reanalyze fixpoint. Zero means the
	// default (100).
	MaxIterations int
}

// DefaultOptions enables the loop-preservation optimization.
var DefaultOptions = Options{PreserveLoops: true}

func (o Options) maxIter() int {
	if o.MaxIterations <= 0 {
		return 100
	}
	return o.MaxIterations
}

// Violation is a detected breach of Condition 1: the checkpoint at
// FromStmt can happen-before the one at ToStmt within the same straight
// cut.
type Violation struct {
	Index    int // the straight-cut index i
	FromStmt int // checkpoint statement id of C_i^A
	ToStmt   int // checkpoint statement id of C_i^B
	// ViaBackEdge reports that every witness path crosses a loop boundary.
	ViaBackEdge bool
}

// Move records one application of Algorithm 3.2 Step 2.
type Move struct {
	ChkptStmt  int    // the moved checkpoint statement id
	Index      int    // its straight-cut index at move time
	BeforeStmt int    // reinsertion point: before this statement id
	Reason     string // human-readable description
}

// Ordering is a loop-preserved pair: causality between the two checkpoint
// statements exists only across loop iterations.
type Ordering struct {
	Index       int
	EarlierStmt int // the upstream checkpoint (C_i^A)
	LaterStmt   int // the downstream checkpoint (C_i^B)
}

// Result reports the transformation.
type Result struct {
	// Program is the transformed program (the input is never mutated).
	Program *mpl.Program
	// InitialViolations are the Condition-1 breaches of the input program
	// (empty when the program was already safe).
	InitialViolations []Violation
	// Moves lists the checkpoint movements applied, in order.
	Moves []Move
	// Orderings lists loop-preserved pairs remaining in the final program.
	Orderings []Ordering
	// EqualizedStmts lists checkpoint statements added by re-equalization.
	EqualizedStmts []int
	// CoalescedStmts is the number of redundant checkpoints removed.
	CoalescedStmts int
	// Iterations is the number of fixpoint rounds executed.
	Iterations int
	// Enumeration is the final checkpoint enumeration.
	Enumeration *cfg.Enumeration
	// Residual holds the violations remaining when the fixpoint failed
	// (empty on success).
	Residual []Violation
}

// analysis is one round's view of the program.
type analysis struct {
	enum       *cfg.Enumeration
	ext        *match.Extended
	byIndex    map[int][]int // index -> chkpt node ids
	violations []Violation   // movable violations (honoring PreserveLoops)
	orderings  []Ordering    // loop-preserved pairs
	// firstPath is the witness for violations[0].
	firstPath *match.CausalPath
	firstFrom int // CFG node id of violations[0].FromStmt's node
	firstTo   int // CFG node id of violations[0].ToStmt's node
}

// analyze runs enumeration + Phase II + Condition 1 on the current program.
func analyze(p *mpl.Program, opts Options) (*analysis, error) {
	enum, err := cfg.Enumerate(p)
	if err != nil {
		return nil, fmt.Errorf("place: %w", err)
	}
	ext, err := match.BuildExtended(p, opts.Match)
	if err != nil {
		return nil, err
	}
	a := &analysis{
		enum:    enum,
		ext:     ext,
		byIndex: cfg.EnumerateGraph(ext.G, enum),
	}
	indexes := make([]int, 0, len(a.byIndex))
	for i := range a.byIndex {
		indexes = append(indexes, i)
	}
	sort.Ints(indexes)
	for _, i := range indexes {
		nodes := a.byIndex[i]
		for _, from := range nodes {
			for _, to := range nodes {
				// from == to is NOT skipped: a single checkpoint statement
				// shared by all ranks can causally reach itself through a
				// message round-trip (e.g. rank 1's instance sends a reply
				// consumed before rank 0's instance of the same statement),
				// which violates Condition 1 exactly like a two-statement
				// pair. FindCausalPath demands at least one message edge, so
				// the trivial empty path never matches.
				path := ext.FindCausalPath(from, to)
				if path == nil {
					continue
				}
				fromStmt := ext.G.Nodes[from].Stmt.ID()
				toStmt := ext.G.Nodes[to].Stmt.ID()
				if opts.PreserveLoops && path.HasBackEdge {
					a.orderings = append(a.orderings, Ordering{
						Index: i, EarlierStmt: fromStmt, LaterStmt: toStmt,
					})
					continue
				}
				v := Violation{Index: i, FromStmt: fromStmt, ToStmt: toStmt, ViaBackEdge: path.HasBackEdge}
				if len(a.violations) == 0 {
					a.firstPath = path
					a.firstFrom = from
					a.firstTo = to
				}
				a.violations = append(a.violations, v)
			}
		}
	}
	return a, nil
}

// Ensure runs Phase III on a program (which must already contain
// checkpoints; run Phase I first otherwise) and returns the transformed
// program plus the full transformation report.
func Ensure(p *mpl.Program, opts Options) (*Result, error) {
	prog := mpl.Clone(p)
	res := &Result{}

	eq, err := insert.Equalize(prog)
	if err != nil {
		return nil, fmt.Errorf("place: pre-equalization: %w", err)
	}
	res.EqualizedStmts = append(res.EqualizedStmts, eq...)

	first, err := analyze(prog, opts)
	if err != nil {
		return nil, err
	}
	res.InitialViolations = first.violations

	cur := first
	for iter := 0; ; iter++ {
		if iter >= opts.maxIter() {
			// Return the partial transformation so callers can inspect the
			// stuck state; the error still signals failure.
			res.Program = prog
			res.Orderings = dedupOrderings(cur.orderings)
			res.Enumeration = cur.enum
			res.Residual = cur.violations
			return res, fmt.Errorf("place: no fixpoint after %d iterations (%d violations remain)",
				iter, len(cur.violations))
		}
		res.Iterations = iter + 1
		if len(cur.violations) == 0 {
			break
		}
		moves, err := applyMoves(prog, cur, opts)
		if err != nil {
			return nil, err
		}
		res.Moves = append(res.Moves, moves...)
		if !opts.PreserveLoops {
			// Base mode gathers all members of the violating index at one
			// position; merge the resulting adjacent duplicates so the
			// index collapses to a single statement.
			res.CoalescedStmts += insert.Coalesce(prog)
		}

		eq, err := insert.Equalize(prog)
		if err != nil {
			return nil, fmt.Errorf("place: re-equalization: %w", err)
		}
		res.EqualizedStmts = append(res.EqualizedStmts, eq...)

		cur, err = analyze(prog, opts)
		if err != nil {
			return nil, err
		}
	}

	// Cleanup: coalescing adjacent duplicate checkpoints must not
	// reintroduce violations or imbalance; verify on a clone and keep the
	// cleaned program only if it stays safe.
	cleaned := mpl.Clone(prog)
	if removed := insert.Coalesce(cleaned); removed > 0 {
		if eq, err := insert.Equalize(cleaned); err == nil && len(eq) == 0 {
			if after, err := analyze(cleaned, opts); err == nil && len(after.violations) == 0 {
				prog = cleaned
				cur = after
				res.CoalescedStmts = removed
			}
		}
	}

	res.Program = prog
	res.Orderings = dedupOrderings(cur.orderings)
	res.Enumeration = cur.enum
	return res, nil
}

func dedupOrderings(in []Ordering) []Ordering {
	seen := make(map[Ordering]bool, len(in))
	var out []Ordering
	for _, o := range in {
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// applyMoves performs Algorithm 3.2 Step 2 for the first violation.
//
// In PreserveLoops mode (the default) only the downstream checkpoint
// C_i^B moves, and "no path from C_i^A to a in Ĝ" uses acyclic
// (back-edge-free) reachability — the notion that matches the mode's
// violation definition, since cross-iteration causality is tolerated and
// recorded as an ordering. The movement lands exactly before the point
// where the witness path γ enters C_i^B's dominator chain (the paper's "b
// is the first node of the path ⟨ENTRY,…,C_B⟩ that is in γ"), because every
// deeper chain edge has an upstream endpoint the violator can reach.
//
// In base mode all members of the violating straight cut S_i gather at one
// position chosen with full (cyclic) reachability from every member; the
// caller coalesces the resulting adjacent duplicates. Moving one member at
// a time in base mode can livelock against re-equalization (the moved
// checkpoint leaves its branch, equalization regrows it); gathering the
// whole cut converges and is what the repeated application of Step 2
// produces anyway once loop positions are all reachable via back edges.
func applyMoves(prog *mpl.Program, a *analysis, opts Options) ([]Move, error) {
	g := a.ext.G
	toNode := a.firstTo
	fromNode := a.firstFrom
	index := a.violations[0].Index

	var moveStmts []int // checkpoint statements to relocate
	var reach cfg.Bitset
	if opts.PreserveLoops {
		moveStmts = []int{g.Nodes[toNode].Stmt.ID()}
		reach = extendedReachable(a.ext, fromNode, true)
	} else {
		for _, n := range a.byIndex[index] {
			moveStmts = append(moveStmts, g.Nodes[n].Stmt.ID())
		}
		reach = cfg.NewBitset(len(g.Nodes))
		for _, n := range a.byIndex[index] {
			reach.UnionWith(extendedReachable(a.ext, n, false))
		}
	}

	// Dominator chain of toNode, ordered from entry outward. Dominance is
	// a total order on the chain, so sorting by "dominates" is sound.
	dom := g.Dominators()
	var chain []int
	for _, n := range dom[toNode].Members() {
		if n == toNode || n == g.Entry {
			continue
		}
		chain = append(chain, n)
	}
	sort.Slice(chain, func(i, j int) bool {
		return cfg.Dominates(dom, chain[i], chain[j])
	})

	// Walk the chain from the deepest (closest to C_B) position upward and
	// take the first edge ⟨a,b⟩ whose upstream endpoint the violators
	// cannot reach — the minimal movement satisfying the paper's
	// condition. The ENTRY node is the final fallback: nothing reaches it.
	for k := len(chain) - 1; k >= 0; k-- {
		b := chain[k]
		aNode := g.Entry
		if k > 0 {
			aNode = chain[k-1]
		}
		if reach.Has(aNode) {
			continue
		}
		targetStmt := g.Nodes[b].Stmt.ID()
		var moves []Move
		for _, ck := range moveStmts {
			if ck == targetStmt {
				continue
			}
			moved, err := moveChkptBefore(prog, ck, targetStmt)
			if err != nil {
				return nil, err
			}
			moves = append(moves, Move{
				ChkptStmt:  moved,
				Index:      index,
				BeforeStmt: targetStmt,
				Reason: fmt.Sprintf("C_%d at stmt #%d reachable from stmt #%d; moved before %s",
					index, moved, g.Nodes[fromNode].Stmt.ID(), g.Nodes[b].Label),
			})
		}
		return moves, nil
	}
	return nil, errors.New("place: no movement position found (checkpoint already at program start)")
}

// extendedReachable returns the set of CFG nodes reachable from start via
// control and message edges. With acyclic set, backward control edges are
// excluded — reachability within a single "iteration unrolling", the
// notion PreserveLoops mode uses.
func extendedReachable(x *match.Extended, start int, acyclic bool) cfg.Bitset {
	var backSet map[cfg.Edge]bool
	if acyclic {
		backSet = make(map[cfg.Edge]bool)
		for _, e := range x.G.BackEdges() {
			backSet[e] = true
		}
	}
	seen := cfg.NewBitset(len(x.G.Nodes))
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen.Has(v) {
			continue
		}
		seen.Set(v)
		for _, e := range x.G.Succs(v) {
			if acyclic && backSet[e] {
				continue
			}
			if !seen.Has(e.To) {
				stack = append(stack, e.To)
			}
		}
		for _, r := range x.MessagesFrom(v) {
			if !seen.Has(r) {
				stack = append(stack, r)
			}
		}
	}
	return seen
}

// moveChkptBefore removes the checkpoint statement chkptID from its block
// and reinserts it immediately before statement targetID. It returns the
// moved statement's id.
func moveChkptBefore(p *mpl.Program, chkptID, targetID int) (int, error) {
	stmt, ok := removeStmt(p, chkptID)
	if !ok {
		return 0, fmt.Errorf("place: checkpoint statement #%d not found", chkptID)
	}
	ck, ok := stmt.(*mpl.Chkpt)
	if !ok {
		return 0, fmt.Errorf("place: statement #%d is %s, not a checkpoint", chkptID, mpl.DescribeStmt(stmt))
	}
	if !insertBefore(p, targetID, ck) {
		return 0, fmt.Errorf("place: reinsertion target #%d not found", targetID)
	}
	return ck.ID(), nil
}

// removeStmt removes the statement with the given id from the program,
// returning it.
func removeStmt(p *mpl.Program, id int) (mpl.Stmt, bool) {
	var removed mpl.Stmt
	var fix func(body []mpl.Stmt) []mpl.Stmt
	fix = func(body []mpl.Stmt) []mpl.Stmt {
		out := body[:0]
		for _, s := range body {
			if s.ID() == id && removed == nil {
				removed = s
				continue
			}
			switch st := s.(type) {
			case *mpl.While:
				st.Body = fix(st.Body)
			case *mpl.If:
				st.Then = fix(st.Then)
				st.Else = fix(st.Else)
			}
			out = append(out, s)
		}
		return out
	}
	p.Body = fix(p.Body)
	return removed, removed != nil
}

// insertBefore inserts stmt immediately before the statement with
// targetID, wherever it lives.
func insertBefore(p *mpl.Program, targetID int, stmt mpl.Stmt) bool {
	done := false
	var fix func(body []mpl.Stmt) []mpl.Stmt
	fix = func(body []mpl.Stmt) []mpl.Stmt {
		for i, s := range body {
			if s.ID() == targetID && !done {
				done = true
				out := make([]mpl.Stmt, 0, len(body)+1)
				out = append(out, body[:i]...)
				out = append(out, stmt)
				out = append(out, body[i:]...)
				return out
			}
			switch st := s.(type) {
			case *mpl.While:
				st.Body = fix(st.Body)
			case *mpl.If:
				st.Then = fix(st.Then)
				st.Else = fix(st.Else)
			}
			if done {
				break
			}
		}
		return body
	}
	p.Body = fix(p.Body)
	return done
}

// Check runs Condition 1 on a program without transforming it, returning
// the violations and loop-preserved orderings. It is the verification-only
// entry point (e.g. for programs the user believes are already safe).
func Check(p *mpl.Program, opts Options) (violations []Violation, orderings []Ordering, err error) {
	a, err := analyze(p, opts)
	if err != nil {
		return nil, nil, err
	}
	return a.violations, dedupOrderings(a.orderings), nil
}
