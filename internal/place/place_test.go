package place

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/corpus"
	"repro/internal/mpl"
)

func ensure(t *testing.T, p *mpl.Program, opts Options) *Result {
	t.Helper()
	res, err := Ensure(p, opts)
	if err != nil {
		t.Fatalf("Ensure(%s): %v", p.Name, err)
	}
	return res
}

// assertSafe re-checks the transformed program with Check: no movable
// violations may remain.
func assertSafe(t *testing.T, p *mpl.Program, opts Options) {
	t.Helper()
	violations, _, err := Check(p, opts)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(violations) != 0 {
		t.Fatalf("transformed program still has violations: %+v", violations)
	}
}

func TestJacobiFig1AlreadySafe(t *testing.T) {
	p := corpus.JacobiFig1(3)
	res := ensure(t, p, DefaultOptions)
	if len(res.InitialViolations) != 0 {
		t.Errorf("Fig1 reported violations: %+v", res.InitialViolations)
	}
	if len(res.Moves) != 0 {
		t.Errorf("Fig1 moved checkpoints: %+v", res.Moves)
	}
	if mpl.Format(res.Program) != mpl.Format(p) {
		t.Error("Fig1 program changed")
	}
}

func TestJacobiFig2PreserveLoops(t *testing.T) {
	p := corpus.JacobiFig2(3)
	res := ensure(t, p, DefaultOptions)
	if len(res.InitialViolations) == 0 {
		t.Fatal("Fig2 must initially violate Condition 1 (paper Figure 3)")
	}
	if len(res.Moves) == 0 {
		t.Fatal("Fig2 requires checkpoint movement")
	}
	assertSafe(t, res.Program, DefaultOptions)
	// The checkpoints must both remain inside the loop (the point of the
	// optimization): the while body still contains two chkpt statements.
	var w *mpl.While
	for _, s := range res.Program.Body {
		if ws, ok := s.(*mpl.While); ok {
			w = ws
		}
	}
	if w == nil {
		t.Fatal("loop vanished")
	}
	inLoop := 0
	mpl.Walk(w.Body, func(s mpl.Stmt) bool {
		if _, ok := s.(*mpl.Chkpt); ok {
			inLoop++
		}
		return true
	})
	if inLoop != 2 {
		t.Errorf("checkpoints in loop = %d, want 2 (loop preservation)", inLoop)
	}
	// The odd branch's checkpoint must now precede its receive.
	ifStmt := findIf(w.Body)
	if ifStmt == nil {
		t.Fatal("if vanished")
	}
	if _, ok := ifStmt.Else[0].(*mpl.Chkpt); !ok {
		t.Errorf("odd branch does not start with chkpt: %s", mpl.DescribeStmt(ifStmt.Else[0]))
	}
	// Cross-iteration causality should be recorded as orderings.
	if len(res.Orderings) == 0 {
		t.Error("no orderings recorded for loop-crossing causality")
	}
}

func findIf(body []mpl.Stmt) *mpl.If {
	var out *mpl.If
	mpl.Walk(body, func(s mpl.Stmt) bool {
		if i, ok := s.(*mpl.If); ok {
			out = i
			return false
		}
		return true
	})
	return out
}

func TestJacobiFig2BaseMode(t *testing.T) {
	p := corpus.JacobiFig2(3)
	opts := Options{PreserveLoops: false}
	res := ensure(t, p, opts)
	assertSafe(t, res.Program, opts)
	if len(res.Moves) == 0 {
		t.Fatal("base mode must move checkpoints")
	}
	// Base mode pays the paper's noted drawback: checkpoints leave the
	// loop. The loop body must contain none.
	var w *mpl.While
	for _, s := range res.Program.Body {
		if ws, ok := s.(*mpl.While); ok {
			w = ws
		}
	}
	inLoop := 0
	mpl.Walk(w.Body, func(s mpl.Stmt) bool {
		if _, ok := s.(*mpl.Chkpt); ok {
			inLoop++
		}
		return true
	})
	if inLoop != 0 {
		t.Errorf("base mode left %d checkpoints in the loop", inLoop)
	}
	// Gathered duplicates must have been coalesced to keep enumeration
	// aligned.
	if res.CoalescedStmts == 0 {
		t.Error("expected coalescing of gathered checkpoints")
	}
	if _, err := cfg.Enumerate(res.Program); err != nil {
		t.Errorf("base-mode result does not enumerate: %v", err)
	}
	// Base mode leaves no orderings: every causal pair was eliminated.
	if len(res.Orderings) != 0 {
		t.Errorf("base mode recorded orderings: %+v", res.Orderings)
	}
}

func TestPipelinePreserveLoops(t *testing.T) {
	p := corpus.PipelineStages(3)
	res := ensure(t, p, DefaultOptions)
	if len(res.InitialViolations) == 0 {
		t.Fatal("pipeline must initially violate Condition 1")
	}
	assertSafe(t, res.Program, DefaultOptions)
	// The receiving half's checkpoint must have moved before the recv.
	ifStmt := findIf(res.Program.Body)
	if ifStmt == nil {
		t.Fatal("if vanished")
	}
	if _, ok := ifStmt.Else[0].(*mpl.Chkpt); !ok {
		t.Errorf("receiver branch does not start with chkpt: %s", mpl.DescribeStmt(ifStmt.Else[0]))
	}
}

func TestInputNotMutated(t *testing.T) {
	p := corpus.JacobiFig2(2)
	before := mpl.Format(p)
	_ = ensure(t, p, DefaultOptions)
	if mpl.Format(p) != before {
		t.Error("Ensure mutated its input program")
	}
}

func TestAllCorpusConverges(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"preserve", DefaultOptions},
		{"base", Options{PreserveLoops: false}},
	} {
		for name, p := range corpus.All() {
			t.Run(mode.name+"/"+name, func(t *testing.T) {
				res, err := Ensure(p, mode.opts)
				if err != nil {
					t.Fatalf("Ensure: %v", err)
				}
				violations, _, err := Check(res.Program, mode.opts)
				if err != nil {
					t.Fatalf("Check: %v", err)
				}
				if len(violations) != 0 {
					t.Errorf("residual violations: %+v\nprogram:\n%s",
						violations, mpl.Format(res.Program))
				}
				if _, err := cfg.Enumerate(res.Program); err != nil {
					t.Errorf("result does not enumerate: %v", err)
				}
				// The transformed program must still parse/check after
				// printing (structural integrity).
				if _, err := mpl.Parse(mpl.Format(res.Program)); err != nil {
					t.Errorf("result does not reparse: %v\n%s", err, mpl.Format(res.Program))
				}
			})
		}
	}
}

func TestMaxIterationsEnforced(t *testing.T) {
	p := corpus.JacobiFig2(2)
	// One iteration is only enough to detect, not to fix and verify.
	_, err := Ensure(p, Options{PreserveLoops: true, MaxIterations: 1})
	if err == nil || !strings.Contains(err.Error(), "no fixpoint") {
		t.Fatalf("err = %v, want fixpoint failure", err)
	}
}

func TestCheckReportsWithoutTransforming(t *testing.T) {
	p := corpus.JacobiFig2(2)
	before := mpl.Format(p)
	violations, _, err := Check(p, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) == 0 {
		t.Error("Check missed the Fig2 violation")
	}
	v := violations[0]
	if v.Index != 1 {
		t.Errorf("violation index = %d, want 1", v.Index)
	}
	if v.ViaBackEdge {
		t.Error("Fig2's witness is back-edge-free")
	}
	if mpl.Format(p) != before {
		t.Error("Check mutated the program")
	}
}

func TestEnsureRequiresUnambiguousOrEqualizes(t *testing.T) {
	src := `
program amb
var x
proc {
    if rank == 0 {
        chkpt
        send(1, x)
    } else {
        recv(0, x)
    }
}
`
	p, err := mpl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := ensure(t, p, DefaultOptions)
	if len(res.EqualizedStmts) == 0 {
		t.Error("unbalanced program not equalized")
	}
	assertSafe(t, res.Program, DefaultOptions)
}

func TestOrderingsDeduped(t *testing.T) {
	p := corpus.JacobiFig2(3)
	res := ensure(t, p, DefaultOptions)
	seen := map[Ordering]bool{}
	for _, o := range res.Orderings {
		if seen[o] {
			t.Errorf("duplicate ordering %+v", o)
		}
		seen[o] = true
	}
}

// TestSelfPairViolationRepaired pins the from == to case of the
// Condition-1 scan: a single checkpoint statement shared by all ranks is
// violated AGAINST ITSELF when rank-guarded communication gives its node a
// message-bearing causal path back to the same node — here rank 1's
// instance forwards a reply that rank 0 consumes before reaching its own
// instance of the very same statement, all within one control-flow pass
// (no back edge). The generative harness found this shape escaping an
// analyzer that skipped self-pairs.
func TestSelfPairViolationRepaired(t *testing.T) {
	b := mpl.NewBuilder("selfpair")
	b.Vars("a", "tmp")
	b.Assign("a", mpl.Add(mpl.Rank(), mpl.Int(1)))
	b.If(mpl.Eq(mpl.Rank(), mpl.Int(0)), func(b *mpl.Builder) {
		b.Send(mpl.Int(1), "a")
		b.Recv(mpl.Int(1), "tmp")
	})
	b.Chkpt()
	b.If(mpl.Eq(mpl.Rank(), mpl.Int(1)), func(b *mpl.Builder) {
		b.Recv(mpl.Int(0), "tmp")
		b.Send(mpl.Int(0), "tmp")
	})
	p := b.MustProgram()

	res := ensure(t, p, DefaultOptions)
	if len(res.InitialViolations) == 0 {
		t.Fatal("self-pair Condition-1 violation not detected")
	}
	v := res.InitialViolations[0]
	if v.FromStmt != v.ToStmt {
		t.Errorf("want a self-pair violation (FromStmt == ToStmt), got %+v", v)
	}
	if len(res.Moves) == 0 {
		t.Fatal("violating checkpoint was not moved")
	}
	assertSafe(t, res.Program, DefaultOptions)
}

// TestSelfPairLoopOrdering is the PreserveLoops counterpart: when the only
// causal self-path crosses a loop back edge (plain ring shift), the
// checkpoint stays put and the pair is recorded as a cross-iteration
// ordering of the statement with itself.
func TestSelfPairLoopOrdering(t *testing.T) {
	b := mpl.NewBuilder("selfloop")
	b.Vars("a", "tmp", "j")
	b.Assign("a", mpl.Add(mpl.Rank(), mpl.Int(1)))
	b.Assign("j", mpl.Int(0))
	b.While(mpl.Lt(mpl.V("j"), mpl.Int(2)), func(b *mpl.Builder) {
		b.Chkpt()
		b.Send(mpl.Mod(mpl.Add(mpl.Rank(), mpl.Int(1)), mpl.Nproc()), "a")
		b.Recv(mpl.Mod(mpl.Sub(mpl.Rank(), mpl.Int(1)), mpl.Nproc()), "tmp")
		b.Assign("a", mpl.Add(mpl.V("a"), mpl.V("tmp")))
		b.Assign("j", mpl.Add(mpl.V("j"), mpl.Int(1)))
	})
	p := b.MustProgram()

	res := ensure(t, p, DefaultOptions)
	if len(res.Moves) != 0 {
		t.Errorf("loop-only self-causality must not move checkpoints: %+v", res.Moves)
	}
	found := false
	for _, o := range res.Orderings {
		if o.EarlierStmt == o.LaterStmt {
			found = true
		}
	}
	if !found {
		t.Errorf("no self-ordering recorded; orderings: %+v", res.Orderings)
	}
	assertSafe(t, res.Program, DefaultOptions)
}

func BenchmarkEnsureJacobiFig2(b *testing.B) {
	p := corpus.JacobiFig2(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Ensure(p, DefaultOptions); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckCorpus(b *testing.B) {
	progs := corpus.All()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			if _, _, err := Check(p, DefaultOptions); err != nil {
				b.Fatal(err)
			}
		}
	}
}
