package zigzag

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/mpl"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// builder mirrors the test builder in internal/trace: a tiny deterministic
// event recorder with correct clocks.
type builder struct {
	t       *trace.Trace
	clocks  []vclock.VC
	pending map[trace.MessageID]vclock.VC
	seq     map[[2]int]int
	ords    []int
}

func newBuilder(n int) *builder {
	b := &builder{
		t:       trace.NewTrace(n),
		clocks:  make([]vclock.VC, n),
		pending: make(map[trace.MessageID]vclock.VC),
		seq:     make(map[[2]int]int),
		ords:    make([]int, n),
	}
	for i := range b.clocks {
		b.clocks[i] = vclock.New(n)
	}
	return b
}

func (b *builder) send(from, to int) trace.MessageID {
	key := [2]int{from, to}
	id := trace.MessageID{From: from, To: to, Seq: b.seq[key]}
	b.seq[key]++
	b.clocks[from].Tick(from)
	b.pending[id] = b.clocks[from].Clone()
	b.t.Append(trace.Event{Proc: from, Kind: trace.KindSend, Clock: b.clocks[from], Msg: id, Peer: to})
	return id
}

func (b *builder) recv(id trace.MessageID) {
	p := id.To
	b.clocks[p].Tick(p)
	b.clocks[p].Merge(b.pending[id])
	b.t.Append(trace.Event{Proc: p, Kind: trace.KindRecv, Clock: b.clocks[p], Msg: id, Peer: id.From})
}

func (b *builder) checkpoint(p int) {
	b.clocks[p].Tick(p)
	b.t.Append(trace.Event{
		Proc: p, Kind: trace.KindCheckpoint, Clock: b.clocks[p],
		Chkpt: trace.Checkpoint{CFGIndex: 1, Instance: b.ords[p]},
	})
	b.ords[p]++
}

// TestClassicZCycle builds the textbook Z-cycle: P1 sends m2 early; P0
// receives m2, checkpoints c01, sends m1; P1 receives m1 and only then
// checkpoints. c01 is useless: pairing it with P1's initial state orphans
// m2, pairing it with c11 orphans m1.
func TestClassicZCycle(t *testing.T) {
	b := newBuilder(2)
	m2 := b.send(1, 0)
	b.recv(m2)
	b.checkpoint(0) // c_{0,1}
	m1 := b.send(0, 1)
	b.recv(m1)
	b.checkpoint(1) // c_{1,1}

	a, err := FromTrace(b.t)
	if err != nil {
		t.Fatal(err)
	}
	if !a.OnZCycle(0, 1) {
		t.Error("c_{0,1} should be on a Z-cycle")
	}
	if a.OnZCycle(1, 1) {
		t.Error("c_{1,1} should not be on a Z-cycle")
	}
	useless := a.Useless()
	if len(useless) != 1 || useless[0].Proc != 0 {
		t.Errorf("Useless = %v", useless)
	}
	st := a.Stats()
	if st.Total != 2 || st.Useless != 1 {
		t.Errorf("Stats = %+v", st)
	}
}

// TestZPathWithoutCycle: a plain causal chain creates a z-path forward but
// no cycle.
func TestZPathWithoutCycle(t *testing.T) {
	b := newBuilder(2)
	b.checkpoint(0) // c_{0,1}
	m := b.send(0, 1)
	b.recv(m)
	b.checkpoint(1) // c_{1,1}

	a, err := FromTrace(b.t)
	if err != nil {
		t.Fatal(err)
	}
	if !a.ZPath(0, 1, 1, 1) {
		t.Error("z-path c01 -> c11 should exist (m sent after c01, received before c11)")
	}
	if a.ZPath(1, 1, 0, 1) {
		t.Error("no z-path c11 -> c01")
	}
	if len(a.Useless()) != 0 {
		t.Errorf("no checkpoint is useless here: %v", a.Useless())
	}
}

// TestZigzagThroughIntermediate exercises the "zig": the middle process
// sends its continuation EARLIER in real time than it receives the
// incoming message, but in the same interval.
func TestZigzagThroughIntermediate(t *testing.T) {
	b := newBuilder(3)
	// P1 sends m2 to P2 first (interval 1).
	m2 := b.send(1, 2)
	// P0 checkpoints, then sends m1 to P1 (received interval 1).
	b.checkpoint(0)
	m1 := b.send(0, 1)
	b.recv(m1)
	// P2 receives m2 before its own checkpoint... and before that, P2 sent
	// m3 to P0, received by P0 before its checkpoint? That would close a
	// cycle; keep it open here and check the z-path only.
	b.recv(m2)
	b.checkpoint(2)

	a, err := FromTrace(b.t)
	if err != nil {
		t.Fatal(err)
	}
	// Zigzag: m1 (sent after c01, received by P1 in interval 1), then m2
	// (sent by P1 in interval 1 ≥ 1 — earlier in real time!), received by
	// P2 in interval 1 ≤ 1 (before c21).
	if !a.ZPath(0, 1, 2, 1) {
		t.Error("zigzag path c01 -> c21 through P1 should exist")
	}
}

func TestOutOfRangeOrdinals(t *testing.T) {
	b := newBuilder(2)
	b.checkpoint(0)
	a, err := FromTrace(b.t)
	if err != nil {
		t.Fatal(err)
	}
	if a.ZPath(0, 0, 0, 1) || a.ZPath(0, 2, 0, 1) || a.ZPath(1, 1, 0, 1) {
		t.Error("out-of-range ordinals must be false")
	}
	if len(a.Checkpoints(0)) != 1 || len(a.Checkpoints(1)) != 0 {
		t.Error("Checkpoints accessor wrong")
	}
}

// TestTransformedProgramsHaveNoUselessCheckpoints is the headline
// property: after Phase III, every checkpoint belongs to its straight cut
// (a recovery line), so no checkpoint can lie on a Z-cycle.
func TestTransformedProgramsHaveNoUselessCheckpoints(t *testing.T) {
	progs := corpus.All()
	delete(progs, "irregular") // needs input wiring; covered elsewhere
	for name, p := range progs {
		t.Run(name, func(t *testing.T) {
			rep, err := core.Transform(p, core.DefaultConfig)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(sim.Config{Program: rep.Program, Nproc: 4, Timeout: 20 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			a, err := FromTrace(res.Trace)
			if err != nil {
				t.Fatal(err)
			}
			if useless := a.Useless(); len(useless) != 0 {
				t.Errorf("useless checkpoints after transformation: %v", useless)
			}
		})
	}
}

// TestRandomTransformedNoZCycles extends the property to random programs.
func TestRandomTransformedNoZCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short")
	}
	for seed := int64(0); seed < 15; seed++ {
		rep, err := core.Transform(corpus.Random(seed), core.DefaultConfig)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := sim.Run(sim.Config{
			Program: rep.Program, Nproc: 4,
			Input:   func(rank, i int) int { return rank ^ i },
			Timeout: 20 * time.Second,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a, err := FromTrace(res.Trace)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if useless := a.Useless(); len(useless) != 0 {
			t.Fatalf("seed %d: useless checkpoints: %v\n%s",
				seed, useless, mpl.Format(rep.Program))
		}
	}
}

// TestZigzagProneProgramHasUselessCheckpoints runs the canonical Netzer-Xu
// pattern from the corpus: every even-rank checkpoint lies on a Z-cycle —
// deterministically — while the transformed program has none.
func TestZigzagProneProgramHasUselessCheckpoints(t *testing.T) {
	const n, iters = 4, 3
	prog := corpus.ZigzagProne(iters)
	res, err := sim.Run(sim.Config{Program: prog, Nproc: n, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	a, err := FromTrace(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	useless := a.Useless()
	// Every even-rank checkpoint is on a Z-cycle (m1 = this iteration's b,
	// zigzag back through the partner's a). Odd-rank checkpoints from the
	// second iteration on are too: pairing C_odd#k+1 with C_even#k+1
	// orphans a_{k+1}, pairing it with C_even#k orphans b_k. Only the odd
	// ranks' FIRST checkpoints (no earlier b to orphan) are useful:
	// 2 ranks × iters + 2 ranks × (iters−1).
	want := 2*iters + 2*(iters-1)
	if len(useless) != want {
		t.Fatalf("useless = %d, want %d: %v", len(useless), want, useless)
	}
	for _, c := range useless {
		if c.Proc%2 != 0 && c.Instance == 0 {
			t.Errorf("odd-rank first checkpoint flagged useless: %v", c)
		}
	}

	// After Phase III the same workload has zero useless checkpoints.
	rep, err := core.Transform(prog, core.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sim.Run(sim.Config{Program: rep.Program, Nproc: n, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := FromTrace(res2.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if u := a2.Useless(); len(u) != 0 {
		t.Errorf("transformed program still has useless checkpoints: %v", u)
	}
}

// TestUncoordinatedTimerProducesUselessCheckpoints shows the contrast: a
// timer-driven uncoordinated run on a chatty workload yields checkpoints
// on Z-cycles.
func TestUncoordinatedTimerProducesUselessCheckpoints(t *testing.T) {
	// Use a ping-pong-heavy program and awkward timer interval. A useless
	// checkpoint is not guaranteed on every schedule, so retry across
	// intervals and accept the first hit.
	prog := corpus.JacobiFig2(6)
	found := false
	for _, interval := range []int{3, 4, 5, 7} {
		res, err := sim.Run(sim.Config{
			Program: prog,
			Nproc:   4,
			Hooks:   uncoordHooksFactory(interval),
			Timeout: 20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := FromTrace(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Useless()) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Log("no useless checkpoint observed on these schedules (timer alignment); not a failure")
	}
}

// uncoordHooksFactory avoids importing internal/protocol (cycle-free but
// keeps this package's dependencies minimal): a local timer checkpointer.
func uncoordHooksFactory(interval int) sim.HooksFactory {
	return func(rank, nproc int) sim.Hooks {
		return &timerHooks{interval: interval}
	}
}

type timerHooks struct {
	sim.NoHooks
	interval int
	last     int
	count    int
}

func (h *timerHooks) AtChkptStmt(*sim.Proc, int) (bool, error) { return false, nil }

func (h *timerHooks) OnStep(p *sim.Proc) error {
	if p.Events()-h.last >= h.interval {
		h.last = p.Events()
		h.count++
		return p.TakeCheckpoint(h.count)
	}
	return nil
}
