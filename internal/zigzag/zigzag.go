// Package zigzag implements Netzer & Xu's zigzag-path analysis on recorded
// executions. A checkpoint is USEFUL iff it belongs to some consistent
// global snapshot, and the classic characterization is: a checkpoint is
// useless iff it lies on a Z-cycle (a zigzag path from itself to itself).
//
// The analysis complements the paper's guarantees: checkpoints of a
// program transformed by Phase III always belong to their straight cut —
// a recovery line — so none can be on a Z-cycle; uncoordinated placements
// routinely produce Z-cycles (the domino effect's root cause). Tests
// verify both directions on real traces.
//
// Definitions (intervals are 1-based: I_{p,i} is the span between p's
// (i−1)-th and i-th checkpoints, matching the paper's §2):
//
//   - A zigzag path from checkpoint c_{p,i} to c_{q,j} is a message
//     sequence m₁,…,m_k where m₁ is sent by p in an interval > i, each
//     m_{l+1} is sent by m_l's receiver in the same or a later interval
//     than the one m_l was received in (possibly earlier in real time —
//     the "zig"), and m_k is received by q in an interval ≤ j.
//   - c is on a Z-cycle iff there is a zigzag path from c to c.
package zigzag

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// message is a recorded message with its interval endpoints.
type message struct {
	from, to int
	sendIntv int // interval at the sender (1-based)
	recvIntv int // interval at the receiver
}

// Analysis holds the preprocessed execution.
type Analysis struct {
	n int
	// counts[p] is the number of checkpoints process p took.
	counts []int
	// chkpts[p][k] is p's (k+1)-th checkpoint (ordinal k+1).
	chkpts [][]trace.Checkpoint
	// msgsBySender[p] lists messages sent by p, sorted by send interval.
	msgsBySender [][]message
}

// FromTrace preprocesses a finished trace. Unmatched sends (messages never
// received) are ignored: they cannot appear on a zigzag path.
func FromTrace(tr *trace.Trace) (*Analysis, error) {
	if err := trace.Validate(tr); err != nil {
		return nil, fmt.Errorf("zigzag: %w", err)
	}
	events := tr.Events()
	a := &Analysis{
		n:            tr.N(),
		counts:       make([]int, tr.N()),
		chkpts:       make([][]trace.Checkpoint, tr.N()),
		msgsBySender: make([][]message, tr.N()),
	}
	// interval number of each send/recv event: checkpoints-so-far + 1.
	type evKey struct{ proc, seq int }
	intervalOf := make(map[evKey]int)
	for p, hist := range events {
		intv := 1
		for _, e := range hist {
			switch e.Kind {
			case trace.KindCheckpoint:
				a.chkpts[p] = append(a.chkpts[p], e.Chkpt)
				a.counts[p]++
				intv++
			case trace.KindSend, trace.KindRecv:
				intervalOf[evKey{p, e.Seq}] = intv
			}
		}
	}
	// Pair sends with receives.
	recvIntv := make(map[trace.MessageID]int)
	for p, hist := range events {
		for _, e := range hist {
			if e.Kind == trace.KindRecv {
				recvIntv[e.Msg] = intervalOf[evKey{p, e.Seq}]
			}
		}
	}
	for p, hist := range events {
		for _, e := range hist {
			if e.Kind != trace.KindSend {
				continue
			}
			ri, ok := recvIntv[e.Msg]
			if !ok {
				continue // in flight at termination
			}
			a.msgsBySender[p] = append(a.msgsBySender[p], message{
				from:     p,
				to:       e.Msg.To,
				sendIntv: intervalOf[evKey{p, e.Seq}],
				recvIntv: ri,
			})
		}
	}
	for p := range a.msgsBySender {
		sort.Slice(a.msgsBySender[p], func(i, j int) bool {
			return a.msgsBySender[p][i].sendIntv < a.msgsBySender[p][j].sendIntv
		})
	}
	return a, nil
}

// N returns the process count.
func (a *Analysis) N() int { return a.n }

// Checkpoints returns process p's checkpoints in temporal order.
func (a *Analysis) Checkpoints(p int) []trace.Checkpoint {
	return append([]trace.Checkpoint(nil), a.chkpts[p]...)
}

// zreach computes, starting from "may send a message from interval ≥ t of
// process p", the minimal receive interval reachable at every process via
// zigzag sequences. minRecv[q] = smallest interval in which some zigzag
// path's last message is received at q (n+large when unreachable).
func (a *Analysis) zreach(p, t int) []int {
	const unreachable = 1 << 30
	minRecv := make([]int, a.n)
	// minSendFloor[q] tracks the smallest "can send from interval ≥ u"
	// state reached for q; smaller u is strictly stronger.
	minSendFloor := make([]int, a.n)
	for q := 0; q < a.n; q++ {
		minRecv[q] = unreachable
		minSendFloor[q] = unreachable
	}
	type state struct{ proc, floor int }
	queue := []state{{p, t}}
	minSendFloor[p] = t
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, m := range a.msgsBySender[s.proc] {
			if m.sendIntv < s.floor {
				continue
			}
			if m.recvIntv < minRecv[m.to] {
				minRecv[m.to] = m.recvIntv
			}
			// The receiver may continue the zigzag from interval ≥
			// recvIntv.
			if m.recvIntv < minSendFloor[m.to] {
				minSendFloor[m.to] = m.recvIntv
				queue = append(queue, state{m.to, m.recvIntv})
			}
		}
	}
	return minRecv
}

// ZPath reports whether a zigzag path exists from c_{p,i} to c_{q,j}
// (checkpoint ordinals, 1-based).
func (a *Analysis) ZPath(p, i, q, j int) bool {
	if i < 1 || i > a.counts[p] || j < 1 || j > a.counts[q] {
		return false
	}
	minRecv := a.zreach(p, i+1)
	return minRecv[q] <= j
}

// OnZCycle reports whether checkpoint ordinal i of process p lies on a
// Z-cycle (and is therefore useless: it belongs to no consistent global
// snapshot).
func (a *Analysis) OnZCycle(p, i int) bool {
	return a.ZPath(p, i, p, i)
}

// Useless returns every checkpoint of the execution that lies on a
// Z-cycle.
func (a *Analysis) Useless() []trace.Checkpoint {
	var out []trace.Checkpoint
	for p := 0; p < a.n; p++ {
		for i := 1; i <= a.counts[p]; i++ {
			if a.OnZCycle(p, i) {
				out = append(out, a.chkpts[p][i-1])
			}
		}
	}
	return out
}

// Stats summarizes the analysis.
type Stats struct {
	Total   int
	Useless int
}

// Stats counts total and useless checkpoints.
func (a *Analysis) Stats() Stats {
	s := Stats{Useless: len(a.Useless())}
	for p := 0; p < a.n; p++ {
		s.Total += a.counts[p]
	}
	return s
}
