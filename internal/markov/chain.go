package markov

import (
	"errors"
	"fmt"
	"math"
)

// Chain is a finite Markov chain with per-transition costs, used to model
// Figure 7 generically: states 0..N-1, transition probabilities P[s][t],
// and expected sojourn/transition costs W[s][t]. Absorbing states have no
// outgoing probability mass.
type Chain struct {
	P [][]float64
	W [][]float64
}

// NewChain allocates an n-state chain with zero matrices.
func NewChain(n int) *Chain {
	c := &Chain{P: make([][]float64, n), W: make([][]float64, n)}
	for i := range c.P {
		c.P[i] = make([]float64, n)
		c.W[i] = make([]float64, n)
	}
	return c
}

// Validate checks that every row's probability mass is 0 (absorbing) or 1.
func (c *Chain) Validate() error {
	for s, row := range c.P {
		sum := 0.0
		for t, p := range row {
			if p < 0 || p > 1 {
				return fmt.Errorf("markov: P[%d][%d] = %v out of range", s, t, p)
			}
			sum += p
		}
		if sum != 0 && math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("markov: state %d has probability mass %v (want 0 or 1)", s, sum)
		}
	}
	return nil
}

// ExpectedCost returns the expected accumulated transition cost from each
// state until absorption: x = b + Q·x with Q the transient submatrix and
// b_s = Σ_t P[s][t]·W[s][t], solved by Gaussian elimination on (I−Q)x = b.
func (c *Chain) ExpectedCost() ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := len(c.P)
	// Build the augmented system (I − P_transient) x = b. Absorbing rows
	// become x_s = 0.
	a := make([][]float64, n)
	for s := 0; s < n; s++ {
		a[s] = make([]float64, n+1)
		mass := 0.0
		for t, p := range c.P[s] {
			mass += p
			a[s][n] += p * c.W[s][t]
		}
		if mass == 0 {
			// Absorbing: x_s = 0.
			a[s][s] = 1
			a[s][n] = 0
			continue
		}
		for t := 0; t < n; t++ {
			a[s][t] = -c.P[s][t]
		}
		a[s][s] += 1
	}
	return solve(a)
}

// solve performs Gaussian elimination with partial pivoting on the
// augmented matrix a (n rows, n+1 columns).
func solve(a [][]float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-14 {
			return nil, errors.New("markov: singular system (chain may not be absorbing)")
		}
		a[col], a[pivot] = a[pivot], a[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for k := col; k <= n; k++ {
				a[r][k] -= f * a[col][k]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := a[r][n]
		for k := r + 1; k < n; k++ {
			sum -= a[r][k] * x[k]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// Figure7Chain builds the paper's 3-state chain for one checkpoint
// interval: state 0 = interval start (checkpoint C_{p,i}), state 1 = the
// recovery state R_i, state 2 = the next checkpoint (absorbing).
//
//	P[0][2] = e^{−λ(T+O)}            W[0][2] = T+O
//	P[0][1] = 1 − P[0][2]            W[0][1] = E[TTF | failure in [0,T+O)]
//	P[1][2] = e^{−λ(T+R+L)}          W[1][2] = T+R+L   (≅ T+O+R+L−o, §4)
//	P[1][1] = 1 − P[1][2]            W[1][1] = E[TTF | failure in [0,T+R+L)]
//
// where the conditional mean time-to-failure over [0,D) is
// 1/λ − D·e^{−λD}/(1−e^{−λD}).
func Figure7Chain(p Params) (*Chain, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := NewChain(3)
	first := p.T + p.O
	retry := p.T + p.R + p.L
	c.P[0][2] = math.Exp(-p.Lambda * first)
	c.P[0][1] = 1 - c.P[0][2]
	c.W[0][2] = first
	c.W[0][1] = condMeanTTF(p.Lambda, first)
	c.P[1][2] = math.Exp(-p.Lambda * retry)
	c.P[1][1] = 1 - c.P[1][2]
	c.W[1][2] = retry
	c.W[1][1] = condMeanTTF(p.Lambda, retry)
	return c, nil
}

// condMeanTTF is E[x | x < D] for x ~ Exp(λ): 1/λ − D·e^{−λD}/(1−e^{−λD}).
func condMeanTTF(lambda, d float64) float64 {
	ed := math.Exp(-lambda * d)
	return 1/lambda - d*ed/(1-ed)
}

// GammaFromChain computes Γ by solving the Figure 7 chain, for
// cross-checking the closed form.
func GammaFromChain(p Params) (float64, error) {
	c, err := Figure7Chain(p)
	if err != nil {
		return 0, err
	}
	costs, err := c.ExpectedCost()
	if err != nil {
		return 0, err
	}
	return costs[0], nil
}
