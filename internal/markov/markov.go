// Package markov implements the paper's §4 performance analysis: the
// 3-state Markov chain of Figure 7 modelling one checkpoint interval
// I_{p,i+1}, the closed-form expected interval time Γ and overhead ratio
// r, and the per-protocol parameterizations (application-driven, SaS,
// Chandy-Lamport) behind Figures 8 and 9.
//
// Notation (§4): λ failure rate, T programmed checkpoint interval, o
// checkpoint overhead, l checkpoint latency, R recovery overhead, M
// message (coordination) overhead, O = o + M total checkpoint overhead,
// L = l + M total latency overhead, and
//
//	Γ = λ⁻¹ (1 − e^{−λ(T+O)}) e^{λ(T+R+L)}
//	r = Γ/T − 1 = (λ⁻¹ e^{λ(R+L−O)} (e^{λ(T+O)} − 1))/T − 1.
//
// A generic absorbing-chain solver (chain.go) recomputes Γ from the chain
// of Figure 7 directly; tests verify it agrees with the closed form.
package markov

import (
	"context"
	"fmt"
	"math"

	"repro/internal/par"
)

// Params are the model parameters for one protocol configuration. All
// times are in seconds, rates in 1/second.
type Params struct {
	Lambda float64 // λ: failure rate seen by the application
	T      float64 // programmed checkpoint interval
	O      float64 // total checkpoint overhead (o + M + C)
	L      float64 // total latency overhead (l + M + C)
	R      float64 // recovery overhead
}

// Validate rejects non-positive rates/intervals.
func (p Params) Validate() error {
	if p.Lambda <= 0 || p.T <= 0 {
		return fmt.Errorf("markov: Lambda and T must be positive: %+v", p)
	}
	if p.O < 0 || p.L < 0 || p.R < 0 {
		return fmt.Errorf("markov: overheads must be non-negative: %+v", p)
	}
	return nil
}

// Gamma returns the expected execution time of one checkpoint interval,
// the paper's closed form.
func Gamma(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return (1 - math.Exp(-p.Lambda*(p.T+p.O))) * math.Exp(p.Lambda*(p.T+p.R+p.L)) / p.Lambda, nil
}

// OverheadRatio returns r = Γ/T − 1.
func OverheadRatio(p Params) (float64, error) {
	g, err := Gamma(p)
	if err != nil {
		return 0, err
	}
	return g/p.T - 1, nil
}

// Baseline are the protocol-independent constants. Defaults come from the
// paper's Starfish measurements (§4): o = 1.78 s, l = 4.292 s, R = 3.32 s,
// per-process failure rate λ₁ = 1.23e-6 /s, and T = 300 s.
type Baseline struct {
	O       float64 // o: checkpoint overhead of a single local checkpoint
	Latency float64 // l: checkpoint latency
	R       float64 // R: recovery overhead
	Lambda1 float64 // λ₁: single-process failure rate
	T       float64 // programmed interval
	// WM and WB are the paper's message-cost parameters: per-message setup
	// time w_m and per-bit delay w_b.
	WM float64
	WB float64
}

// PaperBaseline is the paper's parameterization. w_m/w_b are not stated
// numerically in the paper; the defaults model a 1 ms setup cost and a
// 10 ns/bit (100 Mb/s) wire, and Figure 9 sweeps w_m anyway.
var PaperBaseline = Baseline{
	O:       1.78,
	Latency: 4.292,
	R:       3.32,
	Lambda1: 1.23e-6,
	T:       300,
	WM:      0.001,
	WB:      1e-8,
}

// SystemLambda is the failure rate of an n-process application. The paper
// argues the rate grows proportionally with n (independent process
// failures with probability p per unit time give 1−(1−p)^n ≈ np for small
// p); we use n·λ₁.
func (b Baseline) SystemLambda(n int) float64 {
	return float64(n) * b.Lambda1
}

// SystemLambdaExact is the paper's exact combination: with per-unit-time
// failure probability p per process, the n-process failure probability is
// 1−(1−p)^n, i.e. rate −n·ln(1−p). For the paper's p = 1.23e-6 it differs
// from n·λ₁ by under one part in 10⁵ across the Figure 8 sweep; tests pin
// that equivalence.
func (b Baseline) SystemLambdaExact(n int) float64 {
	return -float64(n) * math.Log1p(-b.Lambda1)
}

// MessageCost is w_m + bits·w_b, the transmission cost of one control
// message.
func (b Baseline) MessageCost(bits int) float64 {
	return b.WM + float64(bits)*b.WB
}

// Protocol identifies a checkpointing protocol in the §4.1 comparison.
type Protocol int

// Compared protocols.
const (
	ApplDriven Protocol = iota + 1
	SaS
	ChandyLamport
)

// String names the protocol as in Figure 8's legend.
func (p Protocol) String() string {
	switch p {
	case ApplDriven:
		return "appl-driven"
	case SaS:
		return "SaS"
	case ChandyLamport:
		return "C-L"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// MessageOverhead is the paper's M for each protocol with n processes and
// 8-bit control messages: M(appl-driven) = 0 (the contribution),
// M(SaS) = 5(n−1)(w_m + 8w_b), M(C-L) = 2n(n−1)(w_m + 8w_b).
func (b Baseline) MessageOverhead(p Protocol, n int) float64 {
	per := b.MessageCost(8)
	switch p {
	case ApplDriven:
		return 0
	case SaS:
		return 5 * float64(n-1) * per
	case ChandyLamport:
		return 2 * float64(n) * float64(n-1) * per
	default:
		return math.NaN()
	}
}

// ParamsFor assembles the chain parameters for a protocol at scale n:
// O = o + M, L = l + M (coordination overhead C is folded into M; the
// paper gives no separate C formula).
func (b Baseline) ParamsFor(p Protocol, n int) Params {
	m := b.MessageOverhead(p, n)
	return Params{
		Lambda: b.SystemLambda(n),
		T:      b.T,
		O:      b.O + m,
		L:      b.Latency + m,
		R:      b.R,
	}
}

// Point is one x-position of a figure with the three protocols' overhead
// ratios.
type Point struct {
	X          float64 // n for Figure 8, w_m for Figure 9
	ApplDriven float64
	SaS        float64
	CL         float64
}

// Figure8 regenerates the paper's Figure 8: overhead ratio vs. number of
// processes for the three protocols. Points are evaluated concurrently
// (GOMAXPROCS workers); the closed forms are pure, so the series is
// identical to a serial sweep.
func Figure8(b Baseline, ns []int) ([]Point, error) {
	return Figure8Workers(b, ns, 0)
}

// Figure8Workers is Figure8 with an explicit worker bound for the
// per-point sweep (0 = GOMAXPROCS, 1 = serial).
func Figure8Workers(b Baseline, ns []int, workers int) ([]Point, error) {
	return par.Map(context.Background(), workers, ns,
		func(_ context.Context, _, n int) (Point, error) {
			if n < 2 {
				return Point{}, fmt.Errorf("markov: Figure 8 needs n >= 2, got %d", n)
			}
			pt := Point{X: float64(n)}
			var err error
			if pt.ApplDriven, err = OverheadRatio(b.ParamsFor(ApplDriven, n)); err != nil {
				return Point{}, err
			}
			if pt.SaS, err = OverheadRatio(b.ParamsFor(SaS, n)); err != nil {
				return Point{}, err
			}
			if pt.CL, err = OverheadRatio(b.ParamsFor(ChandyLamport, n)); err != nil {
				return Point{}, err
			}
			return pt, nil
		})
}

// Figure9 regenerates the paper's Figure 9: overhead ratio vs. message
// setup time w_m at fixed scale n. The appl-driven curve is flat by
// construction (no coordination messages); SaS and C-L degrade as the
// network slows. Points are evaluated concurrently (GOMAXPROCS workers);
// the closed forms are pure, so the series is identical to a serial sweep.
func Figure9(b Baseline, n int, wms []float64) ([]Point, error) {
	return Figure9Workers(b, n, wms, 0)
}

// Figure9Workers is Figure9 with an explicit worker bound for the
// per-point sweep (0 = GOMAXPROCS, 1 = serial).
func Figure9Workers(b Baseline, n int, wms []float64, workers int) ([]Point, error) {
	if n < 2 {
		return nil, fmt.Errorf("markov: Figure 9 needs n >= 2, got %d", n)
	}
	return par.Map(context.Background(), workers, wms,
		func(_ context.Context, _ int, wm float64) (Point, error) {
			if wm < 0 {
				return Point{}, fmt.Errorf("markov: negative w_m %v", wm)
			}
			bb := b
			bb.WM = wm
			pt := Point{X: wm}
			var err error
			if pt.ApplDriven, err = OverheadRatio(bb.ParamsFor(ApplDriven, n)); err != nil {
				return Point{}, err
			}
			if pt.SaS, err = OverheadRatio(bb.ParamsFor(SaS, n)); err != nil {
				return Point{}, err
			}
			if pt.CL, err = OverheadRatio(bb.ParamsFor(ChandyLamport, n)); err != nil {
				return Point{}, err
			}
			return pt, nil
		})
}

// DefaultFigure8Ns is the n sweep used by the bench harness.
func DefaultFigure8Ns() []int {
	return []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

// DefaultFigure9WMs is the w_m sweep used by the bench harness (seconds).
func DefaultFigure9WMs() []float64 {
	return []float64{0, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1}
}
