package markov

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, rel float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*den
}

func TestGammaClosedFormMatchesChain(t *testing.T) {
	tests := []Params{
		{Lambda: 1.23e-6, T: 300, O: 1.78, L: 4.292, R: 3.32},
		{Lambda: 1e-3, T: 100, O: 5, L: 10, R: 3},
		{Lambda: 0.01, T: 60, O: 2, L: 2, R: 1},
		{Lambda: 0.1, T: 10, O: 0.5, L: 0.5, R: 0.2},
		{Lambda: 1e-6 * 1024, T: 300, O: 1.78 + 2, L: 4.292 + 2, R: 3.32},
	}
	for _, p := range tests {
		closed, err := Gamma(p)
		if err != nil {
			t.Fatal(err)
		}
		chain, err := GammaFromChain(p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(closed, chain, 1e-9) {
			t.Errorf("params %+v: closed form %v != chain %v", p, closed, chain)
		}
	}
}

func TestQuickGammaChainAgreement(t *testing.T) {
	f := func(li, ti, oi, ri uint8) bool {
		p := Params{
			Lambda: 1e-6 * float64(1+int(li)%1000),
			T:      10 + float64(ti),
			O:      0.1 + float64(oi)/10,
			L:      0.1 + float64(oi)/8,
			R:      0.1 + float64(ri)/10,
		}
		closed, err1 := Gamma(p)
		chain, err2 := GammaFromChain(p)
		return err1 == nil && err2 == nil && almostEqual(closed, chain, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGammaLimits(t *testing.T) {
	// As λ→0+, Γ → T+O (no failures: the interval just runs).
	p := Params{Lambda: 1e-12, T: 300, O: 2, L: 3, R: 1}
	g, err := Gamma(p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(g, p.T+p.O, 1e-6) {
		t.Errorf("Γ at λ→0 = %v, want ≈ %v", g, p.T+p.O)
	}
	// Overhead ratio then ≈ O/T.
	r, err := OverheadRatio(p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, p.O/p.T, 1e-4) {
		t.Errorf("r at λ→0 = %v, want ≈ %v", r, p.O/p.T)
	}
}

func TestGammaMonotoneInLambda(t *testing.T) {
	base := Params{T: 300, O: 1.78, L: 4.292, R: 3.32}
	prev := 0.0
	for i, lambda := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2} {
		p := base
		p.Lambda = lambda
		g, err := Gamma(p)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && g <= prev {
			t.Errorf("Γ not increasing in λ: %v then %v", prev, g)
		}
		prev = g
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{Lambda: 0, T: 1},
		{Lambda: 1, T: 0},
		{Lambda: 1, T: 1, O: -1},
		{Lambda: 1, T: 1, R: -0.5},
	}
	for _, p := range bad {
		if _, err := Gamma(p); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestMessageOverheadFormulas(t *testing.T) {
	b := PaperBaseline
	per := b.WM + 8*b.WB
	for _, n := range []int{2, 10, 100} {
		if got := b.MessageOverhead(ApplDriven, n); got != 0 {
			t.Errorf("M(appl, %d) = %v, want 0", n, got)
		}
		if got, want := b.MessageOverhead(SaS, n), 5*float64(n-1)*per; !almostEqual(got, want, 1e-12) {
			t.Errorf("M(SaS, %d) = %v, want %v", n, got, want)
		}
		if got, want := b.MessageOverhead(ChandyLamport, n), 2*float64(n)*float64(n-1)*per; !almostEqual(got, want, 1e-12) {
			t.Errorf("M(C-L, %d) = %v, want %v", n, got, want)
		}
	}
}

func TestSystemLambdaProportional(t *testing.T) {
	b := PaperBaseline
	if got := b.SystemLambda(100); !almostEqual(got, 100*b.Lambda1, 1e-12) {
		t.Errorf("SystemLambda(100) = %v", got)
	}
}

func TestSystemLambdaExactAgreesAtPaperRate(t *testing.T) {
	// The linear approximation n·λ₁ and the exact −n·ln(1−p) agree to
	// within 1e-5 relative error for the paper's tiny p across the
	// Figure 8 sweep — the "increases proportionally" claim.
	b := PaperBaseline
	for _, n := range DefaultFigure8Ns() {
		lin, exact := b.SystemLambda(n), b.SystemLambdaExact(n)
		if !almostEqual(lin, exact, 1e-5) {
			t.Errorf("n=%d: linear %v vs exact %v", n, lin, exact)
		}
		if exact <= lin {
			t.Errorf("n=%d: exact rate should exceed linear (convexity)", n)
		}
	}
	// At a large p the two separate noticeably.
	big := Baseline{Lambda1: 0.1}
	if almostEqual(big.SystemLambda(10), big.SystemLambdaExact(10), 1e-3) {
		t.Error("large-p rates should differ")
	}
}

// TestFigure8Shape verifies the qualitative claims of the paper's Figure 8:
// the application-driven protocol has the smallest overhead ratio at every
// n; all curves increase with n (failure rate grows with n); and C-L
// overtakes SaS as its quadratic message count dominates.
func TestFigure8Shape(t *testing.T) {
	pts, err := Figure8(PaperBaseline, DefaultFigure8Ns())
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		if !(pt.ApplDriven < pt.SaS) || !(pt.ApplDriven < pt.CL) {
			t.Errorf("n=%v: appl-driven %v not smallest (SaS %v, C-L %v)",
				pt.X, pt.ApplDriven, pt.SaS, pt.CL)
		}
		if i > 0 {
			prev := pts[i-1]
			if pt.ApplDriven <= prev.ApplDriven || pt.SaS <= prev.SaS || pt.CL <= prev.CL {
				t.Errorf("overhead ratio not increasing with n at %v", pt.X)
			}
		}
	}
	// For large n, C-L (quadratic messages) must exceed SaS (linear).
	last := pts[len(pts)-1]
	if !(last.CL > last.SaS) {
		t.Errorf("at n=%v C-L (%v) should exceed SaS (%v)", last.X, last.CL, last.SaS)
	}
}

// TestFigure9Shape verifies Figure 9: appl-driven is flat in w_m, SaS and
// C-L strictly degrade.
func TestFigure9Shape(t *testing.T) {
	const n = 64
	pts, err := Figure9(PaperBaseline, n, DefaultFigure9WMs())
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		if i == 0 {
			continue
		}
		prev := pts[i-1]
		if pt.ApplDriven != prev.ApplDriven {
			t.Errorf("appl-driven moved with w_m: %v -> %v", prev.ApplDriven, pt.ApplDriven)
		}
		if !(pt.SaS > prev.SaS) {
			t.Errorf("SaS not increasing at w_m=%v", pt.X)
		}
		if !(pt.CL > prev.CL) {
			t.Errorf("C-L not increasing at w_m=%v", pt.X)
		}
	}
}

func TestFigureInputValidation(t *testing.T) {
	if _, err := Figure8(PaperBaseline, []int{1}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Figure9(PaperBaseline, 1, []float64{0.1}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Figure9(PaperBaseline, 8, []float64{-1}); err == nil {
		t.Error("negative w_m accepted")
	}
}

func TestProtocolString(t *testing.T) {
	if ApplDriven.String() != "appl-driven" || SaS.String() != "SaS" || ChandyLamport.String() != "C-L" {
		t.Error("protocol names wrong")
	}
}

func TestChainValidate(t *testing.T) {
	c := NewChain(2)
	c.P[0][1] = 0.5 // mass 0.5: invalid
	if err := c.Validate(); err == nil {
		t.Error("half-mass row accepted")
	}
	c.P[0][0] = 0.5
	if err := c.Validate(); err != nil {
		t.Errorf("full row rejected: %v", err)
	}
	c.P[0][1] = 1.5
	if err := c.Validate(); err == nil {
		t.Error("probability > 1 accepted")
	}
}

func TestChainSimpleExpectedCost(t *testing.T) {
	// Two states: 0 → 1 (absorbing) with probability 1 and cost 7.
	c := NewChain(2)
	c.P[0][1] = 1
	c.W[0][1] = 7
	costs, err := c.ExpectedCost()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(costs[0], 7, 1e-12) || costs[1] != 0 {
		t.Errorf("costs = %v", costs)
	}
}

func TestChainGeometricRetry(t *testing.T) {
	// State 0 retries itself with prob 0.5 (cost 1) or absorbs (cost 1):
	// expected total cost = 2.
	c := NewChain(2)
	c.P[0][0] = 0.5
	c.W[0][0] = 1
	c.P[0][1] = 0.5
	c.W[0][1] = 1
	costs, err := c.ExpectedCost()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(costs[0], 2, 1e-9) {
		t.Errorf("expected cost = %v, want 2", costs[0])
	}
}

func TestChainNonAbsorbingFails(t *testing.T) {
	// Two states cycling forever: singular system.
	c := NewChain(2)
	c.P[0][1] = 1
	c.P[1][0] = 1
	if _, err := c.ExpectedCost(); err == nil {
		t.Error("non-absorbing chain accepted")
	}
}

func BenchmarkGammaClosedForm(b *testing.B) {
	p := PaperBaseline.ParamsFor(SaS, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Gamma(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGammaFromChain(b *testing.B) {
	p := PaperBaseline.ParamsFor(SaS, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GammaFromChain(p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFigureSweepsIdenticalAcrossWorkerCounts(t *testing.T) {
	// The sweeps are pure closed-form evaluations, so the parallel fan-out
	// must reproduce the serial series exactly, point for point.
	ref8, err := Figure8Workers(PaperBaseline, DefaultFigure8Ns(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ref9, err := Figure9Workers(PaperBaseline, 64, DefaultFigure9WMs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 5, 16} {
		got8, err := Figure8Workers(PaperBaseline, DefaultFigure8Ns(), workers)
		if err != nil {
			t.Fatal(err)
		}
		got9, err := Figure9Workers(PaperBaseline, 64, DefaultFigure9WMs(), workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref8 {
			if got8[i] != ref8[i] {
				t.Errorf("workers=%d: Figure 8 point %d = %+v, want %+v", workers, i, got8[i], ref8[i])
			}
		}
		for i := range ref9 {
			if got9[i] != ref9[i] {
				t.Errorf("workers=%d: Figure 9 point %d = %+v, want %+v", workers, i, got9[i], ref9[i])
			}
		}
	}
	// Invalid points must surface from the parallel sweep too.
	if _, err := Figure8Workers(PaperBaseline, []int{2, 1}, 4); err == nil {
		t.Error("Figure8Workers accepted n=1")
	}
	if _, err := Figure9Workers(PaperBaseline, 64, []float64{0.001, -1}, 4); err == nil {
		t.Error("Figure9Workers accepted negative w_m")
	}
}
