// Package recovery chooses recovery lines from stable storage after a
// failure.
//
// For the paper's application-driven scheme the recovery line is a
// straight cut: the i-th checkpoint of every process (Definition 2.2/2.3).
// StraightCut picks the most advanced saved straight cut and verifies its
// consistency with the vector clocks captured at checkpoint time — the
// runtime manifestation of Theorem 3.2 (the verification never fails for
// programs transformed by Phase III; for untransformed programs it is how
// tests demonstrate the domino-prone alternative).
//
// For the uncoordinated baseline the package implements the classic
// rollback-dependency algorithm: start from every process's latest
// checkpoint and roll processes back until the cut is consistent. The
// number of rollback steps measures the domino effect; the algorithm can
// cascade all the way to the initial state (unbounded rollback
// propagation, §1).
package recovery

import (
	"errors"
	"fmt"

	"repro/internal/storage"
)

// ErrNoRecoveryLine means no consistent cut exists in storage; the
// application must restart from its initial state.
var ErrNoRecoveryLine = errors.New("recovery: no recovery line available")

// ErrInconsistentCut reports that a cut expected to be consistent is not —
// for straight cuts this would falsify Theorem 3.2 for the given program.
var ErrInconsistentCut = errors.New("recovery: straight cut is not consistent")

// Line is a chosen recovery line: one snapshot per process, indexed by
// process id.
type Line struct {
	Snapshots []storage.Snapshot
	// Rollbacks counts how many saved checkpoints were skipped below the
	// latest ones (0 for a straight cut at everyone's newest index;
	// positive values for uncoordinated recovery measure the domino
	// effect).
	Rollbacks int
	// Degraded counts candidate straight cuts that failed to load
	// (corrupt, quarantined, or unreadable snapshots) and were skipped
	// during selection. 0 means the line is the best cut stable storage
	// claims to hold; positive values measure how far recovery had to
	// degrade because storage misbehaved.
	Degraded int
}

// consistent reports whether no snapshot in the cut happened before
// another (Definition 2.1 via vector clocks).
func consistent(cut []storage.Snapshot) (int, int, bool) {
	for i := range cut {
		for j := range cut {
			if i != j && cut[i].Clock.Before(cut[j].Clock) {
				return i, j, false
			}
		}
	}
	return 0, 0, true
}

// maxInstanceProbe bounds how many instances below a candidate index's
// common frontier the degraded-selection probe descends. Probing is linear
// in n per step; the bound keeps pathological stores (a long fully-corrupt
// instance chain) from turning selection into a full scan.
const maxInstanceProbe = 32

// StraightCut returns the recovery line for the application-driven scheme:
// the straight cut R_i with the largest common (index, instance) progress.
// For each checkpoint index i present on every process it considers the
// cut at instance k_i = min over processes of the latest saved instance of
// C_{p,i}, and picks the candidate with the greatest total progress
// (vector-clock component sum). The chosen cut's consistency is verified;
// an inconsistent straight cut is reported as ErrInconsistentCut.
//
// Selection degrades gracefully when stable storage misbehaves: a
// candidate cut whose snapshots fail to load (storage.ErrCorrupt from a
// damaged file or delta chain, storage.ErrNotFound after quarantine, or a
// persistent read fault) is skipped and the next-deepest candidate — an
// older instance of the same index, then older indexes — is probed
// instead. Every skipped candidate is counted in Line.Degraded so callers
// can report how far recovery fell below the best cut storage claimed to
// hold. Only when no candidate loads at all does StraightCut return
// ErrNoRecoveryLine, telling the runtime to restart from the initial
// state — the bottom of the degradation ladder.
func StraightCut(st storage.Store, n int) (*Line, error) {
	indexes, err := st.Indexes(n)
	if err != nil {
		return nil, err
	}
	if len(indexes) == 0 {
		return nil, ErrNoRecoveryLine
	}
	var best []storage.Snapshot
	bestScore := uint64(0)
	degraded := 0
	for _, idx := range indexes {
		// Common frontier: the minimum of the per-process latest
		// instances. A process whose frontier is unreadable (its newest
		// instance is corrupt) leaves the frontier to the others; the
		// probe below discovers its deepest loadable instance.
		k := -1
		anyFrontier := false
		for p := 0; p < n; p++ {
			latest, err := st.Latest(p, idx)
			if err != nil {
				continue
			}
			anyFrontier = true
			if k < 0 || latest.Instance < k {
				k = latest.Instance
			}
		}
		if !anyFrontier {
			// Index present by name on every process but nothing loads.
			degraded++
			continue
		}
		// Probe instances from the frontier downward until a fully
		// loadable cut appears; each failed (idx, instance) candidate is
		// one degradation step.
		found := false
		var cut []storage.Snapshot
		for probes := 0; k >= 0 && probes < maxInstanceProbe; k, probes = k-1, probes+1 {
			cut = make([]storage.Snapshot, n)
			ok := true
			for p := 0; p < n; p++ {
				s, err := st.Get(p, idx, k)
				if err != nil {
					// Corrupt, quarantined, or skipped instance (the
					// latter should not happen for SPMD programs):
					// degrade to the next-deepest candidate.
					ok = false
					break
				}
				cut[p] = s
			}
			if ok {
				found = true
				break
			}
			degraded++
		}
		if !found {
			continue
		}
		score := uint64(0)
		for _, s := range cut {
			for _, c := range s.Clock {
				score += c
			}
		}
		if best == nil || score > bestScore {
			best = cut
			bestScore = score
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: %d candidate cut(s) failed to load", ErrNoRecoveryLine, degraded)
	}
	if i, j, ok := consistent(best); !ok {
		return nil, fmt.Errorf("%w: C_{p%d,i%d}#%d happened before C_{p%d,i%d}#%d",
			ErrInconsistentCut,
			best[i].Proc, best[i].CFGIndex, best[i].Instance,
			best[j].Proc, best[j].CFGIndex, best[j].Instance)
	}
	return &Line{Snapshots: best, Degraded: degraded}, nil
}

// LatestConsistent implements uncoordinated recovery: start from each
// process's newest snapshot and repeatedly roll back any process whose
// snapshot happened before another's, until the cut is consistent or some
// process runs out of snapshots (ErrNoRecoveryLine — the domino effect
// consumed everything). Rollbacks in the result counts the total
// roll-back steps.
func LatestConsistent(st storage.Store, n int) (*Line, error) {
	// all[p] is p's snapshots in temporal order (List returns
	// (index, instance) sorted; for a single local counter that IS
	// temporal order).
	all := make([][]storage.Snapshot, n)
	pos := make([]int, n) // current candidate = all[p][pos[p]]
	for p := 0; p < n; p++ {
		snaps, err := st.List(p)
		if err != nil {
			return nil, err
		}
		if len(snaps) == 0 {
			return nil, ErrNoRecoveryLine
		}
		all[p] = snaps
		pos[p] = len(snaps) - 1
	}
	rollbacks := 0
	for {
		cut := make([]storage.Snapshot, n)
		for p := 0; p < n; p++ {
			cut[p] = all[p][pos[p]]
		}
		_, j, ok := consistent(cut)
		if ok {
			return &Line{Snapshots: cut, Rollbacks: rollbacks}, nil
		}
		// cut[i] happened before cut[j]: j recorded effects of messages i
		// sent after cut[i]; those sends are not covered by i's
		// checkpoint, so j's checkpoint is an orphan state — roll back j.
		if pos[j] == 0 {
			return nil, fmt.Errorf("%w: process %d rolled back to its first checkpoint (domino)",
				ErrNoRecoveryLine, j)
		}
		pos[j]--
		rollbacks++
	}
}
